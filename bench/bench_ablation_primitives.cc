// Ablation microbenchmarks (google-benchmark) for the design choices
// DESIGN.md §6 calls out:
//   * crypto substrate throughput (SHA-256, AES-256-CTR, Rabin window)
//   * OPRF cost split (client blind/unblind vs manager sign)
//   * pairing / CP-ABE primitive costs (what Fig 8 is made of)
//   * REED scheme costs: basic vs enhanced, encrypt vs decrypt
//   * self-XOR tail vs hash tail (the enhanced scheme's §IV-B trick)
//   * stub-size sweep: rekey payload vs storage overhead trade-off
//
//   ./bench_ablation_primitives [--benchmark_filter=...] [--json out.json]
//   (--json X is shorthand for --benchmark_out=X --benchmark_out_format=json,
//    matching the bench_fig* flag convention; --smoke caps iteration time)
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "abe/cpabe.h"
#include "aont/reed_cipher.h"
#include "chunk/chunker.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/random.h"
#include "crypto/sha256.h"
#include "keymanager/key_manager.h"
#include "pairing/bls.h"
#include "rsa/blind_signature.h"
#include "rsa/key_regression.h"

namespace {

using namespace reed;

Bytes FixedData(std::size_t size, std::uint64_t seed = 1) {
  crypto::DeterministicRng rng(seed);
  return rng.Generate(size);
}

// --------------------------- crypto substrate ---------------------------

void BM_Sha256(benchmark::State& state) {
  Bytes data = FixedData(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(crypto::Sha256::UsingHardware() ? "sha-ni" : "portable");
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_AesCtr(benchmark::State& state) {
  Bytes key = FixedData(32, 2), iv = FixedData(16, 3);
  Bytes data = FixedData(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::AesCtrEncrypt(key, iv, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(crypto::Aes256::UsingHardware() ? "aes-ni" : "portable");
}
BENCHMARK(BM_AesCtr)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key = FixedData(32, 5);
  Bytes data = FixedData(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HmacSha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(4096)->Arg(65536);

void BM_RabinChunking(benchmark::State& state) {
  Bytes data = FixedData(4 << 20, 7);
  chunk::RabinChunker chunker(chunk::PaperChunking(8192));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.Split(data));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RabinChunking);

// --------------------------- OPRF split ---------------------------

struct OprfFixture {
  rsa::RsaKeyPair keys;
  OprfFixture() {
    crypto::DeterministicRng rng(10);
    keys = rsa::GenerateKeyPair(1024, rng);
  }
};
OprfFixture& Oprf() {
  static OprfFixture f;
  return f;
}

void BM_OprfClientBlind(benchmark::State& state) {
  rsa::BlindSignatureClient client(Oprf().keys.pub);
  crypto::DeterministicRng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Blind(ToBytes("fingerprint"), rng));
  }
}
BENCHMARK(BM_OprfClientBlind);

void BM_OprfManagerSign(benchmark::State& state) {
  rsa::BlindSignatureServer server(Oprf().keys.priv);
  rsa::BlindSignatureClient client(Oprf().keys.pub);
  crypto::DeterministicRng rng(12);
  auto req = client.Blind(ToBytes("fp"), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Sign(req.blinded));
  }
  // This per-signature cost is what saturates Fig 5(b) at large batches.
}
BENCHMARK(BM_OprfManagerSign);

void BM_OprfClientUnblind(benchmark::State& state) {
  rsa::BlindSignatureServer server(Oprf().keys.priv);
  rsa::BlindSignatureClient client(Oprf().keys.pub);
  crypto::DeterministicRng rng(13);
  auto req = client.Blind(ToBytes("fp"), rng);
  auto sig = server.Sign(req.blinded);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Unblind(req, sig));
  }
}
BENCHMARK(BM_OprfClientUnblind);

void BM_KeyRegressionWind(benchmark::State& state) {
  crypto::DeterministicRng rng(14);
  rsa::KeyRegressionOwner owner(Oprf().keys);
  rsa::KeyState st = owner.GenesisState(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(st = owner.Wind(st));
  }
}
BENCHMARK(BM_KeyRegressionWind);

void BM_KeyRegressionUnwind(benchmark::State& state) {
  crypto::DeterministicRng rng(15);
  rsa::KeyRegressionOwner owner(Oprf().keys);
  rsa::KeyRegressionMember member(Oprf().keys.pub);
  rsa::KeyState st = owner.Wind(owner.GenesisState(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(member.Unwind(st));
  }
}
BENCHMARK(BM_KeyRegressionUnwind);

// ------------------- BLS alternative (paper §V names it) -------------------

void BM_BlsManagerSign(benchmark::State& state) {
  auto pairing = std::make_shared<const pairing::TypeAPairing>(
      pairing::TypeAParams::Default());
  crypto::DeterministicRng rng(16);
  pairing::BlsKeyPair kp = pairing::BlsGenerateKeyPair(*pairing, rng);
  pairing::BlsBlindSigner signer(pairing, kp.secret);
  pairing::BlsBlindClient client(pairing, kp.public_key);
  auto req = client.Blind(ToBytes("fp"), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer.Sign(req.blinded));
  }
  // Compare with BM_OprfManagerSign: the manager-side cost decides the
  // Fig 5(b) saturation plateau under either instantiation.
}
BENCHMARK(BM_BlsManagerSign);

void BM_BlsClientUnblind(benchmark::State& state) {
  auto pairing = std::make_shared<const pairing::TypeAPairing>(
      pairing::TypeAParams::Default());
  crypto::DeterministicRng rng(17);
  pairing::BlsKeyPair kp = pairing::BlsGenerateKeyPair(*pairing, rng);
  pairing::BlsBlindSigner signer(pairing, kp.secret);
  pairing::BlsBlindClient client(pairing, kp.public_key);
  auto req = client.Blind(ToBytes("fp"), rng);
  pairing::G1Point sig = signer.Sign(req.blinded);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Unblind(req, sig));
  }
  // Unblind pays two pairings — this is why the prototype (and the paper)
  // default to the RSA OPRF despite BLS's cheaper signing.
}
BENCHMARK(BM_BlsClientUnblind);

// --------------------------- pairing / CP-ABE ---------------------------

struct AbeFixture {
  std::shared_ptr<const pairing::TypeAPairing> pairing;
  std::unique_ptr<abe::CpAbe> cpabe;
  abe::CpAbe::SetupResult setup;
  AbeFixture() {
    pairing = std::make_shared<const pairing::TypeAPairing>(
        pairing::TypeAParams::Default());
    cpabe = std::make_unique<abe::CpAbe>(pairing);
    crypto::DeterministicRng rng(20);
    setup = cpabe->Setup(rng);
  }
};
AbeFixture& Abe() {
  static AbeFixture f;
  return f;
}

void BM_TatePairing(benchmark::State& state) {
  const auto& e = *Abe().pairing;
  pairing::G1Point p = e.HashToGroup(ToBytes("P"));
  pairing::G1Point q = e.HashToGroup(ToBytes("Q"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.Pair(p, q));
  }
}
BENCHMARK(BM_TatePairing);

void BM_G1ScalarMul(benchmark::State& state) {
  const auto& e = *Abe().pairing;
  pairing::G1Point p = e.HashToGroup(ToBytes("P"));
  crypto::DeterministicRng rng(21);
  bigint::BigInt k = e.RandomScalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.ScalarMul(k));
  }
}
BENCHMARK(BM_G1ScalarMul);

void BM_AbeEncrypt(benchmark::State& state) {
  auto& f = Abe();
  crypto::DeterministicRng rng(22);
  std::vector<std::string> users;
  for (int i = 0; i < state.range(0); ++i) {
    users.push_back("u" + std::to_string(i));
  }
  abe::PolicyNode policy = abe::PolicyNode::OrOfUsers(users);
  Secret payload(FixedData(200, 23));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.cpabe->EncryptBytes(f.setup.pk, policy, payload, rng));
  }
  // Linear in #users: the dominant term of the Fig 8(a) curve.
}
BENCHMARK(BM_AbeEncrypt)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_AbeDecrypt(benchmark::State& state) {
  auto& f = Abe();
  crypto::DeterministicRng rng(24);
  std::vector<std::string> users;
  for (int i = 0; i < state.range(0); ++i) {
    users.push_back("u" + std::to_string(i));
  }
  abe::PolicyNode policy = abe::PolicyNode::OrOfUsers(users);
  Secret payload(FixedData(200, 25));
  Bytes ct = Declassify(f.cpabe->EncryptBytes(f.setup.pk, policy, payload, rng),
                        "bench: ABE ciphertext for the decrypt loop");
  abe::PrivateKey sk = f.cpabe->KeyGen(f.setup.pk, f.setup.mk, {"user:u0"}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.cpabe->DecryptBytes(sk, ct));
  }
  // ~Constant in #users for OR policies — why Fig 8 rekey decrypt is flat.
}
BENCHMARK(BM_AbeDecrypt)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

// --------------------------- REED schemes ---------------------------

void BM_ReedEncrypt(benchmark::State& state) {
  auto scheme = static_cast<aont::Scheme>(state.range(0));
  std::size_t chunk_size = static_cast<std::size_t>(state.range(1));
  aont::ReedCipher cipher(scheme);
  Bytes chunk = FixedData(chunk_size, 30);
  Secret key(FixedData(32, 31));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.Encrypt(chunk, key));
  }
  state.SetBytesProcessed(state.iterations() * state.range(1));
  state.SetLabel(aont::SchemeName(scheme));
}
BENCHMARK(BM_ReedEncrypt)
    ->Args({0, 8192})
    ->Args({1, 8192})
    ->Args({0, 16384})
    ->Args({1, 16384});

void BM_ReedDecrypt(benchmark::State& state) {
  auto scheme = static_cast<aont::Scheme>(state.range(0));
  aont::ReedCipher cipher(scheme);
  Bytes chunk = FixedData(8192, 32);
  Secret key(FixedData(32, 33));
  aont::SealedChunk sealed = cipher.Encrypt(chunk, key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.Decrypt(sealed.trimmed_package, sealed.stub));
  }
  state.SetBytesProcessed(state.iterations() * 8192);
  state.SetLabel(aont::SchemeName(scheme));
}
BENCHMARK(BM_ReedDecrypt)->Arg(0)->Arg(1);

void BM_SelfXorVsHashTail(benchmark::State& state) {
  // The enhanced scheme's tail: SelfXor(C2) vs a second SHA-256 pass.
  Bytes data = FixedData(8192 + 32, 34);
  bool use_hash = state.range(0) != 0;
  for (auto _ : state) {
    if (use_hash) {
      benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
    } else {
      benchmark::DoNotOptimize(aont::SelfXor(data));
    }
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(data.size()));
  state.SetLabel(use_hash ? "hash-tail" : "self-xor-tail");
}
BENCHMARK(BM_SelfXorVsHashTail)->Arg(0)->Arg(1);

// --------------------------- stub-size ablation ---------------------------

void BM_StubSizeSweep(benchmark::State& state) {
  // Cost side of the stub-size trade-off: encryption throughput is nearly
  // independent of stub size (the split is free); what changes is storage
  // overhead (stub bytes per chunk) and rekey payload — reported as
  // counters so the trade-off is visible in one table.
  std::size_t stub_size = static_cast<std::size_t>(state.range(0));
  aont::ReedCipher cipher(aont::Scheme::kEnhanced, stub_size);
  Bytes chunk = FixedData(8192, 35);
  Secret key(FixedData(32, 36));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.Encrypt(chunk, key));
  }
  state.SetBytesProcessed(state.iterations() * 8192);
  state.counters["stub_overhead_pct"] =
      100.0 * static_cast<double>(stub_size) / 8192.0;
  state.counters["rekey_bytes_per_mb"] =
      static_cast<double>(stub_size) * (1048576.0 / 8192.0);
}
BENCHMARK(BM_StubSizeSweep)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(1024);

}  // namespace

// Custom main: translate the repo-wide --json/--smoke flags into
// google-benchmark's native flags, then hand over to the library.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.emplace_back(std::string("--benchmark_out=") + argv[i + 1]);
      args.emplace_back("--benchmark_out_format=json");
      ++i;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      args.emplace_back("--benchmark_min_time=0.05s");
    } else if (std::strcmp(argv[i], "--full") == 0) {
      // Default google-benchmark timing is already the "full" scale.
    } else {
      args.emplace_back(argv[i]);
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (auto& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
