// Figure 10 — Experiment B.2: trace-driven upload/download performance.
//
// Replays seven consecutive daily backups for nine users through the full
// REED stack (chunk reconstruction from trace records, per paper §VI-B;
// OPRF keygen with cache cleared between users; enhanced encryption; 1 Gb/s
// simulated link), then downloads every backup of the last day.
//
// Paper shapes: day-1 upload is slow (~13 MB/s; every user misses the key
// cache), subsequent days jump to ~105 MB/s (cache hits + dedup);
// downloads sit slightly below the synthetic-data speeds and degrade
// gently as chunk fragmentation spreads later backups across containers
// (modeled here with a per-container-switch seek cost on server reads).
//
//   ./bench_fig10_trace [--full|--smoke] [--json out.json]
#include "bench/bench_util.h"
#include "trace/trace.h"

using namespace reed;
using namespace reed::bench;

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  bool smoke = HasFlag(argc, argv, "--smoke");
  JsonReporter json("fig10_trace", argc, argv);

  trace::TraceOptions topts;
  topts.num_users = smoke ? 3 : 9;
  topts.num_days = smoke ? 3 : 7;  // paper: March 19-25, 2013
  topts.user_snapshot_bytes = full ? (256ull << 20)
                                   : smoke ? (2ull << 20) : (8ull << 20);
  topts.daily_mod_rate = 0.010;
  topts.daily_growth_rate = 0.002;
  topts.cross_user_share = 0.30;
  topts.seed = 319;

  std::printf("=== Figure 10 / Experiment B.2: trace-driven upload/download ===\n");
  std::printf("%zu users x %zu days, %llu MB/user-day; enhanced encryption;"
              " key cache cleared per user; 1 Gb/s link\n\n",
              topts.num_users, topts.num_days,
              static_cast<unsigned long long>(topts.user_snapshot_bytes >> 20));

  core::SystemOptions sys_opts = PaperSystem(10);
  // 7200 RPM disk model: seek charged per container switch during restores
  // — the mechanism behind the paper's gentle download degradation
  // (chunk fragmentation across daily backups).
  sys_opts.disk_seek_seconds = 8e-3;
  core::ReedSystem system(sys_opts);
  // One client per user (the paper uploads "on behalf of all users" from
  // one machine, clearing the key cache between users — same effect).
  std::vector<std::unique_ptr<client::ReedClient>> clients;
  for (std::size_t u = 0; u < topts.num_users; ++u) {
    std::string name = "user-" + std::to_string(u);
    system.RegisterUser(name);
    client::ClientOptions copts;
    copts.scheme = aont::Scheme::kEnhanced;
    copts.avg_chunk_size = 8192;
    copts.rng_seed = 100 + u;
    clients.push_back(system.CreateClient(name, copts));
  }

  trace::TraceGenerator gen(topts);
  Table t({"day", "upload_mbps", "download_mbps"});

  // Paper order: all days of user 1, then user 2, ... with the cache
  // cleared per user. Equivalent (and reported per-day as the figure
  // does): iterate days outer, users inner, with per-user clients whose
  // caches persist across days.
  std::vector<std::vector<Bytes>> last_day_data(topts.num_users);
  for (std::size_t day = 0; day < topts.num_days; ++day) {
    std::uint64_t day_bytes = 0;
    double up_secs = 0;
    for (std::size_t u = 0; u < topts.num_users; ++u) {
      auto snap = trace::MaterializeSnapshot(gen.GetSnapshot(u, day));
      std::string file_id =
          "backup/u" + std::to_string(u) + "/d" + std::to_string(day);
      Stopwatch sw;
      (void)clients[u]->UploadChunked(file_id, snap.data, snap.refs,
                                      {"user-" + std::to_string(u)});
      up_secs += sw.ElapsedSeconds();
      day_bytes += snap.data.size();
      if (day + 1 == topts.num_days) {
        last_day_data[u].push_back(std::move(snap.data));
      }
    }
    // Download the day's backups back (paper downloads after uploading).
    double down_secs = 0;
    std::uint64_t down_bytes = 0;
    for (std::size_t u = 0; u < topts.num_users; ++u) {
      std::string file_id =
          "backup/u" + std::to_string(u) + "/d" + std::to_string(day);
      Stopwatch sw;
      Bytes data = clients[u]->Download(file_id);
      down_secs += sw.ElapsedSeconds();
      down_bytes += data.size();
    }
    t.Row({Fmt("%.0f", static_cast<double>(day + 1)),
           Fmt("%.1f", MbPerSec(day_bytes, up_secs)),
           Fmt("%.1f", MbPerSec(down_bytes, down_secs))});
    json.Add("trace", {{"day", static_cast<double>(day + 1)},
                       {"upload_mbps", MbPerSec(day_bytes, up_secs)},
                       {"download_mbps", MbPerSec(down_bytes, down_secs)}});
  }

  auto stats = system.TotalStats();
  std::printf("\nstored: %.1f MB physical + %.1f MB stubs for %.1f MB logical\n",
              ToMiB(stats.physical_bytes), ToMiB(stats.stub_bytes),
              ToMiB(stats.logical_bytes));
  std::printf("\npaper: upload 13.1 MB/s on day 1, ~105 MB/s after; download"
              " slightly below synthetic speeds,\n       degrading gently from"
              " chunk fragmentation across daily backups.\n");
  return 0;
}
