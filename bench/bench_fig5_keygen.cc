// Figure 5 — Experiment A.1: MLE key generation performance.
//
// (a) keygen speed vs average chunk size (batch fixed at 256 requests)
// (b) keygen speed vs batch size (average chunk size fixed at 8 KB)
//
// Paper shapes to reproduce: speed rises with chunk size (fewer chunks per
// byte); speed rises with batch size and saturates once the key manager's
// OPRF compute — not round trips — is the bottleneck (≥256).
//
//   ./bench_fig5_keygen [--full|--smoke] [--json out.json]
//   (--full: 2 GB file as in the paper; --smoke: 4 MB CI scale)
#include "bench/bench_util.h"
#include "chunk/chunker.h"
#include "keymanager/mle_key_client.h"
#include "net/rpc.h"

using namespace reed;
using namespace reed::bench;

namespace {

struct KeygenSetup {
  std::unique_ptr<keymanager::KeyManager> km;
  std::shared_ptr<net::SimulatedLink> link;

  explicit KeygenSetup(std::uint64_t seed) {
    crypto::DeterministicRng rng(seed);
    keymanager::KeyManager::Options opts;
    opts.rsa_bits = 1024;
    km = std::make_unique<keymanager::KeyManager>(opts, rng);
    link = std::make_shared<net::SimulatedLink>(1e9, 1e-3);
  }

  std::shared_ptr<net::RpcChannel> Channel() {
    keymanager::KeyManager* raw = km.get();
    return std::make_shared<net::SimulatedChannel>(
        [raw](ByteSpan req) { return raw->HandleRequest(req); }, link);
  }
};

double MeasureKeygen(KeygenSetup& setup, ByteSpan data,
                     std::size_t avg_chunk_size, std::size_t batch_size) {
  chunk::RabinChunker chunker(chunk::PaperChunking(avg_chunk_size));
  auto refs = chunker.Split(data);
  std::vector<chunk::Fingerprint> fps;
  fps.reserve(refs.size());
  for (const auto& r : refs) {
    fps.push_back(chunk::Fingerprint::Of(data.subspan(r.offset, r.length)));
  }

  keymanager::MleKeyClient::Options copts;
  copts.batch_size = batch_size;
  copts.enable_cache = false;  // measure raw keygen, as in the paper
  keymanager::MleKeyClient client("bench", setup.km->public_key(),
                                  setup.Channel(), copts);
  crypto::DeterministicRng rng(99);
  Stopwatch sw;
  auto keys = client.GetKeys(fps, rng);
  double secs = sw.ElapsedSeconds();
  if (keys.size() != fps.size()) throw Error("keygen bench: missing keys");
  return MbPerSec(data.size(), secs);
}

}  // namespace

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  bool smoke = HasFlag(argc, argv, "--smoke");
  std::size_t file_size = full ? (2ull << 30) : smoke ? (4ull << 20)
                                              : (32ull << 20);
  JsonReporter json("fig5_keygen", argc, argv);
  std::printf("=== Figure 5 / Experiment A.1: MLE key generation ===\n");
  std::printf("file: %zu MB of globally unique chunks; key manager: 1024-bit "
              "RSA OPRF; link: 1 Gb/s, 1 ms RTT\n\n",
              file_size >> 20);

  KeygenSetup setup(2016);
  Bytes data = UniqueData(file_size, 5);

  std::printf("--- Fig 5(a): speed vs average chunk size (batch = 256) ---\n");
  {
    Table t({"chunk_size_kb", "speed_mbps"});
    for (std::size_t kb : {2, 4, 8, 16}) {
      double mbps = MeasureKeygen(setup, data, kb * 1024, 256);
      t.Row({Fmt("%.0f", static_cast<double>(kb)), Fmt("%.2f", mbps)});
      json.Add("speed_vs_chunk", {{"chunk_size_kb", static_cast<double>(kb)},
                                  {"speed_mbps", mbps}});
    }
  }

  std::printf("\n--- Fig 5(b): speed vs batch size (chunk size = 8 KB) ---\n");
  {
    Table t({"batch_size", "speed_mbps"});
    for (std::size_t batch : {1, 4, 16, 64, 256, 1024, 4096}) {
      // Small batches pay a round trip per batch; subsample the file so the
      // batch=1 point finishes quickly yet still averages 1000+ requests.
      std::size_t sample = (batch < 16 && !full)
                               ? std::min<std::size_t>(data.size(), 8u << 20)
                               : data.size();
      double mbps = MeasureKeygen(setup, ByteSpan(data.data(), sample),
                                  8 * 1024, batch);
      t.Row({Fmt("%.0f", static_cast<double>(batch)), Fmt("%.2f", mbps)});
      json.Add("speed_vs_batch", {{"batch_size", static_cast<double>(batch)},
                                  {"speed_mbps", mbps}});
    }
  }

  std::printf("\npaper: Fig 5(a) rises ~4->17.6 MB/s over 2->16 KB;"
              " Fig 5(b) rises with batch size, saturating ~12.5 MB/s at >=256.\n");
  return 0;
}
