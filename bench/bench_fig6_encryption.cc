// Figure 6 — Experiment A.2: chunk-encryption performance.
//
// Speed of the basic vs enhanced REED encryption schemes as a function of
// average chunk size, with 2 encryption threads (paper setup). Keys are
// pre-fetched, as in the paper ("suppose that the client has created
// chunks ... and obtained MLE keys").
//
// Paper shapes: both schemes speed up with chunk size; basic is ~20-25%
// faster than enhanced (one fewer encryption pass); both comfortably
// exceed a 1 Gb/s link, so encryption is not the upload bottleneck.
//
//   ./bench_fig6_encryption [--full|--smoke] [--json out.json]
#include "aont/reed_cipher.h"
#include "bench/bench_util.h"
#include "chunk/chunker.h"
#include "crypto/aes.h"
#include "crypto/sha256.h"
#include "util/thread_pool.h"

using namespace reed;
using namespace reed::bench;

namespace {

double MeasureEncryptionOnce(aont::Scheme scheme, ByteSpan data,
                             std::size_t avg_chunk_size, std::size_t threads) {
  chunk::RabinChunker chunker(chunk::PaperChunking(avg_chunk_size));
  auto refs = chunker.Split(data);
  // Derive per-chunk MLE keys locally (already-fetched keys, per paper).
  std::vector<Secret> keys(refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    keys[i] = Secret(crypto::Sha256::HashToBytes(
        data.subspan(refs[i].offset, refs[i].length)));
  }

  aont::ReedCipher cipher(scheme);
  ThreadPool pool(threads);
  std::vector<aont::SealedChunk> out(refs.size());
  Stopwatch sw;
  pool.ParallelFor(refs.size(), [&](std::size_t i) {
    out[i] = cipher.Encrypt(data.subspan(refs[i].offset, refs[i].length),
                            keys[i]);
  });
  double secs = sw.ElapsedSeconds();
  return MbPerSec(data.size(), secs);
}

// Best of three runs — the box the bench runs on may be time-shared, and
// throughput benches want the least-disturbed sample.
double MeasureEncryption(aont::Scheme scheme, ByteSpan data,
                         std::size_t avg_chunk_size, std::size_t threads) {
  double best = 0;
  for (int i = 0; i < 3; ++i) {
    best = std::max(best,
                    MeasureEncryptionOnce(scheme, data, avg_chunk_size, threads));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  bool smoke = HasFlag(argc, argv, "--smoke");
  std::size_t file_size = full ? (2ull << 30) : smoke ? (16ull << 20)
                                              : (128ull << 20);
  JsonReporter json("fig6_encryption", argc, argv);
  std::printf("=== Figure 6 / Experiment A.2: encryption speed ===\n");
  std::printf("file: %zu MB unique chunks; 2 encryption threads; hardware "
              "AES/SHA: %s/%s\n\n",
              file_size >> 20,
              crypto::Aes256::UsingHardware() ? "AES-NI" : "portable",
              crypto::Sha256::UsingHardware() ? "SHA-NI" : "portable");

  Bytes data = UniqueData(file_size, 6);
  // Warm-up: touch the buffer and spin up thread-pool/code paths so the
  // first table cell is not penalized.
  (void)MeasureEncryption(aont::Scheme::kBasic,
                          ByteSpan(data.data(), std::min<std::size_t>(
                                                    data.size(), 32u << 20)),
                          8 * 1024, 2);

  Table t({"chunk_size_kb", "basic_mbps", "enhanced_mbps", "basic_adv"});
  for (std::size_t kb : {2, 4, 8, 16}) {
    double basic = MeasureEncryption(aont::Scheme::kBasic, data, kb * 1024, 2);
    double enhanced =
        MeasureEncryption(aont::Scheme::kEnhanced, data, kb * 1024, 2);
    t.Row({Fmt("%.0f", static_cast<double>(kb)), Fmt("%.1f", basic),
           Fmt("%.1f", enhanced), Fmt("%.0f%%", 100.0 * (basic / enhanced - 1.0))});
    json.Add("speed_vs_chunk", {{"chunk_size_kb", static_cast<double>(kb)},
                                {"basic_mbps", basic},
                                {"enhanced_mbps", enhanced}});
  }
  std::printf("\npaper (8 KB): basic 203 MB/s vs enhanced 155 MB/s (24%% faster);"
              " both rise with chunk size and exceed the 1 Gb/s network.\n");
  return 0;
}
