// Figure 7 — Experiment A.3: upload and download performance.
//
// (a) upload speed, 1st vs 2nd upload of identical content, both schemes,
//     vs average chunk size (key cache on, batch 256, 2 threads);
// (b) download speed, both schemes, vs average chunk size;
// (c) aggregate upload speed vs number of clients (enhanced scheme).
//
// Paper shapes: 1st uploads are MLE-keygen-bound (single-digit MB/s,
// rising with chunk size); 2nd uploads hit the cached keys and approach
// the network speed, with both schemes nearly identical; downloads also
// approach the network speed; aggregate upload scales with client count,
// keygen-bound on round 1 and network-bound on round 2.
//
// Scale note: the simulated link reproduces the 1 Gb/s testbed, but client
// compute (chunking + hashing + encryption) shares ONE core here instead
// of a quad-core i5 per machine, so "network-bound" tops out below the
// paper's ~110 MB/s wire rate. Crossovers and orderings are preserved.
//
//   ./bench_fig7_updown [--full|--smoke] [--json out.json]
#include <thread>

#include "bench/bench_util.h"

using namespace reed;
using namespace reed::bench;

namespace {

// depth/channels = 1/1 pins the legacy serial data path, keeping the
// historical updown/aggregate series comparable across releases; the
// dedicated pipeline series below turns the overlapped path on.
client::ClientOptions BenchClient(aont::Scheme scheme, std::size_t chunk_kb,
                                  std::size_t depth = 1,
                                  std::size_t channels = 1) {
  client::ClientOptions opts;
  opts.scheme = scheme;
  opts.avg_chunk_size = chunk_kb * 1024;
  opts.encryption_threads = 2;
  opts.pipeline.depth = depth;
  opts.pipeline.channels_per_server = channels;
  // Smaller batches give the overlapped pipeline enough units in flight;
  // the serial path keeps the paper's 4 MB batching.
  if (depth > 1) opts.upload_batch_bytes = 1u << 20;
  opts.rng_seed = 42;
  return opts;
}

struct UpDown {
  double first_mbps;
  double second_mbps;
  double download_mbps;
};

UpDown MeasureUpDown(const client::ClientOptions& copts, std::size_t chunk_kb,
                     std::size_t file_size) {
  core::ReedSystem system(PaperSystem(1000 + chunk_kb));
  system.RegisterUser("u");
  auto client = system.CreateClient("u", copts);
  Bytes data = UniqueData(file_size, 7000 + chunk_kb);

  UpDown result{};
  Stopwatch sw;
  (void)client->Upload("f1", data, {"u"});
  result.first_mbps = MbPerSec(data.size(), sw.ElapsedSeconds());

  sw.Reset();
  (void)client->Upload("f2", data, {"u"});  // identical content, cached keys
  result.second_mbps = MbPerSec(data.size(), sw.ElapsedSeconds());

  sw.Reset();
  Bytes back = client->Download("f1");
  result.download_mbps = MbPerSec(back.size(), sw.ElapsedSeconds());
  if (back != data) throw Error("fig7: download mismatch");
  return result;
}

struct AggregateResult {
  double first_mbps;
  double second_mbps;
};

AggregateResult MeasureAggregate(std::size_t num_clients,
                                 std::size_t file_size) {
  core::ReedSystem system(PaperSystem(2000 + num_clients));
  std::vector<std::unique_ptr<client::ReedClient>> clients;
  for (std::size_t c = 0; c < num_clients; ++c) {
    std::string user = "u" + std::to_string(c);
    system.RegisterUser(user);
    clients.push_back(
        system.CreateClient(user, BenchClient(aont::Scheme::kEnhanced, 8)));
  }
  // Per-client unique data (each client uploads its own content twice; the
  // second round is served by the key cache and dedup).
  std::vector<Bytes> data;
  for (std::size_t c = 0; c < num_clients; ++c) {
    data.push_back(UniqueData(file_size, 9000 + 17 * c));
  }

  auto run_round = [&](int r) {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < num_clients; ++c) {
      threads.emplace_back([&, c] {
        (void)clients[c]->Upload("f" + std::to_string(r), data[c],
                                 {"u" + std::to_string(c)});
      });
    }
    for (auto& t : threads) t.join();
  };

  AggregateResult result{};
  std::uint64_t total = static_cast<std::uint64_t>(file_size) * num_clients;
  Stopwatch sw;
  run_round(1);
  result.first_mbps = MbPerSec(total, sw.ElapsedSeconds());
  sw.Reset();
  run_round(2);  // identical content: cached keys + full dedup
  result.second_mbps = MbPerSec(total, sw.ElapsedSeconds());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  bool smoke = HasFlag(argc, argv, "--smoke");
  std::size_t file_size = full ? (2ull << 30) : smoke ? (4ull << 20)
                                              : (64ull << 20);
  std::size_t agg_size = full ? (2ull << 30) : smoke ? (2ull << 20)
                                             : (16ull << 20);
  std::vector<std::size_t> chunk_kbs =
      smoke ? std::vector<std::size_t>{4, 8}
            : std::vector<std::size_t>{2, 4, 8, 16};
  std::vector<std::size_t> client_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  JsonReporter json("fig7_updown", argc, argv);
  std::printf("=== Figure 7 / Experiment A.3: upload & download ===\n");
  std::printf("file: %zu MB; link: 1 Gb/s simulated; key cache on, batch 256, "
              "2 threads\n\n", file_size >> 20);

  std::printf("--- Fig 7(a)+(b): speeds vs chunk size ---\n");
  Table t({"chunk_kb", "scheme", "upload1_mbps", "upload2_mbps", "down_mbps"});
  for (std::size_t kb : chunk_kbs) {
    for (aont::Scheme scheme : {aont::Scheme::kBasic, aont::Scheme::kEnhanced}) {
      UpDown r = MeasureUpDown(BenchClient(scheme, kb), kb, file_size);
      t.Row({Fmt("%.0f", static_cast<double>(kb)), aont::SchemeName(scheme),
             Fmt("%.1f", r.first_mbps), Fmt("%.1f", r.second_mbps),
             Fmt("%.1f", r.download_mbps)});
      json.Add(std::string("updown_") + aont::SchemeName(scheme),
               {{"chunk_kb", static_cast<double>(kb)},
                {"upload1_mbps", r.first_mbps},
                {"upload2_mbps", r.second_mbps},
                {"down_mbps", r.download_mbps}});
    }
  }

  std::printf("\n--- Pipelined data path: serial vs overlapped (enhanced, 8 KB) ---\n");
  // DESIGN.md §10: depth-1 is the legacy serial reference (sequential
  // per-server RPCs, encode and transfer alternating); the overlapped
  // config fans RPCs out concurrently over 2 channels/server and keeps
  // depth-1 batches on the wire while the next batch encodes. A slightly
  // larger file than the smoke default amortizes per-file fixed costs
  // (CP-ABE wrap, metadata) that neither mode can overlap.
  std::size_t pipe_size = full ? (2ull << 30) : smoke ? (16ull << 20)
                                              : (64ull << 20);
  Table t3({"depth", "channels", "upload1_mbps", "upload2_mbps", "down_mbps"});
  double serial_up2 = 0, piped_up2 = 0;
  for (std::size_t depth : {std::size_t{1}, std::size_t{4}}) {
    std::size_t channels = depth == 1 ? 1 : 2;
    UpDown r = MeasureUpDown(
        BenchClient(aont::Scheme::kEnhanced, 8, depth, channels), 8, pipe_size);
    (depth == 1 ? serial_up2 : piped_up2) = r.second_mbps;
    t3.Row({Fmt("%.0f", static_cast<double>(depth)),
            Fmt("%.0f", static_cast<double>(channels)),
            Fmt("%.1f", r.first_mbps), Fmt("%.1f", r.second_mbps),
            Fmt("%.1f", r.download_mbps)});
    json.Add("pipeline", {{"depth", static_cast<double>(depth)},
                          {"upload1_mbps", r.first_mbps},
                          {"upload2_mbps", r.second_mbps},
                          {"down_mbps", r.download_mbps}});
  }
  std::printf("pipelined 2nd-upload speedup vs serial: %.2fx\n",
              serial_up2 > 0 ? piped_up2 / serial_up2 : 0.0);

  std::printf("\n--- Fig 7(c): aggregate upload speed vs #clients (enhanced, 8 KB) ---\n");
  Table t2({"clients", "upload1_mbps", "upload2_mbps"});
  for (std::size_t n : client_counts) {
    AggregateResult r = MeasureAggregate(n, agg_size);
    t2.Row({Fmt("%.0f", static_cast<double>(n)), Fmt("%.1f", r.first_mbps),
            Fmt("%.1f", r.second_mbps)});
    json.Add("aggregate", {{"clients", static_cast<double>(n)},
                           {"upload1_mbps", r.first_mbps},
                           {"upload2_mbps", r.second_mbps}});
  }

  std::printf("\npaper: 1st uploads 4-17 MB/s rising with chunk size;"
              " 2nd uploads/downloads ~107-108 MB/s (network-bound) at >=8 KB;"
              "\n       aggregate 2nd upload reaches 374.9 MB/s at 8 clients"
              " (multi-machine testbed).\n");
  return 0;
}
