// Figure 8 — Experiment A.4: rekeying performance (lazy vs active).
//
// Rekeying = CP-ABE decrypt of the key state (constant cost for OR
// policies) + key-regression wind + CP-ABE encrypt under the new policy
// (cost linear in the number of authorized users) + — for active
// revocation only — downloading, re-encrypting, and re-uploading the stub
// file over the 1 Gb/s link.
//
// (a) delay vs total number of users   (2 GB file, 20% revoked)
// (b) delay vs revocation ratio        (2 GB file, 500 users)
// (c) delay vs file size               (500 users, 20% revoked)
//
// Paper shapes: grows with user count (CP-ABE encrypt dominates); shrinks
// with revocation ratio (fewer leaves in the new policy); lazy flat in
// file size while active grows with the stub-file transfer; everything
// stays within seconds.
//
// The file itself is never uploaded here: rekeying touches only the key
// state and the stub file, so the bench materializes a stub file of the
// exact size an N-GB file would have (N / 8 KB chunks x 64 B) — the same
// objects ReedClient::Rekey reads and writes.
//
//   ./bench_fig8_rekeying [--full|--smoke] [--json out.json]
#include "abe/cpabe.h"
#include "aont/reed_cipher.h"
#include "bench/bench_util.h"
#include "client/storage_client.h"
#include "rsa/key_regression.h"
#include "store/recipe.h"

using namespace reed;
using namespace reed::bench;

namespace {

struct RekeyBench {
  std::shared_ptr<const pairing::TypeAPairing> pairing;
  std::unique_ptr<abe::CpAbe> cpabe;
  abe::CpAbe::SetupResult setup;
  abe::PrivateKey owner_key;
  rsa::RsaKeyPair derivation;
  std::unique_ptr<server::StorageServer> server;
  std::unique_ptr<client::StorageClient> storage;
  std::shared_ptr<net::SimulatedLink> link;
  crypto::DeterministicRng rng{2016};

  RekeyBench() {
    pairing = std::make_shared<const pairing::TypeAPairing>(
        pairing::TypeAParams::Default());
    cpabe = std::make_unique<abe::CpAbe>(pairing);
    setup = cpabe->Setup(rng);
    owner_key = cpabe->KeyGen(setup.pk, setup.mk, {"user:owner"}, rng);
    derivation = rsa::GenerateKeyPair(1024, rng);
    server = std::make_unique<server::StorageServer>("s");
    link = std::make_shared<net::SimulatedLink>(1e9, 1e-3);
    server::StorageServer* raw = server.get();
    auto channel = std::make_shared<net::SimulatedChannel>(
        [raw](ByteSpan req) { return raw->HandleRequest(req); }, link);
    storage = std::make_unique<client::StorageClient>(
        std::vector<std::shared_ptr<net::RpcChannel>>{channel}, channel);
  }

  std::vector<std::string> Users(std::size_t n) {
    std::vector<std::string> users = {"owner"};
    for (std::size_t i = 1; i < n; ++i) {
      users.push_back("user-" + std::to_string(i));
    }
    return users;
  }

  // Stores the key state + stub file for a hypothetical file of
  // `file_bytes` (8 KB average chunks, 64 B stubs) shared with `users`.
  rsa::KeyState PrepareFile(const std::string& id, std::uint64_t file_bytes,
                            const std::vector<std::string>& users) {
    rsa::KeyRegressionOwner owner(derivation);
    rsa::KeyState state = owner.GenesisState(rng);

    std::size_t num_chunks = file_bytes / 8192;
    crypto::DeterministicRng stub_rng(7);
    Secret stub_data = stub_rng.GenerateSecret(num_chunks * 64);
    Bytes stub_blob =
        Declassify(aont::EncryptStubFile(stub_data, state.DeriveFileKey(), rng),
                   "bench: stub-file ciphertext upload");
    storage->PutObject(server::StoreId::kData, "stub/" + id, stub_blob);

    store::KeyStateRecord record;
    record.owner_id = "owner";
    record.key_version = state.version;
    record.stub_key_version = state.version;
    abe::PolicyNode policy = abe::PolicyNode::OrOfUsers(users);
    policy.SerializeTo(record.policy);
    record.wrapped_state = Declassify(
        cpabe->EncryptBytes(setup.pk, policy, state.Serialize(derivation.pub),
                            rng),
        "bench: ABE-wrapped key-state upload");
    record.derivation_public_key = rsa::SerializePublicKey(derivation.pub);
    storage->PutObject(server::StoreId::kKey, "keystate/" + id,
                       record.Serialize());
    return state;
  }

  // Executes exactly the steps of ReedClient::Rekey and returns the delay.
  double Rekey(const std::string& id,
               const std::vector<std::string>& new_users, bool active) {
    Stopwatch sw;
    // Download + unwrap the key state.
    store::KeyStateRecord record = store::KeyStateRecord::Deserialize(
        storage->GetObject(server::StoreId::kKey, "keystate/" + id));
    Secret state_blob = cpabe->DecryptBytes(owner_key, record.wrapped_state);
    rsa::KeyState current =
        rsa::KeyState::Deserialize(state_blob, derivation.pub);

    // Wind forward; re-wrap under the new policy.
    rsa::KeyRegressionOwner owner(derivation);
    rsa::KeyState next = owner.Wind(current);
    abe::PolicyNode policy = abe::PolicyNode::OrOfUsers(new_users);
    record.key_version = next.version;
    record.policy.clear();
    policy.SerializeTo(record.policy);
    record.wrapped_state = Declassify(
        cpabe->EncryptBytes(setup.pk, policy, next.Serialize(derivation.pub),
                            rng),
        "bench: rewrapped key-state upload");

    if (active) {
      rsa::KeyRegressionMember member(derivation.pub);
      rsa::KeyState stub_state =
          member.UnwindTo(current, record.stub_key_version);
      Secret stub_data = aont::DecryptStubFile(
          storage->GetObject(server::StoreId::kData, "stub/" + id),
          stub_state.DeriveFileKey());
      storage->PutObject(
          server::StoreId::kData, "stub/" + id,
          Declassify(
              aont::EncryptStubFile(stub_data, next.DeriveFileKey(), rng),
              "bench: re-encrypted stub-file upload"));
      record.stub_key_version = next.version;
    }
    storage->PutObject(server::StoreId::kKey, "keystate/" + id,
                       record.Serialize());
    return sw.ElapsedSeconds();
  }
};

std::vector<std::string> Keep(const std::vector<std::string>& users,
                              double revoke_ratio) {
  std::size_t keep =
      users.size() -
      static_cast<std::size_t>(static_cast<double>(users.size()) * revoke_ratio);
  if (keep == 0) keep = 1;
  return std::vector<std::string>(users.begin(), users.begin() + keep);
}

}  // namespace

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  bool smoke = HasFlag(argc, argv, "--smoke");
  JsonReporter json("fig8_rekeying", argc, argv);
  std::printf("=== Figure 8 / Experiment A.4: rekeying delay ===\n");
  std::printf("CP-ABE over a 160/512-bit Type-A pairing; 1024-bit key "
              "regression; 1 Gb/s link\n\n");
  RekeyBench bench;
  const std::uint64_t kGB = 1ull << 30;
  // Smoke scale: fewer/smaller policies and a 256 MB base file keep every
  // series shape while finishing in seconds.
  std::vector<std::size_t> user_counts =
      smoke ? std::vector<std::size_t>{20, 50}
            : std::vector<std::size_t>{100, 200, 300, 400, 500};
  std::size_t big_users = smoke ? 50 : 500;
  std::uint64_t base_file = smoke ? kGB / 4 : 2 * kGB;
  std::vector<double> ratios =
      smoke ? std::vector<double>{0.1, 0.3, 0.5}
            : std::vector<double>{0.05, 0.1, 0.2, 0.3, 0.4, 0.5};

  std::printf("--- Fig 8(a): delay vs total #users (2 GB file, 20%% revoked) ---\n");
  {
    Table t({"users", "lazy_s", "active_s"});
    for (std::size_t n : user_counts) {
      auto users = bench.Users(n);
      bench.PrepareFile("a-lazy", base_file, users);
      bench.PrepareFile("a-active", base_file, users);
      double lazy = bench.Rekey("a-lazy", Keep(users, 0.2), false);
      double active = bench.Rekey("a-active", Keep(users, 0.2), true);
      t.Row({Fmt("%.0f", static_cast<double>(n)), Fmt("%.2f", lazy),
             Fmt("%.2f", active)});
      json.Add("users", {{"users", static_cast<double>(n)},
                         {"lazy_s", lazy},
                         {"active_s", active}});
    }
  }

  std::printf("\n--- Fig 8(b): delay vs revocation ratio (2 GB file, 500 users) ---\n");
  {
    Table t({"revoke_pct", "lazy_s", "active_s"});
    auto users = bench.Users(big_users);
    for (double pct : ratios) {
      bench.PrepareFile("b-lazy", base_file, users);
      bench.PrepareFile("b-active", base_file, users);
      double lazy = bench.Rekey("b-lazy", Keep(users, pct), false);
      double active = bench.Rekey("b-active", Keep(users, pct), true);
      t.Row({Fmt("%.0f", pct * 100), Fmt("%.2f", lazy), Fmt("%.2f", active)});
      json.Add("ratio", {{"revoke_pct", pct * 100},
                         {"lazy_s", lazy},
                         {"active_s", active}});
    }
  }

  std::printf("\n--- Fig 8(c): delay vs file size (500 users, 20%% revoked) ---\n");
  {
    Table t({"file_gb", "lazy_s", "active_s"});
    auto users = bench.Users(big_users);
    std::vector<std::uint64_t> sizes =
        smoke ? std::vector<std::uint64_t>{1, 2}
              : std::vector<std::uint64_t>{1, 2, 4, 8};
    if (full) sizes.push_back(16);
    for (std::uint64_t gb : sizes) {
      // Smoke keeps the x-axis labels but scales the materialized stub down
      // with the same factor as the base file.
      std::uint64_t bytes = smoke ? gb * kGB / 8 : gb * kGB;
      bench.PrepareFile("c-lazy", bytes, users);
      bench.PrepareFile("c-active", bytes, users);
      double lazy = bench.Rekey("c-lazy", Keep(users, 0.2), false);
      double active = bench.Rekey("c-active", Keep(users, 0.2), true);
      t.Row({Fmt("%.0f", static_cast<double>(gb)), Fmt("%.2f", lazy),
             Fmt("%.2f", active)});
      json.Add("filesize", {{"file_gb", static_cast<double>(gb)},
                            {"lazy_s", lazy},
                            {"active_s", active}});
    }
  }

  std::printf("\n--- extension: group rekeying (one CP-ABE encryption per group;"
              " §IV-D future work) ---\n");
  {
    // K files, 100 users, lazy revocation of 20%: individual rekeys pay K
    // CP-ABE encryptions; the group path pays one + K symmetric wraps.
    Table t({"files", "individual_s", "group_s", "speedup"});
    auto users = bench.Users(smoke ? 30 : 100);
    auto new_users = Keep(users, 0.2);
    abe::PolicyNode policy = abe::PolicyNode::OrOfUsers(new_users);
    std::uint64_t group_file = smoke ? kGB / 8 : kGB;
    std::vector<std::size_t> group_sizes =
        smoke ? std::vector<std::size_t>{2, 8}
              : std::vector<std::size_t>{2, 8, 32};
    for (std::size_t k : group_sizes) {
      // Individual: run the existing per-file flow k times.
      double individual = 0;
      for (std::size_t i = 0; i < k; ++i) {
        bench.PrepareFile("gi-" + std::to_string(i), group_file, users);
      }
      for (std::size_t i = 0; i < k; ++i) {
        individual += bench.Rekey("gi-" + std::to_string(i), new_users, false);
      }
      // Group: one wrap-key encryption + per-file symmetric wraps.
      std::vector<rsa::KeyState> states;
      for (std::size_t i = 0; i < k; ++i) {
        states.push_back(
            bench.PrepareFile("gg-" + std::to_string(i), group_file, users));
      }
      Stopwatch sw;
      Secret wrap_key = bench.rng.GenerateSecret(32);
      Bytes wrapped_group = Declassify(
          bench.cpabe->EncryptBytes(bench.setup.pk, policy, wrap_key,
                                    bench.rng),
          "bench: ABE-wrapped group wrap-key upload");
      bench.storage->PutObject(server::StoreId::kKey, "groupwrap/bench",
                               wrapped_group);
      rsa::KeyRegressionOwner owner(bench.derivation);
      for (std::size_t i = 0; i < k; ++i) {
        store::KeyStateRecord record = store::KeyStateRecord::Deserialize(
            bench.storage->GetObject(server::StoreId::kKey,
                                     "keystate/gg-" + std::to_string(i)));
        Secret state_blob =
            bench.cpabe->DecryptBytes(bench.owner_key, record.wrapped_state);
        rsa::KeyState next = owner.Wind(
            rsa::KeyState::Deserialize(state_blob, bench.derivation.pub));
        record.key_version = next.version;
        record.group_wrap_id = "groupwrap/bench";
        record.wrapped_state = Declassify(
            aont::WrapKeyBlob(next.Serialize(bench.derivation.pub), wrap_key,
                              bench.rng),
            "bench: group-wrapped key-state upload");
        bench.storage->PutObject(server::StoreId::kKey,
                                 "keystate/gg-" + std::to_string(i),
                                 record.Serialize());
      }
      double group = sw.ElapsedSeconds();
      t.Row({Fmt("%.0f", static_cast<double>(k)), Fmt("%.2f", individual),
             Fmt("%.2f", group), Fmt("%.1fx", individual / group)});
      json.Add("group", {{"files", static_cast<double>(k)},
                         {"individual_s", individual},
                         {"group_s", group}});
    }
  }

  std::printf("\npaper: (a) both rise with #users, <3 s; lazy ~0.6 s faster;"
              "\n       (b) both shrink as more users are revoked (1.44 s / 2 s at 50%%);"
              "\n       (c) lazy flat at 2.25 s; active grows to 3.4 s at 8 GB.\n");
  return 0;
}
