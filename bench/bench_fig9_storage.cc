// Figure 9 — Experiment B.1: storage overhead on the (synthetic) FSL-style
// backup trace.
//
// (a) cumulative logical data vs physical+stub data over backup days
// (b) cumulative physical (deduplicated trimmed packages) vs stub data
//
// Paper shapes: logical data grows by hundreds of GB per day while
// physical+stub grow by a sliver (5.52 GB/day avg; 98.6% total saving
// after 147 days); stub data cannot be deduplicated, so it grows linearly
// and ends the run comparable in size to the physical data (380 GB vs
// 432 GB in the paper).
//
// Substitution (DESIGN.md §3): the FSL-Homes 2013 dataset is replaced by
// the synthetic trace generator at laptop scale; per-day logical bytes are
// ~4 MB/user instead of ~50 GB/user, every ratio is preserved.
//
//   ./bench_fig9_storage [--full|--smoke] [--json out.json]
#include <unordered_set>

#include "aont/reed_cipher.h"
#include "bench/bench_util.h"
#include "trace/trace.h"

using namespace reed;
using namespace reed::bench;

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  bool smoke = HasFlag(argc, argv, "--smoke");
  JsonReporter json("fig9_storage", argc, argv);

  trace::TraceOptions topts;
  topts.num_users = 9;
  topts.num_days = smoke ? 42 : 147;  // full day count unless smoke
  topts.user_snapshot_bytes = full ? (64ull << 20)
                                   : smoke ? (1ull << 20) : (4ull << 20);
  topts.daily_mod_rate = 0.010;
  topts.daily_growth_rate = 0.002;
  topts.cross_user_share = 0.30;
  topts.seed = 2013;

  std::printf("=== Figure 9 / Experiment B.1: storage overhead ===\n");
  std::printf("synthetic FSL-style trace: %zu users x %zu days, %llu MB/user-day,"
              " 1.0%%/day churn, 0.2%%/day growth, 30%% cross-user sharing\n",
              topts.num_users, topts.num_days,
              static_cast<unsigned long long>(topts.user_snapshot_bytes >> 20));
  std::printf("stub size 64 B per 8 KB-average chunk; dedup on trimmed-package"
              " fingerprints\n\n");

  // Dedup accounting at trace level: the REED trimmed package for a chunk
  // is (chunk + 32 B key/canary + 32 B tail - 64 B stub) = chunk-sized, so
  // physical bytes equal unique chunk bytes and stub bytes are
  // 64 B x logical chunks. (The integration tests verify this equivalence
  // against the full encrypt pipeline; here it lets the 147-day run finish
  // quickly at any scale.)
  trace::TraceGenerator gen(topts);
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t logical = 0, physical = 0, stub = 0;

  Table t({"day", "logical_gb", "physical_gb", "stub_gb", "saving_pct"});
  for (std::size_t day = 0; day < topts.num_days; ++day) {
    for (std::size_t user = 0; user < topts.num_users; ++user) {
      trace::Snapshot snap = gen.GetSnapshot(user, day);
      for (const auto& rec : snap) {
        logical += rec.size;
        stub += aont::kDefaultStubSize;
        if (seen.insert(rec.fingerprint48).second) {
          physical += rec.size;  // trimmed package ≈ chunk size (see above)
        }
      }
    }
    bool report = day == 0 || (day + 1) % 21 == 0 || day + 1 == topts.num_days;
    if (report) {
      double saving = 100.0 * (1.0 - static_cast<double>(physical + stub) /
                                         static_cast<double>(logical));
      t.Row({Fmt("%.0f", static_cast<double>(day + 1)),
             Fmt("%.3f", ToGiB(logical)), Fmt("%.3f", ToGiB(physical)),
             Fmt("%.3f", ToGiB(stub)), Fmt("%.2f", saving)});
      json.Add("storage", {{"day", static_cast<double>(day + 1)},
                           {"logical_gb", ToGiB(logical)},
                           {"physical_gb", ToGiB(physical)},
                           {"stub_gb", ToGiB(stub)},
                           {"saving_pct", saving}});
    }
  }

  double total_saving = 100.0 * (1.0 - static_cast<double>(physical + stub) /
                                           static_cast<double>(logical));
  std::printf("\nfinal: %.2f GB logical -> %.3f GB physical + %.3f GB stub"
              " (saving %.2f%%)\n",
              ToGiB(logical), ToGiB(physical), ToGiB(stub), total_saving);
  std::printf("stub/physical ratio: %.2f (paper: 380.14/431.89 = 0.88)\n",
              static_cast<double>(stub) / static_cast<double>(physical));
  std::printf("\npaper: 57,548 GB logical -> 812 GB physical+stub after 147 days"
              " (98.6%% saving);\n       stub data grows linearly and cannot be"
              " deduplicated.\n");
  return 0;
}
