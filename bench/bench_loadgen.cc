// Massive-client load generator: async epoll front end vs thread-per-
// connection under identical paced workloads, plus an adversarial rekey
// storm (DESIGN.md §13, EXPERIMENTS.md).
//
// Phases (every phase re-creates its server and re-seeds an identical
// corpus, so dedup state is fair):
//   threadconn @ C    TcpServer, C clients at the target aggregate rate
//   async @ C         AsyncServer, same client count and rate
//   async @ 4C        AsyncServer, 4x the clients, same aggregate rate —
//                     the acceptance phase: the async front end must hold
//                     p99 at or near the thread-per-conn baseline while
//                     carrying 4x the connection count
//   rekey storm @ 4C  closed-loop 100%-rekey burst through per-tenant
//                     admission control; the security oracle then checks
//                     that no stored package changed (PackageDigest) and
//                     the dedup state is intact (CheckConsistency) — the
//                     paper's stub-only-rekey invariant under contention.
//
// Reported per phase: throughput and p50/p99 (JSON, baseline-gated via
// tools/ci/bench_compare.py) plus p999 on stdout (too noisy at smoke scale
// to gate on).
//
//   ./bench_loadgen [--full|--smoke] [--json out.json]
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/loadgen_util.h"
#include "net/async_server.h"
#include "net/tcp_server.h"
#include "server/storage_server.h"

using namespace reed;
using namespace reed::bench;

namespace {

struct Scale {
  std::size_t clients;         // C: the thread-per-conn fleet
  std::size_t total_ops;       // per capacity phase, split across clients
  double rate;                 // aggregate ops/sec
  std::size_t files;
  std::size_t chunks_per_file;
  std::size_t chunk_bytes;
  std::size_t storm_ops;       // rekey-storm total ops (closed loop)
};

LoadgenConfig ConfigFor(const Scale& scale, std::size_t clients) {
  LoadgenConfig cfg;
  cfg.clients = clients;
  cfg.ops_per_client = scale.total_ops / clients;
  cfg.target_rate = scale.rate;
  cfg.files = scale.files;
  cfg.chunks_per_file = scale.chunks_per_file;
  cfg.chunk_bytes = scale.chunk_bytes;
  return cfg;
}

LoadgenReport RunPhase(const char* label, std::uint16_t port,
                       const LoadgenConfig& cfg) {
  SeedLoadgenCorpus(port, cfg);
  LoadgenReport r = RunLoadgen(port, cfg);
  std::printf(
      "%-14s clients=%4zu ops=%6llu  %8.0f ops/s  "
      "p50=%6llu us  p99=%7llu us  p999=%7llu us  errs=%llu/%llu thr=%llu\n",
      label, cfg.clients, (unsigned long long)r.ops, r.ops_per_sec,
      (unsigned long long)r.p50_us, (unsigned long long)r.p99_us,
      (unsigned long long)r.p999_us, (unsigned long long)r.net_errors,
      (unsigned long long)r.op_errors, (unsigned long long)r.throttled);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("loadgen", argc, argv);
  Scale scale{16, 960, 800, 24, 4, 4096, 480};  // default
  if (HasFlag(argc, argv, "--smoke")) {
    scale = {6, 240, 300, 12, 3, 2048, 96};
  } else if (HasFlag(argc, argv, "--full")) {
    scale = {125, 10000, 2500, 64, 8, 8192, 4000};
  }
  auto handler_for = [](server::StorageServer& storage) {
    return [&storage](ByteSpan request) {
      return storage.HandleRequest(request);
    };
  };

  int failures = 0;

  // --- capacity phases ---
  LoadgenReport threadconn;
  {
    server::StorageServer storage("loadgen-threadconn");
    net::TcpServer server(0, handler_for(storage));
    threadconn =
        RunPhase("threadconn@C", server.port(), ConfigFor(scale, scale.clients));
    json.Add("capacity", {{"mode", 0},
                          {"clients", (double)scale.clients},
                          {"ops_rate", threadconn.ops_per_sec},
                          {"p50_us", (double)threadconn.p50_us},
                          {"p99_us", (double)threadconn.p99_us}});
  }
  LoadgenReport async_c;
  {
    server::StorageServer storage("loadgen-async");
    net::AsyncServer::Options options;
    options.loops = 2;
    options.workers = 4;
    net::AsyncServer server(0, handler_for(storage), options);
    async_c =
        RunPhase("async@C", server.port(), ConfigFor(scale, scale.clients));
    json.Add("capacity", {{"mode", 1},
                          {"clients", (double)scale.clients},
                          {"ops_rate", async_c.ops_per_sec},
                          {"p50_us", (double)async_c.p50_us},
                          {"p99_us", (double)async_c.p99_us}});
  }
  LoadgenReport async_4c;
  {
    server::StorageServer storage("loadgen-async4");
    net::AsyncServer::Options options;
    options.loops = 2;
    options.workers = 4;
    net::AsyncServer server(0, handler_for(storage), options);
    async_4c = RunPhase("async@4C", server.port(),
                        ConfigFor(scale, scale.clients * 4));
    json.Add("capacity", {{"mode", 1},
                          {"clients", (double)(scale.clients * 4)},
                          {"ops_rate", async_4c.ops_per_sec},
                          {"p50_us", (double)async_4c.p50_us},
                          {"p99_us", (double)async_4c.p99_us}});
  }

  // The tentpole claim: 4x the concurrent clients at equal-or-better p99.
  // Bucketed percentiles quantize coarsely, so allow one interpolation
  // step of slack; a real regression (a wedged loop, lost wakeups,
  // outbox stalls) blows p99 out by orders of magnitude, not 30%.
  double p99_ratio = threadconn.p99_us > 0
                         ? (double)async_4c.p99_us / (double)threadconn.p99_us
                         : 0;
  bool p99_held = async_4c.p99_us <= threadconn.p99_us ||
                  p99_ratio <= 1.30;
  std::printf("verdict: async@4C carried %zux clients, p99 %llu us vs "
              "threadconn %llu us (ratio %.2f) -> %s\n",
              (size_t)4, (unsigned long long)async_4c.p99_us,
              (unsigned long long)threadconn.p99_us, p99_ratio,
              p99_held ? "PASS" : "WARN");

  // Lost ops are a hard failure in every capacity phase: nothing should
  // drop connections or fail in-protocol at these rates.
  for (const LoadgenReport* r : {&threadconn, &async_c, &async_4c}) {
    if (r->net_errors != 0 || r->op_errors != 0 || r->throttled != 0) {
      std::printf("FAIL: capacity phase dropped ops (net=%llu op=%llu "
                  "thr=%llu)\n",
                  (unsigned long long)r->net_errors,
                  (unsigned long long)r->op_errors,
                  (unsigned long long)r->throttled);
      ++failures;
    }
  }

  // --- rekey storm through admission control ---
  {
    server::StorageServer storage("loadgen-storm");
    net::AsyncServer::Options options;
    options.loops = 2;
    options.workers = 4;
    // Generous per-tenant rate: the storm mostly flows, but bursts clip —
    // both the admitted and the throttled path stay hot.
    options.tenant_rate_per_sec = scale.rate;
    options.tenant_burst = 16;
    net::AsyncServer server(0, handler_for(storage), options);

    LoadgenConfig cfg = ConfigFor(scale, scale.clients * 4);
    cfg.ops_per_client = scale.storm_ops / cfg.clients;
    cfg.target_rate = 0;  // closed loop: as hard as the fleet can push
    cfg.upload_pct = 0;
    cfg.rekey_pct = 100;
    cfg.tenants = 4;
    SeedLoadgenCorpus(server.port(), cfg);
    std::string digest_before = storage.PackageDigest();
    LoadgenReport storm = RunLoadgen(server.port(), cfg);
    std::printf(
        "rekey-storm    clients=%4zu ops=%6llu  %8.0f ops/s  "
        "p99=%7llu us  throttled=%llu\n",
        cfg.clients, (unsigned long long)storm.ops, storm.ops_per_sec,
        (unsigned long long)storm.p99_us, (unsigned long long)storm.throttled);

    // Security oracle: a rekey storm rewrites key states only — every
    // stored package must be bit-identical and the dedup index intact.
    bool oracle_ok = storage.PackageDigest() == digest_before &&
                     storage.CheckConsistency().ok;
    if (!oracle_ok || storm.net_errors != 0 || storm.op_errors != 0) {
      std::printf("FAIL: rekey storm broke an invariant (oracle=%d "
                  "net=%llu op=%llu)\n",
                  oracle_ok ? 1 : 0, (unsigned long long)storm.net_errors,
                  (unsigned long long)storm.op_errors);
      ++failures;
    }
    json.Add("storm", {{"clients", (double)cfg.clients},
                       {"ops_rate", storm.ops_per_sec},
                       {"p99_us", (double)storm.p99_us},
                       {"oracle_ok", oracle_ok ? 1.0 : 0.0}});
  }

  return failures == 0 ? 0 : 1;
}
