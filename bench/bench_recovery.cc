// Cold-restart / recovery-time series for the durable store (DESIGN.md
// §12) — not a paper figure: REED's testbed never measures restart cost,
// but the durable engine makes recovery a first-class path, so this bench
// pins its two regimes:
//
// (a) WAL-replay restart: the server is killed with a full WAL tail (no
//     checkpoint), so reopening rebuilds the fingerprint index and object
//     stores by scanning segments and replaying every WAL record.
// (b) post-checkpoint restart: Close() checkpointed the metadata plane, so
//     reopening loads index.ckpt and replays nothing.
//
// The series sweeps ingested-chunk counts so the replay cost's linear
// growth (and the checkpoint restart's flatness) show up as shapes
// bench_compare.py can gate.
//
//   ./bench_recovery [--full|--smoke] [--json out.json]
#include <filesystem>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "server/storage_server.h"
#include "util/stopwatch.h"

using namespace reed;
using namespace reed::bench;

namespace {

server::StorageServer::Options DurableOptions(const std::string& dir) {
  server::StorageServer::Options opts;
  opts.data_dir = dir;
  // Page-cache-speed appends: this bench times the *recovery scan*, not
  // the ingest fsyncs, and the store it reopens is exactly as durable.
  opts.durability.fsync_policy = store::FsyncPolicy::kNone;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  bool smoke = HasFlag(argc, argv, "--smoke");
  JsonReporter json("recovery", argc, argv);

  const std::size_t chunk_size = 4096;
  const std::size_t batch = 64;
  std::vector<std::size_t> points =
      full ? std::vector<std::size_t>{4096, 8192, 16384, 32768}
      : smoke ? std::vector<std::size_t>{512, 1024, 2048}
              : std::vector<std::size_t>{1024, 2048, 4096, 8192};

  std::printf("=== Durable-store recovery: cold-restart time ===\n");
  std::printf("%zu B chunks ingested in batches of %zu; WAL-replay restart"
              " vs post-checkpoint restart\n\n",
              chunk_size, batch);

  const std::string base =
      (std::filesystem::temp_directory_path() / "reed_bench_recovery")
          .string();

  Table t({"chunks", "ingest_mb", "replay_ms", "replayed_recs", "ckpt_ms"});
  for (std::size_t n : points) {
    const std::string dir = base + "_" + std::to_string(n);
    std::filesystem::remove_all(dir);
    {
      server::StorageServer server("bench-recovery", DurableOptions(dir));
      std::vector<std::pair<chunk::Fingerprint, Bytes>> chunks;
      for (std::size_t i = 0; i < n; ++i) {
        Bytes data = UniqueData(chunk_size, 0x9e3779b9 + i);
        chunks.emplace_back(chunk::Fingerprint::Of(data), std::move(data));
        if (chunks.size() == batch || i + 1 == n) {
          const auto result = server.PutChunks(chunks);
          (void)result;
          // A recipe object per batch so the metadata plane has both
          // index records and object records to replay, like a real run.
          server.PutObject(server::StoreId::kData,
                           "recipe/batch-" + std::to_string(i / batch),
                           Bytes(128, 0x5A));
          chunks.clear();
        }
      }

      // (a) Restart with the full WAL tail: no checkpoint has happened, so
      // everything ingested above replays.
      Stopwatch replay;
      server.Reopen();
      const double replay_ms = replay.ElapsedMillis();
      const auto stats = server.RecoveryStats();

      // (b) Checkpoint, then restart: the reopen loads index.ckpt and
      // replays an empty WAL.
      server.Close();
      Stopwatch ckpt;
      server.Reopen();
      const double ckpt_ms = ckpt.ElapsedMillis();

      const std::uint64_t ingest_bytes =
          static_cast<std::uint64_t>(n) * chunk_size;
      t.Row({Fmt("%.0f", AsDouble(n)), Fmt("%.2f", ToMiB(ingest_bytes)),
             Fmt("%.2f", replay_ms), Fmt("%.0f", AsDouble(stats.replayed_records)),
             Fmt("%.2f", ckpt_ms)});
      json.Add("restart_time",
               {{"chunks", AsDouble(n)},
                {"replay_ms", replay_ms},
                {"replayed_records", AsDouble(stats.replayed_records)},
                {"checkpoint_restart_ms", ckpt_ms}});
    }
    std::filesystem::remove_all(dir);
  }

  std::printf("\nWAL replay grows linearly with the un-checkpointed tail;"
              " the post-checkpoint restart stays flat — checkpoint cadence"
              " is the knob trading ingest-path work for restart time.\n");
  return 0;
}
