// Shared helpers for the figure-reproduction benches: testbed-shaped system
// construction, synthetic data, table printing in the same units the paper
// reports (MB/s, seconds, GB), and machine-readable JSON output.
//
// Every bench accepts three scale/output flags:
//   --full         the paper's original scale (2 GB files, 147-day trace)
//   --smoke        tiny CI scale: same series shapes, seconds of wall time
//                  (what BENCH_baseline.json and the bench-smoke CI job use)
//   --json <path>  write every recorded series as JSON for
//                  tools/ci/bench_compare.py, alongside the human table
// The default scale finishes on a laptop core in minutes and preserves every
// reported *shape*.
#pragma once

#include <cstdio>
#include <cstring>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "core/reed_system.h"
#include "crypto/random.h"
#include "util/stopwatch.h"

namespace reed::bench {

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// Value-carrying flag: returns the argument after `flag`, or nullptr.
inline const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

// Collects (series, row) data points and writes them as one JSON document on
// destruction when --json <path> was passed; a no-op otherwise. The scale
// tag ("smoke" | "default" | "full") rides along so bench_compare.py can
// refuse to diff runs taken at different scales.
//
//   {"bench": "fig5_keygen", "scale": "default",
//    "series": {"keygen_vs_chunk": [{"chunk_kb": 8, "speed_mbps": 3.1}, ...]}}
class JsonReporter {
 public:
  JsonReporter(std::string bench_name, int argc, char** argv)
      : bench_name_(std::move(bench_name)) {
    if (const char* path = FlagValue(argc, argv, "--json")) path_ = path;
    if (HasFlag(argc, argv, "--full")) {
      scale_ = "full";
    } else if (HasFlag(argc, argv, "--smoke")) {
      scale_ = "smoke";
    } else {
      scale_ = "default";
    }
  }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() {
    if (!path_.empty()) Write();
  }

  void Add(const std::string& series,
           std::initializer_list<std::pair<const char*, double>> fields) {
    if (path_.empty()) return;
    Row row;
    for (const auto& [name, value] : fields) row.emplace_back(name, value);
    SeriesFor(series).push_back(std::move(row));
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

 private:
  using Row = std::vector<std::pair<std::string, double>>;

  std::vector<Row>& SeriesFor(const std::string& name) {
    for (auto& [existing, rows] : series_) {
      if (existing == name) return rows;
    }
    series_.emplace_back(name, std::vector<Row>{});
    return series_.back().second;
  }

  void Write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": \"%s\",\n"
                 "  \"series\": {", bench_name_.c_str(), scale_.c_str());
    for (std::size_t s = 0; s < series_.size(); ++s) {
      std::fprintf(f, "%s\n    \"%s\": [", s == 0 ? "" : ",",
                   series_[s].first.c_str());
      const auto& rows = series_[s].second;
      for (std::size_t r = 0; r < rows.size(); ++r) {
        std::fprintf(f, "%s\n      {", r == 0 ? "" : ",");
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
          std::fprintf(f, "%s\"%s\": %.17g", c == 0 ? "" : ", ",
                       rows[r][c].first.c_str(), rows[r][c].second);
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "\n    ]");
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("json written: %s\n", path_.c_str());
  }

  std::string bench_name_;
  std::string path_;
  std::string scale_;
  std::vector<std::pair<std::string, std::vector<Row>>> series_;
};

// The paper's LAN testbed: 1 Gb/s switch; per-message latency folded into
// the link RTT (includes protocol/TLS overhead, which is why it is larger
// than a raw ping).
inline core::SystemOptions PaperSystem(std::uint64_t seed = 2016) {
  core::SystemOptions opts;
  opts.key_manager.rsa_bits = 1024;  // §V: 1024-bit RSA OPRF
  opts.num_data_servers = 4;         // §VI: 4 data + 1 key server
  opts.derivation_key_bits = 1024;
  opts.bandwidth_bps = 1e9;
  opts.rtt_seconds = 1e-3;
  opts.rng_seed = seed;
  return opts;
}

// Globally-unique-chunk synthetic data (paper §VI-A), deterministic.
inline Bytes UniqueData(std::size_t size, std::uint64_t seed) {
  crypto::DeterministicRng rng(seed);
  return rng.Generate(size);
}

// Table printer: fixed-width columns, matching row/series structure of the
// paper's figures so outputs diff cleanly against EXPERIMENTS.md.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) std::printf("%14s", h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) std::printf("%14s", "------------");
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) std::printf("%14s", c.c_str());
    std::printf("\n");
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> headers_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace reed::bench
