// Shared helpers for the figure-reproduction benches: testbed-shaped system
// construction, synthetic data, and table printing in the same units the
// paper reports (MB/s, seconds, GB).
//
// Every bench accepts --full to run at the paper's original scale
// (2 GB files, 147-day trace); the default scale finishes on a laptop core
// in minutes and preserves every reported *shape*.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/reed_system.h"
#include "crypto/random.h"
#include "util/stopwatch.h"

namespace reed::bench {

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// The paper's LAN testbed: 1 Gb/s switch; per-message latency folded into
// the link RTT (includes protocol/TLS overhead, which is why it is larger
// than a raw ping).
inline core::SystemOptions PaperSystem(std::uint64_t seed = 2016) {
  core::SystemOptions opts;
  opts.key_manager.rsa_bits = 1024;  // §V: 1024-bit RSA OPRF
  opts.num_data_servers = 4;         // §VI: 4 data + 1 key server
  opts.derivation_key_bits = 1024;
  opts.bandwidth_bps = 1e9;
  opts.rtt_seconds = 1e-3;
  opts.rng_seed = seed;
  return opts;
}

// Globally-unique-chunk synthetic data (paper §VI-A), deterministic.
inline Bytes UniqueData(std::size_t size, std::uint64_t seed) {
  crypto::DeterministicRng rng(seed);
  return rng.Generate(size);
}

// Table printer: fixed-width columns, matching row/series structure of the
// paper's figures so outputs diff cleanly against EXPERIMENTS.md.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) std::printf("%14s", h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) std::printf("%14s", "------------");
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) std::printf("%14s", c.c_str());
    std::printf("\n");
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> headers_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace reed::bench
