// Massive-client load-generator engine (DESIGN.md §13), shared by
// bench/bench_loadgen.cc (embedded servers, baseline-gated) and
// tools/loadgen (drives an external reed_serverd).
//
// The engine is pure client side: N threads, each owning one TcpChannel,
// replay a seeded op tape against a storage-server port. File popularity is
// zipfian (a handful of hot files absorb most of the traffic, like any real
// backup population); the op mix is configurable between uploads (chunk
// batch + recipe write), downloads (recipe read + chunk batch read), and
// rekeys (key-state read-modify-write, the paper's §IV revocation path —
// deliberately stub-only, so package bytes never change and the digest
// oracle can prove it).
//
// Pacing: `target_rate` > 0 runs an open(ish) loop — ops are scheduled on a
// fixed global cadence striped across clients, and latency is measured from
// the *scheduled* start, so server-side queueing shows up in the tail
// instead of being silently absorbed (no coordinated omission). Rate 0
// degenerates to a closed loop.
//
// Latencies land in a caller-local obs::Histogram (thread-safe, allocation-
// free on the hot path) and come out as p50/p99/p999 via
// Histogram::Percentile.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chunk/fingerprint.h"
#include "crypto/random.h"
#include "net/async_server.h"
#include "net/rpc.h"
#include "net/tcp.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "server/storage_server.h"

namespace reed::bench {

struct LoadgenConfig {
  std::size_t clients = 8;
  std::size_t ops_per_client = 50;
  // Aggregate ops/sec across all clients; 0 = closed loop.
  double target_rate = 0;
  std::size_t files = 16;           // zipf population
  std::size_t chunks_per_file = 4;
  std::size_t chunk_bytes = 4096;
  double zipf_exponent = 1.1;
  unsigned upload_pct = 30;
  unsigned rekey_pct = 10;  // remainder of the mix is downloads
  // > 0: wrap every request in a tenant envelope, client c as tenant
  // c % tenants — the admission-control (rekey-storm) knob.
  std::uint32_t tenants = 0;
  std::uint64_t seed = 42;
};

struct LoadgenReport {
  double wall_seconds = 0;
  std::uint64_t ops = 0;
  std::uint64_t net_errors = 0;  // transport drops (reconnected + resumed)
  std::uint64_t op_errors = 0;   // in-protocol status-1 responses
  std::uint64_t throttled = 0;   // admission rejections (subset of neither)
  double ops_per_sec = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
};

// Inverse-CDF zipfian sampler over [0, n): rank r gets weight
// 1 / (r+1)^s. Precomputes the cumulative table once; n is small.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double total = 0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  [[nodiscard]] std::size_t Sample(crypto::Rng& rng) const {
    double u = rng.UniformDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

// Deterministic chunk payload for (file, chunk index): every phase and both
// front ends regenerate byte-identical corpora, so dedup behaviour — and
// the package digest — is comparable across runs.
inline Bytes LoadgenChunk(const LoadgenConfig& cfg, std::size_t file,
                          std::size_t idx) {
  crypto::DeterministicRng rng(cfg.seed * 1000003 + file * 131 + idx);
  return rng.Generate(cfg.chunk_bytes);
}

inline std::string LoadgenRecipeName(std::size_t file) {
  return "loadgen-recipe-" + std::to_string(file);
}

inline std::string LoadgenKeyStateName(std::size_t file) {
  return "loadgen-keystate-" + std::to_string(file);
}

namespace loadgen_detail {

using server::Opcode;
using server::StoreId;

inline Bytes UploadChunksFrame(const LoadgenConfig& cfg, std::size_t file) {
  net::Writer w;
  w.U8(static_cast<std::uint8_t>(Opcode::kPutChunks));
  w.U32(static_cast<std::uint32_t>(cfg.chunks_per_file));
  for (std::size_t i = 0; i < cfg.chunks_per_file; ++i) {
    Bytes chunk = LoadgenChunk(cfg, file, i);
    w.Raw(chunk::Fingerprint::Of(chunk).AsSpan());
    w.Blob(chunk);
  }
  return w.Take();
}

inline Bytes RecipeFrame(const LoadgenConfig& cfg, std::size_t file) {
  net::Writer recipe;
  recipe.U32(static_cast<std::uint32_t>(cfg.chunks_per_file));
  for (std::size_t i = 0; i < cfg.chunks_per_file; ++i) {
    recipe.Raw(chunk::Fingerprint::Of(LoadgenChunk(cfg, file, i)).AsSpan());
  }
  net::Writer w;
  w.U8(static_cast<std::uint8_t>(Opcode::kPutObject));
  w.U8(static_cast<std::uint8_t>(StoreId::kData));
  w.Str(LoadgenRecipeName(file));
  w.Blob(recipe.bytes());
  return w.Take();
}

inline Bytes GetObjectFrame(StoreId store, const std::string& name) {
  net::Writer w;
  w.U8(static_cast<std::uint8_t>(Opcode::kGetObject));
  w.U8(static_cast<std::uint8_t>(store));
  w.Str(name);
  return w.Take();
}

inline Bytes GetChunksFrame(const LoadgenConfig& cfg, std::size_t file) {
  net::Writer w;
  w.U8(static_cast<std::uint8_t>(Opcode::kGetChunks));
  w.U32(static_cast<std::uint32_t>(cfg.chunks_per_file));
  for (std::size_t i = 0; i < cfg.chunks_per_file; ++i) {
    w.Raw(chunk::Fingerprint::Of(LoadgenChunk(cfg, file, i)).AsSpan());
  }
  return w.Take();
}

inline Bytes PutKeyStateFrame(const LoadgenConfig& cfg, std::size_t file,
                              std::uint64_t version, crypto::Rng& rng) {
  net::Writer w;
  w.U8(static_cast<std::uint8_t>(Opcode::kPutObject));
  w.U8(static_cast<std::uint8_t>(StoreId::kKey));
  w.Str(LoadgenKeyStateName(file));
  net::Writer state;
  state.U64(version);
  state.Blob(rng.Generate(64));  // fresh (stub) key material
  w.Blob(state.bytes());
  return w.Take();
}

// Per-op outcome, folded into the report by the client loop.
enum class OpOutcome { kOk, kThrottled, kOpError };

inline OpOutcome ClassifyResponse(ByteSpan response) {
  net::Reader r(response);
  if (r.U8() == 0) return OpOutcome::kOk;
  return r.Str().find("throttled") != std::string::npos ? OpOutcome::kThrottled
                                                        : OpOutcome::kOpError;
}

}  // namespace loadgen_detail

// Uploads the whole corpus once (chunks + recipes + key states) over a
// fresh connection, so downloads and rekeys in the measured run never miss.
inline void SeedLoadgenCorpus(std::uint16_t port, const LoadgenConfig& cfg) {
  using namespace loadgen_detail;
  auto channel =
      net::TcpChannel(net::TcpTransport::Connect("127.0.0.1", port));
  crypto::DeterministicRng rng(cfg.seed ^ 0x5eedc0de);
  for (std::size_t f = 0; f < cfg.files; ++f) {
    for (const Bytes& frame :
         {UploadChunksFrame(cfg, f), RecipeFrame(cfg, f),
          PutKeyStateFrame(cfg, f, 0, rng)}) {
      // Setup path: ride out admission throttling (the server may already
      // be running with a per-tenant rate for the measured phase).
      for (int attempt = 0;; ++attempt) {
        Bytes response = channel.Call(frame);
        switch (ClassifyResponse(response)) {
          case OpOutcome::kOk:
            break;
          case OpOutcome::kThrottled:
            if (attempt > 500) throw Error("loadgen corpus seed: throttled");
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            continue;
          case OpOutcome::kOpError: {
            net::Reader r(response);
            (void)r.U8();
            throw Error("loadgen corpus seed failed: " + r.Str());
          }
        }
        break;
      }
    }
  }
}

// Runs the configured client fleet against `port` and reports throughput
// plus latency percentiles. Each op is one logical storage operation (1-2
// RPCs); its latency is the full sequence.
inline LoadgenReport RunLoadgen(std::uint16_t port, const LoadgenConfig& cfg) {
  using namespace loadgen_detail;
  using Clock = std::chrono::steady_clock;

  obs::Histogram latency_us;  // local: phases never bleed into each other
  std::atomic<std::uint64_t> ops{0}, net_errors{0}, op_errors{0},
      throttled{0};
  ZipfSampler zipf(cfg.files, cfg.zipf_exponent);

  auto start = Clock::now();
  std::vector<std::thread> fleet;
  fleet.reserve(cfg.clients);
  for (std::size_t c = 0; c < cfg.clients; ++c) {
    fleet.emplace_back([&, c] {
      crypto::DeterministicRng rng(cfg.seed * 7919 + c);
      auto connect = [&] {
        return std::make_unique<net::TcpChannel>(
            net::TcpTransport::Connect("127.0.0.1", port));
      };
      std::unique_ptr<net::TcpChannel> channel;
      try {
        channel = connect();
      } catch (const net::NetError&) {
        net_errors.fetch_add(cfg.ops_per_client);
        return;
      }
      for (std::size_t k = 0; k < cfg.ops_per_client; ++k) {
        Clock::time_point scheduled = start;
        if (cfg.target_rate > 0) {
          // Global op (k * clients + c) on the aggregate cadence.
          double at = static_cast<double>(k * cfg.clients + c) /
                      cfg.target_rate;
          scheduled += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(at));
          std::this_thread::sleep_until(scheduled);
        } else {
          scheduled = Clock::now();
        }

        std::size_t file = zipf.Sample(rng);
        unsigned roll = static_cast<unsigned>(rng.Uniform(100));
        std::vector<Bytes> frames;
        if (roll < cfg.upload_pct) {
          frames = {UploadChunksFrame(cfg, file), RecipeFrame(cfg, file)};
        } else if (roll < cfg.upload_pct + cfg.rekey_pct) {
          frames = {GetObjectFrame(StoreId::kKey, LoadgenKeyStateName(file)),
                    PutKeyStateFrame(cfg, file, k + 1, rng)};
        } else {
          frames = {GetObjectFrame(StoreId::kData, LoadgenRecipeName(file)),
                    GetChunksFrame(cfg, file)};
        }

        bool ok = true;
        for (Bytes& frame : frames) {
          if (cfg.tenants > 0) {
            frame = net::AsyncServer::WrapTenant(
                static_cast<std::uint32_t>(c % cfg.tenants), frame);
          }
          try {
            switch (ClassifyResponse(channel->Call(frame))) {
              case OpOutcome::kOk:
                break;
              case OpOutcome::kThrottled:
                throttled.fetch_add(1);
                ok = false;
                break;
              case OpOutcome::kOpError:
                op_errors.fetch_add(1);
                ok = false;
                break;
            }
          } catch (const net::NetError&) {
            // Dropped (idle sweep, backpressure, server restart): reconnect
            // and move on to the next op.
            net_errors.fetch_add(1);
            ok = false;
            try {
              channel = connect();
            } catch (const net::NetError&) {
              net_errors.fetch_add(cfg.ops_per_client - k);
              return;
            }
          }
          if (!ok) break;
        }
        ops.fetch_add(1);
        if (ok) {
          auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - scheduled)
                        .count();
          latency_us.Record(static_cast<std::uint64_t>(us));
        }
      }
    });
  }
  for (std::thread& t : fleet) t.join();

  LoadgenReport report;
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.ops = ops.load();
  report.net_errors = net_errors.load();
  report.op_errors = op_errors.load();
  report.throttled = throttled.load();
  report.ops_per_sec =
      report.wall_seconds > 0
          ? static_cast<double>(report.ops) / report.wall_seconds
          : 0;
  report.p50_us = latency_us.Percentile(50);
  report.p99_us = latency_us.Percentile(99);
  report.p999_us = latency_us.Percentile(99.9);
  return report;
}

}  // namespace reed::bench
