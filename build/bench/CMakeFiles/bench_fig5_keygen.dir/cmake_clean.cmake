file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_keygen.dir/bench_fig5_keygen.cc.o"
  "CMakeFiles/bench_fig5_keygen.dir/bench_fig5_keygen.cc.o.d"
  "bench_fig5_keygen"
  "bench_fig5_keygen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_keygen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
