# Empty dependencies file for bench_fig5_keygen.
# This may be replaced when dependencies are built.
