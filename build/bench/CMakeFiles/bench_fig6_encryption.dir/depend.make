# Empty dependencies file for bench_fig6_encryption.
# This may be replaced when dependencies are built.
