file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_updown.dir/bench_fig7_updown.cc.o"
  "CMakeFiles/bench_fig7_updown.dir/bench_fig7_updown.cc.o.d"
  "bench_fig7_updown"
  "bench_fig7_updown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_updown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
