# Empty compiler generated dependencies file for bench_fig7_updown.
# This may be replaced when dependencies are built.
