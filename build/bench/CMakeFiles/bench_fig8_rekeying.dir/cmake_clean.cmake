file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_rekeying.dir/bench_fig8_rekeying.cc.o"
  "CMakeFiles/bench_fig8_rekeying.dir/bench_fig8_rekeying.cc.o.d"
  "bench_fig8_rekeying"
  "bench_fig8_rekeying.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_rekeying.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
