# Empty compiler generated dependencies file for bench_fig8_rekeying.
# This may be replaced when dependencies are built.
