# Empty dependencies file for bench_fig9_storage.
# This may be replaced when dependencies are built.
