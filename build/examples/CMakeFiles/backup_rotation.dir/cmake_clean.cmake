file(REMOVE_RECURSE
  "CMakeFiles/backup_rotation.dir/backup_rotation.cpp.o"
  "CMakeFiles/backup_rotation.dir/backup_rotation.cpp.o.d"
  "backup_rotation"
  "backup_rotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
