file(REMOVE_RECURSE
  "CMakeFiles/genome_revocation.dir/genome_revocation.cpp.o"
  "CMakeFiles/genome_revocation.dir/genome_revocation.cpp.o.d"
  "genome_revocation"
  "genome_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
