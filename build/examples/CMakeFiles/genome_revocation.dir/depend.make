# Empty dependencies file for genome_revocation.
# This may be replaced when dependencies are built.
