file(REMOVE_RECURSE
  "CMakeFiles/multi_server_tcp.dir/multi_server_tcp.cpp.o"
  "CMakeFiles/multi_server_tcp.dir/multi_server_tcp.cpp.o.d"
  "multi_server_tcp"
  "multi_server_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_server_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
