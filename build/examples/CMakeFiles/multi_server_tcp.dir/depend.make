# Empty dependencies file for multi_server_tcp.
# This may be replaced when dependencies are built.
