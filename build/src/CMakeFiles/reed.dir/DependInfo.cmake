
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abe/cpabe.cc" "src/CMakeFiles/reed.dir/abe/cpabe.cc.o" "gcc" "src/CMakeFiles/reed.dir/abe/cpabe.cc.o.d"
  "/root/repo/src/abe/policy.cc" "src/CMakeFiles/reed.dir/abe/policy.cc.o" "gcc" "src/CMakeFiles/reed.dir/abe/policy.cc.o.d"
  "/root/repo/src/aont/aont.cc" "src/CMakeFiles/reed.dir/aont/aont.cc.o" "gcc" "src/CMakeFiles/reed.dir/aont/aont.cc.o.d"
  "/root/repo/src/aont/reed_cipher.cc" "src/CMakeFiles/reed.dir/aont/reed_cipher.cc.o" "gcc" "src/CMakeFiles/reed.dir/aont/reed_cipher.cc.o.d"
  "/root/repo/src/bigint/bigint.cc" "src/CMakeFiles/reed.dir/bigint/bigint.cc.o" "gcc" "src/CMakeFiles/reed.dir/bigint/bigint.cc.o.d"
  "/root/repo/src/bigint/prime.cc" "src/CMakeFiles/reed.dir/bigint/prime.cc.o" "gcc" "src/CMakeFiles/reed.dir/bigint/prime.cc.o.d"
  "/root/repo/src/chunk/chunker.cc" "src/CMakeFiles/reed.dir/chunk/chunker.cc.o" "gcc" "src/CMakeFiles/reed.dir/chunk/chunker.cc.o.d"
  "/root/repo/src/chunk/rabin.cc" "src/CMakeFiles/reed.dir/chunk/rabin.cc.o" "gcc" "src/CMakeFiles/reed.dir/chunk/rabin.cc.o.d"
  "/root/repo/src/client/reed_client.cc" "src/CMakeFiles/reed.dir/client/reed_client.cc.o" "gcc" "src/CMakeFiles/reed.dir/client/reed_client.cc.o.d"
  "/root/repo/src/client/storage_client.cc" "src/CMakeFiles/reed.dir/client/storage_client.cc.o" "gcc" "src/CMakeFiles/reed.dir/client/storage_client.cc.o.d"
  "/root/repo/src/core/reed_system.cc" "src/CMakeFiles/reed.dir/core/reed_system.cc.o" "gcc" "src/CMakeFiles/reed.dir/core/reed_system.cc.o.d"
  "/root/repo/src/crypto/aes.cc" "src/CMakeFiles/reed.dir/crypto/aes.cc.o" "gcc" "src/CMakeFiles/reed.dir/crypto/aes.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/CMakeFiles/reed.dir/crypto/hmac.cc.o" "gcc" "src/CMakeFiles/reed.dir/crypto/hmac.cc.o.d"
  "/root/repo/src/crypto/random.cc" "src/CMakeFiles/reed.dir/crypto/random.cc.o" "gcc" "src/CMakeFiles/reed.dir/crypto/random.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/reed.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/reed.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/keymanager/key_manager.cc" "src/CMakeFiles/reed.dir/keymanager/key_manager.cc.o" "gcc" "src/CMakeFiles/reed.dir/keymanager/key_manager.cc.o.d"
  "/root/repo/src/keymanager/mle_key_client.cc" "src/CMakeFiles/reed.dir/keymanager/mle_key_client.cc.o" "gcc" "src/CMakeFiles/reed.dir/keymanager/mle_key_client.cc.o.d"
  "/root/repo/src/net/link.cc" "src/CMakeFiles/reed.dir/net/link.cc.o" "gcc" "src/CMakeFiles/reed.dir/net/link.cc.o.d"
  "/root/repo/src/net/rpc.cc" "src/CMakeFiles/reed.dir/net/rpc.cc.o" "gcc" "src/CMakeFiles/reed.dir/net/rpc.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/CMakeFiles/reed.dir/net/tcp.cc.o" "gcc" "src/CMakeFiles/reed.dir/net/tcp.cc.o.d"
  "/root/repo/src/net/tcp_server.cc" "src/CMakeFiles/reed.dir/net/tcp_server.cc.o" "gcc" "src/CMakeFiles/reed.dir/net/tcp_server.cc.o.d"
  "/root/repo/src/pairing/bls.cc" "src/CMakeFiles/reed.dir/pairing/bls.cc.o" "gcc" "src/CMakeFiles/reed.dir/pairing/bls.cc.o.d"
  "/root/repo/src/pairing/curve.cc" "src/CMakeFiles/reed.dir/pairing/curve.cc.o" "gcc" "src/CMakeFiles/reed.dir/pairing/curve.cc.o.d"
  "/root/repo/src/pairing/field.cc" "src/CMakeFiles/reed.dir/pairing/field.cc.o" "gcc" "src/CMakeFiles/reed.dir/pairing/field.cc.o.d"
  "/root/repo/src/pairing/pairing.cc" "src/CMakeFiles/reed.dir/pairing/pairing.cc.o" "gcc" "src/CMakeFiles/reed.dir/pairing/pairing.cc.o.d"
  "/root/repo/src/rsa/blind_signature.cc" "src/CMakeFiles/reed.dir/rsa/blind_signature.cc.o" "gcc" "src/CMakeFiles/reed.dir/rsa/blind_signature.cc.o.d"
  "/root/repo/src/rsa/key_regression.cc" "src/CMakeFiles/reed.dir/rsa/key_regression.cc.o" "gcc" "src/CMakeFiles/reed.dir/rsa/key_regression.cc.o.d"
  "/root/repo/src/rsa/rsa.cc" "src/CMakeFiles/reed.dir/rsa/rsa.cc.o" "gcc" "src/CMakeFiles/reed.dir/rsa/rsa.cc.o.d"
  "/root/repo/src/server/storage_server.cc" "src/CMakeFiles/reed.dir/server/storage_server.cc.o" "gcc" "src/CMakeFiles/reed.dir/server/storage_server.cc.o.d"
  "/root/repo/src/store/container_store.cc" "src/CMakeFiles/reed.dir/store/container_store.cc.o" "gcc" "src/CMakeFiles/reed.dir/store/container_store.cc.o.d"
  "/root/repo/src/store/index.cc" "src/CMakeFiles/reed.dir/store/index.cc.o" "gcc" "src/CMakeFiles/reed.dir/store/index.cc.o.d"
  "/root/repo/src/store/recipe.cc" "src/CMakeFiles/reed.dir/store/recipe.cc.o" "gcc" "src/CMakeFiles/reed.dir/store/recipe.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/reed.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/reed.dir/trace/trace.cc.o.d"
  "/root/repo/src/util/bytes.cc" "src/CMakeFiles/reed.dir/util/bytes.cc.o" "gcc" "src/CMakeFiles/reed.dir/util/bytes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
