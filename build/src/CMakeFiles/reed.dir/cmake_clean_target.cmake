file(REMOVE_RECURSE
  "libreed.a"
)
