# Empty compiler generated dependencies file for reed.
# This may be replaced when dependencies are built.
