file(REMOVE_RECURSE
  "CMakeFiles/abe_test.dir/abe_test.cc.o"
  "CMakeFiles/abe_test.dir/abe_test.cc.o.d"
  "abe_test"
  "abe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
