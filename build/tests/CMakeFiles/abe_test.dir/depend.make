# Empty dependencies file for abe_test.
# This may be replaced when dependencies are built.
