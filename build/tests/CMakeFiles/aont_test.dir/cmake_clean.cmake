file(REMOVE_RECURSE
  "CMakeFiles/aont_test.dir/aont_test.cc.o"
  "CMakeFiles/aont_test.dir/aont_test.cc.o.d"
  "aont_test"
  "aont_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aont_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
