# Empty compiler generated dependencies file for aont_test.
# This may be replaced when dependencies are built.
