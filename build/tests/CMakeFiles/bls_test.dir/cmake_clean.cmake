file(REMOVE_RECURSE
  "CMakeFiles/bls_test.dir/bls_test.cc.o"
  "CMakeFiles/bls_test.dir/bls_test.cc.o.d"
  "bls_test"
  "bls_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
