# Empty compiler generated dependencies file for bls_test.
# This may be replaced when dependencies are built.
