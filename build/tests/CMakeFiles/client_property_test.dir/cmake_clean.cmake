file(REMOVE_RECURSE
  "CMakeFiles/client_property_test.dir/client_property_test.cc.o"
  "CMakeFiles/client_property_test.dir/client_property_test.cc.o.d"
  "client_property_test"
  "client_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
