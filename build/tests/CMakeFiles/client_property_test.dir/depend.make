# Empty dependencies file for client_property_test.
# This may be replaced when dependencies are built.
