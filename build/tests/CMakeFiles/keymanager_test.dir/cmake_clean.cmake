file(REMOVE_RECURSE
  "CMakeFiles/keymanager_test.dir/keymanager_test.cc.o"
  "CMakeFiles/keymanager_test.dir/keymanager_test.cc.o.d"
  "keymanager_test"
  "keymanager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keymanager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
