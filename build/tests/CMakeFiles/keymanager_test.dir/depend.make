# Empty dependencies file for keymanager_test.
# This may be replaced when dependencies are built.
