file(REMOVE_RECURSE
  "CMakeFiles/store_server_test.dir/store_server_test.cc.o"
  "CMakeFiles/store_server_test.dir/store_server_test.cc.o.d"
  "store_server_test"
  "store_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
