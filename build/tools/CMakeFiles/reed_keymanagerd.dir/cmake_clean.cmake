file(REMOVE_RECURSE
  "CMakeFiles/reed_keymanagerd.dir/reed_keymanagerd.cc.o"
  "CMakeFiles/reed_keymanagerd.dir/reed_keymanagerd.cc.o.d"
  "reed_keymanagerd"
  "reed_keymanagerd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reed_keymanagerd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
