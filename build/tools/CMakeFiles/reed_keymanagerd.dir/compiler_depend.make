# Empty compiler generated dependencies file for reed_keymanagerd.
# This may be replaced when dependencies are built.
