file(REMOVE_RECURSE
  "CMakeFiles/reed_serverd.dir/reed_serverd.cc.o"
  "CMakeFiles/reed_serverd.dir/reed_serverd.cc.o.d"
  "reed_serverd"
  "reed_serverd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reed_serverd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
