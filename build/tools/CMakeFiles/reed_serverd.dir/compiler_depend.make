# Empty compiler generated dependencies file for reed_serverd.
# This may be replaced when dependencies are built.
