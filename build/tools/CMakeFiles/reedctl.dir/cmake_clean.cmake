file(REMOVE_RECURSE
  "CMakeFiles/reedctl.dir/reedctl.cc.o"
  "CMakeFiles/reedctl.dir/reedctl.cc.o.d"
  "reedctl"
  "reedctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reedctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
