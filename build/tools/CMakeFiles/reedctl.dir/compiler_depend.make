# Empty compiler generated dependencies file for reedctl.
# This may be replaced when dependencies are built.
