// Backup rotation: the workload REED's intro motivates — a user's machine
// pushing daily backup snapshots to encrypted cloud storage. Uses the
// FSL-style synthetic trace to model day-over-day churn, shows how the
// MLE key cache and dedup interact across a week, and finishes with a
// scheduled key rotation ("every cryptographic key has a lifetime", §II-B).
//
//   ./examples/backup_rotation
#include <cstdio>

#include "core/reed_system.h"
#include "trace/trace.h"
#include "util/stopwatch.h"

using namespace reed;

int main() {
  std::printf("=== REED backup rotation (1 user, 7 daily snapshots) ===\n\n");

  core::SystemOptions sys_opts;
  sys_opts.rng_seed = 7;
  core::ReedSystem system(sys_opts);
  system.RegisterUser("backup-agent");
  auto agent = system.CreateClient("backup-agent", client::ClientOptions{});

  trace::TraceOptions topts;
  topts.num_users = 1;
  topts.num_days = 7;
  topts.user_snapshot_bytes = 24 << 20;  // 24 MB working set
  topts.daily_mod_rate = 0.02;           // 2% of files touched per day
  topts.daily_growth_rate = 0.01;        // 1% growth per day
  topts.seed = 2013;
  trace::TraceGenerator gen(topts);

  std::printf("%-6s %10s %9s %9s %10s %11s %10s\n", "day", "logical",
              "chunks", "dup%", "keycache%", "stored(MB)", "MB/s");
  std::uint64_t total_logical = 0;
  for (std::size_t day = 0; day < topts.num_days; ++day) {
    auto snap = trace::MaterializeSnapshot(gen.GetSnapshot(0, day));
    auto before = agent->key_client().stats();
    Stopwatch sw;
    auto result = agent->UploadChunked("backup/day-" + std::to_string(day),
                                       snap.data, snap.refs, {"backup-agent"});
    double secs = sw.ElapsedSeconds();
    auto after = agent->key_client().stats();
    std::uint64_t hits = after.cache_hits - before.cache_hits;
    std::uint64_t misses = after.cache_misses - before.cache_misses;
    total_logical += result.logical_bytes;
    std::printf("%-6zu %8.1fMB %9zu %8.1f%% %9.1f%% %10.2f %10.1f\n", day,
                ToMiB(result.logical_bytes), result.chunk_count,
                100.0 * AsDouble(result.duplicate_chunks) /
                    AsDouble(result.chunk_count),
                100.0 * AsDouble(hits) /
                    AsDouble(std::max<std::uint64_t>(1, hits + misses)),
                ToMiB(result.stored_bytes),
                MbPerSec(result.logical_bytes, secs));
  }

  auto stats = system.TotalStats();
  std::printf("\nweek total: %.1f MB logical -> %.1f MB physical + %.2f MB stubs"
              " (saving %.1f%%)\n",
              ToMiB(total_logical), ToMiB(stats.physical_bytes),
              ToMiB(stats.stub_bytes),
              100.0 * (1.0 - AsDouble(stats.physical_bytes +
                                      stats.stub_bytes) /
                                 AsDouble(total_logical)));

  // Scheduled key rotation over every snapshot of the week: lightweight
  // because only stub files are touched.
  std::printf("\nrotating file keys for all 7 snapshots (active revocation)...\n");
  Stopwatch sw;
  std::uint64_t stub_bytes = 0;
  for (std::size_t day = 0; day < topts.num_days; ++day) {
    auto r = agent->Rekey("backup/day-" + std::to_string(day),
                          {"backup-agent"}, client::RevocationMode::kActive);
    stub_bytes += r.stub_bytes;
  }
  std::printf("rotated 7 file keys in %.2f s (%.2f MB of stubs re-encrypted, "
              "0 bytes of chunk data moved)\n",
              sw.ElapsedSeconds(), ToMiB(stub_bytes));

  // Verify the latest snapshot still restores after rotation.
  auto last = trace::MaterializeSnapshot(gen.GetSnapshot(0, topts.num_days - 1));
  Bytes restored = agent->Download("backup/day-6");
  std::printf("restore check after rotation: %s\n",
              restored == last.data ? "OK" : "MISMATCH!");
  return 0;
}
