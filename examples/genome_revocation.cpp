// Dynamic access control for a genome-research project — the paper's §II-B
// motivating scenario: deduplicated genome data in the cloud, researchers
// joining and leaving, and the project owner revoking access with lazy or
// active rekeying.
//
//   ./examples/genome_revocation
#include <cstdio>

#include "core/reed_system.h"
#include "crypto/random.h"
#include "util/stopwatch.h"

using namespace reed;

namespace {
bool CanRead(client::ReedClient& user, const std::string& file) {
  try {
    (void)user.Download(file);
    return true;
  } catch (const Error&) {
    return false;
  }
}
}  // namespace

int main() {
  std::printf("=== REED dynamic access control: genome project ===\n\n");

  core::SystemOptions sys_opts;
  sys_opts.rng_seed = 9;
  core::ReedSystem system(sys_opts);
  for (const char* user : {"pi-carol", "dr-alice", "dr-bob", "intern-eve"}) {
    system.RegisterUser(user);
  }

  client::ClientOptions copts;  // enhanced scheme: resists MLE-key leakage
  auto carol = system.CreateClient("pi-carol", copts);
  auto alice = system.CreateClient("dr-alice", copts);
  auto bob = system.CreateClient("dr-bob", copts);
  auto eve = system.CreateClient("intern-eve", copts);

  // The PI uploads a (synthetic) sequencing dataset readable by the team.
  crypto::DeterministicRng rng(1000);
  Bytes dataset = rng.Generate(8 << 20);
  std::printf("PI carol uploads 8 MB dataset, policy = (carol OR alice OR bob)\n");
  DiscardResult(
      carol->Upload("genome/cohort-17", dataset,
                    {"pi-carol", "dr-alice", "dr-bob"}));

  std::printf("  dr-alice can read:  %s\n", CanRead(*alice, "genome/cohort-17") ? "yes" : "no");
  std::printf("  dr-bob   can read:  %s\n", CanRead(*bob, "genome/cohort-17") ? "yes" : "no");
  std::printf("  intern-eve can read: %s (never in the policy)\n\n",
              CanRead(*eve, "genome/cohort-17") ? "yes" : "no");

  // Bob leaves the project: lazy revocation first (defer re-encryption to
  // the next update; alice keeps access through key regression).
  std::printf("dr-bob leaves the project -> lazy revocation\n");
  Stopwatch sw;
  auto lazy = carol->Rekey("genome/cohort-17", {"pi-carol", "dr-alice"},
                           client::RevocationMode::kLazy);
  std::printf("  key state wound to version %llu in %.1f ms (stub file untouched)\n",
              static_cast<unsigned long long>(lazy.new_version),
              sw.ElapsedMillis());
  std::printf("  dr-alice can read: %s (unwinds one key-state version)\n",
              CanRead(*alice, "genome/cohort-17") ? "yes" : "no");
  std::printf("  dr-bob   can read: %s\n\n",
              CanRead(*bob, "genome/cohort-17") ? "yes" : "no");

  // A suspected key compromise: escalate to active revocation for
  // up-to-date protection of existing data (paper §II-B).
  std::printf("suspected key compromise -> active revocation\n");
  sw.Reset();
  auto active = carol->Rekey("genome/cohort-17", {"pi-carol", "dr-alice"},
                             client::RevocationMode::kActive);
  std::printf("  key version %llu, stub file re-encrypted (%.1f KB) in %.1f ms\n",
              static_cast<unsigned long long>(active.new_version),
              AsDouble(active.stub_bytes) / 1024.0, sw.ElapsedMillis());
  std::printf("  (compare: re-encrypting the full 8 MB dataset would move %.0fx more bytes)\n",
              8.0 * 1048576.0 / AsDouble(active.stub_bytes));
  std::printf("  dr-alice can read: %s\n",
              CanRead(*alice, "genome/cohort-17") ? "yes" : "no");

  // New cohort uploaded after revocation: bob never sees it, and dedup
  // against the first cohort still works for the shared reference blocks.
  Bytes cohort18 = dataset;  // same reference genome, new metadata header
  for (int i = 0; i < 1024; ++i) cohort18[i] ^= 0xFF;
  auto up = carol->Upload("genome/cohort-18", cohort18,
                          {"pi-carol", "dr-alice"});
  std::printf("\nnew cohort-18 upload: %zu/%zu chunks deduplicated against cohort-17\n",
              up.duplicate_chunks, up.chunk_count);
  std::printf("  dr-bob can read cohort-18: %s\n",
              CanRead(*bob, "genome/cohort-18") ? "yes" : "no");

  // Annual key rotation across the whole project: group rekeying pays for
  // ONE CP-ABE encryption however many files the project holds.
  std::printf("\nannual project-wide key rotation (group rekeying, 2 files)...\n");
  sw.Reset();
  auto group = carol->RekeyGroup({"genome/cohort-17", "genome/cohort-18"},
                                 {"pi-carol", "dr-alice"},
                                 client::RevocationMode::kActive);
  std::printf("  rotated %zu files to versions %llu/%llu in %.1f ms total\n",
              group.size(), static_cast<unsigned long long>(group[0].new_version),
              static_cast<unsigned long long>(group[1].new_version),
              sw.ElapsedMillis());
  std::printf("  dr-alice can still read both: %s\n",
              (CanRead(*alice, "genome/cohort-17") &&
               CanRead(*alice, "genome/cohort-18"))
                  ? "yes"
                  : "no");
  return 0;
}
