// Deployment-style wiring: the key manager and a 4+1 server cluster each
// served over real TCP sockets (here as threads; in production, separate
// machines), with two independent clients demonstrating cross-user dedup
// through the full wire protocol.
//
//   ./examples/multi_server_tcp
#include <cstdio>
#include <vector>

#include "abe/cpabe.h"
#include "client/reed_client.h"
#include "crypto/random.h"
#include "keymanager/key_manager.h"
#include "keymanager/mle_key_client.h"
#include "net/rpc.h"
#include "net/tcp.h"
#include "net/tcp_server.h"
#include "server/storage_server.h"
#include "util/stopwatch.h"

using namespace reed;

int main() {
  std::printf("=== REED over TCP: 1 key manager + 4 data servers + 1 key server ===\n\n");
  crypto::DeterministicRng rng(77);

  // --- services ---
  keymanager::KeyManager::Options km_opts;  // paper default: 1024-bit RSA
  keymanager::KeyManager km(km_opts, rng);
  std::vector<std::unique_ptr<server::StorageServer>> servers;
  for (int i = 0; i < 5; ++i) {
    servers.push_back(std::make_unique<server::StorageServer>(
        i < 4 ? "data-" + std::to_string(i) : "key-server"));
  }

  net::TcpServer km_service(
      0, [&km](ByteSpan req) { return km.HandleRequest(req); });
  std::vector<std::unique_ptr<net::TcpServer>> storage_services;
  for (auto& s : servers) {
    server::StorageServer* raw = s.get();
    storage_services.push_back(std::make_unique<net::TcpServer>(
        0, [raw](ByteSpan req) { return raw->HandleRequest(req); }));
  }
  std::printf("key manager on tcp:%u, servers on tcp:", km_service.port());
  for (auto& svc : storage_services) std::printf(" %u", svc->port());
  std::printf("\n\n");

  // --- shared access-control authority ---
  auto pairing = std::make_shared<const pairing::TypeAPairing>(
      pairing::TypeAParams::Default());
  auto abe = std::make_shared<const abe::CpAbe>(pairing);
  auto setup = abe->Setup(rng);

  auto make_client = [&](const std::string& user) {
    std::vector<std::shared_ptr<net::RpcChannel>> data_channels;
    for (int i = 0; i < 4; ++i) {
      data_channels.push_back(std::make_shared<net::TcpChannel>(
          net::TcpTransport::Connect("127.0.0.1", storage_services[i]->port())));
    }
    auto key_channel = std::make_shared<net::TcpChannel>(
        net::TcpTransport::Connect("127.0.0.1", storage_services[4]->port()));
    auto storage = std::make_shared<client::StorageClient>(
        std::move(data_channels), key_channel);
    auto km_channel = std::make_shared<net::TcpChannel>(
        net::TcpTransport::Connect("127.0.0.1", km_service.port()));
    auto keys = std::make_shared<keymanager::MleKeyClient>(
        user, km.public_key(), km_channel, keymanager::MleKeyClient::Options{});
    client::ClientOptions copts;
    copts.rng_seed = std::hash<std::string>{}(user);
    return std::make_unique<client::ReedClient>(
        user, copts, storage, keys, abe, setup.pk,
        abe->KeyGen(setup.pk, setup.mk, {"user:" + user}, rng),
        rsa::GenerateKeyPair(1024, rng));
  };

  auto alice = make_client("alice");
  auto bob = make_client("bob");

  crypto::DeterministicRng data_rng(42);
  Bytes file = data_rng.Generate(8 << 20);

  Stopwatch sw;
  auto r1 = alice->Upload("shared-dataset", file, {"alice", "bob"});
  std::printf("alice uploads 8 MB over TCP: %zu chunks stored, %.1f MB/s\n",
              r1.stored_chunks, MbPerSec(r1.logical_bytes, sw.ElapsedSeconds()));

  sw.Reset();
  auto r2 = bob->Upload("bobs-copy", file, {"bob"});
  std::printf("bob uploads identical data:  %zu/%zu chunks deduplicated, %.1f MB/s\n",
              r2.duplicate_chunks, r2.chunk_count,
              MbPerSec(r2.logical_bytes, sw.ElapsedSeconds()));

  sw.Reset();
  Bytes fetched = bob->Download("shared-dataset");
  std::printf("bob downloads alice's file:  %s, %.1f MB/s\n",
              fetched == file ? "verified" : "MISMATCH",
              MbPerSec(fetched.size(), sw.ElapsedSeconds()));

  std::uint64_t physical = 0;
  for (int i = 0; i < 4; ++i) physical += servers[i]->stats().physical_bytes;
  std::printf("\ncluster stores %.1f MB physical for %.1f MB logical across 4 shards:",
              ToMiB(physical), ToMiB(r1.logical_bytes + r2.logical_bytes));
  for (int i = 0; i < 4; ++i) {
    std::printf(" [%s: %.1fMB]", servers[i]->name().c_str(),
                ToMiB(servers[i]->stats().physical_bytes));
  }
  std::printf("\n");
  std::fflush(stdout);
  std::_Exit(0);  // demo: skip graceful teardown of live connections
}
