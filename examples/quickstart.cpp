// Quickstart: bring up a REED deployment, upload a file, deduplicate a
// second copy, download it back, and rekey it — the whole public API in
// ~60 lines.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/reed_system.h"
#include "crypto/random.h"
#include "util/stopwatch.h"

using namespace reed;

int main() {
  std::printf("=== REED quickstart ===\n\n");

  // 1. Deploy: 4 data servers + 1 key server + key manager (paper §VI).
  core::SystemOptions sys_opts;
  sys_opts.rng_seed = 1;  // deterministic demo
  core::ReedSystem system(sys_opts);
  std::printf("deployed: key manager (%zu-bit RSA), %zu data servers + 1 key server\n",
              sys_opts.key_manager.rsa_bits, system.data_server_count());

  // 2. Register a user: issues a CP-ABE private access key and an RSA
  //    derivation key pair for key regression.
  system.RegisterUser("alice");
  auto alice = system.CreateClient("alice", client::ClientOptions{});
  std::printf("registered user 'alice' (enhanced scheme, 8KB avg chunks, 64B stubs)\n\n");

  // 3. Upload a 16 MB file.
  crypto::DeterministicRng rng(42);
  Bytes file = rng.Generate(16 << 20);
  Stopwatch sw;
  auto up1 = alice->Upload("backup-monday", file, {"alice"});
  std::printf("upload #1: %zu chunks, %zu stored, %.1f MB/s\n",
              up1.chunk_count, up1.stored_chunks,
              MbPerSec(up1.logical_bytes, sw.ElapsedSeconds()));

  // 4. Upload identical content again: everything deduplicates.
  sw.Reset();
  auto up2 = alice->Upload("backup-tuesday", file, {"alice"});
  std::printf("upload #2: %zu chunks, %zu duplicates (%.1f%% dedup), %.1f MB/s\n",
              up2.chunk_count, up2.duplicate_chunks,
              100.0 * AsDouble(up2.duplicate_chunks) /
                  AsDouble(up2.chunk_count),
              MbPerSec(up2.logical_bytes, sw.ElapsedSeconds()));

  auto stats = system.TotalStats();
  std::printf("cluster: %.1f MB logical vs %.1f MB physical (+%.2f MB stubs)\n\n",
              ToMiB(stats.logical_bytes), ToMiB(stats.physical_bytes),
              ToMiB(stats.stub_bytes));

  // 5. Download and verify.
  sw.Reset();
  Bytes downloaded = alice->Download("backup-monday");
  std::printf("download: %s, %.1f MB/s\n",
              downloaded == file ? "content verified" : "MISMATCH!",
              MbPerSec(downloaded.size(), sw.ElapsedSeconds()));

  // 6. Rekey (active revocation): only the 64-byte-per-chunk stub file is
  //    re-encrypted; the deduplicated trimmed packages never move.
  sw.Reset();
  auto rekey = alice->Rekey("backup-monday", {"alice"},
                            client::RevocationMode::kActive);
  std::printf("active rekey to key version %llu in %.1f ms (%.1f KB of stubs re-encrypted)\n",
              static_cast<unsigned long long>(rekey.new_version),
              sw.ElapsedMillis(), AsDouble(rekey.stub_bytes) / 1024.0);
  Bytes after = alice->Download("backup-monday");
  std::printf("post-rekey download: %s\n",
              after == file ? "content verified" : "MISMATCH!");
  return 0;
}
