#include "abe/cpabe.h"

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace reed::abe {

namespace {
constexpr std::size_t kIvSize = 16;
constexpr std::size_t kMacSize = 32;
}  // namespace

std::vector<std::string> PrivateKey::Attributes() const {
  std::vector<std::string> out;
  out.reserve(components.size());
  for (const auto& [attr, unused] : components) out.push_back(attr);
  return out;
}

CpAbe::CpAbe(std::shared_ptr<const TypeAPairing> pairing)
    : pairing_(std::move(pairing)) {
  if (!pairing_) throw Error("CpAbe: null pairing");
}

G1Point CpAbe::AttributePoint(const std::string& attribute) const {
  {
    MutexLock lock(attr_cache_mu_);
    auto it = attr_cache_.find(attribute);
    if (it != attr_cache_.end()) return it->second;
  }
  G1Point pt = pairing_->HashToGroup(ToBytes("reed/abe-attr:" + attribute));
  MutexLock lock(attr_cache_mu_);
  attr_cache_.emplace(attribute, pt);
  return pt;
}

CpAbe::SetupResult CpAbe::Setup(crypto::Rng& rng) const {
  const G1Point& g = pairing_->generator();
  BigInt alpha = pairing_->RandomScalar(rng);
  BigInt beta = pairing_->RandomScalar(rng);

  SetupResult out;
  out.pk.g = g;
  out.pk.h = g.ScalarMul(beta);
  G1Point g_alpha = g.ScalarMul(alpha);
  out.pk.e_gg_alpha = pairing_->Pair(g, g_alpha);
  out.mk.beta = beta;
  out.mk.g_alpha = g_alpha;
  return out;
}

PrivateKey CpAbe::KeyGen(const PublicKey& pk, const MasterKey& mk,
                         const std::vector<std::string>& attributes,
                         crypto::Rng& rng) const {
  if (attributes.empty()) throw Error("CpAbe::KeyGen: empty attribute set");
  const BigInt& r = pairing_->group_order();
  BigInt t = pairing_->RandomScalar(rng);
  BigInt beta_inv = BigInt::InverseMod(mk.beta, r);

  PrivateKey sk;
  sk.d = mk.g_alpha.Add(pk.g.ScalarMul(t)).ScalarMul(beta_inv);
  G1Point g_t = pk.g.ScalarMul(t);
  for (const auto& attr : attributes) {
    BigInt tj = pairing_->RandomScalar(rng);
    AttributeKey comp;
    comp.d = g_t.Add(AttributePoint(attr).ScalarMul(tj));
    comp.d_prime = pk.g.ScalarMul(tj);
    if (!sk.components.emplace(attr, std::move(comp)).second) {
      throw Error("CpAbe::KeyGen: duplicate attribute");
    }
  }
  return sk;
}

void CpAbe::ShareSecret(const PolicyNode& node, const BigInt& value,
                        crypto::Rng& rng,
                        std::vector<BigInt>& leaf_shares) const {
  if (node.IsLeaf()) {
    leaf_shares.push_back(value);
    return;
  }
  const BigInt& r = pairing_->group_order();
  // Random polynomial q of degree k-1 with q(0) = value; child i gets q(i).
  std::vector<BigInt> coeffs;
  coeffs.push_back(value % r);
  for (std::size_t i = 1; i < node.threshold(); ++i) {
    coeffs.push_back(BigInt::Random(rng, r));
  }
  for (std::size_t child = 0; child < node.children().size(); ++child) {
    BigInt x(static_cast<std::uint64_t>(child + 1));
    // Horner evaluation mod r.
    BigInt y = coeffs.back();
    for (std::size_t c = coeffs.size() - 1; c-- > 0;) {
      y = BigInt::AddMod(BigInt::MulMod(y, x, r), coeffs[c], r);
    }
    ShareSecret(node.children()[child], y, rng, leaf_shares);
  }
}

Ciphertext CpAbe::EncryptElement(const PublicKey& pk, const Fp2& message,
                                 const PolicyNode& policy,
                                 crypto::Rng& rng) const {
  BigInt s = pairing_->RandomScalar(rng);
  std::vector<BigInt> shares;
  shares.reserve(policy.LeafCount());
  ShareSecret(policy, s, rng, shares);

  Ciphertext ct;
  ct.policy = policy;
  ct.c_tilde = message * pk.e_gg_alpha.Pow(s);
  ct.c = pk.h.ScalarMul(s);
  ct.leaves.reserve(shares.size());

  // Walk leaves in the same DFS order ShareSecret used.
  std::size_t next = 0;
  struct Frame {
    const PolicyNode* node;
    std::size_t child = 0;
  };
  std::vector<Frame> frames{{&policy}};
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.node->IsLeaf()) {
      const BigInt& share = shares[next++];
      CiphertextLeaf leaf;
      leaf.c = pk.g.ScalarMul(share);
      leaf.c_prime = AttributePoint(f.node->attribute()).ScalarMul(share);
      ct.leaves.push_back(std::move(leaf));
      frames.pop_back();
      continue;
    }
    if (f.child < f.node->children().size()) {
      frames.push_back({&f.node->children()[f.child++]});
    } else {
      frames.pop_back();
    }
  }
  return ct;
}

std::optional<Fp2> CpAbe::DecryptNode(const PolicyNode& node,
                                      const PrivateKey& sk,
                                      const Ciphertext& ct,
                                      std::size_t& leaf_index) const {
  const BigInt& r = pairing_->group_order();
  if (node.IsLeaf()) {
    std::size_t idx = leaf_index++;
    auto it = sk.components.find(node.attribute());
    if (it == sk.components.end()) return std::nullopt;
    const CiphertextLeaf& leaf = ct.leaves.at(idx);
    // e(D_j, C_y) / e(D'_j, C'_y) = e(g,g)^{t·λ_y}
    Fp2 num = pairing_->Pair(it->second.d, leaf.c);
    Fp2 den = pairing_->Pair(it->second.d_prime, leaf.c_prime);
    return num * den.Inverse();
  }

  // Evaluate every child (leaf_index bookkeeping requires full traversal),
  // then combine any `threshold` successes with Lagrange coefficients.
  std::vector<std::pair<std::uint64_t, Fp2>> successes;
  for (std::size_t i = 0; i < node.children().size(); ++i) {
    std::optional<Fp2> child = DecryptNode(node.children()[i], sk, ct, leaf_index);
    if (child.has_value() && successes.size() < node.threshold()) {
      successes.emplace_back(i + 1, std::move(*child));
    }
  }
  if (successes.size() < node.threshold()) return std::nullopt;

  Fp2 result = Fp2::One(pairing_->field());
  for (const auto& [xi, fi] : successes) {
    // Δ_i(0) = Π_{j≠i} (0 - x_j) / (x_i - x_j) mod r
    BigInt num(1), den(1);
    for (const auto& [xj, unused] : successes) {
      if (xj == xi) continue;
      num = BigInt::MulMod(num, r - BigInt(xj), r);  // (0 - x_j) mod r
      BigInt diff = (xi > xj) ? BigInt(xi - xj) : r - BigInt(xj - xi);
      den = BigInt::MulMod(den, diff, r);
    }
    BigInt lambda = BigInt::MulMod(num, BigInt::InverseMod(den, r), r);
    result = result * fi.Pow(lambda);
  }
  return result;
}

std::optional<Fp2> CpAbe::DecryptElement(const PrivateKey& sk,
                                         const Ciphertext& ct) const {
  std::size_t leaf_index = 0;
  std::optional<Fp2> a = DecryptNode(ct.policy, sk, ct, leaf_index);
  if (!a.has_value()) return std::nullopt;
  // M = C̃ · A / e(C, D)
  Fp2 e_cd = pairing_->Pair(ct.c, sk.d);
  return ct.c_tilde * *a * e_cd.Inverse();
}

Secret CpAbe::EncryptBytes(const PublicKey& pk, const PolicyNode& policy,
                           const Secret& plaintext, crypto::Rng& rng) const {
  // Random GT element via e(g,g)^z; its hash keys the symmetric layer.
  BigInt z = pairing_->RandomScalar(rng);
  Fp2 m = pairing_->Pair(pk.g, pk.g).Pow(z);
  Ciphertext ct = EncryptElement(pk, m, policy, rng);

  Bytes kek = crypto::Sha256::HashToBytes(m.ToBytes());
  ScopedWipe wipe_kek(kek);
  Bytes enc_key = crypto::DeriveKey32(kek, "reed/abe-enc");
  ScopedWipe wipe_enc(enc_key);
  Bytes mac_key = crypto::DeriveKey32(kek, "reed/abe-mac");
  ScopedWipe wipe_mac(mac_key);

  Bytes iv = rng.Generate(kIvSize);
  Bytes payload =
      crypto::AesCtrEncrypt(enc_key, iv, plaintext.ExposeForCrypto());

  Bytes out;
  Bytes ct_bytes = SerializeCiphertext(ct);
  AppendU32(out, static_cast<std::uint32_t>(ct_bytes.size()));
  Append(out, ct_bytes);
  Append(out, iv);
  Append(out, payload);
  Bytes mac_input = Concat(iv, payload);
  Append(out, crypto::HmacSha256ToBytes(mac_key, mac_input));
  return Secret(std::move(out));
}

Secret CpAbe::DecryptBytes(const PrivateKey& sk, ByteSpan blob) const {
  if (blob.size() < 4) throw Error("CpAbe::DecryptBytes: truncated");
  std::uint32_t ct_len = GetU32(blob);
  if (blob.size() < 4 + ct_len + kIvSize + kMacSize) {
    throw Error("CpAbe::DecryptBytes: truncated");
  }
  Ciphertext ct = DeserializeCiphertext(blob.subspan(4, ct_len));
  ByteSpan iv = blob.subspan(4 + ct_len, kIvSize);
  ByteSpan payload = blob.subspan(4 + ct_len + kIvSize,
                                  blob.size() - 4 - ct_len - kIvSize - kMacSize);
  ByteSpan mac = blob.subspan(blob.size() - kMacSize);

  std::optional<Fp2> m = DecryptElement(sk, ct);
  if (!m.has_value()) {
    throw Error("CpAbe::DecryptBytes: attributes do not satisfy policy");
  }
  Bytes kek = crypto::Sha256::HashToBytes(m->ToBytes());
  ScopedWipe wipe_kek(kek);
  Bytes enc_key = crypto::DeriveKey32(kek, "reed/abe-enc");
  ScopedWipe wipe_enc(enc_key);
  Bytes mac_key = crypto::DeriveKey32(kek, "reed/abe-mac");
  ScopedWipe wipe_mac(mac_key);

  Bytes mac_input = Concat(iv, payload);
  Bytes expect = crypto::HmacSha256ToBytes(mac_key, mac_input);
  if (!SecureCompare(expect, mac)) {
    throw Error("CpAbe::DecryptBytes: MAC verification failed");
  }
  return Secret(crypto::AesCtrEncrypt(enc_key, iv, payload));
}

// --------------------------- serialization ---------------------------

Bytes CpAbe::SerializeCiphertext(const Ciphertext& ct) const {
  const pairing::FpField* f = pairing_->field();
  Bytes out;
  Bytes policy;
  ct.policy.SerializeTo(policy);
  AppendU32(out, static_cast<std::uint32_t>(policy.size()));
  Append(out, policy);
  Append(out, ct.c_tilde.ToBytes());
  Append(out, ct.c.ToBytes(f));
  AppendU32(out, static_cast<std::uint32_t>(ct.leaves.size()));
  for (const auto& leaf : ct.leaves) {
    Append(out, leaf.c.ToBytes(f));
    Append(out, leaf.c_prime.ToBytes(f));
  }
  return out;
}

Ciphertext CpAbe::DeserializeCiphertext(ByteSpan blob) const {
  const pairing::FpField* f = pairing_->field();
  std::size_t fp2 = 2 * f->element_bytes();
  std::size_t pt = G1Point::SerializedSize(f);
  std::size_t off = 0;
  auto need = [&](std::size_t n) {
    if (off + n > blob.size()) throw Error("Ciphertext: truncated");
  };
  need(4);
  std::uint32_t policy_len = GetU32(blob.subspan(off));
  off += 4;
  need(policy_len);
  Ciphertext ct;
  ct.policy = PolicyNode::Deserialize(blob.subspan(off, policy_len));
  off += policy_len;
  need(fp2);
  ct.c_tilde = Fp2::FromBytes(f, blob.subspan(off, fp2));
  off += fp2;
  need(pt);
  ct.c = G1Point::FromBytes(f, blob.subspan(off, pt));
  off += pt;
  need(4);
  std::uint32_t nleaves = GetU32(blob.subspan(off));
  off += 4;
  if (nleaves != ct.policy.LeafCount()) {
    throw Error("Ciphertext: leaf count mismatch with policy");
  }
  ct.leaves.reserve(nleaves);
  for (std::uint32_t i = 0; i < nleaves; ++i) {
    need(2 * pt);
    CiphertextLeaf leaf;
    leaf.c = G1Point::FromBytes(f, blob.subspan(off, pt));
    leaf.c_prime = G1Point::FromBytes(f, blob.subspan(off + pt, pt));
    off += 2 * pt;
    ct.leaves.push_back(std::move(leaf));
  }
  if (off != blob.size()) throw Error("Ciphertext: trailing bytes");
  return ct;
}

Secret CpAbe::SerializePrivateKey(const PrivateKey& sk) const {
  const pairing::FpField* f = pairing_->field();
  Bytes out;
  Append(out, sk.d.ToBytes(f));
  AppendU32(out, static_cast<std::uint32_t>(sk.components.size()));
  for (const auto& [attr, comp] : sk.components) {
    AppendU32(out, static_cast<std::uint32_t>(attr.size()));
    Append(out, ToBytes(attr));
    Append(out, comp.d.ToBytes(f));
    Append(out, comp.d_prime.ToBytes(f));
  }
  return Secret(std::move(out));
}

PrivateKey CpAbe::DeserializePrivateKey(const Secret& secret_blob) const {
  ByteSpan blob = secret_blob.ExposeForCrypto();
  const pairing::FpField* f = pairing_->field();
  std::size_t pt = G1Point::SerializedSize(f);
  std::size_t off = 0;
  auto need = [&](std::size_t n) {
    if (off + n > blob.size()) throw Error("PrivateKey: truncated");
  };
  need(pt);
  PrivateKey sk;
  sk.d = G1Point::FromBytes(f, blob.subspan(off, pt));
  off += pt;
  need(4);
  std::uint32_t count = GetU32(blob.subspan(off));
  off += 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    need(4);
    std::uint32_t len = GetU32(blob.subspan(off));
    off += 4;
    need(len);
    std::string attr(reinterpret_cast<const char*>(blob.data() + off), len);
    off += len;
    need(2 * pt);
    AttributeKey comp;
    comp.d = G1Point::FromBytes(f, blob.subspan(off, pt));
    comp.d_prime = G1Point::FromBytes(f, blob.subspan(off + pt, pt));
    off += 2 * pt;
    sk.components.emplace(std::move(attr), std::move(comp));
  }
  if (off != blob.size()) throw Error("PrivateKey: trailing bytes");
  return sk;
}

Bytes CpAbe::SerializePublicKey(const PublicKey& pk) const {
  const pairing::FpField* f = pairing_->field();
  Bytes out;
  Append(out, pk.g.ToBytes(f));
  Append(out, pk.h.ToBytes(f));
  Append(out, pk.e_gg_alpha.ToBytes());
  return out;
}

PublicKey CpAbe::DeserializePublicKey(ByteSpan blob) const {
  const pairing::FpField* f = pairing_->field();
  std::size_t pt = G1Point::SerializedSize(f);
  std::size_t fp2 = 2 * f->element_bytes();
  if (blob.size() != 2 * pt + fp2) throw Error("PublicKey: bad length");
  PublicKey pk;
  pk.g = G1Point::FromBytes(f, blob.subspan(0, pt));
  pk.h = G1Point::FromBytes(f, blob.subspan(pt, pt));
  pk.e_gg_alpha = Fp2::FromBytes(f, blob.subspan(2 * pt));
  return pk;
}

Secret CpAbe::SerializeMasterKey(const MasterKey& mk) const {
  const pairing::FpField* f = pairing_->field();
  Bytes out;
  Bytes beta = mk.beta.ToBytes();
  ScopedWipe wipe_beta(beta);
  AppendU32(out, static_cast<std::uint32_t>(beta.size()));
  Append(out, beta);
  Append(out, mk.g_alpha.ToBytes(f));
  return Secret(std::move(out));
}

MasterKey CpAbe::DeserializeMasterKey(const Secret& secret_blob) const {
  ByteSpan blob = secret_blob.ExposeForCrypto();
  const pairing::FpField* f = pairing_->field();
  if (blob.size() < 4) throw Error("MasterKey: truncated");
  std::uint32_t beta_len = GetU32(blob);
  std::size_t pt = G1Point::SerializedSize(f);
  if (blob.size() != 4 + beta_len + pt) throw Error("MasterKey: bad length");
  MasterKey mk;
  mk.beta = BigInt::FromBytes(blob.subspan(4, beta_len));
  mk.g_alpha = G1Point::FromBytes(f, blob.subspan(4 + beta_len));
  return mk;
}

}  // namespace reed::abe
