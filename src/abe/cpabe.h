// Ciphertext-policy attribute-based encryption (BSW07), from scratch over
// our Type-A pairing — the primitive REED uses to wrap per-file key states
// so that exactly the authorized users can recover the file key (§IV-C).
//
// Scheme (Bethencourt–Sahai–Waters, IEEE S&P 2007):
//   Setup:    α, β ← Z_r.  PK = (g, h=g^β, e(g,g)^α),  MK = (β, g^α)
//   KeyGen(S): t ← Z_r.  D = g^{(α+t)/β};  per attribute j ∈ S:
//              t_j ← Z_r, D_j = g^t · H(j)^{t_j},  D'_j = g^{t_j}
//   Encrypt(M ∈ GT, T): secret s shared down the access tree T with
//              per-node polynomials; C̃ = M·e(g,g)^{αs}, C = h^s, and per
//              leaf y: C_y = g^{λ_y}, C'_y = H(att(y))^{λ_y}
//   Decrypt:  pair leaf components, recombine shares in the exponent with
//              Lagrange coefficients, divide out e(C, D).
//
// EncryptBytes/DecryptBytes add the standard hybrid layer: a random GT
// element is ABE-encrypted and hashed into an AES-256-CTR + HMAC key pair
// protecting the payload.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "abe/policy.h"
#include "crypto/random.h"
#include "pairing/pairing.h"
#include "util/secret.h"
#include "util/thread_annotations.h"

namespace reed::abe {

using bigint::BigInt;
using pairing::Fp2;
using pairing::G1Point;
using pairing::TypeAPairing;

struct PublicKey {
  G1Point g;        // group generator
  G1Point h;        // g^β
  Fp2 e_gg_alpha;   // e(g,g)^α
};

struct MasterKey {
  BigInt beta;
  G1Point g_alpha;  // g^α
};

struct AttributeKey {
  G1Point d;        // D_j  = g^t · H(j)^{t_j}
  G1Point d_prime;  // D'_j = g^{t_j}
};

struct PrivateKey {
  G1Point d;  // g^{(α+t)/β}
  std::map<std::string, AttributeKey> components;

  [[nodiscard]] std::vector<std::string> Attributes() const;
};

struct CiphertextLeaf {
  G1Point c;        // g^{λ_y}
  G1Point c_prime;  // H(att(y))^{λ_y}
};

struct Ciphertext {
  PolicyNode policy;
  Fp2 c_tilde;  // M · e(g,g)^{αs}
  G1Point c;    // h^s
  // One entry per policy leaf, in DFS order.
  std::vector<CiphertextLeaf> leaves;
};

class CpAbe {
 public:
  explicit CpAbe(std::shared_ptr<const TypeAPairing> pairing);

  const TypeAPairing& pairing() const { return *pairing_; }

  struct SetupResult {
    PublicKey pk;
    MasterKey mk;
  };
  [[nodiscard]] SetupResult Setup(crypto::Rng& rng) const;

  [[nodiscard]] PrivateKey KeyGen(const PublicKey& pk, const MasterKey& mk,
                    const std::vector<std::string>& attributes,
                    crypto::Rng& rng) const;

  // Core scheme over GT elements.
  [[nodiscard]] Ciphertext EncryptElement(const PublicKey& pk, const Fp2& message,
                            const PolicyNode& policy, crypto::Rng& rng) const;
  // nullopt when the key's attributes do not satisfy the policy.
  [[nodiscard]] std::optional<Fp2> DecryptElement(const PrivateKey& sk,
                                    const Ciphertext& ct) const;

  // Hybrid encryption of arbitrary byte strings (ABE + AES-CTR + HMAC).
  // The plaintext is secret by definition (REED wraps key states here); the
  // ciphertext is returned still tainted — declaring it public happens at
  // the client's sanctioned Declassify crossing, not implicitly here.
  [[nodiscard]] Secret EncryptBytes(const PublicKey& pk, const PolicyNode& policy,
                     const Secret& plaintext, crypto::Rng& rng) const;
  // Throws Error on unauthorized key or tampered ciphertext.
  [[nodiscard]] Secret DecryptBytes(const PrivateKey& sk, ByteSpan blob) const;

  // Serialization (ciphertexts are stored in the cloud key store).
  [[nodiscard]] Bytes SerializeCiphertext(const Ciphertext& ct) const;
  [[nodiscard]] Ciphertext DeserializeCiphertext(ByteSpan blob) const;
  // User private keys and the master key are secret material: their blobs
  // are Secret-typed, so persisting one takes a visible Declassify.
  [[nodiscard]] Secret SerializePrivateKey(const PrivateKey& sk) const;
  [[nodiscard]] PrivateKey DeserializePrivateKey(const Secret& blob) const;
  [[nodiscard]] Bytes SerializePublicKey(const PublicKey& pk) const;
  [[nodiscard]] PublicKey DeserializePublicKey(ByteSpan blob) const;
  // Master-key serialization for the attribute authority's state file
  // (reedctl init-org).
  [[nodiscard]] Secret SerializeMasterKey(const MasterKey& mk) const;
  [[nodiscard]] MasterKey DeserializeMasterKey(const Secret& blob) const;

 private:
  // H(attribute) with a per-instance memo: attribute points recur across
  // keygen/encrypt calls (every rekey re-encrypts under user attributes).
  G1Point AttributePoint(const std::string& attribute) const;

  void ShareSecret(const PolicyNode& node, const BigInt& value,
                   crypto::Rng& rng, std::vector<BigInt>& leaf_shares) const;
  std::optional<Fp2> DecryptNode(const PolicyNode& node, const PrivateKey& sk,
                                 const Ciphertext& ct,
                                 std::size_t& leaf_index) const;

  std::shared_ptr<const TypeAPairing> pairing_;
  mutable Mutex attr_cache_mu_{LockRank::kAbeAttrCache};
  mutable std::map<std::string, G1Point> attr_cache_
      REED_GUARDED_BY(attr_cache_mu_);
};

}  // namespace reed::abe
