#include "abe/policy.h"

#include <algorithm>

namespace reed::abe {

PolicyNode PolicyNode::Leaf(std::string attribute) {
  if (attribute.empty()) throw Error("PolicyNode::Leaf: empty attribute");
  PolicyNode n;
  n.attribute_ = std::move(attribute);
  return n;
}

PolicyNode PolicyNode::Threshold(std::size_t k, std::vector<PolicyNode> children) {
  if (children.empty() || k == 0 || k > children.size()) {
    throw Error("PolicyNode::Threshold: invalid threshold");
  }
  PolicyNode n;
  n.threshold_ = k;
  n.children_ = std::move(children);
  return n;
}

PolicyNode PolicyNode::Or(std::vector<PolicyNode> children) {
  return Threshold(1, std::move(children));
}

PolicyNode PolicyNode::And(std::vector<PolicyNode> children) {
  std::size_t k = children.size();
  return Threshold(k, std::move(children));
}

PolicyNode PolicyNode::OrOfUsers(const std::vector<std::string>& user_ids) {
  if (user_ids.empty()) throw Error("PolicyNode::OrOfUsers: no users");
  std::vector<PolicyNode> leaves;
  leaves.reserve(user_ids.size());
  for (const auto& id : user_ids) leaves.push_back(Leaf("user:" + id));
  if (leaves.size() == 1) return std::move(leaves.front());
  return Or(std::move(leaves));
}

std::size_t PolicyNode::LeafCount() const {
  if (IsLeaf()) return 1;
  std::size_t total = 0;
  for (const auto& c : children_) total += c.LeafCount();
  return total;
}

bool PolicyNode::IsSatisfiedBy(const std::vector<std::string>& attributes) const {
  if (IsLeaf()) {
    return std::find(attributes.begin(), attributes.end(), attribute_) !=
           attributes.end();
  }
  std::size_t satisfied = 0;
  for (const auto& c : children_) {
    if (c.IsSatisfiedBy(attributes) && ++satisfied >= threshold_) return true;
  }
  return false;
}

bool PolicyNode::operator==(const PolicyNode& o) const {
  return attribute_ == o.attribute_ && threshold_ == o.threshold_ &&
         children_ == o.children_;
}

void PolicyNode::SerializeTo(Bytes& out) const {
  if (IsLeaf()) {
    out.push_back(0);  // tag: leaf
    AppendU32(out, static_cast<std::uint32_t>(attribute_.size()));
    Append(out, ToBytes(attribute_));
  } else {
    out.push_back(1);  // tag: threshold gate
    AppendU32(out, static_cast<std::uint32_t>(threshold_));
    AppendU32(out, static_cast<std::uint32_t>(children_.size()));
    for (const auto& c : children_) c.SerializeTo(out);
  }
}

PolicyNode PolicyNode::Parse(ByteSpan blob, std::size_t& off, int depth) {
  if (depth > 64) throw Error("PolicyNode: tree too deep");
  if (off >= blob.size()) throw Error("PolicyNode: truncated");
  std::uint8_t tag = blob[off++];
  if (tag == 0) {
    if (off + 4 > blob.size()) throw Error("PolicyNode: truncated");
    std::uint32_t len = GetU32(blob.subspan(off));
    off += 4;
    if (off + len > blob.size() || len == 0 || len > 4096) {
      throw Error("PolicyNode: bad attribute length");
    }
    std::string attr(reinterpret_cast<const char*>(blob.data() + off), len);
    off += len;
    return Leaf(std::move(attr));
  }
  if (tag != 1) throw Error("PolicyNode: bad tag");
  if (off + 8 > blob.size()) throw Error("PolicyNode: truncated");
  std::uint32_t k = GetU32(blob.subspan(off));
  std::uint32_t n = GetU32(blob.subspan(off + 4));
  off += 8;
  if (n == 0 || n > 1u << 20) throw Error("PolicyNode: bad child count");
  std::vector<PolicyNode> children;
  children.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    children.push_back(Parse(blob, off, depth + 1));
  }
  return Threshold(k, std::move(children));
}

PolicyNode PolicyNode::Deserialize(ByteSpan blob) {
  std::size_t off = 0;
  PolicyNode n = Parse(blob, off, 0);
  if (off != blob.size()) throw Error("PolicyNode: trailing bytes");
  return n;
}

std::string PolicyNode::ToString() const {
  if (IsLeaf()) return attribute_;
  std::string sep;
  if (threshold_ == 1) {
    sep = " OR ";
  } else if (threshold_ == children_.size()) {
    sep = " AND ";
  } else {
    sep = " ?" + std::to_string(threshold_) + "of" +
          std::to_string(children_.size()) + " ";
  }
  std::string out = "(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i) out += sep;
    out += children_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace reed::abe
