// Access-policy trees for CP-ABE (Bethencourt–Sahai–Waters, S&P 2007).
//
// Interior nodes are k-of-n threshold gates (OR = 1-of-n, AND = n-of-n);
// leaves name attributes. REED's policies (paper §IV-C) are a single OR
// gate over per-user identifier attributes, but the implementation supports
// arbitrary trees, matching the paper's "we can define more attributes and
// a more sophisticated access tree structure" remark.
#pragma once

#include <string>
#include <vector>

#include "util/bytes.h"

namespace reed::abe {

class PolicyNode {
 public:
  // Default-constructed node is an empty placeholder (not a valid policy);
  // use the factory functions below to build real trees.
  PolicyNode() = default;

  // Leaf carrying one attribute.
  static PolicyNode Leaf(std::string attribute);
  // k-of-n threshold gate; 1 <= k <= children.size().
  static PolicyNode Threshold(std::size_t k, std::vector<PolicyNode> children);
  static PolicyNode Or(std::vector<PolicyNode> children);
  static PolicyNode And(std::vector<PolicyNode> children);

  // Convenience for REED's canonical policy: OR over user identifiers.
  static PolicyNode OrOfUsers(const std::vector<std::string>& user_ids);

  bool IsLeaf() const { return children_.empty(); }
  const std::string& attribute() const { return attribute_; }
  std::size_t threshold() const { return threshold_; }
  const std::vector<PolicyNode>& children() const { return children_; }

  // Number of leaves in the subtree (ciphertext size is linear in this).
  std::size_t LeafCount() const;

  // True if the attribute set satisfies this (sub)tree.
  [[nodiscard]] bool IsSatisfiedBy(const std::vector<std::string>& attributes) const;

  bool operator==(const PolicyNode& o) const;

  void SerializeTo(Bytes& out) const;
  static PolicyNode Deserialize(ByteSpan blob);

  // Human-readable form, e.g. "(user:alice OR user:bob)".
  std::string ToString() const;

 private:
  static PolicyNode Parse(ByteSpan blob, std::size_t& offset, int depth);

  std::string attribute_;   // non-empty iff leaf
  std::size_t threshold_ = 0;
  std::vector<PolicyNode> children_;
};

}  // namespace reed::abe
