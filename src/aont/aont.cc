#include "aont/aont.h"

#include <cstring>

#include "crypto/aes.h"
#include "crypto/crypto_error.h"
#include "crypto/sha256.h"

namespace reed::aont {

namespace {
// The "publicly known block S": a fixed, public CTR IV. Any fixed value
// works; what matters is that all parties share it.
constexpr std::uint8_t kPublicIv[16] = {'R', 'E', 'E', 'D', '-', 'A', 'O',
                                        'N', 'T', '-', 'M', 'A', 'S', 'K',
                                        '0', '1'};

Bytes HashKeyXorTail(ByteSpan head, ByteSpan key_or_hash) {
  // t = H(C) ⊕ K (and symmetrically K = H(C) ⊕ t).
  crypto::Sha256Digest hc = crypto::Sha256::Hash(head);
  Bytes t(hc.begin(), hc.end());
  XorInto(t, key_or_hash);
  return t;
}
}  // namespace

Bytes Mask(ByteSpan key, std::size_t length) {
  Bytes out(length);
  crypto::AesCtr ctr(key, ByteSpan(kPublicIv, sizeof(kPublicIv)));
  ctr.Keystream(out);
  return out;
}

Bytes AontTransform(ByteSpan message, crypto::Rng& rng) {
  Bytes key = rng.Generate(kAontKeySize);
  ScopedWipe wipe_key(key);
  Bytes package(message.begin(), message.end());
  XorInto(package, Mask(key, package.size()));  // C = M ⊕ G(K)
  Append(package, HashKeyXorTail(ByteSpan(package.data(), message.size()), key));
  return package;
}

Bytes AontRevert(ByteSpan package) {
  if (package.size() < kAontTailSize) {
    throw crypto::CryptoError("AontRevert: package too small");
  }
  std::size_t head_len = package.size() - kAontTailSize;
  ByteSpan head = package.subspan(0, head_len);
  ByteSpan tail = package.subspan(head_len);
  Bytes key = HashKeyXorTail(head, tail);  // K = H(C) ⊕ t
  ScopedWipe wipe_key(key);
  Bytes message(head.begin(), head.end());
  XorInto(message, Mask(key, head_len));
  return message;
}

Bytes CaontTransform(ByteSpan message) {
  Bytes key = crypto::Sha256::HashToBytes(message);  // h = H(M)
  ScopedWipe wipe_key(key);
  Bytes package(message.begin(), message.end());
  XorInto(package, Mask(key, package.size()));
  Append(package, HashKeyXorTail(ByteSpan(package.data(), message.size()), key));
  return package;
}

Bytes CaontRevert(ByteSpan package) {
  if (package.size() < kAontTailSize) {
    throw crypto::CryptoError("CaontRevert: package too small");
  }
  std::size_t head_len = package.size() - kAontTailSize;
  ByteSpan head = package.subspan(0, head_len);
  ByteSpan tail = package.subspan(head_len);
  Bytes key = HashKeyXorTail(head, tail);
  ScopedWipe wipe_key(key);
  Bytes message(head.begin(), head.end());
  XorInto(message, Mask(key, head_len));
  // CAONT is self-verifying: the recovered message must hash back to h.
  if (!SecureCompare(crypto::Sha256::HashToBytes(message), key)) {
    throw crypto::CryptoError("CaontRevert: integrity check failed");
  }
  return message;
}

Bytes SelfXor(ByteSpan data) {
  Bytes acc(kAontTailSize, 0);
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t n = std::min(kAontTailSize, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) acc[i] ^= data[off + i];
    off += n;
  }
  return acc;
}

}  // namespace reed::aont
