// All-or-nothing transform (Rivest, FSE'97) and its convergent variant
// CAONT (CDStore, USENIX ATC'15) — the building blocks under REED's
// encryption schemes (paper §IV-B).
//
// AONT: package = (C, t) with C = M ⊕ G(K) for a random K and
// t = H(C) ⊕ K. Recovering any part of M requires the *entire* package.
// CAONT replaces the random K with the message hash H(M), making the
// package deterministic (dedupable) and self-verifying.
#pragma once

#include "crypto/random.h"
#include "util/bytes.h"

namespace reed::aont {

inline constexpr std::size_t kAontKeySize = 32;   // AES-256 key / SHA-256 hash
inline constexpr std::size_t kAontTailSize = 32;  // |t| = |H(·)| = |K|

// Pseudo-random mask G(K) = E(K, S): the AES-256-CTR keystream over the
// publicly known constant block S (a fixed IV), truncated to `length`.
[[nodiscard]] Bytes Mask(ByteSpan key, std::size_t length);

// Rivest AONT with a fresh random key. Package layout: C || t,
// |package| = |message| + kAontTailSize.
[[nodiscard]] Bytes AontTransform(ByteSpan message, crypto::Rng& rng);

// Inverts AontTransform. No integrity guarantee (original AONT is unkeyed
// and unauthenticated) — corrupt packages yield garbage.
[[nodiscard]] Bytes AontRevert(ByteSpan package);

// CAONT: key = H(message); deterministic, so identical messages produce
// identical packages.
[[nodiscard]] Bytes CaontTransform(ByteSpan message);

// Inverts CaontTransform and verifies the embedded hash key against the
// recovered message; throws Error on tampering.
[[nodiscard]] Bytes CaontRevert(ByteSpan package);

// Self-XOR tail used by REED's enhanced scheme (after Peterson et al.'s
// secure-deletion construction): XOR of all kAontTailSize-sized pieces of
// `data` (last piece zero-padded) — cheaper than a second hash pass.
[[nodiscard]] Bytes SelfXor(ByteSpan data);

}  // namespace reed::aont
