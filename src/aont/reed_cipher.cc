#include "aont/reed_cipher.h"

#include <cstring>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/crypto_error.h"
#include "crypto/sha256.h"
#include "util/fault_inject.h"

namespace reed::aont {

namespace {
// Public IV for the enhanced scheme's deterministic MLE encryption step
// (distinct from the AONT mask IV for domain separation).
constexpr std::uint8_t kMleIv[16] = {'R', 'E', 'E', 'D', '-', 'M', 'L', 'E',
                                     '-', 'C', 'T', 'R', '-', '0', '0', '1'};
}  // namespace

const char* SchemeName(Scheme scheme) {
  return scheme == Scheme::kBasic ? "basic" : "enhanced";
}

ReedCipher::ReedCipher(Scheme scheme, std::size_t stub_size)
    : scheme_(scheme), stub_size_(stub_size) {
  if (stub_size_ < kAontTailSize) {
    throw crypto::CryptoError("ReedCipher: stub must cover at least the package tail");
  }
}

std::size_t ReedCipher::PackageSize(std::size_t chunk_size) const {
  // Basic head: chunk + canary; enhanced head: C1 + K_M. Both + tail.
  std::size_t head = chunk_size + (scheme_ == Scheme::kBasic ? kCanarySize
                                                             : kMleKeySize);
  return head + kAontTailSize;
}

SealedChunk ReedCipher::SplitPackage(Bytes package) const {
  if (package.size() <= stub_size_) {
    throw crypto::CryptoError("ReedCipher: chunk too small for the configured stub size");
  }
  SealedChunk out;
  std::size_t trim = package.size() - stub_size_;
  out.stub = Secret(Bytes(package.begin() + trim, package.end()));
  // resize() does not touch the bytes past the new size — wipe the stub's
  // copy out of the package buffer before handing the trim off as public.
  SecureZero(MutableByteSpan(package).subspan(trim));
  package.resize(trim);
  out.trimmed_package = std::move(package);
  return out;
}

SealedChunk ReedCipher::Encrypt(ByteSpan chunk, const Secret& mle_key) const {
  // Fires inside the encode pool's workers; ParallelFor forwards the first
  // worker exception after joining the rest.
  REED_FAULT_POINT("aont.encode");
  ByteSpan key = mle_key.ExposeForCrypto();
  if (key.size() != kMleKeySize) {
    throw crypto::CryptoError("ReedCipher: MLE key must be 32 bytes");
  }
  if (chunk.empty()) throw crypto::CryptoError("ReedCipher: empty chunk");
  return scheme_ == Scheme::kBasic ? EncryptBasic(chunk, key)
                                   : EncryptEnhanced(chunk, key);
}

Bytes ReedCipher::Decrypt(ByteSpan trimmed_package, const Secret& stub) const {
  if (stub.size() != stub_size_) {
    throw crypto::CryptoError("ReedCipher: stub size mismatch");
  }
  // The reassembled package embeds the stub (and, mid-reversal, the MLE
  // key); wipe it on every exit path.
  Bytes package = Concat(trimmed_package, stub.ExposeForCrypto());
  ScopedWipe wipe_package(package);
  if (package.size() < kAontTailSize + 1) {
    throw crypto::CryptoError("ReedCipher: package too small");
  }
  return scheme_ == Scheme::kBasic ? DecryptBasic(package)
                                   : DecryptEnhanced(package);
}

// --------------------------- basic scheme ---------------------------

SealedChunk ReedCipher::EncryptBasic(ByteSpan chunk, ByteSpan mle_key) const {
  // Head: C = (M ‖ canary) ⊕ G(K_M)
  Bytes package(chunk.begin(), chunk.end());
  package.resize(chunk.size() + kCanarySize, 0);  // canary = 32 zero bytes
  XorInto(package, Mask(mle_key, package.size()));

  // Tail: t = K_M ⊕ H(C)
  crypto::Sha256Digest hc = crypto::Sha256::Hash(package);
  Bytes tail(hc.begin(), hc.end());
  XorInto(tail, mle_key);
  Append(package, tail);
  return SplitPackage(std::move(package));
}

Bytes ReedCipher::DecryptBasic(ByteSpan package) const {
  std::size_t head_len = package.size() - kAontTailSize;
  if (head_len < kCanarySize + 1) throw crypto::CryptoError("ReedCipher: package too small");
  ByteSpan head = package.subspan(0, head_len);
  ByteSpan tail = package.subspan(head_len);

  // K_M = t ⊕ H(C) — any modification of the package corrupts K_M, which
  // the canary check below then catches.
  crypto::Sha256Digest hc = crypto::Sha256::Hash(head);
  Bytes mle_key(hc.begin(), hc.end());
  ScopedWipe wipe_key(mle_key);
  XorInto(mle_key, tail);

  Bytes plain(head.begin(), head.end());
  XorInto(plain, Mask(mle_key, plain.size()));

  static const Bytes kZeroCanary(kCanarySize, 0);
  ByteSpan canary = ByteSpan(plain).subspan(plain.size() - kCanarySize);
  if (!SecureCompare(canary, kZeroCanary)) {
    throw crypto::CryptoError("ReedCipher: canary check failed (tampered chunk)");
  }
  plain.resize(plain.size() - kCanarySize);
  return plain;
}

// --------------------------- enhanced scheme ---------------------------

SealedChunk ReedCipher::EncryptEnhanced(ByteSpan chunk, ByteSpan mle_key) const {
  // Step 1: MLE encryption, C1 = E(K_M, M) (deterministic CTR).
  Bytes package = crypto::AesCtrEncrypt(mle_key, ByteSpan(kMleIv, 16), chunk);
  // Step 2: CAONT over (C1 ‖ K_M) with hash key h = H(C1 ‖ K_M).
  Append(package, mle_key);
  crypto::Sha256Digest hd = crypto::Sha256::Hash(package);
  Bytes h(hd.begin(), hd.end());
  XorInto(package, Mask(h, package.size()));  // C2
  // Tail via self-XOR (cheaper than a second hash pass): t = SelfXor(C2) ⊕ h.
  Bytes tail = SelfXor(package);
  XorInto(tail, h);
  Append(package, tail);
  return SplitPackage(std::move(package));
}

Bytes ReedCipher::DecryptEnhanced(ByteSpan package) const {
  std::size_t head_len = package.size() - kAontTailSize;
  if (head_len < kMleKeySize + 1) throw crypto::CryptoError("ReedCipher: package too small");
  ByteSpan c2 = package.subspan(0, head_len);
  ByteSpan tail = package.subspan(head_len);

  // h = SelfXor(C2) ⊕ t
  Bytes h = SelfXor(c2);
  XorInto(h, tail);

  Bytes y(c2.begin(), c2.end());  // C1 ‖ K_M
  XorInto(y, Mask(h, y.size()));

  // Integrity: H(C1 ‖ K_M) must equal h. (The self-XOR alone can be fooled
  // by paired bit flips, but the recovered Y then fails this hash check —
  // §IV-E.)
  if (!SecureCompare(crypto::Sha256::HashToBytes(y), h)) {
    throw crypto::CryptoError("ReedCipher: hash-key check failed (tampered chunk)");
  }

  Bytes mle_key(y.end() - kMleKeySize, y.end());
  ScopedWipe wipe_key(mle_key);
  y.resize(y.size() - kMleKeySize);
  return crypto::AesCtrEncrypt(mle_key, ByteSpan(kMleIv, 16), y);  // CTR dec
}

// --------------------------- stub-file crypto ---------------------------

namespace {

Bytes SealAuthenticated(ByteSpan plaintext, ByteSpan key, crypto::Rng& rng,
                        std::string_view enc_label, std::string_view mac_label) {
  Bytes enc_key = crypto::DeriveKey32(key, enc_label);
  ScopedWipe wipe_enc(enc_key);
  Bytes mac_key = crypto::DeriveKey32(key, mac_label);
  ScopedWipe wipe_mac(mac_key);
  Bytes iv = rng.Generate(16);
  Bytes ct = crypto::AesCtrEncrypt(enc_key, iv, plaintext);
  Bytes out = Concat(iv, ct);
  Append(out, crypto::HmacSha256ToBytes(mac_key, out));
  return out;
}

Bytes OpenAuthenticated(ByteSpan blob, ByteSpan key,
                        std::string_view enc_label, std::string_view mac_label,
                        const char* what) {
  if (blob.size() < 16 + 32) throw crypto::CryptoError(std::string(what) + ": truncated");
  Bytes enc_key = crypto::DeriveKey32(key, enc_label);
  ScopedWipe wipe_enc(enc_key);
  Bytes mac_key = crypto::DeriveKey32(key, mac_label);
  ScopedWipe wipe_mac(mac_key);
  ByteSpan body = blob.subspan(0, blob.size() - 32);
  ByteSpan mac = blob.subspan(blob.size() - 32);
  if (!SecureCompare(crypto::HmacSha256ToBytes(mac_key, body), mac)) {
    throw crypto::CryptoError(std::string(what) +
                ": MAC verification failed (wrong key or tampered data)");
  }
  return crypto::AesCtrEncrypt(enc_key, body.subspan(0, 16), body.subspan(16));
}

}  // namespace

Secret WrapKeyBlob(const Secret& plaintext, const Secret& key,
                   crypto::Rng& rng) {
  return Secret(SealAuthenticated(plaintext.ExposeForCrypto(),
                                  key.ExposeForCrypto(), rng, "reed/wrap-enc",
                                  "reed/wrap-mac"));
}

Secret UnwrapKeyBlob(ByteSpan blob, const Secret& key) {
  return Secret(OpenAuthenticated(blob, key.ExposeForCrypto(), "reed/wrap-enc",
                                  "reed/wrap-mac", "UnwrapKeyBlob"));
}

Secret EncryptStubFile(const Secret& stub_data, const Secret& file_key,
                       crypto::Rng& rng) {
  return Secret(SealAuthenticated(stub_data.ExposeForCrypto(),
                                  file_key.ExposeForCrypto(), rng,
                                  "reed/stub-enc", "reed/stub-mac"));
}

Secret DecryptStubFile(ByteSpan blob, const Secret& file_key) {
  return Secret(OpenAuthenticated(blob, file_key.ExposeForCrypto(),
                                  "reed/stub-enc", "reed/stub-mac",
                                  "DecryptStubFile"));
}

}  // namespace reed::aont
