// The REED chunk-encryption schemes — the paper's primary contribution
// (§IV-B, Figures 2 and 3).
//
// Both schemes turn (chunk, MLE key) into a deterministic CAONT package and
// split it into:
//   * a large *trimmed package* that deduplicates across users, and
//   * a small *stub* (64 B default) whose possession is necessary to revert
//     the package — the stub is what the renewable file key encrypts, so
//     rekeying a file costs only a stub-file re-encryption.
//
// Basic  (Fig. 2): C = (M‖canary) ⊕ G(K_M),  t = K_M ⊕ H(C).
//   Fast, but an adversary holding K_M can unmask the trimmed package.
// Enhanced (Fig. 3): C1 = E(K_M, M);  h = H(C1‖K_M);
//   C2 = (C1‖K_M) ⊕ G(h);  t = SelfXor(C2) ⊕ h.
//   One extra encryption pass buys resilience against MLE-key leakage.
//
// Decryption needs only (trimmed package, stub) — MLE keys are never
// uploaded or needed again (paper §IV-D, footnote 1).
#pragma once

#include "aont/aont.h"
#include "util/bytes.h"
#include "util/secret.h"

namespace reed::aont {

inline constexpr std::size_t kCanarySize = 32;      // zero canary (§V)
inline constexpr std::size_t kDefaultStubSize = 64; // §IV-A / §V
inline constexpr std::size_t kMleKeySize = 32;

enum class Scheme { kBasic, kEnhanced };

[[nodiscard]] const char* SchemeName(Scheme scheme);

// A chunk after REED encryption, before stub-file encryption. The trimmed
// package is public (it deduplicates across users and goes to the server
// as-is); the stub is Secret until EncryptStubFile seals it under the file
// key — possession of a stub reverts its package.
struct SealedChunk {
  Bytes trimmed_package;
  Secret stub;
};

class ReedCipher {
 public:
  explicit ReedCipher(Scheme scheme, std::size_t stub_size = kDefaultStubSize);

  Scheme scheme() const { return scheme_; }
  std::size_t stub_size() const { return stub_size_; }

  // Deterministically seals `chunk` under its 32-byte MLE key.
  [[nodiscard]] SealedChunk Encrypt(ByteSpan chunk, const Secret& mle_key) const;

  // Reassembles the package and reverts it. Throws Error if either part
  // was tampered with (canary / hash-key verification).
  [[nodiscard]] Bytes Decrypt(ByteSpan trimmed_package, const Secret& stub) const;

  // Package size for a given chunk size (trimmed + stub).
  [[nodiscard]] std::size_t PackageSize(std::size_t chunk_size) const;

 private:
  // Internals operate on raw spans after the public entry points expose
  // the Secret inputs (aont is a sanctioned ExposeForCrypto module).
  SealedChunk EncryptBasic(ByteSpan chunk, ByteSpan mle_key) const;
  Bytes DecryptBasic(ByteSpan package) const;
  SealedChunk EncryptEnhanced(ByteSpan chunk, ByteSpan mle_key) const;
  Bytes DecryptEnhanced(ByteSpan package) const;
  SealedChunk SplitPackage(Bytes package) const;

  Scheme scheme_;
  std::size_t stub_size_;
};

// Stub-file protection under the (renewable) file key: AES-256-CTR with a
// fresh IV plus an HMAC tag, with keys derived from the file key by label.
// Re-encrypting this blob is the entire cost of active revocation.
//
// The ciphertext is returned *still tainted* (Secret): declaring it public
// is the uploader's policy decision, made at one of the two sanctioned
// reed::Declassify crossings in the client (DESIGN.md §8) — not implicitly
// here. The decrypt direction takes public wire bytes and returns Secret.
[[nodiscard]] Secret EncryptStubFile(const Secret& stub_data,
                                     const Secret& file_key, crypto::Rng& rng);
[[nodiscard]] Secret DecryptStubFile(ByteSpan blob, const Secret& file_key);

// Authenticated symmetric wrap for key material (same AES-CTR + HMAC
// construction under distinct derivation labels). Used by the group
// rekeying extension to wrap per-file key states under a group wrap key.
// Same taint convention as the stub-file pair above.
[[nodiscard]] Secret WrapKeyBlob(const Secret& plaintext, const Secret& key,
                                 crypto::Rng& rng);
[[nodiscard]] Secret UnwrapKeyBlob(ByteSpan blob, const Secret& key);

}  // namespace reed::aont
