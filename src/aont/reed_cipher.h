// The REED chunk-encryption schemes — the paper's primary contribution
// (§IV-B, Figures 2 and 3).
//
// Both schemes turn (chunk, MLE key) into a deterministic CAONT package and
// split it into:
//   * a large *trimmed package* that deduplicates across users, and
//   * a small *stub* (64 B default) whose possession is necessary to revert
//     the package — the stub is what the renewable file key encrypts, so
//     rekeying a file costs only a stub-file re-encryption.
//
// Basic  (Fig. 2): C = (M‖canary) ⊕ G(K_M),  t = K_M ⊕ H(C).
//   Fast, but an adversary holding K_M can unmask the trimmed package.
// Enhanced (Fig. 3): C1 = E(K_M, M);  h = H(C1‖K_M);
//   C2 = (C1‖K_M) ⊕ G(h);  t = SelfXor(C2) ⊕ h.
//   One extra encryption pass buys resilience against MLE-key leakage.
//
// Decryption needs only (trimmed package, stub) — MLE keys are never
// uploaded or needed again (paper §IV-D, footnote 1).
#pragma once

#include "aont/aont.h"
#include "util/bytes.h"

namespace reed::aont {

inline constexpr std::size_t kCanarySize = 32;      // zero canary (§V)
inline constexpr std::size_t kDefaultStubSize = 64; // §IV-A / §V
inline constexpr std::size_t kMleKeySize = 32;

enum class Scheme { kBasic, kEnhanced };

[[nodiscard]] const char* SchemeName(Scheme scheme);

// A chunk after REED encryption, before stub-file encryption.
struct SealedChunk {
  Bytes trimmed_package;
  Bytes stub;
};

class ReedCipher {
 public:
  explicit ReedCipher(Scheme scheme, std::size_t stub_size = kDefaultStubSize);

  Scheme scheme() const { return scheme_; }
  std::size_t stub_size() const { return stub_size_; }

  // Deterministically seals `chunk` under its 32-byte MLE key.
  [[nodiscard]] SealedChunk Encrypt(ByteSpan chunk, ByteSpan mle_key) const;

  // Reassembles the package and reverts it. Throws Error if either part
  // was tampered with (canary / hash-key verification).
  [[nodiscard]] Bytes Decrypt(ByteSpan trimmed_package, ByteSpan stub) const;

  // Package size for a given chunk size (trimmed + stub).
  [[nodiscard]] std::size_t PackageSize(std::size_t chunk_size) const;

 private:
  SealedChunk EncryptBasic(ByteSpan chunk, ByteSpan mle_key) const;
  Bytes DecryptBasic(ByteSpan package) const;
  SealedChunk EncryptEnhanced(ByteSpan chunk, ByteSpan mle_key) const;
  Bytes DecryptEnhanced(ByteSpan package) const;
  SealedChunk SplitPackage(Bytes package) const;

  Scheme scheme_;
  std::size_t stub_size_;
};

// Stub-file protection under the (renewable) file key: AES-256-CTR with a
// fresh IV plus an HMAC tag, with keys derived from the file key by label.
// Re-encrypting this blob is the entire cost of active revocation.
[[nodiscard]] Bytes EncryptStubFile(ByteSpan stub_data, ByteSpan file_key, crypto::Rng& rng);
[[nodiscard]] Bytes DecryptStubFile(ByteSpan blob, ByteSpan file_key);

// Authenticated symmetric wrap for key material (same AES-CTR + HMAC
// construction under distinct derivation labels). Used by the group
// rekeying extension to wrap per-file key states under a group wrap key.
[[nodiscard]] Bytes WrapKeyBlob(ByteSpan plaintext, ByteSpan key, crypto::Rng& rng);
[[nodiscard]] Bytes UnwrapKeyBlob(ByteSpan blob, ByteSpan key);

}  // namespace reed::aont
