#include "bigint/bigint.h"

#include <algorithm>

namespace reed::bigint {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::FromHex(std::string_view hex) {
  BigInt out;
  // Left-pad to a whole number of limbs (16 hex digits each).
  std::string padded(hex);
  if (padded.empty()) return out;
  std::size_t rem = padded.size() % 16;
  if (rem) padded.insert(0, 16 - rem, '0');
  std::size_t nlimbs = padded.size() / 16;
  out.limbs_.resize(nlimbs);
  for (std::size_t i = 0; i < nlimbs; ++i) {
    std::string_view part(padded.data() + 16 * (nlimbs - 1 - i), 16);
    u64 v = 0;
    for (char c : part) {
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
      else throw Error("BigInt::FromHex: bad digit");
      v = (v << 4) | static_cast<u64>(d);
    }
    out.limbs_[i] = v;
  }
  out.Normalize();
  return out;
}

BigInt BigInt::FromBytes(ByteSpan be) {
  BigInt out;
  out.limbs_.assign((be.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    // byte be[i] has weight 256^(size-1-i)
    std::size_t pos = be.size() - 1 - i;
    out.limbs_[pos / 8] |= static_cast<u64>(be[i]) << (8 * (pos % 8));
  }
  out.Normalize();
  return out;
}

std::string BigInt::ToHex() const {
  if (limbs_.empty()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(digits[(limbs_[i] >> shift) & 0xF]);
    }
  }
  std::size_t first = out.find_first_not_of('0');
  return first == std::string::npos ? "0" : out.substr(first);
}

Bytes BigInt::ToBytes() const {
  std::size_t bits = BitLength();
  std::size_t nbytes = (bits + 7) / 8;
  return ToBytesPadded(nbytes);
}

Bytes BigInt::ToBytesPadded(std::size_t n) const {
  Bytes out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t pos = n - 1 - i;  // weight of out[i]
    u64 limb = Limb(pos / 8);
    out[i] = static_cast<std::uint8_t>(limb >> (8 * (pos % 8)));
  }
  // Verify nothing was truncated.
  if (BitLength() > n * 8) throw Error("BigInt::ToBytesPadded: value too large");
  return out;
}

std::size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  u64 top = limbs_.back();
  std::size_t bits = 64 * (limbs_.size() - 1);
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::Bit(std::size_t i) const {
  std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

std::strong_ordering BigInt::operator<=>(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() <=> other.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] <=> other.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt out;
  std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 sum = static_cast<u128>(Limb(i)) + other.Limb(i) + carry;
    out.limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.Normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const {
  if (*this < other) throw Error("BigInt: negative subtraction result");
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u128 lhs = limbs_[i];
    u128 rhs = static_cast<u128>(other.Limb(i)) + borrow;
    if (lhs >= rhs) {
      out.limbs_[i] = static_cast<u64>(lhs - rhs);
      borrow = 0;
    } else {
      out.limbs_[i] = static_cast<u64>((u128(1) << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator*(const BigInt& other) const {
  if (IsZero() || other.IsZero()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    u64 a = limbs_[i];
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(a) * other.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out.limbs_[i + other.limbs_.size()] += carry;
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (IsZero()) return BigInt();
  std::size_t limb_shift = bits / 64;
  std::size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift ? (limbs_[i] << bit_shift) : limbs_[i];
    if (bit_shift) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  std::size_t limb_shift = bits / 64;
  std::size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    u64 lo = limbs_[i + limb_shift] >> bit_shift;
    u64 hi = 0;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      hi = limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
    out.limbs_[i] = lo | hi;
  }
  out.Normalize();
  return out;
}

BigInt& BigInt::operator+=(const BigInt& other) {
  std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  limbs_.resize(n, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 sum = static_cast<u128>(limbs_[i]) + other.Limb(i) + carry;
    limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  if (carry) limbs_.push_back(carry);
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) {
  if (*this < other) throw Error("BigInt: negative subtraction result");
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u128 lhs = limbs_[i];
    u128 rhs = static_cast<u128>(other.Limb(i)) + borrow;
    if (lhs >= rhs) {
      limbs_[i] = static_cast<u64>(lhs - rhs);
      borrow = 0;
    } else {
      limbs_[i] = static_cast<u64>((u128(1) << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  Normalize();
  return *this;
}

void BigInt::ShiftRight1InPlace() {
  if (limbs_.empty()) return;
  for (std::size_t i = 0; i + 1 < limbs_.size(); ++i) {
    limbs_[i] = (limbs_[i] >> 1) | (limbs_[i + 1] << 63);
  }
  limbs_.back() >>= 1;
  Normalize();
}

BigInt::DivMod BigInt::Divide(const BigInt& divisor) const {
  if (divisor.IsZero()) throw Error("BigInt: division by zero");
  if (*this < divisor) return {BigInt(), *this};

  // Shift-subtract long division, one bit per step, starting from the
  // aligned position. Division is off the hot paths (Montgomery handles
  // modexp), so clarity wins over Knuth D.
  std::size_t shift = BitLength() - divisor.BitLength();
  BigInt rem = *this;
  BigInt d = divisor << shift;
  BigInt quot;
  quot.limbs_.assign(shift / 64 + 1, 0);
  for (std::size_t i = shift + 1; i-- > 0;) {
    if (rem >= d) {
      rem -= d;
      quot.limbs_[i / 64] |= u64(1) << (i % 64);
    }
    d = d >> 1;
  }
  quot.Normalize();
  return {std::move(quot), std::move(rem)};
}

BigInt BigInt::MulLimb(u64 m) const {
  if (m == 0 || IsZero()) return BigInt();
  BigInt out;
  out.limbs_.resize(limbs_.size() + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u128 cur = static_cast<u128>(limbs_[i]) * m + carry;
    out.limbs_[i] = static_cast<u64>(cur);
    carry = static_cast<u64>(cur >> 64);
  }
  out.limbs_[limbs_.size()] = carry;
  out.Normalize();
  return out;
}

std::uint64_t BigInt::ModLimb(u64 m) const {
  if (m == 0) throw Error("BigInt::ModLimb: division by zero");
  u128 rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs_[i]) % m;
  }
  return static_cast<u64>(rem);
}

BigInt BigInt::AddMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a + b) % m;
}

BigInt BigInt::SubMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt ar = a % m;
  BigInt br = b % m;
  if (ar >= br) return ar - br;
  return ar + m - br;
}

BigInt BigInt::MulMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b) % m;
}

BigInt BigInt::PowMod(const BigInt& a, const BigInt& e, const BigInt& m) {
  if (m.IsZero()) throw Error("BigInt::PowMod: zero modulus");
  if (m.IsOne()) return BigInt();
  if (m.IsOdd()) {
    Montgomery mont(m);
    return mont.Pow(a, e);
  }
  // Even modulus: plain square-and-multiply (rare path, kept for API
  // completeness).
  BigInt result(1);
  BigInt base = a % m;
  for (std::size_t i = e.BitLength(); i-- > 0;) {
    result = MulMod(result, result, m);
    if (e.Bit(i)) result = MulMod(result, base, m);
  }
  return result;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  while (!b.IsZero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

namespace {

// Binary extended GCD (HAC 14.61 style) — no divisions, so much faster
// than Euclid for the odd moduli that dominate REED (field primes, RSA
// moduli). Requires m odd and > 1.
BigInt BinaryInverseOdd(const BigInt& a, const BigInt& m) {
  BigInt u = a % m;
  if (u.IsZero()) throw Error("BigInt::InverseMod: not invertible");
  BigInt v = m;
  BigInt x1(1), x2;  // invariants: x1*a ≡ u, x2*a ≡ v (mod m)

  auto half_mod = [&m](BigInt& x) {
    if (x.IsOdd()) x += m;
    x.ShiftRight1InPlace();
  };
  auto sub_mod = [&m](BigInt& x, const BigInt& y) {
    if (x >= y) {
      x -= y;
    } else {
      x += m;
      x -= y;
    }
  };

  while (!u.IsOne() && !v.IsOne()) {
    while (!u.IsOdd()) {
      u.ShiftRight1InPlace();
      half_mod(x1);
    }
    while (!v.IsOdd()) {
      v.ShiftRight1InPlace();
      half_mod(x2);
    }
    if (u >= v) {
      u -= v;
      sub_mod(x1, x2);
      if (u.IsZero()) throw Error("BigInt::InverseMod: not invertible");
    } else {
      v -= u;
      sub_mod(x2, x1);
      if (v.IsZero()) throw Error("BigInt::InverseMod: not invertible");
    }
  }
  return u.IsOne() ? x1 % m : x2 % m;
}

}  // namespace

BigInt BigInt::InverseMod(const BigInt& a, const BigInt& m) {
  // Extended Euclid tracking only the coefficient of `a`, with signs
  // handled by parity bookkeeping: invariants r0 = s0*a (mod m), r1 = s1*a.
  if (m.IsZero()) throw Error("BigInt::InverseMod: zero modulus");
  if (m.IsOdd() && !m.IsOne()) return BinaryInverseOdd(a, m);
  BigInt r0 = m, r1 = a % m;
  BigInt s0, s1(1);       // |s| values
  bool neg0 = false, neg1 = false;
  while (!r1.IsZero()) {
    DivMod qr = r0.Divide(r1);
    // s2 = s0 - q*s1 with sign tracking.
    BigInt qs1 = qr.quotient * s1;
    BigInt s2;
    bool neg2;
    if (neg0 == neg1) {
      if (s0 >= qs1) {
        s2 = s0 - qs1;
        neg2 = neg0;
      } else {
        s2 = qs1 - s0;
        neg2 = !neg0;
      }
    } else {
      s2 = s0 + qs1;
      neg2 = neg0;
    }
    r0 = std::move(r1);
    r1 = std::move(qr.remainder);
    s0 = std::move(s1);
    neg0 = neg1;
    s1 = std::move(s2);
    neg1 = neg2;
  }
  if (!r0.IsOne()) throw Error("BigInt::InverseMod: not invertible");
  BigInt inv = s0 % m;
  if (neg0 && !inv.IsZero()) inv = m - inv;
  return inv;
}

BigInt BigInt::Random(crypto::Rng& rng, const BigInt& bound) {
  if (bound.IsZero()) throw Error("BigInt::Random: zero bound");
  std::size_t bits = bound.BitLength();
  // Rejection sampling at the bound's bit length: expected < 2 draws.
  for (;;) {
    BigInt candidate = RandomBits(rng, bits);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::RandomBits(crypto::Rng& rng, std::size_t bits) {
  if (bits == 0) return BigInt();
  std::size_t nbytes = (bits + 7) / 8;
  Bytes buf = rng.Generate(nbytes);
  // Mask excess high bits.
  std::size_t excess = nbytes * 8 - bits;
  buf[0] &= static_cast<std::uint8_t>(0xFF >> excess);
  return FromBytes(buf);
}

// ---------------------------------------------------------------------------
// Montgomery
// ---------------------------------------------------------------------------

Montgomery::Montgomery(const BigInt& modulus) : n_(modulus) {
  if (!n_.IsOdd() || n_.IsOne()) {
    throw Error("Montgomery: modulus must be odd and > 1");
  }
  k_ = n_.LimbCount();
  // n' = -n^{-1} mod 2^64 by Newton–Hensel lifting.
  u64 n0 = n_.Limb(0);
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
  n_prime_ = ~inv + 1;  // -inv mod 2^64

  r_mod_n_ = (BigInt(1) << (64 * k_)) % n_;
  r2_mod_n_ = (BigInt(1) << (128 * k_)) % n_;
}

BigInt Montgomery::MulMont(const BigInt& a, const BigInt& b) const {
  // SOS: full product then Montgomery reduction.
  std::vector<u64> t(2 * k_ + 1, 0);
  // t = a * b
  for (std::size_t i = 0; i < a.LimbCount(); ++i) {
    u64 carry = 0;
    u64 ai = a.Limb(i);
    for (std::size_t j = 0; j < b.LimbCount(); ++j) {
      u128 cur = static_cast<u128>(ai) * b.Limb(j) + t[i + j] + carry;
      t[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    std::size_t idx = i + b.LimbCount();
    while (carry) {
      u128 cur = static_cast<u128>(t[idx]) + carry;
      t[idx] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
      ++idx;
    }
  }
  // Reduce limb by limb.
  for (std::size_t i = 0; i < k_; ++i) {
    u64 m = t[i] * n_prime_;
    u64 carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      u128 cur = static_cast<u128>(m) * n_.Limb(j) + t[i + j] + carry;
      t[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    std::size_t idx = i + k_;
    while (carry) {
      u128 cur = static_cast<u128>(t[idx]) + carry;
      t[idx] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
      ++idx;
    }
  }
  BigInt result;
  result.limbs_.assign(t.begin() + static_cast<std::ptrdiff_t>(k_), t.end());
  result.Normalize();
  if (result >= n_) result -= n_;
  return result;
}

BigInt Montgomery::ToMont(const BigInt& a) const {
  BigInt reduced = (a >= n_) ? a % n_ : a;
  return MulMont(reduced, r2_mod_n_);
}

BigInt Montgomery::FromMont(const BigInt& a) const {
  return MulMont(a, BigInt(1));
}

BigInt Montgomery::Mul(const BigInt& a, const BigInt& b) const {
  return FromMont(MulMont(ToMont(a), ToMont(b)));
}

BigInt Montgomery::PowMont(const BigInt& base_mont, const BigInt& exp) const {
  BigInt result = r_mod_n_;  // 1 in Montgomery form
  for (std::size_t i = exp.BitLength(); i-- > 0;) {
    result = MulMont(result, result);
    if (exp.Bit(i)) result = MulMont(result, base_mont);
  }
  return result;
}

BigInt Montgomery::Pow(const BigInt& base, const BigInt& exp) const {
  return FromMont(PowMont(ToMont(base), exp));
}

}  // namespace reed::bigint
