// Arbitrary-precision unsigned integer arithmetic, from scratch.
//
// This is the numeric substrate under REED's public-key layer: the RSA
// blind-signature OPRF (DupLESS-style MLE key generation), RSA key
// regression, and the F_p / F_p² towers of the Type-A pairing that powers
// CP-ABE. Little-endian 64-bit limbs, normalized (no trailing zero limbs);
// values are non-negative — the few places needing signed intermediate
// results (extended gcd) handle the sign locally.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/random.h"
#include "util/bytes.h"

namespace reed::bigint {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::uint64_t v) { if (v) limbs_.push_back(v); }  // NOLINT: implicit by design

  // Hex parsing/printing (no 0x prefix); bytes are big-endian.
  static BigInt FromHex(std::string_view hex);
  static BigInt FromBytes(ByteSpan be_bytes);
  std::string ToHex() const;
  Bytes ToBytes() const;                  // minimal big-endian encoding
  Bytes ToBytesPadded(std::size_t n) const;  // left-padded to n bytes

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool IsOne() const { return limbs_.size() == 1 && limbs_[0] == 1; }

  // Number of significant bits (0 for zero).
  std::size_t BitLength() const;
  bool Bit(std::size_t i) const;
  std::size_t LimbCount() const { return limbs_.size(); }
  std::uint64_t Limb(std::size_t i) const {
    return i < limbs_.size() ? limbs_[i] : 0;
  }
  // Low 64 bits.
  std::uint64_t ToU64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  std::strong_ordering operator<=>(const BigInt& other) const;
  bool operator==(const BigInt& other) const = default;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;  // throws if other > *this
  BigInt operator*(const BigInt& other) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  // True in-place arithmetic (no allocation when capacity suffices) — the
  // binary-GCD inversion inner loop lives on these.
  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);  // throws if other > *this
  void ShiftRight1InPlace();

  // Quotient and remainder; throws on division by zero.
  struct DivMod;
  DivMod Divide(const BigInt& divisor) const;
  BigInt operator/(const BigInt& d) const;
  BigInt operator%(const BigInt& d) const;

  // Single-limb fast paths.
  BigInt MulLimb(std::uint64_t m) const;
  std::uint64_t ModLimb(std::uint64_t m) const;

  // (a + b) mod m, (a - b) mod m, (a * b) mod m — inputs need not be reduced.
  static BigInt AddMod(const BigInt& a, const BigInt& b, const BigInt& m);
  static BigInt SubMod(const BigInt& a, const BigInt& b, const BigInt& m);
  static BigInt MulMod(const BigInt& a, const BigInt& b, const BigInt& m);

  // a^e mod m. m odd uses Montgomery; even moduli fall back to square&mul.
  static BigInt PowMod(const BigInt& a, const BigInt& e, const BigInt& m);

  static BigInt Gcd(BigInt a, BigInt b);

  // Modular inverse via extended Euclid; throws Error if gcd(a, m) != 1.
  static BigInt InverseMod(const BigInt& a, const BigInt& m);

  // Uniform random value in [0, bound) / exact bit length.
  static BigInt Random(crypto::Rng& rng, const BigInt& bound);
  static BigInt RandomBits(crypto::Rng& rng, std::size_t bits);

 private:
  friend class Montgomery;
  void Normalize();
  std::vector<std::uint64_t> limbs_;
};

struct BigInt::DivMod {
  BigInt quotient;
  BigInt remainder;
};

inline BigInt BigInt::operator/(const BigInt& d) const {
  return Divide(d).quotient;
}
inline BigInt BigInt::operator%(const BigInt& d) const {
  return Divide(d).remainder;
}

// Montgomery context for a fixed odd modulus: fast repeated modular
// multiplication (CIOS) and exponentiation. Shared across operations on the
// same field/modulus (each RSA key and the pairing field keep one).
class Montgomery {
 public:
  explicit Montgomery(const BigInt& modulus);

  const BigInt& modulus() const { return n_; }

  // Representation conversion.
  BigInt ToMont(const BigInt& a) const;    // a * R mod n
  BigInt FromMont(const BigInt& a) const;  // a * R^-1 mod n

  // Montgomery product of two Montgomery-form values.
  BigInt MulMont(const BigInt& a, const BigInt& b) const;

  // Plain-value modular ops (convert in/out internally).
  BigInt Mul(const BigInt& a, const BigInt& b) const;
  BigInt Pow(const BigInt& base, const BigInt& exp) const;
  // base already in Montgomery form; result in Montgomery form.
  BigInt PowMont(const BigInt& base_mont, const BigInt& exp) const;

 private:
  BigInt n_;
  std::size_t k_;           // limb count of n
  std::uint64_t n_prime_;   // -n^{-1} mod 2^64
  BigInt r_mod_n_;          // R mod n
  BigInt r2_mod_n_;         // R^2 mod n
};

}  // namespace reed::bigint
