#include "bigint/prime.h"

#include <array>

namespace reed::bigint {

namespace {

// Small primes for trial division — rejects ~90% of random candidates
// before the expensive Miller–Rabin rounds.
constexpr std::array<std::uint64_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

bool MillerRabinRound(const Montgomery& mont, const BigInt& n_minus_1,
                      const BigInt& d, std::size_t r, const BigInt& base) {
  BigInt x = mont.Pow(base, d);
  if (x.IsOne() || x == n_minus_1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = mont.Mul(x, x);
    if (x == n_minus_1) return true;
    if (x.IsOne()) return false;  // nontrivial sqrt of 1 -> composite
  }
  return false;
}

}  // namespace

bool IsProbablePrime(const BigInt& n, crypto::Rng& rng, int rounds) {
  if (n < BigInt(2)) return false;
  for (std::uint64_t p : kSmallPrimes) {
    if (n == BigInt(p)) return true;
    if (n.ModLimb(p) == 0) return false;
  }
  // n is odd and > 251 here.
  BigInt n_minus_1 = n - BigInt(1);
  // n - 1 = d * 2^r with d odd.
  std::size_t r = 0;
  BigInt d = n_minus_1;
  while (!d.IsOdd()) {
    d = d >> 1;
    ++r;
  }
  Montgomery mont(n);
  BigInt two(2);
  BigInt n_minus_3 = n - BigInt(3);
  for (int i = 0; i < rounds; ++i) {
    // base uniform in [2, n-2]
    BigInt base = BigInt::Random(rng, n_minus_3) + two;
    if (!MillerRabinRound(mont, n_minus_1, d, r, base)) return false;
  }
  return true;
}

BigInt GeneratePrime(std::size_t bits, crypto::Rng& rng) {
  if (bits < 8) throw Error("GeneratePrime: need at least 8 bits");
  for (;;) {
    BigInt candidate = BigInt::RandomBits(rng, bits);
    // Force exact bit length and oddness.
    BigInt top = BigInt(1) << (bits - 1);
    if (candidate < top) candidate += top;
    if (!candidate.IsOdd()) candidate -= BigInt(1);
    if (IsProbablePrime(candidate, rng)) return candidate;
  }
}

BigInt GenerateRsaPrime(std::size_t bits, const BigInt& e, crypto::Rng& rng) {
  for (;;) {
    BigInt p = GeneratePrime(bits, rng);
    if (BigInt::Gcd(p - BigInt(1), e).IsOne()) return p;
  }
}

}  // namespace reed::bigint
