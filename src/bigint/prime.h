// Primality testing and prime generation for RSA key material.
#pragma once

#include "bigint/bigint.h"
#include "crypto/random.h"

namespace reed::bigint {

// Miller–Rabin with `rounds` random bases (after small-prime trial
// division). Error probability ≤ 4^-rounds for odd composites.
bool IsProbablePrime(const BigInt& n, crypto::Rng& rng, int rounds = 20);

// Uniform random probable prime with exactly `bits` bits (top bit set).
BigInt GeneratePrime(std::size_t bits, crypto::Rng& rng);

// Random prime p with exactly `bits` bits such that gcd(p-1, e) == 1 —
// the form required for RSA factors with public exponent e.
BigInt GenerateRsaPrime(std::size_t bits, const BigInt& e, crypto::Rng& rng);

}  // namespace reed::bigint
