#include "chunk/chunker.h"

namespace reed::chunk {

FixedSizeChunker::FixedSizeChunker(std::size_t chunk_size)
    : chunk_size_(chunk_size) {
  if (chunk_size_ == 0) throw Error("FixedSizeChunker: zero chunk size");
}

std::vector<ChunkRef> FixedSizeChunker::Split(ByteSpan data) {
  std::vector<ChunkRef> out;
  out.reserve(data.size() / chunk_size_ + 1);
  for (std::size_t off = 0; off < data.size(); off += chunk_size_) {
    out.push_back({off, std::min(chunk_size_, data.size() - off)});
  }
  return out;
}

RabinChunker::RabinChunker(Options options)
    : options_(options),
      mask_(options.average_size - 1),
      window_(options.window_size) {
  if (options_.average_size == 0 ||
      (options_.average_size & (options_.average_size - 1)) != 0) {
    throw Error("RabinChunker: average size must be a power of two");
  }
  if (options_.min_size == 0 || options_.min_size > options_.max_size) {
    throw Error("RabinChunker: invalid min/max sizes");
  }
}

std::vector<ChunkRef> RabinChunker::Split(ByteSpan data) {
  std::vector<ChunkRef> out;
  if (data.empty()) return out;
  out.reserve(data.size() / options_.average_size + 1);

  std::size_t start = 0;
  std::size_t len = 0;
  window_.Reset();
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::uint64_t fp = window_.Slide(data[i]);
    ++len;
    bool at_boundary =
        len >= options_.min_size && (fp & mask_) == mask_;
    if (at_boundary || len == options_.max_size) {
      out.push_back({start, len});
      start = i + 1;
      len = 0;
      // Restart the window so each chunk's boundaries depend only on its
      // own content (keeps boundaries stable across chunk-local edits).
      window_.Reset();
    }
  }
  if (len > 0) out.push_back({start, len});
  return out;
}

RabinChunker::Options PaperChunking(std::size_t average_size) {
  RabinChunker::Options opts;
  opts.min_size = 2 * 1024;
  opts.max_size = 16 * 1024;
  opts.average_size = average_size;
  // Small averages need min below the default 2 KB to have any effect.
  if (average_size < opts.min_size * 2) {
    opts.min_size = average_size / 2;
  }
  return opts;
}

}  // namespace reed::chunk
