// Chunkers: fixed-size and content-defined (Rabin) variable-size, matching
// the paper's client (§V): min 2 KB, max 16 KB, configurable average.
#pragma once

#include <memory>
#include <vector>

#include "chunk/rabin.h"
#include "util/bytes.h"

namespace reed::chunk {

// A chunk boundary within the input buffer.
struct ChunkRef {
  std::size_t offset = 0;
  std::size_t length = 0;
};

class Chunker {
 public:
  virtual ~Chunker() = default;

  // Splits `data` into consecutive, exhaustive, non-overlapping chunks.
  virtual std::vector<ChunkRef> Split(ByteSpan data) = 0;
};

class FixedSizeChunker : public Chunker {
 public:
  explicit FixedSizeChunker(std::size_t chunk_size);
  std::vector<ChunkRef> Split(ByteSpan data) override;

 private:
  std::size_t chunk_size_;
};

// Content-defined chunking: a boundary is declared where the Rabin
// fingerprint of the trailing window matches a target pattern, subject to
// the min/max bounds. Identical content produces identical boundaries even
// after insertions/deletions elsewhere — the property dedup relies on.
class RabinChunker : public Chunker {
 public:
  struct Options {
    std::size_t min_size = 2 * 1024;
    std::size_t max_size = 16 * 1024;
    std::size_t average_size = 8 * 1024;  // must be a power of two
    std::size_t window_size = RabinWindow::kDefaultWindowSize;
  };

  explicit RabinChunker(Options options);
  std::vector<ChunkRef> Split(ByteSpan data) override;

  const Options& options() const { return options_; }

 private:
  Options options_;
  std::uint64_t mask_;
  RabinWindow window_;
};

// Paper parameterization helper: min 2 KB / max 16 KB, given average.
RabinChunker::Options PaperChunking(std::size_t average_size);

}  // namespace reed::chunk
