// Chunk fingerprints.
//
// A fingerprint is the SHA-256 of chunk content (paper §II-A); dedup treats
// fingerprint equality as content equality (collision probability is
// negligible). The 48-bit truncation mirrors the FSL trace format used in
// the paper's real-world evaluation (§VI-B).
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace reed::chunk {

struct Fingerprint {
  std::array<std::uint8_t, 32> bytes{};

  static Fingerprint Of(ByteSpan data) {
    Fingerprint fp;
    fp.bytes = crypto::Sha256::Hash(data);
    return fp;
  }

  static Fingerprint FromBytes(ByteSpan b) {
    if (b.size() != 32) throw Error("Fingerprint::FromBytes: need 32 bytes");
    Fingerprint fp;
    std::copy(b.begin(), b.end(), fp.bytes.begin());
    return fp;
  }

  ByteSpan AsSpan() const { return ByteSpan(bytes.data(), bytes.size()); }
  Bytes ToBytes() const { return Bytes(bytes.begin(), bytes.end()); }
  std::string ToHex() const { return HexEncode(AsSpan()); }

  // 48-bit truncation, as stored in FSL-style trace snapshots.
  std::uint64_t Short48() const {
    std::uint64_t v = 0;
    for (int i = 0; i < 6; ++i) v = (v << 8) | bytes[i];
    return v;
  }

  bool operator==(const Fingerprint&) const = default;
  auto operator<=>(const Fingerprint&) const = default;
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const {
    // The fingerprint is already uniform; fold the first 8 bytes.
    std::uint64_t v;
    std::memcpy(&v, fp.bytes.data(), sizeof(v));
    return static_cast<std::size_t>(v);
  }
};

}  // namespace reed::chunk
