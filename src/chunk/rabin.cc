#include "chunk/rabin.h"

namespace reed::chunk {

namespace {

int DegreeOf(std::uint64_t poly) {
  int d = -1;
  while (poly) {
    ++d;
    poly >>= 1;
  }
  return d;
}

// GF(2) multiply-then-reduce of a byte by a (< 2^56) polynomial value.
std::uint64_t PolyMulByteMod(std::uint8_t b, std::uint64_t m,
                             std::uint64_t poly) {
  std::uint64_t acc = 0;
  for (int bit = 0; bit < 8; ++bit) {
    if (b & (1u << bit)) acc ^= m << bit;
  }
  return RabinWindow::PolyMod(acc, poly);
}

}  // namespace

std::uint64_t RabinWindow::PolyMod(std::uint64_t value, std::uint64_t poly) {
  int d = DegreeOf(poly);
  for (int bit = 63; bit >= d; --bit) {
    if (value & (std::uint64_t(1) << bit)) {
      value ^= poly << (bit - d);
    }
  }
  return value;
}

RabinWindow::RabinWindow(std::size_t window_size, std::uint64_t poly)
    : window_size_(window_size), poly_(poly), degree_(DegreeOf(poly)),
      window_(window_size, 0) {
  if (window_size_ == 0) throw Error("RabinWindow: window size must be > 0");
  if (degree_ < 9 || degree_ > 56) {
    throw Error("RabinWindow: polynomial degree must be in [9, 56]");
  }
  for (int b = 0; b < 256; ++b) {
    append_table_[b] =
        PolyMod(static_cast<std::uint64_t>(b) << degree_, poly_);
  }
  // x^(8*window_size) mod poly, by repeated byte shifts.
  std::uint64_t x8w = 1;
  for (std::size_t i = 0; i < window_size_; ++i) {
    x8w = PolyMod(x8w << 8, poly_);
  }
  for (int b = 0; b < 256; ++b) {
    remove_table_[b] = PolyMulByteMod(static_cast<std::uint8_t>(b), x8w, poly_);
  }
}

void RabinWindow::Reset() {
  fp_ = 0;
  pos_ = 0;
  filled_ = 0;
  std::fill(window_.begin(), window_.end(), 0);
}

std::uint64_t RabinWindow::Slide(std::uint8_t in) {
  std::uint8_t out = 0;
  bool full = filled_ == window_size_;
  if (full) out = window_[pos_];

  std::uint64_t shifted = (fp_ << 8) | in;
  fp_ = (shifted & ((std::uint64_t(1) << degree_) - 1)) ^
        append_table_[shifted >> degree_];
  if (full) fp_ ^= remove_table_[out];

  window_[pos_] = in;
  pos_ = (pos_ + 1) % window_size_;
  if (!full) ++filled_;
  return fp_;
}

}  // namespace reed::chunk
