// Rabin fingerprinting over GF(2) — the rolling hash driving variable-size
// chunking (paper §V "Client": Rabin fingerprinting with min/max/average
// chunk-size parameters).
//
// The fingerprint of a byte window is the residue of its polynomial mod an
// irreducible degree-53 polynomial. Push/pop are O(1) via two precomputed
// 256-entry tables.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace reed::chunk {

class RabinWindow {
 public:
  static constexpr std::uint64_t kDefaultPoly = 0x3DA3358B4DC173ULL;  // deg 53
  static constexpr std::size_t kDefaultWindowSize = 48;

  explicit RabinWindow(std::size_t window_size = kDefaultWindowSize,
                       std::uint64_t poly = kDefaultPoly);

  // Slides one byte into the window (oldest byte falls out once the window
  // is full) and returns the updated fingerprint.
  std::uint64_t Slide(std::uint8_t in);

  std::uint64_t fingerprint() const { return fp_; }
  std::size_t window_size() const { return window_size_; }

  void Reset();

  // (value mod poly) over GF(2); exposed for tests.
  static std::uint64_t PolyMod(std::uint64_t value, std::uint64_t poly);

 private:
  std::size_t window_size_;
  std::uint64_t poly_;
  int degree_;
  std::uint64_t fp_ = 0;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  std::vector<std::uint8_t> window_;
  // append_table_[b]: (b << degree) mod poly — reduces the overflow byte.
  std::array<std::uint64_t, 256> append_table_;
  // remove_table_[b]: (b << 8*window_size) mod poly — cancels the oldest byte.
  std::array<std::uint64_t, 256> remove_table_;
};

}  // namespace reed::chunk
