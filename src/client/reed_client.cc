#include "client/reed_client.h"

#include <algorithm>
#include <deque>
#include <future>
#include <optional>
#include <utility>

#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "util/fault_inject.h"
#include "util/schedule_fuzz.h"

namespace reed::client {

namespace {

// Pipeline stage tracing (DESIGN.md §9): one histogram per upload/download
// stage, matching the cost attribution in the paper's Figs. 5-7. Timings are
// recorded per batch (or per file operation), never per chunk, and the
// metric pointers are resolved once per process — nothing here allocates on
// the data path. With the overlapped pipeline (DESIGN.md §10) each timer
// still measures only its own stage's duration, so summed stage times can
// exceed operation wall time — that surplus IS the overlap win. Only
// durations and byte counts are recorded; all Secret material stays inside
// the stages.
struct StageMetrics {
  obs::Histogram* chunking_us;
  obs::Histogram* fingerprint_us;
  obs::Histogram* keygen_us;
  obs::Histogram* encode_us;
  obs::Histogram* wrap_us;
  obs::Histogram* store_us;
  obs::Histogram* metadata_us;
  obs::Counter* upload_files;
  obs::Counter* upload_bytes;
  obs::Counter* upload_chunks;
  obs::Counter* upload_duplicates;
  obs::Histogram* unwrap_us;
  obs::Histogram* recipe_us;
  obs::Histogram* fetch_us;
  obs::Histogram* decode_us;
  obs::Counter* download_files;
  obs::Counter* download_bytes;
  obs::Counter* fetch_bytes;
  obs::Gauge* pipeline_inflight;
};

StageMetrics& Metrics() {
  auto& reg = obs::Registry::Global();
  static StageMetrics m{
      &reg.GetHistogram("client.upload.chunking_us"),
      &reg.GetHistogram("client.upload.fingerprint_us"),
      &reg.GetHistogram("client.upload.keygen_us"),
      &reg.GetHistogram("client.upload.encode_us"),
      &reg.GetHistogram("client.upload.wrap_us"),
      &reg.GetHistogram("client.upload.store_us"),
      &reg.GetHistogram("client.upload.metadata_us"),
      &reg.GetCounter("client.upload.files"),
      &reg.GetCounter("client.upload.logical_bytes"),
      &reg.GetCounter("client.upload.chunks"),
      &reg.GetCounter("client.upload.duplicate_chunks"),
      &reg.GetHistogram("client.download.unwrap_us"),
      &reg.GetHistogram("client.download.recipe_us"),
      &reg.GetHistogram("client.download.fetch_us"),
      &reg.GetHistogram("client.download.decode_us"),
      &reg.GetCounter("client.download.files"),
      &reg.GetCounter("client.download.bytes"),
      &reg.GetCounter("client.download.fetch_bytes"),
      &reg.GetGauge("client.pipeline.inflight_batches")};
  return m;
}

crypto::ChaChaRng MakeClientRng(std::uint64_t seed) {
  if (seed == 0) {
    Bytes s = crypto::SecureRandom::Generate(32);
    return crypto::ChaChaRng(s);
  }
  return crypto::DeterministicRng(seed);
}

std::string RecipeName(const std::string& file_id) { return "recipe/" + file_id; }
std::string StubName(const std::string& file_id) { return "stub/" + file_id; }
std::string StateName(const std::string& file_id) { return "keystate/" + file_id; }

// The only two sanctioned secret -> public crossings in the tree
// (DESIGN.md §8). Ciphertext produced by the aont/abe layers stays
// Secret-typed until the uploader makes the policy call that it is safe on
// the wire; these helpers are that call, one per crossing.

// Crossing 1: the stub file, AES-CTR + HMAC ciphertext under the renewable
// file key (paper §IV-A — re-encrypting this blob is the whole cost of
// active revocation).
Bytes PublicStubCiphertext(const Secret& sealed_stub_file) {
  return Declassify(sealed_stub_file,
                    "AES-CTR+HMAC ciphertext under the file key; "
                    "stub-file upload (crossing 1 of 2)");
}

// Crossing 2: the key-state envelope — CP-ABE under the file policy, or the
// symmetric wrap-key blob whose key is itself CP-ABE-protected (§IV-C).
Bytes PublicKeyStateEnvelope(const Secret& wrapped) {
  return Declassify(wrapped,
                    "CP-ABE / wrap-key envelope over the key state; "
                    "key-store upload (crossing 2 of 2)");
}

}  // namespace

ReedClient::ReedClient(std::string user_id, ClientOptions options,
                       std::shared_ptr<StorageClient> storage,
                       std::shared_ptr<keymanager::MleKeyClient> keys,
                       std::shared_ptr<const abe::CpAbe> abe,
                       abe::PublicKey abe_pk, abe::PrivateKey access_key,
                       rsa::RsaKeyPair derivation_keys)
    : user_id_(std::move(user_id)),
      options_(options),
      storage_(std::move(storage)),
      keys_(std::move(keys)),
      abe_(std::move(abe)),
      abe_pk_(std::move(abe_pk)),
      access_key_(std::move(access_key)),
      regression_owner_(std::move(derivation_keys)),
      cipher_(options.scheme, options.stub_size),
      pool_(options.encryption_threads),
      rng_(MakeClientRng(options.rng_seed)) {
  if (!storage_ || !keys_ || !abe_) {
    throw Error("ReedClient: missing dependency");
  }
}

std::string ReedClient::StorageId(const std::string& file_id) const {
  if (options_.file_id_salt.empty()) return file_id;
  return store::ObfuscateFileId(file_id, options_.file_id_salt);
}

std::vector<chunk::ChunkRef> ReedClient::ChunkData(ByteSpan data) {
  if (options_.avg_chunk_size == 0) {
    chunk::FixedSizeChunker chunker(options_.fixed_chunk_size);
    return chunker.Split(data);
  }
  chunk::RabinChunker chunker(chunk::PaperChunking(options_.avg_chunk_size));
  return chunker.Split(data);
}

store::KeyStateRecord ReedClient::InspectKeyStateRecord(
    const std::string& file_id) {
  return FetchKeyStateRecord(StorageId(file_id));
}

rsa::KeyState ReedClient::InspectKeyState(const std::string& file_id) {
  return UnwrapKeyState(FetchKeyStateRecord(StorageId(file_id)));
}

std::vector<aont::SealedChunk> ReedClient::EncryptChunks(
    ByteSpan data, const std::vector<chunk::ChunkRef>& refs,
    const std::vector<Secret>& mle_keys) {
  if (refs.size() != mle_keys.size()) {
    throw Error("ReedClient: chunk/key count mismatch");
  }
  std::vector<aont::SealedChunk> sealed(refs.size());
  pool_.ParallelFor(refs.size(), [&](std::size_t i) {
    sealed[i] = cipher_.Encrypt(data.subspan(refs[i].offset, refs[i].length),
                                mle_keys[i]);
  });
  return sealed;
}

UploadResult ReedClient::Upload(const std::string& file_id, ByteSpan data,
                                const std::vector<std::string>& authorized_users) {
  if (data.empty()) throw Error("ReedClient::Upload: empty file");
  // 1. Chunking, then the shared pipeline.
  obs::ScopedTimer chunk_timer(*Metrics().chunking_us);
  std::vector<chunk::ChunkRef> refs = ChunkData(data);
  (void)chunk_timer.Stop();
  return UploadChunked(file_id, data, refs, authorized_users);
}

UploadResult ReedClient::UploadChunked(
    const std::string& file_id, ByteSpan data,
    const std::vector<chunk::ChunkRef>& refs,
    const std::vector<std::string>& authorized_users) {
  if (refs.empty()) throw Error("ReedClient::Upload: no chunks");
  const std::string sid = StorageId(file_id);
  StageMetrics& m = Metrics();

  // 2. Chunk fingerprints, parallel over the encryption pool (SHA-256 over
  //    the whole file is the serial bottleneck the paper parallelizes away
  //    in §V-B).
  obs::ScopedTimer fp_timer(*m.fingerprint_us);
  std::vector<chunk::Fingerprint> chunk_fps(refs.size());
  pool_.ParallelFor(refs.size(), [&](std::size_t i) {
    chunk_fps[i] =
        chunk::Fingerprint::Of(data.subspan(refs[i].offset, refs[i].length));
  });
  (void)fp_timer.Stop();

  // 3-5. Producer/consumer pipeline over ~upload_batch_bytes batches: this
  // thread produces (keygen → parallel encode+fingerprint → in-order recipe
  // and stub assembly) while up to depth-1 previously produced batches ride
  // the wire on consumer tasks. Recipe order, stub order, and dedup stats
  // are byte-identical to the serial depth=1 path: assembly happens here in
  // batch order, and per-chunk dedup outcomes are order-independent (the
  // server's ingest stripes make lookup+insert atomic per fingerprint).
  //
  // Thread discipline: keys_ (MleKeyClient) and rng_ are NOT thread-safe and
  // are touched only by this producer thread; consumer tasks see only
  // public-typed trimmed packages and the thread-safe StorageClient.
  store::FileRecipe recipe;
  recipe.file_id = sid;
  recipe.file_size = data.size();
  recipe.scheme = static_cast<std::uint8_t>(options_.scheme);
  recipe.stub_size = static_cast<std::uint32_t>(options_.stub_size);
  recipe.fingerprints.reserve(refs.size());
  recipe.chunk_sizes.reserve(refs.size());
  Secret stub_data;
  stub_data.Reserve(refs.size() * options_.stub_size);

  UploadResult result;
  result.logical_bytes = data.size();
  result.chunk_count = refs.size();

  const std::size_t depth = std::max<std::size_t>(1, options_.pipeline.depth);
  // std::async futures join in their destructor, so an exception on the
  // producer side drains in-flight transfers before unwinding; each future's
  // paired GaugeGuard drops the inflight gauge on that same unwind.
  std::deque<std::pair<std::future<StorageClient::PutStats>, obs::GaugeGuard>>
      inflight;
  auto harvest = [&] {
    schedfuzz::Perturb("client.upload.harvest");
    std::future<StorageClient::PutStats> done =
        std::move(inflight.front().first);
    obs::GaugeGuard guard = std::move(inflight.front().second);
    inflight.pop_front();
    // get() rethrows a consumer-task failure; `guard` still releases.
    StorageClient::PutStats stats = done.get();
    result.duplicate_chunks += stats.duplicates;
    result.stored_chunks += stats.stored;
    result.stored_bytes += stats.stored_bytes;
  };

  std::size_t start = 0;
  while (start < refs.size()) {
    // Batch boundary by plaintext bytes; always at least one chunk so a
    // zero/tiny upload_batch_bytes still terminates.
    std::size_t end = start;
    std::size_t batch_bytes = 0;
    do {
      batch_bytes += refs[end].length;
      ++end;
    } while (end < refs.size() && batch_bytes < options_.upload_batch_bytes);
    const std::size_t n = end - start;

    // Server-aided MLE key generation for this batch (batched OPRF + cache).
    obs::ScopedTimer keygen_timer(*m.keygen_us);
    std::vector<chunk::Fingerprint> batch_fps(chunk_fps.begin() + start,
                                              chunk_fps.begin() + end);
    std::vector<Secret> mle_keys = keys_->GetKeys(batch_fps, rng_);
    (void)keygen_timer.Stop();
    schedfuzz::Perturb("client.upload.keygen");

    // CAONT encode, with the trimmed-package fingerprint folded into the
    // same parallel worker that produced the package (no second serial
    // SHA-256 pass).
    REED_FAULT_POINT("client.upload.encode");
    obs::ScopedTimer encode_timer(*m.encode_us);
    std::vector<aont::SealedChunk> sealed(n);
    std::vector<chunk::Fingerprint> package_fps(n);
    pool_.ParallelFor(n, [&](std::size_t i) {
      const auto& ref = refs[start + i];
      sealed[i] =
          cipher_.Encrypt(data.subspan(ref.offset, ref.length), mle_keys[i]);
      package_fps[i] = chunk::Fingerprint::Of(sealed[i].trimmed_package);
    });
    (void)encode_timer.Stop();
    schedfuzz::Perturb("client.upload.encode");

    // In-order assembly (Secret::Append is sequential by design).
    std::vector<std::pair<chunk::Fingerprint, Bytes>> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      recipe.fingerprints.push_back(package_fps[i]);
      recipe.chunk_sizes.push_back(
          static_cast<std::uint32_t>(refs[start + i].length));
      stub_data.Append(sealed[i].stub);
      batch.emplace_back(package_fps[i], std::move(sealed[i].trimmed_package));
    }

    if (depth <= 1) {
      REED_FAULT_POINT("client.upload.store");
      obs::ScopedTimer store_timer(*m.store_us);
      StorageClient::PutStats stats = storage_->PutChunks(batch);
      (void)store_timer.Stop();
      result.duplicate_chunks += stats.duplicates;
      result.stored_chunks += stats.stored;
      result.stored_bytes += stats.stored_bytes;
    } else {
      while (inflight.size() >= depth - 1) harvest();
      obs::GaugeGuard guard(*m.pipeline_inflight);
      inflight.emplace_back(
          std::async(std::launch::async,
                     [storage = storage_, &m,
                      moved = std::move(batch)]() -> StorageClient::PutStats {
                       // Fires on the consumer thread; surfaces at harvest()
                       // via the future (pipelined sweep coverage).
                       REED_FAULT_POINT("client.upload.store");
                       schedfuzz::Perturb("client.upload.store");
                       obs::ScopedTimer store_timer(*m.store_us);
                       return storage->PutChunks(moved);
                     }),
          std::move(guard));
    }
    start = end;
  }

  // 5-6. File key from a fresh key state (version 0), wrapped under the
  // file policy — produced while the tail batches are still on the wire.
  obs::ScopedTimer wrap_timer(*m.wrap_us);
  rsa::KeyState state = regression_owner_.GenesisState(rng_);
  Secret file_key = state.DeriveFileKey();
  Secret stub_blob = aont::EncryptStubFile(stub_data, file_key, rng_);
  std::vector<std::string> users = authorized_users;
  if (std::find(users.begin(), users.end(), user_id_) == users.end()) {
    users.push_back(user_id_);
  }
  abe::PolicyNode policy = abe::PolicyNode::OrOfUsers(users);
  store::KeyStateRecord record;
  record.owner_id = user_id_;
  record.key_version = state.version;
  record.stub_key_version = state.version;
  policy.SerializeTo(record.policy);
  record.wrapped_state = PublicKeyStateEnvelope(abe_->EncryptBytes(
      abe_pk_, policy, state.Serialize(regression_owner_.public_key()), rng_));
  record.derivation_public_key =
      rsa::SerializePublicKey(regression_owner_.public_key());
  (void)wrap_timer.Stop();

  // 7. Drain the pipeline, then publish metadata (recipe must not become
  // visible before every package it references is stored).
  while (!inflight.empty()) harvest();
  obs::ScopedTimer metadata_timer(*m.metadata_us);
  storage_->PutObject(server::StoreId::kData, RecipeName(sid),
                      recipe.Serialize());
  storage_->PutObject(server::StoreId::kData, StubName(sid),
                      PublicStubCiphertext(stub_blob));
  storage_->PutObject(server::StoreId::kKey, StateName(sid),
                      record.Serialize());
  (void)metadata_timer.Stop();
  result.stub_bytes = stub_blob.size();
  m.upload_files->Increment();
  m.upload_bytes->Add(result.logical_bytes);
  m.upload_chunks->Add(result.chunk_count);
  m.upload_duplicates->Add(result.duplicate_chunks);
  return result;
}

store::KeyStateRecord ReedClient::FetchKeyStateRecord(
    const std::string& storage_id) {
  return store::KeyStateRecord::Deserialize(
      storage_->GetObject(server::StoreId::kKey, StateName(storage_id)));
}

rsa::KeyState ReedClient::UnwrapKeyState(const store::KeyStateRecord& record) {
  Secret state_blob;
  if (record.group_wrap_id.empty()) {
    state_blob = abe_->DecryptBytes(access_key_, record.wrapped_state);
  } else {
    // Group-wrapped: CP-ABE protects the group wrap key; the state itself
    // is wrapped symmetrically under it.
    Secret wrap_key = abe_->DecryptBytes(
        access_key_,
        storage_->GetObject(server::StoreId::kKey, record.group_wrap_id));
    state_blob = aont::UnwrapKeyBlob(record.wrapped_state, wrap_key);
  }
  rsa::RsaPublicKey derivation_key =
      rsa::DeserializePublicKey(record.derivation_public_key);
  return rsa::KeyState::Deserialize(state_blob, derivation_key);
}

Bytes ReedClient::Download(const std::string& file_id) {
  const std::string sid = StorageId(file_id);
  // Resolve the stage metrics once — not per fetch batch inside the loop
  // below, where the repeated function-local-static checks were pure
  // overhead on the hot path.
  StageMetrics& m = Metrics();
  // 1. Key state: CP-ABE decrypt, then unwind to the version the stub file
  //    is encrypted under (lazy revocation leaves it at an older version).
  obs::ScopedTimer unwrap_timer(*m.unwrap_us);
  store::KeyStateRecord record = FetchKeyStateRecord(sid);
  rsa::KeyState current = UnwrapKeyState(record);
  rsa::KeyRegressionMember member(
      rsa::DeserializePublicKey(record.derivation_public_key));
  rsa::KeyState stub_state = member.UnwindTo(current, record.stub_key_version);
  Secret file_key = stub_state.DeriveFileKey();
  (void)unwrap_timer.Stop();

  // 2. Recipe and stub file.
  obs::ScopedTimer recipe_timer(*m.recipe_us);
  store::FileRecipe recipe = store::FileRecipe::Deserialize(
      storage_->GetObject(server::StoreId::kData, RecipeName(sid)));
  Secret stub_data = aont::DecryptStubFile(
      storage_->GetObject(server::StoreId::kData, StubName(sid)), file_key);
  if (stub_data.size() != recipe.chunk_count() * recipe.stub_size) {
    throw Error("ReedClient::Download: stub file size mismatch");
  }
  (void)recipe_timer.Stop();

  // 3. Fetch trimmed packages in batches and revert chunks in parallel.
  aont::ReedCipher cipher(static_cast<aont::Scheme>(recipe.scheme),
                          recipe.stub_size);
  Bytes file;
  file.reserve(recipe.file_size);
  std::vector<std::size_t> chunk_offsets(recipe.chunk_count());
  {
    std::size_t off = 0;
    for (std::size_t i = 0; i < recipe.chunk_count(); ++i) {
      chunk_offsets[i] = off;
      off += recipe.chunk_sizes[i];
    }
    file.resize(off);
  }
  if (file.size() != recipe.file_size) {
    throw Error("ReedClient::Download: recipe size mismatch");
  }

  // Fetches one batch of trimmed packages; runs on this thread (serial
  // mode / first batch) or on a prefetch task overlapping the previous
  // batch's decode. fetch_us measures only time spent inside GetChunks, so
  // overlapped prefetch wall time is not double-counted against decode_us.
  auto fetch_batch = [&](std::size_t start, std::size_t end) {
    // Runs on this thread (serial) or the prefetch task (pipelined): the
    // same site covers both propagation paths.
    REED_FAULT_POINT("client.download.fetch");
    std::vector<chunk::Fingerprint> fps(recipe.fingerprints.begin() + start,
                                        recipe.fingerprints.begin() + end);
    obs::ScopedTimer fetch_timer(*m.fetch_us);
    std::vector<Bytes> packages = storage_->GetChunks(fps);
    (void)fetch_timer.Stop();
    std::uint64_t bytes = 0;
    for (const Bytes& p : packages) bytes += p.size();
    m.fetch_bytes->Add(bytes);
    return packages;
  };

  constexpr std::size_t kFetchBatch = 512;
  const std::size_t total = recipe.chunk_count();
  const bool prefetch = options_.pipeline.depth >= 2;
  // Joined in its destructor (std::async), so a decode exception cannot
  // leave a task referencing this frame behind. `next_guard` is declared
  // after `next`, so on unwind the gauge drops before the future joins.
  std::future<std::vector<Bytes>> next;
  std::optional<obs::GaugeGuard> next_guard;
  for (std::size_t start = 0; start < total; start += kFetchBatch) {
    std::size_t end = std::min(total, start + kFetchBatch);
    std::vector<Bytes> packages;
    if (next.valid()) {
      schedfuzz::Perturb("client.download.fetch_join");
      // get() rethrows a prefetch failure; the guard member then releases
      // on unwind rather than here.
      packages = next.get();
      next_guard.reset();
    } else {
      packages = fetch_batch(start, end);
    }
    if (prefetch && end < total) {
      std::size_t pstart = end;
      std::size_t pend = std::min(total, end + kFetchBatch);
      next_guard.emplace(*m.pipeline_inflight);
      next = std::async(std::launch::async,
                        [&fetch_batch, pstart, pend] {
                          return fetch_batch(pstart, pend);
                        });
    }
    schedfuzz::Perturb("client.download.decode");
    REED_FAULT_POINT("client.download.decode");
    obs::ScopedTimer decode_timer(*m.decode_us);
    pool_.ParallelFor(end - start, [&](std::size_t i) {
      std::size_t idx = start + i;
      Secret stub = stub_data.Slice(idx * recipe.stub_size, recipe.stub_size);
      Bytes plain = cipher.Decrypt(packages[i], stub);
      if (plain.size() != recipe.chunk_sizes[idx]) {
        throw Error("ReedClient::Download: chunk size mismatch");
      }
      std::copy(plain.begin(), plain.end(), file.begin() + chunk_offsets[idx]);
    });
    (void)decode_timer.Stop();
  }
  m.download_files->Increment();
  m.download_bytes->Add(file.size());
  return file;
}

RekeyResult ReedClient::Rekey(const std::string& file_id,
                              const std::vector<std::string>& authorized_users,
                              RevocationMode mode) {
  const std::string sid = StorageId(file_id);
  // 1. Retrieve and unwrap the current key state (requires authorization).
  store::KeyStateRecord record = FetchKeyStateRecord(sid);
  if (record.owner_id != user_id_) {
    throw Error("ReedClient::Rekey: only the owner may rekey (owner is " +
                record.owner_id + ")");
  }
  rsa::KeyState current = UnwrapKeyState(record);

  // 2. Wind the state forward with the private derivation key.
  rsa::KeyState next = regression_owner_.Wind(current);

  // 3. Re-wrap under the new policy.
  std::vector<std::string> users = authorized_users;
  if (std::find(users.begin(), users.end(), user_id_) == users.end()) {
    users.push_back(user_id_);
  }
  abe::PolicyNode policy = abe::PolicyNode::OrOfUsers(users);
  record.key_version = next.version;
  record.policy.clear();
  policy.SerializeTo(record.policy);
  record.group_wrap_id.clear();  // individual rekey always wraps directly
  record.wrapped_state = PublicKeyStateEnvelope(abe_->EncryptBytes(
      abe_pk_, policy, next.Serialize(regression_owner_.public_key()), rng_));

  RekeyResult result;
  result.new_version = next.version;

  // 4. Active revocation: immediately re-encrypt the stub file under the
  //    new file key (the trimmed packages never move — §IV-A).
  if (mode == RevocationMode::kActive) {
    rsa::KeyRegressionMember member(regression_owner_.public_key());
    rsa::KeyState stub_state =
        member.UnwindTo(current, record.stub_key_version);
    Secret stub_data = aont::DecryptStubFile(
        storage_->GetObject(server::StoreId::kData, StubName(sid)),
        stub_state.DeriveFileKey());
    Secret new_blob =
        aont::EncryptStubFile(stub_data, next.DeriveFileKey(), rng_);
    storage_->PutObject(server::StoreId::kData, StubName(sid),
                        PublicStubCiphertext(new_blob));
    record.stub_key_version = next.version;
    result.stub_reencrypted = true;
    result.stub_bytes = new_blob.size();
  }

  storage_->PutObject(server::StoreId::kKey, StateName(sid),
                      record.Serialize());
  return result;
}

std::vector<RekeyResult> ReedClient::RekeyGroup(
    const std::vector<std::string>& file_ids,
    const std::vector<std::string>& authorized_users, RevocationMode mode) {
  if (file_ids.empty()) throw Error("ReedClient::RekeyGroup: empty group");

  std::vector<std::string> users = authorized_users;
  if (std::find(users.begin(), users.end(), user_id_) == users.end()) {
    users.push_back(user_id_);
  }
  abe::PolicyNode policy = abe::PolicyNode::OrOfUsers(users);

  // One CP-ABE encryption for the whole group: a fresh wrap key.
  Secret wrap_key = rng_.GenerateSecret(32);
  std::string wrap_id = "groupwrap/" + HexEncode(rng_.Generate(16));
  storage_->PutObject(server::StoreId::kKey, wrap_id,
                      PublicKeyStateEnvelope(abe_->EncryptBytes(
                          abe_pk_, policy, wrap_key, rng_)));

  rsa::KeyRegressionOwner& owner = regression_owner_;
  std::vector<RekeyResult> results;
  results.reserve(file_ids.size());
  for (const std::string& file_id : file_ids) {
    const std::string sid = StorageId(file_id);
    store::KeyStateRecord record = FetchKeyStateRecord(sid);
    if (record.owner_id != user_id_) {
      throw Error("ReedClient::RekeyGroup: only the owner may rekey " + file_id);
    }
    rsa::KeyState current = UnwrapKeyState(record);
    rsa::KeyState next = owner.Wind(current);

    record.key_version = next.version;
    record.policy.clear();
    policy.SerializeTo(record.policy);
    record.group_wrap_id = wrap_id;
    record.wrapped_state = PublicKeyStateEnvelope(
        aont::WrapKeyBlob(next.Serialize(owner.public_key()), wrap_key, rng_));

    RekeyResult result;
    result.new_version = next.version;
    if (mode == RevocationMode::kActive) {
      rsa::KeyRegressionMember member(owner.public_key());
      rsa::KeyState stub_state =
          member.UnwindTo(current, record.stub_key_version);
      Secret stub_data = aont::DecryptStubFile(
          storage_->GetObject(server::StoreId::kData, StubName(sid)),
          stub_state.DeriveFileKey());
      Secret new_blob =
          aont::EncryptStubFile(stub_data, next.DeriveFileKey(), rng_);
      storage_->PutObject(server::StoreId::kData, StubName(sid),
                          PublicStubCiphertext(new_blob));
      record.stub_key_version = next.version;
      result.stub_reencrypted = true;
      result.stub_bytes = new_blob.size();
    }
    storage_->PutObject(server::StoreId::kKey, StateName(sid),
                        record.Serialize());
    results.push_back(result);
  }
  return results;
}

}  // namespace reed::client
