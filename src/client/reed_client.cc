#include "client/reed_client.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "obs/metrics.h"

namespace reed::client {

namespace {

// Pipeline stage tracing (DESIGN.md §9): one histogram per upload/download
// stage, matching the cost attribution in the paper's Figs. 5-7. Timings are
// recorded per file operation (or per fetch batch), never per chunk, and the
// metric pointers are resolved once per process — nothing here allocates on
// the data path. Only durations and byte counts are recorded; all Secret
// material stays inside the stages.
struct StageMetrics {
  obs::Histogram* chunking_us;
  obs::Histogram* fingerprint_us;
  obs::Histogram* keygen_us;
  obs::Histogram* encode_us;
  obs::Histogram* wrap_us;
  obs::Histogram* store_us;
  obs::Histogram* metadata_us;
  obs::Counter* upload_files;
  obs::Counter* upload_bytes;
  obs::Counter* upload_chunks;
  obs::Counter* upload_duplicates;
  obs::Histogram* unwrap_us;
  obs::Histogram* recipe_us;
  obs::Histogram* fetch_us;
  obs::Histogram* decode_us;
  obs::Counter* download_files;
  obs::Counter* download_bytes;
};

StageMetrics& Metrics() {
  auto& reg = obs::Registry::Global();
  static StageMetrics m{
      &reg.GetHistogram("client.upload.chunking_us"),
      &reg.GetHistogram("client.upload.fingerprint_us"),
      &reg.GetHistogram("client.upload.keygen_us"),
      &reg.GetHistogram("client.upload.encode_us"),
      &reg.GetHistogram("client.upload.wrap_us"),
      &reg.GetHistogram("client.upload.store_us"),
      &reg.GetHistogram("client.upload.metadata_us"),
      &reg.GetCounter("client.upload.files"),
      &reg.GetCounter("client.upload.logical_bytes"),
      &reg.GetCounter("client.upload.chunks"),
      &reg.GetCounter("client.upload.duplicate_chunks"),
      &reg.GetHistogram("client.download.unwrap_us"),
      &reg.GetHistogram("client.download.recipe_us"),
      &reg.GetHistogram("client.download.fetch_us"),
      &reg.GetHistogram("client.download.decode_us"),
      &reg.GetCounter("client.download.files"),
      &reg.GetCounter("client.download.bytes")};
  return m;
}

crypto::ChaChaRng MakeClientRng(std::uint64_t seed) {
  if (seed == 0) {
    Bytes s = crypto::SecureRandom::Generate(32);
    return crypto::ChaChaRng(s);
  }
  return crypto::DeterministicRng(seed);
}

std::string RecipeName(const std::string& file_id) { return "recipe/" + file_id; }
std::string StubName(const std::string& file_id) { return "stub/" + file_id; }
std::string StateName(const std::string& file_id) { return "keystate/" + file_id; }

// The only two sanctioned secret -> public crossings in the tree
// (DESIGN.md §8). Ciphertext produced by the aont/abe layers stays
// Secret-typed until the uploader makes the policy call that it is safe on
// the wire; these helpers are that call, one per crossing.

// Crossing 1: the stub file, AES-CTR + HMAC ciphertext under the renewable
// file key (paper §IV-A — re-encrypting this blob is the whole cost of
// active revocation).
Bytes PublicStubCiphertext(const Secret& sealed_stub_file) {
  return Declassify(sealed_stub_file,
                    "AES-CTR+HMAC ciphertext under the file key; "
                    "stub-file upload (crossing 1 of 2)");
}

// Crossing 2: the key-state envelope — CP-ABE under the file policy, or the
// symmetric wrap-key blob whose key is itself CP-ABE-protected (§IV-C).
Bytes PublicKeyStateEnvelope(const Secret& wrapped) {
  return Declassify(wrapped,
                    "CP-ABE / wrap-key envelope over the key state; "
                    "key-store upload (crossing 2 of 2)");
}

}  // namespace

ReedClient::ReedClient(std::string user_id, ClientOptions options,
                       std::shared_ptr<StorageClient> storage,
                       std::shared_ptr<keymanager::MleKeyClient> keys,
                       std::shared_ptr<const abe::CpAbe> abe,
                       abe::PublicKey abe_pk, abe::PrivateKey access_key,
                       rsa::RsaKeyPair derivation_keys)
    : user_id_(std::move(user_id)),
      options_(options),
      storage_(std::move(storage)),
      keys_(std::move(keys)),
      abe_(std::move(abe)),
      abe_pk_(std::move(abe_pk)),
      access_key_(std::move(access_key)),
      regression_owner_(std::move(derivation_keys)),
      cipher_(options.scheme, options.stub_size),
      pool_(options.encryption_threads),
      rng_(MakeClientRng(options.rng_seed)) {
  if (!storage_ || !keys_ || !abe_) {
    throw Error("ReedClient: missing dependency");
  }
}

std::string ReedClient::StorageId(const std::string& file_id) const {
  if (options_.file_id_salt.empty()) return file_id;
  return store::ObfuscateFileId(file_id, options_.file_id_salt);
}

std::vector<chunk::ChunkRef> ReedClient::ChunkData(ByteSpan data) {
  if (options_.avg_chunk_size == 0) {
    chunk::FixedSizeChunker chunker(options_.fixed_chunk_size);
    return chunker.Split(data);
  }
  chunk::RabinChunker chunker(chunk::PaperChunking(options_.avg_chunk_size));
  return chunker.Split(data);
}

std::vector<aont::SealedChunk> ReedClient::EncryptChunks(
    ByteSpan data, const std::vector<chunk::ChunkRef>& refs,
    const std::vector<Secret>& mle_keys) {
  if (refs.size() != mle_keys.size()) {
    throw Error("ReedClient: chunk/key count mismatch");
  }
  std::vector<aont::SealedChunk> sealed(refs.size());
  pool_.ParallelFor(refs.size(), [&](std::size_t i) {
    sealed[i] = cipher_.Encrypt(data.subspan(refs[i].offset, refs[i].length),
                                mle_keys[i]);
  });
  return sealed;
}

UploadResult ReedClient::Upload(const std::string& file_id, ByteSpan data,
                                const std::vector<std::string>& authorized_users) {
  if (data.empty()) throw Error("ReedClient::Upload: empty file");
  // 1. Chunking, then the shared pipeline.
  obs::ScopedTimer chunk_timer(*Metrics().chunking_us);
  std::vector<chunk::ChunkRef> refs = ChunkData(data);
  (void)chunk_timer.Stop();
  return UploadChunked(file_id, data, refs, authorized_users);
}

UploadResult ReedClient::UploadChunked(
    const std::string& file_id, ByteSpan data,
    const std::vector<chunk::ChunkRef>& refs,
    const std::vector<std::string>& authorized_users) {
  if (refs.empty()) throw Error("ReedClient::Upload: no chunks");
  const std::string sid = StorageId(file_id);

  // 2. Server-aided MLE key generation (batched OPRF + key cache).
  obs::ScopedTimer fp_timer(*Metrics().fingerprint_us);
  std::vector<chunk::Fingerprint> chunk_fps;
  chunk_fps.reserve(refs.size());
  for (const auto& ref : refs) {
    chunk_fps.push_back(
        chunk::Fingerprint::Of(data.subspan(ref.offset, ref.length)));
  }
  (void)fp_timer.Stop();
  obs::ScopedTimer keygen_timer(*Metrics().keygen_us);
  std::vector<Secret> mle_keys = keys_->GetKeys(chunk_fps, rng_);
  (void)keygen_timer.Stop();

  // 3. REED encryption (multi-threaded).
  obs::ScopedTimer encode_timer(*Metrics().encode_us);
  std::vector<aont::SealedChunk> sealed = EncryptChunks(data, refs, mle_keys);
  (void)encode_timer.Stop();

  // 4. Recipe + stub file assembly.
  obs::ScopedTimer wrap_timer(*Metrics().wrap_us);
  store::FileRecipe recipe;
  recipe.file_id = sid;
  recipe.file_size = data.size();
  recipe.scheme = static_cast<std::uint8_t>(options_.scheme);
  recipe.stub_size = static_cast<std::uint32_t>(options_.stub_size);
  Secret stub_data;
  stub_data.Reserve(refs.size() * options_.stub_size);
  std::vector<std::pair<chunk::Fingerprint, Bytes>> packages;
  packages.reserve(refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    recipe.fingerprints.push_back(
        chunk::Fingerprint::Of(sealed[i].trimmed_package));
    recipe.chunk_sizes.push_back(static_cast<std::uint32_t>(refs[i].length));
    stub_data.Append(sealed[i].stub);
    packages.emplace_back(recipe.fingerprints.back(),
                          std::move(sealed[i].trimmed_package));
  }

  // 5. File key from a fresh key state (version 0).
  rsa::KeyState state = regression_owner_.GenesisState(rng_);
  Secret file_key = state.DeriveFileKey();
  Secret stub_blob = aont::EncryptStubFile(stub_data, file_key, rng_);

  // 6. Wrap the key state under the file policy.
  std::vector<std::string> users = authorized_users;
  if (std::find(users.begin(), users.end(), user_id_) == users.end()) {
    users.push_back(user_id_);
  }
  abe::PolicyNode policy = abe::PolicyNode::OrOfUsers(users);
  store::KeyStateRecord record;
  record.owner_id = user_id_;
  record.key_version = state.version;
  record.stub_key_version = state.version;
  policy.SerializeTo(record.policy);
  record.wrapped_state = PublicKeyStateEnvelope(abe_->EncryptBytes(
      abe_pk_, policy, state.Serialize(regression_owner_.public_key()), rng_));
  record.derivation_public_key =
      rsa::SerializePublicKey(regression_owner_.public_key());
  (void)wrap_timer.Stop();

  // 7. Upload everything: trimmed packages in ~4 MB batches, then metadata.
  obs::ScopedTimer store_timer(*Metrics().store_us);
  UploadResult result;
  result.logical_bytes = data.size();
  result.chunk_count = refs.size();
  std::size_t start = 0;
  while (start < packages.size()) {
    std::size_t end = start;
    std::size_t batch_bytes = 0;
    while (end < packages.size() && batch_bytes < options_.upload_batch_bytes) {
      batch_bytes += packages[end].second.size();
      ++end;
    }
    std::vector<std::pair<chunk::Fingerprint, Bytes>> batch(
        std::make_move_iterator(packages.begin() + start),
        std::make_move_iterator(packages.begin() + end));
    StorageClient::PutStats stats = storage_->PutChunks(batch);
    result.duplicate_chunks += stats.duplicates;
    result.stored_chunks += stats.stored;
    result.stored_bytes += stats.stored_bytes;
    start = end;
  }
  (void)store_timer.Stop();
  obs::ScopedTimer metadata_timer(*Metrics().metadata_us);
  storage_->PutObject(server::StoreId::kData, RecipeName(sid),
                      recipe.Serialize());
  storage_->PutObject(server::StoreId::kData, StubName(sid),
                      PublicStubCiphertext(stub_blob));
  storage_->PutObject(server::StoreId::kKey, StateName(sid),
                      record.Serialize());
  (void)metadata_timer.Stop();
  result.stub_bytes = stub_blob.size();
  Metrics().upload_files->Increment();
  Metrics().upload_bytes->Add(result.logical_bytes);
  Metrics().upload_chunks->Add(result.chunk_count);
  Metrics().upload_duplicates->Add(result.duplicate_chunks);
  return result;
}

store::KeyStateRecord ReedClient::FetchKeyStateRecord(
    const std::string& storage_id) {
  return store::KeyStateRecord::Deserialize(
      storage_->GetObject(server::StoreId::kKey, StateName(storage_id)));
}

rsa::KeyState ReedClient::UnwrapKeyState(const store::KeyStateRecord& record) {
  Secret state_blob;
  if (record.group_wrap_id.empty()) {
    state_blob = abe_->DecryptBytes(access_key_, record.wrapped_state);
  } else {
    // Group-wrapped: CP-ABE protects the group wrap key; the state itself
    // is wrapped symmetrically under it.
    Secret wrap_key = abe_->DecryptBytes(
        access_key_,
        storage_->GetObject(server::StoreId::kKey, record.group_wrap_id));
    state_blob = aont::UnwrapKeyBlob(record.wrapped_state, wrap_key);
  }
  rsa::RsaPublicKey derivation_key =
      rsa::DeserializePublicKey(record.derivation_public_key);
  return rsa::KeyState::Deserialize(state_blob, derivation_key);
}

Bytes ReedClient::Download(const std::string& file_id) {
  const std::string sid = StorageId(file_id);
  // 1. Key state: CP-ABE decrypt, then unwind to the version the stub file
  //    is encrypted under (lazy revocation leaves it at an older version).
  obs::ScopedTimer unwrap_timer(*Metrics().unwrap_us);
  store::KeyStateRecord record = FetchKeyStateRecord(sid);
  rsa::KeyState current = UnwrapKeyState(record);
  rsa::KeyRegressionMember member(
      rsa::DeserializePublicKey(record.derivation_public_key));
  rsa::KeyState stub_state = member.UnwindTo(current, record.stub_key_version);
  Secret file_key = stub_state.DeriveFileKey();
  (void)unwrap_timer.Stop();

  // 2. Recipe and stub file.
  obs::ScopedTimer recipe_timer(*Metrics().recipe_us);
  store::FileRecipe recipe = store::FileRecipe::Deserialize(
      storage_->GetObject(server::StoreId::kData, RecipeName(sid)));
  Secret stub_data = aont::DecryptStubFile(
      storage_->GetObject(server::StoreId::kData, StubName(sid)), file_key);
  if (stub_data.size() != recipe.chunk_count() * recipe.stub_size) {
    throw Error("ReedClient::Download: stub file size mismatch");
  }
  (void)recipe_timer.Stop();

  // 3. Fetch trimmed packages in batches and revert chunks in parallel.
  aont::ReedCipher cipher(static_cast<aont::Scheme>(recipe.scheme),
                          recipe.stub_size);
  Bytes file;
  file.reserve(recipe.file_size);
  std::vector<std::size_t> chunk_offsets(recipe.chunk_count());
  {
    std::size_t off = 0;
    for (std::size_t i = 0; i < recipe.chunk_count(); ++i) {
      chunk_offsets[i] = off;
      off += recipe.chunk_sizes[i];
    }
    file.resize(off);
  }
  if (file.size() != recipe.file_size) {
    throw Error("ReedClient::Download: recipe size mismatch");
  }

  constexpr std::size_t kFetchBatch = 512;
  for (std::size_t start = 0; start < recipe.chunk_count();
       start += kFetchBatch) {
    std::size_t end = std::min(recipe.chunk_count(), start + kFetchBatch);
    std::vector<chunk::Fingerprint> fps(recipe.fingerprints.begin() + start,
                                        recipe.fingerprints.begin() + end);
    obs::ScopedTimer fetch_timer(*Metrics().fetch_us);
    std::vector<Bytes> packages = storage_->GetChunks(fps);
    (void)fetch_timer.Stop();
    obs::ScopedTimer decode_timer(*Metrics().decode_us);
    pool_.ParallelFor(end - start, [&](std::size_t i) {
      std::size_t idx = start + i;
      Secret stub = stub_data.Slice(idx * recipe.stub_size, recipe.stub_size);
      Bytes plain = cipher.Decrypt(packages[i], stub);
      if (plain.size() != recipe.chunk_sizes[idx]) {
        throw Error("ReedClient::Download: chunk size mismatch");
      }
      std::copy(plain.begin(), plain.end(), file.begin() + chunk_offsets[idx]);
    });
    (void)decode_timer.Stop();
  }
  Metrics().download_files->Increment();
  Metrics().download_bytes->Add(file.size());
  return file;
}

RekeyResult ReedClient::Rekey(const std::string& file_id,
                              const std::vector<std::string>& authorized_users,
                              RevocationMode mode) {
  const std::string sid = StorageId(file_id);
  // 1. Retrieve and unwrap the current key state (requires authorization).
  store::KeyStateRecord record = FetchKeyStateRecord(sid);
  if (record.owner_id != user_id_) {
    throw Error("ReedClient::Rekey: only the owner may rekey (owner is " +
                record.owner_id + ")");
  }
  rsa::KeyState current = UnwrapKeyState(record);

  // 2. Wind the state forward with the private derivation key.
  rsa::KeyState next = regression_owner_.Wind(current);

  // 3. Re-wrap under the new policy.
  std::vector<std::string> users = authorized_users;
  if (std::find(users.begin(), users.end(), user_id_) == users.end()) {
    users.push_back(user_id_);
  }
  abe::PolicyNode policy = abe::PolicyNode::OrOfUsers(users);
  record.key_version = next.version;
  record.policy.clear();
  policy.SerializeTo(record.policy);
  record.group_wrap_id.clear();  // individual rekey always wraps directly
  record.wrapped_state = PublicKeyStateEnvelope(abe_->EncryptBytes(
      abe_pk_, policy, next.Serialize(regression_owner_.public_key()), rng_));

  RekeyResult result;
  result.new_version = next.version;

  // 4. Active revocation: immediately re-encrypt the stub file under the
  //    new file key (the trimmed packages never move — §IV-A).
  if (mode == RevocationMode::kActive) {
    rsa::KeyRegressionMember member(regression_owner_.public_key());
    rsa::KeyState stub_state =
        member.UnwindTo(current, record.stub_key_version);
    Secret stub_data = aont::DecryptStubFile(
        storage_->GetObject(server::StoreId::kData, StubName(sid)),
        stub_state.DeriveFileKey());
    Secret new_blob =
        aont::EncryptStubFile(stub_data, next.DeriveFileKey(), rng_);
    storage_->PutObject(server::StoreId::kData, StubName(sid),
                        PublicStubCiphertext(new_blob));
    record.stub_key_version = next.version;
    result.stub_reencrypted = true;
    result.stub_bytes = new_blob.size();
  }

  storage_->PutObject(server::StoreId::kKey, StateName(sid),
                      record.Serialize());
  return result;
}

std::vector<RekeyResult> ReedClient::RekeyGroup(
    const std::vector<std::string>& file_ids,
    const std::vector<std::string>& authorized_users, RevocationMode mode) {
  if (file_ids.empty()) throw Error("ReedClient::RekeyGroup: empty group");

  std::vector<std::string> users = authorized_users;
  if (std::find(users.begin(), users.end(), user_id_) == users.end()) {
    users.push_back(user_id_);
  }
  abe::PolicyNode policy = abe::PolicyNode::OrOfUsers(users);

  // One CP-ABE encryption for the whole group: a fresh wrap key.
  Secret wrap_key = rng_.GenerateSecret(32);
  std::string wrap_id = "groupwrap/" + HexEncode(rng_.Generate(16));
  storage_->PutObject(server::StoreId::kKey, wrap_id,
                      PublicKeyStateEnvelope(abe_->EncryptBytes(
                          abe_pk_, policy, wrap_key, rng_)));

  rsa::KeyRegressionOwner& owner = regression_owner_;
  std::vector<RekeyResult> results;
  results.reserve(file_ids.size());
  for (const std::string& file_id : file_ids) {
    const std::string sid = StorageId(file_id);
    store::KeyStateRecord record = FetchKeyStateRecord(sid);
    if (record.owner_id != user_id_) {
      throw Error("ReedClient::RekeyGroup: only the owner may rekey " + file_id);
    }
    rsa::KeyState current = UnwrapKeyState(record);
    rsa::KeyState next = owner.Wind(current);

    record.key_version = next.version;
    record.policy.clear();
    policy.SerializeTo(record.policy);
    record.group_wrap_id = wrap_id;
    record.wrapped_state = PublicKeyStateEnvelope(
        aont::WrapKeyBlob(next.Serialize(owner.public_key()), wrap_key, rng_));

    RekeyResult result;
    result.new_version = next.version;
    if (mode == RevocationMode::kActive) {
      rsa::KeyRegressionMember member(owner.public_key());
      rsa::KeyState stub_state =
          member.UnwindTo(current, record.stub_key_version);
      Secret stub_data = aont::DecryptStubFile(
          storage_->GetObject(server::StoreId::kData, StubName(sid)),
          stub_state.DeriveFileKey());
      Secret new_blob =
          aont::EncryptStubFile(stub_data, next.DeriveFileKey(), rng_);
      storage_->PutObject(server::StoreId::kData, StubName(sid),
                          PublicStubCiphertext(new_blob));
      record.stub_key_version = next.version;
      result.stub_reencrypted = true;
      result.stub_bytes = new_blob.size();
    }
    storage_->PutObject(server::StoreId::kKey, StateName(sid),
                        record.Serialize());
    results.push_back(result);
  }
  return results;
}

}  // namespace reed::client
