// The REED client (paper §III-A, §IV-D, §V "Client"): the software layer a
// user machine runs to upload, download, and rekey files.
//
// Upload pipeline:  chunk → per-batch OPRF MLE keygen (with key cache) →
// basic/enhanced CAONT encryption (multi-threaded, trimmed-package
// fingerprinting folded into the encode workers) → 4 MB-batched upload of
// trimmed packages, with encoding of batch i+1 overlapping batch i's wire
// transfer (PipelineOptions.depth) → recipe + encrypted stub file +
// CP-ABE-wrapped key state.
// Download pipeline: key state (CP-ABE decrypt + key-regression unwind) →
// recipe → chunks + stub file (next fetch batch prefetched while the pool
// decodes the current one) → CAONT revert → reassembly, aborting on any
// tampered chunk.
// Rekeying: wind the key state forward, re-wrap it under the new policy;
// active revocation additionally re-encrypts the stub file — never the
// trimmed packages.
#pragma once

#include <memory>
#include <string>

#include "abe/cpabe.h"
#include "aont/reed_cipher.h"
#include "chunk/chunker.h"
#include "client/storage_client.h"
#include "keymanager/mle_key_client.h"
#include "rsa/key_regression.h"
#include "store/recipe.h"
#include "util/thread_pool.h"

namespace reed::client {

// Overlapped data-path knobs (DESIGN.md §10). depth is the number of upload
// batches allowed in flight at once: the producer thread encodes batch i+1
// while up to depth-1 earlier batches are on the wire. depth = 1 reproduces
// the legacy serial path (encode and transfer strictly alternate). On
// download, depth >= 2 prefetches the next fetch batch while the pool
// decodes the current one.
struct PipelineOptions {
  std::size_t depth = 2;
  // Parallel RPC channels per data server (striped round-robin), so several
  // in-flight batches can target the same server concurrently. Consumed by
  // core::ReedSystem::CreateClient when it builds the StorageClient.
  std::size_t channels_per_server = 1;
};

struct ClientOptions {
  aont::Scheme scheme = aont::Scheme::kEnhanced;
  std::size_t stub_size = aont::kDefaultStubSize;
  // Variable-size (Rabin) chunking with this average; 0 selects fixed-size
  // chunking at `fixed_chunk_size`.
  std::size_t avg_chunk_size = 8 * 1024;
  std::size_t fixed_chunk_size = 8 * 1024;
  std::size_t encryption_threads = 2;  // paper §VI-A.2
  std::size_t upload_batch_bytes = 4u << 20;  // §V-B batching
  PipelineOptions pipeline;
  keymanager::MleKeyClient::Options key_options;
  // Non-empty: file identifiers are obfuscated with this salted hash before
  // they reach the cloud (paper §IV-D: "obfuscate sensitive metadata
  // information, such as the file pathname, by encoding it via a salted
  // hash"). All clients sharing files must use the same salt.
  Bytes file_id_salt;
  // 0 = seed the client RNG from the OS; tests pin a seed.
  std::uint64_t rng_seed = 0;
};

enum class RevocationMode { kLazy, kActive };

struct UploadResult {
  std::uint64_t logical_bytes = 0;
  std::size_t chunk_count = 0;
  std::size_t duplicate_chunks = 0;
  std::size_t stored_chunks = 0;
  std::uint64_t stored_bytes = 0;  // unique trimmed-package bytes
  std::uint64_t stub_bytes = 0;    // encrypted stub file size
};

struct RekeyResult {
  std::uint64_t new_version = 0;
  bool stub_reencrypted = false;
  std::uint64_t stub_bytes = 0;
};

class ReedClient {
 public:
  ReedClient(std::string user_id, ClientOptions options,
             std::shared_ptr<StorageClient> storage,
             std::shared_ptr<keymanager::MleKeyClient> keys,
             std::shared_ptr<const abe::CpAbe> abe, abe::PublicKey abe_pk,
             abe::PrivateKey access_key, rsa::RsaKeyPair derivation_keys);

  const std::string& user_id() const { return user_id_; }
  const ClientOptions& options() const { return options_; }
  keymanager::MleKeyClient& key_client() { return *keys_; }

  // Uploads `data` as `file_id`, readable by `authorized_users` (the file
  // policy is an OR over their identifiers; the uploader is always added).
  [[nodiscard]] UploadResult Upload(const std::string& file_id, ByteSpan data,
                      const std::vector<std::string>& authorized_users);

  // Upload with caller-supplied chunk boundaries. The trace-driven
  // experiment (§VI-B) reconstructs chunks from trace records and feeds
  // them directly past the chunking module.
  [[nodiscard]] UploadResult UploadChunked(const std::string& file_id, ByteSpan data,
                             const std::vector<chunk::ChunkRef>& refs,
                             const std::vector<std::string>& authorized_users);

  // Downloads and reassembles a file; throws if this user is not
  // authorized or any chunk fails its integrity check.
  [[nodiscard]] Bytes Download(const std::string& file_id);

  // Rekeys `file_id` with a new authorized-user set. Only the owner may
  // rekey. kActive also re-encrypts the stub file under the new file key.
  [[nodiscard]] RekeyResult Rekey(const std::string& file_id,
                    const std::vector<std::string>& authorized_users,
                    RevocationMode mode);

  // Group rekeying (paper §IV-D poses per-group rekeying as future work):
  // rekeys many files under one new policy with a SINGLE CP-ABE encryption.
  // A fresh group wrap key is CP-ABE-encrypted once; each file's wound key
  // state is then wrapped symmetrically under it. Cost: O(users) + O(files)
  // symmetric work, instead of O(users x files).
  [[nodiscard]] std::vector<RekeyResult> RekeyGroup(
      const std::vector<std::string>& file_ids,
      const std::vector<std::string>& authorized_users, RevocationMode mode);

  // Encryption-only path (no upload) — used by the Fig. 6 benchmark.
  [[nodiscard]] std::vector<aont::SealedChunk> EncryptChunks(
      ByteSpan data, const std::vector<chunk::ChunkRef>& refs,
      const std::vector<Secret>& mle_keys);

  // Chunking helper exposing the client's configured chunker.
  [[nodiscard]] std::vector<chunk::ChunkRef> ChunkData(ByteSpan data);

  // --- observable-state accessors (tests/model differential checker) ---
  // Not storage ops: tools/lint/model_lint.py requires every public
  // CamelCase method here to either appear in the model generator's op
  // table or carry a `model-observable` marker — a new client op cannot
  // ship unchecked.

  // The stored key-state record for `file_id` as the cloud holds it:
  // versions, owner, policy, envelope. Public metadata only (the wrapped
  // state stays sealed), diffed against the reference model after every op.
  [[nodiscard]] store::KeyStateRecord InspectKeyStateRecord(
      const std::string& file_id);  // model-observable

  // The unwrapped current key state (requires this user to satisfy the
  // record's policy). Security-oracle facility: a snapshot taken before a
  // rekey must fail to decrypt the re-encrypted stub file afterwards. Never
  // crosses the wire — the state stays in process, like Download's own use.
  [[nodiscard]] rsa::KeyState InspectKeyState(
      const std::string& file_id);  // model-observable

 private:
  // The identifier actually sent to the cloud (salted hash when
  // obfuscation is configured).
  std::string StorageId(const std::string& file_id) const;
  store::KeyStateRecord FetchKeyStateRecord(const std::string& storage_id);
  rsa::KeyState UnwrapKeyState(const store::KeyStateRecord& record);

  std::string user_id_;
  ClientOptions options_;
  std::shared_ptr<StorageClient> storage_;
  std::shared_ptr<keymanager::MleKeyClient> keys_;
  std::shared_ptr<const abe::CpAbe> abe_;
  abe::PublicKey abe_pk_;
  abe::PrivateKey access_key_;
  rsa::KeyRegressionOwner regression_owner_;
  aont::ReedCipher cipher_;
  ThreadPool pool_;
  crypto::ChaChaRng rng_;
};

}  // namespace reed::client
