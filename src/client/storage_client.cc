#include "client/storage_client.h"

namespace reed::client {

using server::Opcode;
using server::StoreId;

StorageClient::StorageClient(
    std::vector<std::shared_ptr<net::RpcChannel>> data_servers,
    std::shared_ptr<net::RpcChannel> key_server)
    : data_servers_(std::move(data_servers)), key_server_(std::move(key_server)) {
  if (data_servers_.empty()) {
    throw Error("StorageClient: need at least one data server");
  }
  if (!key_server_) throw Error("StorageClient: need a key server");
}

net::RpcChannel& StorageClient::ServerForFingerprint(
    const chunk::Fingerprint& fp) {
  return *data_servers_[fp.Short48() % data_servers_.size()];
}

net::RpcChannel& StorageClient::ServerForObject(StoreId store,
                                                const std::string& name) {
  if (store == StoreId::kKey) return *key_server_;
  std::size_t h = std::hash<std::string>{}(name);
  return *data_servers_[h % data_servers_.size()];
}

void StorageClient::CheckStatus(net::Reader& r) {
  std::uint8_t status = r.U8();
  if (status != 0) {
    throw Error("StorageClient: server error: " + r.Str());
  }
}

StorageClient::PutStats StorageClient::PutChunks(
    const std::vector<std::pair<chunk::Fingerprint, Bytes>>& chunks) {
  // Group into one request per target server.
  std::vector<net::Writer> writers(data_servers_.size());
  std::vector<std::uint32_t> counts(data_servers_.size(), 0);
  for (const auto& [fp, data] : chunks) {
    std::size_t target = fp.Short48() % data_servers_.size();
    writers[target].Raw(fp.AsSpan());
    writers[target].Blob(data);
    ++counts[target];
  }

  PutStats stats;
  for (std::size_t s = 0; s < data_servers_.size(); ++s) {
    if (counts[s] == 0) continue;
    net::Writer req;
    req.U8(static_cast<std::uint8_t>(Opcode::kPutChunks));
    req.U32(counts[s]);
    req.Raw(writers[s].bytes());
    Bytes response = data_servers_[s]->Call(req.Take());
    net::Reader r(response);
    CheckStatus(r);
    stats.duplicates += r.U32();
    stats.stored += r.U32();
    stats.stored_bytes += r.U64();
  }
  return stats;
}

std::vector<Bytes> StorageClient::GetChunks(
    const std::vector<chunk::Fingerprint>& fps) {
  // Build per-server requests while remembering each chunk's slot.
  std::vector<net::Writer> writers(data_servers_.size());
  std::vector<std::uint32_t> counts(data_servers_.size(), 0);
  std::vector<std::vector<std::size_t>> slots(data_servers_.size());
  for (std::size_t i = 0; i < fps.size(); ++i) {
    std::size_t target = fps[i].Short48() % data_servers_.size();
    writers[target].Raw(fps[i].AsSpan());
    ++counts[target];
    slots[target].push_back(i);
  }

  std::vector<Bytes> out(fps.size());
  for (std::size_t s = 0; s < data_servers_.size(); ++s) {
    if (counts[s] == 0) continue;
    net::Writer req;
    req.U8(static_cast<std::uint8_t>(Opcode::kGetChunks));
    req.U32(counts[s]);
    req.Raw(writers[s].bytes());
    Bytes response = data_servers_[s]->Call(req.Take());
    net::Reader r(response);
    CheckStatus(r);
    for (std::size_t slot : slots[s]) {
      out[slot] = r.Blob();
    }
    r.ExpectEnd();
  }
  return out;
}

void StorageClient::PutObject(StoreId store, const std::string& name,
                              ByteSpan value) {
  net::Writer req;
  req.U8(static_cast<std::uint8_t>(Opcode::kPutObject));
  req.U8(static_cast<std::uint8_t>(store));
  req.Str(name);
  req.Blob(value);
  Bytes response = ServerForObject(store, name).Call(req.Take());
  net::Reader r(response);
  CheckStatus(r);
}

Bytes StorageClient::GetObject(StoreId store, const std::string& name) {
  net::Writer req;
  req.U8(static_cast<std::uint8_t>(Opcode::kGetObject));
  req.U8(static_cast<std::uint8_t>(store));
  req.Str(name);
  Bytes response = ServerForObject(store, name).Call(req.Take());
  net::Reader r(response);
  CheckStatus(r);
  return r.Blob();
}

bool StorageClient::HasObject(StoreId store, const std::string& name) {
  net::Writer req;
  req.U8(static_cast<std::uint8_t>(Opcode::kHasObject));
  req.U8(static_cast<std::uint8_t>(store));
  req.Str(name);
  Bytes response = ServerForObject(store, name).Call(req.Take());
  net::Reader r(response);
  CheckStatus(r);
  return r.U8() != 0;
}

}  // namespace reed::client
