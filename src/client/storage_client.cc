#include "client/storage_client.h"

#include <algorithm>
#include <exception>
#include <future>
#include <numeric>

#include "obs/metrics.h"
#include "util/fault_inject.h"
#include "util/schedule_fuzz.h"

namespace reed::client {
namespace {

using server::Opcode;
using server::StoreId;

// Fan-out metrics (DESIGN.md §10): cached pointers so the per-RPC path is
// two atomic ops plus the call itself.
struct NetMetrics {
  obs::Counter* rpc_calls;
  obs::Gauge* inflight;
};

NetMetrics& Metrics() {
  auto& reg = obs::Registry::Global();
  static NetMetrics m{&reg.GetCounter("client.net.rpc_calls"),
                      &reg.GetGauge("client.net.inflight_rpcs")};
  return m;
}

std::size_t TotalChannels(
    const std::vector<std::vector<std::shared_ptr<net::RpcChannel>>>& servers) {
  std::size_t n = 0;
  for (const auto& stripes : servers) n += stripes.size();
  return n;
}

}  // namespace

StorageClient::StorageClient(
    std::vector<std::shared_ptr<net::RpcChannel>> data_servers,
    std::shared_ptr<net::RpcChannel> key_server, bool concurrent_fanout)
    : StorageClient(
          [&data_servers] {
            std::vector<std::vector<std::shared_ptr<net::RpcChannel>>> striped;
            striped.reserve(data_servers.size());
            for (auto& ch : data_servers) striped.push_back({std::move(ch)});
            return striped;
          }(),
          std::move(key_server), concurrent_fanout) {}

StorageClient::StorageClient(
    std::vector<std::vector<std::shared_ptr<net::RpcChannel>>> data_servers,
    std::shared_ptr<net::RpcChannel> key_server, bool concurrent_fanout)
    : data_servers_(std::move(data_servers)),
      key_server_(std::move(key_server)),
      concurrent_fanout_(concurrent_fanout),
      // One worker per channel lets every stripe of every server carry a
      // request at once; the cap only guards against pathological configs.
      pool_(std::min<std::size_t>(32, TotalChannels(data_servers_))) {
  if (data_servers_.empty()) {
    throw Error("StorageClient: need at least one data server");
  }
  for (const auto& stripes : data_servers_) {
    if (stripes.empty()) {
      throw Error("StorageClient: every data server needs at least one channel");
    }
    for (const auto& ch : stripes) {
      if (!ch) throw Error("StorageClient: null data-server channel");
    }
  }
  if (!key_server_) throw Error("StorageClient: need a key server");
}

Bytes StorageClient::CallChannel(net::RpcChannel& channel, ByteSpan request) {
  NetMetrics& m = Metrics();
  m.rpc_calls->Increment();
  // Before the guard: a firing models "the call was never made", so the
  // inflight gauge must not have been raised yet.
  REED_FAULT_POINT("client.rpc.call");
  obs::GaugeGuard inflight(*m.inflight);
  return channel.Call(request);
}

Bytes StorageClient::CallServer(std::size_t server, ByteSpan request) {
  auto& stripes = data_servers_[server];
  // Round-robin over the server's stripes; a single global counter is fine
  // because what matters is that concurrent batches land on different
  // channels, not which one each gets.
  std::size_t stripe =
      stripes.size() == 1
          ? 0
          : next_stripe_.fetch_add(1, std::memory_order_relaxed) % stripes.size();
  return CallChannel(*stripes[stripe], request);
}

std::size_t StorageClient::ServerIndexForObject(StoreId store,
                                                const std::string& name) const {
  (void)store;
  std::size_t h = std::hash<std::string>{}(name);
  return h % data_servers_.size();
}

void StorageClient::CheckStatus(net::Reader& r) {
  std::uint8_t status = r.U8();
  if (status != 0) {
    throw Error("StorageClient: server error: " + r.Str());
  }
}

template <typename F>
void StorageClient::ForEachTarget(const std::vector<std::size_t>& targets,
                                  F&& task) {
  if (targets.empty()) return;
  if (targets.size() == 1 || !concurrent_fanout_) {
    for (std::size_t s : targets) task(s);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(targets.size());
  try {
    for (std::size_t s : targets) {
      futures.push_back(pool_.Submit([&task, s] {
        schedfuzz::Perturb("client.fanout.task");
        task(s);
      }));
    }
  } catch (...) {
    // Submit itself failed (queue fault). Already-queued tasks capture &task
    // by reference, so they must finish before this frame unwinds.
    std::exception_ptr submit_error = std::current_exception();
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        // The submit failure is the primary error; task failures during the
        // drain are subsumed by it.
        DiscardResult(std::current_exception());
      }
    }
    std::rethrow_exception(submit_error);
  }
  std::exception_ptr first_error;
  schedfuzz::Perturb("client.fanout.join");
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

StorageClient::PutStats StorageClient::PutChunks(
    const std::vector<std::pair<chunk::Fingerprint, Bytes>>& chunks) {
  // Group into one request per target server.
  std::vector<net::Writer> writers(data_servers_.size());
  std::vector<std::uint32_t> counts(data_servers_.size(), 0);
  for (const auto& [fp, data] : chunks) {
    std::size_t target = fp.Short48() % data_servers_.size();
    writers[target].Raw(fp.AsSpan());
    writers[target].Blob(data);
    ++counts[target];
  }

  std::vector<std::size_t> targets;
  for (std::size_t s = 0; s < data_servers_.size(); ++s) {
    if (counts[s] != 0) targets.push_back(s);
  }

  // Each server's transfer runs on its own pool worker: batch wall time is
  // max(per-server), not sum (tentpole fan-out). Each worker writes only its
  // own per_server slot; the merge below happens after all futures joined.
  std::vector<PutStats> per_server(data_servers_.size());
  ForEachTarget(targets, [&](std::size_t s) {
    // Per-target, so an Nth-hit policy can fail one server of the fan-out
    // while the others complete (the partial-batch regression test).
    REED_FAULT_POINT("client.put_chunks.batch");
    net::Writer req;
    req.U8(static_cast<std::uint8_t>(Opcode::kPutChunks));
    req.U32(counts[s]);
    req.Raw(writers[s].bytes());
    Bytes response = CallServer(s, req.Take());
    net::Reader r(response);
    CheckStatus(r);
    per_server[s].duplicates = r.U32();
    per_server[s].stored = r.U32();
    per_server[s].stored_bytes = r.U64();
    r.ExpectEnd();
  });

  PutStats stats;
  for (std::size_t s : targets) {
    stats.duplicates += per_server[s].duplicates;
    stats.stored += per_server[s].stored;
    stats.stored_bytes += per_server[s].stored_bytes;
  }
  return stats;
}

std::vector<Bytes> StorageClient::GetChunks(
    const std::vector<chunk::Fingerprint>& fps) {
  // Build per-server requests while remembering each chunk's slot.
  std::vector<net::Writer> writers(data_servers_.size());
  std::vector<std::uint32_t> counts(data_servers_.size(), 0);
  std::vector<std::vector<std::size_t>> slots(data_servers_.size());
  for (std::size_t i = 0; i < fps.size(); ++i) {
    std::size_t target = fps[i].Short48() % data_servers_.size();
    writers[target].Raw(fps[i].AsSpan());
    ++counts[target];
    slots[target].push_back(i);
  }

  std::vector<std::size_t> targets;
  for (std::size_t s = 0; s < data_servers_.size(); ++s) {
    if (counts[s] != 0) targets.push_back(s);
  }

  std::vector<Bytes> out(fps.size());
  ForEachTarget(targets, [&](std::size_t s) {
    REED_FAULT_POINT("client.get_chunks.batch");
    net::Writer req;
    req.U8(static_cast<std::uint8_t>(Opcode::kGetChunks));
    req.U32(counts[s]);
    req.Raw(writers[s].bytes());
    Bytes response = CallServer(s, req.Take());
    net::Reader r(response);
    CheckStatus(r);
    for (std::size_t slot : slots[s]) {
      Bytes blob = r.Blob();
      // Integrity gate: the fingerprint doubles as a MAC over the trimmed
      // package (it is what dedup keyed on), so recompute it before any
      // decode work trusts the bytes. Catches tampered payloads AND
      // honest-server bugs that swap response ordering.
      if (chunk::Fingerprint::Of(blob) != fps[slot]) {
        throw Error(
            "StorageClient: chunk integrity check failed for fingerprint " +
            fps[slot].ToHex());
      }
      out[slot] = std::move(blob);
    }
    r.ExpectEnd();
  });
  return out;
}

void StorageClient::PutObject(StoreId store, const std::string& name,
                              ByteSpan value) {
  net::Writer req;
  req.U8(static_cast<std::uint8_t>(Opcode::kPutObject));
  req.U8(static_cast<std::uint8_t>(store));
  req.Str(name);
  req.Blob(value);
  Bytes response = store == StoreId::kKey
                       ? CallChannel(*key_server_, req.Take())
                       : CallServer(ServerIndexForObject(store, name), req.Take());
  net::Reader r(response);
  CheckStatus(r);
}

Bytes StorageClient::GetObject(StoreId store, const std::string& name) {
  net::Writer req;
  req.U8(static_cast<std::uint8_t>(Opcode::kGetObject));
  req.U8(static_cast<std::uint8_t>(store));
  req.Str(name);
  Bytes response = store == StoreId::kKey
                       ? CallChannel(*key_server_, req.Take())
                       : CallServer(ServerIndexForObject(store, name), req.Take());
  net::Reader r(response);
  CheckStatus(r);
  return r.Blob();
}

bool StorageClient::HasObject(StoreId store, const std::string& name) {
  net::Writer req;
  req.U8(static_cast<std::uint8_t>(Opcode::kHasObject));
  req.U8(static_cast<std::uint8_t>(store));
  req.Str(name);
  Bytes response = store == StoreId::kKey
                       ? CallChannel(*key_server_, req.Take())
                       : CallServer(ServerIndexForObject(store, name), req.Take());
  net::Reader r(response);
  CheckStatus(r);
  return r.U8() != 0;
}

}  // namespace reed::client
