// Client-side storage proxy: speaks the StorageServer wire protocol to a
// cluster of data servers plus one key-store server (paper §VI default:
// four data servers + one key server).
//
// Chunks are sharded across data servers by fingerprint, which preserves
// global dedup (identical trimmed packages always land on the same server)
// while spreading load — the multi-server parallelism of §V-B.
#pragma once

#include <memory>
#include <vector>

#include "chunk/fingerprint.h"
#include "net/rpc.h"
#include "server/storage_server.h"

namespace reed::client {

class StorageClient {
 public:
  StorageClient(std::vector<std::shared_ptr<net::RpcChannel>> data_servers,
                std::shared_ptr<net::RpcChannel> key_server);

  std::size_t data_server_count() const { return data_servers_.size(); }

  struct PutStats {
    std::size_t duplicates = 0;
    std::size_t stored = 0;
    std::uint64_t stored_bytes = 0;
  };
  // Uploads one batch, grouped into a single request per target server.
  [[nodiscard]] PutStats PutChunks(
      const std::vector<std::pair<chunk::Fingerprint, Bytes>>& chunks);

  // Fetches chunks (order-preserving), gathering from the owning servers.
  [[nodiscard]] std::vector<Bytes> GetChunks(const std::vector<chunk::Fingerprint>& fps);

  void PutObject(server::StoreId store, const std::string& name, ByteSpan value);
  [[nodiscard]] Bytes GetObject(server::StoreId store, const std::string& name);
  [[nodiscard]] bool HasObject(server::StoreId store, const std::string& name);

 private:
  net::RpcChannel& ServerForFingerprint(const chunk::Fingerprint& fp);
  net::RpcChannel& ServerForObject(server::StoreId store,
                                   const std::string& name);
  static void CheckStatus(net::Reader& r);

  std::vector<std::shared_ptr<net::RpcChannel>> data_servers_;
  std::shared_ptr<net::RpcChannel> key_server_;
};

}  // namespace reed::client
