// Client-side storage proxy: speaks the StorageServer wire protocol to a
// cluster of data servers plus one key-store server (paper §VI default:
// four data servers + one key server).
//
// Chunks are sharded across data servers by fingerprint, which preserves
// global dedup (identical trimmed packages always land on the same server)
// while spreading load — the multi-server parallelism of §V-B. Per-server
// requests fan out concurrently over an internal thread pool (each server
// has its own NIC on the paper's testbed, so batch wall time is the max of
// the per-server transfers, not their sum), and each server may be reached
// through a striped pool of channels so several batches can be in flight
// per server at once (DESIGN.md §10).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "chunk/fingerprint.h"
#include "net/rpc.h"
#include "server/storage_server.h"
#include "util/thread_pool.h"

namespace reed::client {

class StorageClient {
 public:
  // One channel per data server (no striping). concurrent_fanout = false
  // reproduces the legacy serial data path: per-server requests issue one
  // after another on the calling thread (the depth-1 reference mode of
  // ClientOptions::pipeline).
  StorageClient(std::vector<std::shared_ptr<net::RpcChannel>> data_servers,
                std::shared_ptr<net::RpcChannel> key_server,
                bool concurrent_fanout = true);

  // Striped form: data_servers[s] holds N parallel channels to server s,
  // picked round-robin per call. Every inner vector must be non-empty.
  StorageClient(
      std::vector<std::vector<std::shared_ptr<net::RpcChannel>>> data_servers,
      std::shared_ptr<net::RpcChannel> key_server,
      bool concurrent_fanout = true);

  std::size_t data_server_count() const { return data_servers_.size(); }

  struct PutStats {
    std::size_t duplicates = 0;
    std::size_t stored = 0;
    std::uint64_t stored_bytes = 0;
  };
  // Uploads one batch, one concurrent request per target server.
  // Thread-safe: concurrent batches share the fan-out pool and the striped
  // channels.
  [[nodiscard]] PutStats PutChunks(
      const std::vector<std::pair<chunk::Fingerprint, Bytes>>& chunks);

  // Fetches chunks (order-preserving), gathering concurrently from the
  // owning servers. Every returned package is verified against the
  // requested fingerprint — a server returning tampered or swapped bytes
  // is detected here, before any decode work trusts them.
  [[nodiscard]] std::vector<Bytes> GetChunks(const std::vector<chunk::Fingerprint>& fps);

  void PutObject(server::StoreId store, const std::string& name, ByteSpan value);
  [[nodiscard]] Bytes GetObject(server::StoreId store, const std::string& name);
  [[nodiscard]] bool HasObject(server::StoreId store, const std::string& name);

 private:
  // Round-robin stripe pick + in-flight accounting around one RPC.
  Bytes CallServer(std::size_t server, ByteSpan request);
  Bytes CallChannel(net::RpcChannel& channel, ByteSpan request);
  std::size_t ServerIndexForObject(server::StoreId store,
                                   const std::string& name) const;
  static void CheckStatus(net::Reader& r);

  // Runs task(s) for every server in `targets` on the fan-out pool,
  // rethrowing the first failure after all complete. A single target runs
  // inline — no handoff cost on the common unit-test path.
  template <typename F>
  void ForEachTarget(const std::vector<std::size_t>& targets, F&& task);

  std::vector<std::vector<std::shared_ptr<net::RpcChannel>>> data_servers_;
  std::shared_ptr<net::RpcChannel> key_server_;
  bool concurrent_fanout_;
  std::atomic<std::uint64_t> next_stripe_{0};
  ThreadPool pool_;
};

}  // namespace reed::client
