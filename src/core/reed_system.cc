#include "core/reed_system.h"

#include <algorithm>

namespace reed::core {

namespace {
crypto::ChaChaRng MakeSystemRng(std::uint64_t seed) {
  if (seed == 0) return crypto::ChaChaRng(crypto::SecureRandom::Generate(32));
  return crypto::DeterministicRng(seed);
}
}  // namespace

ReedSystem::ReedSystem(const SystemOptions& options)
    : options_(options), rng_(MakeSystemRng(options.rng_seed)) {
  if (options_.num_data_servers == 0) {
    throw Error("ReedSystem: need at least one data server");
  }
  if (options_.bandwidth_bps > 0) {
    auto make_link = [&] {
      return std::make_shared<net::SimulatedLink>(options_.bandwidth_bps,
                                                  options_.rtt_seconds);
    };
    km_link_ = make_link();
    for (std::size_t i = 0; i < options_.num_data_servers; ++i) {
      server_links_.push_back(make_link());
    }
    key_server_link_ = make_link();
  }
  pairing_ = std::make_shared<const pairing::TypeAPairing>(
      pairing::TypeAParams::Default());
  abe_ = std::make_shared<const abe::CpAbe>(pairing_);
  abe_setup_ = abe_->Setup(rng_);
  key_manager_ =
      std::make_unique<keymanager::KeyManager>(options_.key_manager, rng_);
  server::StorageServer::Options server_opts;
  server_opts.read_seek_seconds = options_.disk_seek_seconds;
  server_opts.durability = options_.durability;
  for (std::size_t i = 0; i < options_.num_data_servers; ++i) {
    std::string name = "data-server-" + std::to_string(i);
    if (!options_.data_dir.empty()) {
      server_opts.data_dir = options_.data_dir + "/" + name;
    }
    data_servers_.push_back(
        std::make_unique<server::StorageServer>(name, server_opts));
  }
  if (!options_.data_dir.empty()) {
    server_opts.data_dir = options_.data_dir + "/key-server";
  }
  key_server_ =
      std::make_unique<server::StorageServer>("key-server", server_opts);
}

void ReedSystem::ReopenServers(bool checkpoint_first) {
  if (options_.data_dir.empty()) {
    throw store::StoreError(
        "ReedSystem: ReopenServers requires a durable data_dir");
  }
  for (const auto& srv : data_servers_) {
    if (checkpoint_first) srv->Close();
    srv->Reopen();
  }
  if (checkpoint_first) key_server_->Close();
  key_server_->Reopen();
}

void ReedSystem::RegisterUser(const std::string& user_id) {
  if (users_.contains(user_id)) return;
  UserKeys keys{
      abe_->KeyGen(abe_setup_.pk, abe_setup_.mk, {"user:" + user_id}, rng_),
      rsa::GenerateKeyPair(options_.derivation_key_bits, rng_)};
  users_.emplace(user_id, std::move(keys));
}

bool ReedSystem::IsRegistered(const std::string& user_id) const {
  return users_.contains(user_id);
}

std::unique_ptr<client::ReedClient> ReedSystem::CreateClient(
    const std::string& user_id, const client::ClientOptions& options) {
  auto it = users_.find(user_id);
  if (it == users_.end()) {
    throw Error("ReedSystem: user not registered: " + user_id);
  }

  auto make_channel = [&](server::StorageServer* srv,
                          std::shared_ptr<net::SimulatedLink> link)
      -> std::shared_ptr<net::RpcChannel> {
    auto handler = [srv](ByteSpan req) { return srv->HandleRequest(req); };
    if (link) return std::make_shared<net::SimulatedChannel>(handler, link);
    return std::make_shared<net::LocalChannel>(handler);
  };

  // Striped channels per server (DESIGN.md §10): the stripes of a simulated
  // server share its link, so striping buys RPC concurrency (several batches
  // in flight per server) without inventing bandwidth the link doesn't have.
  const std::size_t stripes =
      std::max<std::size_t>(1, options.pipeline.channels_per_server);
  std::vector<std::vector<std::shared_ptr<net::RpcChannel>>> data_channels;
  data_channels.reserve(data_servers_.size());
  for (std::size_t i = 0; i < data_servers_.size(); ++i) {
    std::vector<std::shared_ptr<net::RpcChannel>> server_stripes;
    server_stripes.reserve(stripes);
    for (std::size_t c = 0; c < stripes; ++c) {
      server_stripes.push_back(make_channel(
          data_servers_[i].get(),
          server_links_.empty() ? nullptr : server_links_[i]));
    }
    data_channels.push_back(std::move(server_stripes));
  }
  // depth 1 is the legacy serial reference: per-server requests issue
  // sequentially, exactly like the pre-pipeline client.
  auto storage = std::make_shared<client::StorageClient>(
      std::move(data_channels),
      make_channel(key_server_.get(), key_server_link_),
      /*concurrent_fanout=*/options.pipeline.depth > 1);

  keymanager::KeyManager* km = key_manager_.get();
  auto km_handler = [km](ByteSpan req) { return km->HandleRequest(req); };
  std::shared_ptr<net::RpcChannel> km_channel;
  if (km_link_) {
    km_channel = std::make_shared<net::SimulatedChannel>(km_handler, km_link_);
  } else {
    km_channel = std::make_shared<net::LocalChannel>(km_handler);
  }
  auto keys = std::make_shared<keymanager::MleKeyClient>(
      user_id, key_manager_->public_key(), std::move(km_channel),
      options.key_options);

  return std::make_unique<client::ReedClient>(
      user_id, options, std::move(storage), std::move(keys), abe_,
      abe_setup_.pk, it->second.access_key, it->second.derivation_keys);
}

ReedSystem::StorageStats ReedSystem::TotalStats() const {
  StorageStats total;
  for (const auto& srv : data_servers_) {
    auto s = srv->stats();
    total.logical_bytes += s.logical_bytes;
    total.physical_bytes += s.physical_bytes;
    total.logical_chunks += s.logical_chunks;
    total.unique_chunks += s.unique_chunks;
    std::uint64_t stub =
        srv->ObjectBytesWithPrefix(server::StoreId::kData, "stub/");
    total.stub_bytes += stub;
    total.metadata_bytes += s.data_object_bytes - stub;  // recipes etc.
  }
  total.metadata_bytes += key_server_->stats().key_object_bytes;
  return total;
}

}  // namespace reed::core
