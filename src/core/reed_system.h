// ReedSystem — the facade that wires a whole REED deployment together:
// one key manager, N data servers + 1 key-store server (paper §VI default:
// 4 + 1), the CP-ABE authority, and per-user key material. Examples, tests
// and benchmarks build a system, register users, and obtain clients.
//
// The network between components is either free (unit tests) or a
// SimulatedLink modeling the paper's 1 Gb/s LAN (benchmarks).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "abe/cpabe.h"
#include "client/reed_client.h"
#include "keymanager/key_manager.h"
#include "net/link.h"
#include "server/storage_server.h"

namespace reed::core {

struct SystemOptions {
  keymanager::KeyManager::Options key_manager;
  std::size_t num_data_servers = 4;  // plus one key-store server (§VI)
  std::size_t derivation_key_bits = 1024;  // per-user key-regression RSA
  // 0 bandwidth disables network simulation.
  double bandwidth_bps = 0;
  double rtt_seconds = 0;
  // Disk-seek model for server reads (see StorageServer::Options); 0 = off.
  double disk_seek_seconds = 0;
  // 0 = seed from the OS; fixed seeds make whole-system runs reproducible.
  std::uint64_t rng_seed = 0;
  // Non-empty = durable servers: each gets its own subdirectory
  // (data-server-<i>/, key-server/) under this path and recovers whatever it
  // finds there on construction. Empty keeps the in-memory servers.
  std::string data_dir;
  store::DurabilityOptions durability;

  static SystemOptions PaperTestbed() {
    SystemOptions o;
    o.bandwidth_bps = 1e9;
    o.rtt_seconds = 150e-6;
    return o;
  }
};

class ReedSystem {
 public:
  explicit ReedSystem(const SystemOptions& options);

  // Issues the user's private access key (CP-ABE, attribute "user:<id>")
  // and derivation key pair (key regression). Idempotent per user.
  void RegisterUser(const std::string& user_id);

  [[nodiscard]] bool IsRegistered(const std::string& user_id) const;

  // Builds a client for a registered user. Each client gets its own MLE
  // key cache and channels (per paper, one client per user machine).
  [[nodiscard]] std::unique_ptr<client::ReedClient> CreateClient(
      const std::string& user_id, const client::ClientOptions& options);

  keymanager::KeyManager& key_manager() { return *key_manager_; }
  const abe::CpAbe& abe() const { return *abe_; }
  const abe::PublicKey& abe_public_key() const { return abe_setup_.pk; }
  // The key manager's NIC link (null when simulation is off). Each storage
  // server has its own link too — as on the paper's testbed, where every
  // machine hangs off the switch with its own 1 Gb/s port, so aggregate
  // throughput can exceed a single link (Fig. 7(c)).
  std::shared_ptr<net::SimulatedLink> link() const { return km_link_; }
  std::size_t data_server_count() const { return data_servers_.size(); }
  server::StorageServer& data_server(std::size_t i) { return *data_servers_.at(i); }
  server::StorageServer& key_server() { return *key_server_; }

  // Durable deployments only (throws StoreError otherwise): restarts every
  // storage server from disk — Close() (checkpoint) first when
  // `checkpoint_first`, else a cold crash-recovery reopen. Server addresses
  // are stable, so existing clients and channels keep working. Callers must
  // be quiesced (no in-flight uploads).
  void ReopenServers(bool checkpoint_first);

  // Aggregated storage accounting across the cluster (drives Fig. 9).
  struct StorageStats {
    std::uint64_t logical_bytes = 0;   // pre-dedup trimmed-package bytes
    std::uint64_t physical_bytes = 0;  // post-dedup trimmed-package bytes
    std::uint64_t stub_bytes = 0;      // encrypted stub files (no dedup)
    std::uint64_t metadata_bytes = 0;  // recipes + key states
    std::uint64_t unique_chunks = 0;
    std::uint64_t logical_chunks = 0;
  };
  [[nodiscard]] StorageStats TotalStats() const;

  crypto::Rng& rng() { return rng_; }

 private:
  struct UserKeys {
    abe::PrivateKey access_key;
    rsa::RsaKeyPair derivation_keys;
  };

  SystemOptions options_;
  crypto::ChaChaRng rng_;
  std::shared_ptr<net::SimulatedLink> km_link_;
  std::vector<std::shared_ptr<net::SimulatedLink>> server_links_;
  std::shared_ptr<net::SimulatedLink> key_server_link_;
  std::shared_ptr<const pairing::TypeAPairing> pairing_;
  std::shared_ptr<const abe::CpAbe> abe_;
  abe::CpAbe::SetupResult abe_setup_;
  std::unique_ptr<keymanager::KeyManager> key_manager_;
  std::vector<std::unique_ptr<server::StorageServer>> data_servers_;
  std::unique_ptr<server::StorageServer> key_server_;
  std::map<std::string, UserKeys> users_;
};

}  // namespace reed::core
