#include "crypto/aes.h"

#include "crypto/crypto_error.h"

#include <cstring>

#if defined(__x86_64__)
#include <cpuid.h>
#include <immintrin.h>
#define REED_X86 1
#endif

namespace reed::crypto {

namespace {

// ---------------------------------------------------------------------------
// GF(2^8) arithmetic and generated tables. The S-box is derived at startup
// from the field inverse + affine transform rather than transcribed, so a
// typo cannot silently corrupt the cipher (FIPS test vectors then pin it).
// ---------------------------------------------------------------------------

std::uint8_t GfMul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  while (b) {
    if (b & 1) p ^= a;
    bool hi = a & 0x80;
    a <<= 1;
    if (hi) a ^= 0x1b;  // x^8 + x^4 + x^3 + x + 1
    b >>= 1;
  }
  return p;
}

struct AesTables {
  std::uint8_t sbox[256];
  std::uint8_t inv_sbox[256];

  AesTables() {
    // Multiplicative inverses by brute force (done once).
    std::uint8_t inv[256] = {0};
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        if (GfMul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)) == 1) {
          inv[a] = static_cast<std::uint8_t>(b);
          break;
        }
      }
    }
    auto rotl8 = [](std::uint8_t x, int n) {
      return static_cast<std::uint8_t>((x << n) | (x >> (8 - n)));
    };
    for (int i = 0; i < 256; ++i) {
      std::uint8_t b = inv[i];
      std::uint8_t s = static_cast<std::uint8_t>(
          b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63);
      sbox[i] = s;
      inv_sbox[s] = static_cast<std::uint8_t>(i);
    }
  }
};

const AesTables kTables;

inline std::uint8_t XTime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

constexpr int kRounds = 14;  // AES-256

void ExpandKeyPortable(ByteSpan key, std::uint8_t ek[240]) {
  // w[i] packed big-endian so consecutive ek bytes match FIPS-197 order.
  std::uint32_t w[60];
  for (int i = 0; i < 8; ++i) {
    w[i] = (static_cast<std::uint32_t>(key[4 * i]) << 24) |
           (static_cast<std::uint32_t>(key[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(key[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(key[4 * i + 3]);
  }
  auto sub_word = [](std::uint32_t v) {
    return (static_cast<std::uint32_t>(kTables.sbox[(v >> 24) & 0xFF]) << 24) |
           (static_cast<std::uint32_t>(kTables.sbox[(v >> 16) & 0xFF]) << 16) |
           (static_cast<std::uint32_t>(kTables.sbox[(v >> 8) & 0xFF]) << 8) |
           static_cast<std::uint32_t>(kTables.sbox[v & 0xFF]);
  };
  std::uint32_t rcon = 0x01;
  for (int i = 8; i < 60; ++i) {
    std::uint32_t temp = w[i - 1];
    if (i % 8 == 0) {
      temp = sub_word((temp << 8) | (temp >> 24)) ^ (rcon << 24);
      rcon = GfMul(static_cast<std::uint8_t>(rcon), 2);
    } else if (i % 8 == 4) {
      temp = sub_word(temp);
    }
    w[i] = w[i - 8] ^ temp;
  }
  for (int i = 0; i < 60; ++i) {
    ek[4 * i] = static_cast<std::uint8_t>(w[i] >> 24);
    ek[4 * i + 1] = static_cast<std::uint8_t>(w[i] >> 16);
    ek[4 * i + 2] = static_cast<std::uint8_t>(w[i] >> 8);
    ek[4 * i + 3] = static_cast<std::uint8_t>(w[i]);
  }
}

// State layout: column-major FIPS order, state[4c + r] = s[r][c].
inline void AddRoundKey(std::uint8_t s[16], const std::uint8_t* rk) {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

inline void SubBytes(std::uint8_t s[16]) {
  for (int i = 0; i < 16; ++i) s[i] = kTables.sbox[s[i]];
}

inline void InvSubBytes(std::uint8_t s[16]) {
  for (int i = 0; i < 16; ++i) s[i] = kTables.inv_sbox[s[i]];
}

inline void ShiftRows(std::uint8_t s[16]) {
  std::uint8_t t[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      t[4 * c + r] = s[4 * ((c + r) % 4) + r];
    }
  }
  std::memcpy(s, t, 16);
}

inline void InvShiftRows(std::uint8_t s[16]) {
  std::uint8_t t[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      t[4 * ((c + r) % 4) + r] = s[4 * c + r];
    }
  }
  std::memcpy(s, t, 16);
}

inline void MixColumns(std::uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* a = s + 4 * c;
    std::uint8_t t = static_cast<std::uint8_t>(a[0] ^ a[1] ^ a[2] ^ a[3]);
    std::uint8_t a0 = a[0];
    a[0] = static_cast<std::uint8_t>(
        a[0] ^ t ^ XTime(static_cast<std::uint8_t>(a[0] ^ a[1])));
    a[1] = static_cast<std::uint8_t>(
        a[1] ^ t ^ XTime(static_cast<std::uint8_t>(a[1] ^ a[2])));
    a[2] = static_cast<std::uint8_t>(
        a[2] ^ t ^ XTime(static_cast<std::uint8_t>(a[2] ^ a[3])));
    a[3] = static_cast<std::uint8_t>(
        a[3] ^ t ^ XTime(static_cast<std::uint8_t>(a[3] ^ a0)));
  }
}

inline void InvMixColumns(std::uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* a = s + 4 * c;
    std::uint8_t b0 = GfMul(a[0], 14) ^ GfMul(a[1], 11) ^ GfMul(a[2], 13) ^ GfMul(a[3], 9);
    std::uint8_t b1 = GfMul(a[0], 9) ^ GfMul(a[1], 14) ^ GfMul(a[2], 11) ^ GfMul(a[3], 13);
    std::uint8_t b2 = GfMul(a[0], 13) ^ GfMul(a[1], 9) ^ GfMul(a[2], 14) ^ GfMul(a[3], 11);
    std::uint8_t b3 = GfMul(a[0], 11) ^ GfMul(a[1], 13) ^ GfMul(a[2], 9) ^ GfMul(a[3], 14);
    a[0] = b0; a[1] = b1; a[2] = b2; a[3] = b3;
  }
}

void EncryptBlockPortable(const std::uint8_t ek[240], const std::uint8_t in[16],
                          std::uint8_t out[16]) {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  AddRoundKey(s, ek);
  for (int r = 1; r < kRounds; ++r) {
    SubBytes(s);
    ShiftRows(s);
    MixColumns(s);
    AddRoundKey(s, ek + 16 * r);
  }
  SubBytes(s);
  ShiftRows(s);
  AddRoundKey(s, ek + 16 * kRounds);
  std::memcpy(out, s, 16);
}

void DecryptBlockPortable(const std::uint8_t ek[240], const std::uint8_t in[16],
                          std::uint8_t out[16]) {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  AddRoundKey(s, ek + 16 * kRounds);
  for (int r = kRounds - 1; r >= 1; --r) {
    InvShiftRows(s);
    InvSubBytes(s);
    AddRoundKey(s, ek + 16 * r);
    InvMixColumns(s);
  }
  InvShiftRows(s);
  InvSubBytes(s);
  AddRoundKey(s, ek);
  std::memcpy(out, s, 16);
}

#if defined(REED_X86)

bool DetectAesNi() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 25)) != 0;
}

const bool kHaveAesNi = DetectAesNi();

__attribute__((target("aes,sse2")))
void BuildDecKeysNi(const std::uint8_t enc[240], std::uint8_t dec[240]) {
  // Equivalent inverse cipher: dec[0] = enc[last], middle keys aesimc'd in
  // reverse order, dec[last] = enc[0].
  __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(enc + 16 * kRounds));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dec), k);
  for (int r = 1; r < kRounds; ++r) {
    k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(enc + 16 * (kRounds - r)));
    k = _mm_aesimc_si128(k);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dec + 16 * r), k);
  }
  k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(enc));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dec + 16 * kRounds), k);
}

__attribute__((target("aes,sse2")))
void EncryptBlockNi(const std::uint8_t ek[240], const std::uint8_t in[16],
                    std::uint8_t out[16]) {
  __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  x = _mm_xor_si128(x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(ek)));
  for (int r = 1; r < kRounds; ++r) {
    x = _mm_aesenc_si128(x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(ek + 16 * r)));
  }
  x = _mm_aesenclast_si128(x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(ek + 16 * kRounds)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), x);
}

__attribute__((target("aes,sse2")))
void DecryptBlockNi(const std::uint8_t dk[240], const std::uint8_t in[16],
                    std::uint8_t out[16]) {
  __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  x = _mm_xor_si128(x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(dk)));
  for (int r = 1; r < kRounds; ++r) {
    x = _mm_aesdec_si128(x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(dk + 16 * r)));
  }
  x = _mm_aesdeclast_si128(x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(dk + 16 * kRounds)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), x);
}

// Pipelined 8-wide independent-block encryption: the CTR mask generation in
// CAONT is the hottest loop in the whole system.
__attribute__((target("aes,sse2")))
void EncryptBlocksNiBulk(const std::uint8_t ek[240], const std::uint8_t* in,
                         std::uint8_t* out, std::size_t nblocks) {
  const __m128i* rk = reinterpret_cast<const __m128i*>(ek);
  __m128i keys[kRounds + 1];
  for (int r = 0; r <= kRounds; ++r) {
    keys[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ek + 16 * r));
  }
  (void)rk;
  while (nblocks >= 8) {
    __m128i x[8];
    for (int i = 0; i < 8; ++i) {
      x[i] = _mm_xor_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i)),
          keys[0]);
    }
    for (int r = 1; r < kRounds; ++r) {
      for (int i = 0; i < 8; ++i) x[i] = _mm_aesenc_si128(x[i], keys[r]);
    }
    for (int i = 0; i < 8; ++i) {
      x[i] = _mm_aesenclast_si128(x[i], keys[kRounds]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i), x[i]);
    }
    in += 128;
    out += 128;
    nblocks -= 8;
  }
  while (nblocks-- > 0) {
    EncryptBlockNi(ek, in, out);
    in += 16;
    out += 16;
  }
}

#else
const bool kHaveAesNi = false;
#endif  // REED_X86

}  // namespace

Aes256::Aes256(ByteSpan key) {
  if (key.size() != kAes256KeySize) {
    throw CryptoError("Aes256: key must be 32 bytes");
  }
  ExpandKeyPortable(key, enc_round_keys_.data());
#if defined(REED_X86)
  if (kHaveAesNi) {
    BuildDecKeysNi(enc_round_keys_.data(), dec_round_keys_.data());
    return;
  }
#endif
  dec_round_keys_ = enc_round_keys_;  // portable decrypt reuses enc keys
}

bool Aes256::UsingHardware() { return kHaveAesNi; }

void Aes256::EncryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const {
#if defined(REED_X86)
  if (kHaveAesNi) {
    EncryptBlockNi(enc_round_keys_.data(), in, out);
    return;
  }
#endif
  EncryptBlockPortable(enc_round_keys_.data(), in, out);
}

void Aes256::DecryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const {
#if defined(REED_X86)
  if (kHaveAesNi) {
    DecryptBlockNi(dec_round_keys_.data(), in, out);
    return;
  }
#endif
  DecryptBlockPortable(enc_round_keys_.data(), in, out);
}

void Aes256::EncryptBlocksNi(const std::uint8_t* in, std::uint8_t* out,
                             std::size_t nblocks) const {
#if defined(REED_X86)
  if (kHaveAesNi) {
    EncryptBlocksNiBulk(enc_round_keys_.data(), in, out, nblocks);
    return;
  }
#endif
  for (std::size_t i = 0; i < nblocks; ++i) {
    EncryptBlockPortable(enc_round_keys_.data(), in + 16 * i, out + 16 * i);
  }
}

// ---------------------------------------------------------------------------
// CTR mode
// ---------------------------------------------------------------------------

AesCtr::AesCtr(ByteSpan key, ByteSpan iv) : aes_(key) {
  if (iv.size() != kAesBlockSize) {
    throw CryptoError("AesCtr: iv must be 16 bytes");
  }
  std::memcpy(counter_.data(), iv.data(), kAesBlockSize);
}

namespace {
inline void IncrementCounter(std::uint8_t ctr[16]) {
  for (int i = 15; i >= 0; --i) {
    if (++ctr[i] != 0) break;  // full-width big-endian increment
  }
}
}  // namespace

void AesCtr::RefillBuffer() {
  aes_.EncryptBlock(counter_.data(), buffer_.data());
  IncrementCounter(counter_.data());
  buffer_pos_ = 0;
}

void AesCtr::Keystream(MutableByteSpan out) {
  std::size_t i = 0;
  // Drain any partially consumed block first.
  while (i < out.size() && buffer_pos_ < kAesBlockSize) {
    out[i++] = buffer_[buffer_pos_++];
  }
  std::size_t remaining = out.size() - i;
  std::size_t full_blocks = remaining / kAesBlockSize;
  if (full_blocks > 0) {
    // Materialize counter blocks and encrypt them in bulk (8-wide on AES-NI).
    constexpr std::size_t kBatch = 256;
    std::uint8_t ctrs[kBatch * kAesBlockSize];
    while (full_blocks > 0) {
      std::size_t n = std::min(full_blocks, kBatch);
      for (std::size_t b = 0; b < n; ++b) {
        std::memcpy(ctrs + 16 * b, counter_.data(), 16);
        IncrementCounter(counter_.data());
      }
      aes_.EncryptBlocksNi(ctrs, out.data() + i, n);
      i += n * kAesBlockSize;
      full_blocks -= n;
    }
  }
  while (i < out.size()) {
    if (buffer_pos_ == kAesBlockSize) RefillBuffer();
    out[i++] = buffer_[buffer_pos_++];
  }
}

void AesCtr::Process(MutableByteSpan data) {
  // XOR keystream in place; generate into a scratch buffer in slabs.
  constexpr std::size_t kSlab = 4096;
  std::uint8_t ks[kSlab];
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t n = std::min(data.size() - off, kSlab);
    Keystream(MutableByteSpan(ks, n));
    for (std::size_t i = 0; i < n; ++i) data[off + i] ^= ks[i];
    off += n;
  }
}

Bytes AesCtrEncrypt(ByteSpan key, ByteSpan iv, ByteSpan data) {
  Bytes out(data.begin(), data.end());
  AesCtr ctr(key, iv);
  ctr.Process(out);
  return out;
}

// ---------------------------------------------------------------------------
// CBC mode with PKCS#7
// ---------------------------------------------------------------------------

Bytes AesCbcEncrypt(ByteSpan key, ByteSpan iv, ByteSpan plaintext) {
  if (iv.size() != kAesBlockSize) throw CryptoError("AesCbcEncrypt: bad iv size");
  Aes256 aes(key);
  std::size_t pad = kAesBlockSize - (plaintext.size() % kAesBlockSize);
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  Bytes out(padded.size());
  std::uint8_t prev[kAesBlockSize];
  std::memcpy(prev, iv.data(), kAesBlockSize);
  for (std::size_t off = 0; off < padded.size(); off += kAesBlockSize) {
    std::uint8_t blk[kAesBlockSize];
    for (std::size_t i = 0; i < kAesBlockSize; ++i) blk[i] = padded[off + i] ^ prev[i];
    aes.EncryptBlock(blk, out.data() + off);
    std::memcpy(prev, out.data() + off, kAesBlockSize);
  }
  return out;
}

Bytes AesCbcDecrypt(ByteSpan key, ByteSpan iv, ByteSpan ciphertext) {
  if (iv.size() != kAesBlockSize) throw CryptoError("AesCbcDecrypt: bad iv size");
  if (ciphertext.empty() || ciphertext.size() % kAesBlockSize != 0) {
    throw CryptoError("AesCbcDecrypt: ciphertext not block-aligned");
  }
  Aes256 aes(key);
  Bytes out(ciphertext.size());
  std::uint8_t prev[kAesBlockSize];
  std::memcpy(prev, iv.data(), kAesBlockSize);
  for (std::size_t off = 0; off < ciphertext.size(); off += kAesBlockSize) {
    std::uint8_t blk[kAesBlockSize];
    aes.DecryptBlock(ciphertext.data() + off, blk);
    for (std::size_t i = 0; i < kAesBlockSize; ++i) blk[i] ^= prev[i];
    std::memcpy(prev, ciphertext.data() + off, kAesBlockSize);
    std::memcpy(out.data() + off, blk, kAesBlockSize);
  }
  std::uint8_t pad = out.back();
  if (pad == 0 || pad > kAesBlockSize || pad > out.size()) {
    throw CryptoError("AesCbcDecrypt: bad padding");
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) throw CryptoError("AesCbcDecrypt: bad padding");
  }
  out.resize(out.size() - pad);
  return out;
}

}  // namespace reed::crypto
