// AES-256 (FIPS 197) from scratch, with CTR and CBC modes.
//
// REED uses AES-256 as the symmetric cipher E(·) everywhere the paper does:
// the CAONT pseudo-random mask G(K) = E(K, S) (S = a public constant block
// stream), the MLE encryption step of the enhanced scheme, stub-file
// encryption under the file key, and key-state wrapping. A portable
// byte-oriented backend and an AES-NI backend are selected at runtime.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"
#include "util/secret.h"

namespace reed::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAes256KeySize = 32;

using AesKey = std::array<std::uint8_t, kAes256KeySize>;

// Expanded-key AES-256 context. Immutable after construction; safe to share
// across threads for encryption.
class Aes256 {
 public:
  explicit Aes256(ByteSpan key);  // key must be 32 bytes
  explicit Aes256(const Secret& key) : Aes256(key.ExposeForCrypto()) {}

  // The expanded schedule is key-equivalent material: wipe it so freed
  // contexts never leave round keys in reusable memory.
  ~Aes256() {
    SecureZero(enc_round_keys_);
    SecureZero(dec_round_keys_);
  }

  Aes256(const Aes256&) = default;
  Aes256& operator=(const Aes256&) = default;

  // Single-block ECB primitives (building blocks for the modes below).
  void EncryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void DecryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

  [[nodiscard]] static bool UsingHardware();

 private:
  friend class AesCtr;
  void EncryptBlocksNi(const std::uint8_t* in, std::uint8_t* out,
                       std::size_t nblocks) const;

  // Expanded key bytes, FIPS-197 order: round r occupies [16r, 16r+16).
  alignas(16) std::array<std::uint8_t, 240> enc_round_keys_;
  // AES-NI "equivalent inverse cipher" keys (aesimc-transformed, reversed).
  alignas(16) std::array<std::uint8_t, 240> dec_round_keys_;
};

// AES-256-CTR keystream/cipher. CTR(K, iv) XOR data — encryption and
// decryption are the same operation. The CAONT mask G(K) is exactly the CTR
// keystream with a fixed public IV (the "publicly known block S").
class AesCtr {
 public:
  // iv must be 16 bytes; it forms the initial counter block (big-endian
  // increment over the trailing 32 bits, NIST SP 800-38A style).
  AesCtr(ByteSpan key, ByteSpan iv);
  AesCtr(const Secret& key, ByteSpan iv) : AesCtr(key.ExposeForCrypto(), iv) {}

  // XORs the keystream into `data` in place, continuing from the current
  // stream position.
  void Process(MutableByteSpan data);

  // Writes raw keystream bytes into `out`.
  void Keystream(MutableByteSpan out);

  // Keystream bytes are XOR-equivalent to plaintext; wipe on teardown.
  ~AesCtr() { SecureZero(buffer_); }

 private:
  void RefillBuffer();

  Aes256 aes_;
  std::array<std::uint8_t, kAesBlockSize> counter_;
  std::array<std::uint8_t, kAesBlockSize> buffer_;
  std::size_t buffer_pos_ = kAesBlockSize;
};

// AES-256-CBC with PKCS#7 padding; used for wrapped key blobs where
// ciphertext length may exceed plaintext length (not for CAONT packages,
// which must stay length-preserving).
[[nodiscard]] Bytes AesCbcEncrypt(ByteSpan key, ByteSpan iv, ByteSpan plaintext);
[[nodiscard]] Bytes AesCbcDecrypt(ByteSpan key, ByteSpan iv, ByteSpan ciphertext);

// Length-preserving CTR helpers used throughout REED.
[[nodiscard]] Bytes AesCtrEncrypt(ByteSpan key, ByteSpan iv, ByteSpan data);
[[nodiscard]] inline Bytes AesCtrDecrypt(ByteSpan key, ByteSpan iv, ByteSpan data) {
  return AesCtrEncrypt(key, iv, data);
}

// Secret-typed key overloads: the cipher layer is where taint legitimately
// meets raw bytes (layering lint, rule secret-expose).
[[nodiscard]] inline Bytes AesCbcEncrypt(const Secret& key, ByteSpan iv,
                                         ByteSpan plaintext) {
  return AesCbcEncrypt(key.ExposeForCrypto(), iv, plaintext);
}
[[nodiscard]] inline Bytes AesCbcDecrypt(const Secret& key, ByteSpan iv,
                                         ByteSpan ciphertext) {
  return AesCbcDecrypt(key.ExposeForCrypto(), iv, ciphertext);
}
[[nodiscard]] inline Bytes AesCtrEncrypt(const Secret& key, ByteSpan iv,
                                         ByteSpan data) {
  return AesCtrEncrypt(key.ExposeForCrypto(), iv, data);
}
[[nodiscard]] inline Bytes AesCtrDecrypt(const Secret& key, ByteSpan iv,
                                         ByteSpan data) {
  return AesCtrEncrypt(key.ExposeForCrypto(), iv, data);
}

}  // namespace reed::crypto
