// Typed error for the cryptographic layers (crypto/ primitives and the
// aont/ transforms built on them): bad key or IV sizes, padding and
// integrity-check failures, RNG faults. Deriving from reed::Error keeps
// every existing `catch (const Error&)` working while letting callers that
// care — e.g. a download path distinguishing a tampered chunk from a
// truncated frame — discriminate by layer.
#pragma once

#include "util/bytes.h"

namespace reed::crypto {

class CryptoError : public Error {
 public:
  using Error::Error;
};

}  // namespace reed::crypto
