#include "crypto/hmac.h"

#include "crypto/crypto_error.h"

#include <cstring>

namespace reed::crypto {

Sha256Digest HmacSha256(ByteSpan key, ByteSpan data) {
  std::uint8_t block[kSha256BlockSize] = {0};
  if (key.size() > kSha256BlockSize) {
    Sha256Digest kd = Sha256::Hash(key);
    std::memcpy(block, kd.data(), kd.size());
  } else if (!key.empty()) {
    // An empty span's data() may be null; memcpy's pointer args must be
    // non-null even for size 0 (UBSan: nonnull-attribute).
    std::memcpy(block, key.data(), key.size());
  }

  std::uint8_t ipad[kSha256BlockSize];
  std::uint8_t opad[kSha256BlockSize];
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad);
  inner.Update(data);
  Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  Sha256Digest out = outer.Finish();

  // The padded key block and both pads are key-equivalent material.
  SecureZero(block);
  SecureZero(ipad);
  SecureZero(opad);
  SecureZero(inner_digest);
  return out;
}

Bytes HmacSha256ToBytes(ByteSpan key, ByteSpan data) {
  Sha256Digest d = HmacSha256(key, data);
  return Bytes(d.begin(), d.end());
}

Bytes HkdfSha256(ByteSpan ikm, ByteSpan salt, ByteSpan info, std::size_t length) {
  if (length > 255 * kSha256DigestSize) {
    throw CryptoError("HkdfSha256: requested length too large");
  }
  Sha256Digest prk = HmacSha256(salt, ikm);
  ScopedWipe wipe_prk{MutableByteSpan(prk)};

  Bytes okm;
  okm.reserve(length);
  Bytes t;  // T(0) = empty
  ScopedWipe wipe_t(t);
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes input = t;
    Append(input, info);
    input.push_back(counter++);
    Sha256Digest block = HmacSha256(prk, input);
    t.assign(block.begin(), block.end());
    SecureZero(block);
    SecureZero(input);
    std::size_t take = std::min(t.size(), length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + take);
  }
  return okm;
}

Bytes DeriveKey32(ByteSpan ikm, std::string_view label) {
  return HkdfSha256(ikm, /*salt=*/{}, ToBytes(label), 32);
}

}  // namespace reed::crypto
