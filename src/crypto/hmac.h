// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// REED derives its symmetric keys with HKDF so every derived key carries a
// domain-separation label: file keys from key states, MLE keys from OPRF
// outputs, per-purpose subkeys (stub encryption, recipe MACs).
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace reed::crypto {

// HMAC-SHA256 over `data` with `key` (any length).
[[nodiscard]] Sha256Digest HmacSha256(ByteSpan key, ByteSpan data);
[[nodiscard]] Bytes HmacSha256ToBytes(ByteSpan key, ByteSpan data);

// HKDF-Extract then -Expand; returns `length` bytes (≤ 255*32).
[[nodiscard]] Bytes HkdfSha256(ByteSpan ikm, ByteSpan salt, ByteSpan info, std::size_t length);

// Convenience: 32-byte key with a string label for domain separation.
[[nodiscard]] Bytes DeriveKey32(ByteSpan ikm, std::string_view label);

}  // namespace reed::crypto
