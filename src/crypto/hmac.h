// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// REED derives its symmetric keys with HKDF so every derived key carries a
// domain-separation label: file keys from key states, MLE keys from OPRF
// outputs, per-purpose subkeys (stub encryption, recipe MACs).
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/secret.h"

namespace reed::crypto {

// HMAC-SHA256 over `data` with `key` (any length).
[[nodiscard]] Sha256Digest HmacSha256(ByteSpan key, ByteSpan data);
[[nodiscard]] Bytes HmacSha256ToBytes(ByteSpan key, ByteSpan data);

// HKDF-Extract then -Expand; returns `length` bytes (≤ 255*32).
[[nodiscard]] Bytes HkdfSha256(ByteSpan ikm, ByteSpan salt, ByteSpan info, std::size_t length);

// Convenience: 32-byte key with a string label for domain separation.
[[nodiscard]] Bytes DeriveKey32(ByteSpan ikm, std::string_view label);

// Secret-typed overloads: derived keys stay tainted; only the KDF layer
// touches the raw input key material (layering lint, rule secret-expose).
[[nodiscard]] inline Sha256Digest HmacSha256(const Secret& key, ByteSpan data) {
  return HmacSha256(key.ExposeForCrypto(), data);
}
[[nodiscard]] inline Secret HkdfSha256(const Secret& ikm, ByteSpan salt,
                                       ByteSpan info, std::size_t length) {
  return Secret(HkdfSha256(ikm.ExposeForCrypto(), salt, info, length));
}
[[nodiscard]] inline Secret DeriveKey32(const Secret& ikm,
                                        std::string_view label) {
  return Secret(DeriveKey32(ikm.ExposeForCrypto(), label));
}

}  // namespace reed::crypto
