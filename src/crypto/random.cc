#include "crypto/random.h"

#include "crypto/crypto_error.h"

#include <sys/random.h>

#include <cstring>

#include "crypto/sha256.h"
#include "util/thread_annotations.h"

namespace reed::crypto {

std::uint64_t Rng::Uniform(std::uint64_t bound) {
  if (bound == 0) throw CryptoError("Rng::Uniform: bound must be positive");
  // Rejection sampling over the largest multiple of bound.
  std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  for (;;) {
    std::uint64_t v = NextU64();
    if (v < limit) return v % bound;
  }
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

namespace {

inline std::uint32_t Rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void QuarterRound(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                         std::uint32_t& d) {
  a += b; d ^= a; d = Rotl32(d, 16);
  c += d; b ^= c; b = Rotl32(b, 12);
  a += b; d ^= a; d = Rotl32(d, 8);
  c += d; b ^= c; b = Rotl32(b, 7);
}

}  // namespace

void ChaCha20Block(const std::uint32_t state[16], std::uint8_t out[64]) {
  std::uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int i = 0; i < 10; ++i) {  // 20 rounds = 10 double rounds
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = x[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

ChaChaRng::ChaChaRng(ByteSpan seed) {
  if (seed.size() != 32) throw CryptoError("ChaChaRng: seed must be 32 bytes");
  std::memcpy(seed_.data(), seed.data(), 32);
  // RFC 7539 constants "expand 32-byte k".
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = (static_cast<std::uint32_t>(seed[4 * i])) |
                    (static_cast<std::uint32_t>(seed[4 * i + 1]) << 8) |
                    (static_cast<std::uint32_t>(seed[4 * i + 2]) << 16) |
                    (static_cast<std::uint32_t>(seed[4 * i + 3]) << 24);
  }
  state_[12] = 0;  // 64-bit block counter in words 12-13 (DRBG use)
  state_[13] = 0;
  state_[14] = 0;
  state_[15] = 0;
}

void ChaChaRng::Fill(MutableByteSpan out) {
  std::size_t i = 0;
  while (i < out.size()) {
    if (buffer_pos_ == 64) {
      ChaCha20Block(state_.data(), buffer_.data());
      if (++state_[12] == 0) ++state_[13];
      buffer_pos_ = 0;
    }
    std::size_t take = std::min(out.size() - i, 64 - buffer_pos_);
    std::memcpy(out.data() + i, buffer_.data() + buffer_pos_, take);
    buffer_pos_ += take;
    i += take;
  }
}

ChaChaRng ChaChaRng::Fork(std::uint64_t stream_id) const {
  Bytes material(seed_.begin(), seed_.end());
  AppendU64(material, stream_id);
  Sha256Digest child = Sha256::Hash(material);
  return ChaChaRng(ByteSpan(child.data(), child.size()));
}

namespace {

ChaChaRng MakeOsSeededRng() {
  std::uint8_t seed[32];
  std::size_t got = 0;
  while (got < sizeof(seed)) {
    ssize_t n = getrandom(seed + got, sizeof(seed) - got, 0);
    if (n < 0) throw CryptoError("SecureRandom: getrandom failed");
    got += static_cast<std::size_t>(n);
  }
  return ChaChaRng(seed);
}

reed::Mutex g_secure_mu{reed::LockRank::kCryptoRng};
ChaChaRng& GlobalSecureRng() REED_REQUIRES(g_secure_mu) {
  static ChaChaRng rng = MakeOsSeededRng();
  return rng;
}

}  // namespace

void SecureRandom::Fill(MutableByteSpan out) {
  reed::MutexLock lock(g_secure_mu);
  GlobalSecureRng().Fill(out);
}

Bytes SecureRandom::Generate(std::size_t n) {
  Bytes out(n);
  Fill(out);
  return out;
}

namespace {
Bytes SeedFromU64(std::uint64_t seed) {
  Bytes material = ToBytes("reed-deterministic-rng");
  AppendU64(material, seed);
  return Sha256::HashToBytes(material);
}
}  // namespace

DeterministicRng::DeterministicRng(std::uint64_t seed)
    : ChaChaRng(SeedFromU64(seed)) {}

}  // namespace reed::crypto
