// Random number generation.
//
// Two generators share one interface:
//  * SecureRandom — ChaCha20-based DRBG seeded from the OS entropy pool;
//    used for key states, RSA key generation, ABE randomness.
//  * DeterministicRng — same DRBG seeded from a caller-provided seed; used
//    by tests, the synthetic-trace generator, and the workload generators so
//    every experiment is reproducible bit-for-bit.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"
#include "util/secret.h"

namespace reed::crypto {

class Rng {
 public:
  virtual ~Rng() = default;

  virtual void Fill(MutableByteSpan out) = 0;

  [[nodiscard]] Bytes Generate(std::size_t n) {
    Bytes out(n);
    Fill(out);
    return out;
  }

  // For fresh key material: the bytes are born tainted.
  [[nodiscard]] Secret GenerateSecret(std::size_t n) {
    return Secret(Generate(n));
  }

  [[nodiscard]] std::uint64_t NextU64() {
    std::uint8_t buf[8];
    Fill(buf);
    return GetU64(buf);
  }

  // Uniform in [0, bound) without modulo bias (rejection sampling).
  [[nodiscard]] std::uint64_t Uniform(std::uint64_t bound);

  // Uniform double in [0, 1).
  [[nodiscard]] double UniformDouble();
};

// ChaCha20 block function exposed for tests (RFC 7539 test vectors).
void ChaCha20Block(const std::uint32_t state[16], std::uint8_t out[64]);

// DRBG over the ChaCha20 block function with a 64-bit block counter.
class ChaChaRng : public Rng {
 public:
  // seed: 32 bytes of key material.
  explicit ChaChaRng(ByteSpan seed);

  void Fill(MutableByteSpan out) override;

  // Forks an independent stream (hashes the parent seed + stream id); lets
  // parallel workers draw reproducible, non-overlapping randomness.
  ChaChaRng Fork(std::uint64_t stream_id) const;

 private:
  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 32> seed_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_pos_ = 64;
};

// Process-wide CSPRNG seeded from the OS; thread-safe.
class SecureRandom {
 public:
  static void Fill(MutableByteSpan out);
  [[nodiscard]] static Bytes Generate(std::size_t n);
};

// Deterministic RNG for tests and workload generation.
class DeterministicRng : public ChaChaRng {
 public:
  explicit DeterministicRng(std::uint64_t seed);
};

}  // namespace reed::crypto
