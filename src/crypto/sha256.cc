#include "crypto/sha256.h"

#include <cstring>

#if defined(__x86_64__)
#include <cpuid.h>
#include <immintrin.h>
#define REED_X86 1
#endif

namespace reed::crypto {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t Rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

void ProcessPortable(std::array<std::uint32_t, 8>& state,
                     const std::uint8_t* data, std::size_t num_blocks) {
  std::uint32_t w[64];
  for (std::size_t blk = 0; blk < num_blocks; ++blk, data += 64) {
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(data[4 * i]) << 24) |
             (static_cast<std::uint32_t>(data[4 * i + 1]) << 16) |
             (static_cast<std::uint32_t>(data[4 * i + 2]) << 8) |
             static_cast<std::uint32_t>(data[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      std::uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      std::uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
      std::uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      std::uint32_t ch = (e & f) ^ (~e & g);
      std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
      std::uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      std::uint32_t t2 = s0 + maj;
      h = g; g = f; f = e; e = d + t1;
      d = c; c = b; b = a; a = t1 + t2;
    }
    state[0] += a; state[1] += b; state[2] += c; state[3] += d;
    state[4] += e; state[5] += f; state[6] += g; state[7] += h;
  }
}

#if defined(REED_X86)

bool DetectShaNi() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ebx & (1u << 29)) != 0;  // SHA extensions
}

// One 4-round step of the SHA-NI schedule for rounds 16-51: consumes ma,
// extends mb via msg2, pre-mixes md via msg1.
__attribute__((target("sha,sse4.1")))
inline void ShaNiQuad(__m128i& state0, __m128i& state1, __m128i& ma,
                      __m128i& mb, __m128i& md, const std::uint32_t* k) {
  __m128i m = _mm_add_epi32(ma, _mm_loadu_si128(reinterpret_cast<const __m128i*>(k)));
  state1 = _mm_sha256rnds2_epu32(state1, state0, m);
  __m128i t = _mm_alignr_epi8(ma, md, 4);
  mb = _mm_add_epi32(mb, t);
  mb = _mm_sha256msg2_epu32(mb, ma);
  m = _mm_shuffle_epi32(m, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, m);
  md = _mm_sha256msg1_epu32(md, ma);
}

// Intel SHA-NI block processing; layout follows the canonical sample code
// published by Intel (state held as ABEF/CDGH 128-bit lanes).
__attribute__((target("sha,sse4.1")))
void ProcessShaNi(std::array<std::uint32_t, 8>& state_in,
                  const std::uint8_t* data, std::size_t num_blocks) {
  const __m128i kShuf =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state_in[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state_in[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);       // CDGH

  while (num_blocks-- > 0) {
    __m128i abef_save = state0;
    __m128i cdgh_save = state1;
    __m128i msg, msg0, msg1, msg2, msg3;

    // Rounds 0-3
    msg0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    msg0 = _mm_shuffle_epi8(msg0, kShuf);
    msg = _mm_add_epi32(msg0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[0])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7
    msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    msg1 = _mm_shuffle_epi8(msg1, kShuf);
    msg = _mm_add_epi32(msg1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11
    msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    msg2 = _mm_shuffle_epi8(msg2, kShuf);
    msg = _mm_add_epi32(msg2, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[8])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15
    msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg3 = _mm_shuffle_epi8(msg3, kShuf);
    msg = _mm_add_epi32(msg3, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[12])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-51: identical 4-round pattern over rotating message regs.
    ShaNiQuad(state0, state1, msg0, msg1, msg3, &kK[16]);
    ShaNiQuad(state0, state1, msg1, msg2, msg0, &kK[20]);
    ShaNiQuad(state0, state1, msg2, msg3, msg1, &kK[24]);
    ShaNiQuad(state0, state1, msg3, msg0, msg2, &kK[28]);
    ShaNiQuad(state0, state1, msg0, msg1, msg3, &kK[32]);
    ShaNiQuad(state0, state1, msg1, msg2, msg0, &kK[36]);
    ShaNiQuad(state0, state1, msg2, msg3, msg1, &kK[40]);
    ShaNiQuad(state0, state1, msg3, msg0, msg2, &kK[44]);
    ShaNiQuad(state0, state1, msg0, msg1, msg3, &kK[48]);

    // Rounds 52-55
    msg = _mm_add_epi32(msg1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[52])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59
    msg = _mm_add_epi32(msg2, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[56])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63
    msg = _mm_add_epi32(msg3, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[60])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);      // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);   // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state_in[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state_in[4]), state1);
}

const bool kHaveShaNi = DetectShaNi();

#else
const bool kHaveShaNi = false;
#endif  // REED_X86

}  // namespace

void Sha256::Reset() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  total_len_ = 0;
  buffer_len_ = 0;
}

bool Sha256::UsingHardware() { return kHaveShaNi; }

void Sha256::ProcessBlocks(const std::uint8_t* data, std::size_t num_blocks) {
#if defined(REED_X86)
  if (kHaveShaNi) {
    ProcessShaNi(state_, data, num_blocks);
    return;
  }
#endif
  ProcessPortable(state_, data, num_blocks);
}

void Sha256::Update(ByteSpan data) {
  total_len_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  if (buffer_len_ > 0) {
    std::size_t take = std::min(n, kSha256BlockSize - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == kSha256BlockSize) {
      ProcessBlocks(buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  std::size_t full = n / kSha256BlockSize;
  if (full > 0) {
    ProcessBlocks(p, full);
    p += full * kSha256BlockSize;
    n -= full * kSha256BlockSize;
  }
  if (n > 0) {
    std::memcpy(buffer_.data(), p, n);
    buffer_len_ = n;
  }
}

Sha256Digest Sha256::Finish() {
  std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad[kSha256BlockSize * 2] = {0};
  std::size_t pad_len = (buffer_len_ < 56)
                            ? (56 - buffer_len_)
                            : (120 - buffer_len_);
  pad[0] = 0x80;
  std::uint8_t len_be[8];
  PutU64(len_be, bit_len);
  Update(ByteSpan(pad, pad_len));
  Update(ByteSpan(len_be, 8));

  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  Reset();
  return digest;
}

Sha256Digest Sha256::Hash(ByteSpan data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

Bytes Sha256::HashToBytes(ByteSpan data) {
  Sha256Digest d = Hash(data);
  return Bytes(d.begin(), d.end());
}

}  // namespace reed::crypto
