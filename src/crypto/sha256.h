// SHA-256 (FIPS 180-4), implemented from scratch.
//
// SHA-256 is REED's workhorse hash: chunk fingerprints, CAONT hash keys
// (enhanced scheme), package tails (basic scheme), file-key derivation from
// key states, and the OPRF fingerprint hashing all use it. Two backends are
// compiled: a portable one and an Intel SHA-NI one selected at runtime.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace reed::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

// Incremental SHA-256. Update() may be called any number of times.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(ByteSpan data);
  [[nodiscard]] Sha256Digest Finish();

  // One-shot convenience.
  [[nodiscard]] static Sha256Digest Hash(ByteSpan data);
  [[nodiscard]] static Bytes HashToBytes(ByteSpan data);

  // True when the runtime-dispatched backend uses the SHA-NI instructions.
  [[nodiscard]] static bool UsingHardware();

 private:
  void ProcessBlocks(const std::uint8_t* data, std::size_t num_blocks);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, kSha256BlockSize> buffer_;
  std::size_t buffer_len_ = 0;
};

}  // namespace reed::crypto
