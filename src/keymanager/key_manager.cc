#include "keymanager/key_manager.h"

#include <chrono>

#include "obs/metrics.h"
#include "util/fault_inject.h"

namespace reed::keymanager {
namespace {

// Process-wide OPRF serving metrics: batch count, signatures issued,
// rate-limit rejections, and per-batch signing latency. The per-signature
// cost is sign_us / signatures.
struct OprfServerMetrics {
  obs::Counter* batches;
  obs::Counter* signatures;
  obs::Counter* rejected;
  obs::Histogram* sign_us;
};

OprfServerMetrics& Metrics() {
  auto& reg = obs::Registry::Global();
  static OprfServerMetrics m{&reg.GetCounter("oprf.server.batches"),
                             &reg.GetCounter("oprf.server.signatures"),
                             &reg.GetCounter("oprf.server.rejected"),
                             &reg.GetHistogram("oprf.server.sign_us")};
  return m;
}

}  // namespace

KeyManager::KeyManager(const Options& options, crypto::Rng& rng)
    : KeyManager(rsa::GenerateKeyPair(options.rsa_bits, rng), options) {}

KeyManager::KeyManager(rsa::RsaKeyPair keys, const Options& options)
    : options_(options),
      server_(std::move(keys.priv)),
      epoch_(std::chrono::steady_clock::now()) {}

std::vector<BigInt> KeyManager::SignBatch(const std::string& client_id,
                                          const std::vector<BigInt>& blinded) {
  REED_FAULT_POINT("keymanager.sign_batch");
  if (options_.rate_limit_per_sec > 0) {
    TokenBucket* bucket;
    {
      MutexLock lock(mu_);
      auto& slot = buckets_[client_id];
      if (!slot) {
        slot = std::make_unique<TokenBucket>(options_.rate_limit_per_sec,
                                             options_.rate_limit_burst);
      }
      bucket = slot.get();
    }
    double now = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - epoch_)
                     .count();
    if (!bucket->TryAcquire(now, static_cast<double>(blinded.size()))) {
      MutexLock lock(mu_);
      ++stats_.rejected;
      Metrics().rejected->Increment();
      throw RateLimitedError("KeyManager: client " + client_id +
                             " exceeded its key-generation budget");
    }
  }

  std::vector<BigInt> signatures;
  signatures.reserve(blinded.size());
  {
    obs::ScopedTimer sign_timer(*Metrics().sign_us);
    for (const BigInt& b : blinded) {
      signatures.push_back(server_.Sign(b));
    }
  }
  {
    MutexLock lock(mu_);
    ++stats_.batches;
    stats_.signatures += signatures.size();
  }
  Metrics().batches->Increment();
  Metrics().signatures->Add(signatures.size());
  return signatures;
}

KeyManager::Stats KeyManager::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

Bytes KeyManager::EncodeRequest(const std::string& client_id,
                                const std::vector<BigInt>& blinded,
                                std::size_t modulus_bytes) {
  net::Writer w;
  w.Str(client_id);
  w.U32(static_cast<std::uint32_t>(blinded.size()));
  for (const BigInt& b : blinded) {
    w.Raw(b.ToBytesPadded(modulus_bytes));
  }
  return w.Take();
}

Bytes KeyManager::HandleRequest(ByteSpan request) {
  std::size_t nbytes = server_.public_key().ByteLength();
  net::Writer resp;
  try {
    net::Reader r(request);
    std::string client_id = r.Str();
    std::uint32_t count = r.U32();
    if (static_cast<std::uint64_t>(count) * nbytes > r.remaining()) {
      throw KeyManagerError("batch count exceeds payload");
    }
    std::vector<BigInt> blinded;
    blinded.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      blinded.push_back(BigInt::FromBytes(r.Raw(nbytes)));
    }
    r.ExpectEnd();

    std::vector<BigInt> sigs = SignBatch(client_id, blinded);
    resp.U8(0);
    for (const BigInt& s : sigs) resp.Raw(s.ToBytesPadded(nbytes));
    return resp.Take();
  } catch (const RateLimitedError& e) {
    resp.U8(1);
    resp.Str(e.what());
    return resp.Take();
  } catch (const Error& e) {
    resp.U8(2);
    resp.Str(e.what());
    return resp.Take();
  }
}

std::vector<BigInt> KeyManager::DecodeResponse(ByteSpan response,
                                               std::size_t modulus_bytes,
                                               std::size_t expected_count) {
  net::Reader r(response);
  std::uint8_t status = r.U8();
  if (status == 1) {
    throw RateLimitedError("KeyManager: rate limited: " + r.Str());
  }
  if (status != 0) {
    throw KeyManagerError("KeyManager: request rejected: " + r.Str());
  }
  std::vector<BigInt> sigs;
  sigs.reserve(expected_count);
  for (std::size_t i = 0; i < expected_count; ++i) {
    sigs.push_back(BigInt::FromBytes(r.Raw(modulus_bytes)));
  }
  r.ExpectEnd();
  return sigs;
}

}  // namespace reed::keymanager
