// The REED key manager (paper §III-A, §V "Key manager").
//
// A dedicated, fully trusted service holding the system-wide RSA key pair.
// Clients send *batches* of blinded chunk fingerprints (batching amortizes
// round trips — Fig. 5(b)); the manager answers with blind signatures,
// rate-limited per client identity to blunt online brute-force attacks.
// The manager never learns fingerprints (OPRF obliviousness) and never
// stores anything per chunk.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "rsa/blind_signature.h"
#include "util/rate_limiter.h"
#include "util/thread_annotations.h"

namespace reed::keymanager {

using bigint::BigInt;

// Typed error for the key-management layer: malformed batches, rejected
// requests, replica exhaustion. Deriving from reed::Error keeps existing
// `catch (const Error&)` sites working while letting clients discriminate
// key-manager failures (possibly retryable against another replica) from
// storage or wire ones.
class KeyManagerError : public Error {
 public:
  using Error::Error;
};

class RateLimitedError : public KeyManagerError {
 public:
  using KeyManagerError::KeyManagerError;
};

class KeyManager {
 public:
  struct Options {
    std::size_t rsa_bits = 1024;  // paper §V: 1024-bit RSA
    // Per-client request budget; <= 0 disables rate limiting. The unit is
    // per-chunk key-generation requests (not batches).
    double rate_limit_per_sec = 0;
    double rate_limit_burst = 0;
  };

  // Generates the system-wide key pair at construction.
  KeyManager(const Options& options, crypto::Rng& rng);
  // Adopts an existing key pair (e.g. restored from the key store).
  KeyManager(rsa::RsaKeyPair keys, const Options& options);

  const rsa::RsaPublicKey& public_key() const { return server_.public_key(); }
  const Options& options() const { return options_; }

  // Signs a batch of blinded fingerprints for `client_id`. Throws
  // RateLimitedError when the client exceeds its budget.
  [[nodiscard]] std::vector<BigInt> SignBatch(const std::string& client_id,
                                const std::vector<BigInt>& blinded);

  // Wire entry point: parses a request frame, answers with a response
  // frame. Status byte 0 = OK, 1 = rate limited, 2 = malformed.
  [[nodiscard]] Bytes HandleRequest(ByteSpan request);

  struct Stats {
    std::uint64_t batches = 0;
    std::uint64_t signatures = 0;
    std::uint64_t rejected = 0;
  };
  [[nodiscard]] Stats stats() const;

  // --- wire helpers shared with the client side ---
  [[nodiscard]] static Bytes EncodeRequest(const std::string& client_id,
                                           const std::vector<BigInt>& blinded,
                                           std::size_t modulus_bytes);
  [[nodiscard]] static std::vector<BigInt> DecodeResponse(
      ByteSpan response, std::size_t modulus_bytes,
      std::size_t expected_count);

 private:
  Options options_;
  rsa::BlindSignatureServer server_;
  mutable Mutex mu_{LockRank::kKeyManagerState};
  // Bucket pointers are stable once created (values are unique_ptrs that
  // are never erased), so SignBatch may rate-limit outside the lock.
  std::unordered_map<std::string, std::unique_ptr<TokenBucket>> buckets_
      REED_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point epoch_;
  Stats stats_ REED_GUARDED_BY(mu_);
};

}  // namespace reed::keymanager
