#include "keymanager/mle_key_client.h"

#include "obs/metrics.h"
#include "util/fault_inject.h"

namespace reed::keymanager {

namespace {
// LRU accounting charge per cached key: fingerprint + key + node overhead.
constexpr std::size_t kCacheEntryCost = 32 + 32 + 64;

// Process-wide mirrors of the per-instance Stats, plus OPRF batch
// round-trip latency (blind -> sign -> unblind excluded; this is the wire
// call only). Counters batch their adds per GetKeys call, never per chunk.
struct OprfClientMetrics {
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* batches;
  obs::Counter* failovers;
  obs::Counter* swallowed_failovers;
  obs::Histogram* roundtrip_us;
};

OprfClientMetrics& Metrics() {
  auto& reg = obs::Registry::Global();
  static OprfClientMetrics m{
      &reg.GetCounter("oprf.client.cache_hits"),
      &reg.GetCounter("oprf.client.cache_misses"),
      &reg.GetCounter("oprf.client.batches"),
      &reg.GetCounter("oprf.client.failovers"),
      &reg.GetCounter("errors.swallowed.oprf_failover"),
      &reg.GetHistogram("oprf.client.roundtrip_us")};
  return m;
}
}  // namespace

MleKeyClient::MleKeyClient(std::string client_id,
                           rsa::RsaPublicKey manager_key,
                           std::shared_ptr<net::RpcChannel> channel,
                           const Options& options)
    : MleKeyClient(std::move(client_id), std::move(manager_key),
                   std::vector<std::shared_ptr<net::RpcChannel>>{
                       std::move(channel)},
                   options) {}

MleKeyClient::MleKeyClient(
    std::string client_id, rsa::RsaPublicKey manager_key,
    std::vector<std::shared_ptr<net::RpcChannel>> replicas,
    const Options& options)
    : client_id_(std::move(client_id)),
      blind_client_(std::move(manager_key)),
      replicas_(std::move(replicas)),
      options_(options),
      cache_(options.enable_cache ? options.key_cache_bytes : 0,
             kCacheEntryCost) {
  if (options_.batch_size == 0) {
    throw KeyManagerError("MleKeyClient: batch size must be positive");
  }
  if (replicas_.empty()) {
    throw KeyManagerError("MleKeyClient: need at least one key-manager replica");
  }
}

Bytes MleKeyClient::CallWithFailover(ByteSpan request) {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    try {
      return replicas_[i]->Call(request);
    } catch (const Error&) {
      // Transport-level failure: the next replica holds the same keys.
      // (Application-level rejections arrive as status frames, not
      // exceptions, so they are never retried here.) The last replica's
      // failure rethrows — only the masked intermediate failures are
      // swallowed, and each one is counted.
      if (i + 1 == replicas_.size()) throw;
      ++stats_.failovers;
      Metrics().failovers->Increment();
      Metrics().swallowed_failovers->Increment();
    }
  }
  throw KeyManagerError("MleKeyClient: unreachable");
}

std::vector<Secret> MleKeyClient::GetKeys(
    const std::vector<chunk::Fingerprint>& fps, crypto::Rng& rng) {
  REED_FAULT_POINT("keymanager.get_keys");
  std::vector<Secret> keys(fps.size());
  std::vector<std::size_t> missing;
  missing.reserve(fps.size());

  if (options_.enable_cache) {
    for (std::size_t i = 0; i < fps.size(); ++i) {
      if (auto hit = cache_.Get(fps[i])) {
        keys[i] = std::move(*hit);
        ++stats_.cache_hits;
      } else {
        missing.push_back(i);
        ++stats_.cache_misses;
      }
    }
  } else {
    for (std::size_t i = 0; i < fps.size(); ++i) missing.push_back(i);
    stats_.cache_misses += missing.size();
  }
  Metrics().cache_hits->Add(fps.size() - missing.size());
  Metrics().cache_misses->Add(missing.size());

  std::size_t modulus_bytes = blind_client_.manager_key().ByteLength();
  for (std::size_t start = 0; start < missing.size();
       start += options_.batch_size) {
    std::size_t end = std::min(missing.size(), start + options_.batch_size);

    std::vector<rsa::BlindedRequest> requests;
    std::vector<BigInt> blinded;
    requests.reserve(end - start);
    blinded.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) {
      requests.push_back(blind_client_.Blind(fps[missing[i]].AsSpan(), rng));
      blinded.push_back(requests.back().blinded);
    }

    Bytes request = KeyManager::EncodeRequest(client_id_, blinded, modulus_bytes);
    obs::ScopedTimer rpc_timer(*Metrics().roundtrip_us);
    Bytes response = CallWithFailover(request);
    (void)rpc_timer.Stop();
    std::vector<BigInt> sigs =
        KeyManager::DecodeResponse(response, modulus_bytes, blinded.size());
    ++stats_.batches_sent;
    Metrics().batches->Increment();

    for (std::size_t i = start; i < end; ++i) {
      Secret key = blind_client_.Unblind(requests[i - start], sigs[i - start]);
      if (options_.enable_cache) cache_.Put(fps[missing[i]], key);
      keys[missing[i]] = std::move(key);
    }
  }
  return keys;
}

Secret MleKeyClient::GetKey(const chunk::Fingerprint& fp, crypto::Rng& rng) {
  return GetKeys({fp}, rng).front();
}

void MleKeyClient::ClearCache() { cache_.Clear(); }

}  // namespace reed::keymanager
