// Client-side MLE key acquisition (paper §V "Key manager" + §V-B
// optimizations): blinds fingerprints, batches requests (default 256
// per-chunk requests per round trip), and caches keys in a byte-budgeted
// LRU (default 512 MB) keyed by fingerprint.
//
// Adjacent backup uploads share most chunks, so the cache turns repeat
// uploads from key-manager-bound into network-bound — the effect Fig. 7
// measures.
#pragma once

#include <memory>

#include "chunk/fingerprint.h"
#include "keymanager/key_manager.h"
#include "net/rpc.h"
#include "rsa/blind_signature.h"
#include "util/lru_cache.h"
#include "util/secret.h"

namespace reed::keymanager {

class MleKeyClient {
 public:
  struct Options {
    std::size_t batch_size = 256;           // per-chunk requests per batch
    std::size_t key_cache_bytes = 512u << 20;  // 512 MB (paper §V-B)
    bool enable_cache = true;
  };

  MleKeyClient(std::string client_id, rsa::RsaPublicKey manager_key,
               std::shared_ptr<net::RpcChannel> channel,
               const Options& options);

  // Replicated key managers for availability (paper §III-A: "our design
  // can be generalized for multiple key managers"). All replicas hold the
  // same system-wide key pair, so any of them produces identical MLE keys;
  // the client fails over in order when a replica is unreachable.
  MleKeyClient(std::string client_id, rsa::RsaPublicKey manager_key,
               std::vector<std::shared_ptr<net::RpcChannel>> replicas,
               const Options& options);

  // Returns one 32-byte MLE key per fingerprint, in order. Cache hits are
  // served locally; misses are blinded and batched to the key manager.
  // Keys are Secret end to end: they are never uploaded or logged (paper
  // §IV-D — decryption needs only trimmed package + stub).
  [[nodiscard]] std::vector<Secret> GetKeys(const std::vector<chunk::Fingerprint>& fps,
                              crypto::Rng& rng);

  [[nodiscard]] Secret GetKey(const chunk::Fingerprint& fp, crypto::Rng& rng);

  // Clears the key cache (the trace experiment resets it between users).
  void ClearCache();

  struct Stats {
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t batches_sent = 0;
    std::uint64_t failovers = 0;
  };
  [[nodiscard]] Stats stats() const { return stats_; }

 private:
  // Calls the first healthy replica; throws only when all fail (or the
  // request is rejected for a non-transport reason, e.g. rate limiting).
  [[nodiscard]] Bytes CallWithFailover(ByteSpan request);

  std::string client_id_;
  rsa::BlindSignatureClient blind_client_;
  std::vector<std::shared_ptr<net::RpcChannel>> replicas_;
  Options options_;
  // Entry cost: 32-byte fingerprint key + 32-byte MLE key + bookkeeping.
  // Secret values wipe themselves on LRU eviction.
  LruCache<chunk::Fingerprint, Secret, chunk::FingerprintHash> cache_;
  Stats stats_;
};

}  // namespace reed::keymanager
