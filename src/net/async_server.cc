#include "net/async_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/wire.h"

namespace reed::net {

namespace {

// epoll_event.data.u64 sentinels; connection ids start above them.
constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kEventId = 1;
constexpr std::uint64_t kFirstConnId = 2;

[[noreturn]] void ThrowErrno(const char* what) {
  throw NetError(std::string(what) + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    ThrowErrno("AsyncServer: fcntl(O_NONBLOCK)");
  }
}

obs::Gauge& ActiveConnsGauge() {
  static obs::Gauge* g =
      &obs::Registry::Global().GetGauge("server.net.active_conns");
  return *g;
}

obs::Gauge& OutboxBytesGauge() {
  static obs::Gauge* g =
      &obs::Registry::Global().GetGauge("server.net.outbox_bytes");
  return *g;
}

obs::Counter& NamedCounter(const char* name) {
  return obs::Registry::Global().GetCounter(name);
}

}  // namespace

Bytes AsyncServer::WrapTenant(std::uint32_t tenant_id, ByteSpan frame) {
  Bytes out;
  out.reserve(5 + frame.size());
  out.push_back(kTenantTag);
  AppendU32(out, tenant_id);
  Append(out, frame);
  return out;
}

AsyncServer::AsyncServer(std::uint16_t port, LocalChannel::Handler handler)
    : AsyncServer(port, std::move(handler), Options()) {}

AsyncServer::AsyncServer(std::uint16_t port, LocalChannel::Handler handler,
                         Options options)
    : handler_(std::move(handler)),
      options_(options),
      listener_(std::make_unique<TcpListener>(port, options.listen_backlog)),
      port_(listener_->port()),
      pool_(std::make_unique<ThreadPool>(options.workers)),
      next_conn_id_(kFirstConnId),
      start_time_(std::chrono::steady_clock::now()) {
  if (options_.loops == 0) options_.loops = 1;
  SetNonBlocking(listener_->fd());
  for (std::size_t i = 0; i < options_.loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epoll_fd < 0) ThrowErrno("AsyncServer: epoll_create1");
    loop->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->event_fd < 0) {
      int saved = errno;
      ::close(loop->epoll_fd);
      errno = saved;
      ThrowErrno("AsyncServer: eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kEventId;
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &ev) != 0) {
      int saved = errno;
      ::close(loop->event_fd);
      ::close(loop->epoll_fd);
      errno = saved;
      ThrowErrno("AsyncServer: epoll_ctl(eventfd)");
    }
    if (i == 0) {
      // Only loop 0 watches the listener; it shards accepted fds out.
      epoll_event lev{};
      lev.events = EPOLLIN | EPOLLET;
      lev.data.u64 = kListenerId;
      if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listener_->fd(), &lev) !=
          0) {
        int saved = errno;
        ::close(loop->event_fd);
        ::close(loop->epoll_fd);
        errno = saved;
        ThrowErrno("AsyncServer: epoll_ctl(listener)");
      }
    }
    loop->last_idle_sweep = start_time_;
    loops_.push_back(std::move(loop));
  }
  // Loops destroyed above on a constructor throw have no threads yet; from
  // here the destructor owns teardown.
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread([this, i] { RunLoop(i); });
  }
}

AsyncServer::~AsyncServer() {
  stopping_.store(true);
  for (auto& loop : loops_) WakeLoop(*loop);
  Wait();
  // Workers may still be finishing dispatched handlers; they push
  // completions (dropped — the loops are gone) and write the eventfds, so
  // the pool must drain before any fd below closes.
  pool_.reset();
  for (auto& loop : loops_) {
    if (loop->event_fd >= 0) ::close(loop->event_fd);
    if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
  }
}

void AsyncServer::Wait() {
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
}

void AsyncServer::Adopt(int fd) {
  AdoptIntoLoop(next_loop_.fetch_add(1) % loops_.size(), fd);
}

void AsyncServer::AdoptIntoLoop(std::size_t index, int fd) {
  Loop& loop = *loops_[index];
  {
    MutexLock lock(loop.mu);
    loop.incoming_fds.push_back(fd);
  }
  WakeLoop(loop);
}

void AsyncServer::WakeLoop(Loop& loop) {
  std::uint64_t one = 1;
  ssize_t r;
  do {
    r = ::write(loop.event_fd, &one, sizeof(one));
  } while (r < 0 && errno == EINTR);
  // EAGAIN means the counter is saturated — the loop is already waking.
}

double AsyncServer::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_time_)
      .count();
}

void AsyncServer::RunLoop(std::size_t index) {
  Loop& loop = *loops_[index];
  std::array<epoll_event, 64> events;
  // Audited swallow (tools/lint/failpath_allowlist.txt): a connection-level
  // Error (read/write/dispatch failure, oversized frame, outbox overflow, or
  // an armed net.async.* fault) has no caller to rethrow to on an event
  // loop — closing the connection IS the handling, and the drop stays
  // observable through errors.swallowed.net_async_conn.
  static obs::Counter* conn_swallowed =
      &NamedCounter("errors.swallowed.net_async_conn");
  while (!stopping_.load()) {
    int timeout_ms = -1;
    if (options_.idle_timeout.count() > 0) {
      timeout_ms = static_cast<int>(std::clamp<std::int64_t>(
          options_.idle_timeout.count() / 2, 1, 50));
    }
    int n = ::epoll_wait(loop.epoll_fd, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      NamedCounter("errors.swallowed.net_async_loop").Increment();
      break;
    }
    ProcessIncoming(loop);
    for (int i = 0; i < n; ++i) {
      std::uint64_t id = events[i].data.u64;
      if (id == kEventId) {
        std::uint64_t drained;
        while (::read(loop.event_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (id == kListenerId) {
        HandleAccept(loop);
        continue;
      }
      auto it = loop.conns.find(id);
      if (it == loop.conns.end()) continue;
      Conn& conn = *it->second;
      try {
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          CloseConn(loop, conn);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) DrainReadable(loop, conn);
        if ((events[i].events & EPOLLOUT) != 0) FlushOutbox(loop, conn);
      } catch (const Error&) {
        conn_swallowed->Increment();
        CloseConn(loop, conn);
      }
    }
    ProcessCompletions(loop);
    if (options_.idle_timeout.count() > 0) SweepIdle(loop);
    for (std::uint64_t id : loop.dead) loop.conns.erase(id);
    loop.dead.clear();
  }
  // Teardown: close every connection so active_conns / outbox_bytes drain
  // even when clients are still attached.
  for (auto& [id, conn] : loop.conns) CloseConn(loop, *conn);
  loop.conns.clear();
  loop.dead.clear();
}

void AsyncServer::HandleAccept(Loop& loop) {
  static obs::Counter* accepted = &NamedCounter("server.net.conns_accepted");
  // Satellite of the accept-loop hygiene pass: accept failures on the async
  // path are counted, mirroring TcpServer's errors.swallowed.net_accept.
  static obs::Counter* accept_errors =
      &NamedCounter("errors.swallowed.net_async_accept");
  for (;;) {
    int fd = ::accept4(listener_->fd(), nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (!stopping_.load()) accept_errors->Increment();
      return;
    }
    accepted->Increment();
    std::size_t target = next_loop_.fetch_add(1) % loops_.size();
    if (loops_[target].get() == &loop) {
      try {
        RegisterConn(loop, fd);
      } catch (const Error&) {
        accept_errors->Increment();
        ::close(fd);
      }
    } else {
      AdoptIntoLoop(target, fd);
    }
  }
}

void AsyncServer::ProcessIncoming(Loop& loop) {
  static obs::Counter* accept_errors =
      &NamedCounter("errors.swallowed.net_async_accept");
  std::vector<int> fds;
  {
    MutexLock lock(loop.mu);
    fds.swap(loop.incoming_fds);
  }
  for (int fd : fds) {
    try {
      RegisterConn(loop, fd);
    } catch (const Error&) {
      accept_errors->Increment();
      ::close(fd);
    }
  }
}

void AsyncServer::RegisterConn(Loop& loop, int fd) {
  REED_FAULT_POINT("net.async.accept");
  SetNonBlocking(fd);
  int one = 1;
  // Best effort: fails harmlessly for non-TCP fds (socketpair tests).
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::uint64_t id = next_conn_id_.fetch_add(1);
  auto conn = std::make_unique<Conn>(fd, id, ActiveConnsGauge());
  conn->last_activity = std::chrono::steady_clock::now();
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = id;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ThrowErrno("AsyncServer: epoll_ctl(conn)");
  }
  loop.conns.emplace(id, std::move(conn));
}

void AsyncServer::DrainReadable(Loop& loop, Conn& conn) {
  if (conn.closed) return;
  REED_FAULT_POINT("net.async.read");
  std::uint8_t buf[65536];
  for (;;) {
    ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.inbox.insert(conn.inbox.end(), buf, buf + n);
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n == 0) {
      conn.read_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    ThrowErrno("AsyncServer: read");
  }
  ParseFrames(loop, conn);
  MaybeClose(loop, conn);
}

void AsyncServer::ParseFrames(Loop& loop, Conn& conn) {
  std::size_t off = 0;
  while (!conn.closed && conn.inbox.size() - off >= 4) {
    std::uint32_t len = GetU32(ByteSpan(conn.inbox).subspan(off));
    if (len > options_.max_frame_len) {
      NamedCounter("server.net.frame_oversize").Increment();
      throw NetError("AsyncServer: frame too large");
    }
    if (conn.inbox.size() - off - 4 < len) break;
    conn.pending.emplace_back(conn.inbox.begin() + off + 4,
                              conn.inbox.begin() + off + 4 + len);
    off += 4 + len;
  }
  if (off > 0) {
    conn.inbox.erase(conn.inbox.begin(), conn.inbox.begin() + off);
  }
  MaybeDispatch(loop, conn);
}

void AsyncServer::MaybeDispatch(Loop& loop, Conn& conn) {
  static obs::Counter* dispatched = &NamedCounter("server.net.frames_dispatched");
  static obs::Counter* throttled = &NamedCounter("server.net.throttled");
  while (!conn.closed && !conn.dispatch_inflight && !conn.pending.empty()) {
    Bytes frame = std::move(conn.pending.front());
    conn.pending.pop_front();
    std::uint32_t tenant = 0;
    std::size_t inner_off = 0;
    if (frame.size() >= 5 && frame[0] == kTenantTag) {
      tenant = GetU32(ByteSpan(frame).subspan(1));
      inner_off = 5;
    }
    if (!AdmitTenant(tenant)) {
      // Answer in the inner protocol's own error shape so any client that
      // understands status-byte responses sees a typed failure.
      throttled->Increment();
      Writer err;
      err.U8(1);
      err.Str("throttled: tenant " + std::to_string(tenant) +
              " over admission rate");
      EnqueueResponse(loop, conn, err.bytes());
      continue;
    }
    REED_FAULT_POINT("net.async.dispatch");
    dispatched->Increment();
    conn.dispatch_inflight = true;
    Loop* owner = &loop;
    std::uint64_t conn_id = conn.id;
    conn.inflight = pool_->Submit(
        [this, owner, conn_id, frame = std::move(frame), inner_off] {
          Bytes response;
          try {
            response = handler_(ByteSpan(frame).subspan(inner_off));
          } catch (const Error& e) {
            Writer err;
            err.U8(1);
            err.Str(e.what());
            response = err.Take();
          }
          {
            MutexLock lock(owner->mu);
            owner->completions.push_back({conn_id, std::move(response)});
          }
          WakeLoop(*owner);
        });
  }
}

bool AsyncServer::AdmitTenant(std::uint32_t tenant_id) {
  if (options_.tenant_rate_per_sec <= 0) return true;
  TokenBucket* bucket = nullptr;
  {
    MutexLock lock(tenant_mu_);
    auto it = tenants_.find(tenant_id);
    if (it == tenants_.end()) {
      double burst = options_.tenant_burst > 0 ? options_.tenant_burst
                                               : options_.tenant_rate_per_sec;
      it = tenants_
               .emplace(tenant_id, std::make_unique<TokenBucket>(
                                       options_.tenant_rate_per_sec, burst))
               .first;
    }
    bucket = it->second.get();
  }
  // The bucket's own lock ranks below kNetTenantMap, so tenant_mu_ must be
  // released before TryAcquire; the node-based map keeps `bucket` stable.
  return bucket->TryAcquire(NowSeconds());
}

void AsyncServer::ProcessCompletions(Loop& loop) {
  static obs::Counter* conn_swallowed =
      &NamedCounter("errors.swallowed.net_async_conn");
  std::vector<Completion> batch;
  {
    MutexLock lock(loop.mu);
    batch.swap(loop.completions);
  }
  for (Completion& c : batch) {
    auto it = loop.conns.find(c.conn_id);
    if (it == loop.conns.end()) continue;
    Conn& conn = *it->second;
    if (conn.closed) continue;
    conn.dispatch_inflight = false;
    // The worker pushed this completion as its final statement; get() only
    // waits for the packaged_task wrapper to mark the future ready (and
    // would rethrow a non-Error escape instead of dropping it).
    if (conn.inflight.valid()) conn.inflight.get();
    conn.last_activity = std::chrono::steady_clock::now();
    try {
      EnqueueResponse(loop, conn, ByteSpan(c.response));
      MaybeDispatch(loop, conn);
      MaybeClose(loop, conn);
    } catch (const Error&) {
      conn_swallowed->Increment();
      CloseConn(loop, conn);
    }
  }
}

void AsyncServer::EnqueueResponse(Loop& loop, Conn& conn, ByteSpan frame) {
  if (conn.closed) return;
  std::size_t queued = conn.outbox.size() - conn.outbox_off;
  if (queued + 4 + frame.size() > options_.max_outbox_bytes) {
    NamedCounter("server.net.outbox_overflow").Increment();
    throw NetError("AsyncServer: outbox overflow (peer not reading)");
  }
  std::uint8_t len[4];
  Writer::CheckBlobSize(frame.size());
  PutU32(len, static_cast<std::uint32_t>(frame.size()));
  conn.outbox.insert(conn.outbox.end(), len, len + 4);
  conn.outbox.insert(conn.outbox.end(), frame.begin(), frame.end());
  OutboxBytesGauge().Add(static_cast<std::int64_t>(4 + frame.size()));
  FlushOutbox(loop, conn);
}

void AsyncServer::FlushOutbox(Loop& loop, Conn& conn) {
  if (conn.closed) return;
  if (conn.outbox_off >= conn.outbox.size()) return;
  REED_FAULT_POINT("net.async.write");
  while (conn.outbox_off < conn.outbox.size()) {
    // MSG_NOSIGNAL: a client that vanished mid-response must come back as
    // EPIPE (-> conn close below), not a process-wide SIGPIPE.
    ssize_t n = ::send(conn.fd, conn.outbox.data() + conn.outbox_off,
                       conn.outbox.size() - conn.outbox_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbox_off += static_cast<std::size_t>(n);
      OutboxBytesGauge().Add(-n);
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
        ev.data.u64 = conn.id;
        if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) != 0) {
          ThrowErrno("AsyncServer: epoll_ctl(arm EPOLLOUT)");
        }
      }
      return;
    }
    ThrowErrno("AsyncServer: write");
  }
  conn.outbox.clear();
  conn.outbox_off = 0;
  if (conn.want_write) {
    conn.want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.u64 = conn.id;
    if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) != 0) {
      ThrowErrno("AsyncServer: epoll_ctl(disarm EPOLLOUT)");
    }
  }
  MaybeClose(loop, conn);
}

void AsyncServer::MaybeClose(Loop& loop, Conn& conn) {
  if (conn.closed || !conn.read_eof) return;
  // Close-after-drain: the peer half-closed, so finish any queued work and
  // flush the remaining responses before tearing down.
  if (conn.dispatch_inflight || !conn.pending.empty()) return;
  if (conn.outbox_off < conn.outbox.size()) return;
  CloseConn(loop, conn);
}

void AsyncServer::CloseConn(Loop& loop, Conn& conn) {
  if (conn.closed) return;
  conn.closed = true;
  std::size_t unflushed = conn.outbox.size() - conn.outbox_off;
  if (unflushed > 0) {
    OutboxBytesGauge().Add(-static_cast<std::int64_t>(unflushed));
  }
  ::close(conn.fd);  // also deregisters from epoll
  conn.fd = -1;
  conn.active_guard.Release();
  loop.dead.push_back(conn.id);
}

void AsyncServer::SweepIdle(Loop& loop) {
  auto now = std::chrono::steady_clock::now();
  if (now - loop.last_idle_sweep < options_.idle_timeout / 2) return;
  loop.last_idle_sweep = now;
  static obs::Counter* idle_closed = &NamedCounter("server.net.idle_closed");
  for (auto& [id, conn] : loop.conns) {
    if (conn->closed || conn->dispatch_inflight) continue;
    if (now - conn->last_activity >= options_.idle_timeout) {
      idle_closed->Increment();
      CloseConn(loop, *conn);
    }
  }
}

}  // namespace reed::net
