// Epoll-based async RPC front end: the massive-client alternative to
// TcpServer's thread-per-connection model (DESIGN.md §13).
//
// N event-loop threads each own an epoll instance; accepted fds are sharded
// across loops round-robin and every per-connection structure is touched by
// exactly one loop thread (loop-confined state — no per-connection locks).
// Edge-triggered readiness drives non-blocking reads into a per-connection
// frame-reassembly buffer; complete u32-length-prefixed frames (the same
// wire format TcpTransport speaks) are dispatched one at a time per
// connection onto the shared ThreadPool, so `StorageServer::HandleRequest`
// never runs on — and never blocks — an event loop. Responses come back to
// the owning loop through a completion queue + eventfd wakeup and drain
// through a bounded per-connection outbox (backpressure: a peer that stops
// reading accumulates queued bytes until the cap closes it, instead of
// wedging a server thread in write()).
//
// Per-tenant admission: a request may be wrapped in a tenant envelope
// (`kTenantTag` byte + u32 tenant id + inner frame); bare frames are tenant
// 0, so existing clients keep working unchanged. When a rate is configured,
// each tenant's TokenBucket (util/rate_limiter.h) is consulted in the loop
// thread *before* dispatch; a denied request is answered immediately with
// the protocol's status-1 error frame ("throttled...") and never occupies a
// worker. The tenant->bucket map lock (kNetTenantMap) is released before
// TryAcquire takes the bucket's own kRateLimiter lock, keeping the rank
// order intact.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/rpc.h"
#include "obs/metrics.h"
#include "util/rate_limiter.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace reed::net {

class AsyncServer {
 public:
  // Optional per-request tenant envelope marker. 0xE7 collides with no
  // Opcode (they are 1..6), so a tagged first byte is unambiguous.
  static constexpr std::uint8_t kTenantTag = 0xE7;

  struct Options {
    std::size_t loops = 1;    // event-loop threads
    std::size_t workers = 4;  // handler ThreadPool threads
    // Claimed frame length above this closes the connection (mirrors
    // TcpTransport::Receive's 1 GiB cap).
    std::uint32_t max_frame_len = 1u << 30;
    // Backpressure: queued-but-unwritten response bytes per connection.
    std::size_t max_outbox_bytes = std::size_t{1} << 30;
    // Connections with no read/write progress for this long are closed;
    // zero disables the sweep.
    std::chrono::milliseconds idle_timeout{0};
    int listen_backlog = 0;  // <= 0 means SOMAXCONN
    // Per-tenant admission rate; <= 0 disables throttling entirely.
    double tenant_rate_per_sec = 0;
    double tenant_burst = 0;
  };

  // Binds 127.0.0.1:port (0 = ephemeral) and starts the loops immediately.
  AsyncServer(std::uint16_t port, LocalChannel::Handler handler);
  AsyncServer(std::uint16_t port, LocalChannel::Handler handler,
              Options options);

  // Stops the loops, closes every connection, joins everything.
  ~AsyncServer();

  AsyncServer(const AsyncServer&) = delete;
  AsyncServer& operator=(const AsyncServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  // Blocks until the loops exit (daemons call this from main()).
  void Wait();

  // Hands an already-connected fd (e.g. one end of a socketpair) to a loop.
  // The server takes ownership and serves frames on it exactly like an
  // accepted connection — the unit-test hook for driving the framing path
  // byte by byte.
  void Adopt(int fd);

  // Client-side helper: wrap `frame` in the tenant envelope.
  [[nodiscard]] static Bytes WrapTenant(std::uint32_t tenant_id,
                                        ByteSpan frame);

 private:
  // Loop-confined connection state: everything here is touched only by the
  // owning loop thread, so it needs no lock of its own.
  struct Conn {
    Conn(int fd_in, std::uint64_t id_in, obs::Gauge& active)
        : fd(fd_in), id(id_in), active_guard(active) {}
    int fd;
    std::uint64_t id;
    obs::GaugeGuard active_guard;  // server.net.active_conns
    Bytes inbox;                   // frame-reassembly buffer
    std::deque<Bytes> pending;     // complete frames awaiting dispatch
    bool dispatch_inflight = false;
    std::future<void> inflight;    // the worker task serving this conn
    Bytes outbox;                  // length-prefixed responses to write
    std::size_t outbox_off = 0;
    bool want_write = false;       // EPOLLOUT armed
    bool read_eof = false;
    bool closed = false;
    std::chrono::steady_clock::time_point last_activity;
  };
  struct Completion {
    std::uint64_t conn_id = 0;
    Bytes response;
  };
  struct Loop {
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    // Cross-thread inbox for this loop: new fds (acceptor shard handoff,
    // Adopt) and handler completions. The loop swaps these out under the
    // lock and processes them lock-free.
    Mutex mu{LockRank::kNetAsyncLoop};
    std::vector<int> incoming_fds REED_GUARDED_BY(mu);
    std::vector<Completion> completions REED_GUARDED_BY(mu);
    // Loop-thread-only from here down.
    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
    std::vector<std::uint64_t> dead;  // deferred erases within one wakeup
    std::chrono::steady_clock::time_point last_idle_sweep;
  };

  void RunLoop(std::size_t index);
  void HandleAccept(Loop& loop);
  void AdoptIntoLoop(std::size_t index, int fd);
  void RegisterConn(Loop& loop, int fd);
  void ProcessIncoming(Loop& loop);
  void ProcessCompletions(Loop& loop);
  void DrainReadable(Loop& loop, Conn& conn);
  void ParseFrames(Loop& loop, Conn& conn);
  void MaybeDispatch(Loop& loop, Conn& conn);
  void EnqueueResponse(Loop& loop, Conn& conn, ByteSpan frame);
  void FlushOutbox(Loop& loop, Conn& conn);
  void MaybeClose(Loop& loop, Conn& conn);
  void CloseConn(Loop& loop, Conn& conn);
  void SweepIdle(Loop& loop);
  void WakeLoop(Loop& loop);
  [[nodiscard]] bool AdmitTenant(std::uint32_t tenant_id);
  [[nodiscard]] double NowSeconds() const;

  LocalChannel::Handler handler_;
  Options options_;
  std::unique_ptr<TcpListener> listener_;
  std::uint16_t port_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::atomic<std::size_t> next_loop_{0};
  std::chrono::steady_clock::time_point start_time_;

  Mutex tenant_mu_{LockRank::kNetTenantMap};
  // Node-based map: bucket addresses are stable, so AdmitTenant can drop
  // tenant_mu_ before taking the bucket's own (lower-band) lock.
  std::map<std::uint32_t, std::unique_ptr<TokenBucket>> tenants_
      REED_GUARDED_BY(tenant_mu_);
};

}  // namespace reed::net
