#include "net/link.h"

#include <thread>

#include "util/fault_inject.h"

namespace reed::net {

void SimulatedLink::Transfer(std::uint64_t bytes) {
  REED_FAULT_POINT("net.link.transfer");
  {
    MutexLock lock(mu_);
    total_bytes_ += bytes;
  }
  if (bandwidth_bps_ <= 0) return;

  auto serialization = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(static_cast<double>(bytes) * 8.0 /
                                    bandwidth_bps_));
  Clock::time_point done;
  {
    MutexLock lock(mu_);
    Clock::time_point now = Clock::now();
    // Bandwidth is a shared resource: this transfer occupies the medium
    // after any in-flight one finishes.
    Clock::time_point start = std::max(now, link_free_);
    link_free_ = start + serialization;
    done = link_free_;
  }
  // Propagation latency overlaps between senders.
  done += std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(rtt_ / 2.0));
  std::this_thread::sleep_until(done);
}

}  // namespace reed::net
