// Simulated network link.
//
// The paper's evaluation ran on a 1 Gb/s LAN testbed whose bandwidth cap is
// what makes second uploads "network-bound" (Fig. 7). We reproduce that
// environment with a shared-medium link model: transfers serialize on the
// link's bandwidth (like frames through one switch port) while propagation
// latency overlaps across concurrent senders. Costs are paid by actually
// blocking the calling thread, so wall-clock bench measurements reflect the
// modeled network.
#pragma once

#include <chrono>
#include <cstdint>

#include "util/thread_annotations.h"

namespace reed::net {

class SimulatedLink {
 public:
  // bandwidth in bits/second; rtt in seconds. bandwidth == 0 disables the
  // model entirely (zero-cost transfers, useful for unit tests).
  SimulatedLink(double bandwidth_bps, double rtt_seconds)
      : bandwidth_bps_(bandwidth_bps), rtt_(rtt_seconds) {}

  static SimulatedLink Unlimited() { return SimulatedLink(0, 0); }
  // The paper's testbed: 1 Gb/s switch, LAN-scale latency.
  static SimulatedLink PaperLan() { return SimulatedLink(1e9, 150e-6); }

  // Blocks for the serialization + propagation delay of `bytes` crossing
  // the link once (one direction of a request or response).
  void Transfer(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t total_bytes() const {
    MutexLock lock(mu_);
    return total_bytes_;
  }

  [[nodiscard]] double bandwidth_bps() const { return bandwidth_bps_; }

 private:
  using Clock = std::chrono::steady_clock;

  double bandwidth_bps_;
  double rtt_;
  mutable Mutex mu_{LockRank::kNetLink};
  // When the shared medium frees up.
  Clock::time_point link_free_ REED_GUARDED_BY(mu_){};
  std::uint64_t total_bytes_ REED_GUARDED_BY(mu_) = 0;
};

}  // namespace reed::net
