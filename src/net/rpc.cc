#include "net/rpc.h"

#include <utility>

#include "obs/metrics.h"

namespace reed::net {

void ServeTransport(TcpTransport& transport,
                    const LocalChannel::Handler& handler) {
  // Audited swallow (tools/lint/failpath_allowlist.txt): a NetError here
  // means the peer closed, the transport was Shutdown() from another
  // thread, or the handler's own wire work failed — ending THIS session is
  // the whole recovery, and the serving thread has no caller to rethrow to.
  // The swallow is still observable: errors.swallowed.rpc_serve counts it.
  static obs::Counter* swallowed =
      &obs::Registry::Global().GetCounter("errors.swallowed.rpc_serve");
  for (;;) {
    try {
      Bytes request = transport.Receive();
      transport.Send(handler(request));
    } catch (const NetError&) {
      swallowed->Increment();
      return;  // peer closed, transport shut down, or handler net failure
    }
  }
}

void ServeTransport(TcpTransport&& transport,
                    const LocalChannel::Handler& handler) {
  TcpTransport owned = std::move(transport);
  ServeTransport(owned, handler);
}

}  // namespace reed::net
