#include "net/rpc.h"

#include <utility>

namespace reed::net {

void ServeTransport(TcpTransport& transport,
                    const LocalChannel::Handler& handler) {
  for (;;) {
    try {
      Bytes request = transport.Receive();
      transport.Send(handler(request));
    } catch (const NetError&) {
      return;  // peer closed, transport shut down, or handler net failure
    }
  }
}

void ServeTransport(TcpTransport&& transport,
                    const LocalChannel::Handler& handler) {
  TcpTransport owned = std::move(transport);
  ServeTransport(owned, handler);
}

}  // namespace reed::net
