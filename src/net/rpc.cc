#include "net/rpc.h"

namespace reed::net {

void ServeTransport(TcpTransport transport,
                    const LocalChannel::Handler& handler) {
  for (;;) {
    Bytes request;
    try {
      request = transport.Receive();
    } catch (const NetError&) {
      return;  // peer closed
    }
    transport.Send(handler(request));
  }
}

}  // namespace reed::net
