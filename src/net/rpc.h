// Minimal request/response channel abstraction.
//
// Every REED service (key manager, storage servers) exposes a
// HandleRequest(bytes) -> bytes entry point; clients reach it through an
// RpcChannel. Three implementations cover the deployment spectrum:
//   * LocalChannel      — direct call, zero cost (unit tests)
//   * SimulatedChannel  — direct call + SimulatedLink costs both ways
//                         (testbed-shaped benchmarks)
//   * TcpChannel        — frames over a real socket (deployment/example)
#pragma once

#include <functional>
#include <memory>

#include "util/thread_annotations.h"

#include "net/link.h"
#include "net/tcp.h"
#include "util/bytes.h"
#include "util/fault_inject.h"

namespace reed::net {

class RpcChannel {
 public:
  virtual ~RpcChannel() = default;
  [[nodiscard]] virtual Bytes Call(ByteSpan request) = 0;
};

// Wraps any handler function as a channel.
class LocalChannel : public RpcChannel {
 public:
  using Handler = std::function<Bytes(ByteSpan)>;
  explicit LocalChannel(Handler handler) : handler_(std::move(handler)) {}

  [[nodiscard]] Bytes Call(ByteSpan request) override {
    REED_FAULT_POINT("net.rpc.call");
    return handler_(request);
  }

 private:
  Handler handler_;
};

// Pays simulated network costs for the request and the response around a
// direct handler call.
class SimulatedChannel : public RpcChannel {
 public:
  SimulatedChannel(LocalChannel::Handler handler,
                   std::shared_ptr<SimulatedLink> link)
      : handler_(std::move(handler)), link_(std::move(link)) {}

  [[nodiscard]] Bytes Call(ByteSpan request) override {
    REED_FAULT_POINT("net.rpc.call");
    link_->Transfer(request.size());
    Bytes response = handler_(request);
    link_->Transfer(response.size());
    return response;
  }

 private:
  LocalChannel::Handler handler_;
  std::shared_ptr<SimulatedLink> link_;
};

// One frame out, one frame back, serialized per channel. The serialization
// lock is held across the blocking Send/Receive by design — that is what
// keeps a request/response exchange atomic per channel — so it is an
// IoSerialMutex: the one lock type whose guard the blocking-under-lock lint
// exempts, ranked as a leaf (kIoChannel) so the deadlock detector proves no
// other lock is ever acquired while a thread is parked on the wire.
class TcpChannel : public RpcChannel {
 public:
  explicit TcpChannel(TcpTransport transport) : transport_(std::move(transport)) {}

  [[nodiscard]] Bytes Call(ByteSpan request) override {
    IoSerialLock lock(mu_);
    transport_.Send(request);
    return transport_.Receive();
  }

 private:
  IoSerialMutex mu_;
  TcpTransport transport_ REED_GUARDED_BY(mu_);
};

// Serves a handler over an accepted TCP transport until the peer closes
// (or the transport is Shutdown() from another thread). Send failures and
// NetError from the handler end the session instead of escaping into the
// serving thread.
void ServeTransport(TcpTransport& transport,
                    const LocalChannel::Handler& handler);

// Owning convenience overload.
void ServeTransport(TcpTransport&& transport,
                    const LocalChannel::Handler& handler);

}  // namespace reed::net
