#include "net/stats_wire.h"

namespace reed::net {
namespace {

// Smallest possible wire size of one entry of each kind: a zero-length name
// (4 bytes of length prefix) plus the fixed integer fields. Used to reject
// forged counts before any reserve().
constexpr std::uint64_t kMinCounterBytes = 4 + 8;
constexpr std::uint64_t kMinGaugeBytes = 4 + 8;
constexpr std::uint64_t kMinHistogramBytes = 4 + 8 + 8 + 4;

std::uint32_t CheckedCount(Reader& r, std::uint64_t min_entry_bytes) {
  std::uint32_t n = r.U32();
  if (static_cast<std::uint64_t>(n) * min_entry_bytes > r.remaining()) {
    throw WireError("stats snapshot: entry count exceeds payload");
  }
  return n;
}

}  // namespace

void EncodeSnapshot(Writer& w, const obs::Snapshot& snapshot) {
  w.U32(static_cast<std::uint32_t>(snapshot.counters.size()));
  for (const auto& c : snapshot.counters) {
    w.Str(c.name);
    w.U64(c.value);
  }
  w.U32(static_cast<std::uint32_t>(snapshot.gauges.size()));
  for (const auto& g : snapshot.gauges) {
    w.Str(g.name);
    w.U64(static_cast<std::uint64_t>(g.value));
  }
  w.U32(static_cast<std::uint32_t>(snapshot.histograms.size()));
  for (const auto& h : snapshot.histograms) {
    w.Str(h.name);
    w.U64(h.count);
    w.U64(h.sum);
    w.U32(static_cast<std::uint32_t>(h.buckets.size()));
    for (std::uint64_t b : h.buckets) w.U64(b);
  }
}

obs::Snapshot DecodeSnapshot(Reader& r) {
  obs::Snapshot snap;
  std::uint32_t n_counters = CheckedCount(r, kMinCounterBytes);
  snap.counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    obs::Snapshot::CounterValue c;
    c.name = r.Str();
    c.value = r.U64();
    snap.counters.push_back(std::move(c));
  }
  std::uint32_t n_gauges = CheckedCount(r, kMinGaugeBytes);
  snap.gauges.reserve(n_gauges);
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    obs::Snapshot::GaugeValue g;
    g.name = r.Str();
    g.value = static_cast<std::int64_t>(r.U64());
    snap.gauges.push_back(std::move(g));
  }
  std::uint32_t n_hists = CheckedCount(r, kMinHistogramBytes);
  snap.histograms.reserve(n_hists);
  for (std::uint32_t i = 0; i < n_hists; ++i) {
    obs::Snapshot::HistogramValue h;
    h.name = r.Str();
    h.count = r.U64();
    h.sum = r.U64();
    std::uint32_t n_buckets = CheckedCount(r, 8);
    h.buckets.reserve(n_buckets);
    for (std::uint32_t b = 0; b < n_buckets; ++b) h.buckets.push_back(r.U64());
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

}  // namespace reed::net
