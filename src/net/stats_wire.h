// Wire encoding for obs::Snapshot — the payload of the storage server's
// kGetStats RPC. Lives in net (not obs) so obs stays a leaf the whole tree
// can depend on without pulling in the wire layer.
//
// Frame layout (all integers big-endian, names u32-length-prefixed):
//   u32 counter_count,   then per counter:   str name, u64 value
//   u32 gauge_count,     then per gauge:     str name, u64 value (2's compl.)
//   u32 histogram_count, then per histogram: str name, u64 count, u64 sum,
//                                            u32 bucket_count, u64 buckets[]
// Everything in a snapshot is public by construction (metric names and
// integer totals), so nothing here touches the Secret type wall.
#pragma once

#include "net/wire.h"
#include "obs/metrics.h"

namespace reed::net {

void EncodeSnapshot(Writer& w, const obs::Snapshot& snapshot);

// Reads one snapshot from the reader, leaving any bytes after it unread
// (callers frame-check with ExpectEnd). Throws Error on truncation or on
// forged counts that exceed the remaining payload.
[[nodiscard]] obs::Snapshot DecodeSnapshot(Reader& r);

}  // namespace reed::net
