#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace reed::net {

namespace {

[[noreturn]] void ThrowErrno(const char* what) {
  throw NetError(std::string(what) + ": " + std::strerror(errno));
}

void WriteAll(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that closed mid-exchange must surface as EPIPE
    // (-> NetError), not a process-wide SIGPIPE.
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("TcpTransport::Send");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

void ReadAll(int fd, std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = ::read(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("TcpTransport::Receive");
    }
    if (n == 0) throw NetError("TcpTransport::Receive: peer closed");
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

}  // namespace

TcpTransport::~TcpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

TcpTransport& TcpTransport::operator=(TcpTransport&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpTransport::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

TcpTransport TcpTransport::Connect(const std::string& host, std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw NetError("TcpTransport::Connect: bad address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ThrowErrno("connect");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpTransport(fd);
}

void TcpTransport::Send(ByteSpan frame) {
  if (fd_ < 0) throw NetError("TcpTransport::Send: closed transport");
  std::uint8_t len[4];
  PutU32(len, static_cast<std::uint32_t>(frame.size()));
  WriteAll(fd_, len, 4);
  WriteAll(fd_, frame.data(), frame.size());
}

Bytes TcpTransport::Receive() {
  if (fd_ < 0) throw NetError("TcpTransport::Receive: closed transport");
  std::uint8_t len_buf[4];
  ReadAll(fd_, len_buf, 4);
  std::uint32_t len = GetU32(len_buf);
  if (len > (1u << 30)) throw NetError("TcpTransport::Receive: frame too large");
  Bytes frame(len);
  ReadAll(fd_, frame.data(), len);
  return frame;
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    ThrowErrno("bind");
  }
  if (backlog <= 0) backlog = SOMAXCONN;
  if (::listen(fd_, backlog) != 0) {
    ::close(fd_);
    ThrowErrno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    ThrowErrno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpListener::Shutdown() {
  // shutdown() on a listening socket makes pending and future accept()
  // calls fail (EINVAL on Linux) without closing the fd out from under a
  // concurrently blocked acceptor thread.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

TcpTransport TcpListener::Accept() {
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) ThrowErrno("accept");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpTransport(fd);
}

}  // namespace reed::net
