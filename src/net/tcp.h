// Blocking TCP transport with u32 length-prefixed frames.
//
// The simulated link reproduces the paper's testbed *shapes*; this real
// socket transport is what a deployment would use between REED clients,
// the key manager, and the servers. An integration test and the
// multi-client example run the full protocol stack over loopback TCP.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace reed::net {

class NetError : public Error {
 public:
  using Error::Error;
};

// One connected duplex stream. Movable, not copyable; closes on destruction.
class TcpTransport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {}
  ~TcpTransport();

  TcpTransport(TcpTransport&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  TcpTransport& operator=(TcpTransport&& other) noexcept;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] static TcpTransport Connect(const std::string& host, std::uint16_t port);

  // Writes one frame (length prefix + payload). Throws NetError on failure.
  void Send(ByteSpan frame);

  // Reads one frame; throws NetError on close/failure.
  [[nodiscard]] Bytes Receive();

  // Half-closes both directions so a blocked Send/Receive on another thread
  // fails promptly. Safe to call concurrently with Send/Receive; the fd
  // itself stays open until destruction (no fd-reuse races).
  void Shutdown();

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

 private:
  int fd_;
};

class TcpListener {
 public:
  // Binds 127.0.0.1:port; port 0 picks an ephemeral port. backlog <= 0
  // means SOMAXCONN — a load generator's connection burst should queue in
  // the kernel, not bounce off a short default backlog.
  explicit TcpListener(std::uint16_t port, int backlog = 0);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  // The listening socket, for callers that multiplex accepts themselves
  // (AsyncServer registers it with epoll). Ownership stays here.
  [[nodiscard]] int fd() const { return fd_; }

  [[nodiscard]] TcpTransport Accept();

  // Unblocks a concurrent Accept() (it throws NetError). Used for clean
  // server shutdown without the connect-to-self trick.
  void Shutdown();

 private:
  int fd_;
  std::uint16_t port_;
};

}  // namespace reed::net
