#include "net/tcp_server.h"

namespace reed::net {

TcpServer::TcpServer(std::uint16_t port, LocalChannel::Handler handler)
    : handler_(std::move(handler)),
      listener_(std::make_unique<TcpListener>(port)),
      port_(listener_->port()) {
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

void TcpServer::AcceptLoop() {
  for (;;) {
    TcpTransport conn(-1);
    try {
      conn = listener_->Accept();
    } catch (const Error&) {
      return;  // listener closed
    }
    if (stopping_.load()) return;
    std::lock_guard lock(mu_);
    connections_.emplace_back(
        [this, c = std::move(conn)]() mutable {
          ServeTransport(std::move(c), handler_);
        });
  }
}

void TcpServer::Wait() {
  if (acceptor_.joinable()) acceptor_.join();
}

TcpServer::~TcpServer() {
  stopping_.store(true);
  // Poke the acceptor out of its blocking Accept with a dummy connection.
  try {
    TcpTransport wake = TcpTransport::Connect("127.0.0.1", port_);
  } catch (const Error&) {
    // Listener already gone.
  }
  Wait();
  std::lock_guard lock(mu_);
  for (auto& t : connections_) {
    if (t.joinable()) t.detach();  // exits when the peer disconnects
  }
}

}  // namespace reed::net
