#include "net/tcp_server.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace reed::net {

TcpServer::TcpServer(std::uint16_t port, LocalChannel::Handler handler)
    : handler_(std::move(handler)),
      listener_(std::make_unique<TcpListener>(port)),
      port_(listener_->port()) {
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

void TcpServer::AcceptLoop() {
  // Audited swallow (tools/lint/failpath_allowlist.txt): Accept() only
  // throws once the listener socket is shut down (the destructor's own
  // teardown signal) or irrecoverably broken — and the acceptor thread has
  // no caller to rethrow to. Exiting the loop IS the handling; the
  // swallow is still observable via errors.swallowed.net_accept.
  static obs::Counter* swallowed =
      &obs::Registry::Global().GetCounter("errors.swallowed.net_accept");
  for (;;) {
    TcpTransport conn(-1);
    try {
      conn = listener_->Accept();
    } catch (const Error&) {
      swallowed->Increment();
      return;  // listener shut down
    }
    auto session = std::make_shared<Session>(std::move(conn));
    {
      MutexLock lock(mu_);
      if (stopping_.load()) return;  // dtor owns teardown past this point
      ReapFinishedLocked();
      sessions_.push_back(session);
    }
    session->thread = std::thread([this, session] {
      ServeTransport(session->transport, handler_);
      session->done.store(true);
    });
  }
}

// Joins and drops sessions whose serve loop already returned, so a
// long-lived server does not accumulate one dead entry per past client.
void TcpServer::ReapFinishedLocked() {
  auto it = std::remove_if(
      sessions_.begin(), sessions_.end(), [](const std::shared_ptr<Session>& s) {
        if (!s->done.load()) return false;
        if (s->thread.joinable()) s->thread.join();
        return true;
      });
  sessions_.erase(it, sessions_.end());
}

void TcpServer::Wait() {
  if (acceptor_.joinable()) acceptor_.join();
}

TcpServer::~TcpServer() {
  {
    MutexLock lock(mu_);
    stopping_.store(true);
  }
  listener_->Shutdown();  // unblocks Accept()
  Wait();
  // The acceptor has exited, so sessions_ is stable from here; no new
  // session can be registered.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    MutexLock lock(mu_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    session->transport.Shutdown();  // unblocks a blocked Receive()
  }
  for (auto& session : sessions) {
    if (session->thread.joinable()) session->thread.join();
  }
}

}  // namespace reed::net
