// Multi-connection TCP RPC server: accept loop + one service thread per
// connection, each running ServeTransport over a shared handler. Used by
// the reed_serverd / reed_keymanagerd daemons and the TCP examples.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/rpc.h"
#include "net/tcp.h"

namespace reed::net {

class TcpServer {
 public:
  // Binds 127.0.0.1:port (0 = ephemeral) and starts accepting immediately.
  TcpServer(std::uint16_t port, LocalChannel::Handler handler);

  // Stops accepting and joins the acceptor; connection threads are joined
  // as their peers disconnect.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  std::uint16_t port() const { return port_; }

  // Blocks until the acceptor exits (daemons call this from main()).
  void Wait();

 private:
  void AcceptLoop();

  LocalChannel::Handler handler_;
  std::unique_ptr<TcpListener> listener_;
  std::uint16_t port_;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex mu_;
  std::vector<std::thread> connections_;
};

}  // namespace reed::net
