// Multi-connection TCP RPC server: accept loop + one service thread per
// connection, each running ServeTransport over a shared handler. Used by
// the reed_serverd / reed_keymanagerd daemons and the TCP examples.
//
// Shutdown is fully joined: the destructor shuts down the listener socket
// (unblocking the acceptor), then shuts down every live session transport
// (unblocking its Receive) and joins every session thread. No thread is
// ever detached, so no session can outlive the handler it captures.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "net/rpc.h"
#include "net/tcp.h"
#include "util/thread_annotations.h"

namespace reed::net {

class TcpServer {
 public:
  // Binds 127.0.0.1:port (0 = ephemeral) and starts accepting immediately.
  TcpServer(std::uint16_t port, LocalChannel::Handler handler);

  // Stops accepting, disconnects live sessions, and joins every thread.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  // Blocks until the acceptor exits (daemons call this from main()).
  void Wait();

 private:
  // One accepted connection: the transport lives here so the destructor can
  // Shutdown() it while the session thread is blocked inside Receive().
  struct Session {
    explicit Session(TcpTransport t) : transport(std::move(t)) {}
    TcpTransport transport;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ReapFinishedLocked() REED_REQUIRES(mu_);

  LocalChannel::Handler handler_;
  std::unique_ptr<TcpListener> listener_;
  std::uint16_t port_;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  Mutex mu_{LockRank::kNetServerSessions};
  std::vector<std::shared_ptr<Session>> sessions_ REED_GUARDED_BY(mu_);
};

}  // namespace reed::net
