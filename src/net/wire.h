// Wire-format helpers: a Writer/Reader pair over length-delimited fields,
// used by every REED protocol message (key-manager batches, storage RPCs,
// recipes, key-state metadata).
//
// Format primitives: fixed-width big-endian integers and u32-length-
// prefixed byte strings. Readers validate every length against the
// remaining buffer, so malformed frames fail loudly instead of reading out
// of bounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/fault_inject.h"

namespace reed {
class Secret;  // util/secret.h — never serialized without Declassify
}  // namespace reed

namespace reed::net {

// Frame-level failures: truncated or oversized messages, trailing bytes,
// malformed snapshots. Distinct from NetError (net/tcp.h), which covers the
// transport itself — a catch site can retry a WireError-free transport
// failure but must treat a WireError as a protocol bug or corruption.
class WireError : public Error {
 public:
  using Error::Error;
};

class Writer {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U32(std::uint32_t v) { AppendU32(buf_, v); }
  void U64(std::uint64_t v) { AppendU64(buf_, v); }

  // Rejects payloads whose size does not fit the u32 length prefix; the
  // old silent cast produced a frame whose prefix disagreed with its body.
  // Public and static so the limit is unit-testable without allocating 4GB.
  static void CheckBlobSize(std::size_t size) {
    if (size > UINT32_MAX) throw WireError("Writer: blob too large");
  }

  void Blob(ByteSpan data) {
    REED_FAULT_POINT("net.wire.write");
    CheckBlobSize(data.size());
    U32(static_cast<std::uint32_t>(data.size()));
    Append(buf_, data);
  }

  void Str(std::string_view s) { Blob(ToBytes(s)); }

  // Raw bytes without a length prefix (for fixed-width fields).
  void Raw(ByteSpan data) { Append(buf_, data); }

  // Secrets never cross the wire: route through reed::Declassify (with a
  // reason) at one of the sanctioned crossings, or encrypt first. Deleting
  // these here gives a direct error instead of a conversion-failure cascade.
  void Blob(const Secret&) = delete;
  void Str(const Secret&) = delete;
  void Raw(const Secret&) = delete;

  [[nodiscard]] Bytes Take() { return std::move(buf_); }
  const Bytes& bytes() const { return buf_; }

 private:
  Bytes buf_;
};

class Reader {
 public:
  // Sanity cap on declared blob lengths. The length prefix is attacker-
  // controlled: a forged frame inside a legitimately large transport buffer
  // can claim a multi-gigabyte blob, and the only defense before this cap
  // was the remaining-buffer check — which still admits anything up to the
  // transport's 1 GiB frame limit. No REED message carries a blob anywhere
  // near this size (chunk batches are ~4 MB; the largest stub files are
  // tens of MB), so a claim above the cap is corruption or an attack, and
  // it fails as a typed WireError before any allocation sized by the claim.
  static constexpr std::uint32_t kDefaultMaxBlobLen = 256u << 20;  // 256 MiB

  explicit Reader(ByteSpan data, std::uint32_t max_blob_len = kDefaultMaxBlobLen)
      : data_(data), max_blob_len_(max_blob_len) {}

  [[nodiscard]] std::uint8_t U8() {
    Need(1);
    return data_[off_++];
  }

  [[nodiscard]] std::uint32_t U32() {
    Need(4);
    std::uint32_t v = GetU32(data_.subspan(off_));
    off_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t U64() {
    Need(8);
    std::uint64_t v = GetU64(data_.subspan(off_));
    off_ += 8;
    return v;
  }

  [[nodiscard]] Bytes Blob() {
    REED_FAULT_POINT("net.wire.read");
    std::uint32_t len = U32();
    if (len > max_blob_len_) {
      throw WireError("Reader: declared blob length " + std::to_string(len) +
                      " exceeds sanity cap " + std::to_string(max_blob_len_));
    }
    Need(len);
    Bytes out(data_.begin() + off_, data_.begin() + off_ + len);
    off_ += len;
    return out;
  }

  [[nodiscard]] std::string Str() {
    Bytes b = Blob();
    return ToString(b);
  }

  [[nodiscard]] Bytes Raw(std::size_t n) {
    Need(n);
    Bytes out(data_.begin() + off_, data_.begin() + off_ + n);
    off_ += n;
    return out;
  }

  [[nodiscard]] bool AtEnd() const { return off_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - off_; }

  // Call when a message should have been fully consumed.
  void ExpectEnd() const {
    if (!AtEnd()) throw WireError("Reader: trailing bytes in message");
  }

 private:
  void Need(std::size_t n) const {
    if (off_ + n > data_.size()) throw WireError("Reader: truncated message");
  }

  ByteSpan data_;
  std::uint32_t max_blob_len_;
  std::size_t off_ = 0;
};

}  // namespace reed::net
