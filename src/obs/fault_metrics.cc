#include "obs/fault_metrics.h"

#include <string>

#include "util/fault_inject.h"

namespace reed::obs {
namespace {

Registry* g_registry = nullptr;

// Runs on the throwing thread, outside every fault-registry lock. Site
// firings are rare (they abort the surrounding operation), so the per-call
// name lookup is fine — no cached-pointer fast path needed.
void CountFired(const char* site) {
  if (g_registry == nullptr) return;
  g_registry->GetCounter(std::string("fault.") + site + ".fired").Increment();
}

}  // namespace

void InstallFaultCounters(Registry& registry) {
  g_registry = &registry;
  fault::SetFiredHook(&CountFired);
}

}  // namespace reed::obs
