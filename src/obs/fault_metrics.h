// Bridges util/fault_inject.h's fired hook to the metric registry: every
// firing of an armed fault site bumps
//
//   fault.<site>.fired
//
// util (layer 0) cannot depend on obs (layer 1), so the injector exposes a
// raw function-pointer hook and this translation unit — on the obs side of
// the boundary — installs it (the same pattern as obs/lock_metrics.h).
// Registry::Global() calls InstallFaultCounters exactly once while
// constructing the global registry; outside -DREED_FAULT_INJECT=ON builds
// no site can fire, so the hook is simply never invoked.
#pragma once

#include "obs/metrics.h"

namespace reed::obs {

void InstallFaultCounters(Registry& registry);

}  // namespace reed::obs
