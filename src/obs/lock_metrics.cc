#include "obs/lock_metrics.h"

#if defined(REED_DEADLOCK_DETECT)

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/deadlock.h"
#include "util/lock_rank.h"

namespace reed::obs {
namespace {

// Slot 0 is kUnranked; slot i+1 is kAllLockRanks[i]. Resolved eagerly at
// install time so the record hooks are pure atomic ops — they run while
// arbitrary locks are held and must never take the registry lock.
constexpr std::size_t kSlots = kAllLockRanks.size() + 1;
Histogram* g_wait[kSlots] = {};
Histogram* g_held[kSlots] = {};

std::size_t RankSlot(LockRank rank) {
  for (std::size_t i = 0; i < kAllLockRanks.size(); ++i) {
    if (kAllLockRanks[i] == rank) return i + 1;
  }
  return 0;
}

void RecordWait(LockRank rank, std::uint64_t micros) {
  if (Histogram* h = g_wait[RankSlot(rank)]) h->Record(micros);
}

void RecordHeld(LockRank rank, std::uint64_t micros) {
  if (Histogram* h = g_held[RankSlot(rank)]) h->Record(micros);
}

}  // namespace

void InstallLockProfiler(Registry& registry) {
  g_wait[0] = &registry.GetHistogram("lock.unranked.wait_us");
  g_held[0] = &registry.GetHistogram("lock.unranked.held_us");
  for (std::size_t i = 0; i < kAllLockRanks.size(); ++i) {
    const std::string base = std::string("lock.") + LockRankName(kAllLockRanks[i]);
    g_wait[i + 1] = &registry.GetHistogram(base + ".wait_us");
    g_held[i + 1] = &registry.GetHistogram(base + ".held_us");
  }
  lockdiag::SetLockProfiler(&RecordWait, &RecordHeld);
}

}  // namespace reed::obs

#else  // !REED_DEADLOCK_DETECT

namespace reed::obs {

void InstallLockProfiler(Registry&) {}

}  // namespace reed::obs

#endif
