// Bridges util/deadlock.h's profiler hooks to the metric registry: one
// wait-time and one held-time histogram per LockRank —
//
//   lock.<rank-name>.wait_us   time spent blocked acquiring
//   lock.<rank-name>.held_us   time the lock was held
//
// util (layer 0) cannot depend on obs (layer 1), so the detector exposes raw
// function-pointer hooks and this translation unit — on the obs side of the
// boundary — installs them. Registry::Global() calls InstallLockProfiler
// exactly once while constructing the global registry; outside
// -DREED_DEADLOCK_DETECT=ON builds it is a no-op and no lock.* metrics
// exist (the hooks are not compiled into the mutexes at all).
#pragma once

#include "obs/metrics.h"

namespace reed::obs {

void InstallLockProfiler(Registry& registry);

}  // namespace reed::obs
