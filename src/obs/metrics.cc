#include "obs/metrics.h"

#include <algorithm>

#include "obs/fault_metrics.h"
#include "obs/lock_metrics.h"
#include <cstdarg>
#include <cstdio>

namespace reed::obs {
namespace {

// Shared registration walk for the three metric kinds: find-or-insert under
// the lock, return a reference that stays valid for the process lifetime
// (node-based map, pointee never moves).
template <typename M>
M& GetOrCreate(std::map<std::string, std::unique_ptr<M>, std::less<>>& metrics,
               std::string_view name) {
  auto it = metrics.find(name);
  if (it == metrics.end()) {
    it = metrics.emplace(std::string(name), std::make_unique<M>()).first;
  }
  return *it->second;
}

void AppendLine(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendLine(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n),
                                      sizeof(buf) - 1));
  out.push_back('\n');
}

// Shared percentile walk: find the bucket holding the target rank, then
// interpolate linearly between the bucket's power-of-two bounds (log-linear
// overall, since bounds double). The last bucket is open-ended; it
// interpolates toward twice its lower bound, which keeps the estimator
// monotone without inventing a max.
std::uint64_t PercentileFromBuckets(const std::uint64_t* buckets,
                                    std::size_t num_buckets,
                                    std::uint64_t count, double p) {
  if (count == 0) return 0;
  p = std::min(100.0, std::max(0.0, p));
  // Rank of the sample that bounds percentile p from above (1-based).
  auto rank = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(count) + 0.9999999);
  rank = std::min(count, std::max<std::uint64_t>(1, rank));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < num_buckets; ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] >= rank) {
      if (i == 0) return 0;  // bucket 0 holds exact zeros
      std::uint64_t lo = Histogram::BucketLowerBound(i);
      std::uint64_t hi = i + 1 < num_buckets
                             ? Histogram::BucketLowerBound(i + 1)
                             : lo * 2;
      double frac = static_cast<double>(rank - cumulative) /
                    static_cast<double>(buckets[i]);
      return lo + static_cast<std::uint64_t>(
                      frac * static_cast<double>(hi - lo));
    }
    cumulative += buckets[i];
  }
  return Histogram::BucketLowerBound(num_buckets - 1);
}

}  // namespace

std::uint64_t Histogram::Percentile(double p) const {
  std::array<std::uint64_t, kNumBuckets> buckets;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets[i] = bucket(i);
    total += buckets[i];
  }
  // Sum the snapshotted buckets rather than trusting count_: a concurrent
  // Record may have bumped one but not yet the other.
  return PercentileFromBuckets(buckets.data(), kNumBuckets, total, p);
}

std::uint64_t Snapshot::HistogramValue::Percentile(double p) const {
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  return PercentileFromBuckets(buckets.data(), buckets.size(), total, p);
}

const Snapshot::CounterValue* Snapshot::FindCounter(
    std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const Snapshot::HistogramValue* Snapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Registry& Registry::Global() {
  // Never destroyed: metrics may be touched during shutdown. The lock
  // profiler (a no-op outside REED_DEADLOCK_DETECT builds) installs here so
  // its histograms resolve against the same registry every consumer sees.
  static Registry* instance = [] {
    auto* registry = new Registry();
    InstallLockProfiler(*registry);
    InstallFaultCounters(*registry);
    return registry;
  }();
  return *instance;
}

Counter& Registry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  return GetOrCreate(counters_, name);
}

Gauge& Registry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  return GetOrCreate(gauges_, name);
}

Histogram& Registry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  return GetOrCreate(histograms_, name);
}

Snapshot Registry::TakeSnapshot() const {
  MutexLock lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    Snapshot::HistogramValue hv;
    hv.name = name;
    hv.count = hist->count();
    hv.sum = hist->sum();
    hv.buckets.resize(Histogram::kNumBuckets);
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      hv.buckets[i] = hist->bucket(i);
    }
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

void Registry::ResetAll() {
  MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, hist] : histograms_) hist->Reset();
}

std::string RenderText(const Snapshot& snapshot) {
  std::string out;
  if (!snapshot.counters.empty()) {
    out += "counters:\n";
    for (const auto& c : snapshot.counters) {
      AppendLine(out, "  %-44s %llu", c.name.c_str(),
                 static_cast<unsigned long long>(c.value));
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& g : snapshot.gauges) {
      AppendLine(out, "  %-44s %lld", g.name.c_str(),
                 static_cast<long long>(g.value));
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "histograms:\n";
    for (const auto& h : snapshot.histograms) {
      AppendLine(out, "  %-44s count=%llu mean=%.1f p50=%llu p99=%llu "
                 "p999=%llu",
                 h.name.c_str(), static_cast<unsigned long long>(h.count),
                 h.mean(),
                 static_cast<unsigned long long>(h.Percentile(50)),
                 static_cast<unsigned long long>(h.Percentile(99)),
                 static_cast<unsigned long long>(h.Percentile(99.9)));
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) continue;
        std::uint64_t lo = Histogram::BucketLowerBound(i);
        std::uint64_t hi = Histogram::BucketLowerBound(i + 1);
        if (i + 1 >= Histogram::kNumBuckets) {
          AppendLine(out, "    [%llu, inf): %llu",
                     static_cast<unsigned long long>(lo),
                     static_cast<unsigned long long>(h.buckets[i]));
        } else {
          AppendLine(out, "    [%llu, %llu): %llu",
                     static_cast<unsigned long long>(lo),
                     static_cast<unsigned long long>(hi),
                     static_cast<unsigned long long>(h.buckets[i]));
        }
      }
    }
  }
  if (out.empty()) out = "(no metrics registered)\n";
  return out;
}

}  // namespace reed::obs
