// Process-wide observability: named counters, gauges, and fixed-bucket
// histograms behind a single registry, plus a ScopedTimer for stage tracing.
//
// The paper's evaluation (Figs. 5-10) attributes throughput to per-stage
// costs — OPRF keygen vs. CAONT encode vs. wire transfer — so the data path
// records where its time and bytes go. Design constraints:
//
//   * Hot path is allocation-free and lock-free: callers resolve a metric
//     once (registry lookup, under mu_) and then touch only std::atomic
//     slots. Registration is the slow path; Add/Record/Set are relaxed
//     atomic ops on stable storage (verified by tests/obs_metrics_test.cc).
//   * Metrics carry NO Secret material — only counts, byte totals, and
//     durations. The registry API traffics exclusively in integers and
//     plain metric-name strings, so nothing here can cross the Secret
//     type wall (DESIGN.md §9).
//   * Naming scheme is dotted lowercase: <module>.<component>.<metric>,
//     with histogram units suffixed (_us for microseconds, _bytes).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace reed::obs {

// Monotonic event counter. Relaxed ordering: totals are read by snapshots,
// not used for synchronization.
class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-writer-wins instantaneous value (e.g. container count, index size).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Power-of-two bucketed histogram for latencies (microseconds) and sizes
// (bytes). Fixed bucket count keeps Record allocation-free; two decades of
// dynamic range per decade of buckets is plenty for stage timings. Bucket 0
// holds exact zeros; bucket i (i >= 1) holds [2^(i-1), 2^i), and the last
// bucket absorbs everything above 2^(kNumBuckets-2).
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 32;

  void Record(std::uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  // Estimated value at percentile p (0 < p <= 100), log-linear: the target
  // rank's bucket is found by cumulative count, then the value is
  // interpolated linearly between the bucket's power-of-two bounds. Exact
  // for zeros (bucket 0); within one bucket's relative width (< 2x)
  // otherwise. Reads a relaxed snapshot — concurrent Records may or may not
  // be included, like count()/sum().
  [[nodiscard]] std::uint64_t Percentile(double p) const;

  [[nodiscard]] static std::size_t BucketIndex(std::uint64_t v) {
    if (v == 0) return 0;
    return std::min<std::size_t>(kNumBuckets - 1,
                                 static_cast<std::size_t>(std::bit_width(v)));
  }
  // Smallest value that lands in bucket i.
  [[nodiscard]] static std::uint64_t BucketLowerBound(std::size_t i) {
    if (i == 0) return 0;
    return std::uint64_t{1} << (i - 1);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// Point-in-time copy of every registered metric, safe to serialize or print
// (plain integers and names — nothing Secret-typed can get in here).
struct Snapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buckets;

    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }

    // Same estimator as Histogram::Percentile, over the snapshotted buckets
    // (reedctl decodes wire snapshots into this struct).
    [[nodiscard]] std::uint64_t Percentile(double p) const;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  // nullptr when the name is absent — convenience for tests and reedctl.
  [[nodiscard]] const CounterValue* FindCounter(std::string_view name) const;
  [[nodiscard]] const HistogramValue* FindHistogram(std::string_view name) const;
};

// Process-wide metric registry. Get* registers on first use (slow path, takes
// mu_, allocates) and returns a stable reference: the metric objects live in
// node-based maps and are never destroyed or moved, so callers may cache the
// reference and hit it lock-free forever after.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] static Registry& Global();

  [[nodiscard]] Counter& GetCounter(std::string_view name) REED_EXCLUDES(mu_);
  [[nodiscard]] Gauge& GetGauge(std::string_view name) REED_EXCLUDES(mu_);
  [[nodiscard]] Histogram& GetHistogram(std::string_view name)
      REED_EXCLUDES(mu_);

  [[nodiscard]] Snapshot TakeSnapshot() const REED_EXCLUDES(mu_);

  // Zeroes every registered metric (tests; registered names survive).
  void ResetAll() REED_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{LockRank::kObsRegistry};
  // std::less<> enables string_view lookup with no temporary std::string.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      REED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      REED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      REED_GUARDED_BY(mu_);
};

// RAII increment/decrement pair on a gauge: the constructor applies +delta,
// the destructor (or Release) applies -delta, so the gauge returns to its
// prior level on EVERY exit path — including exceptions. This is the only
// sanctioned way to track in-flight work (`client.net.inflight_rpcs`,
// `client.pipeline.inflight_batches`): a manual try/catch Add(+1)/Add(-1)
// dance leaks the increment whenever an unexpected path unwinds
// (tools/lint/failpath_lint.py's gauge-dance rule rejects that shape).
// Movable so a guard can ride alongside the std::future whose lifetime it
// brackets.
class GaugeGuard {
 public:
  explicit GaugeGuard(Gauge& gauge, std::int64_t delta = 1)
      : gauge_(&gauge), delta_(delta) {
    gauge_->Add(delta_);
  }
  GaugeGuard(GaugeGuard&& other) noexcept
      : gauge_(std::exchange(other.gauge_, nullptr)), delta_(other.delta_) {}
  GaugeGuard& operator=(GaugeGuard&& other) noexcept {
    if (this != &other) {
      Release();
      gauge_ = std::exchange(other.gauge_, nullptr);
      delta_ = other.delta_;
    }
    return *this;
  }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;
  ~GaugeGuard() { Release(); }

  // Undo the increment now; further calls (and the destructor) are no-ops.
  void Release() {
    if (gauge_ != nullptr) {
      gauge_->Add(-delta_);
      gauge_ = nullptr;
    }
  }

 private:
  Gauge* gauge_;
  std::int64_t delta_;
};

// Records wall time (microseconds) into a histogram when it goes out of
// scope — the stage-tracing primitive. Stop() ends the measurement early and
// returns the recorded duration; the destructor then does nothing.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) (void)Stop();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  std::uint64_t Stop() {
    if (hist_ == nullptr) return 0;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(elapsed);
    std::uint64_t v = us.count() < 0 ? 0 : static_cast<std::uint64_t>(us.count());
    hist_->Record(v);
    hist_ = nullptr;
    return v;
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

// Human-readable dump (reedctl stats): counters and gauges one per line,
// histograms as count/mean plus their non-empty buckets.
[[nodiscard]] std::string RenderText(const Snapshot& snapshot);

}  // namespace reed::obs
