#include "pairing/bls.h"

#include "crypto/sha256.h"

namespace reed::pairing {

BlsKeyPair BlsGenerateKeyPair(const TypeAPairing& pairing, crypto::Rng& rng) {
  BlsKeyPair kp;
  kp.secret = pairing.RandomScalar(rng);
  kp.public_key = pairing.generator().ScalarMul(kp.secret);
  return kp;
}

BlsBlindSigner::BlsBlindSigner(std::shared_ptr<const TypeAPairing> pairing,
                               BigInt secret)
    : pairing_(std::move(pairing)), secret_(std::move(secret)) {
  if (!pairing_) throw Error("BlsBlindSigner: null pairing");
  if (secret_.IsZero() || secret_ >= pairing_->group_order()) {
    throw Error("BlsBlindSigner: secret out of range");
  }
  public_key_ = pairing_->generator().ScalarMul(secret_);
}

G1Point BlsBlindSigner::Sign(const G1Point& blinded) const {
  if (blinded.is_infinity()) {
    throw Error("BlsBlindSigner: refusing to sign the identity");
  }
  if (!blinded.IsOnCurve()) {
    throw Error("BlsBlindSigner: point not on curve");
  }
  return blinded.ScalarMul(secret_);
}

BlsBlindClient::BlsBlindClient(std::shared_ptr<const TypeAPairing> pairing,
                               G1Point manager_public_key)
    : pairing_(std::move(pairing)), pk_(std::move(manager_public_key)) {
  if (!pairing_) throw Error("BlsBlindClient: null pairing");
}

BlsBlindClient::BlindedRequest BlsBlindClient::Blind(ByteSpan message,
                                                     crypto::Rng& rng) const {
  BlindedRequest req;
  req.h = pairing_->HashToGroup(message);
  req.r = pairing_->RandomScalar(rng);
  req.blinded = req.h.Add(pairing_->generator().ScalarMul(req.r));
  return req;
}

Secret BlsBlindClient::Unblind(const BlindedRequest& request,
                               const G1Point& signature) const {
  // s = s' − r·pk = x·h
  G1Point s = signature.Add(pk_.ScalarMul(request.r).Neg());
  // Verify e(s, g) == e(h, pk): bilinearity gives e(x·h, g) = e(h, g)^x =
  // e(h, x·g).
  if (!(pairing_->Pair(s, pairing_->generator()) ==
        pairing_->Pair(request.h, pk_))) {
    throw Error("BlsBlindClient: signature verification failed");
  }
  return Secret(crypto::Sha256::HashToBytes(s.ToBytes(pairing_->field())));
}

}  // namespace reed::pairing
