// Blinded BLS signatures — the alternative MLE key-generation instantiation
// the paper names (§V "Key manager": "Other approaches, such as blinded BLS
// signatures [23], can be used to implement blinded MLE key generation").
//
// Over our Type-A pairing: the manager holds x with pk = g^x; the BLS
// signature on message m is H(m)^x ∈ G1. Blinding:
//   client:  h = HashToGroup(m); picks r; sends  b = h + r·g   (additive)
//   manager: s' = x·b = x·h + r·(x·g)
//   client:  s  = s' − r·pk = x·h;  verifies e(s, g) == e(h, pk)
// The MLE key is H(serialize(s)) — deterministic in m, blind to the
// manager, and unforgeable without x.
#pragma once

#include <memory>

#include "pairing/pairing.h"
#include "util/secret.h"

namespace reed::pairing {

struct BlsKeyPair {
  BigInt secret;   // x
  G1Point public_key;  // g^x
};

BlsKeyPair BlsGenerateKeyPair(const TypeAPairing& pairing, crypto::Rng& rng);

// Manager side: signs blinded group elements; never sees the message.
class BlsBlindSigner {
 public:
  BlsBlindSigner(std::shared_ptr<const TypeAPairing> pairing, BigInt secret);

  const G1Point& public_key() const { return public_key_; }

  G1Point Sign(const G1Point& blinded) const;

 private:
  std::shared_ptr<const TypeAPairing> pairing_;
  BigInt secret_;
  G1Point public_key_;
};

// Client side: blind / unblind+verify, yielding 32-byte MLE keys.
class BlsBlindClient {
 public:
  BlsBlindClient(std::shared_ptr<const TypeAPairing> pairing,
                 G1Point manager_public_key);

  struct BlindedRequest {
    G1Point blinded;  // h + r·g, sent to the manager
    BigInt r;         // kept locally
    G1Point h;        // HashToGroup(message), kept locally
  };

  BlindedRequest Blind(ByteSpan message, crypto::Rng& rng) const;

  // Unblinds and verifies via the pairing equation; returns H(signature)
  // as a Secret (it is an MLE key). Throws Error when verification fails.
  Secret Unblind(const BlindedRequest& request, const G1Point& signature) const;

 private:
  std::shared_ptr<const TypeAPairing> pairing_;
  G1Point pk_;
};

}  // namespace reed::pairing
