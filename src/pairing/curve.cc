#include "pairing/curve.h"

#include "crypto/sha256.h"

namespace reed::pairing {

bool G1Point::operator==(const G1Point& o) const {
  if (infinity_ || o.infinity_) return infinity_ == o.infinity_;
  return x_ == o.x_ && y_ == o.y_;
}

bool G1Point::IsOnCurve() const {
  if (infinity_) return true;
  // y² = x³ + x
  return y_.Square() == x_.Square() * x_ + x_;
}

G1Point G1Point::Neg() const {
  if (infinity_) return *this;
  return G1Point(x_, y_.Neg());
}

G1Point G1Point::Double() const {
  if (infinity_) return *this;
  if (y_.IsZero()) return Infinity();  // order-2 point
  const FpField* f = x_.field();
  // λ = (3x² + 1) / 2y
  Fp three_x2 = Fp::FromU64(f, 3) * x_.Square();
  Fp lambda = (three_x2 + Fp::One(f)) * (y_ + y_).Inverse();
  Fp x3 = lambda.Square() - x_ - x_;
  Fp y3 = lambda * (x_ - x3) - y_;
  return G1Point(std::move(x3), std::move(y3));
}

G1Point G1Point::Add(const G1Point& o) const {
  if (infinity_) return o;
  if (o.infinity_) return *this;
  if (x_ == o.x_) {
    if (y_ == o.y_) return Double();
    return Infinity();  // P + (-P)
  }
  // λ = (y2 - y1) / (x2 - x1)
  Fp lambda = (o.y_ - y_) * (o.x_ - x_).Inverse();
  Fp x3 = lambda.Square() - x_ - o.x_;
  Fp y3 = lambda * (x_ - x3) - y_;
  return G1Point(std::move(x3), std::move(y3));
}

namespace {

// Jacobian-coordinate point (X, Y, Z) representing (X/Z², Y/Z³): point
// doubling/addition without per-step field inversions, which makes scalar
// multiplication ~10x faster than the affine ladder. Curve: y² = x³ + x
// (a = 1).
struct Jacobian {
  Fp x, y, z;
  bool infinity;
};

Jacobian JacDouble(const Jacobian& p) {
  if (p.infinity || p.y.IsZero()) return {p.x, p.y, p.z, true};
  Fp y2 = p.y.Square();
  Fp s = Fp::FromU64(p.x.field(), 4) * p.x * y2;           // 4XY²
  Fp z2 = p.z.Square();
  Fp m = Fp::FromU64(p.x.field(), 3) * p.x.Square() + z2.Square();  // 3X²+aZ⁴
  Fp x3 = m.Square() - (s + s);
  Fp y3 = m * (s - x3) - Fp::FromU64(p.x.field(), 8) * y2.Square();
  Fp z3 = (p.y + p.y) * p.z;
  return {x3, y3, z3, false};
}

// Mixed addition: q is affine (Z = 1).
Jacobian JacAddAffine(const Jacobian& p, const Fp& qx, const Fp& qy) {
  if (p.infinity) return {qx, qy, Fp::One(qx.field()), false};
  Fp z2 = p.z.Square();
  Fp u2 = qx * z2;            // U2 = x2 Z1²
  Fp s2 = qy * z2 * p.z;      // S2 = y2 Z1³
  Fp h = u2 - p.x;
  Fp r = s2 - p.y;
  if (h.IsZero()) {
    if (r.IsZero()) return JacDouble(p);  // same point
    return {p.x, p.y, p.z, true};         // inverse points
  }
  Fp h2 = h.Square();
  Fp h3 = h2 * h;
  Fp u1h2 = p.x * h2;
  Fp x3 = r.Square() - h3 - (u1h2 + u1h2);
  Fp y3 = r * (u1h2 - x3) - p.y * h3;
  Fp z3 = p.z * h;
  return {x3, y3, z3, false};
}

}  // namespace

G1Point G1Point::ScalarMul(const BigInt& k) const {
  if (infinity_ || k.IsZero()) return Infinity();
  const FpField* f = x_.field();
  Jacobian acc{x_, y_, Fp::One(f), true};
  acc.infinity = true;
  for (std::size_t i = k.BitLength(); i-- > 0;) {
    acc = JacDouble(acc);
    if (k.Bit(i)) acc = JacAddAffine(acc, x_, y_);
  }
  if (acc.infinity) return Infinity();
  // Back to affine with a single inversion.
  Fp zinv = acc.z.Inverse();
  Fp zinv2 = zinv.Square();
  return G1Point(acc.x * zinv2, acc.y * zinv2 * zinv);
}

Bytes G1Point::ToBytes(const FpField* f) const {
  Bytes out;
  out.reserve(SerializedSize(f));
  if (infinity_) {
    out.assign(SerializedSize(f), 0);
    return out;
  }
  out.push_back(1);
  Append(out, x_.ToBytes());
  Append(out, y_.ToBytes());
  return out;
}

G1Point G1Point::FromBytes(const FpField* f, ByteSpan bytes) {
  if (bytes.size() != SerializedSize(f)) {
    throw Error("G1Point::FromBytes: bad length");
  }
  if (bytes[0] == 0) return Infinity();
  std::size_t eb = f->element_bytes();
  G1Point pt(Fp::FromBytes(f, bytes.subspan(1, eb)),
             Fp::FromBytes(f, bytes.subspan(1 + eb, eb)));
  if (!pt.IsOnCurve()) throw Error("G1Point::FromBytes: point not on curve");
  return pt;
}

G1Point HashToG1(const FpField* field, const BigInt& cofactor, ByteSpan data) {
  for (std::uint32_t counter = 0;; ++counter) {
    Bytes input = ToBytes("reed/hash-to-g1");
    AppendU32(input, counter);
    Append(input, data);
    // Expand to the field width so x covers all of F_p.
    Bytes expanded;
    std::uint32_t block = 0;
    while (expanded.size() < field->element_bytes()) {
      Bytes sub = input;
      AppendU32(sub, block++);
      crypto::Sha256Digest d = crypto::Sha256::Hash(sub);
      expanded.insert(expanded.end(), d.begin(), d.end());
    }
    expanded.resize(field->element_bytes());
    Fp x = Fp::FromBigInt(field, BigInt::FromBytes(expanded));

    Fp rhs = x.Square() * x + x;  // x³ + x
    Fp y;
    if (!rhs.Sqrt(&y)) continue;
    G1Point pt(x, y);
    G1Point in_subgroup = pt.ScalarMul(cofactor);
    if (in_subgroup.is_infinity()) continue;  // negligible probability
    return in_subgroup;
  }
}

}  // namespace reed::pairing
