// The supersingular curve E: y² = x³ + x over F_p and its order-r subgroup
// G1, plus hash-to-point. With p ≡ 3 mod 4, #E(F_p) = p + 1 = cofactor · r.
#pragma once

#include "pairing/field.h"

namespace reed::pairing {

// Affine point on E (with a distinguished point at infinity).
class G1Point {
 public:
  G1Point() : infinity_(true) {}  // point at infinity
  G1Point(Fp x, Fp y) : x_(std::move(x)), y_(std::move(y)), infinity_(false) {}

  static G1Point Infinity() { return G1Point(); }

  bool is_infinity() const { return infinity_; }
  const Fp& x() const { return x_; }
  const Fp& y() const { return y_; }

  bool operator==(const G1Point& o) const;

  bool IsOnCurve() const;

  G1Point Neg() const;
  G1Point Add(const G1Point& o) const;
  G1Point Double() const;
  G1Point ScalarMul(const BigInt& k) const;

  // Fixed-width serialization: flag byte || x || y (flag 0 = infinity).
  Bytes ToBytes(const FpField* f) const;
  static G1Point FromBytes(const FpField* f, ByteSpan bytes);
  static std::size_t SerializedSize(const FpField* f) {
    return 1 + 2 * f->element_bytes();
  }

 private:
  Fp x_, y_;
  bool infinity_;
};

// Deterministically hashes arbitrary bytes onto the order-r subgroup:
// try-and-increment x candidates, then clear the cofactor.
G1Point HashToG1(const FpField* field, const BigInt& cofactor,
                 ByteSpan data);

}  // namespace reed::pairing
