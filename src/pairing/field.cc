#include "pairing/field.h"

namespace reed::pairing {

FpField::FpField(BigInt p) : p_(std::move(p)), mont_(p_) {
  if (p_.ModLimb(4) != 3) {
    throw Error("FpField: p must be congruent to 3 mod 4");
  }
  sqrt_exp_ = (p_ + BigInt(1)) >> 2;
  ebytes_ = (p_.BitLength() + 7) / 8;
}

Fp Fp::One(const FpField* f) {
  return FromBigInt(f, BigInt(1));
}

Fp Fp::FromBigInt(const FpField* f, const BigInt& plain) {
  return Fp(f, f->mont().ToMont(plain % f->p()));
}

Fp Fp::FromU64(const FpField* f, std::uint64_t v) {
  return FromBigInt(f, BigInt(v));
}

Fp Fp::Random(const FpField* f, crypto::Rng& rng) {
  return Fp(f, f->mont().ToMont(BigInt::Random(rng, f->p())));
}

BigInt Fp::ToBigInt() const {
  return field_->mont().FromMont(v_);
}

Bytes Fp::ToBytes() const {
  return ToBigInt().ToBytesPadded(field_->element_bytes());
}

Fp Fp::FromBytes(const FpField* f, ByteSpan b) {
  if (b.size() != f->element_bytes()) {
    throw Error("Fp::FromBytes: bad length");
  }
  BigInt v = BigInt::FromBytes(b);
  if (v >= f->p()) throw Error("Fp::FromBytes: value out of range");
  return FromBigInt(f, v);
}

Fp Fp::operator+(const Fp& o) const {
  // Montgomery form is additive: (aR + bR) mod p = (a+b)R mod p.
  BigInt sum = v_ + o.v_;
  if (sum >= field_->p()) sum -= field_->p();
  return Fp(field_, std::move(sum));
}

Fp Fp::operator-(const Fp& o) const {
  if (v_ >= o.v_) return Fp(field_, v_ - o.v_);
  return Fp(field_, v_ + field_->p() - o.v_);
}

Fp Fp::operator*(const Fp& o) const {
  return Fp(field_, field_->mont().MulMont(v_, o.v_));
}

Fp Fp::Neg() const {
  if (v_.IsZero()) return *this;
  return Fp(field_, field_->p() - v_);
}

Fp Fp::Inverse() const {
  if (v_.IsZero()) throw Error("Fp::Inverse: zero has no inverse");
  // (aR)^-1 * R^2 = a^-1 R: invert the Montgomery value, then multiply by
  // R^2 twice via ToMont composition. Simpler: leave Montgomery, do it on
  // plain values.
  BigInt plain = ToBigInt();
  return FromBigInt(field_, BigInt::InverseMod(plain, field_->p()));
}

Fp Fp::Pow(const BigInt& e) const {
  return Fp(field_, field_->mont().PowMont(v_, e));
}

bool Fp::Sqrt(Fp* out) const {
  if (IsZero()) {
    *out = *this;
    return true;
  }
  Fp candidate = Pow(field_->sqrt_exp());
  if (candidate.Square() == *this) {
    *out = candidate;
    return true;
  }
  return false;
}

// --------------------------- Fp2 ---------------------------

bool Fp2::IsOne() const {
  return b_.IsZero() && a_ == Fp::One(a_.field());
}

Fp2 Fp2::operator*(const Fp2& o) const {
  // Karatsuba: 3 Fp multiplications.
  Fp ac = a_ * o.a_;
  Fp bd = b_ * o.b_;
  Fp cross = (a_ + b_) * (o.a_ + o.b_);
  return Fp2(ac - bd, cross - ac - bd);
}

Fp2 Fp2::Square() const {
  // (a+bi)^2 = (a+b)(a-b) + 2ab·i
  Fp re = (a_ + b_) * (a_ - b_);
  Fp ab = a_ * b_;
  return Fp2(re, ab + ab);
}

Fp2 Fp2::Inverse() const {
  // (a+bi)^-1 = (a-bi) / (a² + b²)
  Fp norm = a_.Square() + b_.Square();
  Fp ninv = norm.Inverse();
  return Fp2(a_ * ninv, b_.Neg() * ninv);
}

Fp2 Fp2::Pow(const BigInt& e) const {
  Fp2 result = One(a_.field());
  for (std::size_t i = e.BitLength(); i-- > 0;) {
    result = result.Square();
    if (e.Bit(i)) result = result * *this;
  }
  return result;
}

Bytes Fp2::ToBytes() const {
  return Concat(a_.ToBytes(), b_.ToBytes());
}

Fp2 Fp2::FromBytes(const FpField* f, ByteSpan bytes) {
  std::size_t eb = f->element_bytes();
  if (bytes.size() != 2 * eb) throw Error("Fp2::FromBytes: bad length");
  return Fp2(Fp::FromBytes(f, bytes.subspan(0, eb)),
             Fp::FromBytes(f, bytes.subspan(eb)));
}

}  // namespace reed::pairing
