// Finite-field tower for the Type-A pairing: F_p and F_p² = F_p[i]/(i²+1).
//
// The CP-ABE layer (paper §IV-C) needs a symmetric bilinear pairing; we
// build the same construction the cpabe toolkit's PBC "type A" parameters
// use: a supersingular curve y² = x³ + x over F_p with p ≡ 3 mod 4, whose
// pairing lands in F_p². Elements are kept in Montgomery form internally;
// a field context is shared by all elements of the same field.
#pragma once

#include <memory>

#include "bigint/bigint.h"

namespace reed::pairing {

using bigint::BigInt;
using bigint::Montgomery;

// Shared context for arithmetic mod a fixed prime p (p ≡ 3 mod 4).
class FpField {
 public:
  explicit FpField(BigInt p);

  const BigInt& p() const { return p_; }
  const Montgomery& mont() const { return mont_; }
  std::size_t element_bytes() const { return ebytes_; }
  // (p+1)/4 — the square-root exponent for p ≡ 3 mod 4.
  const BigInt& sqrt_exp() const { return sqrt_exp_; }

 private:
  BigInt p_;
  Montgomery mont_;
  BigInt sqrt_exp_;
  std::size_t ebytes_;
};

// An element of F_p (Montgomery form internally).
class Fp {
 public:
  Fp() : field_(nullptr) {}
  Fp(const FpField* field, BigInt mont_value)
      : field_(field), v_(std::move(mont_value)) {}

  static Fp Zero(const FpField* f) { return Fp(f, BigInt()); }
  static Fp One(const FpField* f);
  static Fp FromBigInt(const FpField* f, const BigInt& plain);
  static Fp FromU64(const FpField* f, std::uint64_t v);
  static Fp Random(const FpField* f, crypto::Rng& rng);

  BigInt ToBigInt() const;             // plain (non-Montgomery) value
  Bytes ToBytes() const;               // fixed-width big-endian
  static Fp FromBytes(const FpField* f, ByteSpan b);

  bool IsZero() const { return v_.IsZero(); }
  bool operator==(const Fp& o) const { return v_ == o.v_; }

  Fp operator+(const Fp& o) const;
  Fp operator-(const Fp& o) const;
  Fp operator*(const Fp& o) const;
  Fp Neg() const;
  Fp Square() const { return *this * *this; }
  Fp Inverse() const;
  Fp Pow(const BigInt& e) const;

  // Square root for p ≡ 3 mod 4; returns false if not a QR.
  bool Sqrt(Fp* out) const;

  const FpField* field() const { return field_; }

 private:
  const FpField* field_;
  BigInt v_;  // Montgomery form
};

// An element a + b·i of F_p², i² = -1 (valid because p ≡ 3 mod 4).
class Fp2 {
 public:
  Fp2() = default;
  Fp2(Fp a, Fp b) : a_(std::move(a)), b_(std::move(b)) {}

  static Fp2 One(const FpField* f) { return Fp2(Fp::One(f), Fp::Zero(f)); }

  const Fp& a() const { return a_; }
  const Fp& b() const { return b_; }

  bool IsOne() const;
  bool operator==(const Fp2& o) const { return a_ == o.a_ && b_ == o.b_; }

  Fp2 operator+(const Fp2& o) const { return Fp2(a_ + o.a_, b_ + o.b_); }
  Fp2 operator-(const Fp2& o) const { return Fp2(a_ - o.a_, b_ - o.b_); }
  Fp2 operator*(const Fp2& o) const;
  Fp2 Square() const;
  Fp2 Conjugate() const { return Fp2(a_, b_.Neg()); }
  Fp2 Inverse() const;
  Fp2 Pow(const BigInt& e) const;

  Bytes ToBytes() const;
  static Fp2 FromBytes(const FpField* f, ByteSpan bytes);

 private:
  Fp a_, b_;
};

}  // namespace reed::pairing
