#include "pairing/pairing.h"

#include "bigint/prime.h"

namespace reed::pairing {

TypeAParams TypeAParams::Generate(std::size_t rbits, std::size_t pbits,
                                  crypto::Rng& rng) {
  if (pbits <= rbits + 4) {
    throw Error("TypeAParams::Generate: pbits must exceed rbits");
  }
  BigInt r = bigint::GeneratePrime(rbits, rng);
  std::size_t hbits = pbits - rbits;
  for (;;) {
    // h divisible by 4 forces p = h*r - 1 ≡ 3 (mod 4).
    BigInt h0 = BigInt::RandomBits(rng, hbits - 2);
    BigInt top = BigInt(1) << (hbits - 3);
    if (h0 < top) h0 += top;
    BigInt h = h0 << 2;
    BigInt p = h * r - BigInt(1);
    if (p.BitLength() != pbits) continue;
    if (bigint::IsProbablePrime(p, rng)) {
      return TypeAParams{p, r, h};
    }
  }
}

TypeAParams TypeAParams::Default() {
  // Generated once with TypeAParams::Generate(160, 512, DeterministicRng(2016))
  // and pinned here so benchmarks and tests share a stable group.
  static const char* kP =
      "823e5729f8509ad2c440c05d15602d97800ffc6468c49b14e5f634a9f3ab3cab"
      "33d3426b83ee5ada87dd46e3b5e960842a784a17c98a2ee897b71a9e134df55b";
  static const char* kR = "98013696af9eed4c6400331aef9d92f1fa854a7b";
  TypeAParams params;
  params.p = BigInt::FromHex(kP);
  params.r = BigInt::FromHex(kR);
  params.cofactor = (params.p + BigInt(1)) / params.r;
  return params;
}

TypeAPairing::TypeAPairing(TypeAParams params)
    : params_(std::move(params)),
      field_(std::make_unique<FpField>(params_.p)) {
  if ((params_.cofactor * params_.r) != params_.p + BigInt(1)) {
    throw Error("TypeAPairing: cofactor * r must equal p + 1");
  }
  generator_ = HashToG1(field_.get(), params_.cofactor,
                        ToBytes("reed/pairing-generator"));
}

G1Point TypeAPairing::HashToGroup(ByteSpan data) const {
  return HashToG1(field_.get(), params_.cofactor, data);
}

BigInt TypeAPairing::RandomScalar(crypto::Rng& rng) const {
  for (;;) {
    BigInt s = BigInt::Random(rng, params_.r);
    if (!s.IsZero()) return s;
  }
}

namespace {

// Evaluates the (denominator-free) line through the Miller loop at the
// distorted point φ(Q) = (−xq, i·yq): value = (λ(xq + xv) − yv) + yq·i.
inline Fp2 LineValue(const Fp& lambda, const Fp& xv, const Fp& yv,
                     const Fp& xq, const Fp& yq) {
  return Fp2(lambda * (xq + xv) - yv, yq);
}

}  // namespace

Fp2 TypeAPairing::MillerLoop(const G1Point& p, const G1Point& q) const {
  const FpField* f = field_.get();
  Fp2 result = Fp2::One(f);
  if (p.is_infinity() || q.is_infinity()) return result;

  const Fp& xq = q.x();
  const Fp& yq = q.y();
  Fp one = Fp::One(f);
  Fp three = Fp::FromU64(f, 3);

  G1Point v = p;
  const BigInt& r = params_.r;
  for (std::size_t i = r.BitLength() - 1; i-- > 0;) {
    result = result.Square();
    if (!v.is_infinity()) {
      if (v.y().IsZero()) {
        // Vertical tangent: contributes an F_p value, killed by the final
        // exponentiation — just move to infinity.
        v = G1Point::Infinity();
      } else {
        Fp lambda = (three * v.x().Square() + one) * (v.y() + v.y()).Inverse();
        result = result * LineValue(lambda, v.x(), v.y(), xq, yq);
        v = v.Double();
      }
    }
    if (r.Bit(i) && !v.is_infinity()) {
      if (v.x() == p.x()) {
        // Chord is vertical (V == −P, or V == P needing a tangent — the
        // latter cannot occur for P of prime order r within the loop).
        v = v.Add(p);
      } else {
        Fp lambda = (p.y() - v.y()) * (p.x() - v.x()).Inverse();
        result = result * LineValue(lambda, v.x(), v.y(), xq, yq);
        v = v.Add(p);
      }
    }
  }
  return result;
}

Fp2 TypeAPairing::FinalExponentiation(const Fp2& f) const {
  // (p² − 1)/r = (p − 1) · cofactor. f^p is the Frobenius = conjugate in
  // F_p², so f^(p−1) = conj(f) · f^{−1}; one |h|-bit pow finishes the job.
  Fp2 g = f.Conjugate() * f.Inverse();
  return g.Pow(params_.cofactor);
}

Fp2 TypeAPairing::Pair(const G1Point& p, const G1Point& q) const {
  Fp2 f = MillerLoop(p, q);
  return FinalExponentiation(f);
}

}  // namespace reed::pairing
