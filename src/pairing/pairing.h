// Type-A symmetric pairing ê: G1 × G1 → GT ⊂ F_p², built from scratch.
//
// Construction (matching PBC's "type A" parameters, which the cpabe toolkit
// used in the paper's prototype):
//   * r: 160-bit prime group order; cofactor h with p = h·r − 1 prime and
//     p ≡ 3 mod 4  (so #E(F_p) = p + 1 = h·r),
//   * E: y² = x³ + x over F_p (supersingular),
//   * distortion map φ(x, y) = (−x, i·y) into E(F_p²),
//   * ê(P, Q) = Tate(P, φ(Q)) via a denominator-free Miller loop and final
//     exponentiation (p²−1)/r = (p−1)·h applied as a Frobenius-assisted
//     conjugate/inverse step followed by one h-bit exponentiation.
#pragma once

#include <memory>

#include "pairing/curve.h"

namespace reed::pairing {

struct TypeAParams {
  BigInt p;         // field prime, p ≡ 3 mod 4
  BigInt r;         // prime group order
  BigInt cofactor;  // h = (p+1)/r

  // Freshly generated parameters with the requested sizes.
  static TypeAParams Generate(std::size_t rbits, std::size_t pbits,
                              crypto::Rng& rng);
  // Fixed 160/512-bit parameter set (PBC a.param sizes) for reproducible
  // benchmarks and fast test startup.
  static TypeAParams Default();
};

class TypeAPairing {
 public:
  explicit TypeAPairing(TypeAParams params);

  const TypeAParams& params() const { return params_; }
  const FpField* field() const { return field_.get(); }
  const BigInt& group_order() const { return params_.r; }

  // A deterministic generator of G1 (hash of a fixed tag).
  const G1Point& generator() const { return generator_; }

  // Hash arbitrary data onto G1 (order-r subgroup).
  G1Point HashToGroup(ByteSpan data) const;

  // Uniform scalar in [1, r).
  BigInt RandomScalar(crypto::Rng& rng) const;

  // The pairing ê(P, Q); both inputs must lie in the order-r subgroup.
  Fp2 Pair(const G1Point& p, const G1Point& q) const;

 private:
  Fp2 MillerLoop(const G1Point& p, const G1Point& q) const;
  Fp2 FinalExponentiation(const Fp2& f) const;

  TypeAParams params_;
  std::unique_ptr<FpField> field_;
  G1Point generator_;
};

}  // namespace reed::pairing
