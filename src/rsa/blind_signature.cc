#include "rsa/blind_signature.h"

#include "crypto/sha256.h"

namespace reed::rsa {

BlindedRequest BlindSignatureClient::Blind(ByteSpan fingerprint,
                                           crypto::Rng& rng) const {
  BigInt h = FullDomainHash(fingerprint, key_.n);
  // r must be invertible mod N; a random r < N fails only with negligible
  // probability (it would factor N), but we loop for correctness.
  for (;;) {
    BigInt r = BigInt::Random(rng, key_.n);
    if (r.IsZero()) continue;
    if (!BigInt::Gcd(r, key_.n).IsOne()) continue;
    BigInt r_e = BigInt::PowMod(r, key_.e, key_.n);
    BlindedRequest req;
    req.blinded = BigInt::MulMod(h, r_e, key_.n);
    req.r_inv = BigInt::InverseMod(r, key_.n);
    req.h = h;
    return req;
  }
}

Secret BlindSignatureClient::Unblind(const BlindedRequest& request,
                                     const BigInt& signature) const {
  BigInt s = BigInt::MulMod(signature, request.r_inv, key_.n);
  // Verify s^e == h before trusting the key manager's answer.
  if (BigInt::PowMod(s, key_.e, key_.n) != request.h) {
    throw Error("BlindSignatureClient: signature verification failed");
  }
  // MLE key = H(h^d): a fixed-width encoding keeps hashing canonical.
  return Secret(crypto::Sha256::HashToBytes(s.ToBytesPadded(key_.ByteLength())));
}

BigInt BlindSignatureServer::Sign(const BigInt& blinded) const {
  if (blinded.IsZero() || blinded >= key_.pub.n) {
    throw Error("BlindSignatureServer: blinded value out of range");
  }
  return PrivateApply(key_, blinded);
}

}  // namespace reed::rsa
