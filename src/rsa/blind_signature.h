// RSA blind-signature OPRF — the DupLESS MLE key-generation protocol
// (paper §II-A, §V "Key manager").
//
// Flow per chunk fingerprint fp:
//   client:  h = FDH(fp, N); picks random r; sends x = h * r^e mod N
//   manager: y = x^d mod N                (cannot see fp: x is blinded)
//   client:  s = y * r^{-1} mod N = h^d;  verifies s^e == h;  K_M = H(s)
//
// The manager signs without learning the fingerprint (obliviousness), and
// the client cannot compute h^d alone (the MLE key space looks random to
// anyone without d, defeating offline brute force on predictable chunks).
#pragma once

#include "rsa/rsa.h"
#include "util/secret.h"

namespace reed::rsa {

// Client-side state for one blinded request (keeps r to unblind later).
struct BlindedRequest {
  BigInt blinded;   // x = h * r^e mod N, sent to the key manager
  BigInt r_inv;     // r^{-1} mod N, kept locally
  BigInt h;         // FDH(fp), kept locally for verification
};

class BlindSignatureClient {
 public:
  explicit BlindSignatureClient(RsaPublicKey manager_key)
      : key_(std::move(manager_key)) {}

  const RsaPublicKey& manager_key() const { return key_; }

  // Blinds a chunk fingerprint for the key manager.
  [[nodiscard]] BlindedRequest Blind(ByteSpan fingerprint, crypto::Rng& rng) const;

  // Unblinds the manager's signature and verifies it; returns the 32-byte
  // MLE key H(h^d) as a Secret. Throws Error if the signature does not
  // verify.
  [[nodiscard]] Secret Unblind(const BlindedRequest& request, const BigInt& signature) const;

 private:
  RsaPublicKey key_;
};

class BlindSignatureServer {
 public:
  explicit BlindSignatureServer(RsaPrivateKey key) : key_(std::move(key)) {}

  const RsaPublicKey& public_key() const { return key_.pub; }

  // Signs a blinded value: y = x^d mod N. The server never sees h or fp.
  [[nodiscard]] BigInt Sign(const BigInt& blinded) const;

 private:
  RsaPrivateKey key_;
};

}  // namespace reed::rsa
