#include "rsa/key_regression.h"

#include "crypto/sha256.h"

namespace reed::rsa {

Secret KeyState::Serialize(const RsaPublicKey& derivation_key) const {
  Bytes out;
  AppendU64(out, version);
  Append(out, value.ToBytesPadded(derivation_key.ByteLength()));
  return Secret(std::move(out));
}

KeyState KeyState::Deserialize(const Secret& blob,
                               const RsaPublicKey& derivation_key) {
  ByteSpan raw = blob.ExposeForCrypto();
  std::size_t want = 8 + derivation_key.ByteLength();
  if (raw.size() != want) {
    throw Error("KeyState::Deserialize: bad blob length");
  }
  KeyState st;
  st.version = GetU64(raw);
  st.value = BigInt::FromBytes(raw.subspan(8));
  if (st.value >= derivation_key.n) {
    throw Error("KeyState::Deserialize: state out of range");
  }
  return st;
}

Secret KeyState::DeriveFileKey() const {
  // `input` carries the raw key-regression state — wipe it on every path.
  Bytes input = ToBytes("reed/file-key");
  ScopedWipe wipe_input(input);
  AppendU64(input, version);
  Append(input, value.ToBytes());
  return Secret(crypto::Sha256::HashToBytes(input));
}

KeyState KeyRegressionOwner::GenesisState(crypto::Rng& rng) const {
  KeyState st;
  st.version = 0;
  // Avoid the trivial fixed points 0 and 1 of x -> x^d.
  do {
    st.value = BigInt::Random(rng, keys_.pub.n);
  } while (st.value.IsZero() || st.value.IsOne());
  return st;
}

KeyState KeyRegressionOwner::Wind(const KeyState& state) const {
  KeyState next;
  next.version = state.version + 1;
  next.value = PrivateApply(keys_.priv, state.value);
  return next;
}

KeyState KeyRegressionMember::Unwind(const KeyState& state) const {
  if (state.version == 0) {
    throw Error("KeyRegressionMember: cannot unwind below version 0");
  }
  KeyState prev;
  prev.version = state.version - 1;
  prev.value = PublicApply(key_, state.value);
  return prev;
}

KeyState KeyRegressionMember::UnwindTo(const KeyState& state,
                                       std::uint64_t target_version) const {
  if (target_version > state.version) {
    throw Error("KeyRegressionMember: target version is in the future");
  }
  KeyState cur = state;
  while (cur.version > target_version) cur = Unwind(cur);
  return cur;
}

}  // namespace reed::rsa
