// RSA-based key regression (Fu, Kamara, Kohno — NDSS 2006), the KR-RSA
// construction REED uses for lazy revocation (paper §IV-C).
//
// A key-state sequence is derived under the owner's RSA *derivation* key
// pair: winding forward requires the private key (st_{i+1} = st_i^d mod N),
// while unwinding backward needs only the public key (st_i = st_{i+1}^e
// mod N). Handing a user the current state therefore grants access to every
// *past* state (and the files keyed by them) but to no future state — which
// is exactly lazy revocation: after a rekey, revoked users hold states that
// cannot reach the new one.
#pragma once

#include <cstdint>

#include "rsa/rsa.h"
#include "util/secret.h"

namespace reed::rsa {

// A key state: the version number plus the state value in [0, N).
struct KeyState {
  std::uint64_t version = 0;
  BigInt value;

  // Serialized (version || padded value) as a Secret; the blob grants
  // access to this and every past file key, so it only crosses the wire
  // inside an ABE or wrap-key envelope. The ABE layer wraps this blob.
  [[nodiscard]] Secret Serialize(const RsaPublicKey& derivation_key) const;
  [[nodiscard]] static KeyState Deserialize(const Secret& blob,
                                            const RsaPublicKey& derivation_key);

  // The symmetric file key for this state: H(state), as in §IV-C.
  [[nodiscard]] Secret DeriveFileKey() const;
};

// Owner side: holds the private derivation key and can wind forward.
class KeyRegressionOwner {
 public:
  explicit KeyRegressionOwner(RsaKeyPair derivation_keys)
      : keys_(std::move(derivation_keys)) {}

  const RsaPublicKey& public_key() const { return keys_.pub; }

  // Fresh random initial state (version 0).
  [[nodiscard]] KeyState GenesisState(crypto::Rng& rng) const;

  // st_{i+1} = st_i^d mod N.
  [[nodiscard]] KeyState Wind(const KeyState& state) const;

 private:
  RsaKeyPair keys_;
};

// Member side: holds only the public derivation key and can unwind.
class KeyRegressionMember {
 public:
  explicit KeyRegressionMember(RsaPublicKey public_derivation_key)
      : key_(std::move(public_derivation_key)) {}

  // st_i = st_{i+1}^e mod N; throws if already at version 0.
  [[nodiscard]] KeyState Unwind(const KeyState& state) const;

  // Unwinds down to `target_version` (<= state.version).
  [[nodiscard]] KeyState UnwindTo(const KeyState& state, std::uint64_t target_version) const;

 private:
  RsaPublicKey key_;
};

}  // namespace reed::rsa
