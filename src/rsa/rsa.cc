#include "rsa/rsa.h"

#include "bigint/prime.h"
#include "crypto/sha256.h"

namespace reed::rsa {

RsaKeyPair GenerateKeyPair(std::size_t bits, crypto::Rng& rng) {
  if (bits < 256 || bits % 2 != 0) {
    throw Error("GenerateKeyPair: modulus bits must be even and >= 256");
  }
  BigInt e(65537);
  for (;;) {
    BigInt p = bigint::GenerateRsaPrime(bits / 2, e, rng);
    BigInt q = bigint::GenerateRsaPrime(bits / 2, e, rng);
    if (p == q) continue;
    BigInt n = p * q;
    if (n.BitLength() != bits) continue;  // product fell short by one bit
    BigInt one(1);
    BigInt phi = (p - one) * (q - one);
    BigInt d = BigInt::InverseMod(e, phi);

    RsaKeyPair kp;
    kp.pub = {n, e};
    kp.priv.pub = kp.pub;
    kp.priv.d = d;
    kp.priv.p = p;
    kp.priv.q = q;
    kp.priv.dp = d % (p - one);
    kp.priv.dq = d % (q - one);
    kp.priv.qinv = BigInt::InverseMod(q, p);
    return kp;
  }
}

BigInt PublicApply(const RsaPublicKey& key, const BigInt& m) {
  if (m >= key.n) throw Error("PublicApply: message out of range");
  return BigInt::PowMod(m, key.e, key.n);
}

BigInt PrivateApply(const RsaPrivateKey& key, const BigInt& m) {
  if (m >= key.pub.n) throw Error("PrivateApply: message out of range");
  // Garner's CRT recombination.
  BigInt m1 = BigInt::PowMod(m % key.p, key.dp, key.p);
  BigInt m2 = BigInt::PowMod(m % key.q, key.dq, key.q);
  BigInt h = BigInt::MulMod(key.qinv, BigInt::SubMod(m1, m2, key.p), key.p);
  return m2 + h * key.q;
}

BigInt FullDomainHash(ByteSpan data, const BigInt& n) {
  std::size_t nbytes = (n.BitLength() + 7) / 8;
  Bytes expanded;
  expanded.reserve(nbytes + crypto::kSha256DigestSize);
  std::uint32_t counter = 0;
  while (expanded.size() < nbytes) {
    Bytes input = ToBytes("reed/fdh");
    AppendU32(input, counter++);
    Append(input, data);
    crypto::Sha256Digest block = crypto::Sha256::Hash(input);
    expanded.insert(expanded.end(), block.begin(), block.end());
  }
  expanded.resize(nbytes);
  return BigInt::FromBytes(expanded) % n;
}

Bytes SerializePublicKey(const RsaPublicKey& key) {
  Bytes out;
  Bytes n = key.n.ToBytes();
  Bytes e = key.e.ToBytes();
  AppendU32(out, static_cast<std::uint32_t>(n.size()));
  Append(out, n);
  AppendU32(out, static_cast<std::uint32_t>(e.size()));
  Append(out, e);
  return out;
}

RsaPublicKey DeserializePublicKey(ByteSpan blob) {
  if (blob.size() < 8) throw Error("RsaPublicKey: truncated");
  std::uint32_t n_len = GetU32(blob);
  if (blob.size() < 4 + n_len + 4) throw Error("RsaPublicKey: truncated");
  std::uint32_t e_len = GetU32(blob.subspan(4 + n_len));
  if (blob.size() != 8 + n_len + e_len) throw Error("RsaPublicKey: bad length");
  RsaPublicKey key;
  key.n = BigInt::FromBytes(blob.subspan(4, n_len));
  key.e = BigInt::FromBytes(blob.subspan(8 + n_len, e_len));
  return key;
}

namespace {
void AppendField(Bytes& out, const BigInt& v) {
  Bytes b = v.ToBytes();
  AppendU32(out, static_cast<std::uint32_t>(b.size()));
  Append(out, b);
}

BigInt ReadField(ByteSpan blob, std::size_t& off) {
  if (off + 4 > blob.size()) throw Error("RsaKeyPair: truncated");
  std::uint32_t len = GetU32(blob.subspan(off));
  off += 4;
  if (off + len > blob.size()) throw Error("RsaKeyPair: truncated");
  BigInt v = BigInt::FromBytes(blob.subspan(off, len));
  off += len;
  return v;
}
}  // namespace

Secret SerializeKeyPair(const RsaKeyPair& keys) {
  Bytes out;
  AppendField(out, keys.pub.n);
  AppendField(out, keys.pub.e);
  AppendField(out, keys.priv.d);
  AppendField(out, keys.priv.p);
  AppendField(out, keys.priv.q);
  AppendField(out, keys.priv.dp);
  AppendField(out, keys.priv.dq);
  AppendField(out, keys.priv.qinv);
  return Secret(std::move(out));
}

RsaKeyPair DeserializeKeyPair(const Secret& secret_blob) {
  ByteSpan blob = secret_blob.ExposeForCrypto();
  std::size_t off = 0;
  RsaKeyPair keys;
  keys.pub.n = ReadField(blob, off);
  keys.pub.e = ReadField(blob, off);
  keys.priv.pub = keys.pub;
  keys.priv.d = ReadField(blob, off);
  keys.priv.p = ReadField(blob, off);
  keys.priv.q = ReadField(blob, off);
  keys.priv.dp = ReadField(blob, off);
  keys.priv.dq = ReadField(blob, off);
  keys.priv.qinv = ReadField(blob, off);
  if (off != blob.size()) throw Error("RsaKeyPair: trailing bytes");
  if (keys.priv.p * keys.priv.q != keys.pub.n) {
    throw Error("RsaKeyPair: inconsistent CRT components");
  }
  return keys;
}

}  // namespace reed::rsa
