// RSA key generation and raw RSA operations (textbook RSA over our bigint),
// with CRT acceleration for the private operation.
//
// REED uses RSA in two places, both as the paper prescribes:
//  * the key manager's system-wide key pair for the blind-signature OPRF
//    (DupLESS-style MLE key generation; 1024-bit default, as in §V), and
//  * per-user derivation key pairs for RSA key regression (§IV-C).
// Raw (unpadded) RSA is correct in both constructions: the OPRF applies a
// full-domain hash before signing, and key regression winds full-domain
// states.
#pragma once

#include "bigint/bigint.h"
#include "crypto/random.h"
#include "util/secret.h"

namespace reed::rsa {

using bigint::BigInt;

struct RsaPublicKey {
  BigInt n;
  BigInt e;

  std::size_t ByteLength() const { return (n.BitLength() + 7) / 8; }
};

struct RsaPrivateKey {
  RsaPublicKey pub;
  BigInt d;
  // CRT components: private ops run ~4x faster via the two half-size
  // exponentiations.
  BigInt p, q, dp, dq, qinv;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

// Generates an RSA key pair with an n of exactly `bits` bits, e = 65537.
[[nodiscard]] RsaKeyPair GenerateKeyPair(std::size_t bits, crypto::Rng& rng);

// m^e mod n; m must be < n.
[[nodiscard]] BigInt PublicApply(const RsaPublicKey& key, const BigInt& m);

// m^d mod n via CRT; m must be < n.
[[nodiscard]] BigInt PrivateApply(const RsaPrivateKey& key, const BigInt& m);

// Full-domain hash of `data` into [0, n): SHA-256 expanded with a counter to
// the modulus width, then reduced. Used by the OPRF and key regression.
[[nodiscard]] BigInt FullDomainHash(ByteSpan data, const BigInt& n);

// Public-key serialization (length-prefixed n ‖ e); key-state records carry
// the owner's public derivation key in this form.
[[nodiscard]] Bytes SerializePublicKey(const RsaPublicKey& key);
[[nodiscard]] RsaPublicKey DeserializePublicKey(ByteSpan blob);

// Full key-pair serialization (all CRT components) — identity bundles and
// key-manager state files use this. The blob IS the private key, so it is
// Secret-typed: persisting it requires a visible Declassify at the caller.
[[nodiscard]] Secret SerializeKeyPair(const RsaKeyPair& keys);
[[nodiscard]] RsaKeyPair DeserializeKeyPair(const Secret& blob);

}  // namespace reed::rsa
