#include "server/storage_server.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "crypto/sha256.h"
#include "net/stats_wire.h"
#include "obs/metrics.h"
#include "util/fault_inject.h"
#include "util/schedule_fuzz.h"

namespace reed::server {
namespace {

// Per-opcode RPC metrics (DESIGN.md §9): resolved once per process, then the
// dispatch hot path touches only the cached atomic slots.
struct RpcMetrics {
  obs::Counter* calls;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Histogram* latency_us;
};

RpcMetrics MakeRpcMetrics(const char* label) {
  auto& reg = obs::Registry::Global();
  std::string prefix = std::string("server.rpc.") + label;
  return {&reg.GetCounter(prefix + ".calls"),
          &reg.GetCounter(prefix + ".bytes_in"),
          &reg.GetCounter(prefix + ".bytes_out"),
          &reg.GetHistogram(prefix + ".latency_us")};
}

RpcMetrics& MetricsFor(Opcode op) {
  static RpcMetrics put_chunks = MakeRpcMetrics("put_chunks");
  static RpcMetrics get_chunks = MakeRpcMetrics("get_chunks");
  static RpcMetrics put_object = MakeRpcMetrics("put_object");
  static RpcMetrics get_object = MakeRpcMetrics("get_object");
  static RpcMetrics has_object = MakeRpcMetrics("has_object");
  static RpcMetrics get_stats = MakeRpcMetrics("get_stats");
  static RpcMetrics unknown = MakeRpcMetrics("unknown");
  switch (op) {
    case Opcode::kPutChunks: return put_chunks;
    case Opcode::kGetChunks: return get_chunks;
    case Opcode::kPutObject: return put_object;
    case Opcode::kGetObject: return get_object;
    case Opcode::kHasObject: return has_object;
    case Opcode::kGetStats: return get_stats;
  }
  return unknown;
}

}  // namespace

StorageServer::Stores::Stores(const Options& options)
    : engine(options.data_dir.empty()
                 ? nullptr
                 : std::make_unique<store::DurableEngine>(options.data_dir,
                                                          options.durability)),
      containers(options.container_capacity,
                 engine ? &engine->segments() : nullptr),
      index(engine ? &engine->wal() : nullptr),
      data_objects(engine ? &engine->wal() : nullptr, store::kDataStoreTag),
      key_objects(engine ? &engine->wal() : nullptr, store::kKeyStoreTag) {
  // The engine opened (and tail-truncated) the on-disk logs before the
  // stores attached to them; now replay disk state into the fresh stores.
  if (engine) engine->Recover(containers, index, data_objects, key_objects);
}

StorageServer::StorageServer(std::string name)
    : StorageServer(std::move(name), Options()) {}

StorageServer::StorageServer(std::string name, Options options)
    : name_(std::move(name)),
      options_(std::move(options)),
      stores_(std::make_unique<Stores>(options_)) {}

StorageServer::~StorageServer() = default;

void StorageServer::Reopen() {
  if (options_.data_dir.empty()) {
    throw store::StoreError(
        "StorageServer: Reopen requires a durable data_dir");
  }
  // Destroy first (closing the log descriptors), then recover from disk —
  // the moral equivalent of a process restart, minus the exec.
  stores_.reset();
  stores_ = std::make_unique<Stores>(options_);
}

void StorageServer::Close() {
  if (!stores_->engine) return;
  stores_->engine->Checkpoint(stores_->index, stores_->data_objects,
                              stores_->key_objects);
}

store::DurableEngine::RecoveryStats StorageServer::RecoveryStats() const {
  if (!stores_->engine) return {};
  return stores_->engine->recovery_stats();
}

StorageServer::PutChunksResult StorageServer::PutChunks(
    const std::vector<std::pair<chunk::Fingerprint, Bytes>>& chunks) {
  PutChunksResult result;
  {
    // One stats critical section per batch, not per chunk — with the
    // multi-session server and the client's concurrent RPC fan-out this
    // lock is taken from many threads at once.
    std::uint64_t batch_bytes = 0;
    for (const auto& [fp, data] : chunks) batch_bytes += data.size();
    MutexLock lock(stats_mu_);
    logical_chunks_ += chunks.size();
    logical_bytes_ += batch_bytes;
  }
  static obs::Counter& ingest_contention =
      obs::Registry::Global().GetCounter("server.ingest.stripe_contention");
  for (const auto& [fp, data] : chunks) {
    // Lookup + append + insert must be one atomic step: if two clients race
    // on the same fingerprint with lookup and insert as separate critical
    // sections, both append the payload and the insert-loser's copy stays
    // orphaned in the container store — the dedup invariant (one stored copy
    // per fingerprint) breaks and physical_bytes overcounts. Striping by
    // fingerprint keeps the compound atomic where it matters (same chunk)
    // while distinct chunks ingest in parallel.
    // Before the stripe lock: a firing aborts the batch mid-way, leaving
    // earlier chunks fully ingested and this one untouched — never a
    // half-applied lookup/append/insert compound.
    REED_FAULT_POINT("server.ingest.chunk");
    schedfuzz::Perturb("server.ingest.stripe");
    ContendedMutexLock<obs::Counter> ingest(
        ingest_mu_[chunk::FingerprintHash{}(fp) % kIngestStripes].mu,
        ingest_contention);
    if (stores_->index.Lookup(fp).has_value()) {
      ++result.duplicates;
      continue;
    }
    store::ChunkLocation loc = stores_->containers.Append(data);
    bool inserted = false;
    try {
      inserted = stores_->index.Insert(fp, loc);
    } catch (...) {
      // The append landed but the index entry did not (the fault sweep arms
      // exactly this window): discard the appended bytes so the failure
      // leaves no orphaned container data behind.
      stores_->containers.Discard(loc);
      throw;
    }
    if (!inserted) {
      // Unreachable while the ingest stripe serializes lookup+insert; if it
      // ever fires, dedup accounting is wrong — discard our losing copy and
      // fail loudly rather than report the chunk as stored.
      stores_->containers.Discard(loc);
      throw Error("StorageServer: concurrent insert raced for fingerprint " +
                  fp.ToHex());
    }
    ++result.stored;
    result.stored_bytes += data.size();
  }
  // Batch-granular dedup counters (ratio = duplicate / logical): one pair of
  // atomic adds per RPC, nothing per chunk.
  auto& reg = obs::Registry::Global();
  static obs::Counter& logical = reg.GetCounter("server.dedup.logical_chunks");
  static obs::Counter& dups = reg.GetCounter("server.dedup.duplicate_chunks");
  logical.Add(chunks.size());
  dups.Add(result.duplicates);
  // Durability point: the batch's appends and index records ride one group
  // fsync (segments first via the WAL pre-sync hook). No locks held here.
  if (stores_->engine) stores_->engine->Commit();
  return result;
}

std::vector<Bytes> StorageServer::GetChunks(
    const std::vector<chunk::Fingerprint>& fps) {
  std::vector<Bytes> out;
  out.reserve(fps.size());
  std::set<std::uint32_t> containers_touched;
  for (const auto& fp : fps) {
    REED_FAULT_POINT("server.chunks.read");
    auto loc = stores_->index.Lookup(fp);
    if (!loc.has_value()) {
      throw Error("StorageServer: unknown fingerprint " + fp.ToHex());
    }
    containers_touched.insert(loc->container_id);
    out.push_back(stores_->containers.Read(*loc));
  }
  if (options_.read_seek_seconds > 0 && !containers_touched.empty()) {
    // Disk model: a restore batch is served with reads sorted by container
    // (standard practice), so it pays one seek per *distinct* container.
    // Fragmentation across daily backups grows that count, degrading
    // restore speed over days.
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options_.read_seek_seconds *
        static_cast<double>(containers_touched.size())));
  }
  return out;
}

void StorageServer::PutObject(StoreId store, const std::string& name,
                              Bytes value) {
  StoreFor(store).Put(name, std::move(value));
  if (stores_->engine) stores_->engine->Commit();
}

Bytes StorageServer::GetObject(StoreId store, const std::string& name) const {
  return StoreFor(store).Get(name);
}

bool StorageServer::HasObject(StoreId store, const std::string& name) const {
  return StoreFor(store).Contains(name);
}

StorageServer::Stats StorageServer::stats() const {
  Stats s;
  {
    MutexLock lock(stats_mu_);
    s.logical_chunks = logical_chunks_;
    s.logical_bytes = logical_bytes_;
  }
  auto cs = stores_->containers.stats();
  s.unique_chunks = cs.chunks;
  s.physical_bytes = cs.bytes;
  s.data_object_bytes = stores_->data_objects.total_bytes();
  s.key_object_bytes = stores_->key_objects.total_bytes();
  return s;
}

StorageServer::ConsistencyReport StorageServer::CheckConsistency() const {
  ConsistencyReport report;
  stores_->index.ForEach([&](const chunk::Fingerprint& fp,
                     const store::ChunkLocation& loc) {
    ++report.index_entries;
    report.index_bytes += loc.length;
    if (!report.ok) return;
    try {
      Bytes chunk = stores_->containers.Read(loc);
      if (chunk.size() != loc.length) {
        report.ok = false;
        report.detail = "short read for fingerprint " + fp.ToHex();
      }
    } catch (const Error& e) {
      // A dangling index entry: the location no longer resolves.
      report.ok = false;
      report.detail = "dangling entry for fingerprint " + fp.ToHex() + ": " +
                      e.what();
    }
  });
  auto cs = stores_->containers.stats();
  report.stored_chunks = cs.chunks;
  report.stored_bytes = cs.bytes;
  if (report.ok && report.stored_chunks != report.index_entries) {
    report.ok = false;
    report.detail = "orphaned container chunks: stored " +
                    std::to_string(report.stored_chunks) + ", indexed " +
                    std::to_string(report.index_entries);
  }
  if (report.ok && report.stored_bytes != report.index_bytes) {
    report.ok = false;
    report.detail = "container/index byte mismatch: stored " +
                    std::to_string(report.stored_bytes) + ", indexed " +
                    std::to_string(report.index_bytes);
  }
  return report;
}

std::string StorageServer::PackageDigest() const {
  // Collect under the shard locks (cheap: fingerprint + location copies),
  // then read and hash outside them so the per-entry work never holds a
  // shard lock across a container read.
  std::vector<std::pair<chunk::Fingerprint, store::ChunkLocation>> entries;
  stores_->index.ForEach([&](const chunk::Fingerprint& fp,
                     const store::ChunkLocation& loc) {
    entries.emplace_back(fp, loc);
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              // Fingerprints are public identifiers; ordinary ordering is
              // fine, but spell it without memcmp so the crypto lint need
              // not carry an allowlist entry.
              const ByteSpan sa = a.first.AsSpan();
              const ByteSpan sb = b.first.AsSpan();
              return std::lexicographical_compare(sa.begin(), sa.end(),
                                                  sb.begin(), sb.end());
            });
  crypto::Sha256 hash;
  for (const auto& [fp, loc] : entries) {
    hash.Update(fp.AsSpan());
    hash.Update(stores_->containers.Read(loc));
  }
  crypto::Sha256Digest digest = hash.Finish();
  return HexEncode(ByteSpan(digest.data(), digest.size()));
}

Bytes StorageServer::HandleRequest(ByteSpan request) {
  static obs::Counter& rpc_errors =
      obs::Registry::Global().GetCounter("server.rpc.errors");
  net::Writer resp;
  RpcMetrics* rpc = nullptr;
  auto started = std::chrono::steady_clock::now();
  // Records response size and dispatch latency on every exit path, success
  // and error alike, once the opcode is known.
  auto finish = [&](Bytes out) {
    if (rpc != nullptr) {
      rpc->bytes_out->Add(out.size());
      auto us = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started);
      rpc->latency_us->Record(
          us.count() < 0 ? 0 : static_cast<std::uint64_t>(us.count()));
    }
    return out;
  };
  try {
    REED_FAULT_POINT("server.rpc.dispatch");
    net::Reader r(request);
    auto opcode = static_cast<Opcode>(r.U8());
    rpc = &MetricsFor(opcode);
    rpc->calls->Increment();
    rpc->bytes_in->Add(request.size());
    switch (opcode) {
      case Opcode::kPutChunks: {
        std::uint32_t count = r.U32();
        // Each entry carries a 32-byte fingerprint + 4-byte length prefix;
        // reject forged counts before reserving.
        if (static_cast<std::uint64_t>(count) * 36 > r.remaining()) {
          throw Error("StorageServer: chunk count exceeds payload");
        }
        std::vector<std::pair<chunk::Fingerprint, Bytes>> chunks;
        chunks.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          chunk::Fingerprint fp = chunk::Fingerprint::FromBytes(r.Raw(32));
          chunks.emplace_back(fp, r.Blob());
        }
        r.ExpectEnd();
        PutChunksResult res = PutChunks(chunks);
        resp.U8(0);
        resp.U32(static_cast<std::uint32_t>(res.duplicates));
        resp.U32(static_cast<std::uint32_t>(res.stored));
        resp.U64(res.stored_bytes);
        return finish(resp.Take());
      }
      case Opcode::kGetChunks: {
        std::uint32_t count = r.U32();
        if (static_cast<std::uint64_t>(count) * 32 > r.remaining()) {
          throw Error("StorageServer: fingerprint count exceeds payload");
        }
        std::vector<chunk::Fingerprint> fps;
        fps.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          fps.push_back(chunk::Fingerprint::FromBytes(r.Raw(32)));
        }
        r.ExpectEnd();
        std::vector<Bytes> chunks = GetChunks(fps);
        resp.U8(0);
        for (const Bytes& c : chunks) resp.Blob(c);
        return finish(resp.Take());
      }
      case Opcode::kPutObject: {
        auto store = static_cast<StoreId>(r.U8());
        std::string name = r.Str();
        Bytes value = r.Blob();
        r.ExpectEnd();
        PutObject(store, name, std::move(value));
        resp.U8(0);
        return finish(resp.Take());
      }
      case Opcode::kGetObject: {
        auto store = static_cast<StoreId>(r.U8());
        std::string name = r.Str();
        r.ExpectEnd();
        Bytes value = GetObject(store, name);
        resp.U8(0);
        resp.Blob(value);
        return finish(resp.Take());
      }
      case Opcode::kHasObject: {
        auto store = static_cast<StoreId>(r.U8());
        std::string name = r.Str();
        r.ExpectEnd();
        resp.U8(0);
        resp.U8(HasObject(store, name) ? 1 : 0);
        return finish(resp.Take());
      }
      case Opcode::kGetStats: {
        r.ExpectEnd();
        // Mirror this server's storage accounting into gauges so the wire
        // snapshot carries them; with several in-process servers the gauges
        // reflect the most recently queried one (counters and histograms
        // aggregate process-wide regardless).
        Stats s = stats();
        auto& reg = obs::Registry::Global();
        reg.GetGauge("server.store.logical_chunks")
            .Set(static_cast<std::int64_t>(s.logical_chunks));
        reg.GetGauge("server.store.logical_bytes")
            .Set(static_cast<std::int64_t>(s.logical_bytes));
        reg.GetGauge("server.store.unique_chunks")
            .Set(static_cast<std::int64_t>(s.unique_chunks));
        reg.GetGauge("server.store.physical_bytes")
            .Set(static_cast<std::int64_t>(s.physical_bytes));
        reg.GetGauge("server.store.data_object_bytes")
            .Set(static_cast<std::int64_t>(s.data_object_bytes));
        reg.GetGauge("server.store.key_object_bytes")
            .Set(static_cast<std::int64_t>(s.key_object_bytes));
        resp.U8(0);
        net::EncodeSnapshot(resp, reg.TakeSnapshot());
        return finish(resp.Take());
      }
    }
    throw Error("StorageServer: unknown opcode");
  } catch (const Error& e) {
    rpc_errors.Increment();
    net::Writer err;
    err.U8(1);
    err.Str(e.what());
    return finish(err.Take());
  }
}

}  // namespace reed::server
