// The REED server (paper §III-A, §V "Server"): server-side deduplication
// over trimmed packages plus blob storage for recipes, stub files, and —
// when acting as the key-store server — encrypted key states.
//
// Wire protocol (opcode byte + fields; see Handle* methods):
//   kPutChunks: upload a batch of (fingerprint, trimmed package); the server
//               stores only fingerprints it has never seen (dedup) and
//               reports which were duplicates.
//   kGetChunks: fetch trimmed packages by fingerprint.
//   kPutObject / kGetObject / kHasObject: named blobs in the data or key
//               store.
//   kGetStats:  dump the process-wide metrics registry (obs::Snapshot over
//               net/stats_wire.h) plus this server's storage gauges — the
//               payload behind `reedctl stats`.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "net/wire.h"
#include "store/container_store.h"
#include "store/durable_engine.h"
#include "store/index.h"
#include "util/thread_annotations.h"

namespace reed::server {

enum class Opcode : std::uint8_t {
  kPutChunks = 1,
  kGetChunks = 2,
  kPutObject = 3,
  kGetObject = 4,
  kHasObject = 5,
  kGetStats = 6,
};

enum class StoreId : std::uint8_t {
  kData = 0,  // recipes, stub files, file metadata
  kKey = 1,   // encrypted key states (paper's separate key store)
};

class StorageServer {
 public:
  struct Options {
    std::size_t container_capacity =
        store::ContainerStore::kDefaultContainerSize;
    // Disk model for reads: seek cost charged whenever consecutive chunk
    // reads switch containers. Backups fragment over days (new chunks land
    // in new containers interleaved with old ones), which is what degrades
    // restore speed in the paper's Fig. 10 / [Lillibridge FAST'13]. 0 = off.
    double read_seek_seconds = 0;
    // Non-empty = durable mode (DESIGN.md §12): containers, the fingerprint
    // index, and both object stores persist under this directory, and
    // construction runs crash recovery over whatever it finds there. Empty
    // keeps the historical in-memory behaviour.
    std::string data_dir;
    store::DurabilityOptions durability;
  };

  explicit StorageServer(std::string name = "server");
  StorageServer(std::string name, Options options);
  ~StorageServer();

  const std::string& name() const { return name_; }

  // --- durable lifecycle (open happens in the constructor) ---

  // Durable mode only (throws StoreError otherwise): drops all in-memory
  // state and recovers from disk, exactly like a process restart, while the
  // object identity (and any channels pointing at it) stays valid. Caller
  // must be quiesced — this is a lifecycle operation, not a data path.
  void Reopen();

  // Durable mode: checkpoints the metadata plane and flushes everything so
  // a subsequent open replays nothing. The server remains usable. No-op in
  // memory-only mode.
  void Close();

  // Recovery statistics from the last open/Reopen (zeros in memory mode).
  [[nodiscard]] store::DurableEngine::RecoveryStats RecoveryStats() const;

  // --- direct API (also reachable via HandleRequest) ---

  struct PutChunksResult {
    std::size_t duplicates = 0;
    std::size_t stored = 0;
    std::uint64_t stored_bytes = 0;
  };
  [[nodiscard]] PutChunksResult PutChunks(
      const std::vector<std::pair<chunk::Fingerprint, Bytes>>& chunks);

  // Throws Error if any fingerprint is unknown.
  [[nodiscard]] std::vector<Bytes> GetChunks(
      const std::vector<chunk::Fingerprint>& fps);

  void PutObject(StoreId store, const std::string& name, Bytes value);
  [[nodiscard]] Bytes GetObject(StoreId store, const std::string& name) const;
  [[nodiscard]] bool HasObject(StoreId store, const std::string& name) const;

  struct Stats {
    std::uint64_t logical_chunks = 0;   // chunks received (pre-dedup)
    std::uint64_t logical_bytes = 0;
    std::uint64_t unique_chunks = 0;    // chunks stored (post-dedup)
    std::uint64_t physical_bytes = 0;   // trimmed-package bytes stored
    std::uint64_t data_object_bytes = 0;
    std::uint64_t key_object_bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

  // Storage-accounting helper: object bytes under a name prefix.
  [[nodiscard]] std::uint64_t ObjectBytesWithPrefix(StoreId store,
                                      std::string_view prefix) const {
    return StoreFor(store).TotalBytesWithPrefix(prefix);
  }

  // Wire entry point: status byte 0 = OK, 1 = error (+ message).
  [[nodiscard]] Bytes HandleRequest(ByteSpan request);

  // Cross-checks the dedup state after a failure: every index entry must
  // resolve to a readable container location (no dangling entries), and the
  // container store must hold exactly the indexed chunks/bytes (no orphaned
  // appends). Walks the whole index — a test/recovery facility, not a data
  // path. `ok` is false on the first violation, described in `detail`.
  struct ConsistencyReport {
    bool ok = true;
    std::string detail;
    std::uint64_t index_entries = 0;
    std::uint64_t index_bytes = 0;    // sum of indexed location lengths
    std::uint64_t stored_chunks = 0;  // container-store chunk count
    std::uint64_t stored_bytes = 0;   // container-store payload bytes
  };
  [[nodiscard]] ConsistencyReport CheckConsistency() const;

  // Order-independent digest over every stored trimmed package:
  // SHA-256 over the (fingerprint, payload) pairs sorted by fingerprint.
  // Recipes, stubs, and key states are deliberately excluded — this is the
  // model checker's oracle that a stub-only rekey left the package bytes on
  // this server bit-identical (paper §IV-A: revocation never rewrites
  // packages). Walks the whole index like CheckConsistency — a test/audit
  // facility, not a data path.
  [[nodiscard]] std::string PackageDigest() const;

 private:
  // The four stores plus (in durable mode) the engine that recovers and
  // persists them, bundled so Reopen() can rebuild everything in place with
  // one pointer swap while the StorageServer address — captured raw by
  // in-process channels (core::ReedSystem) — stays stable.
  struct Stores {
    explicit Stores(const Options& options);

    std::unique_ptr<store::DurableEngine> engine;  // null in memory mode
    store::ContainerStore containers;
    store::FingerprintIndex index;
    store::ObjectStore data_objects;
    store::ObjectStore key_objects;
  };

  const store::ObjectStore& StoreFor(StoreId id) const {
    return id == StoreId::kData ? stores_->data_objects
                                : stores_->key_objects;
  }
  store::ObjectStore& StoreFor(StoreId id) {
    return id == StoreId::kData ? stores_->data_objects
                                : stores_->key_objects;
  }

  std::string name_;
  Options options_;
  std::unique_ptr<Stores> stores_;

  // Serializes the dedup check-then-store step in PutChunks; see there.
  // index_ and containers_ lock themselves — the ingest stripes guard the
  // lookup→append→insert *compound*, not any single member. Striped by
  // fingerprint so concurrent sessions ingesting distinct chunks proceed in
  // parallel while two writers racing on the SAME fingerprint still
  // serialize (same stripe), preserving the one-copy dedup invariant.
  // Wrapped in a struct so each array element default-constructs with its
  // rank (Mutex is not copyable, so a braced array initializer cannot).
  struct IngestStripe {
    Mutex mu{LockRank::kServerIngest};
  };
  static constexpr std::size_t kIngestStripes = 16;
  std::array<IngestStripe, kIngestStripes> ingest_mu_;
  mutable Mutex stats_mu_{LockRank::kServerStats};
  std::uint64_t logical_chunks_ REED_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t logical_bytes_ REED_GUARDED_BY(stats_mu_) = 0;
};

}  // namespace reed::server
