#include "store/container_store.h"

#include "store/segment_log.h"
#include "store/store_error.h"

#include "obs/metrics.h"
#include "util/fault_inject.h"

namespace reed::store {
namespace {

// Process-wide write-path metrics, resolved once: Append stays
// allocation-free beyond its own payload copy.
struct ContainerMetrics {
  obs::Counter* appends;
  obs::Counter* bytes;
  obs::Counter* containers_opened;
  obs::Counter* discards;
};

ContainerMetrics& Metrics() {
  auto& reg = obs::Registry::Global();
  static ContainerMetrics m{&reg.GetCounter("store.container.appends"),
                            &reg.GetCounter("store.container.bytes"),
                            &reg.GetCounter("store.container.opened"),
                            &reg.GetCounter("store.container.discards")};
  return m;
}

}  // namespace

ContainerStore::ContainerStore(std::size_t container_capacity, SegmentLog* log)
    : capacity_(container_capacity), log_(log) {
  if (capacity_ == 0) throw StoreError("ContainerStore: zero capacity");
  containers_.emplace_back();
  containers_.back().reserve(capacity_);
  stats_.containers = 1;
  Metrics().containers_opened->Increment();
}

ChunkLocation ContainerStore::Append(ByteSpan data) {
  // Before the lock: a firing must model "the write never happened", not a
  // torn container (Append under the lock is all-or-nothing anyway).
  REED_FAULT_POINT("store.container.append");
  if (data.empty()) throw StoreError("ContainerStore: empty chunk");
  WriterMutexLock lock(mu_);
  Bytes* current = &containers_.back();
  if (current->size() + data.size() > capacity_ && !current->empty()) {
    containers_.emplace_back();
    containers_.back().reserve(capacity_);
    ++stats_.containers;
    Metrics().containers_opened->Increment();
    current = &containers_.back();
    if (log_ != nullptr) {
      log_->Rotate(static_cast<std::uint32_t>(containers_.size() - 1));
    }
  }
  ChunkLocation loc;
  loc.container_id = static_cast<std::uint32_t>(containers_.size() - 1);
  loc.offset = static_cast<std::uint32_t>(current->size());
  loc.length = static_cast<std::uint32_t>(data.size());
  reed::Append(*current, data);
  ++stats_.chunks;
  stats_.bytes += data.size();
  Metrics().appends->Increment();
  Metrics().bytes->Add(data.size());
  // Mirror to the segment log while the writer lock pins the (id, offset)
  // ordering — replay re-applies records in file order and must land every
  // chunk at the same logical coordinates.
  if (log_ != nullptr) log_->AppendChunk(loc.container_id, loc.offset, data);
  return loc;
}

void ContainerStore::Discard(const ChunkLocation& loc) {
  WriterMutexLock lock(mu_);
  DiscardLocked(loc);
  Metrics().discards->Increment();
  if (log_ != nullptr) log_->AppendDiscard(loc);
}

void ContainerStore::DiscardLocked(const ChunkLocation& loc) {
  if (loc.container_id >= containers_.size()) {
    throw StoreError("ContainerStore: discard of bad container id");
  }
  Bytes& container = containers_[loc.container_id];
  if (static_cast<std::size_t>(loc.offset) + loc.length > container.size()) {
    throw StoreError("ContainerStore: discard out of bounds");
  }
  if (loc.container_id == containers_.size() - 1 &&
      static_cast<std::size_t>(loc.offset) + loc.length == container.size()) {
    container.resize(loc.offset);
  } else {
    SecureZero(MutableByteSpan(container).subspan(loc.offset, loc.length));
  }
  --stats_.chunks;
  stats_.bytes -= loc.length;
}

Bytes ContainerStore::Read(const ChunkLocation& loc) const {
  ReaderMutexLock lock(mu_);
  if (loc.container_id >= containers_.size()) {
    throw StoreError("ContainerStore: bad container id");
  }
  const Bytes& container = containers_[loc.container_id];
  if (static_cast<std::size_t>(loc.offset) + loc.length > container.size()) {
    throw StoreError("ContainerStore: location out of bounds");
  }
  return Bytes(container.begin() + loc.offset,
               container.begin() + loc.offset + loc.length);
}

ContainerStore::Stats ContainerStore::stats() const {
  ReaderMutexLock lock(mu_);
  return stats_;
}

void ContainerStore::ReplayBeginContainer(std::uint32_t id) {
  WriterMutexLock lock(mu_);
  if (id == 0) {
    if (containers_.size() != 1 || !containers_[0].empty()) {
      throw StoreError("ContainerStore: replay into a non-fresh store");
    }
    return;
  }
  if (id != containers_.size()) {
    throw StoreError("ContainerStore: replay container id out of sequence");
  }
  // Replay bumps only the recovery counters (DurableEngine), never the
  // normal write-path metrics — a restart must not look like new writes.
  containers_.emplace_back();
  containers_.back().reserve(capacity_);
  ++stats_.containers;
}

void ContainerStore::ReplayAppend(std::uint32_t container_id,
                                  std::uint32_t offset, ByteSpan data) {
  WriterMutexLock lock(mu_);
  if (container_id != containers_.size() - 1) {
    throw StoreError("ContainerStore: replay append to non-current container");
  }
  Bytes& current = containers_.back();
  if (offset != current.size()) {
    throw StoreError("ContainerStore: replay append offset mismatch");
  }
  reed::Append(current, data);
  ++stats_.chunks;
  stats_.bytes += data.size();
}

void ContainerStore::ReplayDiscard(const ChunkLocation& loc) {
  WriterMutexLock lock(mu_);
  DiscardLocked(loc);
}

}  // namespace reed::store
