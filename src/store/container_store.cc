#include "store/container_store.h"

#include "obs/metrics.h"

namespace reed::store {
namespace {

// Process-wide write-path metrics, resolved once: Append stays
// allocation-free beyond its own payload copy.
struct ContainerMetrics {
  obs::Counter* appends;
  obs::Counter* bytes;
  obs::Counter* containers_opened;
};

ContainerMetrics& Metrics() {
  auto& reg = obs::Registry::Global();
  static ContainerMetrics m{&reg.GetCounter("store.container.appends"),
                            &reg.GetCounter("store.container.bytes"),
                            &reg.GetCounter("store.container.opened")};
  return m;
}

}  // namespace

ContainerStore::ContainerStore(std::size_t container_capacity)
    : capacity_(container_capacity) {
  if (capacity_ == 0) throw Error("ContainerStore: zero capacity");
  containers_.emplace_back();
  containers_.back().reserve(capacity_);
  stats_.containers = 1;
  Metrics().containers_opened->Increment();
}

ChunkLocation ContainerStore::Append(ByteSpan data) {
  if (data.empty()) throw Error("ContainerStore: empty chunk");
  WriterMutexLock lock(mu_);
  Bytes* current = &containers_.back();
  if (current->size() + data.size() > capacity_ && !current->empty()) {
    containers_.emplace_back();
    containers_.back().reserve(capacity_);
    ++stats_.containers;
    Metrics().containers_opened->Increment();
    current = &containers_.back();
  }
  ChunkLocation loc;
  loc.container_id = static_cast<std::uint32_t>(containers_.size() - 1);
  loc.offset = static_cast<std::uint32_t>(current->size());
  loc.length = static_cast<std::uint32_t>(data.size());
  reed::Append(*current, data);
  ++stats_.chunks;
  stats_.bytes += data.size();
  Metrics().appends->Increment();
  Metrics().bytes->Add(data.size());
  return loc;
}

Bytes ContainerStore::Read(const ChunkLocation& loc) const {
  ReaderMutexLock lock(mu_);
  if (loc.container_id >= containers_.size()) {
    throw Error("ContainerStore: bad container id");
  }
  const Bytes& container = containers_[loc.container_id];
  if (static_cast<std::size_t>(loc.offset) + loc.length > container.size()) {
    throw Error("ContainerStore: location out of bounds");
  }
  return Bytes(container.begin() + loc.offset,
               container.begin() + loc.offset + loc.length);
}

ContainerStore::Stats ContainerStore::stats() const {
  ReaderMutexLock lock(mu_);
  return stats_;
}

}  // namespace reed::store
