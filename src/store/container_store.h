// Container store: unique trimmed packages are batched into fixed-capacity
// (4 MB, §V-B) containers before hitting the storage backend, amortizing
// backend I/O. Locations are stable (container id, offset, length) triples
// recorded by the fingerprint index and file recipes.
//
// Persistence is optional: attach a SegmentLog and every append/discard is
// mirrored as a framed record in the per-container segment files while the
// in-memory vector doubles as the read cache (the full store stays
// memory-resident; DESIGN.md §12). The Replay* methods are the recovery
// path — they rebuild the identical in-memory state from segment records
// WITHOUT re-logging, and verify that replayed locations land exactly where
// the original appends did.
#pragma once

#include <vector>

#include "util/bytes.h"
#include "util/thread_annotations.h"

namespace reed::store {

class SegmentLog;

struct ChunkLocation {
  std::uint32_t container_id = 0;
  std::uint32_t offset = 0;
  std::uint32_t length = 0;

  bool operator==(const ChunkLocation&) const = default;
};

class ContainerStore {
 public:
  static constexpr std::size_t kDefaultContainerSize = 4u << 20;  // 4 MB

  explicit ContainerStore(std::size_t container_capacity = kDefaultContainerSize,
                          SegmentLog* log = nullptr);

  // Appends one chunk; opens a new container when the current one cannot
  // fit it. Chunks never span containers. Dropping the returned location
  // orphans the stored bytes (nothing can ever read them back).
  [[nodiscard]] ChunkLocation Append(ByteSpan data);

  // Reader-concurrent: restore sessions fan in many Read calls per server,
  // and none of them needs to exclude the others — only Append (which may
  // reallocate container storage) takes the writer side.
  [[nodiscard]] Bytes Read(const ChunkLocation& loc) const;

  // Rolls back an Append whose enclosing compound operation failed before
  // the location was published anywhere (index, recipe). A tail append is
  // physically truncated so the space is reused; an interior chunk (another
  // writer appended behind it meanwhile) is zeroed in place and carried as
  // unaccounted garbage, like log garbage awaiting compaction. Either way
  // stats() stops counting the chunk and its bytes, so a failed ingest
  // leaves no orphaned accounting (StorageServer::CheckConsistency).
  void Discard(const ChunkLocation& loc);

  struct Stats {
    std::uint64_t chunks = 0;
    std::uint64_t bytes = 0;        // payload bytes stored
    std::uint64_t containers = 0;   // containers opened (incl. current)
  };
  [[nodiscard]] Stats stats() const;

  // --- recovery-only (DurableEngine, single-threaded, before serving) ---

  // Opens container `id` during replay; id 0 (created by the constructor)
  // is verified rather than opened.
  void ReplayBeginContainer(std::uint32_t id);
  // Re-applies a segment append/discard record; throws StoreError if the
  // replayed location disagrees with what the original operation recorded.
  void ReplayAppend(std::uint32_t container_id, std::uint32_t offset,
                    ByteSpan data);
  void ReplayDiscard(const ChunkLocation& loc);

 private:
  void DiscardLocked(const ChunkLocation& loc) REED_REQUIRES(mu_);

  std::size_t capacity_;
  SegmentLog* log_;  // null = memory-only (the pre-durability behaviour)
  mutable SharedMutex mu_{LockRank::kStoreContainer};
  std::vector<Bytes> containers_ REED_GUARDED_BY(mu_);
  Stats stats_ REED_GUARDED_BY(mu_);
};

}  // namespace reed::store
