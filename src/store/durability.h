// Durability knobs for the persistent store (DESIGN.md §12).
//
// The paper's prototype leans on a database engine for persistence; we build
// the layer from scratch, and these options pick where each deployment sits
// on the durability/latency curve:
//
//   policy    fsync when                           survives
//   kNone     never (only on Close)                process crash (page cache)
//   kGrouped  per commit, batched over a window    machine crash
//   kAlways   every commit, no batching window     machine crash
//
// A SIGKILLed process loses nothing the kernel already holds, so kNone is
// enough for the crash-recovery tests; kGrouped is the honest default for a
// real deployment (group commit amortizes the fsync over every writer that
// lands inside the window); kAlways is the paranoid/bench-floor setting.
#pragma once

#include <chrono>

namespace reed::store {

enum class FsyncPolicy : std::uint8_t {
  kNone = 0,
  kGrouped = 1,
  kAlways = 2,
};

struct DurabilityOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kGrouped;
  // How long a group-commit leader dwells before the batched fsync, giving
  // concurrent writers a chance to ride the same flush. 0 = fsync at once
  // (still shared by every commit already waiting).
  std::chrono::microseconds group_commit_window{500};
};

}  // namespace reed::store
