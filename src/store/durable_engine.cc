#include "store/durable_engine.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/file_io.h"

namespace reed::store {
namespace {

constexpr const char* kCheckpointName = "index.ckpt";

// Recovery counters (ISSUE: store.recovery.*): resolved once, bumped only
// by the single-threaded recovery pass.
struct RecoveryMetrics {
  obs::Counter* replayed_records;
  obs::Counter* discarded_tail;
  obs::Counter* segments_sealed;
  obs::Counter* orphans_discarded;
  obs::Counter* dangling_erased;
  obs::Counter* checkpoints;
};

RecoveryMetrics& Metrics() {
  auto& reg = obs::Registry::Global();
  static RecoveryMetrics m{
      &reg.GetCounter("store.recovery.replayed_records"),
      &reg.GetCounter("store.recovery.discarded_tail"),
      &reg.GetCounter("store.recovery.segments_sealed"),
      &reg.GetCounter("store.recovery.orphans_discarded"),
      &reg.GetCounter("store.recovery.dangling_erased"),
      &reg.GetCounter("store.checkpoint.writes"),
  };
  return m;
}

std::uint64_t LocKey(std::uint32_t container_id, std::uint32_t offset) {
  return (static_cast<std::uint64_t>(container_id) << 32) | offset;
}

}  // namespace

DurableEngine::DurableEngine(std::string dir, DurabilityOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (dir_.empty()) throw StoreError("DurableEngine: empty data dir");
  (void)Metrics();
  util::CreateDirectories(dir_);
  segments_ = std::make_unique<SegmentLog>(dir_, options_);
  wal_ = std::make_unique<Wal>(dir_ + "/wal.log", options_);
  // Data before log: every group fsync of the WAL flushes the chunk
  // segments first, so no durable index record can point at lost bytes.
  wal_->set_pre_sync_hook([this] { segments_->Sync(); });
}

ObjectStore& DurableEngine::StoreForTag(std::uint8_t tag,
                                        ObjectStore& data_objects,
                                        ObjectStore& key_objects) {
  switch (tag) {
    case kDataStoreTag: return data_objects;
    case kKeyStoreTag: return key_objects;
    default: throw StoreError("DurableEngine: unknown object store tag");
  }
}

void DurableEngine::ApplyMetadataRecord(const RecordView& rec,
                                        FingerprintIndex& index,
                                        ObjectStore& data_objects,
                                        ObjectStore& key_objects) {
  switch (rec.type) {
    case RecordType::kIndexInsert: {
      IndexInsertRecord r = DecodeIndexInsert(rec.payload);
      index.ReplayInsert(r.fp, r.loc);
      return;
    }
    case RecordType::kIndexErase: {
      IndexEraseRecord r = DecodeIndexErase(rec.payload);
      index.ReplayErase(r.fp);
      return;
    }
    case RecordType::kObjectPut: {
      ObjectPutRecord r = DecodeObjectPut(rec.payload);
      StoreForTag(r.store_tag, data_objects, key_objects)
          .ReplayPut(r.name, std::move(r.value));
      return;
    }
    case RecordType::kObjectErase: {
      ObjectEraseRecord r = DecodeObjectErase(rec.payload);
      StoreForTag(r.store_tag, data_objects, key_objects).ReplayErase(r.name);
      return;
    }
    default:
      throw StoreError("DurableEngine: unexpected metadata record type");
  }
}

void DurableEngine::Recover(ContainerStore& containers,
                            FingerprintIndex& index, ObjectStore& data_objects,
                            ObjectStore& key_objects) {
  if (recovered_) throw StoreError("DurableEngine: Recover called twice");
  recovered_ = true;

  // 1. Data plane: segment files -> containers. Track which locations hold
  // live (not-discarded) chunks so step 4 can cross-check the index.
  std::unordered_map<std::uint64_t, std::uint32_t> live;  // key -> length
  std::uint64_t torn = segments_->Replay(
      [&](std::uint32_t id) { containers.ReplayBeginContainer(id); },
      [&](const RecordView& rec) {
        ++recovery_stats_.replayed_records;
        if (rec.type == RecordType::kSegmentAppend) {
          SegmentAppendRecord a = DecodeSegmentAppend(rec.payload);
          containers.ReplayAppend(a.container_id, a.offset, a.data);
          live[LocKey(a.container_id, a.offset)] =
              static_cast<std::uint32_t>(a.data.size());
        } else {
          SegmentDiscardRecord d = DecodeSegmentDiscard(rec.payload);
          containers.ReplayDiscard(d.loc);
          live.erase(LocKey(d.loc.container_id, d.loc.offset));
        }
      });
  recovery_stats_.discarded_tail += torn;
  recovery_stats_.segments_sealed = segments_->segments_sealed();

  // 2. Metadata plane, base state: the checkpoint. It was written with an
  // atomic rename, so it is either absent or complete — any malformation
  // inside is corruption beyond the crash-consistency contract and fails
  // recovery loudly (strict DecodeRecord).
  const std::string ckpt_path = dir_ + "/" + kCheckpointName;
  if (util::FileExists(ckpt_path)) {
    Bytes raw = util::ReadFileBytes(ckpt_path);
    std::size_t offset = 0;
    std::uint64_t applied = 0;
    bool complete = false;
    while (offset < raw.size()) {
      RecordView rec = DecodeRecord(raw, offset);
      offset += rec.encoded_size;
      if (rec.type == RecordType::kCheckpointFooter) {
        CheckpointFooterRecord footer = DecodeCheckpointFooter(rec.payload);
        if (footer.records != applied || offset != raw.size()) {
          throw StoreError("DurableEngine: checkpoint footer mismatch");
        }
        complete = true;
        break;
      }
      ApplyMetadataRecord(rec, index, data_objects, key_objects);
      ++applied;
      ++recovery_stats_.replayed_records;
    }
    if (!complete) {
      throw StoreError("DurableEngine: checkpoint missing footer");
    }
  }

  // 3. Metadata plane, tail: WAL records on top of the checkpoint. The Wal
  // constructor already cut the torn tail by CRC; what remains is valid and
  // replays idempotently (last writer wins per key).
  {
    const Bytes& tail = wal_->recovered();
    std::size_t offset = 0;
    while (offset < tail.size()) {
      RecordView rec = DecodeRecord(tail, offset);
      offset += rec.encoded_size;
      ApplyMetadataRecord(rec, index, data_objects, key_objects);
      ++recovery_stats_.replayed_records;
    }
    recovery_stats_.discarded_tail += wal_->torn_tail_bytes();
    wal_->DropRecovered();
  }

  // 4. Reconcile the planes. A crash can separate a chunk append from its
  // index insert in either direction; both divergences are repaired here,
  // which is what makes CheckConsistency hold for ANY kill point:
  //   * index entry with no matching live chunk -> erase the entry
  //     (insert survived, append lost to a torn segment tail);
  //   * live chunk with no index entry -> discard it via the normal logged
  //     path (append survived, insert lost to a torn WAL tail), so future
  //     replays see the same container offsets.
  std::vector<chunk::Fingerprint> dangling;
  index.ForEach(
      [&](const chunk::Fingerprint& fp, const ChunkLocation& loc) {
        auto it = live.find(LocKey(loc.container_id, loc.offset));
        if (it == live.end() || it->second != loc.length) {
          dangling.push_back(fp);
        } else {
          live.erase(it);
        }
      });
  for (const chunk::Fingerprint& fp : dangling) {
    index.ReplayErase(fp);
    ++recovery_stats_.dangling_erased;
  }
  std::vector<ChunkLocation> orphans;
  orphans.reserve(live.size());
  for (const auto& [key, length] : live) {
    orphans.push_back(ChunkLocation{static_cast<std::uint32_t>(key >> 32),
                                    static_cast<std::uint32_t>(key), length});
  }
  // Highest offsets first: tail orphans truncate (reusing the space) instead
  // of zeroing in place.
  std::sort(orphans.begin(), orphans.end(),
            [](const ChunkLocation& a, const ChunkLocation& b) {
              return LocKey(a.container_id, a.offset) >
                     LocKey(b.container_id, b.offset);
            });
  for (const ChunkLocation& loc : orphans) {
    containers.Discard(loc);
    ++recovery_stats_.orphans_discarded;
  }

  Metrics().replayed_records->Add(recovery_stats_.replayed_records);
  Metrics().discarded_tail->Add(recovery_stats_.discarded_tail);
  Metrics().segments_sealed->Add(recovery_stats_.segments_sealed);
  Metrics().orphans_discarded->Add(recovery_stats_.orphans_discarded);
  Metrics().dangling_erased->Add(recovery_stats_.dangling_erased);
}

void DurableEngine::Commit() { wal_->CommitAll(); }

void DurableEngine::Checkpoint(const FingerprintIndex& index,
                               const ObjectStore& data_objects,
                               const ObjectStore& key_objects) {
  // Flush the data plane first so the checkpoint never outlives the chunk
  // bytes its index entries reference.
  if (options_.fsync_policy != FsyncPolicy::kNone) segments_->Sync();
  Bytes out;
  std::uint64_t records = 0;
  index.ForEach([&](const chunk::Fingerprint& fp, const ChunkLocation& loc) {
    AppendRecord(out, RecordType::kIndexInsert, EncodeIndexInsert({fp, loc}));
    ++records;
  });
  data_objects.ForEach([&](const std::string& name, const Bytes& value) {
    AppendRecord(out, RecordType::kObjectPut,
                 EncodeObjectPut({kDataStoreTag, name, value}));
    ++records;
  });
  key_objects.ForEach([&](const std::string& name, const Bytes& value) {
    AppendRecord(out, RecordType::kObjectPut,
                 EncodeObjectPut({kKeyStoreTag, name, value}));
    ++records;
  });
  AppendRecord(out, RecordType::kCheckpointFooter,
               EncodeCheckpointFooter({records}));
  util::WriteFileAtomic(dir_, kCheckpointName, out);
  // The checkpoint supersedes every WAL record (it was written from state
  // that already includes them); an interposed crash is safe either way:
  // before the rename the old checkpoint + full WAL replay, after it the
  // new checkpoint absorbs the stale records idempotently.
  wal_->Reset();
  Metrics().checkpoints->Increment();
}

}  // namespace reed::store
