// DurableEngine: the recovery brain of the persistent store (DESIGN.md
// §12). Owns the WAL (metadata plane), the SegmentLog (data plane), and the
// index checkpoint, and rebuilds a StorageServer's four in-memory stores
// from disk on open:
//
//   1. replay segment files -> ContainerStore (torn tail truncated by CRC);
//   2. load the checkpoint, if any, into index + object stores;
//   3. replay the WAL tail on top (idempotent, last-writer-wins);
//   4. reconcile the two planes: container chunks with no index entry
//      (append durable, insert lost) are discarded; index entries whose
//      location no longer resolves (insert durable, append torn) are
//      erased. After this step CheckConsistency holds BY CONSTRUCTION for
//      every possible crash point.
//
// Group commit: Commit() makes everything appended so far durable, syncing
// segments before the WAL (data before log) via the WAL pre-sync hook.
// Checkpoint() compacts index + object state into one atomically-renamed
// file and empties the WAL; the close path runs it so a clean reopen
// replays nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "store/container_store.h"
#include "store/durability.h"
#include "store/index.h"
#include "store/segment_log.h"
#include "store/wal.h"

namespace reed::store {

class DurableEngine {
 public:
  // Opens (creating if needed) the store directory: scans + tail-truncates
  // the WAL and the segment files. Stores attach to wal()/segments() after
  // this, then Recover() replays into them.
  DurableEngine(std::string dir, DurabilityOptions options);

  [[nodiscard]] Wal& wal() { return *wal_; }
  [[nodiscard]] SegmentLog& segments() { return *segments_; }

  struct RecoveryStats {
    std::uint64_t replayed_records = 0;   // checkpoint + WAL + segment records
    std::uint64_t discarded_tail = 0;     // torn bytes truncated (WAL + seg)
    std::uint64_t segments_sealed = 0;    // sealed segments seen on replay
    std::uint64_t orphans_discarded = 0;  // unindexed chunks dropped
    std::uint64_t dangling_erased = 0;    // unreadable index entries dropped
  };

  // Rebuilds the stores from disk (steps 1-4 above). Single-threaded;
  // must run exactly once, before the server begins serving.
  void Recover(ContainerStore& containers, FingerprintIndex& index,
               ObjectStore& data_objects, ObjectStore& key_objects);

  // The group-commit durability point: called at the end of each mutating
  // batch (no caller locks held).
  void Commit();

  // Compacts index + objects into dir/index.ckpt (temp + fsync + rename)
  // and empties the WAL. Caller must be quiesced.
  void Checkpoint(const FingerprintIndex& index,
                  const ObjectStore& data_objects,
                  const ObjectStore& key_objects);

  [[nodiscard]] const RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  void ApplyMetadataRecord(const RecordView& rec, FingerprintIndex& index,
                           ObjectStore& data_objects,
                           ObjectStore& key_objects);
  ObjectStore& StoreForTag(std::uint8_t tag, ObjectStore& data_objects,
                           ObjectStore& key_objects);

  const std::string dir_;
  const DurabilityOptions options_;
  std::unique_ptr<SegmentLog> segments_;
  std::unique_ptr<Wal> wal_;
  RecoveryStats recovery_stats_;
  bool recovered_ = false;
};

// Tags the two object stores inside the shared WAL; values match
// server::StoreId so the records read naturally in dumps.
inline constexpr std::uint8_t kDataStoreTag = 0;
inline constexpr std::uint8_t kKeyStoreTag = 1;

}  // namespace reed::store
