#include "store/index.h"

#include "obs/metrics.h"

namespace reed::store {
namespace {

// Dedup accounting (DESIGN.md §9): on the ingest path every lookup-hit is a
// duplicate chunk, so dedup ratio = hits / lookups there (restore-path
// lookups always hit and inflate both the same way). Cached pointers keep
// the per-chunk lookup/insert path allocation-free.
struct IndexMetrics {
  obs::Counter* lookups;
  obs::Counter* hits;
  obs::Counter* inserts;
};

IndexMetrics& Metrics() {
  auto& reg = obs::Registry::Global();
  static IndexMetrics m{&reg.GetCounter("store.index.lookups"),
                        &reg.GetCounter("store.index.hits"),
                        &reg.GetCounter("store.index.inserts")};
  return m;
}

}  // namespace

std::optional<ChunkLocation> FingerprintIndex::Lookup(
    const chunk::Fingerprint& fp) const {
  Metrics().lookups->Increment();
  MutexLock lock(mu_);
  auto it = index_.find(fp);
  if (it == index_.end()) return std::nullopt;
  Metrics().hits->Increment();
  return it->second;
}

bool FingerprintIndex::Insert(const chunk::Fingerprint& fp,
                              const ChunkLocation& loc) {
  Metrics().inserts->Increment();
  MutexLock lock(mu_);
  return index_.emplace(fp, loc).second;
}

std::size_t FingerprintIndex::size() const {
  MutexLock lock(mu_);
  return index_.size();
}

void ObjectStore::Put(const std::string& name, Bytes value) {
  MutexLock lock(mu_);
  auto it = objects_.find(name);
  if (it != objects_.end()) {
    total_bytes_ -= it->second.size();
    it->second = std::move(value);
    total_bytes_ += it->second.size();
    return;
  }
  total_bytes_ += value.size();
  objects_.emplace(name, std::move(value));
}

Bytes ObjectStore::Get(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw Error("ObjectStore: no such object: " + name);
  }
  return it->second;
}

bool ObjectStore::Contains(const std::string& name) const {
  MutexLock lock(mu_);
  return objects_.contains(name);
}

bool ObjectStore::Erase(const std::string& name) {
  MutexLock lock(mu_);
  auto it = objects_.find(name);
  if (it == objects_.end()) return false;
  total_bytes_ -= it->second.size();
  objects_.erase(it);
  return true;
}

std::size_t ObjectStore::count() const {
  MutexLock lock(mu_);
  return objects_.size();
}

std::uint64_t ObjectStore::total_bytes() const {
  MutexLock lock(mu_);
  return total_bytes_;
}

std::uint64_t ObjectStore::TotalBytesWithPrefix(std::string_view prefix) const {
  MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, value] : objects_) {
    if (name.starts_with(prefix)) total += value.size();
  }
  return total;
}

}  // namespace reed::store
