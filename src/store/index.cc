#include "store/index.h"

#include "store/store_error.h"
#include "store/wal.h"

#include "obs/metrics.h"
#include "util/fault_inject.h"
#include "util/schedule_fuzz.h"

namespace reed::store {
namespace {

// Dedup accounting (DESIGN.md §9): on the ingest path every lookup-hit is a
// duplicate chunk, so dedup ratio = hits / lookups there (restore-path
// lookups always hit and inflate both the same way). Cached pointers keep
// the per-chunk lookup/insert path allocation-free. The contention counters
// record how often a shard's fast-path try_lock missed (DESIGN.md §10).
struct IndexMetrics {
  obs::Counter* lookups;
  obs::Counter* hits;
  obs::Counter* inserts;
  obs::Counter* shard_contention;
};

IndexMetrics& Metrics() {
  auto& reg = obs::Registry::Global();
  static IndexMetrics m{&reg.GetCounter("store.index.lookups"),
                        &reg.GetCounter("store.index.hits"),
                        &reg.GetCounter("store.index.inserts"),
                        &reg.GetCounter("store.index.shard_contention")};
  return m;
}

struct ObjectMetrics {
  obs::Counter* shard_contention;
};

ObjectMetrics& ObjMetrics() {
  auto& reg = obs::Registry::Global();
  static ObjectMetrics m{&reg.GetCounter("store.object.shard_contention")};
  return m;
}

using ShardLock = ContendedMutexLock<obs::Counter>;

// The leading directory of an object name: everything through the first
// '/', or "" for slashless names. "stub/f1" -> "stub/".
std::string_view DirOf(std::string_view name) {
  std::size_t slash = name.find('/');
  if (slash == std::string_view::npos) return std::string_view();
  return name.substr(0, slash + 1);
}

// A prefix answerable from the per-directory counters: one non-empty
// segment ending in its only '/'.
bool IsDirPrefix(std::string_view prefix) {
  return prefix.size() >= 2 && prefix.find('/') == prefix.size() - 1;
}

}  // namespace

std::optional<ChunkLocation> FingerprintIndex::Lookup(
    const chunk::Fingerprint& fp) const {
  REED_FAULT_POINT("store.index.lookup");
  Metrics().lookups->Increment();
  Shard& shard = ShardFor(fp);
  schedfuzz::Perturb("store.index.shard");
  ShardLock lock(shard.mu, *Metrics().shard_contention);
  auto it = shard.map.find(fp);
  if (it == shard.map.end()) return std::nullopt;
  Metrics().hits->Increment();
  return it->second;
}

bool FingerprintIndex::Insert(const chunk::Fingerprint& fp,
                              const ChunkLocation& loc) {
  REED_FAULT_POINT("store.index.insert");
  Metrics().inserts->Increment();
  Shard& shard = ShardFor(fp);
  schedfuzz::Perturb("store.index.shard");
  ShardLock lock(shard.mu, *Metrics().shard_contention);
  if (!shard.map.emplace(fp, loc).second) return false;
  // Logged under the shard lock: WAL order equals apply order per shard,
  // which is what makes last-writer-wins replay converge.
  if (wal_ != nullptr) {
    DiscardResult(wal_->Append(RecordType::kIndexInsert,
                               EncodeIndexInsert({fp, loc})));
  }
  return true;
}

bool FingerprintIndex::Erase(const chunk::Fingerprint& fp) {
  Shard& shard = ShardFor(fp);
  ShardLock lock(shard.mu, *Metrics().shard_contention);
  if (shard.map.erase(fp) == 0) return false;
  if (wal_ != nullptr) {
    DiscardResult(
        wal_->Append(RecordType::kIndexErase, EncodeIndexErase({fp})));
  }
  return true;
}

std::size_t FingerprintIndex::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

void FingerprintIndex::ForEach(
    const std::function<void(const chunk::Fingerprint&, const ChunkLocation&)>&
        fn) const {
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [fp, loc] : shard.map) fn(fp, loc);
  }
}

void FingerprintIndex::ReplayInsert(const chunk::Fingerprint& fp,
                                    const ChunkLocation& loc) {
  Shard& shard = ShardFor(fp);
  MutexLock lock(shard.mu);
  shard.map[fp] = loc;
}

void FingerprintIndex::ReplayErase(const chunk::Fingerprint& fp) {
  Shard& shard = ShardFor(fp);
  MutexLock lock(shard.mu);
  shard.map.erase(fp);
}

void ObjectStore::PutLocked(Shard& shard, const std::string& name,
                            Bytes value) {
  // Overwrites keep the same name, hence the same directory counter.
  std::uint64_t& dir = shard.dir_bytes[std::string(DirOf(name))];
  auto it = shard.objects.find(name);
  if (it != shard.objects.end()) {
    shard.bytes -= it->second.size();
    dir -= it->second.size();
    it->second = std::move(value);
    shard.bytes += it->second.size();
    dir += it->second.size();
    return;
  }
  shard.bytes += value.size();
  dir += value.size();
  shard.objects.emplace(name, std::move(value));
}

bool ObjectStore::EraseLocked(Shard& shard, const std::string& name) {
  auto it = shard.objects.find(name);
  if (it == shard.objects.end()) return false;
  shard.bytes -= it->second.size();
  auto dir = shard.dir_bytes.find(DirOf(name));
  if (dir != shard.dir_bytes.end()) dir->second -= it->second.size();
  shard.objects.erase(it);
  return true;
}

void ObjectStore::Put(const std::string& name, Bytes value) {
  REED_FAULT_POINT("store.object.put");
  Shard& shard = ShardFor(name);
  schedfuzz::Perturb("store.object.shard");
  ShardLock lock(shard.mu, *ObjMetrics().shard_contention);
  // Encode the redo record before the apply consumes `value`; append it
  // under the shard lock so WAL order equals apply order (replay is
  // last-writer-wins per name).
  if (wal_ != nullptr) {
    Bytes payload = EncodeObjectPut({store_tag_, name, value});
    PutLocked(shard, name, std::move(value));
    DiscardResult(wal_->Append(RecordType::kObjectPut, payload));
    return;
  }
  PutLocked(shard, name, std::move(value));
}

Bytes ObjectStore::Get(const std::string& name) const {
  REED_FAULT_POINT("store.object.get");
  Shard& shard = ShardFor(name);
  ShardLock lock(shard.mu, *ObjMetrics().shard_contention);
  auto it = shard.objects.find(name);
  if (it == shard.objects.end()) {
    throw StoreError("ObjectStore: no such object: " + name);
  }
  return it->second;
}

bool ObjectStore::Contains(const std::string& name) const {
  Shard& shard = ShardFor(name);
  ShardLock lock(shard.mu, *ObjMetrics().shard_contention);
  return shard.objects.contains(name);
}

bool ObjectStore::Erase(const std::string& name) {
  Shard& shard = ShardFor(name);
  ShardLock lock(shard.mu, *ObjMetrics().shard_contention);
  if (!EraseLocked(shard, name)) return false;
  if (wal_ != nullptr) {
    DiscardResult(wal_->Append(RecordType::kObjectErase,
                               EncodeObjectErase({store_tag_, name})));
  }
  return true;
}

std::size_t ObjectStore::count() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.objects.size();
  }
  return total;
}

std::uint64_t ObjectStore::total_bytes() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

std::uint64_t ObjectStore::TotalBytesWithPrefix(std::string_view prefix) const {
  std::uint64_t total = 0;
  if (IsDirPrefix(prefix)) {
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      auto it = shard.dir_bytes.find(prefix);
      if (it != shard.dir_bytes.end()) total += it->second;
    }
    return total;
  }
  // Generic prefixes (sub-name ranges, "") keep the scan semantics.
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [name, value] : shard.objects) {
      if (name.starts_with(prefix)) total += value.size();
    }
  }
  return total;
}

void ObjectStore::ForEach(
    const std::function<void(const std::string&, const Bytes&)>& fn) const {
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [name, value] : shard.objects) fn(name, value);
  }
}

void ObjectStore::ReplayPut(const std::string& name, Bytes value) {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mu);
  PutLocked(shard, name, std::move(value));
}

void ObjectStore::ReplayErase(const std::string& name) {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mu);
  DiscardResult(EraseLocked(shard, name));
}

}  // namespace reed::store
