// Fingerprint index and named-object store.
//
// FingerprintIndex: the server-side dedup index over *trimmed package*
// fingerprints (paper §III-A) — maps fingerprint -> container location.
// ObjectStore: named blobs (file recipes, encrypted stub files, encrypted
// key states, metadata); the data store and the key store are two
// ObjectStore instances (paper §V "Storage backend" separates them).
//
// Both are sharded N-ways by key hash (DESIGN.md §10): the multi-session
// TcpServer and the client's concurrent RPC fan-out hammer these maps from
// many threads at once, and a single mutex would serialize the whole data
// path. Each shard carries its own lock; cross-shard invariants do not
// exist (a key lives in exactly one shard), so the public API is unchanged
// and per-call results are identical to the unsharded store. Lock
// contention per store is observable via the store.*.shard_contention
// counters.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "chunk/fingerprint.h"
#include "store/container_store.h"
#include "util/thread_annotations.h"

namespace reed::store {

class Wal;

class FingerprintIndex {
 public:
  static constexpr std::size_t kNumShards = 8;

  // With a WAL attached, every successful Insert/Erase appends a redo
  // record under the shard lock (LockRank::kStoreWal ranks above
  // kStoreShard), so recovery replays mutations in per-shard apply order.
  // Null keeps the pre-durability memory-only behaviour.
  explicit FingerprintIndex(Wal* wal = nullptr) : wal_(wal) {}

  // Returns the existing location, or nullopt if the fingerprint is new.
  [[nodiscard]] std::optional<ChunkLocation> Lookup(
      const chunk::Fingerprint& fp) const;

  // Inserts a new mapping; returns false if already present. An ignored
  // false return means the caller stored a chunk body nothing will ever
  // reference — always check it.
  [[nodiscard]] bool Insert(const chunk::Fingerprint& fp,
                            const ChunkLocation& loc);

  // Drops a mapping; returns false if absent. Outside tests this is the
  // recovery reconciler's tool for dangling entries, not a data-path op.
  [[nodiscard]] bool Erase(const chunk::Fingerprint& fp);

  [[nodiscard]] std::size_t size() const;

  // Visits every entry, one shard at a time (the callback runs under that
  // shard's lock — keep it cheap and lock-free). Entries inserted or erased
  // concurrently in other shards may or may not be seen; used by
  // StorageServer::CheckConsistency and stats walks, not the data path.
  void ForEach(
      const std::function<void(const chunk::Fingerprint&, const ChunkLocation&)>&
          fn) const;

  // Recovery-only (DurableEngine, single-threaded): re-apply a checkpoint
  // or WAL record without re-logging it. ReplayInsert overwrites — WAL
  // records are replayed in order, so last-writer-wins converges on the
  // pre-crash state.
  void ReplayInsert(const chunk::Fingerprint& fp, const ChunkLocation& loc);
  void ReplayErase(const chunk::Fingerprint& fp);

 private:
  struct Shard {
    mutable Mutex mu{LockRank::kStoreShard};
    std::unordered_map<chunk::Fingerprint, ChunkLocation,
                       chunk::FingerprintHash>
        map REED_GUARDED_BY(mu);
  };

  // High bits pick the shard so the map's bucket hash (low bits) stays
  // decorrelated from shard membership.
  Shard& ShardFor(const chunk::Fingerprint& fp) const {
    return shards_[(chunk::FingerprintHash{}(fp) >> 56) % kNumShards];
  }

  Wal* wal_;  // null = memory-only
  mutable std::array<Shard, kNumShards> shards_;
};

class ObjectStore {
 public:
  static constexpr std::size_t kNumShards = 8;

  // `store_tag` distinguishes the data store from the key store inside the
  // one shared WAL (server::StoreId values). Null wal = memory-only.
  explicit ObjectStore(Wal* wal = nullptr, std::uint8_t store_tag = 0)
      : wal_(wal), store_tag_(store_tag) {}

  void Put(const std::string& name, Bytes value);
  // Throws Error if absent.
  [[nodiscard]] Bytes Get(const std::string& name) const;
  [[nodiscard]] bool Contains(const std::string& name) const;
  // Returns false when no such object existed — a dropped false return
  // turns "delete failed" into "deleted", so callers must check.
  [[nodiscard]] bool Erase(const std::string& name);

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  // Total value bytes of objects whose name starts with `prefix` (used for
  // storage accounting: "stub/", "recipe/", "keystate/"). Directory-shaped
  // prefixes ("stub/" — a single trailing-slash segment) are answered from
  // per-directory byte counters maintained by Put/Erase in O(shards);
  // arbitrary prefixes fall back to a scan with identical results.
  [[nodiscard]] std::uint64_t TotalBytesWithPrefix(std::string_view prefix) const;

  // Visits every object, one shard at a time (callback runs under that
  // shard's lock — keep it cheap). Checkpointing and the counter-vs-rescan
  // regression tests use this; it is not a data path.
  void ForEach(
      const std::function<void(const std::string&, const Bytes&)>& fn) const;

  // Recovery-only: re-apply checkpoint/WAL records without re-logging.
  void ReplayPut(const std::string& name, Bytes value);
  void ReplayErase(const std::string& name);

 private:
  struct Shard {
    mutable Mutex mu{LockRank::kStoreShard};
    std::unordered_map<std::string, Bytes> objects REED_GUARDED_BY(mu);
    std::uint64_t bytes REED_GUARDED_BY(mu) = 0;
    // Value bytes keyed by the name's leading directory ("stub/", "" for
    // slashless names). Bounded by the handful of name families the system
    // uses, not by object count.
    std::map<std::string, std::uint64_t, std::less<>> dir_bytes
        REED_GUARDED_BY(mu);
  };

  Shard& ShardFor(std::string_view name) const {
    return shards_[(std::hash<std::string_view>{}(name) >> 56) % kNumShards];
  }

  // Applies a put to `shard` and returns the value bytes delta; shared by
  // the logging and replay paths so the per-directory counters (the O(1)
  // prefix accounting) move identically under both.
  void PutLocked(Shard& shard, const std::string& name, Bytes value)
      REED_REQUIRES(shard.mu);
  bool EraseLocked(Shard& shard, const std::string& name)
      REED_REQUIRES(shard.mu);

  Wal* wal_;  // null = memory-only
  std::uint8_t store_tag_;
  mutable std::array<Shard, kNumShards> shards_;
};

}  // namespace reed::store
