// Fingerprint index and named-object store.
//
// FingerprintIndex: the server-side dedup index over *trimmed package*
// fingerprints (paper §III-A) — maps fingerprint -> container location.
// ObjectStore: named blobs (file recipes, encrypted stub files, encrypted
// key states, metadata); the data store and the key store are two
// ObjectStore instances (paper §V "Storage backend" separates them).
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "chunk/fingerprint.h"
#include "store/container_store.h"

namespace reed::store {

class FingerprintIndex {
 public:
  // Returns the existing location, or nullopt if the fingerprint is new.
  std::optional<ChunkLocation> Lookup(const chunk::Fingerprint& fp) const;

  // Inserts a new mapping; returns false if already present.
  bool Insert(const chunk::Fingerprint& fp, const ChunkLocation& loc);

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<chunk::Fingerprint, ChunkLocation, chunk::FingerprintHash>
      index_;
};

class ObjectStore {
 public:
  void Put(const std::string& name, Bytes value);
  // Throws Error if absent.
  Bytes Get(const std::string& name) const;
  bool Contains(const std::string& name) const;
  bool Erase(const std::string& name);

  std::size_t count() const;
  std::uint64_t total_bytes() const;
  // Total value bytes of objects whose name starts with `prefix` (used for
  // storage accounting: "stub/", "recipe/", "keystate/").
  std::uint64_t TotalBytesWithPrefix(std::string_view prefix) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Bytes> objects_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace reed::store
