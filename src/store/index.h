// Fingerprint index and named-object store.
//
// FingerprintIndex: the server-side dedup index over *trimmed package*
// fingerprints (paper §III-A) — maps fingerprint -> container location.
// ObjectStore: named blobs (file recipes, encrypted stub files, encrypted
// key states, metadata); the data store and the key store are two
// ObjectStore instances (paper §V "Storage backend" separates them).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "chunk/fingerprint.h"
#include "store/container_store.h"
#include "util/thread_annotations.h"

namespace reed::store {

class FingerprintIndex {
 public:
  // Returns the existing location, or nullopt if the fingerprint is new.
  [[nodiscard]] std::optional<ChunkLocation> Lookup(
      const chunk::Fingerprint& fp) const;

  // Inserts a new mapping; returns false if already present. An ignored
  // false return means the caller stored a chunk body nothing will ever
  // reference — always check it.
  [[nodiscard]] bool Insert(const chunk::Fingerprint& fp,
                            const ChunkLocation& loc);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable Mutex mu_;
  std::unordered_map<chunk::Fingerprint, ChunkLocation, chunk::FingerprintHash>
      index_ REED_GUARDED_BY(mu_);
};

class ObjectStore {
 public:
  void Put(const std::string& name, Bytes value);
  // Throws Error if absent.
  [[nodiscard]] Bytes Get(const std::string& name) const;
  [[nodiscard]] bool Contains(const std::string& name) const;
  // Returns false when no such object existed — a dropped false return
  // turns "delete failed" into "deleted", so callers must check.
  [[nodiscard]] bool Erase(const std::string& name);

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  // Total value bytes of objects whose name starts with `prefix` (used for
  // storage accounting: "stub/", "recipe/", "keystate/").
  [[nodiscard]] std::uint64_t TotalBytesWithPrefix(std::string_view prefix) const;

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, Bytes> objects_ REED_GUARDED_BY(mu_);
  std::uint64_t total_bytes_ REED_GUARDED_BY(mu_) = 0;
};

}  // namespace reed::store
