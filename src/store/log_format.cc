#include "store/log_format.h"

#include "util/crc32.h"

namespace reed::store {
namespace {

// Object names are short structured paths ("stub/f3"); anything kilobytes
// long in a name field is corruption, not data.
constexpr std::uint32_t kMaxObjectName = 4096;

bool KnownType(std::uint8_t t) {
  switch (static_cast<RecordType>(t)) {
    case RecordType::kIndexInsert:
    case RecordType::kIndexErase:
    case RecordType::kObjectPut:
    case RecordType::kObjectErase:
    case RecordType::kCheckpointFooter:
    case RecordType::kSegmentAppend:
    case RecordType::kSegmentDiscard:
    case RecordType::kSegmentSeal:
      return true;
  }
  return false;
}

// Bounds-checked cursor over a record payload; errors are StoreError so the
// decoder contract ("typed error, never a crash") holds under fuzzing.
class PayloadReader {
 public:
  explicit PayloadReader(ByteSpan data) : data_(data) {}

  std::uint8_t U8() {
    Need(1);
    return data_[pos_++];
  }

  std::uint32_t U32() {
    Need(4);
    std::uint32_t v = GetU32(data_.subspan(pos_, 4));
    pos_ += 4;
    return v;
  }

  std::uint64_t U64() {
    Need(8);
    std::uint64_t v = GetU64(data_.subspan(pos_, 8));
    pos_ += 8;
    return v;
  }

  ByteSpan Raw(std::size_t n) {
    Need(n);
    ByteSpan out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  ByteSpan Rest() { return data_.subspan(pos_); }

  void ExpectEnd() const {
    if (pos_ != data_.size()) {
      throw StoreError("log record: trailing payload bytes");
    }
  }

 private:
  void Need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw StoreError("log record: truncated payload");
    }
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

std::string DecodeName(PayloadReader& r) {
  std::uint32_t len = r.U32();
  if (len > kMaxObjectName) {
    throw StoreError("log record: object name exceeds sanity cap");
  }
  ByteSpan raw = r.Raw(len);
  return std::string(raw.begin(), raw.end());
}

// Shared frame validation: returns nullptr and fills `view` on success, or
// a static description of the malformation. DecodeRecord turns the message
// into a StoreError; ScanRecord turns it into a torn-tail verdict — one
// decoder, two error disciplines, no exception used as control flow.
const char* TryDecodeRecord(ByteSpan buf, std::size_t offset,
                            RecordView& view) {
  if (offset > buf.size()) return "offset out of range";
  ByteSpan rest = buf.subspan(offset);
  if (rest.size() < kRecordHeaderBytes + kRecordTrailerBytes) {
    return "truncated header";
  }
  if (GetU32(rest.subspan(0, 4)) != kRecordMagic) return "bad magic";
  std::uint8_t type = rest[4];
  if (!KnownType(type)) return "unknown type";
  std::uint32_t len = GetU32(rest.subspan(5, 4));
  if (len > kMaxRecordPayload) return "length exceeds sanity cap";
  std::size_t encoded = kRecordHeaderBytes + len + kRecordTrailerBytes;
  if (rest.size() < encoded) return "truncated payload";
  std::uint32_t want = GetU32(rest.subspan(kRecordHeaderBytes + len, 4));
  std::uint32_t got = util::Crc32(rest.subspan(4, 5 + len));
  if (want != got) return "CRC mismatch";
  view.type = static_cast<RecordType>(type);
  view.payload = rest.subspan(kRecordHeaderBytes, len);
  view.encoded_size = encoded;
  return nullptr;
}

}  // namespace

void AppendRecord(Bytes& out, RecordType type, ByteSpan payload) {
  if (payload.size() > kMaxRecordPayload) {
    throw StoreError("log record: payload exceeds cap");
  }
  std::size_t body_start = out.size() + 4;  // CRC covers type + len + payload
  AppendU32(out, kRecordMagic);
  out.push_back(static_cast<std::uint8_t>(type));
  AppendU32(out, static_cast<std::uint32_t>(payload.size()));
  Append(out, payload);
  std::uint32_t crc =
      util::Crc32(ByteSpan(out.data() + body_start, out.size() - body_start));
  AppendU32(out, crc);
}

RecordView DecodeRecord(ByteSpan buf, std::size_t offset) {
  RecordView view;
  if (const char* err = TryDecodeRecord(buf, offset, view)) {
    throw StoreError(std::string("log record: ") + err);
  }
  return view;
}

ScanResult ScanRecord(ByteSpan buf, std::size_t offset) {
  ScanResult result;
  if (offset >= buf.size()) {
    result.status = offset == buf.size() ? ScanStatus::kEnd : ScanStatus::kTorn;
    return result;
  }
  // Anything malformed at a scan position is, by definition, the torn tail
  // of the log: recovery truncates there and moves on.
  result.status = TryDecodeRecord(buf, offset, result.record) == nullptr
                      ? ScanStatus::kRecord
                      : ScanStatus::kTorn;
  return result;
}

Bytes EncodeIndexInsert(const IndexInsertRecord& rec) {
  Bytes out;
  out.reserve(44);
  Append(out, rec.fp.AsSpan());
  AppendU32(out, rec.loc.container_id);
  AppendU32(out, rec.loc.offset);
  AppendU32(out, rec.loc.length);
  return out;
}

IndexInsertRecord DecodeIndexInsert(ByteSpan payload) {
  PayloadReader r(payload);
  IndexInsertRecord rec;
  rec.fp = chunk::Fingerprint::FromBytes(r.Raw(32));
  rec.loc.container_id = r.U32();
  rec.loc.offset = r.U32();
  rec.loc.length = r.U32();
  r.ExpectEnd();
  return rec;
}

Bytes EncodeIndexErase(const IndexEraseRecord& rec) {
  return rec.fp.ToBytes();
}

IndexEraseRecord DecodeIndexErase(ByteSpan payload) {
  PayloadReader r(payload);
  IndexEraseRecord rec;
  rec.fp = chunk::Fingerprint::FromBytes(r.Raw(32));
  r.ExpectEnd();
  return rec;
}

Bytes EncodeObjectPut(const ObjectPutRecord& rec) {
  Bytes out;
  out.reserve(1 + 4 + rec.name.size() + 4 + rec.value.size());
  out.push_back(rec.store_tag);
  AppendU32(out, static_cast<std::uint32_t>(rec.name.size()));
  Append(out, ToBytes(rec.name));
  AppendU32(out, static_cast<std::uint32_t>(rec.value.size()));
  Append(out, rec.value);
  return out;
}

ObjectPutRecord DecodeObjectPut(ByteSpan payload) {
  PayloadReader r(payload);
  ObjectPutRecord rec;
  rec.store_tag = r.U8();
  rec.name = DecodeName(r);
  std::uint32_t value_len = r.U32();
  if (value_len > kMaxRecordPayload) {
    throw StoreError("log record: object value exceeds sanity cap");
  }
  ByteSpan raw = r.Raw(value_len);
  rec.value.assign(raw.begin(), raw.end());
  r.ExpectEnd();
  return rec;
}

Bytes EncodeObjectErase(const ObjectEraseRecord& rec) {
  Bytes out;
  out.reserve(1 + 4 + rec.name.size());
  out.push_back(rec.store_tag);
  AppendU32(out, static_cast<std::uint32_t>(rec.name.size()));
  Append(out, ToBytes(rec.name));
  return out;
}

ObjectEraseRecord DecodeObjectErase(ByteSpan payload) {
  PayloadReader r(payload);
  ObjectEraseRecord rec;
  rec.store_tag = r.U8();
  rec.name = DecodeName(r);
  r.ExpectEnd();
  return rec;
}

Bytes EncodeSegmentAppend(const SegmentAppendRecord& rec) {
  Bytes out;
  out.reserve(8 + rec.data.size());
  AppendU32(out, rec.container_id);
  AppendU32(out, rec.offset);
  Append(out, rec.data);
  return out;
}

SegmentAppendRecord DecodeSegmentAppend(ByteSpan payload) {
  PayloadReader r(payload);
  SegmentAppendRecord rec;
  rec.container_id = r.U32();
  rec.offset = r.U32();
  rec.data = r.Rest();
  if (rec.data.empty()) {
    throw StoreError("log record: empty segment append");
  }
  return rec;
}

Bytes EncodeSegmentDiscard(const SegmentDiscardRecord& rec) {
  Bytes out;
  out.reserve(12);
  AppendU32(out, rec.loc.container_id);
  AppendU32(out, rec.loc.offset);
  AppendU32(out, rec.loc.length);
  return out;
}

SegmentDiscardRecord DecodeSegmentDiscard(ByteSpan payload) {
  PayloadReader r(payload);
  SegmentDiscardRecord rec;
  rec.loc.container_id = r.U32();
  rec.loc.offset = r.U32();
  rec.loc.length = r.U32();
  r.ExpectEnd();
  return rec;
}

Bytes EncodeSegmentSeal(const SegmentSealRecord& rec) {
  Bytes out;
  out.reserve(16);
  AppendU64(out, rec.records);
  AppendU64(out, rec.payload_bytes);
  return out;
}

SegmentSealRecord DecodeSegmentSeal(ByteSpan payload) {
  PayloadReader r(payload);
  SegmentSealRecord rec;
  rec.records = r.U64();
  rec.payload_bytes = r.U64();
  r.ExpectEnd();
  return rec;
}

Bytes EncodeCheckpointFooter(const CheckpointFooterRecord& rec) {
  Bytes out;
  out.reserve(8);
  AppendU64(out, rec.records);
  return out;
}

CheckpointFooterRecord DecodeCheckpointFooter(ByteSpan payload) {
  PayloadReader r(payload);
  CheckpointFooterRecord rec;
  rec.records = r.U64();
  r.ExpectEnd();
  return rec;
}

}  // namespace reed::store
