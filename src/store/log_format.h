// On-disk record framing shared by the WAL, the container segment log, and
// the index checkpoint (DESIGN.md §12).
//
// Every durable artifact is a flat sequence of framed records:
//
//     u32 magic   "RED1"
//     u8  type    RecordType
//     u32 len     payload length
//     u8  payload[len]
//     u32 crc     CRC-32 over (type, len, payload)
//
// All integers big-endian, matching the wire format. The CRC is what lets
// recovery distinguish a torn tail (truncate and continue) from valid data;
// the magic catches gross misalignment early. Payload lengths are capped at
// kMaxRecordPayload — the same 256 MiB sanity bound as net::Reader — so a
// corrupted length field can never drive a huge allocation.
//
// Two decoders on purpose:
//   * DecodeRecord throws the typed StoreError on ANY malformation — the
//     strict path for checkpoints (where corruption is fatal) and the
//     contract the fuzz suite locks down;
//   * ScanRecord never throws — the recovery path, where a malformed record
//     is by definition the torn tail of the log and simply ends the scan.
#pragma once

#include <string>

#include "chunk/fingerprint.h"
#include "store/container_store.h"
#include "store/store_error.h"
#include "util/bytes.h"

namespace reed::store {

enum class RecordType : std::uint8_t {
  // WAL + checkpoint records (metadata plane).
  kIndexInsert = 1,   // fingerprint -> container location
  kIndexErase = 2,    // drop a fingerprint mapping
  kObjectPut = 3,     // named blob write (recipes, stubs, key states)
  kObjectErase = 4,   // named blob delete
  kCheckpointFooter = 5,  // checkpoint completeness marker (record count)
  // Segment-log records (data plane).
  kSegmentAppend = 10,   // one chunk appended to a container
  kSegmentDiscard = 11,  // rollback/garbage-collect of one chunk
  kSegmentSeal = 12,     // sealed-segment footer (record + byte totals)
};

inline constexpr std::uint32_t kRecordMagic = 0x52454431;  // "RED1"
inline constexpr std::uint32_t kMaxRecordPayload = 256u << 20;  // 256 MiB
inline constexpr std::size_t kRecordHeaderBytes = 9;   // magic + type + len
inline constexpr std::size_t kRecordTrailerBytes = 4;  // crc

// Frames `payload` as one record appended to `out`.
void AppendRecord(Bytes& out, RecordType type, ByteSpan payload);

struct RecordView {
  RecordType type{};
  ByteSpan payload;          // view into the scanned buffer — no copy
  std::size_t encoded_size = 0;  // header + payload + trailer
};

// Strict decode of the record starting at `offset`; throws StoreError on
// truncation, bad magic, oversized length, unknown type, or CRC mismatch.
[[nodiscard]] RecordView DecodeRecord(ByteSpan buf, std::size_t offset);

enum class ScanStatus : std::uint8_t {
  kRecord,  // a valid record was decoded
  kEnd,     // offset is exactly the end of the buffer
  kTorn,    // trailing bytes that do not form a valid record
};

struct ScanResult {
  ScanStatus status = ScanStatus::kEnd;
  RecordView record;
};

// Tolerant decode for recovery: anything malformed is reported as kTorn
// instead of throwing.
[[nodiscard]] ScanResult ScanRecord(ByteSpan buf, std::size_t offset);

// --- typed payloads -------------------------------------------------------

struct IndexInsertRecord {
  chunk::Fingerprint fp;
  ChunkLocation loc;
};
[[nodiscard]] Bytes EncodeIndexInsert(const IndexInsertRecord& rec);
[[nodiscard]] IndexInsertRecord DecodeIndexInsert(ByteSpan payload);

struct IndexEraseRecord {
  chunk::Fingerprint fp;
};
[[nodiscard]] Bytes EncodeIndexErase(const IndexEraseRecord& rec);
[[nodiscard]] IndexEraseRecord DecodeIndexErase(ByteSpan payload);

// store_tag tells the two ObjectStores (data vs key) apart in one WAL.
struct ObjectPutRecord {
  std::uint8_t store_tag = 0;
  std::string name;
  Bytes value;
};
[[nodiscard]] Bytes EncodeObjectPut(const ObjectPutRecord& rec);
[[nodiscard]] ObjectPutRecord DecodeObjectPut(ByteSpan payload);

struct ObjectEraseRecord {
  std::uint8_t store_tag = 0;
  std::string name;
};
[[nodiscard]] Bytes EncodeObjectErase(const ObjectEraseRecord& rec);
[[nodiscard]] ObjectEraseRecord DecodeObjectErase(ByteSpan payload);

struct SegmentAppendRecord {
  std::uint32_t container_id = 0;
  std::uint32_t offset = 0;
  ByteSpan data;  // chunk payload — a view for both encode and decode
};
[[nodiscard]] Bytes EncodeSegmentAppend(const SegmentAppendRecord& rec);
[[nodiscard]] SegmentAppendRecord DecodeSegmentAppend(ByteSpan payload);

struct SegmentDiscardRecord {
  ChunkLocation loc;
};
[[nodiscard]] Bytes EncodeSegmentDiscard(const SegmentDiscardRecord& rec);
[[nodiscard]] SegmentDiscardRecord DecodeSegmentDiscard(ByteSpan payload);

struct SegmentSealRecord {
  std::uint64_t records = 0;        // framed records in the sealed segment
  std::uint64_t payload_bytes = 0;  // chunk bytes appended to it
};
[[nodiscard]] Bytes EncodeSegmentSeal(const SegmentSealRecord& rec);
[[nodiscard]] SegmentSealRecord DecodeSegmentSeal(ByteSpan payload);

struct CheckpointFooterRecord {
  std::uint64_t records = 0;  // records preceding the footer
};
[[nodiscard]] Bytes EncodeCheckpointFooter(const CheckpointFooterRecord& rec);
[[nodiscard]] CheckpointFooterRecord DecodeCheckpointFooter(ByteSpan payload);

}  // namespace reed::store
