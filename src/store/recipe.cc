#include "store/recipe.h"

#include "store/store_error.h"

#include "crypto/sha256.h"

namespace reed::store {

Bytes FileRecipe::Serialize() const {
  if (fingerprints.size() != chunk_sizes.size()) {
    throw StoreError("FileRecipe: fingerprint/size count mismatch");
  }
  net::Writer w;
  w.Str(file_id);
  w.U64(file_size);
  w.U8(scheme);
  w.U32(stub_size);
  w.U32(static_cast<std::uint32_t>(fingerprints.size()));
  for (std::size_t i = 0; i < fingerprints.size(); ++i) {
    w.Raw(fingerprints[i].AsSpan());
    w.U32(chunk_sizes[i]);
  }
  return w.Take();
}

FileRecipe FileRecipe::Deserialize(ByteSpan blob) {
  REED_FAULT_POINT("store.recipe.decode");
  net::Reader r(blob);
  FileRecipe recipe;
  recipe.file_id = r.Str();
  recipe.file_size = r.U64();
  recipe.scheme = r.U8();
  recipe.stub_size = r.U32();
  std::uint32_t count = r.U32();
  // Each entry is 36 bytes; reject impossible counts before reserving
  // (a forged count must not trigger a huge allocation).
  if (static_cast<std::uint64_t>(count) * 36 > r.remaining()) {
    throw StoreError("FileRecipe: chunk count exceeds payload");
  }
  recipe.fingerprints.reserve(count);
  recipe.chunk_sizes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    recipe.fingerprints.push_back(chunk::Fingerprint::FromBytes(r.Raw(32)));
    recipe.chunk_sizes.push_back(r.U32());
  }
  r.ExpectEnd();
  return recipe;
}

Bytes KeyStateRecord::Serialize() const {
  net::Writer w;
  w.Str(owner_id);
  w.U64(key_version);
  w.U64(stub_key_version);
  w.Blob(policy);
  w.Blob(wrapped_state);
  w.Str(group_wrap_id);
  w.Blob(derivation_public_key);
  return w.Take();
}

KeyStateRecord KeyStateRecord::Deserialize(ByteSpan blob) {
  net::Reader r(blob);
  KeyStateRecord rec;
  rec.owner_id = r.Str();
  rec.key_version = r.U64();
  rec.stub_key_version = r.U64();
  rec.policy = r.Blob();
  rec.wrapped_state = r.Blob();
  rec.group_wrap_id = r.Str();
  rec.derivation_public_key = r.Blob();
  r.ExpectEnd();
  return rec;
}

std::string ObfuscateFileId(std::string_view pathname, ByteSpan salt) {
  Bytes input = Concat(salt, ToBytes(pathname));
  return HexEncode(crypto::Sha256::HashToBytes(input));
}

}  // namespace reed::store
