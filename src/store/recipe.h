// File recipes and key-state records — the metadata objects REED stores.
//
// A file recipe (paper §IV-D) lists the file's chunks in order by trimmed-
// package fingerprint so the file can be reassembled after dedup. A key
// state record holds the CP-ABE-wrapped key state plus the policy and
// version metadata that drive access control and rekeying.
#pragma once

#include <string>
#include <vector>

#include "chunk/fingerprint.h"
#include "net/wire.h"
#include "util/bytes.h"

namespace reed::store {

struct FileRecipe {
  std::string file_id;         // obfuscated pathname (salted hash, §IV-D)
  std::uint64_t file_size = 0;
  std::uint8_t scheme = 0;     // aont::Scheme
  std::uint32_t stub_size = 0;
  // Per chunk, in file order.
  std::vector<chunk::Fingerprint> fingerprints;  // of trimmed packages
  std::vector<std::uint32_t> chunk_sizes;        // original plaintext sizes

  [[nodiscard]] std::size_t chunk_count() const { return fingerprints.size(); }

  [[nodiscard]] Bytes Serialize() const;
  [[nodiscard]] static FileRecipe Deserialize(ByteSpan blob);
};

// The key-store record for one file (paper Fig. 4 + §IV-D).
struct KeyStateRecord {
  std::string owner_id;
  std::uint64_t key_version = 0;      // key-regression version of the state
  std::uint64_t stub_key_version = 0; // version the stub file is encrypted under
  Bytes policy;                       // serialized PolicyNode
  // CP-ABE ciphertext of the key state — or, when `group_wrap_id` is
  // non-empty, a symmetric wrap under that group's wrap key (the group
  // rekeying extension: one CP-ABE encryption amortized over many files).
  Bytes wrapped_state;
  std::string group_wrap_id;          // key-store object holding the wrap key
  Bytes derivation_public_key;        // owner's public derivation key (n‖e)

  [[nodiscard]] Bytes Serialize() const;
  [[nodiscard]] static KeyStateRecord Deserialize(ByteSpan blob);
};

// Obfuscates a file pathname with a salted hash (paper §IV-D "Discussion").
[[nodiscard]] std::string ObfuscateFileId(std::string_view pathname, ByteSpan salt);

}  // namespace reed::store
