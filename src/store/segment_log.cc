#include "store/segment_log.h"

#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace reed::store {
namespace {

obs::Counter& SealedCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("store.segment.sealed");
  return c;
}

bool IsSegmentName(const std::string& name) {
  return name.starts_with("seg-") && name.ends_with(".log");
}

}  // namespace

SegmentLog::SegmentLog(std::string dir, DurabilityOptions options)
    : dir_(std::move(dir)), options_(options) {
  (void)SealedCounter();  // resolve before any lock is held
}

std::string SegmentLog::PathFor(std::uint32_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06u.log", id);
  return dir_ + "/" + name;
}

std::uint64_t SegmentLog::Replay(const BeginContainerFn& begin_container,
                                 const RecordFn& record) {
  // Recovery is single-threaded and strictly precedes concurrent use; the
  // scan runs lock-free so the per-record callbacks can take the container
  // writer lock (rank kStoreContainer < kStoreSegment) without inversion.
  std::vector<std::string> names;
  for (const std::string& name : util::ListFiles(dir_)) {
    if (IsSegmentName(name)) names.push_back(name);
  }
  std::uint64_t torn_bytes = 0;
  std::uint64_t sealed_files = 0;
  std::uint32_t next_id = 0;
  std::uint32_t open_id = 0;          // segment left current after replay
  std::uint64_t open_records = 0;     // its replayed record count
  std::uint64_t open_payload = 0;     // its replayed chunk bytes
  for (const std::string& name : names) {
    const std::uint32_t id = next_id++;
    if (PathFor(id) != dir_ + "/" + name) {
      throw StoreError("SegmentLog: segment files not contiguous at " + name);
    }
    const bool last = id + 1 == names.size();
    begin_container(id);
    Bytes raw = util::ReadFileBytes(PathFor(id));
    std::size_t offset = 0;
    std::uint64_t file_records = 0;
    std::uint64_t file_payload = 0;
    bool sealed = false;
    for (;;) {
      ScanResult scan = ScanRecord(raw, offset);
      if (scan.status == ScanStatus::kEnd) break;
      if (scan.status == ScanStatus::kTorn) {
        if (!last) {
          throw StoreError("SegmentLog: corrupt interior segment " + name);
        }
        torn_bytes += raw.size() - offset;
        util::File f = util::File::OpenAppend(PathFor(id));
        f.Truncate(offset);
        f.Close();
        break;
      }
      const RecordView& rec = scan.record;
      offset += rec.encoded_size;
      if (rec.type == RecordType::kSegmentSeal) {
        SegmentSealRecord seal = DecodeSegmentSeal(rec.payload);
        if (seal.records != file_records ||
            seal.payload_bytes != file_payload) {
          throw StoreError("SegmentLog: seal totals mismatch in " + name);
        }
        if (offset != raw.size()) {
          throw StoreError("SegmentLog: records after seal in " + name);
        }
        sealed = true;
        ++sealed_files;
        break;
      }
      if (rec.type != RecordType::kSegmentAppend &&
          rec.type != RecordType::kSegmentDiscard) {
        throw StoreError("SegmentLog: unexpected record type in " + name);
      }
      ++file_records;
      if (rec.type == RecordType::kSegmentAppend) {
        file_payload += DecodeSegmentAppend(rec.payload).data.size();
      }
      record(rec);
    }
    if (!sealed && !last) {
      throw StoreError("SegmentLog: interior segment missing seal: " + name);
    }
    if (!sealed) {
      open_id = id;
      open_records = file_records;
      open_payload = file_payload;
    } else if (last) {
      // Crash landed between sealing this segment and creating the next
      // file: finish the rotation now.
      open_id = id + 1;
      open_records = 0;
      open_payload = 0;
      begin_container(open_id);
    }
  }
  if (names.empty()) {
    open_id = 0;
  }
  MutexLock lock(mu_);
  if (replayed_) throw StoreError("SegmentLog: Replay called twice");
  replayed_ = true;
  current_id_ = open_id;
  current_records_ = open_records;
  current_payload_bytes_ = open_payload;
  sealed_ = sealed_files;
  OpenCurrent();
  return torn_bytes;
}

void SegmentLog::OpenCurrent() {
  file_ = util::File::OpenAppend(PathFor(current_id_));
}

void SegmentLog::AppendFrame(RecordType type, ByteSpan payload) {
  if (!replayed_) throw StoreError("SegmentLog: append before Replay");
  Bytes frame;
  frame.reserve(kRecordHeaderBytes + payload.size() + kRecordTrailerBytes);
  AppendRecord(frame, type, payload);
  file_.Append(frame);
}

void SegmentLog::AppendChunk(std::uint32_t container_id, std::uint32_t offset,
                             ByteSpan data) {
  MutexLock lock(mu_);
  if (container_id != current_id_) {
    throw StoreError("SegmentLog: append to non-current segment");
  }
  SegmentAppendRecord rec{container_id, offset, data};
  AppendFrame(RecordType::kSegmentAppend, EncodeSegmentAppend(rec));
  ++current_records_;
  current_payload_bytes_ += data.size();
}

void SegmentLog::AppendDiscard(const ChunkLocation& loc) {
  MutexLock lock(mu_);
  AppendFrame(RecordType::kSegmentDiscard, EncodeSegmentDiscard({loc}));
  ++current_records_;
}

void SegmentLog::Rotate(std::uint32_t new_container_id) {
  MutexLock lock(mu_);
  if (new_container_id != current_id_ + 1) {
    throw StoreError("SegmentLog: non-sequential rotation");
  }
  SegmentSealRecord seal{current_records_, current_payload_bytes_};
  AppendFrame(RecordType::kSegmentSeal, EncodeSegmentSeal(seal));
  if (options_.fsync_policy != FsyncPolicy::kNone) {
    // Sealed files are immutable from here on; one fsync at the seal means
    // only the CURRENT segment can ever hold a torn tail.
    file_.Sync();
  }
  ++sealed_;
  SealedCounter().Increment();
  current_id_ = new_container_id;
  current_records_ = 0;
  current_payload_bytes_ = 0;
  OpenCurrent();
  if (options_.fsync_policy != FsyncPolicy::kNone) {
    util::SyncDirectory(dir_);
  }
}

void SegmentLog::Sync() {
  MutexLock lock(mu_);
  if (!replayed_) return;  // nothing opened yet
  file_.Sync();
}

std::uint64_t SegmentLog::segments_sealed() const {
  MutexLock lock(mu_);
  return sealed_;
}

}  // namespace reed::store
