// Log-structured container persistence (DESIGN.md §12): one append-only
// segment file per container (`seg-NNNNNN.log`), each a sequence of framed
// records (store/log_format.h). A container's appends and any discards
// issued while it is current land in its file; when the ContainerStore
// rotates, the old segment is SEALED with a footer recording its totals
// (then fsynced, so only the LAST segment can ever be torn) and the next
// file is opened.
//
// Replay rebuilds the in-memory ContainerStore exactly: files are read in
// id order, every record re-applied, a torn tail on the last file truncated
// at the CRC boundary. A missing seal on an interior file means the log is
// corrupt beyond the crash-consistency contract and recovery fails loudly.
//
// Locking: appends arrive under the ContainerStore writer lock; the group
// commit leader calls Sync() with no caller lock. The internal mutex
// (LockRank::kStoreSegment, above kStoreContainer) covers the fd + seal
// bookkeeping for exactly that overlap.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "store/durability.h"
#include "store/log_format.h"
#include "util/file_io.h"
#include "util/thread_annotations.h"

namespace reed::store {

class SegmentLog {
 public:
  SegmentLog(std::string dir, DurabilityOptions options);

  // Replays every existing segment file in order: `begin_container(id)` at
  // each file boundary, then `record` per valid record. Truncates a torn
  // tail on the last file, opens it for appending, and returns the number
  // of torn bytes dropped. Must be called exactly once, before any append.
  using BeginContainerFn = std::function<void(std::uint32_t id)>;
  using RecordFn = std::function<void(const RecordView&)>;
  std::uint64_t Replay(const BeginContainerFn& begin_container,
                       const RecordFn& record);

  // Called by ContainerStore under its writer lock.
  void AppendChunk(std::uint32_t container_id, std::uint32_t offset,
                   ByteSpan data);
  void AppendDiscard(const ChunkLocation& loc);
  // Seals the current segment (footer + fsync) and opens seg-(id+1);
  // `new_container_id` must be the next sequential id.
  void Rotate(std::uint32_t new_container_id);

  // Flushes the current segment file; sealed files were synced at the seal.
  void Sync();

  [[nodiscard]] std::uint64_t segments_sealed() const;

 private:
  void OpenCurrent() REED_REQUIRES(mu_);
  void AppendFrame(RecordType type, ByteSpan payload) REED_REQUIRES(mu_);
  [[nodiscard]] std::string PathFor(std::uint32_t id) const;

  const std::string dir_;
  const DurabilityOptions options_;

  mutable Mutex mu_{LockRank::kStoreSegment};
  util::File file_ REED_GUARDED_BY(mu_);
  std::uint32_t current_id_ REED_GUARDED_BY(mu_) = 0;
  std::uint64_t current_records_ REED_GUARDED_BY(mu_) = 0;
  std::uint64_t current_payload_bytes_ REED_GUARDED_BY(mu_) = 0;
  std::uint64_t sealed_ REED_GUARDED_BY(mu_) = 0;
  bool replayed_ REED_GUARDED_BY(mu_) = false;
};

}  // namespace reed::store
