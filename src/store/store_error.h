// Typed error for the storage layer: container capacity/bounds violations,
// missing objects, malformed recipes. Deriving from reed::Error keeps every
// existing `catch (const Error&)` working (StorageServer::HandleRequest
// converts any Error into a status-1 frame) while letting callers
// discriminate storage-state failures from wire or crypto ones.
#pragma once

#include "util/bytes.h"

namespace reed::store {

class StoreError : public Error {
 public:
  using Error::Error;
};

}  // namespace reed::store
