#include "store/wal.h"

#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace reed::store {
namespace {

struct WalMetrics {
  obs::Counter* appends;
  obs::Counter* append_bytes;
  obs::Counter* syncs;
  obs::Counter* group_rides;  // commits satisfied by another leader's fsync
};

WalMetrics& Metrics() {
  auto& reg = obs::Registry::Global();
  static WalMetrics m{&reg.GetCounter("store.wal.appends"),
                      &reg.GetCounter("store.wal.append_bytes"),
                      &reg.GetCounter("store.wal.syncs"),
                      &reg.GetCounter("store.wal.group_rides")};
  return m;
}

}  // namespace

Wal::Wal(std::string path, DurabilityOptions options) : options_(options) {
  // Resolve metrics before any lock is ever taken (kObsRegistry ranks above
  // kStoreWal, but eager resolution keeps the hot path allocation-free).
  (void)Metrics();
  // Scan the existing log: the valid CRC-framed prefix becomes the replay
  // buffer; anything after it is a torn tail from a crash mid-append, cut
  // off physically so new appends start at a clean boundary.
  Bytes raw;
  if (util::FileExists(path)) raw = util::ReadFileBytes(path);
  std::size_t valid = 0;
  for (;;) {
    ScanResult scan = ScanRecord(raw, valid);
    if (scan.status != ScanStatus::kRecord) break;
    valid += scan.record.encoded_size;
  }
  torn_tail_bytes_ = raw.size() - valid;
  raw.resize(valid);
  recovered_ = std::move(raw);
  file_ = util::File::OpenAppend(path);
  if (file_.Size() != valid) file_.Truncate(valid);
}

std::uint64_t Wal::Append(RecordType type, ByteSpan payload) {
  Bytes frame;
  frame.reserve(kRecordHeaderBytes + payload.size() + kRecordTrailerBytes);
  AppendRecord(frame, type, payload);
  Metrics().appends->Increment();
  Metrics().append_bytes->Add(frame.size());
  MutexLock lock(mu_);
  file_.Append(frame);
  return next_lsn_++;
}

void Wal::Commit(std::uint64_t lsn) {
  if (options_.fsync_policy == FsyncPolicy::kNone) return;
  for (;;) {
    {
      MutexLock lock(mu_);
      if (synced_lsn_ >= lsn) return;
      if (sync_in_progress_) {
        // Follower: ride the in-flight group fsync.
        Metrics().group_rides->Increment();
        synced_cv_.Wait(mu_, [this]() REED_REQUIRES(mu_) {
          return !sync_in_progress_;
        });
        if (synced_lsn_ >= lsn) return;
        continue;  // the leader's flush predates our append — take the lead
      }
      sync_in_progress_ = true;
    }
    // Leader, no lock held: dwell so concurrent writers can pile on, then
    // flush everything appended by the end of the window.
    if (options_.fsync_policy == FsyncPolicy::kGrouped &&
        options_.group_commit_window > std::chrono::microseconds::zero()) {
      std::this_thread::sleep_for(options_.group_commit_window);
    }
    std::uint64_t target;
    {
      MutexLock lock(mu_);
      target = next_lsn_ - 1;
    }
    // Data before log: chunk segments reach disk no later than the index
    // records pointing into them.
    if (pre_sync_hook_) pre_sync_hook_();
    file_.Sync();
    Metrics().syncs->Increment();
    {
      MutexLock lock(mu_);
      synced_lsn_ = target;
      sync_in_progress_ = false;
    }
    synced_cv_.NotifyAll();
  }
}

void Wal::CommitAll() { Commit(last_lsn()); }

void Wal::Sync() {
  if (pre_sync_hook_) pre_sync_hook_();
  std::uint64_t target;
  {
    MutexLock lock(mu_);
    target = next_lsn_ - 1;
  }
  file_.Sync();
  Metrics().syncs->Increment();
  {
    MutexLock lock(mu_);
    if (synced_lsn_ < target) synced_lsn_ = target;
  }
  synced_cv_.NotifyAll();
}

void Wal::Reset() {
  MutexLock lock(mu_);
  file_.Truncate(0);
  file_.Sync();
  synced_lsn_ = next_lsn_ - 1;  // nothing outstanding: the log is empty
}

void Wal::set_pre_sync_hook(std::function<void()> hook) {
  pre_sync_hook_ = std::move(hook);
}

void Wal::DropRecovered() {
  recovered_.clear();
  recovered_.shrink_to_fit();
}

std::uint64_t Wal::last_lsn() const {
  MutexLock lock(mu_);
  return next_lsn_ - 1;
}

}  // namespace reed::store
