// Write-ahead log for the metadata plane (DESIGN.md §12): fingerprint-index
// inserts/erases and object puts/erases — recipes, stub files, encrypted
// key states — all append framed records here, so a stub-only (lazy) rekey
// survives a restart exactly like a data write does.
//
// Appends are ordered under one mutex (LockRank::kStoreWal, acquired while
// the caller holds its shard lock); durability is a separate step with
// leader-based GROUP COMMIT: the first committer becomes leader, dwells for
// the configured window with no lock held, fires the pre-sync hook (the
// engine syncs container segments first — data before log), then fsyncs
// once for every append that landed meanwhile. Followers ride the leader's
// flush on a condvar.
//
// Construction scans the existing file, keeps the valid record prefix for
// the engine to replay, and physically truncates the torn tail (CRC-framed
// records make the cut point unambiguous).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "store/durability.h"
#include "store/log_format.h"
#include "util/file_io.h"
#include "util/thread_annotations.h"

namespace reed::store {

class Wal {
 public:
  Wal(std::string path, DurabilityOptions options);

  // Frames and appends one record; returns its LSN (1-based, monotone).
  // The record is in the OS page cache after this call — it survives a
  // process kill, but only Commit makes it survive a machine crash.
  std::uint64_t Append(RecordType type, ByteSpan payload);

  // Blocks until every record with lsn' <= lsn is durable per the fsync
  // policy (kNone: returns immediately; Close still syncs).
  void Commit(std::uint64_t lsn);
  // Commit up to the most recent append.
  void CommitAll();

  // Unconditional fsync of everything appended so far, regardless of
  // policy. The close path and checkpointing use this.
  void Sync();

  // Post-checkpoint: drop all records (the checkpoint supersedes them).
  // Caller must be quiesced — no concurrent Append/Commit.
  void Reset();

  // Runs with no Wal lock held, immediately before each group fsync. The
  // engine hooks the segment-log sync here so chunk data always reaches
  // disk no later than the index records that point at it.
  void set_pre_sync_hook(std::function<void()> hook);

  // The valid record prefix found at construction, for engine replay; call
  // DropRecovered() afterwards to release the buffer.
  [[nodiscard]] const Bytes& recovered() const { return recovered_; }
  void DropRecovered();
  // Bytes of torn tail truncated at construction (0 if the log was clean).
  [[nodiscard]] std::uint64_t torn_tail_bytes() const {
    return torn_tail_bytes_;
  }

  [[nodiscard]] std::uint64_t last_lsn() const;

 private:
  const DurabilityOptions options_;
  std::function<void()> pre_sync_hook_;  // set once before concurrent use

  mutable Mutex mu_{LockRank::kStoreWal};
  CondVar synced_cv_;
  // Written (appended) only under mu_; the group-commit leader fsyncs it
  // with NO lock held — concurrent write+fsync on one descriptor is safe at
  // the OS level and is exactly what lets followers keep appending during a
  // flush. Deliberately not GUARDED_BY for that reason.
  util::File file_;
  std::uint64_t next_lsn_ REED_GUARDED_BY(mu_) = 1;
  std::uint64_t synced_lsn_ REED_GUARDED_BY(mu_) = 0;
  bool sync_in_progress_ REED_GUARDED_BY(mu_) = false;

  Bytes recovered_;  // construction-time only; immutable afterwards
  std::uint64_t torn_tail_bytes_ = 0;
};

}  // namespace reed::store
