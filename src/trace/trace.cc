#include "trace/trace.h"

#include <cmath>

#include "crypto/sha256.h"

namespace reed::trace {

namespace {
constexpr std::uint64_t kFp48Mask = (std::uint64_t(1) << 48) - 1;

// Stable 64-bit hash of a labeled tuple (drives all trace determinism).
std::uint64_t TupleHash(std::uint64_t seed, std::string_view label,
                        std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  Bytes input;
  AppendU64(input, seed);
  Append(input, ToBytes(label));
  AppendU64(input, a);
  AppendU64(input, b);
  AppendU64(input, c);
  crypto::Sha256Digest d = crypto::Sha256::Hash(input);
  return GetU64(ByteSpan(d.data(), 8));
}

double UnitHash(std::uint64_t seed, std::string_view label, std::uint64_t a,
                std::uint64_t b, std::uint64_t c) {
  return static_cast<double>(TupleHash(seed, label, a, b, c) >> 11) *
         (1.0 / 9007199254740992.0);
}
}  // namespace

TraceGenerator::TraceGenerator(const TraceOptions& options)
    : options_(options), users_(options.num_users) {
  if (options_.num_users == 0 || options_.num_days == 0) {
    throw Error("TraceGenerator: need at least one user and one day");
  }
  if (options_.avg_chunk < options_.min_chunk ||
      options_.avg_chunk > options_.max_chunk) {
    throw Error("TraceGenerator: avg chunk size out of [min, max]");
  }
  // Seed each user's day-0 working set.
  for (std::size_t u = 0; u < options_.num_users; ++u) {
    crypto::DeterministicRng rng(options_.seed * 1000003 + u);
    UserState& state = users_[u];
    std::uint64_t bytes = 0;
    std::size_t slot = 0;
    while (bytes < options_.user_snapshot_bytes) {
      SlotState s;
      s.version = 0;
      // Shared/private is a property of the slot alone (user-independent).
      s.shared = UnitHash(options_.seed, "shared?", 0, slot, 0) <
                 options_.cross_user_share;
      // Shared slots must have identical sizes across users: derive the
      // size from the slot id, not the per-user RNG.
      if (s.shared) {
        crypto::DeterministicRng srng(options_.seed * 7777777 + slot);
        s.size = DrawChunkSize(srng);
      } else {
        s.size = DrawChunkSize(rng);
      }
      bytes += s.size;
      state.slots.push_back(s);
      ++slot;
    }
  }
}

std::uint32_t TraceGenerator::DrawChunkSize(crypto::Rng& rng) const {
  // Exponential around the average, clamped to [min, max] — roughly the
  // size distribution Rabin chunking produces.
  double u = rng.UniformDouble();
  double mean = static_cast<double>(options_.avg_chunk - options_.min_chunk);
  double draw = -mean * std::log(1.0 - u);
  double size = static_cast<double>(options_.min_chunk) + draw;
  if (size > static_cast<double>(options_.max_chunk)) {
    size = static_cast<double>(options_.max_chunk);
  }
  return static_cast<std::uint32_t>(size);
}

std::uint64_t TraceGenerator::SlotFingerprint(std::size_t user,
                                              std::size_t slot,
                                              const SlotState& state) const {
  // Shared slots hash without the user id, so every user's copy of slot s
  // at version v is the *same* chunk — cross-user dedup.
  std::uint64_t ns = state.shared ? 0xFFFFFFFFull : user;
  return TupleHash(options_.seed, "chunk-id", ns, slot, state.version) &
         kFp48Mask;
}

void TraceGenerator::EvolveOneDay(std::size_t user, std::size_t day) {
  UserState& state = users_[user];
  // Modify: each slot rewrites with the daily modification rate. Shared
  // slots use a user-independent coin so all users see the same evolution.
  for (std::size_t slot = 0; slot < state.slots.size(); ++slot) {
    SlotState& s = state.slots[slot];
    double coin = s.shared
                      ? UnitHash(options_.seed, "mod-shared", slot, day, 0)
                      : UnitHash(options_.seed, "mod", user, slot, day);
    if (coin < options_.daily_mod_rate) {
      ++s.version;
    }
  }
  // Grow: append new private slots.
  std::uint64_t grow_bytes = static_cast<std::uint64_t>(
      static_cast<double>(options_.user_snapshot_bytes) *
      options_.daily_growth_rate);
  crypto::DeterministicRng rng(options_.seed * 37 + user * 1009 + day);
  std::uint64_t added = 0;
  while (added < grow_bytes) {
    SlotState s;
    s.shared = false;
    s.version = 0;
    s.size = DrawChunkSize(rng);
    added += s.size;
    state.slots.push_back(s);
  }
}

Snapshot TraceGenerator::GetSnapshot(std::size_t user, std::size_t day) {
  if (user >= users_.size()) throw Error("TraceGenerator: bad user");
  if (day >= options_.num_days) throw Error("TraceGenerator: bad day");
  UserState& state = users_[user];
  if (day < state.next_day && day != state.next_day - 1) {
    throw Error("TraceGenerator: snapshots must be requested in day order");
  }
  while (state.next_day <= day) {
    if (state.next_day > 0) EvolveOneDay(user, state.next_day);
    ++state.next_day;
  }
  Snapshot snap;
  snap.reserve(state.slots.size());
  for (std::size_t slot = 0; slot < state.slots.size(); ++slot) {
    const SlotState& s = state.slots[slot];
    snap.push_back(ChunkRecord{SlotFingerprint(user, slot, s), s.size});
  }
  return snap;
}

std::uint64_t SnapshotBytes(const Snapshot& snapshot) {
  std::uint64_t total = 0;
  for (const auto& rec : snapshot) total += rec.size;
  return total;
}

Bytes ReconstructChunk(const ChunkRecord& record) {
  if (record.size == 0) throw Error("ReconstructChunk: zero-size record");
  std::uint8_t fp[6];
  for (int i = 0; i < 6; ++i) {
    fp[i] = static_cast<std::uint8_t>(record.fingerprint48 >> (40 - 8 * i));
  }
  Bytes out(record.size);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = fp[i % 6];
  return out;
}

MaterializedSnapshot MaterializeSnapshot(const Snapshot& snapshot) {
  MaterializedSnapshot out;
  out.data.reserve(SnapshotBytes(snapshot));
  out.refs.reserve(snapshot.size());
  for (const auto& rec : snapshot) {
    Bytes chunk = ReconstructChunk(rec);
    out.refs.push_back({out.data.size(), chunk.size()});
    Append(out.data, chunk);
  }
  return out;
}

Bytes SerializeSnapshot(const Snapshot& snapshot) {
  Bytes out;
  out.reserve(snapshot.size() * 10);
  for (const auto& rec : snapshot) {
    for (int i = 0; i < 6; ++i) {
      out.push_back(
          static_cast<std::uint8_t>(rec.fingerprint48 >> (40 - 8 * i)));
    }
    AppendU32(out, rec.size);
  }
  return out;
}

Snapshot DeserializeSnapshot(ByteSpan blob) {
  if (blob.size() % 10 != 0) {
    throw Error("DeserializeSnapshot: blob not a multiple of record size");
  }
  Snapshot snap;
  snap.reserve(blob.size() / 10);
  for (std::size_t off = 0; off < blob.size(); off += 10) {
    ChunkRecord rec;
    rec.fingerprint48 = 0;
    for (int i = 0; i < 6; ++i) {
      rec.fingerprint48 = (rec.fingerprint48 << 8) | blob[off + i];
    }
    rec.size = GetU32(blob.subspan(off + 6));
    snap.push_back(rec);
  }
  return snap;
}

}  // namespace reed::trace
