// FSL-Homes-style backup-trace substrate (paper §VI-B).
//
// The paper's real-world evaluation replays the 2013 FSL-Homes dataset:
// 147 daily snapshots of nine users' home directories, each snapshot a
// sequence of (48-bit fingerprint, chunk size) records, 56.2 TB logical in
// total with ~98.6% dedup savings. That dataset cannot ship with this
// repository, so we build the closest synthetic equivalent: a deterministic
// generator of per-user daily snapshots with controllable
//   * intra-user day-over-day modification rate (backup churn),
//   * daily working-set growth, and
//   * cross-user sharing (users share a slice of a common file system),
// which are the three quantities the paper's storage/throughput results
// actually depend on. Chunk *content* is reconstructed from a record
// exactly as the paper does: "repeatedly writing its fingerprint to a
// spare chunk until reaching the specified chunk size", so identical
// fingerprints yield identical chunks.
#pragma once

#include <vector>

#include "chunk/chunker.h"
#include "crypto/random.h"
#include "util/bytes.h"

namespace reed::trace {

struct ChunkRecord {
  std::uint64_t fingerprint48 = 0;  // 48-bit chunk fingerprint
  std::uint32_t size = 0;           // chunk size in bytes
};

using Snapshot = std::vector<ChunkRecord>;

struct TraceOptions {
  std::size_t num_users = 9;   // FSL-Homes 2013: nine users
  std::size_t num_days = 147;  // Jan 22 – Jun 17, 2013
  // Logical bytes per user-day snapshot at day 0 (scaled from the paper's
  // 290-680 GB/day aggregate to laptop scale).
  std::uint64_t user_snapshot_bytes = 64ull << 20;  // 64 MB default
  double daily_mod_rate = 0.010;    // chunks rewritten per day
  double daily_growth_rate = 0.002; // working-set growth per day
  double cross_user_share = 0.30;   // fraction of slots shared between users
  std::size_t min_chunk = 2 * 1024;
  std::size_t max_chunk = 16 * 1024;
  std::size_t avg_chunk = 8 * 1024;
  std::uint64_t seed = 2016;
};

// Stateful day-by-day generator. Snapshots must be requested in
// non-decreasing day order (internally it evolves per-slot version state,
// like a real file system evolves).
class TraceGenerator {
 public:
  explicit TraceGenerator(const TraceOptions& options);

  const TraceOptions& options() const { return options_; }

  // Snapshot of `user` on `day` (0-based). Deterministic in (options.seed,
  // user, day). Days must be requested in non-decreasing order per user.
  Snapshot GetSnapshot(std::size_t user, std::size_t day);

 private:
  struct SlotState {
    std::uint64_t version = 0;
    std::uint32_t size = 0;
    bool shared = false;
  };
  struct UserState {
    std::size_t next_day = 0;
    std::vector<SlotState> slots;
  };

  std::uint32_t DrawChunkSize(crypto::Rng& rng) const;
  void EvolveOneDay(std::size_t user, std::size_t day);
  std::uint64_t SlotFingerprint(std::size_t user, std::size_t slot,
                                const SlotState& state) const;

  TraceOptions options_;
  std::vector<UserState> users_;
};

// Logical bytes in a snapshot.
std::uint64_t SnapshotBytes(const Snapshot& snapshot);

// Paper §VI-B chunk reconstruction: repeat the 6-byte fingerprint until the
// chunk size is reached.
Bytes ReconstructChunk(const ChunkRecord& record);

// Materializes a whole snapshot into one buffer plus chunk boundaries —
// the form ReedClient::UploadChunked consumes.
struct MaterializedSnapshot {
  Bytes data;
  std::vector<chunk::ChunkRef> refs;
};
MaterializedSnapshot MaterializeSnapshot(const Snapshot& snapshot);

// Binary snapshot (de)serialization — the on-disk trace format (10 bytes
// per record: 6-byte fingerprint + 4-byte size).
Bytes SerializeSnapshot(const Snapshot& snapshot);
Snapshot DeserializeSnapshot(ByteSpan blob);

}  // namespace reed::trace
