#include "util/bytes.h"

namespace reed {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

Bytes HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw Error("HexDecode: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw Error("HexDecode: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

void XorInto(MutableByteSpan out, ByteSpan in) {
  if (out.size() != in.size()) {
    throw Error("XorInto: size mismatch");
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] ^= in[i];
  }
}

Bytes Slice(ByteSpan src, std::size_t offset, std::size_t len) {
  if (offset + len > src.size() || offset + len < offset) {
    throw Error("Slice: range out of bounds");
  }
  return Bytes(src.begin() + offset, src.begin() + offset + len);
}

}  // namespace reed
