// Byte-buffer helpers shared across all REED modules.
//
// A `Bytes` is the universal currency for chunk payloads, packages, keys and
// wire messages. Helpers here are deliberately small and allocation-explicit:
// performance-sensitive code (AONT transforms, container packing) works on
// spans and writes in place.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/secure.h"

namespace reed {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

// Base class for all REED errors; modules derive topic-specific errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Documents an intentionally ignored [[nodiscard]] result. The whole tree
// builds with -Werror=unused-result, so a fallible call whose result the
// caller genuinely does not need must say so by name — a DiscardResult call
// marks a reviewed decision, never an accident. Prefer handling or
// propagating; keep these rare.
template <typename T>
void DiscardResult(T&&) {}

// Converts a string literal/body to bytes (no encoding assumptions).
[[nodiscard]] inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

[[nodiscard]] inline std::string ToString(ByteSpan b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

// Lowercase hex encoding, used for fingerprint pretty-printing and logs.
[[nodiscard]] std::string HexEncode(ByteSpan data);

// Strict decoder: throws Error on odd length or non-hex characters.
[[nodiscard]] Bytes HexDecode(std::string_view hex);

// out[i] ^= in[i] for the whole span; sizes must match.
void XorInto(MutableByteSpan out, ByteSpan in);

// Appends `src` to `dst`.
inline void Append(Bytes& dst, ByteSpan src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

// Concatenates any number of byte spans.
template <typename... Spans>
[[nodiscard]] Bytes Concat(const Spans&... spans) {
  Bytes out;
  std::size_t total = (static_cast<std::size_t>(0) + ... + spans.size());
  out.reserve(total);
  (Append(out, ByteSpan(spans)), ...);
  return out;
}

// Copies a sub-range [offset, offset+len) of `src`; throws if out of range.
[[nodiscard]] Bytes Slice(ByteSpan src, std::size_t offset, std::size_t len);

// Non-elidable secure wipe. Thin alias over SecureZero (util/secure.h),
// kept for callers that already include bytes.h.
inline void SecureWipe(MutableByteSpan data) { SecureZero(data); }

// Constant-time equality for secrets (keys, MACs, canaries). Alias over
// SecureCompare (util/secure.h).
[[nodiscard]] inline bool ConstantTimeEqual(ByteSpan a, ByteSpan b) {
  return SecureCompare(a, b);
}

// Big-endian fixed-width integer codecs used by the wire format and
// container layouts.
inline void PutU32(MutableByteSpan out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

[[nodiscard]] inline std::uint32_t GetU32(ByteSpan in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

inline void PutU64(MutableByteSpan out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }
}

[[nodiscard]] inline std::uint64_t GetU64(ByteSpan in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[i];
  return v;
}

inline void AppendU32(Bytes& out, std::uint32_t v) {
  std::uint8_t buf[4];
  PutU32(buf, v);
  Append(out, buf);
}

inline void AppendU64(Bytes& out, std::uint64_t v) {
  std::uint8_t buf[8];
  PutU64(buf, v);
  Append(out, buf);
}

}  // namespace reed
