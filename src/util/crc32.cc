#include "util/crc32.h"

#include <array>

namespace reed::util {
namespace {

constexpr std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = MakeCrcTable();

}  // namespace

std::uint32_t Crc32(ByteSpan data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace reed::util
