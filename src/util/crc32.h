// CRC-32 (IEEE 802.3, the zlib polynomial) over byte spans.
//
// The durable store (DESIGN.md §12) stamps every WAL / segment-log record
// with a CRC so recovery can tell a torn tail from valid data. This is an
// integrity check against crashes and bit rot, NOT an authenticator — any
// tamper-evidence the system needs comes from the crypto layer.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace reed::util {

// One-shot CRC-32 of `data`. Chain incremental computations by passing the
// previous result as `seed` (Crc32(b, Crc32(a)) == Crc32(a||b)).
[[nodiscard]] std::uint32_t Crc32(ByteSpan data, std::uint32_t seed = 0);

}  // namespace reed::util
