#include "util/deadlock.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace reed::lockdiag {
namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string SiteString(const std::source_location& site) {
  std::ostringstream out;
  out << site.file_name() << ":" << site.line();
  return out.str();
}

// --- per-thread held-lock stack ------------------------------------------

struct HeldLock {
  const void* lock;
  LockRank rank;
  std::string site;
  std::uint64_t acquired_ns;
};

std::vector<HeldLock>& HeldStack() {
  // Heap-allocated and leaked: thread_local destruction order vs. late lock
  // releases (e.g. in other thread_local destructors) is otherwise fragile.
  thread_local auto* stack = new std::vector<HeldLock>();
  return *stack;
}

// --- global acquired-after graph -----------------------------------------

struct Edge {
  std::string from_site;  // where the held (predecessor) lock was acquired
  std::string to_site;    // where the successor lock was acquired
};

struct Node {
  LockRank rank = LockRank::kUnranked;
  std::unordered_map<const void*, Edge> out;
};

struct Graph {
  std::mutex mu;  // plain std::mutex: must not reenter the hooks
  std::unordered_map<const void*, Node> nodes;
};

Graph& TheGraph() {
  static auto* g = new Graph();
  return *g;
}

// Depth-first search for a path `from -> ... -> to`; fills `path` with the
// node sequence when found. Caller holds Graph::mu.
bool FindPath(const Graph& g, const void* from, const void* to,
              std::unordered_set<const void*>& visited,
              std::vector<const void*>& path) {
  if (from == to) {
    path.push_back(from);
    return true;
  }
  if (!visited.insert(from).second) return false;
  auto it = g.nodes.find(from);
  if (it == g.nodes.end()) return false;
  for (const auto& [next, edge] : it->second.out) {
    if (FindPath(g, next, to, visited, path)) {
      path.push_back(from);
      return true;
    }
  }
  return false;
}

// --- report plumbing ------------------------------------------------------

std::atomic<ReportHandler> g_handler{nullptr};
std::atomic<std::uint64_t> g_report_count{0};

void Report(const std::string& report) {
  g_report_count.fetch_add(1, std::memory_order_relaxed);
  ReportHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(report);
    return;
  }
  std::fprintf(stderr, "%s", report.c_str());
  std::fflush(stderr);
  std::abort();
}

std::atomic<ProfileFn> g_record_wait{nullptr};
std::atomic<ProfileFn> g_record_held{nullptr};

std::string Describe(const void* lock, LockRank rank) {
  std::ostringstream out;
  out << LockRankName(rank) << " (" << lock << ")";
  return out.str();
}

}  // namespace

std::uint64_t BeforeAcquire(const void* lock, LockRank rank,
                            const std::source_location& site) {
  auto& held = HeldStack();

  for (const HeldLock& h : held) {
    if (h.lock == lock) {
      std::ostringstream out;
      out << "reed lockdiag: recursive acquisition (self deadlock)\n"
          << "  acquiring " << Describe(lock, rank) << " at "
          << SiteString(site) << "\n"
          << "  already held, acquired at " << h.site << "\n";
      Report(out.str());
      return NowNs();
    }
  }

  if (rank != LockRank::kUnranked) {
    for (const HeldLock& h : held) {
      if (h.rank != LockRank::kUnranked && rank <= h.rank) {
        std::ostringstream out;
        out << "reed lockdiag: lock rank violation (potential deadlock)\n"
            << "  acquiring " << Describe(lock, rank) << " rank "
            << static_cast<int>(rank) << " at " << SiteString(site) << "\n"
            << "  while holding " << Describe(h.lock, h.rank) << " rank "
            << static_cast<int>(h.rank) << " acquired at " << h.site << "\n"
            << "  locks must be acquired in strictly increasing rank order "
               "(util/lock_rank.h)\n";
        Report(out.str());
      }
    }
  }

  if (!held.empty()) {
    const HeldLock& prev = held.back();
    Graph& g = TheGraph();
    std::lock_guard<std::mutex> guard(g.mu);
    auto prev_it = g.nodes.find(prev.lock);
    const bool edge_known =
        prev_it != g.nodes.end() && prev_it->second.out.count(lock) > 0;
    if (!edge_known) {
      // Inserting prev -> lock: a pre-existing path lock -> ... -> prev
      // means the two orders coexist — a cycle.
      std::unordered_set<const void*> visited;
      std::vector<const void*> path;
      if (FindPath(g, lock, prev.lock, visited, path)) {
        std::ostringstream out;
        out << "reed lockdiag: lock-order cycle (potential deadlock)\n"
            << "  acquiring " << Describe(lock, rank) << " at "
            << SiteString(site) << "\n"
            << "  while holding " << Describe(prev.lock, prev.rank)
            << " acquired at " << prev.site << "\n"
            << "  conflicting prior ordering:\n";
        // `path` is filled back-to-front: lock ... prev.lock reversed.
        for (std::size_t i = path.size(); i-- > 1;) {
          const void* a = path[i];
          const void* b = path[i - 1];
          const Node& na = g.nodes.at(a);
          const Edge& e = na.out.at(b);
          out << "    " << Describe(a, na.rank) << " (held at " << e.from_site
              << ") -> " << Describe(b, g.nodes.at(b).rank) << " (acquired at "
              << e.to_site << ")\n";
        }
        Report(out.str());
      }
    }
  }

  return NowNs();
}

void AfterAcquire(const void* lock, LockRank rank,
                  const std::source_location& site,
                  std::uint64_t wait_start_ns) {
  const std::uint64_t now = NowNs();
  auto& held = HeldStack();

  if (!held.empty()) {
    const HeldLock& prev = held.back();
    Graph& g = TheGraph();
    std::lock_guard<std::mutex> guard(g.mu);
    g.nodes[lock].rank = rank;
    Node& from = g.nodes[prev.lock];
    from.rank = prev.rank;
    from.out.emplace(lock, Edge{prev.site, SiteString(site)});
  } else {
    Graph& g = TheGraph();
    std::lock_guard<std::mutex> guard(g.mu);
    g.nodes[lock].rank = rank;
  }

  held.push_back(HeldLock{lock, rank, SiteString(site), now});

  if (ProfileFn record = g_record_wait.load(std::memory_order_acquire)) {
    record(rank, (now - wait_start_ns) / 1000);
  }
}

void OnRelease(const void* lock) {
  auto& held = HeldStack();
  for (std::size_t i = held.size(); i-- > 0;) {
    if (held[i].lock != lock) continue;
    if (ProfileFn record = g_record_held.load(std::memory_order_acquire)) {
      record(held[i].rank, (NowNs() - held[i].acquired_ns) / 1000);
    }
    held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
    return;
  }
  // Releasing a lock we never saw acquired: tolerated (e.g. profiling was
  // enabled mid-stream); nothing to record.
}

void OnDestroy(const void* lock) {
  Graph& g = TheGraph();
  std::lock_guard<std::mutex> guard(g.mu);
  g.nodes.erase(lock);
  for (auto& [addr, node] : g.nodes) {
    node.out.erase(lock);
  }
}

void SetLockProfiler(ProfileFn record_wait, ProfileFn record_held) {
  g_record_wait.store(record_wait, std::memory_order_release);
  g_record_held.store(record_held, std::memory_order_release);
}

void SetReportHandlerForTest(ReportHandler handler) {
  g_handler.store(handler, std::memory_order_release);
}

std::uint64_t ReportCount() {
  return g_report_count.load(std::memory_order_relaxed);
}

}  // namespace reed::lockdiag
