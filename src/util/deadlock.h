// Runtime lock-order diagnostics: the dynamic half of the deadlock-freedom
// argument (the static half is the LockRank order in util/lock_rank.h).
//
// Compiled in only under -DREED_DEADLOCK_DETECT=ON. In that mode every
// reed::Mutex / reed::SharedMutex acquisition and release funnels through
// the hooks below, which maintain:
//
//   * a per-thread held-lock stack (lock address, rank, acquisition site,
//     acquisition timestamp);
//   * a global acquired-after graph over lock *instances*: an edge A -> B is
//     recorded the first time some thread acquires B while holding A, along
//     with both acquisition sites.
//
// An acquisition triggers a report when it
//   (a) re-acquires a lock the thread already holds (guaranteed self
//       deadlock on these non-recursive mutexes),
//   (b) violates rank order — its rank is <= the rank of a ranked lock the
//       thread already holds, or
//   (c) would insert an edge A -> B into the graph while B -> ... -> A is
//       already reachable: a lock-order cycle, i.e. a potential deadlock,
//       reported even though THIS schedule did not deadlock.
//
// Reports carry both acquisition sites (std::source_location, threaded down
// from the RAII guards) and, for cycles, the recorded sites of every edge on
// the conflicting path. The default report handler prints to stderr and
// aborts; tests install a capture handler via SetReportHandlerForTest.
//
// Checks (b)/(c) run BEFORE blocking on the mutex, so a true deadlock is
// reported instead of hanging. Wait and held durations are forwarded to a
// profiler installed by the obs layer (obs/lock_metrics.cc) — util stays
// free of an obs dependency by exposing raw function-pointer hooks here.
#pragma once

#include <cstdint>
#include <source_location>
#include <string>

#include "util/lock_rank.h"

namespace reed::lockdiag {

// --- acquisition hooks (called by reed::Mutex / reed::SharedMutex) --------

// Rank + cycle + reacquisition checks; runs before blocking. Returns the
// wait-timer start (steady-clock nanoseconds).
std::uint64_t BeforeAcquire(const void* lock, LockRank rank,
                            const std::source_location& site);

// Pushes onto the held stack, records the acquired-after edge, and reports
// the wait duration to the profiler. `wait_start_ns` is BeforeAcquire's
// return value.
void AfterAcquire(const void* lock, LockRank rank,
                  const std::source_location& site,
                  std::uint64_t wait_start_ns);

// Pops the held stack (out-of-order release is tolerated: searched from the
// top) and reports the held duration to the profiler.
void OnRelease(const void* lock);

// Purges a destroyed lock from the acquired-after graph so a later lock
// reusing the address cannot inherit stale edges.
void OnDestroy(const void* lock);

// --- profiler + report plumbing ------------------------------------------

// Installed once by the obs layer; records microseconds per rank into
// "lock.<rank>.wait_us" / "lock.<rank>.held_us" histograms. Must be
// lock-free / reentrancy-safe: it runs while arbitrary locks are held.
using ProfileFn = void (*)(LockRank rank, std::uint64_t micros);
void SetLockProfiler(ProfileFn record_wait, ProfileFn record_held);

// Report sink. The default prints the report to stderr and calls abort().
// Tests install a capturing handler; when the handler returns, the
// offending acquisition proceeds (a *potential* deadlock is not an actual
// one, so execution can continue).
using ReportHandler = void (*)(const std::string& report);
void SetReportHandlerForTest(ReportHandler handler);

// Number of reports emitted since process start (test aid).
std::uint64_t ReportCount();

}  // namespace reed::lockdiag
