#include "util/fault_inject.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>

#include "util/lock_rank.h"
#include "util/schedule_fuzz.h"
#include "util/thread_annotations.h"

namespace reed::fault {

namespace detail {

// Hot-path state is all atomics: REED_FAULT_POINT traversals never take the
// registry lock, so sites are safe inside any lock-free or latency-sensitive
// stretch (the lock below guards only the name map during Arm/Register).
struct Site {
  std::string name;
  std::uint64_t name_hash = 0;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fired{0};
  std::atomic<std::uint8_t> mode{0};
  std::atomic<std::uint64_t> n{0};
  std::atomic<std::uint32_t> permille{0};
  std::atomic<std::uint64_t> seed{0};

  void Store(const Policy& policy) {
    n.store(policy.n, std::memory_order_relaxed);
    permille.store(policy.permille, std::memory_order_relaxed);
    seed.store(policy.seed, std::memory_order_relaxed);
    // Mode last: a traversal that sees the new mode sees its parameters.
    mode.store(static_cast<std::uint8_t>(policy.mode),
               std::memory_order_release);
  }
};

namespace {

std::atomic<FiredHook> g_fired_hook{nullptr};

class SiteRegistry {
 public:
  Site* FindOrCreate(const std::string& name) {
    MutexLock lock(mu_);
    std::unique_ptr<Site>& slot = sites_[name];
    if (slot == nullptr) {
      slot = std::make_unique<Site>();
      slot->name = name;
      slot->name_hash = schedfuzz::detail::Fnv1a(name.c_str());
    }
    return slot.get();
  }

  void Apply(const std::string& name, const Policy& policy) {
    FindOrCreate(name)->Store(policy);
  }

  void DisarmAll() {
    MutexLock lock(mu_);
    for (auto& [name, site] : sites_) {
      site->Store(Policy::Off());
    }
  }

  void ResetCounters() {
    MutexLock lock(mu_);
    for (auto& [name, site] : sites_) {
      site->hits.store(0, std::memory_order_relaxed);
      site->fired.store(0, std::memory_order_relaxed);
    }
  }

  std::vector<SiteStats> Stats() const {
    MutexLock lock(mu_);
    std::vector<SiteStats> out;
    out.reserve(sites_.size());
    for (const auto& [name, site] : sites_) {
      out.push_back({name, site->hits.load(std::memory_order_relaxed),
                     site->fired.load(std::memory_order_relaxed)});
    }
    return out;  // std::map iterates sorted by name
  }

 private:
  mutable Mutex mu_{LockRank::kFaultRegistry};
  std::map<std::string, std::unique_ptr<Site>> sites_ REED_GUARDED_BY(mu_);
};

void ApplySpecInto(SiteRegistry& registry, const std::string& spec);

SiteRegistry& Registry() {
  static SiteRegistry* registry = [] {
    auto* r = new SiteRegistry();  // leaked: process-lifetime singleton
    const char* env = std::getenv("REED_FAULT");
    if (env != nullptr && *env != '\0') {
      // Armed before the first traversal can register; a malformed spec
      // throws out of static init and aborts startup loudly.
      ApplySpecInto(*r, env);
    }
    return r;
  }();
  return *registry;
}

std::uint64_t ParseU64(const std::string& text, const std::string& spec) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    throw Error("fault::ApplySpec: bad number '" + text + "' in '" + spec +
                "'");
  }
  return std::strtoull(text.c_str(), nullptr, 10);
}

void ApplyOne(SiteRegistry& registry, const std::string& entry) {
  const std::size_t colon = entry.find(':');
  const std::string site = entry.substr(0, colon);
  if (site.empty()) {
    throw Error("fault::ApplySpec: empty site in '" + entry + "'");
  }
  if (colon == std::string::npos) {
    registry.Apply(site, Policy::EveryHit());
    return;
  }
  const std::string rest = entry.substr(colon + 1);
  if (rest == "every") {
    registry.Apply(site, Policy::EveryHit());
  } else if (rest.rfind("nth=", 0) == 0) {
    const std::uint64_t nth = ParseU64(rest.substr(4), entry);
    if (nth == 0) {
      throw Error("fault::ApplySpec: nth must be >= 1 in '" + entry + "'");
    }
    registry.Apply(site, Policy::NthHit(nth));
  } else if (rest.rfind("prob=", 0) == 0) {
    const std::string args = rest.substr(5);
    const std::size_t comma = args.find(',');
    const std::uint64_t permille =
        ParseU64(args.substr(0, comma), entry);
    if (permille > 1000) {
      throw Error("fault::ApplySpec: permille > 1000 in '" + entry + "'");
    }
    const std::uint64_t seed =
        comma == std::string::npos ? 0 : ParseU64(args.substr(comma + 1), entry);
    registry.Apply(site,
                   Policy::Probability(static_cast<std::uint32_t>(permille),
                                       seed));
  } else {
    throw Error("fault::ApplySpec: unknown policy '" + rest + "' in '" +
                entry + "' (expected every | nth=N | prob=PERMILLE[,SEED])");
  }
}

void ApplySpecInto(SiteRegistry& registry, const std::string& spec) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t end = spec.find(';', start);
    const std::string entry =
        spec.substr(start, end == std::string::npos ? end : end - start);
    if (!entry.empty()) {
      ApplyOne(registry, entry);
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
}

}  // namespace

Site* RegisterSite(const char* name) { return Registry().FindOrCreate(name); }

bool ShouldFire(Site* site) {
  const std::uint64_t hit =
      site->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto mode = static_cast<Policy::Mode>(
      site->mode.load(std::memory_order_acquire));
  if (mode == Policy::Mode::kOff) return false;
  Policy policy;
  policy.mode = mode;
  policy.n = site->n.load(std::memory_order_relaxed);
  policy.permille = site->permille.load(std::memory_order_relaxed);
  policy.seed = site->seed.load(std::memory_order_relaxed);
  return PolicyFires(policy, hit, site->name_hash);
}

void FireAndThrow(Site* site) {
  site->fired.fetch_add(1, std::memory_order_relaxed);
  if (FiredHook hook = g_fired_hook.load(std::memory_order_acquire)) {
    hook(site->name.c_str());
  }
  throw FaultError(site->name);
}

}  // namespace detail

bool PolicyFires(const Policy& policy, std::uint64_t hit_number,
                 std::uint64_t site_hash) {
  switch (policy.mode) {
    case Policy::Mode::kOff:
      return false;
    case Policy::Mode::kEveryHit:
      return true;
    case Policy::Mode::kNthHit:
      return hit_number == policy.n;
    case Policy::Mode::kProbability: {
      // Same mix as schedfuzz::Perturb: seed x site x hit index, so a given
      // (seed, site) pair replays an identical firing sequence.
      const std::uint64_t h = schedfuzz::detail::SplitMix64(
          policy.seed ^ site_hash ^ (hit_number * 0x9E3779B97F4A7C15ULL));
      return h % 1000 < policy.permille;
    }
  }
  return false;
}

void Arm(const std::string& site, const Policy& policy) {
  detail::Registry().Apply(site, policy);
}

void Disarm(const std::string& site) {
  detail::Registry().Apply(site, Policy::Off());
}

void DisarmAll() { detail::Registry().DisarmAll(); }

std::vector<SiteStats> Stats() { return detail::Registry().Stats(); }

void ResetCounters() { detail::Registry().ResetCounters(); }

void ApplySpec(const std::string& spec) {
  detail::ApplySpecInto(detail::Registry(), spec);
}

void SetFiredHook(FiredHook hook) {
  detail::g_fired_hook.store(hook, std::memory_order_release);
}

}  // namespace reed::fault
