// Deterministic fault injection: named failure points on the data path.
//
// A fault point is a named site — REED_FAULT_POINT("store.container.append")
// — planted where real failures originate (container append, index insert,
// wire read/write, RPC dispatch, key-manager calls, thread-pool submit, AONT
// encode). The macro compiles to nothing unless the tree is configured with
// -DREED_FAULT_INJECT=ON; in a fault build each site counts its hits and,
// when armed, throws fault::FaultError (a reed::Error subclass) so the
// normal unwind path runs exactly as it would for the organic failure.
//
// Arming is per-site and policy-driven:
//   * Policy::EveryHit()            — fire on every traversal;
//   * Policy::NthHit(n)             — fire on the n-th traversal only
//                                     (1-based; deterministic mid-batch
//                                     failures);
//   * Policy::Probability(pm, seed) — fire on ~pm/1000 of traversals, decided
//                                     by the seeded SplitMix64 stream from
//                                     util/schedule_fuzz.h, so a failing seed
//                                     replays the same firing sequence.
//
// Sites can also be armed from the environment (REED_FAULT, see ApplySpec)
// for whole-binary experiments without recompiling callers. Every firing is
// reported through an optional hook; obs/fault_metrics.cc installs one that
// bumps the `fault.<site>.fired` counter in the metrics registry (util
// itself stays obs-free, same function-pointer pattern as the lock
// profiler). The sweep harness (tests/fault_sweep_test.cc) enumerates every
// site in tests/fault_sweep_manifest.h, fires each mid-drive, and
// tools/lint/failpath_lint.py cross-checks that every REED_FAULT_POINT in
// src/ appears in that manifest.
//
// The registry itself is tiny and compiled unconditionally so tests can
// exercise policies in any build; only the macro is flag-gated.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.h"

namespace reed::fault {

// Thrown when an armed site fires. The site name rides in both what() and
// site() so tests can assert exactly which point unwound the operation.
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& site)
      : Error("fault injected at " + site), site_(site) {}

  [[nodiscard]] const std::string& site() const { return site_; }

 private:
  std::string site_;
};

struct Policy {
  enum class Mode : std::uint8_t {
    kOff = 0,
    kEveryHit = 1,
    kNthHit = 2,
    kProbability = 3,
  };

  Mode mode = Mode::kOff;
  std::uint64_t n = 0;         // kNthHit: 1-based firing hit
  std::uint32_t permille = 0;  // kProbability: firings per 1000 hits
  std::uint64_t seed = 0;      // kProbability: stream seed

  [[nodiscard]] static Policy Off() { return {}; }
  [[nodiscard]] static Policy EveryHit() {
    Policy p;
    p.mode = Mode::kEveryHit;
    return p;
  }
  [[nodiscard]] static Policy NthHit(std::uint64_t nth) {
    Policy p;
    p.mode = Mode::kNthHit;
    p.n = nth;
    return p;
  }
  [[nodiscard]] static Policy Probability(std::uint32_t permille,
                                          std::uint64_t seed) {
    Policy p;
    p.mode = Mode::kProbability;
    p.permille = permille;
    p.seed = seed;
    return p;
  }
};

// Pure firing decision for one traversal: hit_number is 1-based, site_hash
// is FNV-1a of the site name. Exposed so tests can pin determinism without
// arming a live site.
[[nodiscard]] bool PolicyFires(const Policy& policy, std::uint64_t hit_number,
                               std::uint64_t site_hash);

// Arm `site` with `policy` (replacing any previous policy; creates the
// registry entry if no REED_FAULT_POINT has traversed it yet). Disarm resets
// one site to Off; DisarmAll resets every site.
void Arm(const std::string& site, const Policy& policy);
void Disarm(const std::string& site);
void DisarmAll();

// RAII arm/disarm, for tests.
class ScopedFault {
 public:
  ScopedFault(std::string site, const Policy& policy) : site_(std::move(site)) {
    Arm(site_, policy);
  }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
  ~ScopedFault() { Disarm(site_); }

 private:
  std::string site_;
};

struct SiteStats {
  std::string site;
  std::uint64_t hits = 0;   // traversals (armed or not)
  std::uint64_t fired = 0;  // traversals that threw
};

// Snapshot of every registered site, sorted by name.
[[nodiscard]] std::vector<SiteStats> Stats();

// Zero all hit/fired counters (policies stay armed).
void ResetCounters();

// Parse and apply one or more `;`-separated arm specs:
//   <site>                      arm EveryHit
//   <site>:nth=<N>              arm NthHit(N)
//   <site>:prob=<permille>[,<seed>]   arm Probability
// Throws reed::Error on a malformed spec. The REED_FAULT environment
// variable, if set, is applied through this on first registry access.
void ApplySpec(const std::string& spec);

// Per-firing observer (site name), invoked outside all fault-registry locks.
// obs/fault_metrics.cc installs the metrics hook; nullptr uninstalls.
using FiredHook = void (*)(const char* site);
void SetFiredHook(FiredHook hook);

namespace detail {

struct Site;  // defined in fault_inject.cc

// Find-or-create the site record (applies any pending env/programmatic
// policy). Called once per REED_FAULT_POINT via a function-local static.
[[nodiscard]] Site* RegisterSite(const char* name);

// Count one traversal; true when the armed policy says this hit fires.
[[nodiscard]] bool ShouldFire(Site* site);

// Bump the fired counter, invoke the hook, throw FaultError(site name).
[[noreturn]] void FireAndThrow(Site* site);

}  // namespace detail

}  // namespace reed::fault

// The site macro. Compiles to nothing without -DREED_FAULT_INJECT=ON, so
// production builds carry zero overhead; in a fault build each traversal is
// one relaxed counter increment plus an atomic mode load. Place sites
// OUTSIDE lock scopes: a firing throws, and the metrics hook touches the obs
// registry.
#if defined(REED_FAULT_INJECT)
#define REED_FAULT_POINT(name)                                        \
  do {                                                                \
    static ::reed::fault::detail::Site* reed_fault_site_ =            \
        ::reed::fault::detail::RegisterSite(name);                    \
    if (::reed::fault::detail::ShouldFire(reed_fault_site_)) {        \
      ::reed::fault::detail::FireAndThrow(reed_fault_site_);          \
    }                                                                 \
  } while (0)
#else
#define REED_FAULT_POINT(name) \
  do {                         \
  } while (0)
#endif
