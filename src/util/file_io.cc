#include "util/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

namespace reed::util {
namespace {

[[noreturn]] void ThrowErrno(const std::string& what, const std::string& path) {
  throw FileError(what + " " + path + ": " + std::strerror(errno));
}

int OpenOrThrow(const std::string& path, int flags) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) ThrowErrno("open", path);
  return fd;
}

}  // namespace

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

File File::OpenAppend(const std::string& path) {
  return File(OpenOrThrow(path, O_WRONLY | O_CREAT | O_APPEND), path);
}

File File::OpenRead(const std::string& path) {
  return File(OpenOrThrow(path, O_RDONLY), path);
}

void File::Append(ByteSpan data) {
  if (fd_ < 0) throw FileError("append to closed file " + path_);
  std::size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd_, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("write", path_);
    }
    written += static_cast<std::size_t>(n);
  }
}

void File::Sync() {
  if (fd_ < 0) throw FileError("fsync of closed file " + path_);
  if (::fsync(fd_) != 0) ThrowErrno("fsync", path_);
}

std::uint64_t File::Size() const {
  if (fd_ < 0) throw FileError("stat of closed file " + path_);
  struct stat st{};
  if (::fstat(fd_, &st) != 0) ThrowErrno("fstat", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void File::Truncate(std::uint64_t size) {
  if (fd_ < 0) throw FileError("truncate of closed file " + path_);
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    ThrowErrno("ftruncate", path_);
  }
}

void File::Close() {
  if (fd_ < 0) return;
  int fd = std::exchange(fd_, -1);
  if (::close(fd) != 0) ThrowErrno("close", path_);
}

Bytes ReadFileBytes(const std::string& path) {
  int fd = OpenOrThrow(path, O_RDONLY);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    ThrowErrno("fstat", path);
  }
  Bytes out(static_cast<std::size_t>(st.st_size));
  std::size_t read = 0;
  while (read < out.size()) {
    ssize_t n = ::read(fd, out.data() + read, out.size() - read);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ThrowErrno("read", path);
    }
    if (n == 0) break;  // racing truncation: return what exists
    read += static_cast<std::size_t>(n);
  }
  ::close(fd);
  out.resize(read);
  return out;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec) &&
         std::filesystem::is_regular_file(path, ec);
}

void WriteFileAtomic(const std::string& dir, const std::string& name,
                     ByteSpan data) {
  const std::string tmp = dir + "/." + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  {
    File f = File::OpenAppend(tmp);
    f.Truncate(0);  // a stale temp file from an earlier crash
    f.Append(data);
    f.Sync();
    f.Close();
  }
  std::error_code ec;
  std::filesystem::rename(tmp, final_path, ec);
  if (ec) {
    throw FileError("rename " + tmp + " -> " + final_path + ": " +
                    ec.message());
  }
  SyncDirectory(dir);
}

void CreateDirectories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) throw FileError("mkdir " + path + ": " + ec.message());
}

void SyncDirectory(const std::string& path) {
  int fd = OpenOrThrow(path, O_RDONLY | O_DIRECTORY);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) ThrowErrno("fsync dir", path);
}

void RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) throw FileError("remove " + path + ": " + ec.message());
}

std::vector<std::string> ListFiles(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) throw FileError("list " + dir + ": " + ec.message());
  for (const auto& entry : it) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace reed::util
