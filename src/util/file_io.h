// POSIX file handles for the durable store (DESIGN.md §12).
//
// The durability layer is about controlling exactly when bytes reach stable
// storage, and std::fstream cannot express fsync — so the store speaks raw
// file descriptors through this small RAII wrapper. Every OS failure throws
// the typed FileError (a reed::Error), so the failure-path discipline
// (tools/lint/failpath_lint.py) and HandleRequest's catch both keep working.
//
// Thread safety: a File is a plain handle with no internal lock. The store
// components that share one (the WAL, the segment log) serialize access
// under their own ranked mutexes; fsync-while-append on the same descriptor
// is safe at the OS level and is the one concurrent pattern group commit
// relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace reed::util {

class FileError : public Error {
 public:
  using Error::Error;
};

class File {
 public:
  File() = default;  // closed handle
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  ~File();  // best-effort close; never throws (use Close() to observe errors)

  // Opens for appending (creating if absent); writes always land at the
  // current end of file, even after Truncate.
  [[nodiscard]] static File OpenAppend(const std::string& path);
  [[nodiscard]] static File OpenRead(const std::string& path);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

  // Writes all of `data` (looping over short writes) or throws.
  void Append(ByteSpan data);
  // Flushes file content and metadata to stable storage (fsync).
  void Sync();
  [[nodiscard]] std::uint64_t Size() const;
  // Cuts the file to exactly `size` bytes; later Appends continue from there.
  void Truncate(std::uint64_t size);
  void Close();  // idempotent

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

// Whole-file helpers for small store artifacts (checkpoints, log scans).
[[nodiscard]] Bytes ReadFileBytes(const std::string& path);
[[nodiscard]] bool FileExists(const std::string& path);

// Writes `data` as dir/name via temp file + fsync + rename + directory
// fsync: observers see either the old content (or absence) or the complete
// new file — never a torn one. The checkpoint writer depends on this.
void WriteFileAtomic(const std::string& dir, const std::string& name,
                     ByteSpan data);

void CreateDirectories(const std::string& path);
// Flushes a directory entry change (new/renamed file) to stable storage.
void SyncDirectory(const std::string& path);
void RemoveFileIfExists(const std::string& path);

// Sorted names (not full paths) of regular files directly under `dir`.
[[nodiscard]] std::vector<std::string> ListFiles(const std::string& dir);

}  // namespace reed::util
