// Lock ranking: the static half of REED's deadlock-freedom argument.
//
// Every mutex in src/ declares a LockRank at its declaration site
// (tools/lint/lock_lint.py enforces this). The discipline is a total order:
// a thread may only acquire a lock whose rank is STRICTLY GREATER than the
// rank of every lock it already holds. Ranks grow "downward" through the
// layering DAG — outermost locks (server request handling) carry the lowest
// ranks, leaf locks that everything may nest under (the obs registry, the
// serialized wire channels) carry the highest. Two locks of the same rank
// must never be held together: striped/sharded peers (ingest stripes, index
// shards) share a rank precisely because the code releases each before
// taking the next.
//
// The order is checked two ways:
//   * at runtime under -DREED_DEADLOCK_DETECT=ON (util/deadlock.h): any
//     acquisition that violates rank order or closes a cycle in the
//     acquired-after graph is reported with both acquisition sites, even if
//     the schedule never actually deadlocks;
//   * statically by tools/lint/lock_lint.py, which rejects unranked mutex
//     declarations in src/.
//
// kUnranked opts a lock out of the rank check only (tests, fixtures); it
// still participates in cycle detection. The numeric gaps are deliberate:
// new modules slot in without renumbering (DESIGN.md §8 keeps the table).
#pragma once

#include <array>
#include <cstdint>

namespace reed {

enum class LockRank : std::uint16_t {
  kUnranked = 0,

  // server: outermost band — locks taken while servicing a request, before
  // descending into store/.
  kServerStats = 100,   // StorageServer::stats_mu_
  kServerIngest = 110,  // StorageServer ingest stripes (peers: never nested)

  // store: nested under the ingest stripes on the write path.
  kStoreShard = 200,      // FingerprintIndex / ObjectStore shard locks
  kStoreContainer = 210,  // ContainerStore reader/writer lock
  // Durable-store leaves of the store band: the segment log is written
  // under the container writer lock, the WAL under index/object shard
  // locks — both must rank above every lock that feeds them records.
  kStoreSegment = 240,  // SegmentLog file state
  kStoreWal = 250,      // Wal append/commit state

  // keymanager
  kKeyManagerState = 300,  // KeyManager buckets_ + stats_

  // abe
  kAbeAttrCache = 350,  // CpAbe attribute-point memo cache

  // util components shared across modules
  kThreadPool = 400,   // ThreadPool queue + condvar mutex
  kLruCache = 410,     // LruCache (MLE key cache)
  kRateLimiter = 420,  // TokenBucket

  // crypto
  kCryptoRng = 450,  // process-wide secure RNG

  // net bookkeeping (not the wire itself)
  kNetServerSessions = 500,  // TcpServer session list
  kNetLink = 510,            // SimulatedLink bandwidth model
  kNetAsyncLoop = 520,       // AsyncServer per-loop handoff/completion queues
  kNetTenantMap = 530,       // AsyncServer tenant -> TokenBucket map

  // fault injection: site registration happens lazily at the first
  // traversal of a REED_FAULT_POINT, which may sit anywhere on the data
  // path — near-leaf for the same reason as the obs registry.
  kFaultRegistry = 590,

  // observability: metric registration happens lazily under data locks all
  // over the tree, so the registry must be acquirable while holding almost
  // anything — hence the near-leaf rank.
  kObsRegistry = 600,

  // leaf: wire-serialization locks (IoSerialMutex) that are intentionally
  // held across blocking socket I/O. Nothing may be acquired under them;
  // the max rank enforces exactly that.
  kIoChannel = 700,
};

// Stable dotted names, used for the obs histograms ("lock.<name>.wait_us")
// and the deadlock reports.
constexpr const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked:
      return "unranked";
    case LockRank::kServerStats:
      return "server.stats";
    case LockRank::kServerIngest:
      return "server.ingest";
    case LockRank::kStoreShard:
      return "store.shard";
    case LockRank::kStoreContainer:
      return "store.container";
    case LockRank::kStoreSegment:
      return "store.segment";
    case LockRank::kStoreWal:
      return "store.wal";
    case LockRank::kKeyManagerState:
      return "keymanager.state";
    case LockRank::kAbeAttrCache:
      return "abe.attr_cache";
    case LockRank::kThreadPool:
      return "util.thread_pool";
    case LockRank::kLruCache:
      return "util.lru_cache";
    case LockRank::kRateLimiter:
      return "util.rate_limiter";
    case LockRank::kCryptoRng:
      return "crypto.rng";
    case LockRank::kNetServerSessions:
      return "net.server_sessions";
    case LockRank::kNetLink:
      return "net.link";
    case LockRank::kNetAsyncLoop:
      return "net.async_loop";
    case LockRank::kNetTenantMap:
      return "net.tenant_map";
    case LockRank::kFaultRegistry:
      return "util.fault_registry";
    case LockRank::kObsRegistry:
      return "obs.registry";
    case LockRank::kIoChannel:
      return "net.io_channel";
  }
  return "unknown";
}

// Every rank except kUnranked, for eager metric registration
// (obs/lock_metrics.cc resolves one wait + one held histogram per rank).
inline constexpr std::array<LockRank, 19> kAllLockRanks = {
    LockRank::kServerStats,      LockRank::kServerIngest,
    LockRank::kStoreShard,       LockRank::kStoreContainer,
    LockRank::kStoreSegment,     LockRank::kStoreWal,
    LockRank::kKeyManagerState,  LockRank::kAbeAttrCache,
    LockRank::kThreadPool,       LockRank::kLruCache,
    LockRank::kRateLimiter,      LockRank::kCryptoRng,
    LockRank::kNetServerSessions, LockRank::kNetLink,
    LockRank::kNetAsyncLoop,     LockRank::kNetTenantMap,
    LockRank::kFaultRegistry,    LockRank::kObsRegistry,
    LockRank::kIoChannel,
};

}  // namespace reed
