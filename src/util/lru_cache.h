// Byte-budgeted LRU cache.
//
// The REED client keeps a 512 MB (default) cache of recently generated MLE
// keys (paper §V-B "Caching"): adjacent backup uploads share most chunks, so
// cached keys turn the key manager from the bottleneck into a cold-start
// cost only. The cache is budgeted in *bytes* rather than entries because
// key-cache sizing in the paper is expressed in MB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "util/thread_annotations.h"

namespace reed {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  // `byte_budget` caps total charged size; `entry_cost` is the fixed
  // accounting charge per entry (key + value + bookkeeping).
  LruCache(std::size_t byte_budget, std::size_t entry_cost)
      : byte_budget_(byte_budget), entry_cost_(entry_cost) {}

  // Returns the cached value and refreshes its recency, or nullopt.
  [[nodiscard]] std::optional<V> Get(const K& key) {
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  void Put(const K& key, V value) {
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    used_ += entry_cost_;
    while (used_ > byte_budget_ && !order_.empty()) {
      index_.erase(order_.back().first);
      order_.pop_back();
      used_ -= entry_cost_;
      ++evictions_;
    }
  }

  void Clear() {
    MutexLock lock(mu_);
    order_.clear();
    index_.clear();
    used_ = 0;
  }

  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mu_);
    return index_.size();
  }

  [[nodiscard]] std::size_t used_bytes() const {
    MutexLock lock(mu_);
    return used_;
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Stats stats() const {
    MutexLock lock(mu_);
    return Stats{hits_, misses_, evictions_};
  }

 private:
  mutable Mutex mu_{LockRank::kLruCache};
  std::size_t byte_budget_;
  std::size_t entry_cost_;
  std::size_t used_ REED_GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ REED_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ REED_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ REED_GUARDED_BY(mu_) = 0;
  std::list<std::pair<K, V>> order_ REED_GUARDED_BY(mu_);
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      index_ REED_GUARDED_BY(mu_);
};

}  // namespace reed
