// Token-bucket rate limiter.
//
// DupLESS-style key managers rate-limit per-client key-generation requests
// to blunt online brute-force attacks (paper §II-A, §III-B). The key manager
// keeps one bucket per client identity. The limiter is purely logical — it
// answers admit/deny against a supplied clock so tests and the simulated
// network can drive it deterministically.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/thread_annotations.h"

namespace reed {

class TokenBucket {
 public:
  // `rate_per_sec` tokens refill per second up to `burst` capacity.
  // The bucket starts full.
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  // Tries to take `cost` tokens at time `now_seconds` (monotonic, in
  // seconds). Returns true if admitted.
  [[nodiscard]] bool TryAcquire(double now_seconds, double cost = 1.0) {
    MutexLock lock(mu_);
    Refill(now_seconds);
    if (tokens_ + 1e-9 >= cost) {
      tokens_ -= cost;
      return true;
    }
    return false;
  }

  // Seconds the caller must wait (from `now_seconds`) until `cost` tokens
  // are available; 0 if available now. Does not consume tokens.
  [[nodiscard]] double DelayUntilAvailable(double now_seconds, double cost = 1.0) {
    MutexLock lock(mu_);
    Refill(now_seconds);
    if (tokens_ + 1e-9 >= cost) return 0.0;
    return (cost - tokens_) / rate_;
  }

  [[nodiscard]] double tokens() const {
    MutexLock lock(mu_);
    return tokens_;
  }

 private:
  void Refill(double now_seconds) REED_REQUIRES(mu_) {
    if (now_seconds > last_) {
      tokens_ = std::min(burst_, tokens_ + (now_seconds - last_) * rate_);
      last_ = now_seconds;
    }
  }

  mutable Mutex mu_{LockRank::kRateLimiter};
  double rate_;
  double burst_;
  double tokens_ REED_GUARDED_BY(mu_);
  double last_ REED_GUARDED_BY(mu_) = 0.0;
};

}  // namespace reed
