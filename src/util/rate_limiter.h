// Token-bucket rate limiter.
//
// DupLESS-style key managers rate-limit per-client key-generation requests
// to blunt online brute-force attacks (paper §II-A, §III-B). The key manager
// keeps one bucket per client identity. The limiter is purely logical — it
// answers admit/deny against a supplied clock so tests and the simulated
// network can drive it deterministically.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>

namespace reed {

class TokenBucket {
 public:
  // `rate_per_sec` tokens refill per second up to `burst` capacity.
  // The bucket starts full.
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  // Tries to take `cost` tokens at time `now_seconds` (monotonic, in
  // seconds). Returns true if admitted.
  bool TryAcquire(double now_seconds, double cost = 1.0) {
    std::lock_guard lock(mu_);
    Refill(now_seconds);
    if (tokens_ + 1e-9 >= cost) {
      tokens_ -= cost;
      return true;
    }
    return false;
  }

  // Seconds the caller must wait (from `now_seconds`) until `cost` tokens
  // are available; 0 if available now. Does not consume tokens.
  double DelayUntilAvailable(double now_seconds, double cost = 1.0) {
    std::lock_guard lock(mu_);
    Refill(now_seconds);
    if (tokens_ + 1e-9 >= cost) return 0.0;
    return (cost - tokens_) / rate_;
  }

  double tokens() const {
    std::lock_guard lock(mu_);
    return tokens_;
  }

 private:
  void Refill(double now_seconds) {
    if (now_seconds > last_) {
      tokens_ = std::min(burst_, tokens_ + (now_seconds - last_) * rate_);
      last_ = now_seconds;
    }
  }

  mutable std::mutex mu_;
  double rate_;
  double burst_;
  double tokens_;
  double last_ = 0.0;
};

}  // namespace reed
