// Seeded schedule perturbation: deterministic-per-seed yield/sleep injection
// at concurrency hand-off points, so TSan and the stress tests explore more
// interleavings than the bare scheduler happens to produce.
//
// Activated by the REED_SCHEDULE_SEED environment variable (any nonzero
// integer); unset or 0 means every hook is a single cached-bool branch.
// Each Perturb(point) call derives its decision from
//
//   mix(seed, FNV1a(point name), per-thread call counter)
//
// so a given seed replays the same decision sequence per thread and point —
// different seeds explore different schedules, and a failing seed can be
// replayed exactly (modulo OS scheduling, which the injected delays are
// there to dominate). Roughly: 1/2 no-op, 3/8 yield, 1/8 short sleep
// (20..200 us).
//
// Hooks are placed at pipeline stage boundaries (client upload/download),
// shard-lock acquisitions (store), ingest stripes (server), and fan-out
// joins (StorageClient) — the places where PR 5 introduced cross-thread
// hand-offs. The seed sweep lives in tests/CMakeLists.txt
// (pipeline_stress_seed_N, label "schedfuzz"; on by default in TSan trees).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>

#include "util/bytes.h"

namespace reed::schedfuzz {

// Strict parse of a REED_SCHEDULE_SEED spec: a decimal uint64, nothing
// else. The old strtoull-based parse silently accepted trailing garbage
// ("3abc" -> 3) and overflow, so a typo ran an unintended schedule while
// looking deliberate. Null/empty means "disabled" (seed 0); anything
// non-numeric, overflowing, or with trailing bytes throws reed::Error —
// fail loudly rather than fuzz under a seed the user never asked for.
// Fuzz-covered in tests/fuzz_robustness_test.cc alongside the REED_FAULT
// spec parser.
inline std::uint64_t ParseSeedSpec(const char* spec) {
  if (spec == nullptr || *spec == '\0') return 0;
  std::uint64_t value = 0;
  for (const char* p = spec; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      throw Error(std::string("REED_SCHEDULE_SEED: non-digit byte in '") +
                  spec + "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      throw Error(std::string("REED_SCHEDULE_SEED: overflow in '") + spec +
                  "'");
    }
    value = value * 10 + digit;
  }
  return value;
}

inline std::uint64_t Seed() {
  static const std::uint64_t seed =
      ParseSeedSpec(std::getenv("REED_SCHEDULE_SEED"));
  return seed;
}

inline bool Enabled() { return Seed() != 0; }

namespace detail {

inline std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

inline std::uint64_t Fnv1a(const char* s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (; *s != '\0'; ++s) {
    h = (h ^ static_cast<std::uint8_t>(*s)) * 0x100000001B3ULL;
  }
  return h;
}

}  // namespace detail

// Maybe yield or sleep at a named scheduling point. `point` should be a
// stable dotted literal ("client.upload.encode", "store.index.shard", ...).
inline void Perturb(const char* point) {
  const std::uint64_t seed = Seed();
  if (seed == 0) return;
  thread_local std::uint64_t counter = 0;
  const std::uint64_t h =
      detail::SplitMix64(seed ^ detail::Fnv1a(point) ^ (++counter * 0x9E3779B97F4A7C15ULL));
  const std::uint64_t bucket = h & 7;
  if (bucket < 4) return;                  // 1/2: run through
  if (bucket < 7) {                        // 3/8: give up the slice
    std::this_thread::yield();
    return;
  }
  // 1/8: sleep long enough to reorder against real work (20..200 us).
  const auto micros = static_cast<std::int64_t>(20 + ((h >> 8) % 181));
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace reed::schedfuzz
