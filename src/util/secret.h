// Compile-time secret/public information-flow typing.
//
// reed::Secret wraps a byte buffer that holds confidential material — MLE
// keys, file keys, key-regression states, pre-encryption CAONT stubs, ABE
// master/user keys. The type is the policy:
//
//   * The buffer zeroizes on destruction (and on every overwrite) via the
//     secure.h wipe, so secrets never linger in dead stack/heap memory.
//   * operator==, stream insertion, and implicit conversion to ByteSpan are
//     deleted, so a Secret cannot reach net::Writer::Blob/Str/Raw, a log
//     stream, or memcmp by accident. The only escape hatch is the explicit,
//     greppable reed::Declassify(secret, "reason") — `grep -rn Declassify
//     src/` must list exactly the sanctioned wire crossings (the file-key-
//     encrypted stub upload and the CP-ABE-wrapped key state; DESIGN.md §8).
//   * ExposeForCrypto() hands the raw bytes to cipher/KDF/bignum kernels.
//     The layering lint (tools/lint/layering_lint.py, rule secret-expose)
//     restricts callers to the crypto/aont/rsa/abe modules; everything above
//     them operates on Secret values only.
//
// Comparison between secrets uses ConstantTimeEquals (SecureCompare under
// the hood); there is deliberately no ordering, hashing, or printing.
#pragma once

#include <cstddef>
#include <utility>

#include "util/bytes.h"
#include "util/secure.h"

namespace reed {

class Secret {
 public:
  Secret() = default;

  // Takes ownership of `data`; the moved-from vector is left empty. Marked
  // explicit so public Bytes never silently become secret (taint direction
  // matters for the lint: secret->public needs Declassify, public->secret
  // needs this visible constructor).
  explicit Secret(Bytes data) : data_(std::move(data)) {}

  // Copies a view into fresh owned storage (e.g. a sub-range of a larger
  // secret buffer, or a fixed-width field mid-parse).
  [[nodiscard]] static Secret CopyOf(ByteSpan data) {
    return Secret(Bytes(data.begin(), data.end()));
  }

  ~Secret() { SecureZero(data_); }

  Secret(const Secret& other) : data_(other.data_) {}
  Secret(Secret&& other) noexcept : data_(std::move(other.data_)) {
    other.data_.clear();
  }
  Secret& operator=(const Secret& other) {
    if (this != &other) {
      SecureZero(data_);
      data_ = other.data_;
    }
    return *this;
  }
  Secret& operator=(Secret&& other) noexcept {
    if (this != &other) {
      SecureZero(data_);
      data_ = std::move(other.data_);
      other.data_.clear();
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  // Equality is never operator== (std::vector's short-circuits, and an
  // accidental comparison against attacker-supplied bytes is a timing
  // oracle). Length mismatch returns false; length is considered public.
  [[nodiscard]] bool ConstantTimeEquals(const Secret& other) const {
    return SecureCompare(data_, other.data_);
  }
  [[nodiscard]] bool ConstantTimeEquals(ByteSpan other) const {
    return SecureCompare(data_, other);
  }

  // Appends another secret's bytes (e.g. concatenating per-chunk stubs into
  // the stub file before file-key encryption).
  void Append(const Secret& other) {
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  }

  void Reserve(std::size_t n) { data_.reserve(n); }

  // Copies out a sub-range as a new Secret (per-chunk stub slicing on the
  // download path). Throws on out-of-range like util/bytes.h Slice.
  [[nodiscard]] Secret Slice(std::size_t offset, std::size_t len) const {
    if (offset + len < offset || offset + len > data_.size()) {
      throw Error("Secret::Slice out of range");
    }
    return CopyOf(ByteSpan(data_).subspan(offset, len));
  }

  // Raw view for cipher/KDF/bignum kernels ONLY. The layering lint's
  // secret-expose rule rejects this call outside crypto/aont/rsa/abe.
  [[nodiscard]] ByteSpan ExposeForCrypto() const { return data_; }

  // The type wall: everything below is a compile error, by design.
  bool operator==(const Secret&) const = delete;
  bool operator!=(const Secret&) const = delete;
  operator ByteSpan() const = delete;   // NOLINT(google-explicit-constructor)
  operator Bytes() const = delete;      // NOLINT(google-explicit-constructor)

  friend Bytes Declassify(const Secret& secret, const char* reason);

 private:
  Bytes data_;
};

// The single sanctioned secret -> public conversion. `reason` is a
// mandatory, non-empty literal explaining why these bytes are safe to treat
// as public (e.g. "ciphertext under the file key; stub upload"). Every call
// site is a policy decision and must survive `grep -rn Declassify src/`
// review — the tree sanctions exactly two (DESIGN.md §8).
[[nodiscard]] inline Bytes Declassify(const Secret& secret,
                                      const char* reason) {
  if (reason == nullptr || *reason == '\0') {
    throw Error("Declassify requires a non-empty reason");
  }
  return secret.data_;
}

// Stream insertion is deleted at namespace scope so `std::cout << secret`
// fails to compile no matter which operator<< overload set is in scope.
template <typename Stream>
Stream& operator<<(Stream&, const Secret&) = delete;

}  // namespace reed
