#include "util/secure.h"

#include <atomic>

namespace reed {

bool SecureCompare(std::span<const std::uint8_t> a,
                   std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  // Accumulate differences with OR so the loop's memory-access pattern and
  // trip count depend only on the (public) length, never on content.
  unsigned acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<unsigned>(a[i] ^ b[i]);
  }
  // The single branch on the fully-accumulated result leaks nothing about
  // *where* the buffers differ, only *whether* they do — which the caller
  // reveals anyway.
  return acc == 0;
}

void SecureZero(std::span<std::uint8_t> data) {
  // Volatile stores defeat dead-store elimination; the signal fence keeps the
  // compiler from reordering them past the end of the enclosing full
  // expression. A hardened libc build would call explicit_bzero/memset_s —
  // this is the portable equivalent.
  volatile std::uint8_t* p = data.data();
  for (std::size_t i = 0; i < data.size(); ++i) p[i] = 0;
  std::atomic_signal_fence(std::memory_order_seq_cst);
}

void SecureZero(std::vector<std::uint8_t>& data) {
  SecureZero(std::span<std::uint8_t>(data));
  data.clear();
}

}  // namespace reed
