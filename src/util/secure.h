// Secret-hygiene primitives: constant-time comparison and non-elidable
// zeroization.
//
// Every REED module that touches key material (MLE keys, file keys,
// key-regression states, ABE session keys, HMAC pads) must go through these
// helpers instead of memcmp/operator== and plain memset:
//   * SecureCompare runs in time independent of where the buffers differ,
//     so a storage server or key manager cannot be used as a byte-by-byte
//     comparison oracle against MACs or fingerprints.
//   * SecureZero is guaranteed to survive dead-store elimination, so keys do
//     not linger in freed stack frames or heap blocks.
// The crypto-hygiene lint (tools/lint/crypto_lint.py) enforces their use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace reed {

// Constant-time equality over byte buffers. Returns false on length mismatch
// (length is considered public). Safe for keys, MACs, and fingerprints.
[[nodiscard]] bool SecureCompare(std::span<const std::uint8_t> a,
                   std::span<const std::uint8_t> b);

// Overwrites `data` with zeros through a volatile pointer followed by a
// compiler barrier, so the stores cannot be elided even when the buffer is
// provably dead afterwards.
void SecureZero(std::span<std::uint8_t> data);

// Convenience: zeroizes a byte vector's payload and clears it. The capacity
// is left allocated (vector does not shrink), but every byte that held key
// material is wiped first.
void SecureZero(std::vector<std::uint8_t>& data);

// RAII wiper: zeroizes a caller-owned buffer when the enclosing scope exits,
// including on exception paths. Usage:
//   Bytes file_key = state.DeriveFileKey();
//   ScopedWipe wipe(file_key);
class ScopedWipe {
 public:
  explicit ScopedWipe(std::vector<std::uint8_t>& target) : target_(&target) {}
  explicit ScopedWipe(std::span<std::uint8_t> target) : span_(target) {}
  ~ScopedWipe() {
    if (target_ != nullptr) SecureZero(*target_);
    if (!span_.empty()) SecureZero(span_);
  }

  ScopedWipe(const ScopedWipe&) = delete;
  ScopedWipe& operator=(const ScopedWipe&) = delete;

 private:
  std::vector<std::uint8_t>* target_ = nullptr;
  std::span<std::uint8_t> span_{};
};

}  // namespace reed
