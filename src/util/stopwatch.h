// Wall-clock stopwatch and throughput helpers used by the bench harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace reed {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// MB/s over a byte count, as the paper reports (MB = 2^20 bytes).
inline double MbPerSec(std::uint64_t bytes, double seconds) {
  if (seconds <= 0) return 0.0;
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
}

// Byte counts as paper-style MB/GB figures (single explicit widening point,
// keeps -Wconversion quiet at every report site).
inline double ToMiB(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}
inline double ToGiB(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);
}

// Explicit count→double widening for ratios and averages.
inline double AsDouble(std::uint64_t v) { return static_cast<double>(v); }

}  // namespace reed
