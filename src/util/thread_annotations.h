// Clang thread-safety annotations (Abseil-style macro shim) plus annotated
// mutex wrappers — the static half of REED's concurrency story.
//
// The dynamic half (TSan, tests/concurrency_stress_test.cc) can only catch a
// race it provokes at runtime; these annotations let a clang build with
// -Wthread-safety -Werror (cmake -DREED_THREAD_SAFETY=ON, or
// tools/ci/check.sh tsa) prove lock discipline at compile time instead:
// every REED_GUARDED_BY member access outside its mutex is a build failure.
// Under GCC the macros expand to nothing and reed::Mutex degrades to a plain
// std::mutex wrapper, so the annotations cost nothing where they cannot be
// checked.
//
// Conventions (DESIGN.md §8 "Compile-time gates"):
//   * every mutex-protected member is REED_GUARDED_BY(its mutex);
//   * private helpers that expect the lock held are REED_REQUIRES(mu_);
//   * public entry points that take the lock themselves are REED_EXCLUDES(mu_)
//     when they would self-deadlock on re-entry.
//
// Every mutex also carries a LockRank (util/lock_rank.h) declared at its
// declaration site; under -DREED_DEADLOCK_DETECT=ON every acquisition is
// checked against the rank order and the global acquired-after graph
// (util/deadlock.h), with std::source_location threaded down from the RAII
// guards so reports carry real acquisition sites. In normal builds the
// wrappers compile down to the bare std primitives plus one cold enum field.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/lock_rank.h"

#if defined(REED_DEADLOCK_DETECT)
#include <cstdint>
#include <source_location>

#include "util/deadlock.h"
#endif

#if defined(__clang__)
#define REED_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define REED_THREAD_ANNOTATION(x)  // no-op: GCC has no -Wthread-safety
#endif

// On types: this type is a lockable capability ("mutex").
#define REED_CAPABILITY(x) REED_THREAD_ANNOTATION(capability(x))
// On RAII lock holders: acquiring in the ctor, releasing in the dtor.
#define REED_SCOPED_CAPABILITY REED_THREAD_ANNOTATION(scoped_lockable)
// On data members: may only be read/written with `x` held.
#define REED_GUARDED_BY(x) REED_THREAD_ANNOTATION(guarded_by(x))
// On pointer members: the pointee (not the pointer) is guarded by `x`.
#define REED_PT_GUARDED_BY(x) REED_THREAD_ANNOTATION(pt_guarded_by(x))
// On functions: caller must hold the listed capabilities.
#define REED_REQUIRES(...) \
  REED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// Shared (reader) variants for SharedMutex-guarded state.
#define REED_REQUIRES_SHARED(...) \
  REED_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define REED_ACQUIRE_SHARED(...) \
  REED_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define REED_RELEASE_SHARED(...) \
  REED_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
// On functions: caller must NOT hold them (the function acquires them).
#define REED_EXCLUDES(...) REED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// On functions: acquires/releases the listed capabilities.
#define REED_ACQUIRE(...) \
  REED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define REED_RELEASE(...) \
  REED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// On functions: acquires on success (first arg is the success value).
#define REED_TRY_ACQUIRE(...) \
  REED_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Escape hatch for code the analysis cannot follow; use sparingly and say why.
#define REED_NO_THREAD_SAFETY_ANALYSIS \
  REED_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace reed {

// std::mutex with the capability annotation the analysis needs. Same cost,
// same semantics; exists only because annotations cannot be attached to
// std::mutex retroactively.
class REED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;  // kUnranked: tests/fixtures only — src/ declares ranks
  explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if defined(REED_DEADLOCK_DETECT)
  ~Mutex() { lockdiag::OnDestroy(this); }

  void lock(const std::source_location& site =
                std::source_location::current()) REED_ACQUIRE() {
    const std::uint64_t t0 = lockdiag::BeforeAcquire(this, rank_, site);
    mu_.lock();
    lockdiag::AfterAcquire(this, rank_, site, t0);
  }
  void unlock() REED_RELEASE() {
    lockdiag::OnRelease(this);
    mu_.unlock();
  }
  bool try_lock(const std::source_location& site =
                    std::source_location::current()) REED_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // A successful try_lock cannot block, but it still establishes ordering
    // (and a rank violation through it is still a discipline bug): run the
    // checks post-acquisition.
    const std::uint64_t t0 = lockdiag::BeforeAcquire(this, rank_, site);
    lockdiag::AfterAcquire(this, rank_, site, t0);
    return true;
  }
#else
  void lock() REED_ACQUIRE() { mu_.lock(); }
  void unlock() REED_RELEASE() { mu_.unlock(); }
  bool try_lock() REED_TRY_ACQUIRE(true) { return mu_.try_lock(); }
#endif

  LockRank rank() const { return rank_; }

 private:
  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
};

// RAII lock over reed::Mutex (the std::lock_guard equivalent the analysis
// understands). Not movable: a lock's scope IS its critical section.
class REED_SCOPED_CAPABILITY MutexLock {
 public:
#if defined(REED_DEADLOCK_DETECT)
  explicit MutexLock(Mutex& mu, const std::source_location& site =
                                    std::source_location::current())
      REED_ACQUIRE(mu) : mu_(mu) {
    mu_.lock(site);
  }
#else
  explicit MutexLock(Mutex& mu) REED_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
#endif
  ~MutexLock() REED_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// std::shared_mutex with capability annotations — the reader-concurrent
// counterpart to reed::Mutex for read-mostly stores (container reads under
// multi-session restore fan-in). Writers are exclusive; readers share.
class REED_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;  // kUnranked: tests/fixtures only
  explicit SharedMutex(LockRank rank) : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

#if defined(REED_DEADLOCK_DETECT)
  ~SharedMutex() { lockdiag::OnDestroy(this); }

  void lock(const std::source_location& site =
                std::source_location::current()) REED_ACQUIRE() {
    const std::uint64_t t0 = lockdiag::BeforeAcquire(this, rank_, site);
    mu_.lock();
    lockdiag::AfterAcquire(this, rank_, site, t0);
  }
  void unlock() REED_RELEASE() {
    lockdiag::OnRelease(this);
    mu_.unlock();
  }
  // Shared acquisitions participate in ordering exactly like exclusive
  // ones: reader/writer order inversions deadlock just the same.
  void lock_shared(const std::source_location& site =
                       std::source_location::current()) REED_ACQUIRE_SHARED() {
    const std::uint64_t t0 = lockdiag::BeforeAcquire(this, rank_, site);
    mu_.lock_shared();
    lockdiag::AfterAcquire(this, rank_, site, t0);
  }
  void unlock_shared() REED_RELEASE_SHARED() {
    lockdiag::OnRelease(this);
    mu_.unlock_shared();
  }
#else
  void lock() REED_ACQUIRE() { mu_.lock(); }
  void unlock() REED_RELEASE() { mu_.unlock(); }
  void lock_shared() REED_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() REED_RELEASE_SHARED() { mu_.unlock_shared(); }
#endif

  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
};

// RAII exclusive lock over SharedMutex (the writer side).
class REED_SCOPED_CAPABILITY WriterMutexLock {
 public:
#if defined(REED_DEADLOCK_DETECT)
  explicit WriterMutexLock(SharedMutex& mu, const std::source_location& site =
                                                std::source_location::current())
      REED_ACQUIRE(mu) : mu_(mu) {
    mu_.lock(site);
  }
#else
  explicit WriterMutexLock(SharedMutex& mu) REED_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
#endif
  ~WriterMutexLock() REED_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared lock over SharedMutex (the reader side). The generic RELEASE
// on the destructor is the Abseil convention for scoped shared locks: a
// scoped capability releases whatever it acquired.
class REED_SCOPED_CAPABILITY ReaderMutexLock {
 public:
#if defined(REED_DEADLOCK_DETECT)
  explicit ReaderMutexLock(SharedMutex& mu, const std::source_location& site =
                                                std::source_location::current())
      REED_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared(site);
  }
#else
  explicit ReaderMutexLock(SharedMutex& mu) REED_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
#endif
  ~ReaderMutexLock() REED_RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII lock that makes lock contention observable: the fast path is a
// try_lock, and a failed fast path bumps `contended` (any type with an
// Increment(), in practice an obs::Counter — templated so util keeps zero
// dependency on obs) before falling back to a blocking lock. Used by the
// sharded server stores so per-shard contention shows up in metrics.
//
// The two-path acquire (try_lock, then lock on the miss branch) is beyond
// what the thread-safety analysis can follow inside a scoped-capability
// constructor, so the body opts out; the ACQUIRE contract still holds for
// callers, which is where the checking matters.
template <typename CounterT>
class REED_SCOPED_CAPABILITY ContendedMutexLock {
 public:
#if defined(REED_DEADLOCK_DETECT)
  ContendedMutexLock(Mutex& mu, CounterT& contended,
                     const std::source_location& site =
                         std::source_location::current())
      REED_ACQUIRE(mu) REED_NO_THREAD_SAFETY_ANALYSIS : mu_(mu) {
    if (!mu_.try_lock(site)) {
      contended.Increment();
      mu_.lock(site);
    }
  }
#else
  ContendedMutexLock(Mutex& mu, CounterT& contended)
      REED_ACQUIRE(mu) REED_NO_THREAD_SAFETY_ANALYSIS : mu_(mu) {
    if (!mu_.try_lock()) {
      contended.Increment();
      mu_.lock();
    }
  }
#endif
  ~ContendedMutexLock() REED_RELEASE() { mu_.unlock(); }

  ContendedMutexLock(const ContendedMutexLock&) = delete;
  ContendedMutexLock& operator=(const ContendedMutexLock&) = delete;

 private:
  Mutex& mu_;
};

// A Mutex that is INTENTIONALLY held across blocking wire I/O: TcpChannel
// serializes one request/response exchange per channel by holding it over
// Send+Receive. That is the one pattern tools/lint/lock_lint.py's
// blocking-under-lock rule exempts — and only under this type's dedicated
// RAII guard (IoSerialLock), so the exemption is greppable. The fixed
// kIoChannel rank is the maximum: the runtime detector proves nothing is
// ever acquired underneath one, which is what makes holding it while
// blocked deadlock-safe.
class REED_CAPABILITY("mutex") IoSerialMutex : public Mutex {
 public:
  IoSerialMutex() : Mutex(LockRank::kIoChannel) {}
};

// RAII lock over IoSerialMutex — the only guard allowed to enclose blocking
// wire calls (see lock_lint.py `blocking-under-lock`).
class REED_SCOPED_CAPABILITY IoSerialLock {
 public:
#if defined(REED_DEADLOCK_DETECT)
  explicit IoSerialLock(IoSerialMutex& mu, const std::source_location& site =
                                               std::source_location::current())
      REED_ACQUIRE(mu) : mu_(mu) {
    mu_.lock(site);
  }
#else
  explicit IoSerialLock(IoSerialMutex& mu) REED_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
#endif
  ~IoSerialLock() REED_RELEASE() { mu_.unlock(); }

  IoSerialLock(const IoSerialLock&) = delete;
  IoSerialLock& operator=(const IoSerialLock&) = delete;

 private:
  IoSerialMutex& mu_;
};

// Condition variable over reed::Mutex. Waits take the Mutex itself (which the
// caller must hold, RAII'd by a MutexLock in the same scope): the underlying
// condition_variable_any unlocks/relocks it internally, which the analysis
// cannot see — the REED_REQUIRES contract on Wait is the visible invariant.
class CondVar {
 public:
  void Wait(Mutex& mu) REED_REQUIRES(mu) { cv_.wait(mu); }

  // `pred` runs with `mu` held; annotate its lambda REED_REQUIRES(mu) so the
  // analysis checks the guarded members it reads.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REED_REQUIRES(mu) {
    cv_.wait(mu, pred);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace reed
