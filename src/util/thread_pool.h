// Fixed-size thread pool with a parallel-for helper.
//
// The REED client parallelizes chunk encryption/decryption across threads
// (paper §V-B "Parallelization"; the prototype used 2 threads on a 4-core
// box). ParallelFor partitions the index space statically — chunk work items
// are uniform enough that static partitioning beats a work queue here.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/fault_inject.h"
#include "util/thread_annotations.h"

namespace reed {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      stopping_ = true;
    }
    cv_.NotifyAll();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // Enqueues a task; the returned future rethrows any task exception.
  // Dropping the future silently swallows that exception, hence nodiscard.
  template <typename F>
  [[nodiscard]] std::future<void> Submit(F&& f) {
    REED_FAULT_POINT("util.thread_pool.submit");
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return fut;
  }

  // Runs body(i) for i in [0, count) across the pool, blocking until done.
  // The first exception thrown by any partition is rethrown to the caller.
  template <typename F>
  void ParallelFor(std::size_t count, F&& body) {
    if (count == 0) return;
    std::size_t parts = std::min(count, num_threads());
    if (parts <= 1) {
      for (std::size_t i = 0; i < count; ++i) body(i);
      return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(parts);
    std::size_t chunk = (count + parts - 1) / parts;
    try {
      for (std::size_t p = 0; p < parts; ++p) {
        std::size_t begin = p * chunk;
        std::size_t end = std::min(count, begin + chunk);
        if (begin >= end) break;
        futures.push_back(Submit([&body, begin, end] {
          for (std::size_t i = begin; i < end; ++i) body(i);
        }));
      }
    } catch (...) {
      // A mid-loop Submit failure must not leave queued tasks holding a
      // reference to `body` past this frame: join what was enqueued (their
      // results are moot — the whole ParallelFor fails), then rethrow the
      // submit error.
      std::exception_ptr submit_error = std::current_exception();
      for (auto& f : futures) {
        try {
          f.get();
        } catch (...) {
          DiscardResult(std::current_exception());
        }
      }
      std::rethrow_exception(submit_error);
    }
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        cv_.Wait(mu_, [this]() REED_REQUIRES(mu_) {
          return stopping_ || !queue_.empty();
        });
        if (stopping_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
    }
  }

  Mutex mu_{LockRank::kThreadPool};
  CondVar cv_;
  bool stopping_ REED_GUARDED_BY(mu_) = false;
  std::queue<std::function<void()>> queue_ REED_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
};

}  // namespace reed
