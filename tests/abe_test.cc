// CP-ABE tests: policy-tree logic, end-to-end encrypt/decrypt over GT and
// bytes, threshold gates, revocation semantics, serialization.
#include <gtest/gtest.h>

#include "abe/cpabe.h"
#include "crypto/random.h"

namespace reed::abe {
namespace {

using crypto::DeterministicRng;
using pairing::TypeAPairing;
using pairing::TypeAParams;

class CpAbeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pairing_ = std::make_shared<const TypeAPairing>(TypeAParams::Default());
    abe_ = new CpAbe(pairing_);
    DeterministicRng rng(42);
    setup_ = new CpAbe::SetupResult(abe_->Setup(rng));
  }

  static std::shared_ptr<const TypeAPairing> pairing_;
  static CpAbe* abe_;
  static CpAbe::SetupResult* setup_;
};

std::shared_ptr<const TypeAPairing> CpAbeTest::pairing_;
CpAbe* CpAbeTest::abe_ = nullptr;
CpAbe::SetupResult* CpAbeTest::setup_ = nullptr;

// --------------------------- policy trees ---------------------------

TEST(PolicyTest, ConstructionAndSatisfaction) {
  PolicyNode p = PolicyNode::Or({PolicyNode::Leaf("user:alice"),
                                 PolicyNode::Leaf("user:bob")});
  EXPECT_TRUE(p.IsSatisfiedBy({"user:alice"}));
  EXPECT_TRUE(p.IsSatisfiedBy({"user:bob", "x"}));
  EXPECT_FALSE(p.IsSatisfiedBy({"user:carol"}));
  EXPECT_EQ(p.LeafCount(), 2u);

  PolicyNode a = PolicyNode::And({PolicyNode::Leaf("dept:cs"),
                                  PolicyNode::Leaf("rank:senior")});
  EXPECT_TRUE(a.IsSatisfiedBy({"dept:cs", "rank:senior"}));
  EXPECT_FALSE(a.IsSatisfiedBy({"dept:cs"}));
}

TEST(PolicyTest, NestedThresholdGates) {
  // 2-of-3: (A, B, (C AND D))
  PolicyNode p = PolicyNode::Threshold(
      2, {PolicyNode::Leaf("A"), PolicyNode::Leaf("B"),
          PolicyNode::And({PolicyNode::Leaf("C"), PolicyNode::Leaf("D")})});
  EXPECT_TRUE(p.IsSatisfiedBy({"A", "B"}));
  EXPECT_TRUE(p.IsSatisfiedBy({"A", "C", "D"}));
  EXPECT_FALSE(p.IsSatisfiedBy({"A", "C"}));
  EXPECT_FALSE(p.IsSatisfiedBy({"C", "D"}));
  EXPECT_EQ(p.LeafCount(), 4u);
}

TEST(PolicyTest, OrOfUsersShortcut) {
  PolicyNode p = PolicyNode::OrOfUsers({"alice", "bob", "carol"});
  EXPECT_TRUE(p.IsSatisfiedBy({"user:bob"}));
  EXPECT_FALSE(p.IsSatisfiedBy({"bob"}));
  // Single user degenerates to a bare leaf.
  PolicyNode single = PolicyNode::OrOfUsers({"dave"});
  EXPECT_TRUE(single.IsLeaf());
  EXPECT_THROW(PolicyNode::OrOfUsers({}), Error);
}

TEST(PolicyTest, InvalidConstructionsThrow) {
  EXPECT_THROW(PolicyNode::Leaf(""), Error);
  EXPECT_THROW(PolicyNode::Threshold(0, {PolicyNode::Leaf("a")}), Error);
  EXPECT_THROW(PolicyNode::Threshold(2, {PolicyNode::Leaf("a")}), Error);
  EXPECT_THROW(PolicyNode::Or({}), Error);
}

TEST(PolicyTest, SerializationRoundTrip) {
  PolicyNode p = PolicyNode::Threshold(
      2, {PolicyNode::Leaf("A"),
          PolicyNode::Or({PolicyNode::Leaf("B"), PolicyNode::Leaf("C")}),
          PolicyNode::And({PolicyNode::Leaf("D"), PolicyNode::Leaf("E")})});
  Bytes blob;
  p.SerializeTo(blob);
  EXPECT_EQ(PolicyNode::Deserialize(blob), p);
  blob.pop_back();
  EXPECT_THROW(PolicyNode::Deserialize(blob), Error);
}

TEST(PolicyTest, ToStringReadable) {
  PolicyNode p = PolicyNode::Or({PolicyNode::Leaf("user:alice"),
                                 PolicyNode::Leaf("user:bob")});
  EXPECT_EQ(p.ToString(), "(user:alice OR user:bob)");
}

// --------------------------- CP-ABE core ---------------------------

TEST_F(CpAbeTest, AuthorizedUserDecryptsGtElement) {
  DeterministicRng rng(1);
  PrivateKey alice = abe_->KeyGen(setup_->pk, setup_->mk, {"user:alice"}, rng);
  PolicyNode policy = PolicyNode::OrOfUsers({"alice", "bob"});

  pairing::Fp2 m = pairing_->Pair(setup_->pk.g, setup_->pk.g)
                       .Pow(pairing_->RandomScalar(rng));
  Ciphertext ct = abe_->EncryptElement(setup_->pk, m, policy, rng);
  auto decrypted = abe_->DecryptElement(alice, ct);
  ASSERT_TRUE(decrypted.has_value());
  EXPECT_EQ(*decrypted, m);
}

TEST_F(CpAbeTest, UnauthorizedUserGetsNothing) {
  DeterministicRng rng(2);
  PrivateKey eve = abe_->KeyGen(setup_->pk, setup_->mk, {"user:eve"}, rng);
  PolicyNode policy = PolicyNode::OrOfUsers({"alice", "bob"});
  pairing::Fp2 m = pairing_->Pair(setup_->pk.g, setup_->pk.g)
                       .Pow(pairing_->RandomScalar(rng));
  Ciphertext ct = abe_->EncryptElement(setup_->pk, m, policy, rng);
  EXPECT_FALSE(abe_->DecryptElement(eve, ct).has_value());
}

TEST_F(CpAbeTest, AndGateRequiresAllAttributes) {
  DeterministicRng rng(3);
  PolicyNode policy = PolicyNode::And(
      {PolicyNode::Leaf("dept:cs"), PolicyNode::Leaf("rank:senior")});
  pairing::Fp2 m = pairing_->Pair(setup_->pk.g, setup_->pk.g)
                       .Pow(pairing_->RandomScalar(rng));
  Ciphertext ct = abe_->EncryptElement(setup_->pk, m, policy, rng);

  PrivateKey both =
      abe_->KeyGen(setup_->pk, setup_->mk, {"dept:cs", "rank:senior"}, rng);
  PrivateKey partial = abe_->KeyGen(setup_->pk, setup_->mk, {"dept:cs"}, rng);
  auto ok = abe_->DecryptElement(both, ct);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, m);
  EXPECT_FALSE(abe_->DecryptElement(partial, ct).has_value());
}

TEST_F(CpAbeTest, ThresholdGateLagrangeRecombination) {
  DeterministicRng rng(4);
  // 2-of-3 policy exercises non-trivial Lagrange coefficients.
  PolicyNode policy = PolicyNode::Threshold(
      2, {PolicyNode::Leaf("a1"), PolicyNode::Leaf("a2"), PolicyNode::Leaf("a3")});
  pairing::Fp2 m = pairing_->Pair(setup_->pk.g, setup_->pk.g)
                       .Pow(pairing_->RandomScalar(rng));
  Ciphertext ct = abe_->EncryptElement(setup_->pk, m, policy, rng);

  for (auto attrs : std::vector<std::vector<std::string>>{
           {"a1", "a2"}, {"a1", "a3"}, {"a2", "a3"}, {"a1", "a2", "a3"}}) {
    PrivateKey sk = abe_->KeyGen(setup_->pk, setup_->mk, attrs, rng);
    auto dec = abe_->DecryptElement(sk, ct);
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(*dec, m);
  }
  PrivateKey one = abe_->KeyGen(setup_->pk, setup_->mk, {"a2"}, rng);
  EXPECT_FALSE(abe_->DecryptElement(one, ct).has_value());
}

TEST_F(CpAbeTest, CollusionResistance) {
  // Two users who each fail the AND policy cannot combine their separate
  // keys — each key's components are bound by its own random t.
  DeterministicRng rng(5);
  PolicyNode policy = PolicyNode::And(
      {PolicyNode::Leaf("left"), PolicyNode::Leaf("right")});
  pairing::Fp2 m = pairing_->Pair(setup_->pk.g, setup_->pk.g)
                       .Pow(pairing_->RandomScalar(rng));
  Ciphertext ct = abe_->EncryptElement(setup_->pk, m, policy, rng);

  PrivateKey u1 = abe_->KeyGen(setup_->pk, setup_->mk, {"left"}, rng);
  PrivateKey u2 = abe_->KeyGen(setup_->pk, setup_->mk, {"right"}, rng);
  // Naive collusion: graft u2's component into u1's key.
  PrivateKey frankenstein = u1;
  frankenstein.components["right"] = u2.components.at("right");
  auto dec = abe_->DecryptElement(frankenstein, ct);
  if (dec.has_value()) {
    EXPECT_FALSE(*dec == m);  // recombination yields garbage, not m
  }
}

TEST_F(CpAbeTest, HybridBytesRoundTrip) {
  DeterministicRng rng(6);
  PrivateKey alice = abe_->KeyGen(setup_->pk, setup_->mk, {"user:alice"}, rng);
  PolicyNode policy = PolicyNode::OrOfUsers({"alice"});
  Secret secret(ToBytes("the file key state for backup-2013-03-19.tar"));
  Bytes blob = Declassify(abe_->EncryptBytes(setup_->pk, policy, secret, rng),
                          "test: hybrid ABE ciphertext");
  EXPECT_TRUE(abe_->DecryptBytes(alice, blob).ConstantTimeEquals(secret));
}

TEST_F(CpAbeTest, HybridRejectsUnauthorizedAndTampered) {
  DeterministicRng rng(7);
  PrivateKey alice = abe_->KeyGen(setup_->pk, setup_->mk, {"user:alice"}, rng);
  PrivateKey eve = abe_->KeyGen(setup_->pk, setup_->mk, {"user:eve"}, rng);
  PolicyNode policy = PolicyNode::OrOfUsers({"alice"});
  Bytes blob = Declassify(
      abe_->EncryptBytes(setup_->pk, policy, Secret(ToBytes("secret")), rng),
      "test: hybrid ABE ciphertext to tamper with");

  EXPECT_THROW(abe_->DecryptBytes(eve, blob), Error);
  Bytes tampered = blob;
  tampered[tampered.size() - 40] ^= 1;  // flip payload bit
  EXPECT_THROW(abe_->DecryptBytes(alice, tampered), Error);
}

TEST_F(CpAbeTest, CiphertextSerializationRoundTrip) {
  DeterministicRng rng(8);
  PolicyNode policy = PolicyNode::Threshold(
      2, {PolicyNode::Leaf("x"), PolicyNode::Leaf("y"), PolicyNode::Leaf("z")});
  pairing::Fp2 m = pairing_->Pair(setup_->pk.g, setup_->pk.g)
                       .Pow(pairing_->RandomScalar(rng));
  Ciphertext ct = abe_->EncryptElement(setup_->pk, m, policy, rng);
  Bytes blob = abe_->SerializeCiphertext(ct);
  Ciphertext back = abe_->DeserializeCiphertext(blob);

  PrivateKey sk = abe_->KeyGen(setup_->pk, setup_->mk, {"x", "z"}, rng);
  auto dec = abe_->DecryptElement(sk, back);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, m);
  blob.pop_back();
  EXPECT_THROW(abe_->DeserializeCiphertext(blob), Error);
}

TEST_F(CpAbeTest, KeySerializationRoundTrip) {
  DeterministicRng rng(9);
  PrivateKey sk = abe_->KeyGen(setup_->pk, setup_->mk,
                               {"user:alice", "dept:cs"}, rng);
  PrivateKey back = abe_->DeserializePrivateKey(abe_->SerializePrivateKey(sk));
  EXPECT_EQ(back.Attributes(), sk.Attributes());

  PublicKey pk_back = abe_->DeserializePublicKey(abe_->SerializePublicKey(setup_->pk));
  // Round-tripped public key still encrypts correctly.
  PolicyNode policy = PolicyNode::OrOfUsers({"alice"});
  Bytes blob = Declassify(
      abe_->EncryptBytes(pk_back, policy, Secret(ToBytes("hello")), rng),
      "test: ciphertext under the round-tripped public key");
  EXPECT_TRUE(abe_->DecryptBytes(back, blob).ConstantTimeEquals(ToBytes("hello")));
}

TEST_F(CpAbeTest, MasterKeySerializationRoundTrip) {
  // A restored master key must issue working private keys — the reedctl
  // attribute authority persists org state this way.
  DeterministicRng rng(12);
  MasterKey mk = abe_->DeserializeMasterKey(abe_->SerializeMasterKey(setup_->mk));
  EXPECT_EQ(mk.beta, setup_->mk.beta);
  PrivateKey sk = abe_->KeyGen(setup_->pk, mk, {"user:dave"}, rng);
  PolicyNode policy = PolicyNode::OrOfUsers({"dave"});
  Bytes blob = Declassify(
      abe_->EncryptBytes(setup_->pk, policy, Secret(ToBytes("data")), rng),
      "test: ciphertext under the restored master key's issuer");
  EXPECT_TRUE(abe_->DecryptBytes(sk, blob).ConstantTimeEquals(ToBytes("data")));
  EXPECT_THROW(abe_->DeserializeMasterKey(Secret(Bytes(3, 0))), Error);
}

TEST_F(CpAbeTest, RevocationByPolicyChange) {
  // The REED rekey pattern: re-encrypt the key state under a policy without
  // the revoked user.
  DeterministicRng rng(10);
  PrivateKey bob = abe_->KeyGen(setup_->pk, setup_->mk, {"user:bob"}, rng);
  Secret state(ToBytes("key-state-v1"));

  Bytes v1 = Declassify(
      abe_->EncryptBytes(setup_->pk, PolicyNode::OrOfUsers({"alice", "bob"}),
                         state, rng),
      "test: v1 key-state envelope");
  EXPECT_TRUE(abe_->DecryptBytes(bob, v1).ConstantTimeEquals(state));

  Secret state2(ToBytes("key-state-v2"));
  Bytes v2 = Declassify(
      abe_->EncryptBytes(setup_->pk, PolicyNode::OrOfUsers({"alice"}), state2,
                         rng),
      "test: v2 key-state envelope excluding bob");
  EXPECT_THROW(abe_->DecryptBytes(bob, v2), Error);
}

TEST_F(CpAbeTest, EmptyAttributeSetRejected) {
  DeterministicRng rng(11);
  EXPECT_THROW(abe_->KeyGen(setup_->pk, setup_->mk, {}, rng), Error);
}

}  // namespace
}  // namespace reed::abe
