// Tests for AONT/CAONT and the REED basic/enhanced encryption schemes —
// determinism (dedupability), round-trips, tamper detection, stub
// properties, and the MLE-key-leakage distinction between the schemes.
#include <gtest/gtest.h>

#include "aont/aont.h"
#include "aont/reed_cipher.h"
#include "crypto/random.h"
#include "crypto/sha256.h"

namespace reed::aont {
namespace {

using crypto::DeterministicRng;

Bytes TestChunk(std::size_t size, std::uint64_t seed = 1) {
  DeterministicRng rng(seed);
  return rng.Generate(size);
}

Bytes TestKeyBytes(std::uint64_t seed = 2) {
  DeterministicRng rng(seed);
  return rng.Generate(kMleKeySize);
}

Secret TestKey(std::uint64_t seed = 2) { return Secret(TestKeyBytes(seed)); }

// --------------------------- AONT / CAONT ---------------------------

TEST(AontTest, RoundTrip) {
  DeterministicRng rng(3);
  Bytes msg = TestChunk(1000);
  Bytes package = AontTransform(msg, rng);
  EXPECT_EQ(package.size(), msg.size() + kAontTailSize);
  EXPECT_EQ(AontRevert(package), msg);
}

TEST(AontTest, RandomizedPackagesDiffer) {
  DeterministicRng rng(4);
  Bytes msg = TestChunk(500);
  EXPECT_NE(AontTransform(msg, rng), AontTransform(msg, rng));
}

TEST(AontTest, RejectsTinyPackage) {
  EXPECT_THROW(AontRevert(Bytes(16, 0)), Error);
}

TEST(CaontTest, DeterministicPackages) {
  Bytes msg = TestChunk(500);
  EXPECT_EQ(CaontTransform(msg), CaontTransform(msg));
  EXPECT_NE(CaontTransform(msg), CaontTransform(TestChunk(500, 99)));
}

TEST(CaontTest, RoundTripAndIntegrity) {
  Bytes msg = TestChunk(4096);
  Bytes package = CaontTransform(msg);
  EXPECT_EQ(CaontRevert(package), msg);
  package[100] ^= 1;
  EXPECT_THROW(CaontRevert(package), Error);
}

TEST(CaontTest, AllOrNothingProperty) {
  // Flipping any single region of the package corrupts the whole revert.
  Bytes msg = TestChunk(300);
  for (std::size_t pos : {std::size_t{0}, std::size_t{150}, msg.size() + 10}) {
    Bytes package = CaontTransform(msg);
    package[pos] ^= 0xFF;
    EXPECT_THROW(CaontRevert(package), Error) << "pos=" << pos;
  }
}

TEST(SelfXorTest, KnownValues) {
  Bytes data(64, 0xAB);  // two identical pieces cancel
  EXPECT_EQ(SelfXor(data), Bytes(kAontTailSize, 0));
  Bytes one_piece(32, 0x5C);
  EXPECT_EQ(SelfXor(one_piece), one_piece);
  // Partial last piece is zero-padded.
  Bytes partial(40, 0x11);
  Bytes expect(32, 0x11);
  for (int i = 0; i < 8; ++i) expect[i] ^= 0x11;
  EXPECT_EQ(SelfXor(partial), expect);
}

TEST(MaskTest, DeterministicAndKeyDependent) {
  Bytes k1 = TestKeyBytes(5), k2 = TestKeyBytes(6);
  EXPECT_EQ(Mask(k1, 100), Mask(k1, 100));
  EXPECT_NE(Mask(k1, 100), Mask(k2, 100));
  // Prefix property: longer mask extends the shorter one.
  Bytes long_mask = Mask(k1, 200);
  EXPECT_EQ(Bytes(long_mask.begin(), long_mask.begin() + 100), Mask(k1, 100));
}

// --------------------------- REED schemes ---------------------------

class ReedCipherTest : public ::testing::TestWithParam<Scheme> {
 protected:
  ReedCipher cipher_{GetParam()};
};

TEST_P(ReedCipherTest, RoundTripVariousSizes) {
  for (std::size_t size : {128u, 2048u, 8192u, 16384u, 8191u}) {
    Bytes chunk = TestChunk(size, size);
    Secret key = TestKey(size + 1);
    SealedChunk sealed = cipher_.Encrypt(chunk, key);
    EXPECT_EQ(sealed.stub.size(), kDefaultStubSize);
    EXPECT_EQ(sealed.trimmed_package.size() + sealed.stub.size(),
              cipher_.PackageSize(size));
    EXPECT_EQ(cipher_.Decrypt(sealed.trimmed_package, sealed.stub), chunk);
  }
}

TEST_P(ReedCipherTest, DeterministicForDedup) {
  // Same chunk + same MLE key => identical trimmed package AND stub; this
  // is the property that lets the server dedup trimmed packages across
  // users (paper §IV-A).
  Bytes chunk = TestChunk(8192);
  Secret key = TestKey();
  SealedChunk a = cipher_.Encrypt(chunk, key);
  SealedChunk b = cipher_.Encrypt(chunk, key);
  EXPECT_EQ(a.trimmed_package, b.trimmed_package);
  EXPECT_TRUE(a.stub.ConstantTimeEquals(b.stub));
}

TEST_P(ReedCipherTest, DifferentKeysGiveDifferentPackages) {
  Bytes chunk = TestChunk(4096);
  SealedChunk a = cipher_.Encrypt(chunk, TestKey(1));
  SealedChunk b = cipher_.Encrypt(chunk, TestKey(2));
  EXPECT_NE(a.trimmed_package, b.trimmed_package);
}

TEST_P(ReedCipherTest, TamperedTrimmedPackageDetected) {
  Bytes chunk = TestChunk(4096);
  SealedChunk sealed = cipher_.Encrypt(chunk, TestKey());
  sealed.trimmed_package[17] ^= 1;
  EXPECT_THROW(cipher_.Decrypt(sealed.trimmed_package, sealed.stub), Error);
}

TEST_P(ReedCipherTest, TamperedStubDetected) {
  Bytes chunk = TestChunk(4096);
  SealedChunk sealed = cipher_.Encrypt(chunk, TestKey());
  Bytes stub_bytes = Declassify(sealed.stub, "test: flip a stub bit");
  stub_bytes[3] ^= 0x80;
  sealed.stub = Secret(std::move(stub_bytes));
  EXPECT_THROW(cipher_.Decrypt(sealed.trimmed_package, sealed.stub), Error);
}

TEST_P(ReedCipherTest, PairedBitFlipsStillDetected) {
  // §IV-E: flipping the same bit position in an even number of self-XOR
  // pieces preserves the recovered hash key in the enhanced scheme, but the
  // reverted input then fails the hash comparison. Both schemes must catch
  // this adversarial pattern.
  Bytes chunk = TestChunk(8192);
  SealedChunk sealed = cipher_.Encrypt(chunk, TestKey());
  sealed.trimmed_package[0] ^= 0x01;
  sealed.trimmed_package[32] ^= 0x01;  // same bit position, next piece
  EXPECT_THROW(cipher_.Decrypt(sealed.trimmed_package, sealed.stub), Error);
}

TEST_P(ReedCipherTest, WrongStubSizeRejected) {
  Bytes chunk = TestChunk(2048);
  SealedChunk sealed = cipher_.Encrypt(chunk, TestKey());
  Bytes short_bytes = Declassify(sealed.stub, "test: truncate the stub");
  short_bytes.pop_back();
  Secret short_stub(std::move(short_bytes));
  EXPECT_THROW(cipher_.Decrypt(sealed.trimmed_package, short_stub), Error);
}

TEST_P(ReedCipherTest, InvalidInputsRejected) {
  EXPECT_THROW(cipher_.Encrypt({}, TestKey()), Error);
  EXPECT_THROW(cipher_.Encrypt(TestChunk(100), Secret(Bytes(16, 0))), Error);
}

TEST_P(ReedCipherTest, ConfigurableStubSize) {
  for (std::size_t stub_size : {32u, 64u, 128u, 256u}) {
    ReedCipher cipher(GetParam(), stub_size);
    Bytes chunk = TestChunk(4096);
    SealedChunk sealed = cipher.Encrypt(chunk, TestKey());
    EXPECT_EQ(sealed.stub.size(), stub_size);
    EXPECT_EQ(cipher.Decrypt(sealed.trimmed_package, sealed.stub), chunk);
  }
  EXPECT_THROW(ReedCipher bad(GetParam(), 16), Error);  // below tail size
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, ReedCipherTest,
                         ::testing::Values(Scheme::kBasic, Scheme::kEnhanced),
                         [](const auto& param_info) {
                           return SchemeName(param_info.param);
                         });

TEST(ReedSchemeContrastTest, BasicLeaksUnderMleKeyCompromise) {
  // With the MLE key, the basic scheme's trimmed package can be unmasked
  // directly (§IV-B): most plaintext bytes are recoverable without the stub.
  Bytes chunk = TestChunk(8192);
  Bytes key_bytes = TestKeyBytes();  // the attacker's compromised MLE key
  ReedCipher basic(Scheme::kBasic);
  SealedChunk sealed = basic.Encrypt(chunk, TestKey());

  Bytes mask = Mask(key_bytes, sealed.trimmed_package.size());
  Bytes recovered = sealed.trimmed_package;
  XorInto(recovered, mask);
  // The attacker recovers the chunk prefix exactly.
  EXPECT_EQ(Bytes(recovered.begin(), recovered.begin() + 4096),
            Bytes(chunk.begin(), chunk.begin() + 4096));
}

TEST(ReedSchemeContrastTest, EnhancedResistsMleKeyCompromise) {
  // The enhanced scheme masks with h = H(C1 ‖ K_M), which depends on the
  // (stub-protected) package content — the MLE key alone unmasks nothing.
  Bytes chunk = TestChunk(8192);
  Bytes key_bytes = TestKeyBytes();
  ReedCipher enhanced(Scheme::kEnhanced);
  SealedChunk sealed = enhanced.Encrypt(chunk, TestKey());

  Bytes mask = Mask(key_bytes, sealed.trimmed_package.size());
  Bytes attempt = sealed.trimmed_package;
  XorInto(attempt, mask);
  // Must NOT match the MLE ciphertext, let alone the plaintext.
  EXPECT_NE(Bytes(attempt.begin(), attempt.begin() + 4096),
            Bytes(chunk.begin(), chunk.begin() + 4096));
}

TEST(ReedSchemeContrastTest, SchemesProduceIncompatiblePackages) {
  Bytes chunk = TestChunk(4096);
  Secret key = TestKey();
  ReedCipher basic(Scheme::kBasic);
  ReedCipher enhanced(Scheme::kEnhanced);
  SealedChunk sb = basic.Encrypt(chunk, key);
  SealedChunk se = enhanced.Encrypt(chunk, key);
  EXPECT_NE(sb.trimmed_package, se.trimmed_package);
  EXPECT_THROW(enhanced.Decrypt(sb.trimmed_package, sb.stub), Error);
}

// --------------------------- stub file crypto ---------------------------

TEST(StubFileTest, RoundTripAndRekey) {
  DeterministicRng rng(7);
  Secret stubs = rng.GenerateSecret(64 * 100);  // 100 chunk stubs
  Secret key1 = rng.GenerateSecret(32);
  Secret key2 = rng.GenerateSecret(32);

  Bytes blob1 = Declassify(EncryptStubFile(stubs, key1, rng),
                           "test: stub-file ciphertext under key1");
  EXPECT_TRUE(DecryptStubFile(blob1, key1).ConstantTimeEquals(stubs));

  // Rekey: decrypt with old key, re-encrypt with new key — the active
  // revocation step.
  Bytes blob2 = Declassify(
      EncryptStubFile(DecryptStubFile(blob1, key1), key2, rng),
      "test: rekeyed stub-file ciphertext under key2");
  EXPECT_TRUE(DecryptStubFile(blob2, key2).ConstantTimeEquals(stubs));
  EXPECT_THROW(DecryptStubFile(blob2, key1), Error);  // old key revoked
}

TEST(WrapKeyBlobTest, RoundTripAndDomainSeparation) {
  DeterministicRng rng(9);
  Secret key = rng.GenerateSecret(32);
  Secret secret(ToBytes("serialized key state v3"));
  Bytes blob = Declassify(WrapKeyBlob(secret, key, rng),
                          "test: wrapped key-state envelope");
  EXPECT_TRUE(UnwrapKeyBlob(blob, key).ConstantTimeEquals(secret));
  // Wrong key rejected.
  EXPECT_THROW(UnwrapKeyBlob(blob, rng.GenerateSecret(32)), Error);
  // Domain separation: a stub-file blob under the same key does not open
  // as a key blob (different HKDF labels).
  Bytes stub_blob = Declassify(EncryptStubFile(secret, key, rng),
                               "test: stub-file ciphertext for domain check");
  EXPECT_THROW(UnwrapKeyBlob(stub_blob, key), Error);
  EXPECT_THROW(DecryptStubFile(blob, key), Error);
}

TEST(WrapKeyBlobTest, TamperDetected) {
  DeterministicRng rng(10);
  Secret key = rng.GenerateSecret(32);
  Bytes blob = Declassify(WrapKeyBlob(Secret(ToBytes("secret")), key, rng),
                          "test: wrapped envelope to tamper with");
  blob[blob.size() / 2] ^= 1;
  EXPECT_THROW(UnwrapKeyBlob(blob, key), Error);
  EXPECT_THROW(UnwrapKeyBlob(Bytes(10, 0), key), Error);
}

TEST(StubFileTest, TamperDetected) {
  DeterministicRng rng(8);
  Secret stubs = rng.GenerateSecret(640);
  Secret key = rng.GenerateSecret(32);
  Bytes blob = Declassify(EncryptStubFile(stubs, key, rng),
                          "test: stub-file ciphertext to tamper with");
  blob[20] ^= 1;
  EXPECT_THROW(DecryptStubFile(blob, key), Error);
  EXPECT_THROW(DecryptStubFile(Bytes(10, 0), key), Error);
}

}  // namespace
}  // namespace reed::aont
