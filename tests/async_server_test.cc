// AsyncServer unit + stress tests (DESIGN.md §13).
//
// The framing tests drive the epoll front end through one end of a
// socketpair handed over via Adopt(): feeding the wire byte by byte, tearing
// frames mid-prefix, and pipelining back-to-back requests exercises the
// frame-reassembly buffer and the serial per-connection dispatch without any
// TCP nondeterminism. The behavioural tests (backpressure, idle sweep,
// tenant admission, slow readers) go over real loopback TCP because they
// depend on socket-buffer dynamics. The stress test runs the same
// deterministic client tapes against a thread-per-connection TcpServer and
// an AsyncServer backed by separate StorageServers and requires
// byte-identical transcripts plus equal package digests — the async front
// end must be a pure transport swap.

#include "net/async_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "chunk/fingerprint.h"
#include "gtest/gtest.h"
#include "net/rpc.h"
#include "net/tcp.h"
#include "net/tcp_server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "server/storage_server.h"
#include "util/bytes.h"

namespace reed::net {
namespace {

using server::Opcode;
using server::StorageServer;
using server::StoreId;

std::uint64_t CounterValue(const char* name) {
  return obs::Registry::Global().GetCounter(name).value();
}

// --- raw-fd helpers for the socketpair tests ---

void WriteAllFd(int fd, ByteSpan data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    ASSERT_GT(n, 0) << "write failed: " << std::strerror(errno);
    off += static_cast<std::size_t>(n);
  }
}

// Reads exactly n bytes; fails the test on EOF/error.
Bytes ReadExactFd(int fd, std::size_t n) {
  Bytes out(n);
  std::size_t off = 0;
  while (off < n) {
    ssize_t got = ::read(fd, out.data() + off, n - off);
    if (got <= 0) {
      ADD_FAILURE() << "read: " << (got == 0 ? "EOF" : std::strerror(errno))
                    << " after " << off << "/" << n << " bytes";
      return out;
    }
    off += static_cast<std::size_t>(got);
  }
  return out;
}

Bytes FrameBytes(ByteSpan payload) {
  Bytes wire;
  AppendU32(wire, static_cast<std::uint32_t>(payload.size()));
  Append(wire, payload);
  return wire;
}

Bytes ReadFrameFd(int fd) {
  Bytes prefix = ReadExactFd(fd, 4);
  if (prefix.size() != 4) return {};
  return ReadExactFd(fd, GetU32(prefix));
}

// Waits (bounded) for an fd to hit EOF, discarding any pending bytes.
bool WaitForEof(int fd) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::array<char, 4096> buf;
  while (std::chrono::steady_clock::now() < deadline) {
    ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n == 0) return true;
    if (n < 0 && errno != EINTR && errno != EAGAIN) return true;  // reset
  }
  return false;
}

bool WaitForGaugeZero(const char* name) {
  obs::Gauge& g = obs::Registry::Global().GetGauge(name);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (g.value() == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

Bytes EchoHandler(ByteSpan request) {
  return Bytes(request.begin(), request.end());
}

// --- framing over a socketpair ---

TEST(AsyncServerTest, OneByteAtATimeFraming) {
  AsyncServer server(0, EchoHandler);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  server.Adopt(sv[0]);

  Bytes payload = ToBytes("hello async frame reassembly");
  Bytes wire = FrameBytes(payload);
  // Worst-case fragmentation: every length-prefix byte and payload byte
  // arrives in its own read() wakeup.
  for (std::uint8_t b : wire) {
    WriteAllFd(sv[1], ByteSpan(&b, 1));
  }
  EXPECT_EQ(ReadFrameFd(sv[1]), payload);
  ::close(sv[1]);
}

TEST(AsyncServerTest, PipelinedFramesAnsweredInOrder) {
  AsyncServer server(0, EchoHandler);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  server.Adopt(sv[0]);

  // Three frames in a single write: dispatch is serial per connection, so
  // the responses must come back complete and in order.
  std::vector<Bytes> payloads = {ToBytes("first"), ToBytes("second-longer"),
                                 ToBytes("3")};
  Bytes wire;
  for (const Bytes& p : payloads) Append(wire, FrameBytes(p));
  WriteAllFd(sv[1], wire);
  for (const Bytes& p : payloads) {
    EXPECT_EQ(ReadFrameFd(sv[1]), p);
  }
  ::close(sv[1]);
}

TEST(AsyncServerTest, TornFrameNeverDispatches) {
  std::uint64_t dispatched_before = CounterValue("server.net.frames_dispatched");
  {
    AsyncServer server(0, EchoHandler);
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    server.Adopt(sv[0]);

    // A frame that claims 100 bytes but delivers 10, then half-close: the
    // server must discard the partial frame and close without dispatching.
    Bytes wire;
    AppendU32(wire, 100);
    Bytes partial(10, 0xAB);
    Append(wire, partial);
    WriteAllFd(sv[1], wire);
    ::shutdown(sv[1], SHUT_WR);
    EXPECT_TRUE(WaitForEof(sv[1]));
    ::close(sv[1]);
    EXPECT_TRUE(WaitForGaugeZero("server.net.active_conns"));
  }
  EXPECT_EQ(CounterValue("server.net.frames_dispatched"), dispatched_before);
}

TEST(AsyncServerTest, OversizedFrameClosesConnection) {
  std::uint64_t oversize_before = CounterValue("server.net.frame_oversize");
  AsyncServer::Options options;
  options.max_frame_len = 1024;
  AsyncServer server(0, EchoHandler, options);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  server.Adopt(sv[0]);

  Bytes wire;
  AppendU32(wire, 4096);  // over the configured cap; never sent in full
  WriteAllFd(sv[1], wire);
  EXPECT_TRUE(WaitForEof(sv[1]));
  ::close(sv[1]);
  EXPECT_GE(CounterValue("server.net.frame_oversize"), oversize_before + 1);
}

// A forged blob length *inside* a small frame must be rejected by the
// handler's net::Reader sanity cap and come back as an in-protocol error
// response — the transport stays healthy.
TEST(AsyncServerTest, OversizedBlobRejectedByReaderCap) {
  StorageServer storage("async-blob-cap");
  AsyncServer server(
      0, [&](ByteSpan request) { return storage.HandleRequest(request); });

  auto channel = TcpChannel(TcpTransport::Connect("127.0.0.1", server.port()));
  Writer forged;
  forged.U8(static_cast<std::uint8_t>(Opcode::kPutObject));
  forged.U8(static_cast<std::uint8_t>(StoreId::kData));
  forged.Str("victim");
  forged.U32(300u << 20);  // claims a 300 MiB blob; no payload follows
  Bytes response = channel.Call(forged.bytes());

  Reader reader(response);
  EXPECT_EQ(reader.U8(), 1);  // status: error
  EXPECT_NE(reader.Str().find("sanity cap"), std::string::npos);

  // The connection survives the bad request: a well-formed exchange works.
  Writer ok;
  ok.U8(static_cast<std::uint8_t>(Opcode::kPutObject));
  ok.U8(static_cast<std::uint8_t>(StoreId::kData));
  ok.Str("victim");
  ok.Blob(ToBytes("payload"));
  Bytes ok_response = channel.Call(ok.bytes());
  Reader ok_reader(ok_response);
  EXPECT_EQ(ok_reader.U8(), 0);
}

// An 8 MiB response cannot fit the loopback socket buffers while the client
// sleeps, so the flush must park on EPOLLOUT and resume when the client
// finally drains — the payload still arrives bit-exact.
TEST(AsyncServerTest, SlowReaderDrivesPartialWrites) {
  AsyncServer server(0, EchoHandler);
  Bytes big(8u << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }

  TcpTransport transport = TcpTransport::Connect("127.0.0.1", server.port());
  transport.Send(big);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(transport.Receive(), big);
  EXPECT_TRUE(WaitForGaugeZero("server.net.outbox_bytes"));
}

TEST(AsyncServerTest, OutboxOverflowClosesConnection) {
  std::uint64_t overflow_before = CounterValue("server.net.outbox_overflow");
  AsyncServer::Options options;
  options.max_outbox_bytes = 1024;
  AsyncServer server(0, EchoHandler, options);

  TcpTransport transport = TcpTransport::Connect("127.0.0.1", server.port());
  // 64 KiB response against a 1 KiB outbox cap: the client not reading
  // can't wedge the loop — the connection is closed instead.
  Bytes big(64u << 10, 0x5C);
  transport.Send(big);
  EXPECT_THROW((void)transport.Receive(), NetError);
  EXPECT_GE(CounterValue("server.net.outbox_overflow"), overflow_before + 1);
  EXPECT_TRUE(WaitForGaugeZero("server.net.outbox_bytes"));
}

TEST(AsyncServerTest, IdleConnectionsAreSweptOut) {
  std::uint64_t idle_before = CounterValue("server.net.idle_closed");
  AsyncServer::Options options;
  options.idle_timeout = std::chrono::milliseconds(50);
  AsyncServer server(0, EchoHandler, options);

  TcpTransport transport = TcpTransport::Connect("127.0.0.1", server.port());
  Bytes ping = ToBytes("ping");
  transport.Send(ping);
  EXPECT_EQ(transport.Receive(), ping);  // activity resets the idle clock
  // Then go quiet for several timeouts: the sweep must close us.
  EXPECT_THROW((void)transport.Receive(), NetError);
  EXPECT_GE(CounterValue("server.net.idle_closed"), idle_before + 1);
}

TEST(AsyncServerTest, TenantAdmissionThrottlesPerTenant) {
  std::uint64_t throttled_before = CounterValue("server.net.throttled");
  AsyncServer::Options options;
  // Effectively no refill within the test: one burst token per tenant.
  options.tenant_rate_per_sec = 0.001;
  options.tenant_burst = 1;
  AsyncServer server(0, EchoHandler, options);

  auto channel = TcpChannel(TcpTransport::Connect("127.0.0.1", server.port()));
  Bytes payload = ToBytes("metered");
  Bytes wrapped1 = AsyncServer::WrapTenant(7, payload);

  // Tenant 7's burst token admits the first request (and the envelope is
  // stripped before the handler sees it)...
  EXPECT_EQ(channel.Call(wrapped1), payload);
  // ...the second is rejected in-protocol without reaching a worker.
  Bytes denied_response = channel.Call(wrapped1);
  Reader denied(denied_response);
  EXPECT_EQ(denied.U8(), 1);
  EXPECT_NE(denied.Str().find("throttled"), std::string::npos);
  // Tenant 9 has its own bucket; so does the bare-frame tenant 0.
  EXPECT_EQ(channel.Call(AsyncServer::WrapTenant(9, payload)), payload);
  EXPECT_EQ(channel.Call(payload), payload);

  EXPECT_GE(CounterValue("server.net.throttled"), throttled_before + 1);
}

// --- differential stress: async front end vs thread-per-connection ---
//
// Runs under TSan in the concurrency lane (tests/CMakeLists.txt widens its
// budget there): many client threads, two server stacks, one shared
// StorageServer implementation. Each client replays a deterministic op tape
// and records every response; the transcripts and the final package digests
// must match between the two front ends exactly.

Bytes ClientChunk(unsigned client, unsigned i, unsigned j) {
  Bytes data = ToBytes("chunk-c" + std::to_string(client) + "-i" +
                       std::to_string(i) + "-j" + std::to_string(j));
  data.resize(256, static_cast<std::uint8_t>(client * 31 + j));
  return data;
}

// One client's scripted session against `port`; returns every response
// frame in order. Shared chunks (same bytes from every client) race the
// dedup path, so their PutChunks *responses* are schedule-dependent and are
// deliberately not recorded — the GetChunks payloads that follow are.
std::vector<Bytes> RunClientTape(std::uint16_t port, unsigned client) {
  std::vector<Bytes> transcript;
  auto channel = TcpChannel(TcpTransport::Connect("127.0.0.1", port));
  for (unsigned i = 0; i < 8; ++i) {
    // Private object: put, then read back.
    std::string name = "c" + std::to_string(client) + "-obj" + std::to_string(i);
    Bytes value = ToBytes("value-" + name);
    Writer put;
    put.U8(static_cast<std::uint8_t>(Opcode::kPutObject));
    put.U8(static_cast<std::uint8_t>(StoreId::kData));
    put.Str(name);
    put.Blob(value);
    transcript.push_back(channel.Call(put.bytes()));

    Writer get;
    get.U8(static_cast<std::uint8_t>(Opcode::kGetObject));
    get.U8(static_cast<std::uint8_t>(StoreId::kData));
    get.Str(name);
    transcript.push_back(channel.Call(get.bytes()));

    // Chunk batch: two private chunks plus one shared across all clients.
    std::vector<Bytes> chunks = {ClientChunk(client, i, 0),
                                 ClientChunk(client, i, 1),
                                 ClientChunk(~0u, i, 2)};
    Writer put_chunks;
    put_chunks.U8(static_cast<std::uint8_t>(Opcode::kPutChunks));
    put_chunks.U32(static_cast<std::uint32_t>(chunks.size()));
    for (const Bytes& c : chunks) {
      put_chunks.Raw(chunk::Fingerprint::Of(c).AsSpan());
      put_chunks.Blob(c);
    }
    // Dedup counts for the shared chunk depend on thread schedule: check
    // status only, don't transcript the body.
    Bytes put_chunks_response = channel.Call(put_chunks.bytes());
    Reader put_reader(put_chunks_response);
    EXPECT_EQ(put_reader.U8(), 0);

    Writer get_chunks;
    get_chunks.U8(static_cast<std::uint8_t>(Opcode::kGetChunks));
    get_chunks.U32(static_cast<std::uint32_t>(chunks.size()));
    for (const Bytes& c : chunks) {
      get_chunks.Raw(chunk::Fingerprint::Of(c).AsSpan());
    }
    transcript.push_back(channel.Call(get_chunks.bytes()));
  }
  return transcript;
}

std::vector<std::vector<Bytes>> RunAllClients(std::uint16_t port,
                                              unsigned clients) {
  std::vector<std::vector<Bytes>> transcripts(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back(
        [&, c] { transcripts[c] = RunClientTape(port, c); });
  }
  for (std::thread& t : threads) t.join();
  return transcripts;
}

TEST(AsyncServerStressTest, ByteIdenticalWithThreadPerConnection) {
  constexpr unsigned kClients = 8;

  StorageServer serial_storage("stress-serial");
  TcpServer serial_server(
      0, [&](ByteSpan request) { return serial_storage.HandleRequest(request); });
  auto serial = RunAllClients(serial_server.port(), kClients);

  StorageServer async_storage("stress-async");
  AsyncServer::Options options;
  options.loops = 2;
  options.workers = 4;
  AsyncServer async_server(
      0, [&](ByteSpan request) { return async_storage.HandleRequest(request); },
      options);
  auto async = RunAllClients(async_server.port(), kClients);

  ASSERT_EQ(serial.size(), async.size());
  for (unsigned c = 0; c < kClients; ++c) {
    ASSERT_EQ(serial[c].size(), async[c].size()) << "client " << c;
    for (std::size_t i = 0; i < serial[c].size(); ++i) {
      EXPECT_EQ(serial[c][i], async[c][i]) << "client " << c << " op " << i;
    }
  }
  EXPECT_EQ(serial_storage.PackageDigest(), async_storage.PackageDigest());
  EXPECT_TRUE(serial_storage.CheckConsistency().ok);
  EXPECT_TRUE(async_storage.CheckConsistency().ok);
}

}  // namespace
}  // namespace reed::net
