// BigInt / Montgomery / primality tests: fixed vectors plus randomized
// algebraic-identity property suites.
#include <gtest/gtest.h>

#include "bigint/bigint.h"
#include "bigint/prime.h"
#include "crypto/random.h"

namespace reed::bigint {
namespace {

using crypto::DeterministicRng;

TEST(BigIntTest, HexRoundTrip) {
  EXPECT_EQ(BigInt::FromHex("0").ToHex(), "0");
  EXPECT_EQ(BigInt::FromHex("ff").ToHex(), "ff");
  EXPECT_EQ(BigInt::FromHex("1234567890abcdef1234567890abcdef").ToHex(),
            "1234567890abcdef1234567890abcdef");
  EXPECT_EQ(BigInt::FromHex("000123").ToHex(), "123");
  EXPECT_THROW(BigInt::FromHex("xyz"), Error);
}

TEST(BigIntTest, BytesRoundTrip) {
  Bytes be = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  BigInt v = BigInt::FromBytes(be);
  EXPECT_EQ(v.ToBytes(), be);
  EXPECT_EQ(v.ToBytesPadded(12), (Bytes{0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_THROW(v.ToBytesPadded(4), Error);
  EXPECT_EQ(BigInt().ToBytes(), Bytes{});
}

TEST(BigIntTest, ComparisonAndBitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ((BigInt(1) << 100).BitLength(), 101u);
  EXPECT_LT(BigInt(5), BigInt(6));
  EXPECT_GT(BigInt(1) << 64, BigInt(~std::uint64_t{0}));
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt max64(~std::uint64_t{0});
  BigInt sum = max64 + BigInt(1);
  EXPECT_EQ(sum.ToHex(), "10000000000000000");
  EXPECT_EQ((sum - BigInt(1)).ToHex(), "ffffffffffffffff");
}

TEST(BigIntTest, SubtractionThrowsOnNegative) {
  EXPECT_THROW(BigInt(1) - BigInt(2), Error);
}

TEST(BigIntTest, MultiplicationKnownValue) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  BigInt max64(~std::uint64_t{0});
  EXPECT_EQ((max64 * max64).ToHex(), "fffffffffffffffe0000000000000001");
  EXPECT_EQ((BigInt(0) * max64).ToHex(), "0");
}

TEST(BigIntTest, ShiftsRoundTrip) {
  BigInt v = BigInt::FromHex("deadbeefcafebabe1234");
  EXPECT_EQ(((v << 67) >> 67), v);
  EXPECT_EQ((v >> 1000).ToHex(), "0");
  EXPECT_EQ((BigInt(1) << 64).ToHex(), "10000000000000000");
}

TEST(BigIntTest, InPlaceAddSubMatchOutOfPlace) {
  DeterministicRng rng(50);
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::RandomBits(rng, 300);
    BigInt b = BigInt::RandomBits(rng, 280);
    BigInt sum = a;
    sum += b;
    EXPECT_EQ(sum, a + b);
    BigInt diff = sum;
    diff -= b;
    EXPECT_EQ(diff, a);
  }
  BigInt small(1);
  EXPECT_THROW(small -= BigInt(2), Error);
}

TEST(BigIntTest, InPlaceAddCarryPropagation) {
  // All-ones value + 1 must grow a limb in place.
  BigInt v = (BigInt(1) << 192) - BigInt(1);
  v += BigInt(1);
  EXPECT_EQ(v, BigInt(1) << 192);
}

TEST(BigIntTest, ShiftRight1InPlaceMatchesShift) {
  DeterministicRng rng(51);
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::RandomBits(rng, 200);
    BigInt b = a;
    b.ShiftRight1InPlace();
    EXPECT_EQ(b, a >> 1);
  }
  BigInt zero;
  zero.ShiftRight1InPlace();
  EXPECT_TRUE(zero.IsZero());
  BigInt one(1);
  one.ShiftRight1InPlace();
  EXPECT_TRUE(one.IsZero());
}

TEST(BigIntTest, InverseModOddAndEvenModuliAgree) {
  // The odd-modulus binary fast path and the Euclid fallback must agree
  // on values where both apply (compare against multiplying back).
  DeterministicRng rng(52);
  BigInt odd_m = BigInt::RandomBits(rng, 256);
  if (!odd_m.IsOdd()) odd_m += BigInt(1);
  BigInt even_m = odd_m + BigInt(1);
  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::Random(rng, odd_m);
    if (BigInt::Gcd(a, odd_m).IsOne()) {
      EXPECT_TRUE(
          BigInt::MulMod(a, BigInt::InverseMod(a, odd_m), odd_m).IsOne());
    }
    if (BigInt::Gcd(a, even_m).IsOne() && !a.IsZero()) {
      EXPECT_TRUE(
          BigInt::MulMod(a, BigInt::InverseMod(a, even_m), even_m).IsOne());
    }
  }
  EXPECT_THROW(BigInt::InverseMod(BigInt(0), odd_m), Error);
}

TEST(BigIntTest, DivisionKnownValues) {
  auto dm = BigInt(100).Divide(BigInt(7));
  EXPECT_EQ(dm.quotient.ToU64(), 14u);
  EXPECT_EQ(dm.remainder.ToU64(), 2u);
  EXPECT_THROW(BigInt(1).Divide(BigInt(0)), Error);
  // Dividend smaller than divisor.
  auto dm2 = BigInt(3).Divide(BigInt(10));
  EXPECT_TRUE(dm2.quotient.IsZero());
  EXPECT_EQ(dm2.remainder.ToU64(), 3u);
}

TEST(BigIntTest, DivisionIdentityRandomized) {
  DeterministicRng rng(1);
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::RandomBits(rng, 512);
    BigInt b = BigInt::RandomBits(rng, 200) + BigInt(1);
    auto dm = a.Divide(b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_LT(dm.remainder, b);
  }
}

TEST(BigIntTest, ModLimbMatchesGeneralMod) {
  DeterministicRng rng(2);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::RandomBits(rng, 300);
    std::uint64_t m = rng.NextU64() | 1;
    EXPECT_EQ(a.ModLimb(m), (a % BigInt(m)).ToU64());
  }
}

TEST(BigIntTest, ModularHelpers) {
  BigInt m(1000000007);
  EXPECT_EQ(BigInt::AddMod(BigInt(1000000006), BigInt(5), m).ToU64(), 4u);
  EXPECT_EQ(BigInt::SubMod(BigInt(3), BigInt(5), m).ToU64(), 1000000005u);
  EXPECT_EQ(BigInt::MulMod(BigInt(123456789), BigInt(987654321), m),
            (BigInt(123456789) * BigInt(987654321)) % m);
}

TEST(BigIntTest, PowModSmallKnownValues) {
  EXPECT_EQ(BigInt::PowMod(BigInt(2), BigInt(10), BigInt(1000)).ToU64(), 24u);
  EXPECT_EQ(BigInt::PowMod(BigInt(3), BigInt(0), BigInt(7)).ToU64(), 1u);
  EXPECT_EQ(BigInt::PowMod(BigInt(5), BigInt(117), BigInt(19)).ToU64(), 1u);
  // Even modulus fallback path.
  EXPECT_EQ(BigInt::PowMod(BigInt(3), BigInt(4), BigInt(100)).ToU64(), 81u % 100);
}

TEST(BigIntTest, FermatLittleTheorem) {
  // p prime, a^(p-1) = 1 mod p.
  BigInt p = BigInt::FromHex("ffffffffffffffc5");  // largest 64-bit prime
  DeterministicRng rng(3);
  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::Random(rng, p - BigInt(1)) + BigInt(1);
    EXPECT_TRUE(BigInt::PowMod(a, p - BigInt(1), p).IsOne());
  }
}

TEST(BigIntTest, GcdKnownValues) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(18)).ToU64(), 6u);
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToU64(), 1u);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToU64(), 5u);
}

TEST(BigIntTest, InverseModCorrectness) {
  DeterministicRng rng(4);
  BigInt m = BigInt::FromHex("fffffffffffffffffffffffffffffffeffffffffffffffff");
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::Random(rng, m);
    if (!BigInt::Gcd(a, m).IsOne()) continue;
    BigInt inv = BigInt::InverseMod(a, m);
    EXPECT_TRUE(BigInt::MulMod(a, inv, m).IsOne());
  }
  EXPECT_THROW(BigInt::InverseMod(BigInt(4), BigInt(8)), Error);
}

TEST(MontgomeryTest, MatchesNaiveModMul) {
  DeterministicRng rng(5);
  BigInt m = BigInt::RandomBits(rng, 512);
  if (!m.IsOdd()) m += BigInt(1);
  Montgomery mont(m);
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::Random(rng, m);
    BigInt b = BigInt::Random(rng, m);
    EXPECT_EQ(mont.Mul(a, b), BigInt::MulMod(a, b, m));
  }
}

TEST(MontgomeryTest, ToFromMontRoundTrip) {
  DeterministicRng rng(6);
  BigInt m = BigInt::RandomBits(rng, 256);
  if (!m.IsOdd()) m += BigInt(1);
  Montgomery mont(m);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::Random(rng, m);
    EXPECT_EQ(mont.FromMont(mont.ToMont(a)), a);
  }
}

TEST(MontgomeryTest, PowMatchesSquareAndMultiply) {
  DeterministicRng rng(7);
  BigInt m = BigInt::RandomBits(rng, 128);
  if (!m.IsOdd()) m += BigInt(1);
  Montgomery mont(m);
  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::Random(rng, m);
    BigInt e = BigInt::RandomBits(rng, 64);
    // Naive reference.
    BigInt ref(1);
    for (std::size_t bit = e.BitLength(); bit-- > 0;) {
      ref = BigInt::MulMod(ref, ref, m);
      if (e.Bit(bit)) ref = BigInt::MulMod(ref, a, m);
    }
    EXPECT_EQ(mont.Pow(a, e), ref);
  }
}

TEST(MontgomeryTest, RejectsEvenModulus) {
  EXPECT_THROW(Montgomery mont(BigInt(100)), Error);
  EXPECT_THROW(Montgomery mont2(BigInt(1)), Error);
}

TEST(BigIntTest, RandomRespectsBound) {
  DeterministicRng rng(8);
  BigInt bound = BigInt::FromHex("10000000000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigInt::Random(rng, bound), bound);
  }
  EXPECT_THROW(BigInt::Random(rng, BigInt(0)), Error);
}

TEST(BigIntTest, RandomBitsMasksHighBits) {
  DeterministicRng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(BigInt::RandomBits(rng, 100).BitLength(), 100u);
  }
}

// --------------------------- primality ---------------------------

TEST(PrimeTest, KnownPrimesAccepted) {
  DeterministicRng rng(10);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 65537ull, 4294967291ull}) {
    EXPECT_TRUE(IsProbablePrime(BigInt(p), rng)) << p;
  }
  // 2^127 - 1 is a Mersenne prime.
  BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_TRUE(IsProbablePrime(m127, rng));
}

TEST(PrimeTest, KnownCompositesRejected) {
  DeterministicRng rng(11);
  // Carmichael numbers fool Fermat but not Miller–Rabin.
  for (std::uint64_t c : {561ull, 1105ull, 1729ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(IsProbablePrime(BigInt(c), rng)) << c;
  }
  EXPECT_FALSE(IsProbablePrime(BigInt(0), rng));
  EXPECT_FALSE(IsProbablePrime(BigInt(1), rng));
  BigInt sq = BigInt::FromHex("ffffffffffffffc5") * BigInt::FromHex("ffffffffffffffc5");
  EXPECT_FALSE(IsProbablePrime(sq, rng));
}

TEST(PrimeTest, GeneratedPrimeHasExactBitLength) {
  DeterministicRng rng(12);
  BigInt p = GeneratePrime(128, rng);
  EXPECT_EQ(p.BitLength(), 128u);
  EXPECT_TRUE(IsProbablePrime(p, rng));
}

TEST(PrimeTest, RsaPrimeCoprimality) {
  DeterministicRng rng(13);
  BigInt e(65537);
  BigInt p = GenerateRsaPrime(128, e, rng);
  EXPECT_TRUE(BigInt::Gcd(p - BigInt(1), e).IsOne());
}

}  // namespace
}  // namespace reed::bigint
