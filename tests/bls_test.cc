// Blinded BLS signature tests — the alternative MLE keygen instantiation
// (paper §V): determinism, blindness, unforgeability, input validation.
#include <gtest/gtest.h>

#include "crypto/random.h"
#include "crypto/sha256.h"
#include "pairing/bls.h"

namespace reed::pairing {
namespace {

using crypto::DeterministicRng;

class BlsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pairing_ = std::make_shared<const TypeAPairing>(TypeAParams::Default());
    DeterministicRng rng(1);
    BlsKeyPair kp = BlsGenerateKeyPair(*pairing_, rng);
    signer_ = new BlsBlindSigner(pairing_, kp.secret);
    client_ = new BlsBlindClient(pairing_, kp.public_key);
  }

  static std::shared_ptr<const TypeAPairing> pairing_;
  static BlsBlindSigner* signer_;
  static BlsBlindClient* client_;
};

std::shared_ptr<const TypeAPairing> BlsTest::pairing_;
BlsBlindSigner* BlsTest::signer_ = nullptr;
BlsBlindClient* BlsTest::client_ = nullptr;

TEST_F(BlsTest, KeyPairIsConsistent) {
  DeterministicRng rng(2);
  BlsKeyPair kp = BlsGenerateKeyPair(*pairing_, rng);
  EXPECT_EQ(kp.public_key, pairing_->generator().ScalarMul(kp.secret));
  EXPECT_TRUE(kp.public_key.IsOnCurve());
}

TEST_F(BlsTest, DeterministicKeysAcrossBlindings) {
  DeterministicRng rng(3);
  Bytes msg = ToBytes("chunk-fingerprint-A");
  auto r1 = client_->Blind(msg, rng);
  auto r2 = client_->Blind(msg, rng);
  EXPECT_FALSE(r1.blinded == r2.blinded);  // different blinding factors
  Secret k1 = client_->Unblind(r1, signer_->Sign(r1.blinded));
  Secret k2 = client_->Unblind(r2, signer_->Sign(r2.blinded));
  EXPECT_TRUE(k1.ConstantTimeEquals(k2));
  EXPECT_EQ(k1.size(), 32u);
}

TEST_F(BlsTest, DistinctMessagesDistinctKeys) {
  DeterministicRng rng(4);
  auto ra = client_->Blind(ToBytes("chunk-A"), rng);
  auto rb = client_->Blind(ToBytes("chunk-B"), rng);
  EXPECT_FALSE(
      client_->Unblind(ra, signer_->Sign(ra.blinded))
          .ConstantTimeEquals(client_->Unblind(rb, signer_->Sign(rb.blinded))));
}

TEST_F(BlsTest, BlindingHidesTheMessagePoint) {
  DeterministicRng rng(5);
  auto req = client_->Blind(ToBytes("secret-chunk"), rng);
  EXPECT_FALSE(req.blinded == req.h);
  // The blinded point is h + r·g; without r it is a uniformly random
  // group element from the signer's perspective.
  EXPECT_TRUE(req.blinded.IsOnCurve());
}

TEST_F(BlsTest, ForgedSignatureRejected) {
  DeterministicRng rng(6);
  auto req = client_->Blind(ToBytes("chunk"), rng);
  G1Point forged = pairing_->HashToGroup(ToBytes("not-a-signature"));
  EXPECT_THROW(client_->Unblind(req, forged), Error);
}

TEST_F(BlsTest, SignatureFromWrongKeyRejected) {
  DeterministicRng rng(7);
  BlsKeyPair other = BlsGenerateKeyPair(*pairing_, rng);
  BlsBlindSigner rogue(pairing_, other.secret);
  auto req = client_->Blind(ToBytes("chunk"), rng);
  EXPECT_THROW(client_->Unblind(req, rogue.Sign(req.blinded)), Error);
}

TEST_F(BlsTest, SignerInputValidation) {
  EXPECT_THROW(signer_->Sign(G1Point::Infinity()), Error);
  EXPECT_THROW(BlsBlindSigner(pairing_, bigint::BigInt(0)), Error);
  EXPECT_THROW(BlsBlindSigner(pairing_, pairing_->group_order()), Error);
}

TEST_F(BlsTest, MatchesDirectSignature) {
  // The unblinded signature must equal x·H(m) computed directly.
  DeterministicRng rng(8);
  BlsKeyPair kp = BlsGenerateKeyPair(*pairing_, rng);
  BlsBlindSigner signer(pairing_, kp.secret);
  BlsBlindClient client(pairing_, kp.public_key);

  Bytes msg = ToBytes("some-fp");
  auto req = client.Blind(msg, rng);
  Secret via_blind = client.Unblind(req, signer.Sign(req.blinded));

  G1Point direct = pairing_->HashToGroup(msg).ScalarMul(kp.secret);
  Bytes via_direct =
      crypto::Sha256::HashToBytes(direct.ToBytes(pairing_->field()));
  EXPECT_TRUE(via_blind.ConstantTimeEquals(via_direct));
}

}  // namespace
}  // namespace reed::pairing
