// Chunking substrate tests: Rabin rolling-hash algebra, boundary stability
// under edits (the property dedup depends on), fixed chunking, fingerprints.
#include <gtest/gtest.h>

#include "chunk/chunker.h"
#include "chunk/fingerprint.h"
#include "crypto/random.h"

namespace reed::chunk {
namespace {

using crypto::DeterministicRng;

TEST(FingerprintTest, DeterministicAndDistinct) {
  Bytes a = ToBytes("chunk content A");
  Bytes b = ToBytes("chunk content B");
  EXPECT_EQ(Fingerprint::Of(a), Fingerprint::Of(a));
  EXPECT_NE(Fingerprint::Of(a), Fingerprint::Of(b));
  EXPECT_EQ(Fingerprint::Of(a).ToHex().size(), 64u);
}

TEST(FingerprintTest, RoundTripAndShort48) {
  Fingerprint fp = Fingerprint::Of(ToBytes("data"));
  EXPECT_EQ(Fingerprint::FromBytes(fp.ToBytes()), fp);
  EXPECT_LT(fp.Short48(), std::uint64_t(1) << 48);
  EXPECT_THROW(Fingerprint::FromBytes(Bytes(31, 0)), Error);
}

TEST(RabinTest, PolyModReducesBelowDegree) {
  std::uint64_t poly = RabinWindow::kDefaultPoly;  // degree 53
  DeterministicRng rng(1);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t v = rng.NextU64();
    std::uint64_t r = RabinWindow::PolyMod(v, poly);
    EXPECT_LT(r, std::uint64_t(1) << 53);
    // mod is idempotent
    EXPECT_EQ(RabinWindow::PolyMod(r, poly), r);
  }
  // Values already below the degree are unchanged.
  EXPECT_EQ(RabinWindow::PolyMod(12345, poly), 12345u);
}

TEST(RabinTest, WindowFingerprintDependsOnlyOnWindowContents) {
  // After sliding past the window size, the fingerprint must equal the
  // fingerprint of just the last `window` bytes — the rolling property.
  RabinWindow w1(16);
  RabinWindow w2(16);
  DeterministicRng rng(2);
  Bytes data = rng.Generate(300);

  for (std::uint8_t b : data) w1.Slide(b);
  for (std::size_t i = data.size() - 16; i < data.size(); ++i) w2.Slide(data[i]);
  EXPECT_EQ(w1.fingerprint(), w2.fingerprint());
}

TEST(RabinTest, ResetClearsState) {
  RabinWindow w(8);
  w.Slide(1);
  w.Slide(2);
  std::uint64_t fp_after_two = w.fingerprint();
  w.Reset();
  EXPECT_EQ(w.fingerprint(), 0u);
  w.Slide(1);
  w.Slide(2);
  EXPECT_EQ(w.fingerprint(), fp_after_two);
}

TEST(RabinTest, RejectsBadParameters) {
  EXPECT_THROW(RabinWindow w(0), Error);
  EXPECT_THROW(RabinWindow w(48, 0x3), Error);  // degree too small
}

TEST(FixedChunkerTest, SplitsExactlyAndCoversInput) {
  FixedSizeChunker chunker(100);
  DeterministicRng rng(3);
  Bytes data = rng.Generate(250);
  auto refs = chunker.Split(data);
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0].length, 100u);
  EXPECT_EQ(refs[2].length, 50u);
  std::size_t expected_offset = 0;
  for (const auto& r : refs) {
    EXPECT_EQ(r.offset, expected_offset);
    expected_offset += r.length;
  }
  EXPECT_EQ(expected_offset, data.size());
  EXPECT_TRUE(chunker.Split({}).empty());
  EXPECT_THROW(FixedSizeChunker bad(0), Error);
}

class RabinChunkerTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RabinChunkerTest, RespectsBoundsAndCoversInput) {
  std::size_t avg = GetParam();
  RabinChunker chunker(PaperChunking(avg));
  DeterministicRng rng(4);
  Bytes data = rng.Generate(1 << 20);  // 1 MB
  auto refs = chunker.Split(data);
  ASSERT_GT(refs.size(), 1u);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    EXPECT_EQ(refs[i].offset, offset);
    EXPECT_GT(refs[i].length, 0u);
    EXPECT_LE(refs[i].length, chunker.options().max_size);
    if (i + 1 < refs.size()) {
      EXPECT_GE(refs[i].length, chunker.options().min_size);
    }
    offset += refs[i].length;
  }
  EXPECT_EQ(offset, data.size());
  // Average should be in the right ballpark (within 4x either way).
  double actual_avg =
      static_cast<double>(data.size()) / static_cast<double>(refs.size());
  EXPECT_GT(actual_avg, static_cast<double>(avg) / 4.0);
  EXPECT_LT(actual_avg, static_cast<double>(avg) * 4.0);
}

INSTANTIATE_TEST_SUITE_P(AverageSizes, RabinChunkerTest,
                         ::testing::Values(2048, 4096, 8192, 16384));

TEST(RabinChunkerDedupTest, IdenticalDataGivesIdenticalChunks) {
  RabinChunker chunker(PaperChunking(8192));
  DeterministicRng rng(5);
  Bytes data = rng.Generate(256 * 1024);
  auto a = chunker.Split(data);
  auto b = chunker.Split(data);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].length, b[i].length);
  }
}

TEST(RabinChunkerDedupTest, SharedSuffixRealignsAfterEdit) {
  // Content-defined chunking: inserting bytes near the front must leave
  // most downstream chunk *contents* unchanged (they realign), which is
  // what lets the dedup layer keep storing only one copy.
  RabinChunker chunker(PaperChunking(4096));
  DeterministicRng rng(6);
  Bytes original = rng.Generate(512 * 1024);
  Bytes edited = original;
  Bytes insertion = rng.Generate(100);
  edited.insert(edited.begin() + 1000, insertion.begin(), insertion.end());

  auto FingerprintSet = [&](ByteSpan data) {
    std::vector<std::string> fps;
    for (const auto& r : chunker.Split(data)) {
      fps.push_back(Fingerprint::Of(data.subspan(r.offset, r.length)).ToHex());
    }
    return fps;
  };
  auto fa = FingerprintSet(original);
  auto fb = FingerprintSet(edited);
  std::size_t shared = 0;
  std::vector<std::string> sorted_a = fa, sorted_b = fb;
  std::sort(sorted_a.begin(), sorted_a.end());
  std::sort(sorted_b.begin(), sorted_b.end());
  std::vector<std::string> common;
  std::set_intersection(sorted_a.begin(), sorted_a.end(), sorted_b.begin(),
                        sorted_b.end(), std::back_inserter(common));
  shared = common.size();
  // The vast majority of chunks must survive the edit.
  EXPECT_GT(shared, fa.size() * 3 / 4);
}

TEST(RabinChunkerTest, InvalidOptionsThrow) {
  RabinChunker::Options opts;
  opts.average_size = 3000;  // not a power of two
  EXPECT_THROW(RabinChunker c(opts), Error);
  opts.average_size = 4096;
  opts.min_size = 0;
  EXPECT_THROW(RabinChunker c2(opts), Error);
  opts.min_size = 8192;
  opts.max_size = 4096;
  EXPECT_THROW(RabinChunker c3(opts), Error);
}

TEST(RabinChunkerTest, MaxSizeForcedOnIncompressiblePattern) {
  // Constant data never matches the boundary mask (the window fingerprint
  // is constant), so every chunk must be cut at max_size.
  RabinChunker chunker(PaperChunking(4096));
  Bytes data(200 * 1024, 0xAA);
  auto refs = chunker.Split(data);
  for (std::size_t i = 0; i + 1 < refs.size(); ++i) {
    EXPECT_EQ(refs[i].length, chunker.options().max_size);
  }
}

}  // namespace
}  // namespace reed::chunk
