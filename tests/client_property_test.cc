// Property-style sweeps over the client pipeline: round-trips across file
// sizes / schemes / chunkings / stub sizes, failure injection on every
// stored object, and concurrent-client behaviour.
#include <gtest/gtest.h>

#include <thread>
#include <tuple>

#include "core/reed_system.h"
#include "crypto/random.h"

namespace reed {
namespace {

using client::ClientOptions;
using core::ReedSystem;
using core::SystemOptions;
using crypto::DeterministicRng;

SystemOptions FastSystem(std::uint64_t seed) {
  SystemOptions opts;
  opts.key_manager.rsa_bits = 512;
  opts.derivation_key_bits = 512;
  opts.rng_seed = seed;
  return opts;
}

ReedSystem& SharedSystem() {
  static ReedSystem* system = [] {
    auto* s = new ReedSystem(FastSystem(555));
    s->RegisterUser("prop");
    return s;
  }();
  return *system;
}

// ---------------------------------------------------------------------
// Round-trip sweep: (scheme, avg chunk size, file size). File sizes hit
// chunking edge cases: below min chunk, exactly max chunk, unaligned.
// ---------------------------------------------------------------------
using RoundTripParam = std::tuple<aont::Scheme, std::size_t, std::size_t>;

class RoundTripSweep : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(RoundTripSweep, UploadDownloadPreservesContent) {
  auto [scheme, chunk_size, file_size] = GetParam();
  ClientOptions opts;
  opts.scheme = scheme;
  opts.avg_chunk_size = chunk_size;
  opts.rng_seed = 7;
  auto client = SharedSystem().CreateClient("prop", opts);

  DeterministicRng rng(file_size * 31 + chunk_size);
  Bytes file = rng.Generate(file_size);
  std::string id = "sweep-" + std::string(aont::SchemeName(scheme)) + "-" +
                   std::to_string(chunk_size) + "-" + std::to_string(file_size);
  auto result = client->Upload(id, file, {"prop"});
  EXPECT_EQ(result.logical_bytes, file.size());
  EXPECT_EQ(client->Download(id), file);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RoundTripSweep,
    ::testing::Combine(
        ::testing::Values(aont::Scheme::kBasic, aont::Scheme::kEnhanced),
        ::testing::Values(2048, 8192),
        ::testing::Values(1, 100, 2048, 16384, 16385, 100000, 1 << 20)),
    [](const auto& param_info) {
      return std::string(aont::SchemeName(std::get<0>(param_info.param))) +
             "_c" + std::to_string(std::get<1>(param_info.param)) + "_f" +
             std::to_string(std::get<2>(param_info.param));
    });

// ---------------------------------------------------------------------
// Stub-size sweep end to end.
// ---------------------------------------------------------------------
class StubSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StubSizeSweep, RoundTripWithCustomStub) {
  ClientOptions opts;
  opts.stub_size = GetParam();
  opts.rng_seed = 9;
  auto client = SharedSystem().CreateClient("prop", opts);
  DeterministicRng rng(GetParam());
  Bytes file = rng.Generate(200 * 1024);
  std::string id = "stub-" + std::to_string(GetParam());
  auto result = client->Upload(id, file, {"prop"});
  EXPECT_EQ(result.stub_bytes,
            result.chunk_count * GetParam() + 16 + 32);  // + IV + MAC
  EXPECT_EQ(client->Download(id), file);
}

INSTANTIATE_TEST_SUITE_P(StubSizes, StubSizeSweep,
                         ::testing::Values(32, 64, 128, 512));

// ---------------------------------------------------------------------
// Failure injection: corrupt each stored object kind; downloads must fail
// loudly, never return wrong data.
// ---------------------------------------------------------------------
class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest() : system_(FastSystem(777)) {
    system_.RegisterUser("victim");
    ClientOptions opts;
    opts.rng_seed = 11;
    client_ = system_.CreateClient("victim", opts);
    DeterministicRng rng(12);
    file_ = rng.Generate(300 * 1024);
    DiscardResult(client_->Upload("target", file_, {"victim"}));
  }

  // Applies fn to the named object on whichever server holds it.
  void CorruptObject(server::StoreId store, const std::string& name,
                     const std::function<void(Bytes&)>& fn) {
    bool found = false;
    auto try_server = [&](server::StorageServer& srv) {
      if (srv.HasObject(store, name)) {
        Bytes blob = srv.GetObject(store, name);
        fn(blob);
        srv.PutObject(store, name, std::move(blob));
        found = true;
      }
    };
    for (std::size_t i = 0; i < system_.data_server_count(); ++i) {
      try_server(system_.data_server(i));
    }
    try_server(system_.key_server());
    ASSERT_TRUE(found) << "object not found: " << name;
  }

  ReedSystem system_;
  std::unique_ptr<client::ReedClient> client_;
  Bytes file_;
};

TEST_F(FailureInjectionTest, CorruptedStubFileDetected) {
  CorruptObject(server::StoreId::kData, "stub/target",
                [](Bytes& b) { b[b.size() / 2] ^= 0x01; });
  EXPECT_THROW(client_->Download("target"), Error);
}

TEST_F(FailureInjectionTest, CorruptedKeyStateDetected) {
  // Flip a byte in the middle of the record — inside the CP-ABE-wrapped
  // key state, whose MAC must catch it. (The record's trailing field is
  // the derivation public key, which is legitimately unused until a
  // version unwind, so corrupting the *last* byte would be harmless.)
  CorruptObject(server::StoreId::kKey, "keystate/target",
                [](Bytes& b) { b[b.size() / 2] ^= 0x01; });
  EXPECT_THROW(client_->Download("target"), Error);
}

TEST_F(FailureInjectionTest, TruncatedRecipeDetected) {
  CorruptObject(server::StoreId::kData, "recipe/target",
                [](Bytes& b) { b.resize(b.size() - 10); });
  EXPECT_THROW(client_->Download("target"), Error);
}

TEST_F(FailureInjectionTest, MissingObjectsSurfaceAsErrors) {
  for (std::size_t i = 0; i < system_.data_server_count(); ++i) {
    (void)system_.data_server(i);
  }
  EXPECT_THROW(client_->Download("never-uploaded"), Error);
  EXPECT_THROW(DiscardResult(client_->Rekey(
                   "never-uploaded", {"victim"}, client::RevocationMode::kLazy)),
               Error);
}

TEST_F(FailureInjectionTest, SwappedStubFilesDetected) {
  // Upload a second file, then swap the two stub files: the MACs are keyed
  // by different file keys, so both downloads must fail (not cross-read).
  DeterministicRng rng(13);
  Bytes other = rng.Generate(300 * 1024);
  DiscardResult(client_->Upload("other", other, {"victim"}));

  auto find_blob = [&](const std::string& name) -> Bytes {
    for (std::size_t i = 0; i < system_.data_server_count(); ++i) {
      if (system_.data_server(i).HasObject(server::StoreId::kData, name)) {
        return system_.data_server(i).GetObject(server::StoreId::kData, name);
      }
    }
    throw Error("not found");
  };
  Bytes stub_a = find_blob("stub/target");
  Bytes stub_b = find_blob("stub/other");
  CorruptObject(server::StoreId::kData, "stub/target",
                [&](Bytes& b) { b = stub_b; });
  CorruptObject(server::StoreId::kData, "stub/other",
                [&](Bytes& b) { b = stub_a; });
  EXPECT_THROW(client_->Download("target"), Error);
  EXPECT_THROW(client_->Download("other"), Error);
}

// ---------------------------------------------------------------------
// Concurrency: clients uploading in parallel against the same cluster.
// ---------------------------------------------------------------------
TEST(ConcurrencyTest, ParallelClientsShareDedupSafely) {
  ReedSystem system(FastSystem(888));
  constexpr int kClients = 4;
  std::vector<std::unique_ptr<client::ReedClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    std::string user = "c" + std::to_string(i);
    system.RegisterUser(user);
    ClientOptions opts;
    opts.rng_seed = 100 + i;
    opts.encryption_threads = 1;
    clients.push_back(system.CreateClient(user, opts));
  }
  // All clients upload the SAME content concurrently — the dedup index
  // must end up with exactly one copy, with no lost updates or crashes.
  DeterministicRng rng(14);
  Bytes shared_file = rng.Generate(256 * 1024);

  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      DiscardResult(clients[i]->Upload("shared-" + std::to_string(i),
                                       shared_file, {"c" + std::to_string(i)}));
    });
  }
  for (auto& t : threads) t.join();

  auto stats = system.TotalStats();
  EXPECT_EQ(stats.logical_chunks, stats.unique_chunks * kClients);
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(clients[i]->Download("shared-" + std::to_string(i)), shared_file);
  }
}

TEST(ConcurrencyTest, InterleavedUploadAndDownload) {
  ReedSystem system(FastSystem(999));
  system.RegisterUser("rw");
  ClientOptions opts;
  opts.rng_seed = 21;
  auto writer = system.CreateClient("rw", opts);
  auto reader = system.CreateClient("rw", opts);

  DeterministicRng rng(22);
  Bytes file = rng.Generate(128 * 1024);
  DiscardResult(writer->Upload("hot-file", file, {"rw"}));

  std::thread uploader([&] {
    for (int i = 0; i < 5; ++i) {
      DiscardResult(writer->Upload("hot-file-" + std::to_string(i), file,
                                   {"rw"}));
    }
  });
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(reader->Download("hot-file"), file);
  }
  uploader.join();
}

// ---------------------------------------------------------------------
// Upload edge cases.
// ---------------------------------------------------------------------
TEST(UploadEdgeCaseTest, EmptyFileRejected) {
  auto client = SharedSystem().CreateClient("prop", ClientOptions{});
  EXPECT_THROW(DiscardResult(client->Upload("empty", {}, {"prop"})), Error);
}

TEST(UploadEdgeCaseTest, ReuploadOverwritesMetadata) {
  ClientOptions opts;
  opts.rng_seed = 31;
  auto client = SharedSystem().CreateClient("prop", opts);
  DeterministicRng rng(32);
  Bytes v1 = rng.Generate(100 * 1024);
  Bytes v2 = rng.Generate(120 * 1024);
  DiscardResult(client->Upload("versioned", v1, {"prop"}));
  DiscardResult(client->Upload("versioned", v2, {"prop"}));
  EXPECT_EQ(client->Download("versioned"), v2);
}

TEST(UploadEdgeCaseTest, UploaderAlwaysInPolicy) {
  // Uploading with an empty/foreign authorized list still leaves the
  // uploader able to read their own file.
  ClientOptions opts;
  opts.rng_seed = 33;
  auto client = SharedSystem().CreateClient("prop", opts);
  DeterministicRng rng(34);
  Bytes file = rng.Generate(64 * 1024);
  DiscardResult(client->Upload("own-file", file, {}));
  EXPECT_EQ(client->Download("own-file"), file);
}

}  // namespace
}  // namespace reed
