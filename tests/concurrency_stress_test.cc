// Concurrency stress tests, written to run under ThreadSanitizer.
//
// These tests exist to give TSan (and ASan) interleavings to chew on:
// every shared component that the multi-threaded client/server paths use —
// ThreadPool, LruCache, TokenBucket, TcpServer — is hammered from many
// threads at once. Under TSan everything runs 5-15x slower, so iteration
// counts scale down when REED_TSAN is defined (set by the build when
// REED_SANITIZE=thread).

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/tcp.h"
#include "net/tcp_server.h"
#include "util/lru_cache.h"
#include "util/rate_limiter.h"
#include "util/thread_pool.h"
#include "util/bytes.h"

namespace reed {
namespace {

#ifdef REED_TSAN
constexpr int kScale = 1;
#else
constexpr int kScale = 8;
#endif

TEST(ThreadPoolStress, ConcurrentSubmitFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  const int kProducers = 8;
  const int kTasksPerProducer = 200 * kScale;

  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<void>>> futures(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futures[static_cast<std::size_t>(p)].reserve(
          static_cast<std::size_t>(kTasksPerProducer));
      for (int i = 0; i < kTasksPerProducer; ++i) {
        futures[static_cast<std::size_t>(p)].push_back(
            pool.Submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); }));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& fs : futures) {
    for (auto& f : fs) f.get();
  }
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kProducers) *
                            static_cast<std::uint64_t>(kTasksPerProducer));
}

TEST(ThreadPoolStress, ConcurrentParallelForCallers) {
  // Multiple threads issuing ParallelFor against the same pool, the way
  // several client uploads could share one chunk-encryption pool.
  ThreadPool pool(4);
  const int kCallers = 4;
  const std::size_t kCount = 512 * static_cast<std::size_t>(kScale);

  std::vector<std::thread> callers;
  std::vector<std::atomic<std::uint64_t>> totals(kCallers);
  for (auto& t : totals) t.store(0);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      auto& total = totals[static_cast<std::size_t>(c)];
      pool.ParallelFor(kCount, [&total](std::size_t i) {
        total.fetch_add(i + 1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : callers) t.join();
  const std::uint64_t expected = kCount * (kCount + 1) / 2;
  for (auto& t : totals) EXPECT_EQ(t.load(), expected);
}

TEST(ThreadPoolStress, ParallelForExceptionUnderContention) {
  ThreadPool pool(4);
  for (int round = 0; round < 4 * kScale; ++round) {
    EXPECT_THROW(
        pool.ParallelFor(256, [](std::size_t i) {
          if (i == 97) throw std::runtime_error("injected");
        }),
        std::runtime_error);
    // The pool must still be usable after a failed batch.
    std::atomic<int> ok{0};
    pool.ParallelFor(64, [&ok](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 64);
  }
}

TEST(LruCacheStress, MixedGetPutClearAcrossThreads) {
  // Small budget so evictions happen constantly while readers race them.
  LruCache<std::uint64_t, std::string> cache(/*byte_budget=*/64 * 32,
                                             /*entry_cost=*/32);
  const int kThreads = 8;
  const int kOpsPerThread = 2000 * kScale;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::uint64_t key = static_cast<std::uint64_t>((t * 31 + i) % 97);
        switch (i % 4) {
          case 0:
            cache.Put(key, "value-" + std::to_string(key));
            break;
          case 1: {
            auto v = cache.Get(key);
            if (v) EXPECT_EQ(*v, "value-" + std::to_string(key));
            break;
          }
          case 2:
            (void)cache.stats();
            (void)cache.used_bytes();
            break;
          default:
            if (i % 512 == 3) cache.Clear();
            (void)cache.size();
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) *
                static_cast<std::uint64_t>(kOpsPerThread / 4));
}

TEST(RateLimiterStress, ConcurrentAcquireNeverOverAdmits) {
  // Fixed clock: no refill happens, so total admissions across all threads
  // must not exceed the burst no matter how requests interleave.
  const double kBurst = 100.0;
  TokenBucket bucket(/*rate_per_sec=*/1.0, kBurst);
  std::atomic<int> admitted{0};
  const int kThreads = 8;
  const int kAttempts = 500 * kScale;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAttempts; ++i) {
        if (bucket.TryAcquire(/*now_seconds=*/1.0)) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
        (void)bucket.DelayUntilAvailable(/*now_seconds=*/1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(admitted.load(), static_cast<int>(kBurst));
  EXPECT_LT(bucket.tokens(), 1.0);
}

Bytes EchoRequest(int client, int seq) {
  std::string s = "client-" + std::to_string(client) + "-req-" +
                  std::to_string(seq);
  return Bytes(s.begin(), s.end());
}

TEST(TcpServerStress, ManyConcurrentClients) {
  std::atomic<std::uint64_t> served{0};
  net::TcpServer server(0, [&served](ByteSpan req) {
    served.fetch_add(1, std::memory_order_relaxed);
    return Bytes(req.begin(), req.end());  // echo
  });

  const int kClients = 8;
  const int kRequests = 50 * kScale;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        auto conn = net::TcpTransport::Connect("127.0.0.1", server.port());
        for (int i = 0; i < kRequests; ++i) {
          Bytes req = EchoRequest(c, i);
          conn.Send(req);
          Bytes resp = conn.Receive();
          if (resp != req) failures.fetch_add(1);
        }
      } catch (const net::NetError&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(served.load(), static_cast<std::uint64_t>(kClients) *
                               static_cast<std::uint64_t>(kRequests));
}

TEST(TcpServerStress, DestructionWithLiveConnections) {
  // Clients connect, make one call, then sit blocked in Receive() while the
  // server is destroyed. The old implementation detached session threads
  // here, leaving them to race the destroyed handler; the rewrite must shut
  // every session down and join it.
  for (int round = 0; round < 3 * kScale; ++round) {
    std::vector<std::thread> clients;
    std::atomic<int> disconnected{0};
    {
      auto server = std::make_unique<net::TcpServer>(0, [](ByteSpan req) {
        return Bytes(req.begin(), req.end());
      });
      std::atomic<int> ready{0};
      const int kClients = 4;
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, port = server->port()] {
          try {
            auto conn = net::TcpTransport::Connect("127.0.0.1", port);
            Bytes req{1, 2, 3};
            conn.Send(req);
            (void)conn.Receive();
            ready.fetch_add(1);
            (void)conn.Receive();  // blocks until the server dies
          } catch (const net::NetError&) {
          }
          disconnected.fetch_add(1);
        });
      }
      while (ready.load() < kClients) std::this_thread::yield();
      server.reset();  // must unblock and join every session
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(disconnected.load(), 4);
  }
}

TEST(TcpServerStress, ChurningClientsWhileServing) {
  // Connection churn: short-lived clients connecting/disconnecting while
  // others are mid-conversation exercises session reaping in the accept loop.
  net::TcpServer server(0, [](ByteSpan req) {
    return Bytes(req.begin(), req.end());
  });
  const int kChurners = 6;
  const int kConnectsEach = 20 * kScale;
  std::atomic<int> failures{0};
  std::vector<std::thread> churners;
  for (int c = 0; c < kChurners; ++c) {
    churners.emplace_back([&, c] {
      for (int i = 0; i < kConnectsEach; ++i) {
        try {
          auto conn = net::TcpTransport::Connect("127.0.0.1", server.port());
          Bytes req = EchoRequest(c, i);
          conn.Send(req);
          if (conn.Receive() != req) failures.fetch_add(1);
        } catch (const net::NetError&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : churners) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace reed
