// Crash-recovery harness (DESIGN.md §12, label "durability"): a child
// process runs a deterministic ingest workload against a durable
// StorageServer and is SIGKILLed — either at an armed fault site (the hook
// fires the kill exactly at the site, so the crash lands inside the
// lookup/append/insert compound) or on a timer. The parent then reopens the
// surviving store directory and asserts the crash contract:
//
//   * CheckConsistency holds (recovery reconciled both planes);
//   * every batch the child acknowledged BEFORE the kill re-downloads
//     byte-identical (SIGKILL preserves the page cache, so the kNone fsync
//     policy is the honest model of a process crash);
//   * the torn-write sweep: truncating or bit-flipping the WAL tail at
//     EVERY byte offset of the last record still recovers.
//
// Without -DREED_FAULT_INJECT=ON the armed sites compile to nothing: the
// child completes, and the parent still validates the full store — the
// suite degrades to a reopen test instead of skipping.
//
// On failure the surviving store directory and the scenario parameters are
// preserved under crash_artifacts/ (uploaded by the CI durability job).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "chunk/fingerprint.h"
#include "obs/metrics.h"
#include "server/storage_server.h"
#include "store/log_format.h"
#include "util/fault_inject.h"
#include "util/file_io.h"

namespace reed {
namespace {

using server::StorageServer;
using server::StoreId;

constexpr int kBatches = 12;
constexpr int kChunksPerBatch = 4;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// The deterministic workload both sides reconstruct independently.
Bytes ChunkBytes(int batch, int i) {
  const std::size_t n = 120 + static_cast<std::size_t>(i) * 17;
  Bytes out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = static_cast<std::uint8_t>(batch * 29 + i * 7 + k);
  }
  return out;
}

std::vector<std::pair<chunk::Fingerprint, Bytes>> Batch(int batch) {
  std::vector<std::pair<chunk::Fingerprint, Bytes>> chunks;
  for (int i = 0; i < kChunksPerBatch; ++i) {
    Bytes data = ChunkBytes(batch, i);
    chunks.emplace_back(chunk::Fingerprint::Of(ByteSpan(data)), data);
  }
  // Every batch re-uploads batch 0's first chunk: crashes must not corrupt
  // dedup state either.
  Bytes dup = ChunkBytes(0, 0);
  chunks.emplace_back(chunk::Fingerprint::Of(ByteSpan(dup)), dup);
  return chunks;
}

Bytes RecipeBytes(int batch) {
  Bytes out(48);
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = static_cast<std::uint8_t>(batch * 13 + k);
  }
  return out;
}

StorageServer::Options DurableOptions(const std::string& dir) {
  StorageServer::Options opts;
  opts.data_dir = dir;
  // SIGKILL keeps the page cache, so no-fsync is the honest (and fast)
  // policy for a process-crash test; kGrouped/kAlways model machine crashes.
  opts.durability.fsync_policy = store::FsyncPolicy::kNone;
  return opts;
}

// Fault hook for the child: die exactly where the armed site fired, before
// the FaultError unwind can run any cleanup.
void KillSelfAtSite(const char* /*site*/) { (void)raise(SIGKILL); }

// Child body (post-fork; must _exit, never return into gtest). Acks each
// completed batch by line number in <dir>.ack — written only AFTER the
// server call returned, so every acked batch is recoverable by contract.
[[noreturn]] void RunChildWorkload(const std::string& dir,
                                   const char* fault_site,
                                   std::uint64_t fault_nth) {
  // Force the registry's lazy init (which installs the fault-metrics fired
  // hook) BEFORE taking the hook over, or the first Metrics() call inside
  // StorageServer would silently replace the kill hook with the counter.
  (void)obs::Registry::Global();
  fault::SetFiredHook(&KillSelfAtSite);
  if (fault_site != nullptr) {
    fault::Arm(fault_site, fault::Policy::NthHit(fault_nth));
  }
  try {
    StorageServer server("crash-child", DurableOptions(dir));
    util::File ack = util::File::OpenAppend(dir + ".ack");
    for (int b = 0; b < kBatches; ++b) {
      (void)server.PutChunks(Batch(b));
      server.PutObject(StoreId::kData, "recipe/b" + std::to_string(b),
                       RecipeBytes(b));
      const std::string line = std::to_string(b) + "\n";
      ack.Append(ToBytes(line));
    }
  } catch (const Error&) {
    _exit(3);  // a thrown fault means the kill hook did not run
  }
  _exit(0);
}

std::set<int> ReadAckedBatches(const std::string& dir) {
  std::set<int> acked;
  if (!util::FileExists(dir + ".ack")) return acked;
  std::ifstream in(dir + ".ack");
  int b = 0;
  while (in >> b) acked.insert(b);
  return acked;
}

// Preserve the evidence for the CI artifact upload, with enough detail to
// replay the scenario by hand.
void PreserveArtifacts(const std::string& dir, const std::string& tag,
                       const std::string& why) {
  const std::string dest = "crash_artifacts/" + tag;
  std::error_code ec;
  std::filesystem::create_directories(dest);
  std::filesystem::copy(dir, dest + "/store",
                        std::filesystem::copy_options::recursive |
                            std::filesystem::copy_options::overwrite_existing,
                        ec);
  if (util::FileExists(dir + ".ack")) {
    std::filesystem::copy_file(
        dir + ".ack", dest + "/ack.log",
        std::filesystem::copy_options::overwrite_existing, ec);
  }
  std::ofstream note(dest + "/REPRO.txt");
  note << "crash_recovery_test scenario: " << tag << "\n"
       << "failure: " << why << "\n"
       << "workload: " << kBatches << " batches x " << kChunksPerBatch
       << "+1 chunks (deterministic, see ChunkBytes)\n";
}

// Reopen the survivor and check the crash contract for the acked batches.
// Returns "" on success, else the failure description (already preserved).
std::string ValidateSurvivor(const std::string& dir, const std::string& tag) {
  auto fail = [&](const std::string& why) {
    PreserveArtifacts(dir, tag, why);
    return why;
  };
  StorageServer server("crash-reopen", DurableOptions(dir));
  const auto report = server.CheckConsistency();
  if (!report.ok) return fail("CheckConsistency: " + report.detail);
  for (int b : ReadAckedBatches(dir)) {
    std::vector<chunk::Fingerprint> fps;
    std::vector<Bytes> want;
    for (const auto& [fp, data] : Batch(b)) {
      fps.push_back(fp);
      want.push_back(data);
    }
    std::vector<Bytes> got;
    try {
      got = server.GetChunks(fps);
    } catch (const Error& e) {
      return fail("acked batch " + std::to_string(b) +
                  " lost a chunk: " + e.what());
    }
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (got[i] != want[i]) {
        return fail("acked batch " + std::to_string(b) + " chunk " +
                    std::to_string(i) + " not byte-identical after reopen");
      }
    }
    const std::string name = "recipe/b" + std::to_string(b);
    if (!server.HasObject(StoreId::kData, name) ||
        server.GetObject(StoreId::kData, name) != RecipeBytes(b)) {
      return fail("acked object " + name + " wrong after reopen");
    }
  }
  // A second reopen of the repaired state must be a no-op repair.
  server.Reopen();
  if (!server.CheckConsistency().ok) {
    return fail("second reopen broke consistency");
  }
  return "";
}

void CleanupScenario(const std::string& dir) {
  std::filesystem::remove_all(dir);
  std::filesystem::remove(dir + ".ack");
}

struct KillScenario {
  const char* tag;
  const char* site;       // null = timed kill
  std::uint64_t nth;      // NthHit for sited kills, delay ms for timed
};

void RunKillScenario(const KillScenario& s) {
  const std::string dir = FreshDir(std::string("crash_") + s.tag);
  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    if (s.site != nullptr) {
      RunChildWorkload(dir, s.site, s.nth);
    } else {
      RunChildWorkload(dir, nullptr, 0);
    }
  }
  if (s.site == nullptr) {
    // Timed kill: land somewhere mid-workload, wherever the child got to.
    ::usleep(static_cast<useconds_t>(s.nth) * 1000);
    (void)::kill(pid, SIGKILL);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  const bool completed = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (!killed && !completed) {
    PreserveArtifacts(dir, s.tag, "child died unexpectedly");
    FAIL() << "scenario " << s.tag << ": child neither completed nor was "
           << "SIGKILLed (status " << status << ")";
  }
#if defined(REED_FAULT_INJECT)
  if (s.site != nullptr) {
    EXPECT_TRUE(killed) << "scenario " << s.tag
                        << ": armed site never fired; workload completed";
  }
#endif
  std::string failure = ValidateSurvivor(dir, s.tag);
  EXPECT_TRUE(failure.empty()) << "scenario " << s.tag << ": " << failure;
  if (failure.empty()) CleanupScenario(dir);
}

TEST(CrashRecoveryTest, KilledAtContainerAppend) {
  RunKillScenario({"container_append_1", "store.container.append", 1});
  RunKillScenario({"container_append_7", "store.container.append", 7});
}

TEST(CrashRecoveryTest, KilledAtIndexInsert) {
  RunKillScenario({"index_insert_1", "store.index.insert", 1});
  RunKillScenario({"index_insert_7", "store.index.insert", 7});
}

TEST(CrashRecoveryTest, KilledAtObjectPut) {
  RunKillScenario({"object_put_1", "store.object.put", 1});
  RunKillScenario({"object_put_5", "store.object.put", 5});
}

TEST(CrashRecoveryTest, KilledMidIngestCompound) {
  RunKillScenario({"ingest_chunk_1", "server.ingest.chunk", 1});
  RunKillScenario({"ingest_chunk_13", "server.ingest.chunk", 13});
}

TEST(CrashRecoveryTest, TimedKills) {
  RunKillScenario({"timed_5ms", nullptr, 5});
  RunKillScenario({"timed_20ms", nullptr, 20});
  RunKillScenario({"timed_60ms", nullptr, 60});
}

// ---------------------------------------------------------------------------
// Torn-write sweep: build a pristine store in-process, then attack the WAL
// tail — truncate at EVERY byte offset of the last record, and flip every
// byte of it — and require recovery (plus full consistency) each time.
// ---------------------------------------------------------------------------

struct TailSweepSetup {
  std::string pristine;
  std::size_t last_record_start = 0;
  std::size_t wal_size = 0;
};

TailSweepSetup BuildPristineStore() {
  TailSweepSetup setup;
  setup.pristine = FreshDir("torn_pristine");
  {
    StorageServer server("torn-setup", DurableOptions(setup.pristine));
    for (int b = 0; b < 3; ++b) {
      (void)server.PutChunks(Batch(b));
      server.PutObject(StoreId::kData, "recipe/b" + std::to_string(b),
                       RecipeBytes(b));
    }
    // Destroying the server closes the log descriptors cleanly (no
    // checkpoint: the WAL must stay populated for the sweep).
  }
  Bytes wal = util::ReadFileBytes(setup.pristine + "/wal.log");
  setup.wal_size = wal.size();
  std::size_t offset = 0;
  while (offset < wal.size()) {
    auto scan = store::ScanRecord(wal, offset);
    if (scan.status != store::ScanStatus::kRecord) break;
    setup.last_record_start = offset;
    offset += scan.record.encoded_size;
  }
  return setup;
}

std::string CloneStore(const TailSweepSetup& setup, const std::string& name) {
  const std::string dir = FreshDir(name);
  std::filesystem::copy(setup.pristine, dir,
                        std::filesystem::copy_options::recursive);
  return dir;
}

TEST(TornWalTailTest, RecoversAtEveryTruncationOffset) {
  TailSweepSetup setup = BuildPristineStore();
  ASSERT_GT(setup.wal_size, setup.last_record_start);
  const std::string work = ::testing::TempDir() + "/torn_truncate";
  for (std::size_t cut = setup.last_record_start; cut < setup.wal_size;
       ++cut) {
    std::filesystem::remove_all(work);
    std::filesystem::copy(setup.pristine, work,
                          std::filesystem::copy_options::recursive);
    {
      util::File f = util::File::OpenAppend(work + "/wal.log");
      f.Truncate(cut);
    }
    StorageServer server("torn-reopen", DurableOptions(work));
    const auto report = server.CheckConsistency();
    if (!report.ok) {
      PreserveArtifacts(work, "torn_cut_" + std::to_string(cut),
                        report.detail);
    }
    ASSERT_TRUE(report.ok)
        << "truncation at byte " << cut << ": " << report.detail;
    if (cut > setup.last_record_start) {
      EXPECT_GT(server.RecoveryStats().discarded_tail, 0u)
          << "torn tail at byte " << cut << " was not counted";
    }
  }
  std::filesystem::remove_all(work);
  std::filesystem::remove_all(setup.pristine);
}

TEST(TornWalTailTest, RecoversWithEveryByteOfLastRecordFlipped) {
  TailSweepSetup setup = BuildPristineStore();
  const std::string work = ::testing::TempDir() + "/torn_flip";
  for (std::size_t pos = setup.last_record_start; pos < setup.wal_size;
       ++pos) {
    std::filesystem::remove_all(work);
    std::filesystem::copy(setup.pristine, work,
                          std::filesystem::copy_options::recursive);
    {
      Bytes wal = util::ReadFileBytes(work + "/wal.log");
      wal[pos] ^= 0x41;
      util::File f = util::File::OpenAppend(work + "/wal.log");
      f.Truncate(0);
      f.Append(wal);
    }
    StorageServer server("flip-reopen", DurableOptions(work));
    const auto report = server.CheckConsistency();
    if (!report.ok) {
      PreserveArtifacts(work, "flip_at_" + std::to_string(pos),
                        report.detail);
    }
    ASSERT_TRUE(report.ok)
        << "bit flip at byte " << pos << ": " << report.detail;
  }
  std::filesystem::remove_all(work);
  std::filesystem::remove_all(setup.pristine);
}

}  // namespace
}  // namespace reed
