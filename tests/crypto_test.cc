// Crypto substrate tests: FIPS/RFC vectors pin each primitive, then
// property-style suites exercise round-trips and streaming edge cases.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/random.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace reed::crypto {
namespace {

// --------------------------- SHA-256 ---------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexEncode(Sha256::HashToBytes({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexEncode(Sha256::HashToBytes(ToBytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      HexEncode(Sha256::HashToBytes(ToBytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  Sha256Digest d = h.Finish();
  EXPECT_EQ(HexEncode(ByteSpan(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShotAtAllSplitPoints) {
  Bytes msg(300);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::uint8_t>(i * 7);
  Sha256Digest want = Sha256::Hash(msg);
  for (std::size_t split = 0; split <= msg.size(); split += 13) {
    Sha256 h;
    h.Update(ByteSpan(msg.data(), split));
    h.Update(ByteSpan(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.Finish(), want) << "split=" << split;
  }
}

TEST(Sha256Test, FinishResetsForReuse) {
  Sha256 h;
  h.Update(ToBytes("abc"));
  Sha256Digest first = h.Finish();
  h.Update(ToBytes("abc"));
  EXPECT_EQ(h.Finish(), first);
}

// Lengths straddling the padding boundary (55/56/57 and 63/64/65 bytes).
class Sha256PaddingTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256PaddingTest, PaddingBoundaryConsistency) {
  std::size_t len = GetParam();
  Bytes msg(len, 0xAB);
  Sha256Digest one_shot = Sha256::Hash(msg);
  Sha256 h;
  for (std::size_t i = 0; i < len; ++i) h.Update(ByteSpan(&msg[i], 1));
  EXPECT_EQ(h.Finish(), one_shot);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Sha256PaddingTest,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 121, 127, 128, 129));

// --------------------------- HMAC / HKDF ---------------------------

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Sha256Digest mac = HmacSha256(key, ToBytes("Hi There"));
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Sha256Digest mac =
      HmacSha256(ToBytes("Jefe"), ToBytes("what do ya want for nothing?"));
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  Bytes long_key(131, 0xaa);
  // RFC 4231 test case 6.
  Sha256Digest mac = HmacSha256(
      long_key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = HexDecode("000102030405060708090a0b0c");
  Bytes info = HexDecode("f0f1f2f3f4f5f6f7f8f9");
  Bytes okm = HkdfSha256(ikm, salt, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, DifferentLabelsGiveIndependentKeys) {
  Bytes ikm = ToBytes("master secret material");
  Bytes a = DeriveKey32(ikm, "reed/file-key");
  Bytes b = DeriveKey32(ikm, "reed/stub-key");
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(b.size(), 32u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, DeriveKey32(ikm, "reed/file-key"));  // deterministic
}

TEST(HkdfTest, RejectsOversizedRequest) {
  EXPECT_THROW(HkdfSha256(ToBytes("x"), {}, {}, 255 * 32 + 1), Error);
}

// --------------------------- AES-256 ---------------------------

TEST(Aes256Test, Fips197AppendixC3) {
  Bytes key = HexDecode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes pt = HexDecode("00112233445566778899aabbccddeeff");
  Aes256 aes(key);
  std::uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ct), "8ea2b7ca516745bfeafc49904b496089");
  std::uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(HexEncode(back), HexEncode(pt));
}

TEST(Aes256Test, Sp800_38aEcbVector) {
  Bytes key = HexDecode(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  Bytes pt = HexDecode("6bc1bee22e409f96e93d7e117393172a");
  Aes256 aes(key);
  std::uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ct), "f3eed1bdb5d2a03c064b5a7e3db181f8");
}

TEST(Aes256Test, RejectsWrongKeySize) {
  Bytes short_key(16, 0);
  EXPECT_THROW(Aes256 aes(short_key), Error);
}

TEST(AesCtrTest, Sp800_38aCtrVectors) {
  Bytes key = HexDecode(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  Bytes iv = HexDecode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes pt = HexDecode(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  Bytes ct = AesCtrEncrypt(key, iv, pt);
  EXPECT_EQ(HexEncode(ct),
            "601ec313775789a5b7a7f504bbf3d228"
            "f443e3ca4d62b59aca84e990cacaf5c5");
}

TEST(AesCtrTest, RoundTripArbitraryLengths) {
  DeterministicRng rng(42);
  Bytes key = rng.Generate(32);
  Bytes iv = rng.Generate(16);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 4096u, 10000u}) {
    Bytes pt = rng.Generate(len);
    Bytes ct = AesCtrEncrypt(key, iv, pt);
    EXPECT_EQ(ct.size(), len);
    EXPECT_EQ(AesCtrDecrypt(key, iv, ct), pt);
    if (len >= 16) {
      EXPECT_NE(ct, pt);
    }
  }
}

TEST(AesCtrTest, StreamingMatchesOneShot) {
  DeterministicRng rng(7);
  Bytes key = rng.Generate(32);
  Bytes iv = rng.Generate(16);
  Bytes data = rng.Generate(1000);
  Bytes whole = AesCtrEncrypt(key, iv, data);

  Bytes pieces = data;
  AesCtr ctr(key, iv);
  ctr.Process(MutableByteSpan(pieces.data(), 37));
  ctr.Process(MutableByteSpan(pieces.data() + 37, 500));
  ctr.Process(MutableByteSpan(pieces.data() + 537, 463));
  EXPECT_EQ(pieces, whole);
}

TEST(AesCtrTest, CounterCarriesAcrossByteBoundaries) {
  // An IV of all 0xFF forces a carry through the whole counter on the
  // second block; decryption must still round-trip.
  Bytes key(32, 0x11);
  Bytes iv(16, 0xFF);
  Bytes pt(64, 0x5a);
  Bytes ct = AesCtrEncrypt(key, iv, pt);
  EXPECT_EQ(AesCtrDecrypt(key, iv, ct), pt);
}

TEST(AesCbcTest, RoundTripWithPadding) {
  DeterministicRng rng(9);
  Bytes key = rng.Generate(32);
  Bytes iv = rng.Generate(16);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 1000u}) {
    Bytes pt = rng.Generate(len);
    Bytes ct = AesCbcEncrypt(key, iv, pt);
    EXPECT_EQ(ct.size() % 16, 0u);
    EXPECT_GT(ct.size(), pt.size());  // PKCS#7 always pads
    EXPECT_EQ(AesCbcDecrypt(key, iv, ct), pt);
  }
}

TEST(AesCbcTest, TamperedCiphertextFailsPaddingOrDiffers) {
  DeterministicRng rng(10);
  Bytes key = rng.Generate(32);
  Bytes iv = rng.Generate(16);
  Bytes pt = rng.Generate(100);
  Bytes ct = AesCbcEncrypt(key, iv, pt);
  ct[3] ^= 0x80;
  bool detected;
  try {
    detected = AesCbcDecrypt(key, iv, ct) != pt;
  } catch (const Error&) {
    detected = true;
  }
  EXPECT_TRUE(detected);
}

TEST(AesCbcTest, RejectsUnalignedCiphertext) {
  Bytes key(32, 1), iv(16, 2), ct(17, 3);
  EXPECT_THROW(AesCbcDecrypt(key, iv, ct), Error);
}

// --------------------------- ChaCha20 / RNG ---------------------------

TEST(ChaCha20Test, Rfc7539BlockFunction) {
  std::uint32_t state[16];
  state[0] = 0x61707865; state[1] = 0x3320646e;
  state[2] = 0x79622d32; state[3] = 0x6b206574;
  Bytes key = HexDecode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = static_cast<std::uint32_t>(key[4 * i]) |
                   (static_cast<std::uint32_t>(key[4 * i + 1]) << 8) |
                   (static_cast<std::uint32_t>(key[4 * i + 2]) << 16) |
                   (static_cast<std::uint32_t>(key[4 * i + 3]) << 24);
  }
  state[12] = 1;           // block counter
  state[13] = 0x09000000;  // nonce 000000090000004a00000000, LE words
  state[14] = 0x4a000000;
  state[15] = 0x00000000;
  std::uint8_t out[64];
  ChaCha20Block(state, out);
  EXPECT_EQ(HexEncode(ByteSpan(out, 16)), "10f1e7e4d13b5915500fdd1fa32071c4");
}

TEST(RngTest, DeterministicRngIsReproducible) {
  DeterministicRng a(123), b(123), c(124);
  Bytes x = a.Generate(64), y = b.Generate(64), z = c.Generate(64);
  EXPECT_EQ(x, y);
  EXPECT_NE(x, z);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  DeterministicRng parent(5);
  ChaChaRng f1 = parent.Fork(1);
  ChaChaRng f2 = parent.Fork(2);
  EXPECT_NE(f1.Generate(32), f2.Generate(32));
  // Forking again with the same id reproduces the same stream.
  ChaChaRng f1b = parent.Fork(1);
  ChaChaRng f1c = parent.Fork(1);
  EXPECT_EQ(f1b.Generate(32), f1c.Generate(32));
}

TEST(RngTest, UniformRespectsBound) {
  DeterministicRng rng(77);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  EXPECT_THROW(DiscardResult(rng.Uniform(0)), Error);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  DeterministicRng rng(78);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, SecureRandomProducesDistinctBuffers) {
  Bytes a = SecureRandom::Generate(32);
  Bytes b = SecureRandom::Generate(32);
  EXPECT_NE(a, b);
}

// Statistical smoke test: byte histogram of the DRBG should be roughly flat.
TEST(RngTest, ByteHistogramRoughlyUniform) {
  DeterministicRng rng(99);
  Bytes data = rng.Generate(256 * 1024);
  std::array<int, 256> hist{};
  for (std::uint8_t b : data) ++hist[b];
  double expected = static_cast<double>(data.size()) / 256.0;
  for (int count : hist) {
    EXPECT_GT(count, expected * 0.8);
    EXPECT_LT(count, expected * 1.2);
  }
}

}  // namespace
}  // namespace reed::crypto
