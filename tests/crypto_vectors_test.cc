// Second battery of official test vectors pinning the crypto substrate:
// NIST SP 800-38A (AES-256 ECB/CBC/CTR full four-block sets), FIPS 180-4
// (SHA-256 two-block message), RFC 4231 (HMAC-SHA256 cases 3/4/7).
// The primary vectors live in crypto_test.cc; this file widens coverage to
// every block of the NIST sets so a subtle chaining bug cannot hide.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace reed::crypto {
namespace {

const char* kSp800Key =
    "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4";

// The four SP 800-38A plaintext blocks shared by all mode tests.
const char* kNistPt[4] = {
    "6bc1bee22e409f96e93d7e117393172a",
    "ae2d8a571e03ac9c9eb76fac45af8e51",
    "30c81c46a35ce411e5fbc1191a0a52ef",
    "f69f2445df4f9b17ad2b417be66c3710",
};

TEST(NistVectorTest, Aes256EcbAllFourBlocks) {
  const char* expect[4] = {
      "f3eed1bdb5d2a03c064b5a7e3db181f8",
      "591ccb10d410ed26dc5ba74a31362870",
      "b6ed21b99ca6f4f9f153e7b1beafed1d",
      "23304b7a39f9f3ff067d8d8f9e24ecc7",
  };
  Aes256 aes(HexDecode(kSp800Key));
  for (int i = 0; i < 4; ++i) {
    Bytes pt = HexDecode(kNistPt[i]);
    std::uint8_t ct[16];
    aes.EncryptBlock(pt.data(), ct);
    EXPECT_EQ(HexEncode(ct), expect[i]) << "block " << i;
    std::uint8_t back[16];
    aes.DecryptBlock(ct, back);
    EXPECT_EQ(HexEncode(back), kNistPt[i]) << "block " << i;
  }
}

TEST(NistVectorTest, Aes256CtrAllFourBlocks) {
  // SP 800-38A F.5.5/F.5.6.
  Bytes key = HexDecode(kSp800Key);
  Bytes iv = HexDecode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes pt;
  for (const char* block : kNistPt) Append(pt, HexDecode(block));
  Bytes ct = AesCtrEncrypt(key, iv, pt);
  EXPECT_EQ(HexEncode(ct),
            "601ec313775789a5b7a7f504bbf3d228"
            "f443e3ca4d62b59aca84e990cacaf5c5"
            "2b0930daa23de94ce87017ba2d84988d"
            "dfc9c58db67aada613c2dd08457941a6");
  EXPECT_EQ(AesCtrDecrypt(key, iv, ct), pt);
}

TEST(NistVectorTest, Aes256CbcFirstBlock) {
  // SP 800-38A F.2.5 (first block; later blocks chain through our PKCS#7
  // framing, so we check the prefix of the padded ciphertext).
  Bytes key = HexDecode(kSp800Key);
  Bytes iv = HexDecode("000102030405060708090a0b0c0d0e0f");
  Bytes ct = AesCbcEncrypt(key, iv, HexDecode(kNistPt[0]));
  ASSERT_GE(ct.size(), 16u);
  EXPECT_EQ(HexEncode(ByteSpan(ct.data(), 16)),
            "f58c4c04d6e5f1ba779eabfb5f7bfbd6");
}

TEST(FipsVectorTest, Sha256FourBlockMessage) {
  // FIPS 180-4 / NIST example: 896-bit message.
  EXPECT_EQ(
      HexEncode(Sha256::HashToBytes(ToBytes(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
          "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Rfc4231Test, Case3LongRepeatedData) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  Sha256Digest mac = HmacSha256(key, data);
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Rfc4231Test, Case4CombinedKeyData) {
  Bytes key = HexDecode("0102030405060708090a0b0c0d0e0f10111213141516171819");
  Bytes data(50, 0xcd);
  Sha256Digest mac = HmacSha256(key, data);
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(Rfc4231Test, Case7LargeKeyAndData) {
  Bytes key(131, 0xaa);
  Sha256Digest mac = HmacSha256(
      key, ToBytes("This is a test using a larger than block-size key and a "
                   "larger than block-size data. The key needs to be hashed "
                   "before being used by the HMAC algorithm."));
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

// Cross-mode consistency: CTR with a zero IV equals ECB of successive
// counter blocks XORed in — a structural check on the counter layout.
TEST(ModeConsistencyTest, CtrKeystreamMatchesEcbOfCounters) {
  Bytes key = HexDecode(kSp800Key);
  Bytes iv(16, 0);
  AesCtr ctr(key, iv);
  Bytes stream(48);
  ctr.Keystream(stream);

  Aes256 aes(key);
  for (int block = 0; block < 3; ++block) {
    std::uint8_t counter[16] = {0};
    counter[15] = static_cast<std::uint8_t>(block);
    std::uint8_t expect[16];
    aes.EncryptBlock(counter, expect);
    EXPECT_EQ(HexEncode(ByteSpan(stream.data() + 16 * block, 16)),
              HexEncode(expect))
        << "block " << block;
  }
}

}  // namespace
}  // namespace reed::crypto
