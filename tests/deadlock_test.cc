// Tests for the REED_DEADLOCK_DETECT runtime: lock-order cycle detection
// (an AB/BA interleaving is reported even though this schedule never
// deadlocks), rank-order enforcement, the clean-nesting negative case, and
// the wait/held histograms the detector feeds through the obs registry.
//
// The whole suite is compiled against the public headers in every build
// mode but the assertions only run when the detector is compiled in
// (-DREED_DEADLOCK_DETECT=ON); otherwise each test GTEST_SKIPs.
#include <gtest/gtest.h>

#include "util/thread_annotations.h"

#if defined(REED_DEADLOCK_DETECT)

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/deadlock.h"
#include "util/lock_rank.h"

namespace {

// The capture handler is a raw function pointer, so captured reports live in
// heap-leaked static storage. Reports in these tests are always emitted from
// the thread the test controls, so no synchronization is needed.
std::vector<std::string>& CapturedReports() {
  static auto* reports = new std::vector<std::string>();
  return *reports;
}

void CaptureReport(const std::string& report) {
  CapturedReports().push_back(report);
}

class DeadlockDetectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CapturedReports().clear();
    reed::lockdiag::SetReportHandlerForTest(&CaptureReport);
  }
  // Restore the default abort-on-report handler so a genuine ordering bug in
  // a later test binary section fails loudly instead of silently appending.
  void TearDown() override {
    reed::lockdiag::SetReportHandlerForTest(nullptr);
  }
};

TEST_F(DeadlockDetectTest, AbBaCycleReported) {
  // Unranked locks: the rank check is skipped, so any report here comes
  // from the acquired-after graph alone.
  reed::Mutex a;
  reed::Mutex b;

  // Thread 1 records the edge a -> b, then fully releases. No deadlock ever
  // materializes in this schedule.
  std::thread t([&] {
    reed::MutexLock hold_a(a);
    reed::MutexLock hold_b(b);
  });
  t.join();
  ASSERT_TRUE(CapturedReports().empty());

  // The opposite order b -> a closes the cycle; the detector must report it
  // at acquisition time even though both locks are currently free.
  {
    reed::MutexLock hold_b(b);
    reed::MutexLock hold_a(a);
  }

  ASSERT_EQ(CapturedReports().size(), 1u);
  const std::string& report = CapturedReports()[0];
  EXPECT_NE(report.find("lock-order cycle"), std::string::npos) << report;
  // The report carries both acquisition sites: the current one and the
  // recorded site of the conflicting prior edge — all in this file.
  EXPECT_NE(report.find("deadlock_test.cc"), std::string::npos) << report;
  EXPECT_NE(report.find("conflicting prior ordering"), std::string::npos)
      << report;
}

TEST_F(DeadlockDetectTest, RankViolationReported) {
  reed::Mutex shard(reed::LockRank::kStoreShard);     // rank 200
  reed::Mutex ingest(reed::LockRank::kServerIngest);  // rank 110

  {
    reed::MutexLock hold_shard(shard);
    reed::MutexLock hold_ingest(ingest);  // 110 <= 200: out of order
  }

  ASSERT_EQ(CapturedReports().size(), 1u);
  const std::string& report = CapturedReports()[0];
  EXPECT_NE(report.find("lock rank violation"), std::string::npos) << report;
  EXPECT_NE(report.find("store.shard"), std::string::npos) << report;
  EXPECT_NE(report.find("server.ingest"), std::string::npos) << report;
}

TEST_F(DeadlockDetectTest, EqualRankReported) {
  // Two stripes of the same rank must never nest: equal rank is a
  // violation, not a tie-break.
  reed::Mutex stripe_a(reed::LockRank::kStoreShard);
  reed::Mutex stripe_b(reed::LockRank::kStoreShard);

  {
    reed::MutexLock hold_a(stripe_a);
    reed::MutexLock hold_b(stripe_b);
  }

  ASSERT_EQ(CapturedReports().size(), 1u);
  EXPECT_NE(CapturedReports()[0].find("lock rank violation"),
            std::string::npos);
}

TEST_F(DeadlockDetectTest, CleanNestingNotReported) {
  reed::Mutex ingest(reed::LockRank::kServerIngest);   // 110
  reed::Mutex shard(reed::LockRank::kStoreShard);      // 200
  reed::SharedMutex container(reed::LockRank::kStoreContainer);  // 210

  // Strictly increasing rank order, from two threads, repeatedly: the
  // sanctioned ingest -> index/container nesting from the server data path.
  auto worker = [&] {
    for (int i = 0; i < 8; ++i) {
      reed::MutexLock hold_ingest(ingest);
      reed::MutexLock hold_shard(shard);
      reed::WriterMutexLock hold_container(container);
    }
  };
  std::thread t1(worker);
  std::thread t2(worker);
  t1.join();
  t2.join();

  EXPECT_TRUE(CapturedReports().empty())
      << "unexpected report:\n"
      << CapturedReports()[0];
}

TEST_F(DeadlockDetectTest, WaitAndHeldHistogramsRecorded) {
  // Registry::Global() installs the lockdiag profiler on first use; every
  // ranked acquisition after that lands in lock.<rank>.{wait,held}_us.
  auto& registry = reed::obs::Registry::Global();

  reed::Mutex shard(reed::LockRank::kStoreShard);
  {
    reed::MutexLock hold(shard);
  }

  const auto snapshot = registry.TakeSnapshot();
  const auto* held = snapshot.FindHistogram("lock.store.shard.held_us");
  const auto* wait = snapshot.FindHistogram("lock.store.shard.wait_us");
  ASSERT_NE(held, nullptr);
  ASSERT_NE(wait, nullptr);
  EXPECT_GT(held->count, 0u);
  EXPECT_GT(wait->count, 0u);
}

}  // namespace

#else  // !REED_DEADLOCK_DETECT

TEST(DeadlockDetectTest, RequiresDetectBuild) {
  GTEST_SKIP() << "build with -DREED_DEADLOCK_DETECT=ON to run the lock "
                  "diagnostics tests";
}

#endif  // REED_DEADLOCK_DETECT
