// Durable storage engine (DESIGN.md §12): record framing, WAL tail
// truncation, group commit, segment sealing, checkpointing, and full
// crash-shaped recovery through DurableEngine and StorageServer::Reopen.
// The SIGKILL-under-fault variants live in crash_recovery_test.cc; this
// suite covers the same machinery in-process at quick-tier speed.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "chunk/fingerprint.h"
#include "server/storage_server.h"
#include "store/durable_engine.h"
#include "store/log_format.h"
#include "store/segment_log.h"
#include "store/store_error.h"
#include "store/wal.h"
#include "util/crc32.h"
#include "util/file_io.h"

namespace reed {
namespace {

using server::StorageServer;
using server::StoreId;
using store::ChunkLocation;
using store::DurabilityOptions;
using store::RecordType;
using store::RecordView;
using store::StoreError;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Bytes Pattern(std::size_t n, std::uint8_t salt) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>((i * 31 + salt) & 0xFF);
  }
  return out;
}

chunk::Fingerprint FpOf(const Bytes& data) {
  return chunk::Fingerprint::Of(ByteSpan(data));
}

TEST(Crc32Test, SeedChainingMatchesConcatenation) {
  Bytes a = Pattern(100, 1);
  Bytes b = Pattern(57, 2);
  Bytes ab = a;
  ab.insert(ab.end(), b.begin(), b.end());
  EXPECT_EQ(util::Crc32(ab), util::Crc32(b, util::Crc32(a)));
  EXPECT_NE(util::Crc32(a), util::Crc32(b));
  EXPECT_EQ(util::Crc32(ByteSpan()), 0u);
}

TEST(LogFormatTest, RecordRoundtripAllTypes) {
  Bytes buf;
  store::AppendRecord(buf, RecordType::kIndexInsert,
                      store::EncodeIndexInsert(
                          {FpOf(Pattern(8, 3)), ChunkLocation{1, 2, 3}}));
  store::AppendRecord(buf, RecordType::kObjectPut,
                      store::EncodeObjectPut({1, "stub/f1", Pattern(20, 4)}));
  store::AppendRecord(buf, RecordType::kSegmentAppend,
                      store::EncodeSegmentAppend({7, 40, Pattern(16, 5)}));

  std::size_t offset = 0;
  RecordView r1 = store::DecodeRecord(buf, offset);
  EXPECT_EQ(r1.type, RecordType::kIndexInsert);
  store::IndexInsertRecord ins = store::DecodeIndexInsert(r1.payload);
  EXPECT_EQ(ins.fp, FpOf(Pattern(8, 3)));
  EXPECT_EQ(ins.loc, (ChunkLocation{1, 2, 3}));
  offset += r1.encoded_size;

  RecordView r2 = store::DecodeRecord(buf, offset);
  store::ObjectPutRecord put = store::DecodeObjectPut(r2.payload);
  EXPECT_EQ(put.store_tag, 1);
  EXPECT_EQ(put.name, "stub/f1");
  EXPECT_EQ(put.value, Pattern(20, 4));
  offset += r2.encoded_size;

  RecordView r3 = store::DecodeRecord(buf, offset);
  store::SegmentAppendRecord app = store::DecodeSegmentAppend(r3.payload);
  EXPECT_EQ(app.container_id, 7u);
  EXPECT_EQ(app.offset, 40u);
  EXPECT_EQ(Bytes(app.data.begin(), app.data.end()), Pattern(16, 5));
  EXPECT_EQ(offset + r3.encoded_size, buf.size());
}

TEST(LogFormatTest, ScanDetectsTornTailAtEveryTruncationOffset) {
  Bytes buf;
  store::AppendRecord(buf, RecordType::kIndexErase,
                      store::EncodeIndexErase({FpOf(Pattern(4, 6))}));
  const std::size_t first = buf.size();
  store::AppendRecord(buf, RecordType::kObjectErase,
                      store::EncodeObjectErase({0, "recipe/f2"}));

  // Whole buffer scans clean.
  auto full = store::ScanRecord(buf, first);
  ASSERT_EQ(full.status, store::ScanStatus::kRecord);
  EXPECT_EQ(store::ScanRecord(buf, first + full.record.encoded_size).status,
            store::ScanStatus::kEnd);

  // Every proper prefix of the second record is torn, never fatal.
  for (std::size_t cut = first; cut < buf.size(); ++cut) {
    Bytes torn(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(cut));
    auto r = store::ScanRecord(torn, first);
    if (cut == first) {
      EXPECT_EQ(r.status, store::ScanStatus::kEnd);
    } else {
      EXPECT_EQ(r.status, store::ScanStatus::kTorn) << "cut at " << cut;
    }
  }

  // A bit flip anywhere in the record is torn too (CRC or magic breaks) —
  // except inside the length field, where a larger forged length reads as
  // an incomplete (also torn) record and a smaller one misframes into a
  // CRC mismatch. All of them must scan as kTorn, never decode garbage.
  for (std::size_t i = first; i < buf.size(); ++i) {
    Bytes flipped = buf;
    flipped[i] ^= 0x20;
    auto r = store::ScanRecord(flipped, first);
    EXPECT_EQ(r.status, store::ScanStatus::kTorn) << "flip at " << i;
  }
}

TEST(LogFormatTest, StrictDecodeThrowsTyped) {
  Bytes buf;
  store::AppendRecord(buf, RecordType::kObjectPut,
                      store::EncodeObjectPut({0, "x", Pattern(4, 7)}));
  buf.back() ^= 0xFF;  // break the CRC
  EXPECT_THROW((void)store::DecodeRecord(buf, 0), StoreError);
  EXPECT_THROW((void)store::DecodeRecord(Bytes{0x52}, 0), StoreError);
  EXPECT_THROW((void)store::DecodeIndexInsert(ByteSpan()), StoreError);
}

TEST(WalTest, RecoversValidPrefixAndTruncatesTornTail) {
  const std::string dir = FreshDir("wal_torn");
  util::CreateDirectories(dir);
  const std::string path = dir + "/wal.log";
  {
    store::Wal wal(path, DurabilityOptions{});
    EXPECT_EQ(wal.Append(RecordType::kIndexErase,
                         store::EncodeIndexErase({FpOf(Pattern(4, 8))})),
              1u);
    EXPECT_EQ(wal.Append(RecordType::kObjectErase,
                         store::EncodeObjectErase({0, "a"})),
              2u);
    wal.CommitAll();
  }
  // Simulate a torn write: append half a record's worth of garbage.
  {
    util::File f = util::File::OpenAppend(path);
    Bytes garbage = {0x52, 0x45, 0x44, 0x31, 0x02};  // magic + type, no more
    f.Append(garbage);
  }
  const std::uint64_t dirty_size = util::File::OpenRead(path).Size();
  store::Wal wal(path, DurabilityOptions{});
  EXPECT_EQ(wal.torn_tail_bytes(), 5u);
  EXPECT_EQ(util::File::OpenRead(path).Size(), dirty_size - 5);
  // Both records survive in the recovered buffer, in order.
  std::size_t offset = 0;
  RecordView r1 = store::DecodeRecord(wal.recovered(), offset);
  EXPECT_EQ(r1.type, RecordType::kIndexErase);
  offset += r1.encoded_size;
  RecordView r2 = store::DecodeRecord(wal.recovered(), offset);
  EXPECT_EQ(r2.type, RecordType::kObjectErase);
  EXPECT_EQ(offset + r2.encoded_size, wal.recovered().size());
  // New appends continue after the truncated tail with fresh LSNs.
  EXPECT_EQ(wal.Append(RecordType::kObjectErase,
                       store::EncodeObjectErase({0, "b"})),
            1u);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, GroupCommitMakesAppendsDurableUnderEveryPolicy) {
  for (store::FsyncPolicy policy :
       {store::FsyncPolicy::kNone, store::FsyncPolicy::kGrouped,
        store::FsyncPolicy::kAlways}) {
    const std::string dir = FreshDir("wal_commit");
    util::CreateDirectories(dir);
    DurabilityOptions opts;
    opts.fsync_policy = policy;
    opts.group_commit_window = std::chrono::microseconds(100);
    store::Wal wal(dir + "/wal.log", opts);
    std::uint64_t last = 0;
    for (int i = 0; i < 16; ++i) {
      last = wal.Append(RecordType::kObjectErase,
                        store::EncodeObjectErase({0, std::to_string(i)}));
    }
    wal.Commit(last);
    wal.CommitAll();  // idempotent
    store::Wal reopened(dir + "/wal.log", opts);
    EXPECT_EQ(reopened.torn_tail_bytes(), 0u);
    std::size_t offset = 0, records = 0;
    while (offset < reopened.recovered().size()) {
      offset += store::DecodeRecord(reopened.recovered(), offset).encoded_size;
      ++records;
    }
    EXPECT_EQ(records, 16u);
    std::filesystem::remove_all(dir);
  }
}

// The harness every engine test drives: the same four stores StorageServer
// bundles, attached to a fresh engine over one directory.
struct EngineFixture {
  explicit EngineFixture(const std::string& dir,
                         std::size_t container_capacity = 256)
      : engine(dir, DurabilityOptions{}),
        containers(container_capacity, &engine.segments()),
        index(&engine.wal()),
        data_objects(&engine.wal(), store::kDataStoreTag),
        key_objects(&engine.wal(), store::kKeyStoreTag) {
    engine.Recover(containers, index, data_objects, key_objects);
  }

  store::DurableEngine engine;
  store::ContainerStore containers;
  store::FingerprintIndex index;
  store::ObjectStore data_objects;
  store::ObjectStore key_objects;
};

TEST(DurableEngineTest, RecoversChunksObjectsAndIndexAcrossReopen) {
  const std::string dir = FreshDir("engine_roundtrip");
  std::vector<Bytes> chunks;
  std::vector<ChunkLocation> locs;
  {
    EngineFixture fx(dir);
    for (int i = 0; i < 10; ++i) {
      chunks.push_back(Pattern(100 + static_cast<std::size_t>(i), 9));
      locs.push_back(fx.containers.Append(chunks.back()));
      ASSERT_TRUE(fx.index.Insert(FpOf(chunks.back()), locs.back()));
    }
    fx.data_objects.Put("recipe/f1", Pattern(64, 10));
    fx.key_objects.Put("keystate/f1", Pattern(48, 11));
    fx.engine.Commit();
  }
  EngineFixture fx(dir);
  EXPECT_GT(fx.engine.recovery_stats().replayed_records, 0u);
  EXPECT_EQ(fx.engine.recovery_stats().orphans_discarded, 0u);
  EXPECT_EQ(fx.engine.recovery_stats().dangling_erased, 0u);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    auto loc = fx.index.Lookup(FpOf(chunks[i]));
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(*loc, locs[i]);
    EXPECT_EQ(fx.containers.Read(*loc), chunks[i]);
  }
  EXPECT_EQ(fx.data_objects.Get("recipe/f1"), Pattern(64, 10));
  EXPECT_EQ(fx.key_objects.Get("keystate/f1"), Pattern(48, 11));
  // Replayed appends land exactly where the originals did.
  Bytes next = Pattern(33, 12);
  ChunkLocation resumed = fx.containers.Append(next);
  EXPECT_GT(resumed.offset + 0u, 0u);
  EXPECT_EQ(fx.containers.Read(resumed), next);
  std::filesystem::remove_all(dir);
}

TEST(DurableEngineTest, SegmentRotationSealsAndRecovers) {
  const std::string dir = FreshDir("engine_seal");
  std::vector<Bytes> chunks;
  {
    // 64-byte containers force a rotation roughly every chunk.
    EngineFixture fx(dir, /*container_capacity=*/64);
    for (int i = 0; i < 6; ++i) {
      chunks.push_back(Pattern(50, static_cast<std::uint8_t>(13 + i)));
      ASSERT_TRUE(
          fx.index.Insert(FpOf(chunks.back()),
                          fx.containers.Append(chunks.back())));
    }
    fx.engine.Commit();
    EXPECT_GE(fx.engine.segments().segments_sealed(), 5u);
  }
  EngineFixture fx(dir, 64);
  EXPECT_GE(fx.engine.recovery_stats().segments_sealed, 5u);
  for (const Bytes& c : chunks) {
    auto loc = fx.index.Lookup(FpOf(c));
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(fx.containers.Read(*loc), c);
  }
  std::filesystem::remove_all(dir);
}

TEST(DurableEngineTest, CheckpointEmptiesWalAndRecoveryReplaysNothing) {
  const std::string dir = FreshDir("engine_ckpt");
  Bytes chunk = Pattern(80, 20);
  {
    EngineFixture fx(dir);
    ASSERT_TRUE(fx.index.Insert(FpOf(chunk), fx.containers.Append(chunk)));
    fx.data_objects.Put("stub/f9", Pattern(32, 21));
    fx.engine.Checkpoint(fx.index, fx.data_objects, fx.key_objects);
  }
  EXPECT_EQ(util::File::OpenRead(dir + "/wal.log").Size(), 0u);
  EXPECT_TRUE(util::FileExists(dir + "/index.ckpt"));
  EngineFixture fx(dir);
  auto loc = fx.index.Lookup(FpOf(chunk));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(fx.containers.Read(*loc), chunk);
  EXPECT_EQ(fx.data_objects.Get("stub/f9"), Pattern(32, 21));
  std::filesystem::remove_all(dir);
}

TEST(DurableEngineTest, ReconcilesDanglingIndexEntryFromTornSegmentTail) {
  const std::string dir = FreshDir("engine_dangling");
  Bytes kept = Pattern(40, 22);
  Bytes lost = Pattern(44, 23);
  std::uint64_t cut;
  {
    EngineFixture fx(dir);
    ASSERT_TRUE(fx.index.Insert(FpOf(kept), fx.containers.Append(kept)));
    cut = util::File::OpenRead(dir + "/seg-000000.log").Size();
    ASSERT_TRUE(fx.index.Insert(FpOf(lost), fx.containers.Append(lost)));
    fx.engine.Commit();
  }
  // Crash shape: the second chunk's segment record is torn away while its
  // index insert survived in the WAL.
  {
    util::File f = util::File::OpenAppend(dir + "/seg-000000.log");
    f.Truncate(cut);
  }
  EngineFixture fx(dir);
  EXPECT_EQ(fx.engine.recovery_stats().dangling_erased, 1u);
  EXPECT_FALSE(fx.index.Lookup(FpOf(lost)).has_value());
  auto loc = fx.index.Lookup(FpOf(kept));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(fx.containers.Read(*loc), kept);
  std::filesystem::remove_all(dir);
}

TEST(DurableEngineTest, ReconcilesOrphanChunkFromTornWalTail) {
  const std::string dir = FreshDir("engine_orphan");
  Bytes kept = Pattern(40, 24);
  Bytes orphan = Pattern(44, 25);
  std::uint64_t cut;
  {
    EngineFixture fx(dir);
    ASSERT_TRUE(fx.index.Insert(FpOf(kept), fx.containers.Append(kept)));
    cut = util::File::OpenRead(dir + "/wal.log").Size();
    // Append lands in the segment log; its index insert is then torn away.
    ASSERT_TRUE(fx.index.Insert(FpOf(orphan), fx.containers.Append(orphan)));
    fx.engine.Commit();
  }
  {
    util::File f = util::File::OpenAppend(dir + "/wal.log");
    f.Truncate(cut);
  }
  EngineFixture fx(dir);
  EXPECT_EQ(fx.engine.recovery_stats().orphans_discarded, 1u);
  EXPECT_FALSE(fx.index.Lookup(FpOf(orphan)).has_value());
  auto stats = fx.containers.stats();
  EXPECT_EQ(stats.chunks, 1u);
  EXPECT_EQ(stats.bytes, kept.size());
  // The repaired state survives ANOTHER reopen: the orphan discard went
  // through the logged path, so replay offsets stay aligned.
  Bytes more = Pattern(20, 26);
  ASSERT_TRUE(fx.index.Insert(FpOf(more), fx.containers.Append(more)));
  fx.engine.Commit();
  std::filesystem::remove_all(dir);
}

TEST(DurableEngineTest, RepairedStateIsStableAcrossASecondReopen) {
  const std::string dir = FreshDir("engine_stable");
  Bytes kept = Pattern(40, 27);
  Bytes orphan = Pattern(44, 28);
  std::uint64_t cut;
  {
    EngineFixture fx(dir);
    ASSERT_TRUE(fx.index.Insert(FpOf(kept), fx.containers.Append(kept)));
    cut = util::File::OpenRead(dir + "/wal.log").Size();
    ASSERT_TRUE(fx.index.Insert(FpOf(orphan), fx.containers.Append(orphan)));
    fx.engine.Commit();
  }
  {
    util::File f = util::File::OpenAppend(dir + "/wal.log");
    f.Truncate(cut);
  }
  { EngineFixture fx(dir); }  // first recovery repairs
  EngineFixture fx(dir);      // second must find nothing left to repair
  EXPECT_EQ(fx.engine.recovery_stats().orphans_discarded, 0u);
  EXPECT_EQ(fx.engine.recovery_stats().dangling_erased, 0u);
  EXPECT_EQ(fx.containers.stats().chunks, 1u);
  std::filesystem::remove_all(dir);
}

TEST(DurableEngineTest, ObjectEraseReplaysAndPrefixCountersMatchRescan) {
  const std::string dir = FreshDir("engine_obj_erase");
  {
    EngineFixture fx(dir);
    fx.data_objects.Put("stub/a", Pattern(100, 60));
    fx.data_objects.Put("stub/b", Pattern(50, 61));
    fx.data_objects.Put("recipe/a", Pattern(25, 62));
    fx.data_objects.Put("stub/a", Pattern(10, 63));  // overwrite shrinks
    ASSERT_TRUE(fx.data_objects.Erase("stub/b"));
    EXPECT_FALSE(fx.data_objects.Erase("stub/missing"));
    fx.engine.Commit();
  }
  EngineFixture fx(dir);
  EXPECT_FALSE(fx.data_objects.Contains("stub/b"));
  EXPECT_EQ(fx.data_objects.Get("stub/a"), Pattern(10, 63));
  // The O(1) per-directory counters must equal a full rescan after replay.
  std::uint64_t rescan = 0;
  fx.data_objects.ForEach([&](const std::string& name, const Bytes& value) {
    if (name.starts_with("stub/")) rescan += value.size();
  });
  EXPECT_EQ(fx.data_objects.TotalBytesWithPrefix("stub/"), rescan);
  EXPECT_EQ(rescan, 10u);
  EXPECT_EQ(fx.data_objects.total_bytes(), 35u);
  std::filesystem::remove_all(dir);
}

TEST(StorageServerDurableTest, ReopenPreservesChunksObjectsAndDedup) {
  const std::string dir = FreshDir("server_reopen");
  StorageServer::Options opts;
  opts.data_dir = dir;
  StorageServer server("srv", opts);

  std::vector<std::pair<chunk::Fingerprint, Bytes>> batch;
  for (int i = 0; i < 8; ++i) {
    Bytes data = Pattern(200, static_cast<std::uint8_t>(30 + i));
    batch.emplace_back(FpOf(data), data);
  }
  auto put = server.PutChunks(batch);
  EXPECT_EQ(put.stored, batch.size());
  server.PutObject(StoreId::kData, "stub/f1", Pattern(64, 40));
  server.PutObject(StoreId::kKey, "keystate/f1", Pattern(32, 41));

  server.Reopen();

  auto report = server.CheckConsistency();
  EXPECT_TRUE(report.ok) << report.detail;
  EXPECT_GT(server.RecoveryStats().replayed_records, 0u);
  std::vector<chunk::Fingerprint> fps;
  for (const auto& [fp, data] : batch) fps.push_back(fp);
  std::vector<Bytes> got = server.GetChunks(fps);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(got[i], batch[i].second);
  }
  EXPECT_EQ(server.GetObject(StoreId::kData, "stub/f1"), Pattern(64, 40));
  EXPECT_EQ(server.GetObject(StoreId::kKey, "keystate/f1"), Pattern(32, 41));
  // Dedup state survived: the same batch is now all duplicates.
  auto again = server.PutChunks(batch);
  EXPECT_EQ(again.duplicates, batch.size());
  EXPECT_EQ(again.stored, 0u);

  // A clean close checkpoints; the next open replays only segment records.
  server.Close();
  server.Reopen();
  EXPECT_TRUE(server.CheckConsistency().ok);
  std::filesystem::remove_all(dir);
}

TEST(StorageServerDurableTest, ReopenThrowsInMemoryMode) {
  StorageServer server("mem");
  EXPECT_THROW(server.Reopen(), StoreError);
  server.Close();  // no-op, must not throw
}

// Regression (per-prefix byte counters across recovery): replayed puts,
// overwrites, and erases must move the per-directory counters exactly like
// the original ops did, so TotalBytesWithPrefix matches a full rescan.
TEST(StorageServerDurableTest, PrefixByteCountersSurviveRecoveryReplay) {
  const std::string dir = FreshDir("server_prefix");
  StorageServer::Options opts;
  opts.data_dir = dir;
  StorageServer server("srv", opts);
  server.PutObject(StoreId::kData, "stub/f1", Pattern(100, 50));
  server.PutObject(StoreId::kData, "stub/f2", Pattern(60, 51));
  server.PutObject(StoreId::kData, "recipe/f1", Pattern(40, 52));
  server.PutObject(StoreId::kData, "stub/f1", Pattern(30, 53));  // overwrite
  server.PutObject(StoreId::kData, "noslash", Pattern(10, 54));

  server.Reopen();

  EXPECT_EQ(server.ObjectBytesWithPrefix(StoreId::kData, "stub/"), 90u);
  EXPECT_EQ(server.ObjectBytesWithPrefix(StoreId::kData, "recipe/"), 40u);
  // The generic-prefix path rescans; both answers must agree.
  EXPECT_EQ(server.ObjectBytesWithPrefix(StoreId::kData, "stub/"),
            server.ObjectBytesWithPrefix(StoreId::kData, "stub"));
  EXPECT_EQ(server.ObjectBytesWithPrefix(StoreId::kData, ""), 140u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace reed
