// Unit tests for util/fault_inject.h: policy determinism, spec parsing,
// arm/disarm lifecycle, counters, and the fired hook. The registry is
// compiled unconditionally, so everything except the REED_FAULT_POINT macro
// tests runs in every build mode.
#include "util/fault_inject.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/fault_metrics.h"
#include "obs/metrics.h"
#include "util/schedule_fuzz.h"

namespace reed::fault {
namespace {

TEST(FaultPolicyTest, OffNeverFires) {
  for (std::uint64_t hit = 1; hit <= 100; ++hit) {
    EXPECT_FALSE(PolicyFires(Policy::Off(), hit, 123));
  }
}

TEST(FaultPolicyTest, EveryHitAlwaysFires) {
  for (std::uint64_t hit = 1; hit <= 100; ++hit) {
    EXPECT_TRUE(PolicyFires(Policy::EveryHit(), hit, 123));
  }
}

TEST(FaultPolicyTest, NthHitFiresExactlyOnNth) {
  Policy p = Policy::NthHit(7);
  for (std::uint64_t hit = 1; hit <= 20; ++hit) {
    EXPECT_EQ(PolicyFires(p, hit, 123), hit == 7) << hit;
  }
}

TEST(FaultPolicyTest, ProbabilityIsDeterministicPerSeedSiteAndHit) {
  const std::uint64_t site_hash = schedfuzz::detail::Fnv1a("some.site");
  Policy p = Policy::Probability(250, 42);
  for (std::uint64_t hit = 1; hit <= 200; ++hit) {
    EXPECT_EQ(PolicyFires(p, hit, site_hash), PolicyFires(p, hit, site_hash));
  }
}

TEST(FaultPolicyTest, ProbabilityRateIsRoughlyPermille) {
  const std::uint64_t site_hash = schedfuzz::detail::Fnv1a("rate.site");
  Policy p = Policy::Probability(250, 9);
  int fired = 0;
  const int kHits = 4000;
  for (int hit = 1; hit <= kHits; ++hit) {
    if (PolicyFires(p, static_cast<std::uint64_t>(hit), site_hash)) ++fired;
  }
  // ~250/1000 of 4000 = 1000 expected; allow a wide deterministic band.
  EXPECT_GT(fired, 700);
  EXPECT_LT(fired, 1300);
}

TEST(FaultPolicyTest, ProbabilityZeroAndFullPermille) {
  const std::uint64_t site_hash = schedfuzz::detail::Fnv1a("edge.site");
  for (std::uint64_t hit = 1; hit <= 50; ++hit) {
    EXPECT_FALSE(PolicyFires(Policy::Probability(0, 1), hit, site_hash));
    EXPECT_TRUE(PolicyFires(Policy::Probability(1000, 1), hit, site_hash));
  }
}

TEST(FaultPolicyTest, DifferentSeedsGiveDifferentFiringSequences) {
  const std::uint64_t site_hash = schedfuzz::detail::Fnv1a("seed.site");
  Policy a = Policy::Probability(500, 1);
  Policy b = Policy::Probability(500, 2);
  int diffs = 0;
  for (std::uint64_t hit = 1; hit <= 200; ++hit) {
    if (PolicyFires(a, hit, site_hash) != PolicyFires(b, hit, site_hash)) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultRegistryTest, ArmedSiteFiresViaShouldFire) {
  detail::Site* site = detail::RegisterSite("test.registry.everyhit");
  EXPECT_FALSE(detail::ShouldFire(site));  // disarmed
  Arm("test.registry.everyhit", Policy::EveryHit());
  EXPECT_TRUE(detail::ShouldFire(site));
  Disarm("test.registry.everyhit");
  EXPECT_FALSE(detail::ShouldFire(site));
}

TEST(FaultRegistryTest, NthHitCountsTraversals) {
  detail::Site* site = detail::RegisterSite("test.registry.nth");
  ResetCounters();
  Arm("test.registry.nth", Policy::NthHit(3));
  EXPECT_FALSE(detail::ShouldFire(site));
  EXPECT_FALSE(detail::ShouldFire(site));
  EXPECT_TRUE(detail::ShouldFire(site));
  EXPECT_FALSE(detail::ShouldFire(site));
  Disarm("test.registry.nth");
}

TEST(FaultRegistryTest, ScopedFaultDisarmsOnExit) {
  detail::Site* site = detail::RegisterSite("test.registry.scoped");
  {
    ScopedFault armed("test.registry.scoped", Policy::EveryHit());
    EXPECT_TRUE(detail::ShouldFire(site));
  }
  EXPECT_FALSE(detail::ShouldFire(site));
}

TEST(FaultRegistryTest, StatsReportHitsAndFired) {
  detail::Site* site = detail::RegisterSite("test.registry.stats");
  ResetCounters();
  ScopedFault armed("test.registry.stats", Policy::EveryHit());
  EXPECT_TRUE(detail::ShouldFire(site));
  EXPECT_THROW(detail::FireAndThrow(site), FaultError);
  bool found = false;
  for (const auto& s : Stats()) {
    if (s.site == "test.registry.stats") {
      found = true;
      EXPECT_EQ(s.hits, 1u);
      EXPECT_EQ(s.fired, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(FaultRegistryTest, FireAndThrowCarriesSiteAndBumpsObsCounter) {
  detail::Site* site = detail::RegisterSite("test.registry.throwsite");
  // Force the metrics hook installation (idempotent) before firing.
  obs::InstallFaultCounters(obs::Registry::Global());
  auto& counter = obs::Registry::Global().GetCounter(
      "fault.test.registry.throwsite.fired");
  const std::uint64_t before = counter.value();
  try {
    detail::FireAndThrow(site);
    FAIL() << "FireAndThrow returned";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.site(), "test.registry.throwsite");
    EXPECT_NE(std::string(e.what()).find("test.registry.throwsite"),
              std::string::npos);
  }
  EXPECT_EQ(counter.value(), before + 1);
}

TEST(FaultSpecTest, BareSiteArmsEveryHit) {
  detail::Site* site = detail::RegisterSite("test.spec.bare");
  ApplySpec("test.spec.bare");
  EXPECT_TRUE(detail::ShouldFire(site));
  Disarm("test.spec.bare");
}

TEST(FaultSpecTest, ExplicitEveryAndNthAndProb) {
  detail::Site* every = detail::RegisterSite("test.spec.every");
  detail::Site* nth = detail::RegisterSite("test.spec.nth");
  ResetCounters();
  ApplySpec("test.spec.every:every;test.spec.nth:nth=2;test.spec.prob:prob=1000,5");
  EXPECT_TRUE(detail::ShouldFire(every));
  EXPECT_FALSE(detail::ShouldFire(nth));
  EXPECT_TRUE(detail::ShouldFire(nth));
  detail::Site* prob = detail::RegisterSite("test.spec.prob");
  EXPECT_TRUE(detail::ShouldFire(prob));  // permille=1000 always fires
  DisarmAll();
}

TEST(FaultSpecTest, EmptyEntriesAreSkipped) {
  detail::Site* site = detail::RegisterSite("test.spec.skip");
  ApplySpec(";;test.spec.skip;;");
  EXPECT_TRUE(detail::ShouldFire(site));
  Disarm("test.spec.skip");
}

TEST(FaultSpecTest, MalformedSpecsThrow) {
  EXPECT_THROW(ApplySpec(":every"), Error);
  EXPECT_THROW(ApplySpec("x:bogus"), Error);
  EXPECT_THROW(ApplySpec("x:nth=0"), Error);
  EXPECT_THROW(ApplySpec("x:nth=abc"), Error);
  EXPECT_THROW(ApplySpec("x:nth="), Error);
  EXPECT_THROW(ApplySpec("x:prob=2000"), Error);
  EXPECT_THROW(ApplySpec("x:prob=10,zz"), Error);
}

TEST(FaultHookTest, HookObservesFiringsAndUninstalls) {
  static std::string last_site;
  last_site.clear();
  SetFiredHook([](const char* site) { last_site = site; });
  detail::Site* site = detail::RegisterSite("test.hook.site");
  EXPECT_THROW(detail::FireAndThrow(site), FaultError);
  EXPECT_EQ(last_site, "test.hook.site");
  SetFiredHook(nullptr);
  last_site.clear();
  EXPECT_THROW(detail::FireAndThrow(site), FaultError);
  EXPECT_TRUE(last_site.empty());
  // Restore the process-wide metrics hook for any later test in this binary.
  obs::InstallFaultCounters(obs::Registry::Global());
}

#if defined(REED_FAULT_INJECT)

TEST(FaultMacroTest, DisarmedSiteIsANoOpThatCounts) {
  ResetCounters();
  DisarmAll();
  auto traverse = [] { REED_FAULT_POINT("test.macro.noop"); };
  EXPECT_NO_THROW(traverse());
  EXPECT_NO_THROW(traverse());
  for (const auto& s : Stats()) {
    if (s.site == "test.macro.noop") {
      EXPECT_EQ(s.hits, 2u);
      EXPECT_EQ(s.fired, 0u);
    }
  }
}

TEST(FaultMacroTest, ArmedSiteThrowsFaultError) {
  ScopedFault armed("test.macro.armed", Policy::EveryHit());
  auto traverse = [] { REED_FAULT_POINT("test.macro.armed"); };
  EXPECT_THROW(traverse(), FaultError);
}

TEST(FaultMacroTest, NthHitFiresMidSequence) {
  ResetCounters();
  ScopedFault armed("test.macro.nth", Policy::NthHit(3));
  auto traverse = [] { REED_FAULT_POINT("test.macro.nth"); };
  EXPECT_NO_THROW(traverse());
  EXPECT_NO_THROW(traverse());
  EXPECT_THROW(traverse(), FaultError);
  EXPECT_NO_THROW(traverse());
}

#else

TEST(FaultMacroTest, CompiledOutMacroDoesNotRegister) {
  ResetCounters();
  REED_FAULT_POINT("test.macro.compiled_out");
  for (const auto& s : Stats()) {
    EXPECT_NE(s.site, "test.macro.compiled_out");
  }
}

#endif  // REED_FAULT_INJECT

}  // namespace
}  // namespace reed::fault
