// The fault-site manifest: every REED_FAULT_POINT site planted in src/,
// sorted by name. The sweep harness (fault_sweep_test.cc) walks this list,
// arming each site mid-drive; tools/lint/failpath_lint.py cross-checks it
// against a raw-text scan of src/ in BOTH directions, so a site added to the
// code without a manifest entry (or vice versa) fails the lint.
#pragma once

#include <array>

namespace reed::testing {

inline constexpr std::array<const char*, 24> kFaultSites = {
    "aont.encode",
    "client.download.decode",
    "client.download.fetch",
    "client.get_chunks.batch",
    "client.put_chunks.batch",
    "client.rpc.call",
    "client.upload.encode",
    "client.upload.store",
    "keymanager.get_keys",
    "keymanager.sign_batch",
    "net.link.transfer",
    "net.rpc.call",
    "net.wire.read",
    "net.wire.write",
    "server.chunks.read",
    "server.ingest.chunk",
    "server.rpc.dispatch",
    "store.container.append",
    "store.index.insert",
    "store.index.lookup",
    "store.object.get",
    "store.object.put",
    "store.recipe.decode",
    "util.thread_pool.submit",
};

}  // namespace reed::testing
