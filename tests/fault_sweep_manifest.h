// The fault-site manifest: every REED_FAULT_POINT site planted in src/,
// sorted by name. The sweep harness (fault_sweep_test.cc) walks this list,
// arming each site mid-drive; tools/lint/failpath_lint.py cross-checks it
// against a raw-text scan of src/ in BOTH directions, so a site added to the
// code without a manifest entry (or vice versa) fails the lint.
#pragma once

#include <array>

namespace reed::testing {

inline constexpr std::array<const char*, 24> kFaultSites = {
    "aont.encode",
    "client.download.decode",
    "client.download.fetch",
    "client.get_chunks.batch",
    "client.put_chunks.batch",
    "client.rpc.call",
    "client.upload.encode",
    "client.upload.store",
    "keymanager.get_keys",
    "keymanager.sign_batch",
    "net.link.transfer",
    "net.rpc.call",
    "net.wire.read",
    "net.wire.write",
    "server.chunks.read",
    "server.ingest.chunk",
    "server.rpc.dispatch",
    "store.container.append",
    "store.index.insert",
    "store.index.lookup",
    "store.object.get",
    "store.object.put",
    "store.recipe.decode",
    "util.thread_pool.submit",
};

// Async front-end sites (src/net/async_server.cc), swept separately by
// AsyncFaultSweep: they live on event-loop threads behind real sockets, so
// the in-process clean drive above cannot traverse them. Kept in this
// header so failpath_lint's both-direction manifest cross-check still sees
// every planted site.
inline constexpr std::array<const char*, 4> kAsyncFaultSites = {
    "net.async.accept",
    "net.async.dispatch",
    "net.async.read",
    "net.async.write",
};

}  // namespace reed::testing
