// Failure-path sweep (DESIGN.md §8): for every REED_FAULT_POINT site in the
// tree (tests/fault_sweep_manifest.h), arm the site, run the full drive
// (upload → duplicate upload → download → rekey) until the injected fault
// unwinds it, and assert the four properties every failure path must hold:
//
//   1. the failure surfaces at the client API as a typed reed::Error whose
//      message names the fault site (no swallowed or re-branded errors);
//   2. no in-flight gauge leaks past the unwind (client.net.inflight_rpcs,
//      client.pipeline.inflight_batches return to zero);
//   3. every server's dedup state stays consistent — no orphaned container
//      bytes, no dangling index entries (StorageServer::CheckConsistency);
//   4. an immediate disarmed retry of the same drive succeeds and
//      round-trips the file byte-identically.
//
// The sweep runs twice — serial data path (pipeline depth 1) and overlapped
// pipelined path (depth 3, striped channels, concurrent fan-out) — because
// the two propagate failures differently (direct throw vs. future rethrow).
// A clean drive first checks coverage: the drive must traverse every
// manifest site, and must traverse no site missing from the manifest.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>

#include "core/reed_system.h"
#include "crypto/random.h"
#include "net/async_server.h"
#include "obs/metrics.h"
#include "fault_sweep_manifest.h"
#include "server/storage_server.h"
#include "util/fault_inject.h"

#if !defined(REED_FAULT_INJECT)

TEST(FaultSweepTest, RequiresFaultBuild) {
  GTEST_SKIP() << "fault-injection sites are compiled out; configure with "
                  "-DREED_FAULT_INJECT=ON (tools/ci/check.sh faults)";
}

#else

namespace reed {
namespace {

using client::ClientOptions;
using client::ReedClient;
using client::RevocationMode;
using core::ReedSystem;
using core::SystemOptions;
using crypto::DeterministicRng;

SystemOptions SweepSystemOptions() {
  SystemOptions opts;
  opts.key_manager.rsa_bits = 512;
  opts.derivation_key_bits = 512;
  opts.num_data_servers = 4;
  // Simulated network on (so net.rpc.call / net.link.transfer are on-path)
  // at a bandwidth high enough that modeled transfer delays are negligible.
  opts.bandwidth_bps = 1e12;
  opts.rtt_seconds = 0;
  opts.rng_seed = 20160628;
  return opts;
}

ClientOptions SweepClientOptions(std::size_t depth) {
  ClientOptions opts;
  opts.avg_chunk_size = 4096;
  opts.encryption_threads = 2;
  // Small batches force several pipeline iterations on small test files.
  opts.upload_batch_bytes = 16 * 1024;
  opts.pipeline.depth = depth;
  opts.pipeline.channels_per_server = depth > 1 ? 2 : 1;
  opts.rng_seed = 7;
  return opts;
}

Bytes TestFile(std::size_t size, std::uint64_t seed) {
  DeterministicRng rng(seed);
  return rng.Generate(size);
}

// The full drive: upload, duplicate upload, download (returned), rekey.
Bytes RunDrive(ReedClient& client, const std::string& fid, const Bytes& data) {
  (void)client.Upload(fid, data, {"alice"});
  (void)client.Upload(fid, data, {"alice"});
  Bytes out = client.Download(fid);
  (void)client.Rekey(fid, {"alice"}, RevocationMode::kActive);
  return out;
}

// Runs the drive phases in order until one throws; returns the error
// message, or "" if every phase completed despite the armed fault.
std::string DriveUntilFault(ReedClient& client, const std::string& fid,
                            const Bytes& data) {
  try {
    (void)client.Upload(fid, data, {"alice"});
    (void)client.Upload(fid, data, {"alice"});
    (void)client.Download(fid);
    (void)client.Rekey(fid, {"alice"}, RevocationMode::kActive);
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

void ExpectGaugesDrained() {
  auto& reg = obs::Registry::Global();
  EXPECT_EQ(reg.GetGauge("client.net.inflight_rpcs").value(), 0);
  EXPECT_EQ(reg.GetGauge("client.pipeline.inflight_batches").value(), 0);
}

void ExpectClusterConsistent(ReedSystem& system) {
  for (std::size_t s = 0; s < system.data_server_count(); ++s) {
    auto report = system.data_server(s).CheckConsistency();
    EXPECT_TRUE(report.ok)
        << system.data_server(s).name() << ": " << report.detail;
  }
  auto key_report = system.key_server().CheckConsistency();
  EXPECT_TRUE(key_report.ok) << "key server: " << key_report.detail;
}

void RunSweep(std::size_t depth) {
  ReedSystem system(SweepSystemOptions());
  system.RegisterUser("alice");
  auto client = system.CreateClient("alice", SweepClientOptions(depth));
  auto& reg = obs::Registry::Global();

  const std::set<std::string> manifest(testing::kFaultSites.begin(),
                                       testing::kFaultSites.end());

  // Coverage gate: a clean drive must traverse every manifest site (a site
  // the drive cannot reach is a site the sweep below cannot exercise), and
  // must not traverse any site the manifest does not know about.
  fault::DisarmAll();
  fault::ResetCounters();
  Bytes clean = TestFile(96 * 1024, 1000 + depth);
  Bytes fetched = RunDrive(*client, "clean", clean);
  ASSERT_EQ(fetched, clean);
  std::set<std::string> traversed;
  for (const auto& s : fault::Stats()) {
    EXPECT_EQ(s.fired, 0u) << "disarmed site fired: " << s.site;
    if (s.hits > 0 && !s.site.starts_with("test.")) traversed.insert(s.site);
  }
  for (const auto& site : manifest) {
    EXPECT_TRUE(traversed.contains(site))
        << "manifest site never traversed by the clean drive: " << site;
  }
  for (const auto& site : traversed) {
    EXPECT_TRUE(manifest.contains(site))
        << "traversed site missing from the manifest: " << site;
  }

  // The sweep proper.
  std::uint64_t file_seed = 5000 + 100 * depth;
  for (const char* site : testing::kFaultSites) {
    SCOPED_TRACE(std::string("site=") + site + " depth=" +
                 std::to_string(depth));
    const std::string fid = std::string("sweep-") + site;
    Bytes data = TestFile(48 * 1024, ++file_seed);

    std::string msg;
    {
      fault::ScopedFault armed(site, fault::Policy::EveryHit());
      msg = DriveUntilFault(*client, fid, data);
    }
    ASSERT_FALSE(msg.empty()) << "no drive phase failed with the site armed";
    EXPECT_NE(msg.find(site), std::string::npos)
        << "error lost the fault site on the way up: " << msg;
    EXPECT_GE(reg.GetCounter(std::string("fault.") + site + ".fired").value(),
              1u);
    ExpectGaugesDrained();
    ExpectClusterConsistent(system);

    // Disarmed retry: the identical drive must now complete, deduplicating
    // against whatever the aborted attempt managed to store.
    Bytes out = RunDrive(*client, fid, data);
    EXPECT_EQ(out, data) << "post-fault retry did not round-trip";
    ExpectGaugesDrained();
    ExpectClusterConsistent(system);
  }
}

TEST(FaultSweepTest, SerialDataPath) { RunSweep(1); }

TEST(FaultSweepTest, PipelinedDataPath) { RunSweep(3); }

// Satellite regression: a fault that kills exactly ONE task of the
// concurrent per-server PutChunks fan-out (the others complete) must leave
// every server consistent, and the retry must dedup against the surviving
// writes instead of double-storing them.
TEST(FaultSweepTest, PartialFanoutPutChunksLeavesRetryableState) {
  ReedSystem system(SweepSystemOptions());
  system.RegisterUser("alice");
  auto client = system.CreateClient("alice", SweepClientOptions(3));
  auto& reg = obs::Registry::Global();

  Bytes data = TestFile(128 * 1024, 424242);
  fault::DisarmAll();
  fault::ResetCounters();
  // The obs counter is monotonic across the whole binary (the sweep tests
  // above already fired this site); assert on the delta, not the total.
  const std::uint64_t fired_before =
      reg.GetCounter("fault.client.put_chunks.batch.fired").value();

  std::string msg;
  {
    // client.put_chunks.batch is traversed once per target server per
    // batch; the 2nd traversal belongs to one fan-out task among several,
    // so exactly that task fails mid-batch.
    fault::ScopedFault armed("client.put_chunks.batch",
                             fault::Policy::NthHit(2));
    try {
      (void)client->Upload("partial", data, {"alice"});
    } catch (const Error& e) {
      msg = e.what();
    }
  }
  ASSERT_FALSE(msg.empty()) << "upload survived a failed fan-out task";
  EXPECT_NE(msg.find("client.put_chunks.batch"), std::string::npos) << msg;
  EXPECT_EQ(reg.GetCounter("fault.client.put_chunks.batch.fired").value(),
            fired_before + 1)
      << "NthHit(2) must fire exactly once";

  // The surviving fan-out tasks landed their chunks; the cluster must be
  // consistent with that partial batch applied.
  std::uint64_t stored = 0;
  for (std::size_t s = 0; s < system.data_server_count(); ++s) {
    auto report = system.data_server(s).CheckConsistency();
    EXPECT_TRUE(report.ok)
        << system.data_server(s).name() << ": " << report.detail;
    stored += report.index_entries;
  }
  EXPECT_GT(stored, 0u) << "expected partial state from the surviving tasks";
  EXPECT_EQ(reg.GetGauge("client.net.inflight_rpcs").value(), 0);
  EXPECT_EQ(reg.GetGauge("client.pipeline.inflight_batches").value(), 0);

  // Retry: chunks stored before the abort must register as duplicates, and
  // the file must round-trip.
  auto result = client->Upload("partial", data, {"alice"});
  EXPECT_GT(result.duplicate_chunks, 0u)
      << "retry re-stored chunks the aborted upload already landed";
  Bytes out = client->Download("partial");
  EXPECT_EQ(out, data);
  for (std::size_t s = 0; s < system.data_server_count(); ++s) {
    EXPECT_TRUE(system.data_server(s).CheckConsistency().ok);
  }
}

// ---------------------------------------------------------------------------
// Async front-end sweep: the four net.async.* sites live on AsyncServer's
// event-loop threads behind real sockets, so they get their own drive (a
// TcpChannel round trip against an in-process AsyncServer) instead of the
// SimulatedChannel drive above. The contract per site: the client observes a
// typed NetError (the connection is the blast radius — it closes), the
// fault.<site>.fired counter proves the injection, the server's net gauges
// drain back to zero, the storage state stays consistent, and a disarmed
// retry round-trips.
// ---------------------------------------------------------------------------

Bytes BuildPutObject(const std::string& name, const Bytes& value) {
  net::Writer w;
  w.U8(static_cast<std::uint8_t>(server::Opcode::kPutObject));
  w.U8(static_cast<std::uint8_t>(server::StoreId::kData));
  w.Str(name);
  w.Blob(value);
  return w.Take();
}

Bytes BuildGetObject(const std::string& name) {
  net::Writer w;
  w.U8(static_cast<std::uint8_t>(server::Opcode::kGetObject));
  w.U8(static_cast<std::uint8_t>(server::StoreId::kData));
  w.Str(name);
  return w.Take();
}

void WaitForGaugeZero(const char* name) {
  auto& gauge = obs::Registry::Global().GetGauge(name);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (gauge.value() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(gauge.value(), 0) << name << " did not drain";
}

TEST(FaultSweepTest, AsyncFrontEndSweep) {
  server::StorageServer storage("async-sweep");
  net::AsyncServer::Options net_opts;
  net_opts.loops = 2;
  net_opts.workers = 2;
  net::AsyncServer server(
      0, [&storage](ByteSpan req) { return storage.HandleRequest(req); },
      net_opts);
  auto& reg = obs::Registry::Global();

  // One fresh connection per exchange, so an armed per-connection fault
  // hits exactly the exchange under test.
  auto call_once = [&](const Bytes& request) {
    net::TcpChannel chan(
        net::TcpTransport::Connect("127.0.0.1", server.port()));
    return chan.Call(request);
  };

  fault::DisarmAll();
  fault::ResetCounters();
  Bytes value = TestFile(4096, 20250808);

  // Coverage gate: one clean round trip must traverse all four async sites.
  Bytes resp = call_once(BuildPutObject("seed", value));
  ASSERT_FALSE(resp.empty());
  ASSERT_EQ(resp[0], 0);
  std::set<std::string> traversed;
  for (const auto& s : fault::Stats()) {
    if (s.hits > 0) traversed.insert(s.site);
  }
  for (const char* site : testing::kAsyncFaultSites) {
    EXPECT_TRUE(traversed.contains(site))
        << "async site never traversed by a clean round trip: " << site;
  }

  for (const char* site : testing::kAsyncFaultSites) {
    SCOPED_TRACE(std::string("site=") + site);
    const std::uint64_t fired_before =
        reg.GetCounter(std::string("fault.") + site + ".fired").value();

    std::string msg;
    {
      fault::ScopedFault armed(site, fault::Policy::EveryHit());
      try {
        (void)call_once(BuildPutObject("sweep", value));
      } catch (const net::NetError& e) {
        msg = e.what();
      }
    }
    // Typed propagation: the connection is torn down, so the client sees a
    // NetError from its own Send/Receive rather than a hang or a garbled
    // success frame.
    EXPECT_FALSE(msg.empty())
        << "armed async fault did not surface at the client";
    EXPECT_GE(reg.GetCounter(std::string("fault.") + site + ".fired").value(),
              fired_before + 1);

    // Gauges drain: the loop thread closes the connection and releases its
    // active_conns guard and queued outbox bytes shortly after the fault.
    WaitForGaugeZero("server.net.active_conns");
    WaitForGaugeZero("server.net.outbox_bytes");
    EXPECT_TRUE(storage.CheckConsistency().ok);

    // Disarmed retry on a fresh connection round-trips.
    Bytes put = call_once(BuildPutObject("sweep", value));
    ASSERT_FALSE(put.empty());
    EXPECT_EQ(put[0], 0);
    Bytes got = call_once(BuildGetObject("seed"));
    net::Reader r(got);
    ASSERT_EQ(r.U8(), 0);
    EXPECT_EQ(r.Blob(), value);
  }
}

}  // namespace
}  // namespace reed

#endif  // REED_FAULT_INJECT
