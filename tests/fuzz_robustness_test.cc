// Deterministic mutation-fuzz suite for every wire deserializer: random
// bit flips, truncations, and extensions of valid blobs must either throw
// reed::Error or produce a well-formed value — never crash, hang, or read
// out of bounds. (Run under ASan/valgrind for full effect; under plain
// builds this still catches unchecked lengths and absent validation.)
#include <gtest/gtest.h>

#include "abe/cpabe.h"
#include "crypto/random.h"
#include "net/stats_wire.h"
#include "obs/metrics.h"
#include "pairing/pairing.h"
#include "rsa/rsa.h"
#include "store/log_format.h"
#include "store/recipe.h"
#include "trace/trace.h"
#include "util/fault_inject.h"
#include "util/schedule_fuzz.h"

namespace reed {
namespace {

using crypto::DeterministicRng;

// Applies `rounds` random mutations; calls `parse` on each mutant and
// asserts it either throws Error or returns normally.
template <typename ParseFn>
void FuzzBlob(const Bytes& valid, ParseFn parse, std::uint64_t seed,
              int rounds = 300) {
  DeterministicRng rng(seed);
  int threw = 0, parsed = 0;
  for (int i = 0; i < rounds; ++i) {
    Bytes mutant = valid;
    switch (rng.Uniform(4)) {
      case 0:  // single bit flip
        if (!mutant.empty()) {
          mutant[rng.Uniform(mutant.size())] ^=
              static_cast<std::uint8_t>(1u << rng.Uniform(8));
        }
        break;
      case 1:  // truncate
        mutant.resize(rng.Uniform(mutant.size() + 1));
        break;
      case 2: {  // extend with random bytes
        Bytes extra = rng.Generate(1 + rng.Uniform(16));
        Append(mutant, extra);
        break;
      }
      default: {  // splice a random window with noise
        if (!mutant.empty()) {
          std::size_t off = rng.Uniform(mutant.size());
          std::size_t len = std::min<std::size_t>(
              mutant.size() - off, 1 + rng.Uniform(8));
          Bytes noise = rng.Generate(len);
          std::copy(noise.begin(), noise.end(), mutant.begin() + off);
        }
        break;
      }
    }
    try {
      parse(mutant);
      ++parsed;
    } catch (const Error&) {
      ++threw;
    }
    // Any other exception type (or a crash) fails the test by escaping.
  }
  // Sanity: the fuzzer actually exercised the failure paths.
  EXPECT_GT(threw, rounds / 10);
  (void)parsed;
}

TEST(FuzzTest, PolicyNodeDeserializer) {
  abe::PolicyNode policy = abe::PolicyNode::Threshold(
      2, {abe::PolicyNode::Leaf("a"),
          abe::PolicyNode::Or({abe::PolicyNode::Leaf("b"),
                               abe::PolicyNode::Leaf("c")}),
          abe::PolicyNode::Leaf("d")});
  Bytes blob;
  policy.SerializeTo(blob);
  FuzzBlob(blob, [](const Bytes& b) { (void)abe::PolicyNode::Deserialize(b); },
           1);
}

TEST(FuzzTest, FileRecipeDeserializer) {
  store::FileRecipe recipe;
  recipe.file_id = "fuzz-target";
  recipe.file_size = 99999;
  recipe.stub_size = 64;
  for (int i = 0; i < 8; ++i) {
    recipe.fingerprints.push_back(
        chunk::Fingerprint::Of(ToBytes("c" + std::to_string(i))));
    recipe.chunk_sizes.push_back(4096);
  }
  FuzzBlob(recipe.Serialize(),
           [](const Bytes& b) { (void)store::FileRecipe::Deserialize(b); }, 2);
}

TEST(FuzzTest, KeyStateRecordDeserializer) {
  store::KeyStateRecord rec;
  rec.owner_id = "alice";
  rec.key_version = 3;
  rec.stub_key_version = 1;
  rec.policy = ToBytes("policy");
  rec.wrapped_state = Bytes(200, 0x42);
  rec.group_wrap_id = "groupwrap/x";
  rec.derivation_public_key = Bytes(70, 0x17);
  FuzzBlob(rec.Serialize(),
           [](const Bytes& b) { (void)store::KeyStateRecord::Deserialize(b); },
           3);
}

TEST(FuzzTest, G1PointDeserializer) {
  auto pairing = std::make_shared<const pairing::TypeAPairing>(
      pairing::TypeAParams::Default());
  const pairing::FpField* f = pairing->field();
  Bytes blob = pairing->HashToGroup(ToBytes("fuzz")).ToBytes(f);
  FuzzBlob(blob,
           [f](const Bytes& b) { (void)pairing::G1Point::FromBytes(f, b); },
           4, 200);
}

TEST(FuzzTest, AbeCiphertextDeserializer) {
  auto pairing = std::make_shared<const pairing::TypeAPairing>(
      pairing::TypeAParams::Default());
  abe::CpAbe cpabe(pairing);
  DeterministicRng rng(5);
  auto setup = cpabe.Setup(rng);
  abe::PolicyNode policy = abe::PolicyNode::OrOfUsers({"a", "b"});
  pairing::Fp2 m =
      pairing->Pair(setup.pk.g, setup.pk.g).Pow(pairing->RandomScalar(rng));
  Bytes blob = cpabe.SerializeCiphertext(
      cpabe.EncryptElement(setup.pk, m, policy, rng));
  FuzzBlob(blob,
           [&cpabe](const Bytes& b) { (void)cpabe.DeserializeCiphertext(b); },
           6, 150);
}

TEST(FuzzTest, RsaKeyPairDeserializer) {
  DeterministicRng rng(7);
  rsa::RsaKeyPair kp = rsa::GenerateKeyPair(512, rng);
  FuzzBlob(Declassify(rsa::SerializeKeyPair(kp),
                      "test: fuzz corpus seed for the key-pair parser"),
           [](const Bytes& b) { (void)rsa::DeserializeKeyPair(Secret(b)); }, 8,
           200);
}

TEST(FuzzTest, TraceSnapshotDeserializer) {
  trace::Snapshot snap;
  for (int i = 0; i < 20; ++i) {
    snap.push_back({static_cast<std::uint64_t>(i * 7919), 4096u});
  }
  FuzzBlob(trace::SerializeSnapshot(snap),
           [](const Bytes& b) { (void)trace::DeserializeSnapshot(b); }, 9, 200);
}

TEST(FuzzTest, StatsSnapshotDecoder) {
  // The kGetStats payload codec: counters, a negative gauge (two's
  // complement on the wire), and a histogram with a full bucket vector —
  // the list counts inside are attacker-controlled lengths.
  obs::Snapshot snap;
  snap.counters.push_back({"server.rpc.put_chunks.calls", 17});
  snap.counters.push_back({"server.store.unique_chunks", 5});
  snap.gauges.push_back({"server.net.inflight", -2});
  obs::Snapshot::HistogramValue h;
  h.name = "server.rpc.put_chunks.latency_us";
  h.count = 3;
  h.sum = 4500;
  h.buckets.assign(obs::Histogram::kNumBuckets, 0);
  h.buckets[4] = 3;
  snap.histograms.push_back(std::move(h));
  net::Writer w;
  net::EncodeSnapshot(w, snap);
  FuzzBlob(w.Take(),
           [](const Bytes& b) {
             net::Reader r(b);
             (void)net::DecodeSnapshot(r);
             r.ExpectEnd();
           },
           10);
}

// The durable-store log decoders (DESIGN.md §12) parse bytes that a crash
// can tear arbitrarily, so they face the same contract as the wire: typed
// StoreError (an Error) or a well-formed record — never a crash, hang, or
// an allocation driven by a forged length (the frame decoder refuses
// payload lengths beyond the 256 MiB cap, mirroring net::Reader's blob cap,
// BEFORE touching the payload).
TEST(FuzzTest, WalRecordFrameDecoder) {
  Bytes buf;
  store::AppendRecord(
      buf, store::RecordType::kIndexInsert,
      store::EncodeIndexInsert({chunk::Fingerprint::Of(ToBytes("chunk-0")),
                                store::ChunkLocation{3, 128, 512}}));
  store::AppendRecord(buf, store::RecordType::kObjectPut,
                      store::EncodeObjectPut({0, "stub/f7", Bytes(64, 0x5A)}));
  FuzzBlob(buf,
           [](const Bytes& b) {
             std::size_t offset = 0;
             while (offset < b.size()) {
               store::RecordView rec = store::DecodeRecord(b, offset);
               offset += rec.encoded_size;
             }
           },
           13);
  // The tolerant scanner must never throw at all: every mutant is either
  // records, end, or a torn tail.
  DeterministicRng rng(14);
  for (int i = 0; i < 300; ++i) {
    Bytes mutant = rng.Generate(rng.Uniform(buf.size() + 16));
    std::size_t offset = 0;
    while (true) {
      auto scan = store::ScanRecord(mutant, offset);
      if (scan.status != store::ScanStatus::kRecord) break;
      offset += scan.record.encoded_size;
    }
  }
}

TEST(FuzzTest, SegmentAppendPayloadDecoder) {
  // A short chunk so truncation mutants regularly land inside the fixed
  // header (the payload tail is raw chunk bytes — any value is valid there).
  FuzzBlob(store::EncodeSegmentAppend({9, 4096, Bytes(4, 0x33)}),
           [](const Bytes& b) { (void)store::DecodeSegmentAppend(b); }, 15);
}

TEST(FuzzTest, IndexInsertPayloadDecoder) {
  FuzzBlob(store::EncodeIndexInsert(
               {chunk::Fingerprint::Of(ToBytes("chunk-1")),
                store::ChunkLocation{1, 2, 3}}),
           [](const Bytes& b) { (void)store::DecodeIndexInsert(b); }, 16);
}

TEST(FuzzTest, ObjectPutPayloadDecoder) {
  FuzzBlob(store::EncodeObjectPut({1, "keystate/f1", Bytes(128, 0x77)}),
           [](const Bytes& b) { (void)store::DecodeObjectPut(b); }, 17);
}

// The env-spec parsers are wire-adjacent: REED_FAULT / REED_SCHEDULE_SEED
// come from outside the process, so mutated text must throw reed::Error or
// parse — never crash or wedge. Mutants that parse may arm fault sites;
// DisarmAll afterwards keeps this binary's other tests unperturbed.
TEST(FuzzTest, FaultSpecParser) {
  const std::string valid = "net.wire.read:nth=3;client.upload:prob=250,7;a.b";
  FuzzBlob(ToBytes(valid),
           [](const Bytes& b) {
             fault::ApplySpec(std::string(b.begin(), b.end()));
           },
           11);
  fault::DisarmAll();
}

TEST(FuzzTest, ScheduleSeedParser) {
  // Max u64: still valid, and one mutation away from overflow or a
  // non-digit — both must come back as typed errors.
  const std::string valid = "18446744073709551615";
  FuzzBlob(ToBytes(valid),
           [](const Bytes& b) {
             const std::string text(b.begin(), b.end());
             (void)schedfuzz::ParseSeedSpec(text.c_str());
           },
           12);
}

}  // namespace
}  // namespace reed
