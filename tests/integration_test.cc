// End-to-end integration tests over the full REED stack: system bring-up,
// upload/download round trips under both schemes, cross-user dedup,
// rekeying with lazy and active revocation, access control, and a full
// protocol run over real TCP sockets.
#include <gtest/gtest.h>

#include <thread>

#include "core/reed_system.h"
#include "crypto/random.h"
#include "net/tcp.h"
#include "trace/trace.h"

namespace reed {
namespace {

using client::ClientOptions;
using client::ReedClient;
using client::RevocationMode;
using core::ReedSystem;
using core::SystemOptions;
using crypto::DeterministicRng;

SystemOptions FastSystemOptions() {
  SystemOptions opts;
  opts.key_manager.rsa_bits = 512;   // small keys keep tests fast;
  opts.derivation_key_bits = 512;    // benches use the paper's 1024 bits
  opts.num_data_servers = 4;
  opts.rng_seed = 1234;
  return opts;
}

ClientOptions FastClientOptions(aont::Scheme scheme) {
  ClientOptions opts;
  opts.scheme = scheme;
  opts.avg_chunk_size = 4096;
  opts.encryption_threads = 2;
  opts.rng_seed = 77;
  return opts;
}

Bytes TestFile(std::size_t size, std::uint64_t seed) {
  DeterministicRng rng(seed);
  return rng.Generate(size);
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new ReedSystem(FastSystemOptions());
    system_->RegisterUser("alice");
    system_->RegisterUser("bob");
    system_->RegisterUser("eve");
  }

  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  static ReedSystem* system_;
};

ReedSystem* IntegrationTest::system_ = nullptr;

class SchemeIntegrationTest
    : public IntegrationTest,
      public ::testing::WithParamInterface<aont::Scheme> {};

TEST_P(SchemeIntegrationTest, UploadDownloadRoundTrip) {
  auto alice = system_->CreateClient("alice", FastClientOptions(GetParam()));
  Bytes file = TestFile(1 << 20, 1);  // 1 MB
  auto result = alice->Upload("roundtrip-" + std::string(aont::SchemeName(GetParam())),
                              file, {"alice"});
  EXPECT_EQ(result.logical_bytes, file.size());
  EXPECT_GT(result.chunk_count, 50u);
  EXPECT_EQ(result.duplicate_chunks, 0u);
  EXPECT_EQ(result.stored_chunks, result.chunk_count);

  Bytes downloaded = alice->Download(
      "roundtrip-" + std::string(aont::SchemeName(GetParam())));
  EXPECT_EQ(downloaded, file);
}

TEST_P(SchemeIntegrationTest, SecondUploadFullyDeduplicates) {
  auto alice = system_->CreateClient("alice", FastClientOptions(GetParam()));
  Bytes file = TestFile(512 << 10, 2);
  std::string base = "dedup-" + std::string(aont::SchemeName(GetParam()));
  auto first = alice->Upload(base + "-1", file, {"alice"});
  auto second = alice->Upload(base + "-2", file, {"alice"});
  EXPECT_EQ(second.duplicate_chunks, second.chunk_count);
  EXPECT_EQ(second.stored_chunks, 0u);
  EXPECT_EQ(second.stored_bytes, 0u);
  EXPECT_EQ(first.stored_chunks, first.chunk_count);
  // Both copies still download correctly (each has its own stub file/key).
  EXPECT_EQ(alice->Download(base + "-1"), file);
  EXPECT_EQ(alice->Download(base + "-2"), file);
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, SchemeIntegrationTest,
                         ::testing::Values(aont::Scheme::kBasic,
                                           aont::Scheme::kEnhanced),
                         [](const auto& param_info) {
                           return std::string(
                               aont::SchemeName(param_info.param));
                         });

TEST_F(IntegrationTest, CrossUserDeduplication) {
  // Identical content uploaded by *different* users deduplicates — the MLE
  // keys are content-derived and the trimmed packages identical.
  auto alice = system_->CreateClient("alice",
                                     FastClientOptions(aont::Scheme::kEnhanced));
  auto bob = system_->CreateClient("bob",
                                   FastClientOptions(aont::Scheme::kEnhanced));
  Bytes file = TestFile(512 << 10, 3);
  auto ra = alice->Upload("xuser-alice", file, {"alice"});
  auto rb = bob->Upload("xuser-bob", file, {"bob"});
  EXPECT_EQ(ra.stored_chunks, ra.chunk_count);
  EXPECT_EQ(rb.duplicate_chunks, rb.chunk_count);
  EXPECT_EQ(bob->Download("xuser-bob"), file);
}

TEST_F(IntegrationTest, AuthorizedSharingAndUnauthorizedRejection) {
  auto alice = system_->CreateClient("alice",
                                     FastClientOptions(aont::Scheme::kEnhanced));
  auto bob = system_->CreateClient("bob",
                                   FastClientOptions(aont::Scheme::kEnhanced));
  auto eve = system_->CreateClient("eve",
                                   FastClientOptions(aont::Scheme::kEnhanced));
  Bytes file = TestFile(256 << 10, 4);
  DiscardResult(alice->Upload("shared-file", file, {"alice", "bob"}));

  EXPECT_EQ(bob->Download("shared-file"), file);  // authorized
  EXPECT_THROW(eve->Download("shared-file"), Error);  // not in policy
}

TEST_F(IntegrationTest, LazyRevocationKeepsOldDataReadableByAuthorized) {
  auto alice = system_->CreateClient("alice",
                                     FastClientOptions(aont::Scheme::kEnhanced));
  auto bob = system_->CreateClient("bob",
                                   FastClientOptions(aont::Scheme::kEnhanced));
  Bytes file = TestFile(256 << 10, 5);
  DiscardResult(alice->Upload("lazy-file", file, {"alice", "bob"}));

  // Revoke bob lazily: key state winds forward, stub file untouched.
  auto rekey = alice->Rekey("lazy-file", {"alice"}, RevocationMode::kLazy);
  EXPECT_EQ(rekey.new_version, 1u);
  EXPECT_FALSE(rekey.stub_reencrypted);

  // Alice (authorized under the new policy) unwinds to the stub version.
  EXPECT_EQ(alice->Download("lazy-file"), file);
  // Bob can no longer obtain the current key state.
  EXPECT_THROW(bob->Download("lazy-file"), Error);
}

TEST_F(IntegrationTest, ActiveRevocationReencryptsStubs) {
  auto alice = system_->CreateClient("alice",
                                     FastClientOptions(aont::Scheme::kEnhanced));
  auto bob = system_->CreateClient("bob",
                                   FastClientOptions(aont::Scheme::kEnhanced));
  Bytes file = TestFile(256 << 10, 6);
  DiscardResult(alice->Upload("active-file", file, {"alice", "bob"}));
  Bytes stub_before = system_->data_server(0).HasObject(
                          server::StoreId::kData, "stub/active-file")
                          ? system_->data_server(0).GetObject(
                                server::StoreId::kData, "stub/active-file")
                          : Bytes{};

  auto rekey = alice->Rekey("active-file", {"alice"}, RevocationMode::kActive);
  EXPECT_TRUE(rekey.stub_reencrypted);
  EXPECT_GT(rekey.stub_bytes, 0u);
  EXPECT_EQ(alice->Download("active-file"), file);
  EXPECT_THROW(bob->Download("active-file"), Error);
}

TEST_F(IntegrationTest, RepeatedRekeyingWalksVersionsForward) {
  auto alice = system_->CreateClient("alice",
                                     FastClientOptions(aont::Scheme::kEnhanced));
  Bytes file = TestFile(128 << 10, 7);
  DiscardResult(alice->Upload("multi-rekey", file, {"alice", "bob"}));
  for (std::uint64_t i = 1; i <= 4; ++i) {
    auto mode = (i % 2 == 0) ? RevocationMode::kActive : RevocationMode::kLazy;
    auto r = alice->Rekey("multi-rekey", {"alice"}, mode);
    EXPECT_EQ(r.new_version, i);
  }
  // After mixed lazy/active rekeys the file still reads back.
  EXPECT_EQ(alice->Download("multi-rekey"), file);
}

TEST_F(IntegrationTest, GroupRekeyingSharesOneAbeEncryption) {
  auto alice = system_->CreateClient("alice",
                                     FastClientOptions(aont::Scheme::kEnhanced));
  auto bob = system_->CreateClient("bob",
                                   FastClientOptions(aont::Scheme::kEnhanced));
  Bytes f1 = TestFile(64 << 10, 20);
  Bytes f2 = TestFile(64 << 10, 21);
  Bytes f3 = TestFile(64 << 10, 22);
  DiscardResult(alice->Upload("grp-1", f1, {"alice", "bob"}));
  DiscardResult(alice->Upload("grp-2", f2, {"alice", "bob"}));
  DiscardResult(alice->Upload("grp-3", f3, {"alice", "bob"}));

  // Revoke bob from all three files in one group rekey.
  auto results = alice->RekeyGroup({"grp-1", "grp-2", "grp-3"}, {"alice"},
                                   RevocationMode::kLazy);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_EQ(r.new_version, 1u);

  EXPECT_EQ(alice->Download("grp-1"), f1);
  EXPECT_EQ(alice->Download("grp-2"), f2);
  EXPECT_EQ(alice->Download("grp-3"), f3);
  EXPECT_THROW(bob->Download("grp-1"), Error);
  EXPECT_THROW(bob->Download("grp-3"), Error);
}

TEST_F(IntegrationTest, GroupRekeyActiveThenIndividualRekey) {
  auto alice = system_->CreateClient("alice",
                                     FastClientOptions(aont::Scheme::kEnhanced));
  Bytes f1 = TestFile(64 << 10, 23);
  Bytes f2 = TestFile(64 << 10, 24);
  DiscardResult(alice->Upload("grp-a", f1, {"alice", "bob"}));
  DiscardResult(alice->Upload("grp-b", f2, {"alice", "bob"}));

  auto results = alice->RekeyGroup({"grp-a", "grp-b"}, {"alice"},
                                   RevocationMode::kActive);
  EXPECT_TRUE(results[0].stub_reencrypted);
  EXPECT_EQ(alice->Download("grp-a"), f1);

  // A later individual rekey of a group-wrapped file switches it back to a
  // direct CP-ABE wrap and keeps it readable.
  auto r = alice->Rekey("grp-a", {"alice"}, RevocationMode::kActive);
  EXPECT_EQ(r.new_version, 2u);
  EXPECT_EQ(alice->Download("grp-a"), f1);
  EXPECT_EQ(alice->Download("grp-b"), f2);
  EXPECT_THROW(alice->RekeyGroup({}, {"alice"}, RevocationMode::kLazy), Error);
}

TEST_F(IntegrationTest, OnlyOwnerMayRekey) {
  auto alice = system_->CreateClient("alice",
                                     FastClientOptions(aont::Scheme::kEnhanced));
  auto bob = system_->CreateClient("bob",
                                   FastClientOptions(aont::Scheme::kEnhanced));
  Bytes file = TestFile(64 << 10, 8);
  DiscardResult(alice->Upload("owned-file", file, {"alice", "bob"}));
  EXPECT_THROW(
      DiscardResult(bob->Rekey("owned-file", {"bob"}, RevocationMode::kLazy)),
      Error);
}

TEST_F(IntegrationTest, TamperedChunkAbortsDownload) {
  auto alice = system_->CreateClient("alice",
                                     FastClientOptions(aont::Scheme::kEnhanced));
  Bytes file = TestFile(64 << 10, 9);
  DiscardResult(alice->Upload("tamper-file", file, {"alice"}));

  // Corrupt one stored container byte on every data server (the chunk
  // lands on exactly one of them, but we don't know which).
  bool corrupted = false;
  for (std::size_t s = 0; s < system_->data_server_count(); ++s) {
    auto& srv = system_->data_server(s);
    auto stats = srv.stats();
    if (stats.unique_chunks > 0) {
      // Re-store a recipe-unrelated corruption: easiest reliable corruption
      // is via the stub file instead.
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  // Corrupt the stub file (stored on one data server under "stub/").
  for (std::size_t s = 0; s < system_->data_server_count(); ++s) {
    auto& srv = system_->data_server(s);
    if (srv.HasObject(server::StoreId::kData, "stub/tamper-file")) {
      Bytes blob = srv.GetObject(server::StoreId::kData, "stub/tamper-file");
      blob[blob.size() / 2] ^= 1;
      srv.PutObject(server::StoreId::kData, "stub/tamper-file", std::move(blob));
    }
  }
  EXPECT_THROW(alice->Download("tamper-file"), Error);
}

TEST_F(IntegrationTest, FixedSizeChunkingWorksEndToEnd) {
  ClientOptions opts = FastClientOptions(aont::Scheme::kBasic);
  opts.avg_chunk_size = 0;  // fixed-size mode
  opts.fixed_chunk_size = 4096;
  auto alice = system_->CreateClient("alice", opts);
  Bytes file = TestFile(100 * 1000, 10);
  auto result = alice->Upload("fixed-file", file, {"alice"});
  EXPECT_EQ(result.chunk_count, (file.size() + 4095) / 4096);
  EXPECT_EQ(alice->Download("fixed-file"), file);
}

TEST_F(IntegrationTest, TraceDrivenUploadDeduplicates) {
  // Mini version of Experiment B: two consecutive daily snapshots of one
  // user; day 2 should dedup almost entirely against day 1.
  trace::TraceOptions topts;
  topts.num_users = 1;
  topts.num_days = 2;
  topts.user_snapshot_bytes = 2 << 20;
  topts.seed = 42;
  trace::TraceGenerator gen(topts);

  auto alice = system_->CreateClient("alice",
                                     FastClientOptions(aont::Scheme::kEnhanced));
  auto day0 = trace::MaterializeSnapshot(gen.GetSnapshot(0, 0));
  auto day1 = trace::MaterializeSnapshot(gen.GetSnapshot(0, 1));

  auto r0 = alice->UploadChunked("trace-day0", day0.data, day0.refs, {"alice"});
  auto r1 = alice->UploadChunked("trace-day1", day1.data, day1.refs, {"alice"});
  EXPECT_EQ(r0.duplicate_chunks, 0u);
  EXPECT_GT(static_cast<double>(r1.duplicate_chunks) /
                static_cast<double>(r1.chunk_count),
            0.9);
  EXPECT_EQ(alice->Download("trace-day1"), day1.data);
}

TEST_F(IntegrationTest, FileIdObfuscationHidesPathnames) {
  // Paper §IV-D: pathnames are obfuscated via a salted hash before they
  // reach the cloud. Both users share the salt, so sharing still works,
  // but no stored object name contains the plaintext path.
  ClientOptions opts = FastClientOptions(aont::Scheme::kEnhanced);
  opts.file_id_salt = ToBytes("org-wide-metadata-salt");
  auto alice = system_->CreateClient("alice", opts);
  auto bob = system_->CreateClient("bob", opts);

  Bytes file = TestFile(64 << 10, 30);
  const std::string path = "/home/alice/secret-project/plan.txt";
  DiscardResult(alice->Upload(path, file, {"alice", "bob"}));
  EXPECT_EQ(bob->Download(path), file);

  // The plaintext path never appears as an object name on any server.
  std::string obfuscated = store::ObfuscateFileId(path, opts.file_id_salt);
  bool found_obfuscated = false;
  for (std::size_t s = 0; s < system_->data_server_count(); ++s) {
    auto& srv = system_->data_server(s);
    EXPECT_FALSE(srv.HasObject(server::StoreId::kData, "recipe/" + path));
    EXPECT_FALSE(srv.HasObject(server::StoreId::kData, "stub/" + path));
    if (srv.HasObject(server::StoreId::kData, "recipe/" + obfuscated)) {
      found_obfuscated = true;
    }
  }
  EXPECT_TRUE(found_obfuscated);
  EXPECT_FALSE(
      system_->key_server().HasObject(server::StoreId::kKey, "keystate/" + path));

  // A client with a different salt cannot even locate the file.
  ClientOptions other_salt = opts;
  other_salt.file_id_salt = ToBytes("different-salt");
  auto carol = system_->CreateClient("alice", other_salt);
  EXPECT_THROW(carol->Download(path), Error);
}

TEST_F(IntegrationTest, StorageStatsAccounting) {
  ReedSystem fresh(FastSystemOptions());
  fresh.RegisterUser("alice");
  auto alice = fresh.CreateClient("alice",
                                  FastClientOptions(aont::Scheme::kEnhanced));
  Bytes file = TestFile(512 << 10, 11);
  auto r1 = alice->Upload("stats-1", file, {"alice"});
  auto r2 = alice->Upload("stats-2", file, {"alice"});

  auto stats = fresh.TotalStats();
  EXPECT_EQ(stats.logical_chunks, r1.chunk_count + r2.chunk_count);
  EXPECT_EQ(stats.unique_chunks, r1.chunk_count);
  EXPECT_GT(stats.stub_bytes, 0u);
  // Stub files do not dedup: two files of identical content => 2x stubs.
  EXPECT_GE(stats.stub_bytes, 2 * (r1.chunk_count * 64));
  // Physical bytes ≈ half the logical trimmed-package bytes (full dedup of
  // the second copy).
  EXPECT_LT(stats.physical_bytes, stats.logical_bytes * 6 / 10);
}

// --------------------------- over real TCP ---------------------------

TEST(TcpIntegrationTest, FullProtocolOverLoopbackSockets) {
  // Stand up the key manager and one storage server behind real TCP
  // listeners, then run a complete upload/download through sockets.
  DeterministicRng rng(500);
  keymanager::KeyManager::Options km_opts;
  km_opts.rsa_bits = 512;
  keymanager::KeyManager km(rsa::GenerateKeyPair(512, rng), km_opts);
  server::StorageServer storage("tcp-server");

  net::TcpListener km_listener(0);
  net::TcpListener storage_listener(0);
  std::thread km_thread([&] {
    net::ServeTransport(km_listener.Accept(),
                        [&](ByteSpan req) { return km.HandleRequest(req); });
  });
  std::thread storage_thread([&] {
    net::ServeTransport(storage_listener.Accept(), [&](ByteSpan req) {
      return storage.HandleRequest(req);
    });
  });

  {
    auto km_channel = std::make_shared<net::TcpChannel>(
        net::TcpTransport::Connect("127.0.0.1", km_listener.port()));
    auto storage_channel = std::make_shared<net::TcpChannel>(
        net::TcpTransport::Connect("127.0.0.1", storage_listener.port()));

    auto pairing = std::make_shared<const pairing::TypeAPairing>(
        pairing::TypeAParams::Default());
    auto abe = std::make_shared<const abe::CpAbe>(pairing);
    auto setup = abe->Setup(rng);
    auto access_key = abe->KeyGen(setup.pk, setup.mk, {"user:alice"}, rng);
    auto derivation = rsa::GenerateKeyPair(512, rng);

    auto storage_client = std::make_shared<client::StorageClient>(
        std::vector<std::shared_ptr<net::RpcChannel>>{storage_channel},
        storage_channel);
    auto keys = std::make_shared<keymanager::MleKeyClient>(
        "alice", km.public_key(), km_channel,
        keymanager::MleKeyClient::Options{});

    ClientOptions copts = FastClientOptions(aont::Scheme::kEnhanced);
    client::ReedClient alice("alice", copts, storage_client, keys, abe,
                             setup.pk, access_key, derivation);

    Bytes file = TestFile(256 << 10, 12);
    auto result = alice.Upload("tcp-file", file, {"alice"});
    EXPECT_EQ(result.stored_chunks, result.chunk_count);
    EXPECT_EQ(alice.Download("tcp-file"), file);
    auto rekey = alice.Rekey("tcp-file", {"alice"}, RevocationMode::kActive);
    EXPECT_TRUE(rekey.stub_reencrypted);
    EXPECT_EQ(alice.Download("tcp-file"), file);
  }  // channels close -> server loops exit
  km_thread.join();
  storage_thread.join();
}

}  // namespace
}  // namespace reed
