// Key-manager + MLE key client tests: OPRF batching, wire protocol, rate
// limiting, and key-cache behaviour.
#include <gtest/gtest.h>

#include "crypto/random.h"
#include "keymanager/key_manager.h"
#include "keymanager/mle_key_client.h"

namespace reed::keymanager {
namespace {

using crypto::DeterministicRng;

rsa::RsaKeyPair SharedTestKeys() {
  static rsa::RsaKeyPair keys = [] {
    DeterministicRng rng(1000);
    return rsa::GenerateKeyPair(512, rng);
  }();
  return keys;
}

KeyManager MakeManager(KeyManager::Options options = {}) {
  return KeyManager(SharedTestKeys(), options);
}

std::vector<chunk::Fingerprint> MakeFingerprints(int n, std::uint64_t seed) {
  DeterministicRng rng(seed);
  std::vector<chunk::Fingerprint> fps;
  for (int i = 0; i < n; ++i) {
    fps.push_back(chunk::Fingerprint::Of(rng.Generate(100)));
  }
  return fps;
}

std::shared_ptr<net::RpcChannel> DirectChannel(KeyManager& km) {
  return std::make_shared<net::LocalChannel>(
      [&km](ByteSpan req) { return km.HandleRequest(req); });
}

TEST(KeyManagerTest, SignBatchProducesValidSignatures) {
  KeyManager km = MakeManager();
  DeterministicRng rng(1);
  rsa::BlindSignatureClient bc(km.public_key());
  auto req = bc.Blind(ToBytes("fp"), rng);
  auto sigs = km.SignBatch("alice", {req.blinded});
  ASSERT_EQ(sigs.size(), 1u);
  EXPECT_EQ(bc.Unblind(req, sigs[0]).size(), 32u);
  EXPECT_EQ(km.stats().batches, 1u);
  EXPECT_EQ(km.stats().signatures, 1u);
}

TEST(KeyManagerTest, RateLimitingRejectsExcessRequests) {
  KeyManager::Options opts;
  opts.rate_limit_per_sec = 1.0;
  opts.rate_limit_burst = 10.0;
  KeyManager km = MakeManager(opts);
  DeterministicRng rng(2);
  rsa::BlindSignatureClient bc(km.public_key());

  std::vector<bigint::BigInt> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(bc.Blind(ToBytes("fp" + std::to_string(i)), rng).blinded);
  }
  (void)km.SignBatch("bob", batch);               // 8 of 10 tokens
  EXPECT_THROW(km.SignBatch("bob", batch), RateLimitedError);
  // A different client has its own bucket.
  EXPECT_NO_THROW(km.SignBatch("carol", batch));
  EXPECT_EQ(km.stats().rejected, 1u);
}

TEST(KeyManagerTest, WireProtocolRoundTrip) {
  KeyManager km = MakeManager();
  DeterministicRng rng(3);
  rsa::BlindSignatureClient bc(km.public_key());
  std::size_t nbytes = km.public_key().ByteLength();

  auto r1 = bc.Blind(ToBytes("a"), rng);
  auto r2 = bc.Blind(ToBytes("b"), rng);
  Bytes request = KeyManager::EncodeRequest("alice", {r1.blinded, r2.blinded},
                                            nbytes);
  Bytes response = km.HandleRequest(request);
  auto sigs = KeyManager::DecodeResponse(response, nbytes, 2);
  EXPECT_EQ(bc.Unblind(r1, sigs[0]).size(), 32u);
  EXPECT_EQ(bc.Unblind(r2, sigs[1]).size(), 32u);
}

TEST(KeyManagerTest, MalformedWireRequestGetsErrorStatus) {
  KeyManager km = MakeManager();
  Bytes garbage(3, 0xFF);
  Bytes response = km.HandleRequest(garbage);
  EXPECT_THROW(
      KeyManager::DecodeResponse(response, km.public_key().ByteLength(), 0),
      Error);
}

TEST(MleKeyClientTest, KeysAreDeterministicAcrossClients) {
  KeyManager km = MakeManager();
  MleKeyClient::Options opts;
  MleKeyClient c1("alice", km.public_key(), DirectChannel(km), opts);
  MleKeyClient c2("bob", km.public_key(), DirectChannel(km), opts);
  DeterministicRng rng(4);

  auto fps = MakeFingerprints(5, 5);
  auto k1 = c1.GetKeys(fps, rng);
  auto k2 = c2.GetKeys(fps, rng);
  ASSERT_EQ(k1.size(), k2.size());
  for (std::size_t i = 0; i < k1.size(); ++i) {
    // Same chunk -> same MLE key, across users.
    EXPECT_TRUE(k1[i].ConstantTimeEquals(k2[i]));
  }
  for (const auto& k : k1) EXPECT_EQ(k.size(), 32u);
}

TEST(MleKeyClientTest, CacheServesRepeatRequests) {
  KeyManager km = MakeManager();
  MleKeyClient client("alice", km.public_key(), DirectChannel(km), {});
  DeterministicRng rng(6);

  auto fps = MakeFingerprints(10, 7);
  (void)client.GetKeys(fps, rng);
  EXPECT_EQ(client.stats().cache_misses, 10u);
  (void)client.GetKeys(fps, rng);
  EXPECT_EQ(client.stats().cache_hits, 10u);
  EXPECT_EQ(km.stats().signatures, 10u);  // no extra server work

  client.ClearCache();
  (void)client.GetKeys(fps, rng);
  EXPECT_EQ(km.stats().signatures, 20u);
}

TEST(MleKeyClientTest, DisabledCacheAlwaysFetches) {
  KeyManager km = MakeManager();
  MleKeyClient::Options opts;
  opts.enable_cache = false;
  MleKeyClient client("alice", km.public_key(), DirectChannel(km), opts);
  DeterministicRng rng(8);
  auto fps = MakeFingerprints(4, 9);
  (void)client.GetKeys(fps, rng);
  (void)client.GetKeys(fps, rng);
  EXPECT_EQ(km.stats().signatures, 8u);
}

TEST(MleKeyClientTest, BatchingSplitsLargeRequests) {
  KeyManager km = MakeManager();
  MleKeyClient::Options opts;
  opts.batch_size = 8;
  MleKeyClient client("alice", km.public_key(), DirectChannel(km), opts);
  DeterministicRng rng(10);
  auto fps = MakeFingerprints(20, 11);
  auto keys = client.GetKeys(fps, rng);
  EXPECT_EQ(keys.size(), 20u);
  EXPECT_EQ(client.stats().batches_sent, 3u);  // 8 + 8 + 4
  EXPECT_EQ(km.stats().batches, 3u);
}

TEST(MleKeyClientTest, MixedHitMissBatchesPreserveOrder) {
  KeyManager km = MakeManager();
  MleKeyClient client("alice", km.public_key(), DirectChannel(km), {});
  DeterministicRng rng(12);
  auto fps = MakeFingerprints(6, 13);

  auto first = client.GetKeys({fps[0], fps[2], fps[4]}, rng);
  auto all = client.GetKeys(fps, rng);
  EXPECT_TRUE(all[0].ConstantTimeEquals(first[0]));
  EXPECT_TRUE(all[2].ConstantTimeEquals(first[1]));
  EXPECT_TRUE(all[4].ConstantTimeEquals(first[2]));
  // Distinct fingerprints map to distinct keys.
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      EXPECT_FALSE(all[i].ConstantTimeEquals(all[j]));
    }
  }
}

TEST(MleKeyClientTest, FailsOverToHealthyReplica) {
  KeyManager km = MakeManager();
  auto dead = std::make_shared<net::LocalChannel>(
      [](ByteSpan) -> Bytes { throw net::NetError("connection refused"); });
  MleKeyClient client("alice", km.public_key(),
                      {dead, DirectChannel(km)}, MleKeyClient::Options{});
  DeterministicRng rng(20);
  auto fps = MakeFingerprints(3, 21);
  auto keys = client.GetKeys(fps, rng);
  EXPECT_EQ(keys.size(), 3u);
  EXPECT_EQ(client.stats().failovers, 1u);

  // Keys from a failover path match keys from a direct path.
  MleKeyClient direct("bob", km.public_key(), DirectChannel(km),
                      MleKeyClient::Options{});
  auto direct_keys = direct.GetKeys(fps, rng);
  ASSERT_EQ(direct_keys.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(direct_keys[i].ConstantTimeEquals(keys[i]));
  }
}

TEST(MleKeyClientTest, AllReplicasDownThrows) {
  KeyManager km = MakeManager();
  auto dead = std::make_shared<net::LocalChannel>(
      [](ByteSpan) -> Bytes { throw net::NetError("down"); });
  MleKeyClient client("alice", km.public_key(), {dead, dead},
                      MleKeyClient::Options{});
  DeterministicRng rng(22);
  EXPECT_THROW(client.GetKeys(MakeFingerprints(1, 23), rng), Error);
  EXPECT_THROW(MleKeyClient("x", km.public_key(),
                            std::vector<std::shared_ptr<net::RpcChannel>>{},
                            MleKeyClient::Options{}),
               Error);
}

TEST(MleKeyClientTest, RateLimitErrorPropagates) {
  KeyManager::Options kopts;
  kopts.rate_limit_per_sec = 0.001;
  kopts.rate_limit_burst = 2.0;
  KeyManager km = MakeManager(kopts);
  MleKeyClient client("alice", km.public_key(), DirectChannel(km), {});
  DeterministicRng rng(14);
  auto fps = MakeFingerprints(5, 15);
  EXPECT_THROW(client.GetKeys(fps, rng), Error);
}

}  // namespace
}  // namespace reed::keymanager
