#include "model/harness.h"

#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "aont/reed_cipher.h"
#include "chunk/fingerprint.h"
#include "core/reed_system.h"
#include "crypto/random.h"
#include "model/reference_model.h"

namespace reed::modelcheck {

namespace {

using client::ReedClient;
using client::RevocationMode;
using model::Outcome;
using model::ReferenceModel;
using modelgen::Op;
using modelgen::OpKind;

// Small chunks keep the per-op crypto cheap; every generated file is a whole
// number of blocks so the model's slice-per-block view matches the client's
// fixed-size chunker exactly.
constexpr std::size_t kChunkSize = 1024;

core::SystemOptions FastSystemOptions(const HarnessOptions& options) {
  core::SystemOptions opts;
  opts.key_manager.rsa_bits = 512;  // test-speed keys, as integration_test
  opts.derivation_key_bits = 512;
  opts.num_data_servers = 4;
  opts.rng_seed = options.seed ^ 0xC0FFEEULL;
  opts.data_dir = options.data_dir;
  // The reopen cycle models a same-machine process restart (the page cache
  // survives), so the no-fsync policy is honest here and keeps runs fast.
  opts.durability.fsync_policy = store::FsyncPolicy::kNone;
  return opts;
}

client::ClientOptions ModelClientOptions(std::uint64_t seed,
                                         std::size_t pipeline_depth) {
  client::ClientOptions opts;
  opts.scheme = aont::Scheme::kEnhanced;
  opts.avg_chunk_size = 0;  // fixed-size chunking: model-predictable cuts
  opts.fixed_chunk_size = kChunkSize;
  opts.encryption_threads = 2;
  opts.pipeline.depth = pipeline_depth;
  opts.rng_seed = seed ^ 0xD1CEULL;
  return opts;
}

std::string UserName(std::uint32_t i) { return "u" + std::to_string(i); }

// The harness-side cluster + model bundle one run drives.
struct Cluster {
  std::unique_ptr<core::ReedSystem> system;
  std::vector<std::unique_ptr<ReedClient>> clients;  // one per user
  ReferenceModel model;
  std::uint64_t seed;

  Cluster(const HarnessOptions& options, model::ModelConfig config)
      : system(std::make_unique<core::ReedSystem>(FastSystemOptions(options))),
        model(std::move(config)),
        seed(options.seed) {
    for (std::uint32_t u = 0; u < options.num_users; ++u) {
      system->RegisterUser(UserName(u));
    }
    for (std::uint32_t u = 0; u < options.num_users; ++u) {
      clients.push_back(system->CreateClient(
          UserName(u), ModelClientOptions(options.seed + u,
                                          options.pipeline_depth)));
    }
  }
};

model::ModelConfig MakeModelConfig() {
  model::ModelConfig config;
  config.chunk_size = kChunkSize;
  config.stub_size = aont::kDefaultStubSize;
  // Trimmed-package size straight from the cipher's declared size contract.
  aont::ReedCipher cipher(aont::Scheme::kEnhanced, aont::kDefaultStubSize);
  config.trimmed_package_size = [cipher](std::uint64_t chunk_len) {
    return static_cast<std::uint64_t>(cipher.PackageSize(
               static_cast<std::size_t>(chunk_len))) -
           cipher.stub_size();
  };
  // Stub-blob overhead (IV + MAC) is constant; measure it once against the
  // real implementation instead of hard-coding the framing.
  crypto::DeterministicRng rng(42);
  Secret probe_key = rng.GenerateSecret(32);
  Secret probe_stub = rng.GenerateSecret(aont::kDefaultStubSize);
  const std::uint64_t overhead =
      aont::EncryptStubFile(probe_stub, probe_key, rng).size() -
      aont::kDefaultStubSize;
  config.stub_blob_size = [overhead](std::uint64_t stub_len) {
    return stub_len + overhead;
  };
  return config;
}

Bytes BuildData(std::uint64_t seed, const std::vector<std::uint32_t>& blocks) {
  Bytes data;
  data.reserve(blocks.size() * kChunkSize);
  for (std::uint32_t b : blocks) {
    const std::string block = modelgen::BlockContent(seed, b, kChunkSize);
    data.insert(data.end(), block.begin(), block.end());
  }
  return data;
}

std::vector<model::BlockKey> BlockKeys(std::uint64_t seed,
                                       const std::vector<std::uint32_t>& blocks) {
  std::vector<model::BlockKey> keys;
  keys.reserve(blocks.size());
  for (std::uint32_t b : blocks) {
    keys.push_back(modelgen::BlockContent(seed, b, kChunkSize));
  }
  return keys;
}

std::vector<std::string> UserNames(const std::vector<std::uint32_t>& users) {
  std::vector<std::string> names;
  names.reserve(users.size());
  for (std::uint32_t u : users) names.push_back(UserName(u));
  return names;
}

std::vector<chunk::ChunkRef> FixedRefs(std::size_t n_blocks) {
  std::vector<chunk::ChunkRef> refs(n_blocks);
  for (std::size_t i = 0; i < n_blocks; ++i) {
    refs[i] = {i * kChunkSize, kChunkSize};
  }
  return refs;
}

struct ServerSnapshot {
  std::vector<server::StorageServer::Stats> stats;
};

ServerSnapshot SnapshotServers(core::ReedSystem& system) {
  ServerSnapshot snap;
  for (std::size_t i = 0; i < system.data_server_count(); ++i) {
    snap.stats.push_back(system.data_server(i).stats());
  }
  return snap;
}

std::vector<std::string> SnapshotDigests(core::ReedSystem& system) {
  std::vector<std::string> digests;
  for (std::size_t i = 0; i < system.data_server_count(); ++i) {
    digests.push_back(system.data_server(i).PackageDigest());
  }
  return digests;
}

// Objects are sharded by name hash; scan for the data server holding one.
server::StorageServer* FindObjectServer(core::ReedSystem& system,
                                        const std::string& name) {
  for (std::size_t i = 0; i < system.data_server_count(); ++i) {
    if (system.data_server(i).HasObject(server::StoreId::kData, name)) {
      return &system.data_server(i);
    }
  }
  return nullptr;
}

bool SecretDecryptsStub(const Bytes& stub_blob, const rsa::KeyState& state) {
  try {
    (void)aont::DecryptStubFile(stub_blob, state.DeriveFileKey());
    return true;
  } catch (const Error&) {
    return false;
  }
}

// Everything one sequential run needs, so the per-op checks can be small
// named functions instead of one giant loop body.
class SequentialRun {
 public:
  explicit SequentialRun(const HarnessOptions& options)
      : options_(options),
        cluster_(options, MakeModelConfig()),
        harness_rng_(options.seed ^ 0xFEEDULL) {
    modelgen::GeneratorConfig gen;
    gen.num_users = options.num_users;
    ops_ = modelgen::GenerateOps(options.seed, options.num_ops, gen);
  }

  RunReport Run() {
    RunReport report;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      std::string divergence = Step(ops_[i]);
      if (divergence.empty() && options_.reopen_every > 0 &&
          (i + 1) % options_.reopen_every == 0) {
        // Alternate clean (checkpoint) and crash-style (WAL replay) restarts
        // so both recovery paths run against every oracle.
        const bool checkpoint_first =
            ((i + 1) / options_.reopen_every) % 2 == 1;
        if (std::string d = ReopenCluster(checkpoint_first); !d.empty()) {
          divergence = "reopen after op: " + d;
        }
      }
      report.ops_executed = i + 1;
      if (!divergence.empty()) {
        report.ok = false;
        report.divergence =
            "op " + std::to_string(i) + " (" + modelgen::FormatOp(ops_[i]) +
            "): " + divergence;
        report.repro_path = WriteRepro(i, report.divergence);
        return report;
      }
    }
    std::string final_check = FinalSweep();
    if (!final_check.empty()) {
      report.ok = false;
      report.divergence = "final sweep: " + final_check;
      report.repro_path = WriteRepro(ops_.size(), report.divergence);
    }
    return report;
  }

 private:
  // Runs one op against both sides; returns "" or a divergence description.
  std::string Step(const Op& op) {
    switch (op.kind) {
      case OpKind::kUpload:
      case OpKind::kUploadChunked:
        return StepUpload(op);
      case OpKind::kDownload:
        return StepDownload(op);
      case OpKind::kRekey:
      case OpKind::kRekeyGroup:
        return StepRekey(op);
      case OpKind::kEncryptChunks:
        return StepEncryptChunks(op);
      case OpKind::kChunkData:
        return StepChunkData(op);
    }
    return "unknown op kind";
  }

  std::string StepUpload(const Op& op) {
    ReedClient& client = *cluster_.clients[op.user];
    const Bytes data = BuildData(cluster_.seed, op.blocks);
    const ServerSnapshot before = SnapshotServers(*cluster_.system);

    bool real_ok = true;
    client::UploadResult real{};
    try {
      if (op.kind == OpKind::kUploadChunked) {
        real = client.UploadChunked(op.file_id, data,
                                    FixedRefs(op.blocks.size()),
                                    UserNames(op.auth_users));
      } else {
        real = client.Upload(op.file_id, data, UserNames(op.auth_users));
      }
    } catch (const Error&) {
      real_ok = false;
    }

    model::ModelUploadResult want = cluster_.model.Upload(
        UserName(op.user), op.file_id, BlockKeys(cluster_.seed, op.blocks),
        UserNames(op.auth_users));
    if (std::string d = DiffOutcome(real_ok, want.outcome); !d.empty()) {
      return d;
    }
    if (!real_ok) return "";

    if (real.logical_bytes != want.logical_bytes ||
        real.chunk_count != want.chunk_count ||
        real.duplicate_chunks != want.duplicate_chunks ||
        real.stored_chunks != want.stored_chunks ||
        real.stored_bytes != want.stored_bytes ||
        real.stub_bytes != want.stub_bytes) {
      return "upload counters diverge: real{logical=" +
             std::to_string(real.logical_bytes) +
             " chunks=" + std::to_string(real.chunk_count) +
             " dup=" + std::to_string(real.duplicate_chunks) +
             " stored=" + std::to_string(real.stored_chunks) +
             " stored_bytes=" + std::to_string(real.stored_bytes) +
             " stub_bytes=" + std::to_string(real.stub_bytes) +
             "} model{logical=" + std::to_string(want.logical_bytes) +
             " chunks=" + std::to_string(want.chunk_count) +
             " dup=" + std::to_string(want.duplicate_chunks) +
             " stored=" + std::to_string(want.stored_chunks) +
             " stored_bytes=" + std::to_string(want.stored_bytes) +
             " stub_bytes=" + std::to_string(want.stub_bytes) + "}";
    }
    if (std::string d = DiffServerDeltas(before, want.stored_chunks,
                                         want.stored_bytes,
                                         want.chunk_count);
        !d.empty()) {
      return d;
    }
    return DiffKeyStateRecord(op.file_id);
  }

  std::string StepDownload(const Op& op) {
    ReedClient& client = *cluster_.clients[op.user];
    const ServerSnapshot before = SnapshotServers(*cluster_.system);
    bool real_ok = true;
    Bytes real;
    try {
      real = client.Download(op.file_id);
    } catch (const Error&) {
      real_ok = false;
    }
    model::ModelDownloadResult want =
        cluster_.model.Download(UserName(op.user), op.file_id);
    if (std::string d = DiffOutcome(real_ok, want.outcome); !d.empty()) {
      return d;
    }
    if (real_ok &&
        std::string(real.begin(), real.end()) != want.data) {
      return "download bytes diverge from model (size " +
             std::to_string(real.size()) + " vs " +
             std::to_string(want.data.size()) + ")";
    }
    // Reads must not mutate dedup state.
    return DiffServerDeltas(before, 0, 0, 0);
  }

  std::string StepRekey(const Op& op) {
    ReedClient& client = *cluster_.clients[op.user];
    const std::string user = UserName(op.user);
    const std::vector<std::string> files =
        op.kind == OpKind::kRekey ? std::vector<std::string>{op.file_id}
                                  : op.group_files;

    // Pre-op snapshots for the security oracles and the bug injections,
    // gated on the model's CURRENT state (before the model op applies).
    struct PreState {
      std::string file_id;
      rsa::KeyState old_state;
      Bytes old_stub;
      server::StorageServer* stub_server = nullptr;
      Bytes old_record;  // serialized key-state object
    };
    std::vector<PreState> pre;
    for (const std::string& fid : files) {
      if (!cluster_.model.Exists(fid) || cluster_.model.Owner(fid) != user) {
        break;  // the real loop stops here too; later files stay untouched
      }
      PreState p;
      p.file_id = fid;
      p.old_state = client.InspectKeyState(fid);
      p.stub_server = FindObjectServer(*cluster_.system, "stub/" + fid);
      if (p.stub_server == nullptr) return "stub object missing for " + fid;
      p.old_stub =
          p.stub_server->GetObject(server::StoreId::kData, "stub/" + fid);
      p.old_record = cluster_.system->key_server().GetObject(
          server::StoreId::kKey, "keystate/" + fid);
      pre.push_back(std::move(p));
    }
    const std::vector<std::string> digests_before =
        SnapshotDigests(*cluster_.system);
    const RevocationMode mode =
        op.active ? RevocationMode::kActive : RevocationMode::kLazy;

    bool real_ok = true;
    std::vector<client::RekeyResult> real;
    try {
      if (op.kind == OpKind::kRekey) {
        real.push_back(client.Rekey(op.file_id, UserNames(op.auth_users), mode));
      } else {
        real = client.RekeyGroup(op.group_files, UserNames(op.auth_users), mode);
      }
    } catch (const Error&) {
      real_ok = false;
    }

    InjectBug(pre, op.active);

    // Model side.
    model::ModelGroupRekeyResult want;
    if (op.kind == OpKind::kRekey) {
      model::ModelRekeyResult r = cluster_.model.Rekey(
          user, op.file_id, UserNames(op.auth_users), op.active);
      want.outcome = r.outcome;
      if (r.outcome == Outcome::kOk) want.applied.push_back(r);
    } else {
      want = cluster_.model.RekeyGroup(user, op.group_files,
                                       UserNames(op.auth_users), op.active);
    }
    if (std::string d = DiffOutcome(real_ok, want.outcome); !d.empty()) {
      return d;
    }
    if (real_ok) {
      if (real.size() != want.applied.size()) {
        return "rekey result count " + std::to_string(real.size()) +
               " vs model " + std::to_string(want.applied.size());
      }
      for (std::size_t i = 0; i < real.size(); ++i) {
        if (real[i].new_version != want.applied[i].new_version ||
            real[i].stub_reencrypted != want.applied[i].stub_reencrypted ||
            real[i].stub_bytes != want.applied[i].stub_bytes) {
          return "rekey result diverges for " + files[i] + ": real{v=" +
                 std::to_string(real[i].new_version) + " stub=" +
                 (real[i].stub_reencrypted ? "re" : "keep") + " bytes=" +
                 std::to_string(real[i].stub_bytes) + "} model{v=" +
                 std::to_string(want.applied[i].new_version) + " stub=" +
                 (want.applied[i].stub_reencrypted ? "re" : "keep") +
                 " bytes=" + std::to_string(want.applied[i].stub_bytes) + "}";
        }
      }
    }

    // Invariant (both modes, success or partial failure): rekeying NEVER
    // rewrites trimmed packages on any server (paper §IV-A).
    const std::vector<std::string> digests_after =
        SnapshotDigests(*cluster_.system);
    for (std::size_t i = 0; i < digests_before.size(); ++i) {
      if (digests_before[i] != digests_after[i]) {
        return "security invariant violated: package digest changed on " +
               cluster_.system->data_server(i).name() + " across a rekey";
      }
    }

    // Per-file oracles over the files the model says were rekeyed.
    for (std::size_t i = 0; i < want.applied.size() && i < pre.size(); ++i) {
      const PreState& p = pre[i];
      if (std::string d = DiffKeyStateRecord(p.file_id); !d.empty()) return d;
      Bytes new_stub = p.stub_server->GetObject(server::StoreId::kData,
                                                "stub/" + p.file_id);
      if (op.active) {
        // Security oracle: a key state snapshotted BEFORE the rekey must be
        // useless against the re-encrypted stub...
        if (SecretDecryptsStub(new_stub, p.old_state)) {
          return "security invariant violated: pre-rekey key state still "
                 "decrypts the stub file of " + p.file_id +
                 " after active revocation";
        }
        // ...while the wound state decrypts it (the rekey actually landed).
        rsa::KeyState fresh = client.InspectKeyState(p.file_id);
        if (!SecretDecryptsStub(new_stub, fresh)) {
          return "post-rekey key state fails to decrypt the stub file of " +
                 p.file_id + " (stub re-encryption missing or wrong)";
        }
      } else {
        // Lazy revocation leaves the stub file bytes untouched.
        if (new_stub != p.old_stub) {
          return "lazy rekey rewrote the stub file of " + p.file_id;
        }
      }
    }
    return "";
  }

  std::string StepEncryptChunks(const Op& op) {
    const Bytes data = BuildData(cluster_.seed, op.blocks);
    const ServerSnapshot before = SnapshotServers(*cluster_.system);
    const std::vector<chunk::ChunkRef> refs = FixedRefs(op.blocks.size());
    std::vector<chunk::Fingerprint> fps;
    for (const chunk::ChunkRef& r : refs) {
      fps.push_back(chunk::Fingerprint::Of(
          ByteSpan(data).subspan(r.offset, r.length)));
    }
    ReedClient& a = *cluster_.clients[op.user];
    ReedClient& b = *cluster_.clients[(op.user + 1) % cluster_.clients.size()];
    std::vector<Secret> keys_a = a.key_client().GetKeys(fps, harness_rng_);
    std::vector<Secret> keys_b = b.key_client().GetKeys(fps, harness_rng_);
    std::vector<aont::SealedChunk> sealed_a = a.EncryptChunks(data, refs, keys_a);
    std::vector<aont::SealedChunk> sealed_b = b.EncryptChunks(data, refs, keys_b);
    const auto& cfg = cluster_.model.config();
    for (std::size_t i = 0; i < sealed_a.size(); ++i) {
      // Deterministic encryption is what makes cross-user dedup work: two
      // clients sealing the same plaintext must emit identical packages.
      if (sealed_a[i].trimmed_package != sealed_b[i].trimmed_package) {
        return "deterministic-encryption invariant violated: two clients "
               "produced different trimmed packages for identical plaintext";
      }
      if (sealed_a[i].trimmed_package.size() !=
          cfg.trimmed_package_size(kChunkSize)) {
        return "trimmed package size " +
               std::to_string(sealed_a[i].trimmed_package.size()) +
               " != declared " +
               std::to_string(cfg.trimmed_package_size(kChunkSize));
      }
    }
    // Encryption-only path must not touch any server's dedup state.
    return DiffServerDeltas(before, 0, 0, 0);
  }

  std::string StepChunkData(const Op& op) {
    const Bytes data = BuildData(cluster_.seed, op.blocks);
    const ServerSnapshot before = SnapshotServers(*cluster_.system);
    std::vector<chunk::ChunkRef> refs =
        cluster_.clients[op.user]->ChunkData(data);
    if (refs.size() != op.blocks.size()) {
      return "fixed-size chunker produced " + std::to_string(refs.size()) +
             " chunks for " + std::to_string(op.blocks.size()) + " blocks";
    }
    for (std::size_t i = 0; i < refs.size(); ++i) {
      if (refs[i].offset != i * kChunkSize || refs[i].length != kChunkSize) {
        return "fixed-size chunk boundaries diverge at index " +
               std::to_string(i);
      }
    }
    return DiffServerDeltas(before, 0, 0, 0);
  }

  // Durable runs: restart every server from disk mid-sequence, exactly as a
  // process restart would, and check the restart-local oracles. The ops and
  // sweeps that follow then exercise every OTHER oracle (stub decryption,
  // key-state metadata, download bytes) against the recovered state.
  std::string ReopenCluster(bool checkpoint_first) {
    const std::vector<std::string> before = SnapshotDigests(*cluster_.system);
    cluster_.system->ReopenServers(checkpoint_first);
    const std::vector<std::string> after = SnapshotDigests(*cluster_.system);
    for (std::size_t s = 0; s < before.size(); ++s) {
      if (before[s] != after[s]) {
        return "security invariant violated: package digest changed across "
               "a restart on " + cluster_.system->data_server(s).name();
      }
    }
    for (std::size_t s = 0; s < cluster_.system->data_server_count(); ++s) {
      const auto rep = cluster_.system->data_server(s).CheckConsistency();
      if (!rep.ok) {
        return "server " + cluster_.system->data_server(s).name() +
               " failed CheckConsistency after restart: " + rep.detail;
      }
    }
    return "";
  }

  // --- shared diff helpers ---

  std::string DiffOutcome(bool real_ok, Outcome want) {
    const bool want_ok = want == Outcome::kOk;
    if (real_ok == want_ok) return "";
    if (real_ok) {
      return "real stack succeeded but model expects failure (" +
             std::string(model::OutcomeName(want)) + ")";
    }
    return "real stack threw but model expects success";
  }

  // Cluster-wide dedup deltas vs the model's. Content placement (which
  // server a fingerprint shards to) is crypto-dependent, so per-server the
  // check is "no growth anywhere when the model stored nothing"; the totals
  // must match exactly.
  std::string DiffServerDeltas(const ServerSnapshot& before,
                               std::size_t want_stored_chunks,
                               std::uint64_t want_stored_bytes,
                               std::size_t want_logical_chunks) {
    std::uint64_t chunks = 0, bytes = 0, logical = 0;
    for (std::size_t i = 0; i < cluster_.system->data_server_count(); ++i) {
      const auto now = cluster_.system->data_server(i).stats();
      const auto& was = before.stats[i];
      if (want_stored_chunks == 0 && now.unique_chunks != was.unique_chunks) {
        return "server " + cluster_.system->data_server(i).name() +
               " gained chunks on an op the model says stored nothing";
      }
      chunks += now.unique_chunks - was.unique_chunks;
      bytes += now.physical_bytes - was.physical_bytes;
      logical += now.logical_chunks - was.logical_chunks;
    }
    if (chunks != want_stored_chunks || bytes != want_stored_bytes ||
        logical != want_logical_chunks) {
      return "per-server delta mismatch: stored " + std::to_string(chunks) +
             "/" + std::to_string(bytes) + "B logical " +
             std::to_string(logical) + " vs model " +
             std::to_string(want_stored_chunks) + "/" +
             std::to_string(want_stored_bytes) + "B logical " +
             std::to_string(want_logical_chunks);
    }
    return "";
  }

  // The stored key-state record must mirror the model's metadata for the
  // file. Fetch+deserialize needs no authorization, so client 0 serves.
  std::string DiffKeyStateRecord(const std::string& file_id) {
    store::KeyStateRecord record =
        cluster_.clients[0]->InspectKeyStateRecord(file_id);
    if (record.owner_id != cluster_.model.Owner(file_id) ||
        record.key_version != cluster_.model.KeyVersion(file_id) ||
        record.stub_key_version != cluster_.model.StubKeyVersion(file_id)) {
      return "key-state record diverges for " + file_id + ": real{owner=" +
             record.owner_id + " v=" + std::to_string(record.key_version) +
             " stub_v=" + std::to_string(record.stub_key_version) +
             "} model{owner=" + cluster_.model.Owner(file_id) +
             " v=" + std::to_string(cluster_.model.KeyVersion(file_id)) +
             " stub_v=" +
             std::to_string(cluster_.model.StubKeyVersion(file_id)) + "}";
    }
    return "";
  }

  // Deliberate semantic corruption, applied behind the real op's back. See
  // Bug in harness.h; src/ itself stays correct. Templated over StepRekey's
  // local PreState vector.
  template <typename PreStates>
  void InjectBug(const PreStates& pre, bool active) {
    if (options_.bug == Bug::kNone) return;
    for (const auto& p : pre) {
      if (options_.bug == Bug::kSkipStubReencrypt && active) {
        p.stub_server->PutObject(server::StoreId::kData, "stub/" + p.file_id,
                                 p.old_stub);
      } else if (options_.bug == Bug::kStaleKeyState) {
        cluster_.system->key_server().PutObject(
            server::StoreId::kKey, "keystate/" + p.file_id, p.old_record);
      }
    }
  }

  // Every-file, every-user closing audit: metadata, access control, bytes,
  // dedup totals, and server self-consistency.
  std::string FinalSweep() {
    for (const std::string& fid : cluster_.model.FileIds()) {
      if (std::string d = DiffKeyStateRecord(fid); !d.empty()) return d;
      for (std::uint32_t u = 0; u < cluster_.clients.size(); ++u) {
        bool real_ok = true;
        Bytes data;
        try {
          data = cluster_.clients[u]->Download(fid);
        } catch (const Error&) {
          real_ok = false;
        }
        model::ModelDownloadResult want =
            cluster_.model.Download(UserName(u), fid);
        if (real_ok != (want.outcome == Outcome::kOk)) {
          return "final access check diverges for user " + UserName(u) +
                 " on " + fid + ": real " +
                 (real_ok ? "allowed" : "denied") + ", model " +
                 model::OutcomeName(want.outcome);
        }
        if (real_ok && std::string(data.begin(), data.end()) != want.data) {
          return "final download bytes diverge for " + fid;
        }
      }
    }
    std::uint64_t chunks = 0, bytes = 0;
    for (std::size_t i = 0; i < cluster_.system->data_server_count(); ++i) {
      const auto stats = cluster_.system->data_server(i).stats();
      chunks += stats.unique_chunks;
      bytes += stats.physical_bytes;
      const auto report = cluster_.system->data_server(i).CheckConsistency();
      if (!report.ok) {
        return "server " + cluster_.system->data_server(i).name() +
               " failed CheckConsistency: " + report.detail;
      }
    }
    if (chunks != cluster_.model.UniqueChunks() ||
        bytes != cluster_.model.StoredBytes()) {
      return "cluster dedup totals " + std::to_string(chunks) + "/" +
             std::to_string(bytes) + "B vs model " +
             std::to_string(cluster_.model.UniqueChunks()) + "/" +
             std::to_string(cluster_.model.StoredBytes()) + "B";
    }
    return "";
  }

  std::string WriteRepro(std::size_t failing_op, const std::string& why) {
    const std::string path = options_.repro_dir + "/reed_model_repro_seed" +
                             std::to_string(options_.seed) + ".txt";
    std::ofstream out(path);
    if (!out) return "";
    out << "# REED model-checker repro (replayable)\n"
        << "# seed=" << options_.seed << " ops=" << options_.num_ops
        << " users=" << options_.num_users
        << " depth=" << options_.pipeline_depth
        << " bug=" << BugName(options_.bug) << "\n"
        << "# divergence: " << why << "\n"
        << "# replay: reed_model_check --seed=" << options_.seed
        << " --ops=" << options_.num_ops
        << " --users=" << options_.num_users
        << " --depth=" << options_.pipeline_depth;
    if (options_.bug != Bug::kNone) out << " --bug=" << BugName(options_.bug);
    if (options_.reopen_every > 0) {
      out << " --reopen-every=" << options_.reopen_every
          << " --data-dir=<fresh dir>";
    }
    out << "\n#\n";
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      out << (i == failing_op ? ">" : " ") << " op " << i << ": "
          << modelgen::FormatOp(ops_[i]) << "\n";
    }
    return path;
  }

  HarnessOptions options_;
  Cluster cluster_;
  crypto::DeterministicRng harness_rng_;
  std::vector<Op> ops_;
};

}  // namespace

const char* BugName(Bug b) {
  switch (b) {
    case Bug::kNone: return "none";
    case Bug::kSkipStubReencrypt: return "skip-stub-reencrypt";
    case Bug::kStaleKeyState: return "stale-keystate";
  }
  return "?";
}

RunReport RunSequential(const HarnessOptions& options) {
  SequentialRun run(options);
  return run.Run();
}

RunReport RunConcurrent(const HarnessOptions& options) {
  RunReport report;
  Cluster cluster(options, MakeModelConfig());
  const std::size_t threads = cluster.clients.size();

  // Per-thread op tapes over disjoint file namespaces; the generator's
  // chosen executing user is overridden with the thread's own so ownership
  // stays thread-local while policies (and dedup) still cross threads.
  struct ThreadTape {
    std::vector<Op> ops;
    std::vector<bool> ok;
    std::vector<Bytes> downloads;           // empty for non-downloads
    std::uint64_t stored_chunks_total = 0;  // from real upload results
    std::uint64_t stored_bytes_total = 0;
  };
  std::vector<ThreadTape> tapes(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    modelgen::GeneratorConfig gen;
    gen.num_users = options.num_users;
    gen.file_prefix = "t" + std::to_string(t) + "f";
    tapes[t].ops = modelgen::GenerateOps(options.seed + 7919 * (t + 1),
                                         options.num_ops, gen);
    for (Op& op : tapes[t].ops) {
      op.user = static_cast<std::uint32_t>(t);
      // Group/solo rekeys by this thread's user over its own files keep
      // ownership checks meaningful without cross-thread metadata races.
    }
    tapes[t].ok.assign(tapes[t].ops.size(), true);
    tapes[t].downloads.resize(tapes[t].ops.size());
  }

  auto worker = [&](std::size_t t) {
    ReedClient& client = *cluster.clients[t];
    ThreadTape& tape = tapes[t];
    for (std::size_t i = 0; i < tape.ops.size(); ++i) {
      const Op& op = tape.ops[i];
      try {
        switch (op.kind) {
          case OpKind::kUpload: {
            auto r = client.Upload(op.file_id,
                                   BuildData(cluster.seed, op.blocks),
                                   UserNames(op.auth_users));
            tape.stored_chunks_total += r.stored_chunks;
            tape.stored_bytes_total += r.stored_bytes;
            break;
          }
          case OpKind::kUploadChunked: {
            auto r = client.UploadChunked(
                op.file_id, BuildData(cluster.seed, op.blocks),
                FixedRefs(op.blocks.size()), UserNames(op.auth_users));
            tape.stored_chunks_total += r.stored_chunks;
            tape.stored_bytes_total += r.stored_bytes;
            break;
          }
          case OpKind::kDownload:
            tape.downloads[i] = client.Download(op.file_id);
            break;
          case OpKind::kRekey:
            (void)client.Rekey(op.file_id, UserNames(op.auth_users),
                               op.active ? RevocationMode::kActive
                                         : RevocationMode::kLazy);
            break;
          case OpKind::kRekeyGroup:
            (void)client.RekeyGroup(op.group_files, UserNames(op.auth_users),
                                    op.active ? RevocationMode::kActive
                                              : RevocationMode::kLazy);
            break;
          case OpKind::kChunkData:
            (void)client.ChunkData(BuildData(cluster.seed, op.blocks));
            break;
          case OpKind::kEncryptChunks:
            // Stateless; the sequential mode covers the determinism diff.
            (void)client.ChunkData(BuildData(cluster.seed, op.blocks));
            break;
        }
      } catch (const Error&) {
        tape.ok[i] = false;
      }
    }
  };
  {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& th : pool) th.join();
  }

  // Replay every tape sequentially through ONE model (thread order). File
  // metadata is thread-local so per-op outcomes are order-independent; only
  // dedup attribution is racy, which the totals below check globally.
  std::uint64_t real_stored_chunks = 0, real_stored_bytes = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    ThreadTape& tape = tapes[t];
    real_stored_chunks += tape.stored_chunks_total;
    real_stored_bytes += tape.stored_bytes_total;
    for (std::size_t i = 0; i < tape.ops.size(); ++i) {
      const Op& op = tape.ops[i];
      bool want_ok = true;
      std::string want_data;
      switch (op.kind) {
        case OpKind::kUpload:
        case OpKind::kUploadChunked:
          want_ok = cluster.model
                        .Upload(UserName(op.user), op.file_id,
                                BlockKeys(cluster.seed, op.blocks),
                                UserNames(op.auth_users))
                        .outcome == Outcome::kOk;
          break;
        case OpKind::kDownload: {
          auto r = cluster.model.Download(UserName(op.user), op.file_id);
          want_ok = r.outcome == Outcome::kOk;
          want_data = std::move(r.data);
          break;
        }
        case OpKind::kRekey:
          want_ok = cluster.model
                        .Rekey(UserName(op.user), op.file_id,
                               UserNames(op.auth_users), op.active)
                        .outcome == Outcome::kOk;
          break;
        case OpKind::kRekeyGroup:
          want_ok = cluster.model
                        .RekeyGroup(UserName(op.user), op.group_files,
                                    UserNames(op.auth_users), op.active)
                        .outcome == Outcome::kOk;
          break;
        case OpKind::kChunkData:
        case OpKind::kEncryptChunks:
          break;
      }
      report.ops_executed++;
      if (tape.ok[i] != want_ok) {
        report.ok = false;
        report.divergence = "thread " + std::to_string(t) + " op " +
                            std::to_string(i) + " (" +
                            modelgen::FormatOp(op) + "): real " +
                            (tape.ok[i] ? "succeeded" : "threw") +
                            " but a sequential order predicts the opposite";
        return report;
      }
      if (op.kind == OpKind::kDownload && tape.ok[i] &&
          std::string(tape.downloads[i].begin(), tape.downloads[i].end()) !=
              want_data) {
        report.ok = false;
        report.divergence = "thread " + std::to_string(t) + " op " +
                            std::to_string(i) + ": download bytes diverge";
        return report;
      }
    }
  }

  // Global explainability: the cluster holds exactly the model's unique
  // content set, every content was stored exactly once across all racing
  // uploads, and every server's index/container pair is self-consistent.
  std::uint64_t chunks = 0, bytes = 0;
  for (std::size_t i = 0; i < cluster.system->data_server_count(); ++i) {
    const auto stats = cluster.system->data_server(i).stats();
    chunks += stats.unique_chunks;
    bytes += stats.physical_bytes;
    const auto consistency = cluster.system->data_server(i).CheckConsistency();
    if (!consistency.ok) {
      report.ok = false;
      report.divergence = "server " + cluster.system->data_server(i).name() +
                          " failed CheckConsistency: " + consistency.detail;
      return report;
    }
  }
  if (chunks != cluster.model.UniqueChunks() ||
      bytes != cluster.model.StoredBytes() ||
      real_stored_chunks != cluster.model.UniqueChunks() ||
      real_stored_bytes != cluster.model.StoredBytes()) {
    report.ok = false;
    report.divergence =
        "concurrent dedup totals diverge: servers " + std::to_string(chunks) +
        "/" + std::to_string(bytes) + "B, per-op sums " +
        std::to_string(real_stored_chunks) + "/" +
        std::to_string(real_stored_bytes) + "B, model " +
        std::to_string(cluster.model.UniqueChunks()) + "/" +
        std::to_string(cluster.model.StoredBytes()) + "B";
    return report;
  }

  // Final per-file audit mirrors the sequential sweep: bytes + access.
  for (const std::string& fid : cluster.model.FileIds()) {
    for (std::uint32_t u = 0; u < cluster.clients.size(); ++u) {
      bool real_ok = true;
      Bytes data;
      try {
        data = cluster.clients[u]->Download(fid);
      } catch (const Error&) {
        real_ok = false;
      }
      auto want = cluster.model.Download(UserName(u), fid);
      if (real_ok != (want.outcome == Outcome::kOk) ||
          (real_ok &&
           std::string(data.begin(), data.end()) != want.data)) {
        report.ok = false;
        report.divergence = "concurrent final audit diverges for user " +
                            UserName(u) + " on " + fid;
        return report;
      }
    }
  }
  return report;
}

}  // namespace reed::modelcheck
