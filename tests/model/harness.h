// Lockstep differential harness: drives the REAL REED stack (core::ReedSystem
// with its clients, servers, and key manager) and the reference model through
// the same generated operation sequence, diffing every observable after every
// op (DESIGN.md §11):
//
//   * op outcome (success vs which failure) and result counters,
//   * download bytes against the model's file contents,
//   * per-server stored-chunk / stored-byte deltas against the model's
//     global dedup set,
//   * key-state record metadata (owner, key version, stub version),
//   * security oracles after every rekey: the pre-rekey key state must fail
//     to decrypt the post-rekey stub (active), and every server's
//     PackageDigest must be bit-identical across the rekey (both modes —
//     revocation never rewrites packages, paper §IV-A).
//
// On the first divergence the harness writes a replayable repro file (the
// full op trace plus the exact reed_model_check invocation) and stops.
//
// Bug::k* deliberately corrupts the real stack AFTER an op, at the harness
// level — src/ stays correct — to prove the checker catches the class of
// semantic bug it exists for. The WILL_FAIL ctest fixtures in
// tests/CMakeLists.txt pin that property.
#pragma once

#include <cstdint>
#include <string>

#include "model/op_generator.h"

namespace reed::modelcheck {

enum class Bug {
  kNone,
  // Active rekey "forgets" to re-encrypt the stub file: the pre-rekey stub
  // bytes are restored after the op while the key-state record advertises
  // the new stub version. Caught by the stub-decryption oracles.
  kSkipStubReencrypt,
  // Rekey "forgets" to persist the new key-state record: the pre-rekey
  // record is restored, so a revoked user's old access silently survives.
  // Caught by the key-state metadata diff.
  kStaleKeyState,
};

const char* BugName(Bug b);

struct HarnessOptions {
  std::uint64_t seed = 1;
  std::size_t num_ops = 40;
  std::size_t num_users = 3;
  std::size_t pipeline_depth = 2;  // 1 = legacy serial data path
  Bug bug = Bug::kNone;
  std::string repro_dir = ".";
  bool verbose = false;
  // Durable-store mode (sequential runs only): the cluster persists under
  // data_dir and every reopen_every ops all servers are restarted from disk
  // — alternating clean (checkpoint + reopen) and crash-style (reopen only)
  // — with the package-digest oracle checked across each restart. Every
  // security invariant above must keep holding on the recovered state;
  // this is what pins lazy-rekey key states surviving a restart.
  std::size_t reopen_every = 0;  // 0 = never reopen (in-memory cluster)
  std::string data_dir;          // required when reopen_every > 0
};

struct RunReport {
  bool ok = true;
  std::size_t ops_executed = 0;
  std::string divergence;  // first divergence, human-readable
  std::string repro_path;  // written on divergence
};

// Sequential lockstep run: full per-op diffing.
[[nodiscard]] RunReport RunSequential(const HarnessOptions& options);

// Concurrent mode: one thread per user, each driving its own client over a
// disjoint file-id namespace against the SHARED cluster (dedup still crosses
// threads). Per-op dedup counters are racy by design, so the check is
// linearizability-shaped instead: after the join, the final state must be
// explainable by the per-thread sequential orders — every file downloads to
// its model bytes, the cluster's unique-chunk set equals the model's, the
// sum of all per-op stored counters equals the global unique count (every
// content stored exactly once), and every server passes CheckConsistency.
// Honors REED_SCHEDULE_SEED like the rest of the concurrency suite.
[[nodiscard]] RunReport RunConcurrent(const HarnessOptions& options);

}  // namespace reed::modelcheck
