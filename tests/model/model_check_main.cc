// reed_model_check — standalone driver for the model-based differential
// checker (DESIGN.md §11). Exit 0 when the real stack matches the executable
// spec over the generated sequence; exit 1 with a replayable repro file on
// the first divergence.
//
//   reed_model_check --seed=3 --ops=60 [--users=3] [--depth=2]
//                    [--mode=sequential|concurrent] [--bug=none|
//                    skip-stub-reencrypt|stale-keystate] [--repro-dir=DIR]
//                    [--reopen-every=N --data-dir=DIR]
//
// --reopen-every (sequential mode, with --data-dir) makes the cluster
// durable and restarts every server from disk each N ops, checking that the
// security oracles hold on the recovered state (DESIGN.md §12). The data
// dir is WIPED first: each run must start from an empty store or the model
// and the recovered state would diverge on op 0.
//
// The --bug flags corrupt the stack at the harness level to prove the
// checker bites; the WILL_FAIL ctests pin them.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "model/harness.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  out = arg + len + 1;
  return true;
}

std::uint64_t ParseUint(const std::string& value, const char* what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    std::fprintf(stderr, "reed_model_check: bad %s '%s'\n", what,
                 value.c_str());
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  reed::modelcheck::HarnessOptions options;
  std::string mode = "sequential";
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--seed", value)) {
      options.seed = ParseUint(value, "--seed");
    } else if (ParseFlag(argv[i], "--ops", value)) {
      options.num_ops = ParseUint(value, "--ops");
    } else if (ParseFlag(argv[i], "--users", value)) {
      options.num_users = ParseUint(value, "--users");
    } else if (ParseFlag(argv[i], "--depth", value)) {
      options.pipeline_depth = ParseUint(value, "--depth");
    } else if (ParseFlag(argv[i], "--mode", value)) {
      mode = value;
    } else if (ParseFlag(argv[i], "--repro-dir", value)) {
      options.repro_dir = value;
    } else if (ParseFlag(argv[i], "--reopen-every", value)) {
      options.reopen_every = ParseUint(value, "--reopen-every");
    } else if (ParseFlag(argv[i], "--data-dir", value)) {
      options.data_dir = value;
    } else if (ParseFlag(argv[i], "--bug", value)) {
      if (value == "none") {
        options.bug = reed::modelcheck::Bug::kNone;
      } else if (value == "skip-stub-reencrypt") {
        options.bug = reed::modelcheck::Bug::kSkipStubReencrypt;
      } else if (value == "stale-keystate") {
        options.bug = reed::modelcheck::Bug::kStaleKeyState;
      } else {
        std::fprintf(stderr, "reed_model_check: unknown --bug '%s'\n",
                     value.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "reed_model_check: unknown argument '%s'\n",
                   argv[i]);
      return 2;
    }
  }

  if (options.reopen_every > 0 &&
      (options.data_dir.empty() || mode != "sequential")) {
    std::fprintf(stderr,
                 "reed_model_check: --reopen-every needs --data-dir and "
                 "--mode=sequential\n");
    return 2;
  }
  if (!options.data_dir.empty()) {
    std::filesystem::remove_all(options.data_dir);
  }

  reed::modelcheck::RunReport report;
  if (mode == "sequential") {
    report = reed::modelcheck::RunSequential(options);
  } else if (mode == "concurrent") {
    report = reed::modelcheck::RunConcurrent(options);
  } else {
    std::fprintf(stderr, "reed_model_check: unknown --mode '%s'\n",
                 mode.c_str());
    return 2;
  }

  if (report.ok) {
    std::printf("reed_model_check: OK (%zu ops, seed %llu, %s)\n",
                report.ops_executed,
                static_cast<unsigned long long>(options.seed), mode.c_str());
    return 0;
  }
  std::fprintf(stderr, "reed_model_check: DIVERGENCE\n  %s\n",
               report.divergence.c_str());
  if (!report.repro_path.empty()) {
    std::fprintf(stderr, "  repro written to %s\n", report.repro_path.c_str());
  }
  return 1;
}
