#include "model/op_generator.h"

#include <algorithm>
#include <iterator>
#include <set>
#include <type_traits>

namespace reed::modelgen {

namespace {

// Same SplitMix64 as util/schedule_fuzz.h: cheap, seedable, and good enough
// to make every sequence a pure function of its seed.
std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t x = (state += 0x9E3779B97F4A7C15ULL);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t RandBelow(std::uint64_t& state, std::uint64_t n) {
  return SplitMix64(state) % n;
}

bool Chance(std::uint64_t& state, std::uint32_t per_mille) {
  return RandBelow(state, 1000) < per_mille;
}

// Skewed pool pick: squaring a uniform [0,1) favors low indices, giving the
// zipf-ish reuse that makes dedup hits common without a zeta table.
std::uint32_t SkewedPick(std::uint64_t& state, std::size_t pool_size) {
  const double u =
      static_cast<double>(SplitMix64(state) >> 11) / 9007199254740992.0;
  const auto idx =
      static_cast<std::uint32_t>(u * u * static_cast<double>(pool_size));
  return std::min<std::uint32_t>(idx, static_cast<std::uint32_t>(pool_size - 1));
}

}  // namespace

// Every public ReedClient operation appears here (model_lint.py enforces
// both directions). Pure observers in the header carry `model-observable`
// instead — they are how the checker looks, not what it checks.
const OpSpec kOpTable[] = {
    {"Upload", OpKind::kUpload, 26},
    {"UploadChunked", OpKind::kUploadChunked, 6},
    {"Download", OpKind::kDownload, 30},
    {"Rekey", OpKind::kRekey, 16},
    {"RekeyGroup", OpKind::kRekeyGroup, 6},
    {"EncryptChunks", OpKind::kEncryptChunks, 4},
    {"ChunkData", OpKind::kChunkData, 4},
};
const std::size_t kOpTableSize = sizeof(kOpTable) / sizeof(kOpTable[0]);

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kUpload: return "upload";
    case OpKind::kUploadChunked: return "upload-chunked";
    case OpKind::kDownload: return "download";
    case OpKind::kRekey: return "rekey";
    case OpKind::kRekeyGroup: return "rekey-group";
    case OpKind::kEncryptChunks: return "encrypt-chunks";
    case OpKind::kChunkData: return "chunk-data";
  }
  return "?";
}

std::string BlockContent(std::uint64_t seed, std::uint32_t index,
                         std::size_t chunk_size) {
  std::string block(chunk_size, '\0');
  std::uint64_t state = seed ^ (0xB10CB10CULL + index * 0x9E3779B97F4A7C15ULL);
  for (std::size_t off = 0; off < chunk_size; off += 8) {
    const std::uint64_t word = SplitMix64(state);
    for (std::size_t i = 0; i < 8 && off + i < chunk_size; ++i) {
      block[off + i] = static_cast<char>((word >> (8 * i)) & 0xFF);
    }
  }
  return block;
}

std::vector<Op> GenerateOps(std::uint64_t seed, std::size_t num_ops,
                            const GeneratorConfig& config) {
  std::uint64_t state = seed ^ 0x5EEDC0DEULL;
  std::size_t pool_size = config.initial_pool;
  std::set<std::string> live;  // file ids the sequence has uploaded

  const std::uint32_t total_weight = [] {
    std::uint32_t w = 0;
    for (std::size_t i = 0; i < kOpTableSize; ++i) w += kOpTable[i].weight;
    return w;
  }();

  auto file_name = [&](std::uint64_t idx) {
    return config.file_prefix + std::to_string(idx);
  };
  auto pick_blocks = [&](std::size_t count) {
    std::vector<std::uint32_t> blocks;
    blocks.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (pool_size < config.max_pool && Chance(state, 150)) ++pool_size;
      blocks.push_back(SkewedPick(state, pool_size));
    }
    return blocks;
  };
  auto pick_users = [&](std::uint64_t& s) {
    // Anywhere from one user to everyone; the executing user is added by
    // the client (and the model) automatically.
    std::vector<std::uint32_t> users;
    for (std::uint32_t u = 0; u < config.num_users; ++u) {
      if (Chance(s, 500)) users.push_back(u);
    }
    if (users.empty()) {
      users.push_back(
          static_cast<std::uint32_t>(RandBelow(s, config.num_users)));
    }
    return users;
  };

  std::vector<Op> ops;
  ops.reserve(num_ops);
  // Calibration prologue: one single-block upload so the very first real op
  // exercises the clean all-new path (and anchors size predictions).
  {
    Op op;
    op.kind = OpKind::kUpload;
    op.user = 0;
    op.file_id = file_name(0);
    op.blocks = {0};
    op.auth_users = {0};
    live.insert(op.file_id);
    ops.push_back(std::move(op));
  }

  while (ops.size() < num_ops) {
    Op op;
    op.user = static_cast<std::uint32_t>(RandBelow(state, config.num_users));
    std::uint32_t roll =
        static_cast<std::uint32_t>(RandBelow(state, total_weight));
    OpKind kind = kOpTable[0].kind;
    for (std::size_t i = 0; i < kOpTableSize; ++i) {
      if (roll < kOpTable[i].weight) {
        kind = kOpTable[i].kind;
        break;
      }
      roll -= kOpTable[i].weight;
    }
    op.kind = kind;

    const bool miss = Chance(state, config.missing_file_pm);
    switch (kind) {
      case OpKind::kUpload:
      case OpKind::kUploadChunked: {
        op.file_id = file_name(RandBelow(state, config.num_files));
        op.blocks =
            pick_blocks(1 + RandBelow(state, config.max_file_blocks));
        op.auth_users = pick_users(state);
        live.insert(op.file_id);
        break;
      }
      case OpKind::kDownload: {
        if (miss || live.empty()) {
          op.file_id = config.file_prefix + "-missing-" +
                       std::to_string(RandBelow(state, 4));
        } else {
          auto it = live.begin();
          std::advance(it, RandBelow(state, live.size()));
          op.file_id = *it;
        }
        break;
      }
      case OpKind::kRekey: {
        if (miss || live.empty()) {
          op.file_id = config.file_prefix + "-missing-" +
                       std::to_string(RandBelow(state, 4));
        } else {
          auto it = live.begin();
          std::advance(it, RandBelow(state, live.size()));
          op.file_id = *it;
        }
        op.auth_users = pick_users(state);
        op.active = Chance(state, 500);
        break;
      }
      case OpKind::kRekeyGroup: {
        if (live.empty()) continue;  // nothing to group yet; reroll
        const std::size_t want = 1 + RandBelow(state, 3);
        std::set<std::string> members;
        for (std::size_t i = 0; i < want; ++i) {
          auto it = live.begin();
          std::advance(it, RandBelow(state, live.size()));
          members.insert(*it);
        }
        op.group_files.assign(members.begin(), members.end());
        op.auth_users = pick_users(state);
        op.active = Chance(state, 500);
        break;
      }
      case OpKind::kEncryptChunks:
      case OpKind::kChunkData: {
        op.blocks = pick_blocks(1 + RandBelow(state, 3));
        break;
      }
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::string FormatOp(const Op& op) {
  auto list = [](const auto& v) {
    std::string s = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) s += ",";
      if constexpr (std::is_same_v<std::decay_t<decltype(v[0])>,
                                   std::string>) {
        s += v[i];
      } else {
        s += std::to_string(v[i]);
      }
    }
    return s + "]";
  };
  std::string s = OpKindName(op.kind);
  s += " user=" + std::to_string(op.user);
  if (!op.file_id.empty()) s += " file=" + op.file_id;
  if (!op.group_files.empty()) s += " group=" + list(op.group_files);
  if (!op.blocks.empty()) s += " blocks=" + list(op.blocks);
  if (!op.auth_users.empty()) s += " auth=" + list(op.auth_users);
  if (op.kind == OpKind::kRekey || op.kind == OpKind::kRekeyGroup) {
    s += op.active ? " mode=active" : " mode=lazy";
  }
  return s;
}

}  // namespace reed::modelgen
