// Seeded operation-sequence generator for the model checker (DESIGN.md §11).
//
// A sequence is fully determined by (seed, GeneratorConfig): block contents
// are derived from the seed, so a repro file only needs the numbers. Ops are
// drawn from kOpTable — one entry per public client::ReedClient storage or
// compute operation; tools/lint/model_lint.py cross-checks that table
// against the real class so a new client op cannot ship without model
// coverage.
//
// Content reuse is skewed (a SplitMix64-fed power law over a slowly growing
// block pool) so dedup hits are common, and a fraction of ops deliberately
// target missing files, non-owned files, or revoked users so the failure
// semantics get diffed too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace reed::modelgen {

enum class OpKind {
  kUpload,
  kUploadChunked,  // same semantics, caller-supplied boundaries
  kDownload,
  kRekey,
  kRekeyGroup,
  kEncryptChunks,  // stateless: determinism probe, no server mutation
  kChunkData,      // stateless: boundary probe, no server mutation
};

const char* OpKindName(OpKind k);

struct Op {
  OpKind kind = OpKind::kUpload;
  std::uint32_t user = 0;                 // index into the user list
  std::string file_id;                    // empty for stateless ops
  std::vector<std::string> group_files;   // kRekeyGroup only
  std::vector<std::uint32_t> blocks;      // content-pool indices (uploads +
                                          // stateless probes)
  std::vector<std::uint32_t> auth_users;  // policy user indices
  bool active = false;                    // revocation mode
};

struct GeneratorConfig {
  std::size_t num_users = 3;
  std::size_t num_files = 6;       // file-id namespace size
  std::size_t max_file_blocks = 6; // blocks per generated file
  std::size_t initial_pool = 4;    // content pool starts this big
  std::size_t max_pool = 64;       // and grows up to this
  // Per-mille rate of ops aimed at a missing file id (expected failure).
  std::uint32_t missing_file_pm = 60;
  // Namespace prefix so concurrent harness threads stay disjoint.
  std::string file_prefix = "f";
};

// The weighted op mix. Names must match public ReedClient methods exactly —
// tools/lint/model_lint.py parses this table.
struct OpSpec {
  const char* method;
  OpKind kind;
  std::uint32_t weight;
};
extern const OpSpec kOpTable[];
extern const std::size_t kOpTableSize;

// Deterministic ops for (seed, config). The generator tracks which file ids
// it has uploaded so downloads/rekeys mostly hit live files.
[[nodiscard]] std::vector<Op> GenerateOps(std::uint64_t seed,
                                          std::size_t num_ops,
                                          const GeneratorConfig& config);

// Deterministic content block for a pool index: `chunk_size` bytes derived
// from (seed, index) only.
[[nodiscard]] std::string BlockContent(std::uint64_t seed, std::uint32_t index,
                                       std::size_t chunk_size);

// One-line human/replay form of an op, e.g.
//   upload user=1 file=f3 blocks=[0,2,2] auth=[0,1]
[[nodiscard]] std::string FormatOp(const Op& op);

}  // namespace reed::modelgen
