#include "model/reference_model.h"

#include <stdexcept>

namespace reed::model {

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kNoSuchFile: return "no-such-file";
    case Outcome::kNotAuthorized: return "not-authorized";
    case Outcome::kNotOwner: return "not-owner";
    case Outcome::kEmptyData: return "empty-data";
    case Outcome::kEmptyGroup: return "empty-group";
  }
  return "?";
}

ReferenceModel::ReferenceModel(ModelConfig config)
    : config_(std::move(config)) {
  if (!config_.trimmed_package_size || !config_.stub_blob_size) {
    throw std::logic_error("ReferenceModel: size functions are required");
  }
}

ModelUploadResult ReferenceModel::Upload(
    const std::string& user, const std::string& file_id,
    const std::vector<BlockKey>& blocks,
    const std::vector<std::string>& authorized_users) {
  ModelUploadResult r;
  if (blocks.empty()) {
    r.outcome = Outcome::kEmptyData;
    return r;
  }
  // Dedup first: counters do not depend on metadata state, and the dedup
  // set is global and append-only, so this is order-independent even when
  // the real stack ingests batches concurrently.
  r.chunk_count = blocks.size();
  for (const BlockKey& b : blocks) {
    r.logical_bytes += b.size();
    if (stored_.insert(b).second) {
      ++r.stored_chunks;
      const std::uint64_t trimmed = config_.trimmed_package_size(b.size());
      r.stored_bytes += trimmed;
      stored_bytes_ += trimmed;
    } else {
      ++r.duplicate_chunks;
    }
  }
  r.stub_bytes = config_.stub_blob_size(blocks.size() * config_.stub_size);

  // Upload overwrites unconditionally: fresh genesis state, uploader owns.
  FileState state;
  state.owner = user;
  state.authorized.insert(authorized_users.begin(), authorized_users.end());
  state.authorized.insert(user);
  state.key_version = 0;
  state.stub_key_version = 0;
  state.blocks = blocks;
  files_[file_id] = std::move(state);
  return r;
}

ModelDownloadResult ReferenceModel::Download(const std::string& user,
                                             const std::string& file_id) const {
  ModelDownloadResult r;
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    r.outcome = Outcome::kNoSuchFile;
    return r;
  }
  if (it->second.authorized.count(user) == 0) {
    r.outcome = Outcome::kNotAuthorized;
    return r;
  }
  for (const BlockKey& b : it->second.blocks) r.data += b;
  return r;
}

ModelRekeyResult ReferenceModel::RekeyOne(FileState& state, bool active) {
  ModelRekeyResult r;
  state.key_version += 1;
  r.new_version = state.key_version;
  if (active) {
    state.stub_key_version = state.key_version;
    r.stub_reencrypted = true;
    r.stub_bytes =
        config_.stub_blob_size(state.blocks.size() * config_.stub_size);
  }
  // The real client replaces the policy wholesale and always re-adds the
  // caller (the owner, per the check below).
  return r;
}

ModelRekeyResult ReferenceModel::Rekey(
    const std::string& user, const std::string& file_id,
    const std::vector<std::string>& authorized_users, bool active) {
  ModelRekeyResult r;
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    r.outcome = Outcome::kNoSuchFile;
    return r;
  }
  if (it->second.owner != user) {
    r.outcome = Outcome::kNotOwner;
    return r;
  }
  r = RekeyOne(it->second, active);
  it->second.authorized.clear();
  it->second.authorized.insert(authorized_users.begin(),
                               authorized_users.end());
  it->second.authorized.insert(user);
  return r;
}

ModelGroupRekeyResult ReferenceModel::RekeyGroup(
    const std::string& user, const std::vector<std::string>& file_ids,
    const std::vector<std::string>& authorized_users, bool active) {
  ModelGroupRekeyResult g;
  if (file_ids.empty()) {
    g.outcome = Outcome::kEmptyGroup;
    return g;
  }
  // Sequential, stop-on-first-failure with partial effects — exactly what
  // the real RekeyGroup loop does.
  for (const std::string& file_id : file_ids) {
    auto it = files_.find(file_id);
    if (it == files_.end()) {
      g.outcome = Outcome::kNoSuchFile;
      return g;
    }
    if (it->second.owner != user) {
      g.outcome = Outcome::kNotOwner;
      return g;
    }
    ModelRekeyResult r = RekeyOne(it->second, active);
    it->second.authorized.clear();
    it->second.authorized.insert(authorized_users.begin(),
                                 authorized_users.end());
    it->second.authorized.insert(user);
    g.applied.push_back(r);
  }
  return g;
}

bool ReferenceModel::Exists(const std::string& file_id) const {
  return files_.count(file_id) != 0;
}

const std::string& ReferenceModel::Owner(const std::string& file_id) const {
  return files_.at(file_id).owner;
}

std::uint64_t ReferenceModel::KeyVersion(const std::string& file_id) const {
  return files_.at(file_id).key_version;
}

std::uint64_t ReferenceModel::StubKeyVersion(const std::string& file_id) const {
  return files_.at(file_id).stub_key_version;
}

bool ReferenceModel::IsAuthorized(const std::string& user,
                                  const std::string& file_id) const {
  auto it = files_.find(file_id);
  return it != files_.end() && it->second.authorized.count(user) != 0;
}

std::vector<std::string> ReferenceModel::FileIds() const {
  std::vector<std::string> ids;
  ids.reserve(files_.size());
  for (const auto& [id, _] : files_) ids.push_back(id);
  return ids;
}

}  // namespace reed::model
