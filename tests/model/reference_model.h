// Executable specification of REED's user-visible semantics (DESIGN.md §11).
//
// The model is the paper's storage contract written as plain maps and sets —
// deliberately independent of src/ internals. Files are sequences of
// plaintext blocks; the cloud is a set of stored block contents (dedup is
// set membership); key state is an integer version counter per file plus a
// policy set of authorized users. No crypto, no chunking, no wire format:
// anything the real stack and this model disagree on is either a bug in the
// stack or a misreading of the paper, and both are worth a failing test.
//
// Size predictions delegate to two pure size functions supplied by the
// harness (trimmed-package size per chunk length, stub-blob size per stub
// length) so the model never includes a src/ header.
//
// Semantics encoded here (paper §III-A, §IV, and the documented behavior of
// client::ReedClient):
//   * Upload always succeeds on non-empty data and OVERWRITES: the uploader
//     becomes the owner, the key version resets to 0, and the policy is the
//     given user set plus the uploader. Previously stored blocks are never
//     reclaimed (servers only ever gain chunks).
//   * Dedup is global and content-based: a block is stored the first time
//     its content is seen anywhere (any user, any file, any position),
//     duplicate every time after — including repeats inside one upload.
//   * Download succeeds iff the file exists and the requester satisfies the
//     policy; it returns exactly the uploaded bytes.
//   * Rekey requires the owner; it bumps the key version and replaces the
//     policy. Active revocation also moves the stub version forward (the
//     stub file is re-encrypted); lazy leaves the stub version behind.
//     Packages never move in either mode (§IV-A).
//   * RekeyGroup applies member files SEQUENTIALLY and stops at the first
//     non-owned or missing file, leaving earlier effects in place.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace reed::model {

// Block content is its own identity: the model keys the global dedup set by
// raw plaintext bytes.
using BlockKey = std::string;

enum class Outcome {
  kOk,
  kNoSuchFile,     // metadata object absent
  kNotAuthorized,  // policy does not cover the requester
  kNotOwner,       // rekey by a non-owner
  kEmptyData,      // upload of an empty file
  kEmptyGroup,     // group rekey over zero files
};

const char* OutcomeName(Outcome o);

struct ModelUploadResult {
  Outcome outcome = Outcome::kOk;
  std::uint64_t logical_bytes = 0;
  std::size_t chunk_count = 0;
  std::size_t duplicate_chunks = 0;
  std::size_t stored_chunks = 0;
  std::uint64_t stored_bytes = 0;  // unique trimmed-package bytes
  std::uint64_t stub_bytes = 0;    // encrypted stub blob size
};

struct ModelDownloadResult {
  Outcome outcome = Outcome::kOk;
  std::string data;  // exact file bytes on success
};

struct ModelRekeyResult {
  Outcome outcome = Outcome::kOk;
  std::uint64_t new_version = 0;
  bool stub_reencrypted = false;
  std::uint64_t stub_bytes = 0;
};

struct ModelGroupRekeyResult {
  Outcome outcome = Outcome::kOk;  // outcome of the whole call
  // Per-file results for the files that were rekeyed before the first
  // failure (all of them when outcome == kOk). Mirrors the real client's
  // sequential partial application.
  std::vector<ModelRekeyResult> applied;
};

struct ModelConfig {
  std::size_t chunk_size = 4096;  // fixed-size chunking; files are multiples
  std::size_t stub_size = 64;
  // Pure size functions measured from the real cipher by the harness.
  std::function<std::uint64_t(std::uint64_t)> trimmed_package_size;
  std::function<std::uint64_t(std::uint64_t)> stub_blob_size;
};

class ReferenceModel {
 public:
  explicit ReferenceModel(ModelConfig config);

  // `blocks` are the file's plaintext blocks in order, each exactly
  // chunk_size bytes (the generator only produces whole-block files).
  ModelUploadResult Upload(const std::string& user, const std::string& file_id,
                           const std::vector<BlockKey>& blocks,
                           const std::vector<std::string>& authorized_users);

  ModelDownloadResult Download(const std::string& user,
                               const std::string& file_id) const;

  ModelRekeyResult Rekey(const std::string& user, const std::string& file_id,
                         const std::vector<std::string>& authorized_users,
                         bool active);

  ModelGroupRekeyResult RekeyGroup(
      const std::string& user, const std::vector<std::string>& file_ids,
      const std::vector<std::string>& authorized_users, bool active);

  // --- queries for the differential checker ---

  [[nodiscard]] bool Exists(const std::string& file_id) const;
  [[nodiscard]] const std::string& Owner(const std::string& file_id) const;
  [[nodiscard]] std::uint64_t KeyVersion(const std::string& file_id) const;
  [[nodiscard]] std::uint64_t StubKeyVersion(const std::string& file_id) const;
  [[nodiscard]] bool IsAuthorized(const std::string& user,
                                  const std::string& file_id) const;
  [[nodiscard]] std::vector<std::string> FileIds() const;

  // Global dedup state: how many unique block contents the cluster must
  // hold, and their total trimmed-package bytes.
  [[nodiscard]] std::size_t UniqueChunks() const { return stored_.size(); }
  [[nodiscard]] std::uint64_t StoredBytes() const { return stored_bytes_; }

  const ModelConfig& config() const { return config_; }

 private:
  struct FileState {
    std::string owner;
    std::set<std::string> authorized;  // policy user set (owner included)
    std::uint64_t key_version = 0;
    std::uint64_t stub_key_version = 0;
    std::vector<BlockKey> blocks;
  };

  ModelRekeyResult RekeyOne(FileState& state, bool active);

  ModelConfig config_;
  std::map<std::string, FileState> files_;
  std::set<BlockKey> stored_;  // global content-addressed dedup set
  std::uint64_t stored_bytes_ = 0;
};

}  // namespace reed::model
