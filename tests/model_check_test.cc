// Model-based differential checking of the full REED stack against the
// executable spec in tests/model/ (DESIGN.md §11): seeded sequential sweeps
// in both pipeline modes, the injected-bug positive checks (the checker must
// CATCH a seeded semantic bug and write a replayable repro), and the
// concurrent explainability mode. The heavier multi-seed sweeps are
// registered directly in tests/CMakeLists.txt on the reed_model_check
// runner (label "model").
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "model/harness.h"
#include "model/op_generator.h"
#include "model/reference_model.h"

namespace reed {
namespace {

using modelcheck::Bug;
using modelcheck::HarnessOptions;
using modelcheck::RunReport;

HarnessOptions QuickOptions(std::uint64_t seed) {
  HarnessOptions options;
  options.seed = seed;
  options.num_ops = 28;
  options.num_users = 3;
  options.repro_dir = ::testing::TempDir();
  return options;
}

TEST(ReferenceModelTest, DedupIsGlobalAndContentBased) {
  model::ModelConfig config;
  config.chunk_size = 4;
  config.stub_size = 2;
  config.trimmed_package_size = [](std::uint64_t n) { return n + 10; };
  config.stub_blob_size = [](std::uint64_t n) { return n + 5; };
  model::ReferenceModel m(config);

  auto r1 = m.Upload("u0", "f0", {"aaaa", "bbbb", "aaaa"}, {"u0"});
  EXPECT_EQ(r1.outcome, model::Outcome::kOk);
  EXPECT_EQ(r1.chunk_count, 3u);
  EXPECT_EQ(r1.stored_chunks, 2u);   // in-file repeat deduplicates
  EXPECT_EQ(r1.duplicate_chunks, 1u);
  EXPECT_EQ(r1.stored_bytes, 2u * 14u);

  // Another user re-uploading the same content stores nothing new.
  auto r2 = m.Upload("u1", "f1", {"bbbb", "aaaa"}, {"u1"});
  EXPECT_EQ(r2.stored_chunks, 0u);
  EXPECT_EQ(r2.duplicate_chunks, 2u);
  EXPECT_EQ(m.UniqueChunks(), 2u);
}

TEST(ReferenceModelTest, RekeySemantics) {
  model::ModelConfig config;
  config.trimmed_package_size = [](std::uint64_t n) { return n; };
  config.stub_blob_size = [](std::uint64_t n) { return n; };
  model::ReferenceModel m(config);
  ASSERT_EQ(m.Upload("u0", "f0", {"x"}, {"u0", "u1"}).outcome,
            model::Outcome::kOk);
  EXPECT_TRUE(m.IsAuthorized("u1", "f0"));

  // Non-owner may not rekey.
  EXPECT_EQ(m.Rekey("u1", "f0", {"u1"}, false).outcome,
            model::Outcome::kNotOwner);

  // Lazy rekey revokes u1 and leaves the stub version behind.
  auto r = m.Rekey("u0", "f0", {"u0"}, false);
  EXPECT_EQ(r.outcome, model::Outcome::kOk);
  EXPECT_EQ(r.new_version, 1u);
  EXPECT_FALSE(r.stub_reencrypted);
  EXPECT_FALSE(m.IsAuthorized("u1", "f0"));
  EXPECT_EQ(m.KeyVersion("f0"), 1u);
  EXPECT_EQ(m.StubKeyVersion("f0"), 0u);

  // Active rekey moves the stub version forward.
  r = m.Rekey("u0", "f0", {"u0"}, true);
  EXPECT_TRUE(r.stub_reencrypted);
  EXPECT_EQ(m.StubKeyVersion("f0"), 2u);

  // Overwrite by another user transfers ownership and resets versions.
  ASSERT_EQ(m.Upload("u1", "f0", {"y"}, {"u1"}).outcome, model::Outcome::kOk);
  EXPECT_EQ(m.Owner("f0"), "u1");
  EXPECT_EQ(m.KeyVersion("f0"), 0u);
}

TEST(ReferenceModelTest, GroupRekeyAppliesPartiallyUpToFirstFailure) {
  model::ModelConfig config;
  config.trimmed_package_size = [](std::uint64_t n) { return n; };
  config.stub_blob_size = [](std::uint64_t n) { return n; };
  model::ReferenceModel m(config);
  ASSERT_EQ(m.Upload("u0", "a", {"1"}, {}).outcome, model::Outcome::kOk);
  ASSERT_EQ(m.Upload("u1", "b", {"2"}, {}).outcome, model::Outcome::kOk);
  ASSERT_EQ(m.Upload("u0", "c", {"3"}, {}).outcome, model::Outcome::kOk);

  auto g = m.RekeyGroup("u0", {"a", "b", "c"}, {"u0"}, false);
  EXPECT_EQ(g.outcome, model::Outcome::kNotOwner);
  ASSERT_EQ(g.applied.size(), 1u);  // "a" rekeyed before the failure on "b"
  EXPECT_EQ(m.KeyVersion("a"), 1u);
  EXPECT_EQ(m.KeyVersion("c"), 0u);  // never reached

  EXPECT_EQ(m.RekeyGroup("u0", {}, {"u0"}, false).outcome,
            model::Outcome::kEmptyGroup);
}

TEST(OpGeneratorTest, DeterministicPerSeed) {
  modelgen::GeneratorConfig config;
  auto a = modelgen::GenerateOps(11, 40, config);
  auto b = modelgen::GenerateOps(11, 40, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(modelgen::FormatOp(a[i]), modelgen::FormatOp(b[i])) << i;
  }
  auto c = modelgen::GenerateOps(12, 40, config);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && i < c.size(); ++i) {
    any_diff |= modelgen::FormatOp(a[i]) != modelgen::FormatOp(c[i]);
  }
  EXPECT_TRUE(any_diff);
  EXPECT_EQ(modelgen::BlockContent(11, 3, 64), modelgen::BlockContent(11, 3, 64));
  EXPECT_NE(modelgen::BlockContent(11, 3, 64), modelgen::BlockContent(11, 4, 64));
}

TEST(OpGeneratorTest, CoversEveryOpKindInTheTable) {
  modelgen::GeneratorConfig config;
  auto ops = modelgen::GenerateOps(5, 400, config);
  std::set<modelgen::OpKind> seen;
  for (const auto& op : ops) seen.insert(op.kind);
  EXPECT_EQ(seen.size(), modelgen::kOpTableSize)
      << "a 400-op sequence should hit every op kind";
}

TEST(ModelCheckTest, SequentialPipelinedMatchesModel) {
  HarnessOptions options = QuickOptions(101);
  options.pipeline_depth = 2;
  RunReport report = modelcheck::RunSequential(options);
  EXPECT_TRUE(report.ok) << report.divergence;
  EXPECT_EQ(report.ops_executed, options.num_ops);
}

TEST(ModelCheckTest, SequentialSerialPathMatchesModel) {
  HarnessOptions options = QuickOptions(202);
  options.pipeline_depth = 1;  // legacy serial data path
  RunReport report = modelcheck::RunSequential(options);
  EXPECT_TRUE(report.ok) << report.divergence;
}

TEST(ModelCheckTest, SequentialSurvivesServerRestarts) {
  // Durable cluster restarted from disk every few ops (alternating
  // checkpoint-clean and crash-style WAL-replay reopens): every model
  // diff and security oracle must keep holding on the recovered state.
  HarnessOptions options = QuickOptions(606);
  options.reopen_every = 7;
  options.data_dir = ::testing::TempDir() + "/model_reopen_606";
  std::filesystem::remove_all(options.data_dir);
  RunReport report = modelcheck::RunSequential(options);
  EXPECT_TRUE(report.ok) << report.divergence;
  EXPECT_EQ(report.ops_executed, options.num_ops);
  std::filesystem::remove_all(options.data_dir);
}

TEST(ModelCheckTest, ConcurrentFinalStateIsExplainable) {
  HarnessOptions options = QuickOptions(303);
  options.num_ops = 16;  // per thread
  RunReport report = modelcheck::RunConcurrent(options);
  EXPECT_TRUE(report.ok) << report.divergence;
}

// Positive checks: a deliberately injected semantic bug MUST be caught, and
// the divergence must come with a replayable repro file.
TEST(ModelCheckTest, CatchesSkippedStubReencryption) {
  HarnessOptions options = QuickOptions(401);
  options.num_ops = 40;  // enough ops to hit an active rekey
  options.bug = Bug::kSkipStubReencrypt;
  RunReport report = modelcheck::RunSequential(options);
  ASSERT_FALSE(report.ok)
      << "the checker failed to catch a skipped stub re-encryption";
  EXPECT_NE(report.divergence.find("stub"), std::string::npos)
      << report.divergence;

  ASSERT_FALSE(report.repro_path.empty());
  std::ifstream repro(report.repro_path);
  ASSERT_TRUE(repro.good());
  std::stringstream contents;
  contents << repro.rdbuf();
  EXPECT_NE(contents.str().find("replay: reed_model_check"),
            std::string::npos);
  EXPECT_NE(contents.str().find("--seed=401"), std::string::npos);
  std::remove(report.repro_path.c_str());
}

TEST(ModelCheckTest, CatchesStaleKeyStateRecord) {
  HarnessOptions options = QuickOptions(505);
  options.num_ops = 40;
  options.bug = Bug::kStaleKeyState;
  RunReport report = modelcheck::RunSequential(options);
  ASSERT_FALSE(report.ok)
      << "the checker failed to catch a stale key-state record";
  EXPECT_NE(report.divergence.find("key-state"), std::string::npos)
      << report.divergence;
  if (!report.repro_path.empty()) std::remove(report.repro_path.c_str());
}

}  // namespace
}  // namespace reed
