// Network substrate tests: wire codecs, simulated link timing, RPC
// channels, and real TCP framing over loopback.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/link.h"
#include "net/rpc.h"
#include "net/tcp.h"
#include "net/tcp_server.h"
#include "net/wire.h"
#include "util/stopwatch.h"

namespace reed::net {
namespace {

TEST(WireTest, RoundTripAllFieldTypes) {
  Writer w;
  w.U8(0xAB);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFULL);
  w.Blob(ToBytes("payload"));
  w.Str("name");
  w.Raw(ToBytes("raw"));
  Bytes msg = w.Take();

  Reader r(msg);
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.Blob(), ToBytes("payload"));
  EXPECT_EQ(r.Str(), "name");
  EXPECT_EQ(r.Raw(3), ToBytes("raw"));
  EXPECT_TRUE(r.AtEnd());
  r.ExpectEnd();
}

TEST(WireTest, TruncatedReadsThrow) {
  Writer w;
  w.U32(100);  // length prefix promising 100 bytes
  Bytes msg = w.Take();
  Reader r(msg);
  EXPECT_THROW(r.Blob(), Error);

  Reader r2(msg);
  (void)r2.U32();
  EXPECT_THROW(DiscardResult(r2.U8()), Error);
}

TEST(WireTest, BlobTooLargeThrowsInsteadOfTruncating) {
  // The u32 length prefix caps a blob at UINT32_MAX bytes. The old code
  // silently cast, producing a frame whose prefix disagreed with its body;
  // now the boundary is a hard error. CheckBlobSize is static so the limit
  // is testable without allocating a 4GB payload.
  Writer::CheckBlobSize(0);
  Writer::CheckBlobSize(UINT32_MAX);
  EXPECT_THROW(Writer::CheckBlobSize(static_cast<std::size_t>(UINT32_MAX) + 1),
               Error);
  EXPECT_THROW(Writer::CheckBlobSize(SIZE_MAX), Error);
}

TEST(WireTest, ExpectEndCatchesTrailingBytes) {
  Writer w;
  w.U8(1);
  w.U8(2);
  Bytes msg = w.Take();
  Reader r(msg);
  (void)r.U8();
  EXPECT_THROW(r.ExpectEnd(), Error);
}

TEST(SimulatedLinkTest, UnlimitedLinkIsFree) {
  SimulatedLink link = SimulatedLink::Unlimited();
  Stopwatch sw;
  link.Transfer(100 << 20);
  EXPECT_LT(sw.ElapsedSeconds(), 0.05);
  EXPECT_EQ(link.total_bytes(), 100u << 20);
}

TEST(SimulatedLinkTest, BandwidthPacesTransfers) {
  // 100 Mb/s link: 1.25 MB should take ~100 ms.
  SimulatedLink link(100e6, 0);
  Stopwatch sw;
  link.Transfer(1'250'000);
  double elapsed = sw.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.08);
  EXPECT_LT(elapsed, 0.25);
}

TEST(SimulatedLinkTest, ConcurrentSendersShareBandwidth) {
  // Two threads each sending 0.625 MB over 100 Mb/s: the shared medium
  // serializes them, so total time ~100 ms (not ~50 ms).
  SimulatedLink link(100e6, 0);
  Stopwatch sw;
  std::thread t1([&] { link.Transfer(625'000); });
  std::thread t2([&] { link.Transfer(625'000); });
  t1.join();
  t2.join();
  double elapsed = sw.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.08);
}

TEST(RpcChannelTest, LocalChannelInvokesHandler) {
  LocalChannel channel([](ByteSpan req) {
    Bytes resp = ToBytes("echo:");
    Append(resp, req);
    return resp;
  });
  EXPECT_EQ(channel.Call(ToBytes("hi")), ToBytes("echo:hi"));
}

TEST(RpcChannelTest, SimulatedChannelChargesBothDirections) {
  auto link = std::make_shared<SimulatedLink>(0, 0);  // accounting only
  SimulatedChannel channel([](ByteSpan) { return Bytes(100, 0); }, link);
  (void)channel.Call(Bytes(50, 0));
  EXPECT_EQ(link->total_bytes(), 150u);
}

TEST(TcpTest, FramedEchoOverLoopback) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpTransport conn = listener.Accept();
    ServeTransport(std::move(conn), [](ByteSpan req) {
      Bytes resp = ToBytes("ok:");
      Append(resp, req);
      return resp;
    });
  });

  {
    TcpTransport client = TcpTransport::Connect("127.0.0.1", listener.port());
    TcpChannel channel(std::move(client));
    EXPECT_EQ(channel.Call(ToBytes("ping")), ToBytes("ok:ping"));
    // Large frame crosses multiple TCP segments.
    Bytes big(1 << 20, 0x42);
    Bytes resp = channel.Call(big);
    EXPECT_EQ(resp.size(), big.size() + 3);
  }  // closing the client ends the server loop
  server.join();
}

TEST(TcpServerTest, ServesMultipleConcurrentClients) {
  TcpServer server(0, [](ByteSpan req) {
    Bytes resp = ToBytes("srv:");
    Append(resp, req);
    return resp;
  });
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      TcpChannel channel(TcpTransport::Connect("127.0.0.1", server.port()));
      for (int i = 0; i < 10; ++i) {
        Bytes req = ToBytes("c" + std::to_string(c) + "-" + std::to_string(i));
        Bytes want = ToBytes("srv:");
        Append(want, req);
        if (channel.Call(req) == want) ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 40);
}

TEST(TcpServerTest, DestructorStopsAcceptor) {
  std::uint16_t port;
  {
    TcpServer server(0, [](ByteSpan req) { return Bytes(req.begin(), req.end()); });
    port = server.port();
  }
  // After destruction the port no longer accepts connections.
  EXPECT_THROW(TcpTransport::Connect("127.0.0.1", port), NetError);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  EXPECT_THROW(TcpTransport::Connect("127.0.0.1", dead_port), NetError);
  EXPECT_THROW(TcpTransport::Connect("not-an-ip", 1), NetError);
}

}  // namespace
}  // namespace reed::net
