// Tests for the observability registry (src/obs/metrics.h): bucket
// boundary math, snapshot consistency, concurrent increments (the TSan
// matrix mode runs this binary too), and the hot-path contract — once a
// metric is resolved, Increment/Add/Set/Record perform NO heap allocation
// (counted via a replaced global operator new).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <utility>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace {
// Allocation counter for the no-allocation proof. The default operator
// new[] forwards to operator new, so replacing the single-object form
// counts array allocations too.
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace reed::obs {
namespace {

TEST(ObsCounter, IncrementAddReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddNegative) {
  Gauge g;
  g.Set(-7);
  EXPECT_EQ(g.value(), -7);
  g.Add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(ObsHistogram, BucketBoundaries) {
  // Bucket 0 is exact zeros; bucket i >= 1 covers [2^(i-1), 2^i); the last
  // bucket absorbs overflow.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  for (std::size_t i = 1; i < Histogram::kNumBuckets - 1; ++i) {
    std::uint64_t lo = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "lower bound of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(2 * lo - 1), i)
        << "upper edge of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(2 * lo), i + 1)
        << "first value past bucket " << i;
  }
  // Values beyond the covered range all land in the final bucket.
  EXPECT_EQ(Histogram::BucketIndex(~std::uint64_t{0}),
            Histogram::kNumBuckets - 1);
}

TEST(ObsHistogram, RecordAccumulates) {
  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(100);
  h.Record(100);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 201u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(100)), 2u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(ObsRegistry, SameNameReturnsSameMetric) {
  auto& reg = Registry::Global();
  Counter& a = reg.GetCounter("test.registry.same");
  Counter& b = reg.GetCounter("test.registry.same");
  EXPECT_EQ(&a, &b);
  Counter& c = reg.GetCounter("test.registry.other");
  EXPECT_NE(&a, &c);
  // A counter and a histogram may not collide, but distinct kinds keep
  // distinct namespaces.
  Histogram& h1 = reg.GetHistogram("test.registry.same_us");
  Histogram& h2 = reg.GetHistogram("test.registry.same_us");
  EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistry, SnapshotReflectsValues) {
  auto& reg = Registry::Global();
  reg.GetCounter("test.snap.counter").Add(5);
  reg.GetGauge("test.snap.gauge").Set(-12);
  reg.GetHistogram("test.snap.hist_us").Record(9);

  Snapshot snap = reg.TakeSnapshot();
  const auto* c = snap.FindCounter("test.snap.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 5u);
  const auto* h = snap.FindHistogram("test.snap.hist_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(h->sum, 9u);
  EXPECT_EQ(h->buckets.size(), Histogram::kNumBuckets);
  EXPECT_DOUBLE_EQ(h->mean(), 9.0);
  bool found_gauge = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "test.snap.gauge") {
      EXPECT_EQ(g.value, -12);
      found_gauge = true;
    }
  }
  EXPECT_TRUE(found_gauge);
  EXPECT_EQ(snap.FindCounter("test.snap.absent"), nullptr);

  // Snapshots are point-in-time copies: later mutation must not show up.
  reg.GetCounter("test.snap.counter").Add(100);
  EXPECT_EQ(c->value, 5u);
}

TEST(ObsRegistry, ConcurrentIncrementsAreExact) {
#ifdef REED_TSAN
  constexpr int kThreads = 4;
  constexpr int kIters = 20'000;
#else
  constexpr int kThreads = 8;
  constexpr int kIters = 100'000;
#endif
  auto& reg = Registry::Global();
  Counter& c = reg.GetCounter("test.concurrent.counter");
  Histogram& h = reg.GetHistogram("test.concurrent.hist_us");
  c.Reset();
  h.Reset();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (int i = 0; i < kIters; ++i) {
        c.Increment();
        h.Record(static_cast<std::uint64_t>(t));
      }
      // Concurrent registration of the same name must also be safe.
      (void)Registry::Global().GetCounter("test.concurrent.racy_register");
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ObsRegistry, HotPathDoesNotAllocate) {
  auto& reg = Registry::Global();
  // Resolution is the sanctioned slow path (registers, allocates).
  Counter& c = reg.GetCounter("test.alloc.counter");
  Gauge& g = reg.GetGauge("test.alloc.gauge");
  Histogram& h = reg.GetHistogram("test.alloc.hist_us");

  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < 50'000; ++i) {
    c.Increment();
    c.Add(3);
    g.Set(static_cast<std::int64_t>(i));
    h.Record(i);
  }
  std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "metric updates allocated on the hot path";
}

TEST(ObsScopedTimer, RecordsOnceAndStopIsIdempotent) {
  Histogram h;
  {
    ScopedTimer t(h);
    std::uint64_t first = t.Stop();
    EXPECT_EQ(t.Stop(), 0u) << "second Stop must be a no-op";
    (void)first;
  }  // destructor after Stop: no second sample
  EXPECT_EQ(h.count(), 1u);
  {
    ScopedTimer t(h);
  }  // destructor records
  EXPECT_EQ(h.count(), 2u);
}

TEST(ObsRegistry, ResetAllZeroesButKeepsNames) {
  auto& reg = Registry::Global();
  Counter& c = reg.GetCounter("test.resetall.counter");
  c.Add(99);
  reg.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  Snapshot snap = reg.TakeSnapshot();
  ASSERT_NE(snap.FindCounter("test.resetall.counter"), nullptr);
}

TEST(ObsRenderText, MentionsEveryMetric) {
  auto& reg = Registry::Global();
  reg.GetCounter("test.render.counter").Add(7);
  reg.GetHistogram("test.render.hist_us").Record(1000);
  std::string text = RenderText(reg.TakeSnapshot());
  EXPECT_NE(text.find("test.render.counter"), std::string::npos);
  EXPECT_NE(text.find("test.render.hist_us"), std::string::npos);
  EXPECT_NE(text.find('7'), std::string::npos);
}

TEST(ObsGaugeGuard, IncrementsAndReleasesOnEveryExitPath) {
  Gauge g;
  {
    GaugeGuard guard(g);
    EXPECT_EQ(g.value(), 1);
  }
  EXPECT_EQ(g.value(), 0);
  try {
    GaugeGuard guard(g);
    EXPECT_EQ(g.value(), 1);
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(g.value(), 0) << "guard leaked its increment across an unwind";
}

TEST(ObsGaugeGuard, CustomDelta) {
  Gauge g;
  {
    GaugeGuard guard(g, 5);
    EXPECT_EQ(g.value(), 5);
  }
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsGaugeGuard, ReleaseIsIdempotent) {
  Gauge g;
  GaugeGuard guard(g);
  guard.Release();
  EXPECT_EQ(g.value(), 0);
  guard.Release();  // no double decrement
  EXPECT_EQ(g.value(), 0);
}  // destructor after Release: still no decrement

TEST(ObsGaugeGuard, MoveTransfersOwnershipWithoutDoubleRelease) {
  Gauge g;
  {
    GaugeGuard outer(g);
    {
      GaugeGuard inner(std::move(outer));
      EXPECT_EQ(g.value(), 1);
    }  // inner releases
    EXPECT_EQ(g.value(), 0);
  }  // moved-from outer must not release again
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsGaugeGuard, MoveAssignReleasesTheOldGauge) {
  Gauge a;
  Gauge b;
  GaugeGuard guard_a(a);
  {
    GaugeGuard guard_b(b);
    EXPECT_EQ(a.value(), 1);
    EXPECT_EQ(b.value(), 1);
    guard_a = std::move(guard_b);  // releases a, takes over b
    EXPECT_EQ(a.value(), 0);
    EXPECT_EQ(b.value(), 1);
  }  // moved-from guard_b: no-op
  EXPECT_EQ(b.value(), 1);
  guard_a.Release();
  EXPECT_EQ(b.value(), 0);
}

TEST(ObsPercentile, EmptyAndAllZeroHistograms) {
  Histogram h;
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(99.9), 0u);
  for (int i = 0; i < 10; ++i) h.Record(0);
  // Bucket 0 holds exact zeros, so every percentile of an all-zero
  // distribution is exactly 0 — no interpolation artifacts.
  EXPECT_EQ(h.Percentile(1), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(99.9), 0u);
}

TEST(ObsPercentile, UniformDistributionWithinBucketWidth) {
  // 1..1000 once each: the exact percentile is known, and the log-linear
  // estimate must land within the containing bucket and within ~5% of the
  // exact value for uniformly filled buckets (the interpolation is exact
  // for uniform occupancy; partially filled top buckets add the slack).
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500.0, 8.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(90)), 900.0, 51.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 990.0, 51.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99.9)), 999.0, 51.0);
  // Monotone in p, and never past the top bucket's upper bound.
  EXPECT_LE(h.Percentile(50), h.Percentile(90));
  EXPECT_LE(h.Percentile(90), h.Percentile(99));
  EXPECT_LE(h.Percentile(99), h.Percentile(99.9));
  EXPECT_LE(h.Percentile(99.9), 1024u);
}

TEST(ObsPercentile, StaysInsideTheOccupiedBucket) {
  // Every sample is 300, which lives in [256, 512): all percentiles must
  // interpolate inside that bucket's bounds.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(300);
  std::size_t idx = Histogram::BucketIndex(300);
  std::uint64_t lo = Histogram::BucketLowerBound(idx);
  for (double p : {1.0, 25.0, 50.0, 75.0, 99.0, 99.9}) {
    EXPECT_GE(h.Percentile(p), lo) << "p=" << p;
    EXPECT_LE(h.Percentile(p), 2 * lo) << "p=" << p;
  }
}

TEST(ObsPercentile, BimodalZerosAndSpike) {
  // 50 zeros + 50 slow samples: the median is still an exact zero; the
  // tail percentiles land in the spike's bucket. This is the shape a
  // load-generator histogram takes when most ops hit cache.
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(0);
  for (int i = 0; i < 50; ++i) h.Record(1000);
  EXPECT_EQ(h.Percentile(50), 0u);
  std::uint64_t lo = Histogram::BucketLowerBound(Histogram::BucketIndex(1000));
  EXPECT_GE(h.Percentile(51), lo);
  EXPECT_GE(h.Percentile(99), lo);
  EXPECT_LE(h.Percentile(99), 2 * lo);
}

TEST(ObsPercentile, OverflowBucketClampsToTop) {
  Histogram h;
  h.Record(~std::uint64_t{0});
  EXPECT_GE(h.Percentile(50),
            Histogram::BucketLowerBound(Histogram::kNumBuckets - 1));
}

TEST(ObsPercentile, SnapshotAgreesWithLiveHistogram) {
  auto& reg = Registry::Global();
  Histogram& h = reg.GetHistogram("test.percentile.snap_us");
  for (std::uint64_t v = 1; v <= 300; ++v) h.Record(v * 7);
  Snapshot snap = reg.TakeSnapshot();
  const auto* hv = snap.FindHistogram("test.percentile.snap_us");
  ASSERT_NE(hv, nullptr);
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(hv->Percentile(p), h.Percentile(p)) << "p=" << p;
  }
}

}  // namespace
}  // namespace reed::obs
