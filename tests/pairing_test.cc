// Pairing substrate tests: field tower algebra, curve group laws,
// hash-to-group, and the bilinearity/non-degeneracy of the Tate pairing.
#include <gtest/gtest.h>

#include "bigint/prime.h"
#include "crypto/random.h"
#include "pairing/pairing.h"

namespace reed::pairing {
namespace {

using crypto::DeterministicRng;

const TypeAPairing& SharedPairing() {
  static TypeAPairing pairing(TypeAParams::Default());
  return pairing;
}

TEST(TypeAParamsTest, DefaultParametersAreConsistent) {
  TypeAParams params = TypeAParams::Default();
  EXPECT_EQ(params.p.BitLength(), 512u);
  EXPECT_EQ(params.r.BitLength(), 160u);
  EXPECT_EQ(params.p.ModLimb(4), 3u);
  EXPECT_EQ(params.cofactor * params.r, params.p + BigInt(1));
  DeterministicRng rng(1);
  EXPECT_TRUE(bigint::IsProbablePrime(params.p, rng));
  EXPECT_TRUE(bigint::IsProbablePrime(params.r, rng));
}

TEST(TypeAParamsTest, GenerateProducesValidSmallParams) {
  DeterministicRng rng(2);
  TypeAParams params = TypeAParams::Generate(80, 256, rng);
  EXPECT_EQ(params.p.BitLength(), 256u);
  EXPECT_EQ(params.r.BitLength(), 80u);
  EXPECT_EQ(params.p.ModLimb(4), 3u);
  EXPECT_EQ(params.cofactor * params.r, params.p + BigInt(1));
}

// --------------------------- Fp / Fp2 ---------------------------

TEST(FpTest, FieldAxiomsRandomized) {
  const FpField* f = SharedPairing().field();
  DeterministicRng rng(3);
  for (int i = 0; i < 20; ++i) {
    Fp a = Fp::Random(f, rng);
    Fp b = Fp::Random(f, rng);
    Fp c = Fp::Random(f, rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Fp::Zero(f));
    EXPECT_EQ(a + a.Neg(), Fp::Zero(f));
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), Fp::One(f));
    }
  }
}

TEST(FpTest, BytesRoundTrip) {
  const FpField* f = SharedPairing().field();
  DeterministicRng rng(4);
  Fp a = Fp::Random(f, rng);
  EXPECT_EQ(Fp::FromBytes(f, a.ToBytes()), a);
  EXPECT_EQ(a.ToBytes().size(), f->element_bytes());
  Bytes bad(f->element_bytes() - 1, 0);
  EXPECT_THROW(Fp::FromBytes(f, bad), Error);
}

TEST(FpTest, SqrtOfSquareRecoversRoot) {
  const FpField* f = SharedPairing().field();
  DeterministicRng rng(5);
  int qr_count = 0;
  for (int i = 0; i < 20; ++i) {
    Fp a = Fp::Random(f, rng);
    Fp sq = a.Square();
    Fp root;
    ASSERT_TRUE(sq.Sqrt(&root));
    EXPECT_EQ(root.Square(), sq);
    Fp maybe;
    if (Fp::Random(f, rng).Sqrt(&maybe)) ++qr_count;
  }
  // About half of random elements are quadratic residues.
  EXPECT_GT(qr_count, 2);
  EXPECT_LT(qr_count, 18);
}

TEST(FpTest, PowMatchesRepeatedMultiplication) {
  const FpField* f = SharedPairing().field();
  DeterministicRng rng(6);
  Fp a = Fp::Random(f, rng);
  Fp acc = Fp::One(f);
  for (int i = 0; i < 13; ++i) acc = acc * a;
  EXPECT_EQ(a.Pow(BigInt(13)), acc);
  EXPECT_EQ(a.Pow(BigInt(0)), Fp::One(f));
}

TEST(Fp2Test, FieldAxiomsRandomized) {
  const FpField* f = SharedPairing().field();
  DeterministicRng rng(7);
  for (int i = 0; i < 15; ++i) {
    Fp2 a(Fp::Random(f, rng), Fp::Random(f, rng));
    Fp2 b(Fp::Random(f, rng), Fp::Random(f, rng));
    Fp2 c(Fp::Random(f, rng), Fp::Random(f, rng));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.Square(), a * a);
    EXPECT_EQ(a * a.Inverse(), Fp2::One(f));
  }
}

TEST(Fp2Test, ConjugateIsFrobenius) {
  // In F_p² with p ≡ 3 mod 4, x^p = conj(x).
  const FpField* f = SharedPairing().field();
  DeterministicRng rng(8);
  Fp2 x(Fp::Random(f, rng), Fp::Random(f, rng));
  EXPECT_EQ(x.Pow(SharedPairing().params().p), x.Conjugate());
}

TEST(Fp2Test, BytesRoundTrip) {
  const FpField* f = SharedPairing().field();
  DeterministicRng rng(9);
  Fp2 x(Fp::Random(f, rng), Fp::Random(f, rng));
  EXPECT_EQ(Fp2::FromBytes(f, x.ToBytes()), x);
}

// --------------------------- curve group ---------------------------

TEST(G1Test, GeneratorIsOnCurveWithOrderR) {
  const TypeAPairing& e = SharedPairing();
  const G1Point& g = e.generator();
  EXPECT_FALSE(g.is_infinity());
  EXPECT_TRUE(g.IsOnCurve());
  EXPECT_TRUE(g.ScalarMul(e.group_order()).is_infinity());
}

TEST(G1Test, GroupLaws) {
  const TypeAPairing& e = SharedPairing();
  DeterministicRng rng(10);
  G1Point p = e.HashToGroup(ToBytes("P"));
  G1Point q = e.HashToGroup(ToBytes("Q"));
  EXPECT_EQ(p.Add(q), q.Add(p));
  EXPECT_EQ(p.Add(G1Point::Infinity()), p);
  EXPECT_TRUE(p.Add(p.Neg()).is_infinity());
  EXPECT_EQ(p.Double(), p.Add(p));
  EXPECT_TRUE(p.Add(q).IsOnCurve());
  // (P + Q) + P == P·2 + Q
  EXPECT_EQ(p.Add(q).Add(p), p.Double().Add(q));
}

TEST(G1Test, ScalarMulDistributes) {
  const TypeAPairing& e = SharedPairing();
  G1Point p = e.HashToGroup(ToBytes("scalar-test"));
  BigInt a(17), b(31);
  EXPECT_EQ(p.ScalarMul(a).Add(p.ScalarMul(b)), p.ScalarMul(a + b));
  EXPECT_EQ(p.ScalarMul(a).ScalarMul(b), p.ScalarMul(a * b));
  EXPECT_TRUE(p.ScalarMul(BigInt(0)).is_infinity());
}

TEST(G1Test, HashToGroupIsDeterministicAndInSubgroup) {
  const TypeAPairing& e = SharedPairing();
  G1Point p1 = e.HashToGroup(ToBytes("attribute:alice"));
  G1Point p2 = e.HashToGroup(ToBytes("attribute:alice"));
  G1Point p3 = e.HashToGroup(ToBytes("attribute:bob"));
  EXPECT_EQ(p1, p2);
  EXPECT_FALSE(p1 == p3);
  EXPECT_TRUE(p1.ScalarMul(e.group_order()).is_infinity());
}

TEST(G1Test, SerializationRoundTrip) {
  const TypeAPairing& e = SharedPairing();
  const FpField* f = e.field();
  G1Point p = e.HashToGroup(ToBytes("serialize"));
  EXPECT_EQ(G1Point::FromBytes(f, p.ToBytes(f)), p);
  EXPECT_EQ(G1Point::FromBytes(f, G1Point::Infinity().ToBytes(f)),
            G1Point::Infinity());
  // Corrupt y: point no longer on curve.
  Bytes bytes = p.ToBytes(f);
  bytes[bytes.size() - 1] ^= 1;
  EXPECT_THROW(G1Point::FromBytes(f, bytes), Error);
}

// --------------------------- pairing ---------------------------

TEST(PairingTest, NonDegenerate) {
  const TypeAPairing& e = SharedPairing();
  Fp2 val = e.Pair(e.generator(), e.generator());
  EXPECT_FALSE(val.IsOne());
  // Output has order dividing r.
  EXPECT_TRUE(val.Pow(e.group_order()).IsOne());
}

TEST(PairingTest, Bilinearity) {
  const TypeAPairing& e = SharedPairing();
  DeterministicRng rng(11);
  G1Point p = e.HashToGroup(ToBytes("bilinear-P"));
  G1Point q = e.HashToGroup(ToBytes("bilinear-Q"));
  BigInt a = e.RandomScalar(rng);
  BigInt b = e.RandomScalar(rng);

  Fp2 base = e.Pair(p, q);
  // e(aP, Q) == e(P, Q)^a
  EXPECT_EQ(e.Pair(p.ScalarMul(a), q), base.Pow(a));
  // e(P, bQ) == e(P, Q)^b
  EXPECT_EQ(e.Pair(p, q.ScalarMul(b)), base.Pow(b));
  // e(aP, bQ) == e(P, Q)^(ab)
  EXPECT_EQ(e.Pair(p.ScalarMul(a), q.ScalarMul(b)),
            base.Pow(BigInt::MulMod(a, b, e.group_order())));
}

TEST(PairingTest, Symmetry) {
  // Type-A pairings built on a distortion map are symmetric.
  const TypeAPairing& e = SharedPairing();
  G1Point p = e.HashToGroup(ToBytes("sym-P"));
  G1Point q = e.HashToGroup(ToBytes("sym-Q"));
  EXPECT_EQ(e.Pair(p, q), e.Pair(q, p));
}

TEST(PairingTest, InfinityPairsToOne) {
  const TypeAPairing& e = SharedPairing();
  G1Point p = e.HashToGroup(ToBytes("inf-test"));
  EXPECT_TRUE(e.Pair(p, G1Point::Infinity()).IsOne());
  EXPECT_TRUE(e.Pair(G1Point::Infinity(), p).IsOne());
}

TEST(PairingTest, MultiplicativeInFirstArgument) {
  const TypeAPairing& e = SharedPairing();
  G1Point p1 = e.HashToGroup(ToBytes("m1"));
  G1Point p2 = e.HashToGroup(ToBytes("m2"));
  G1Point q = e.HashToGroup(ToBytes("mq"));
  EXPECT_EQ(e.Pair(p1.Add(p2), q), e.Pair(p1, q) * e.Pair(p2, q));
}

}  // namespace
}  // namespace reed::pairing
