// Pipelined data-path equivalence + stress (DESIGN.md §10).
//
// The overlapped upload pipeline reorders WORK (encode of batch i+1 runs
// while batch i is on the wire) but must not reorder RESULTS: recipes,
// dedup statistics, and downloaded bytes have to match the serial path
// exactly. The first test pins that equivalence on twin same-seed systems;
// the rest hammer one shared cluster from many pipelined clients at once —
// sized to stay cheap enough for TSan, which is the point of the exercise.
#include <gtest/gtest.h>

#include <thread>

#include "core/reed_system.h"
#include "crypto/random.h"

namespace reed {
namespace {

using client::ClientOptions;
using client::ReedClient;
using core::ReedSystem;
using core::SystemOptions;
using crypto::DeterministicRng;

SystemOptions TwinSystemOptions() {
  SystemOptions opts;
  opts.key_manager.rsa_bits = 512;
  opts.derivation_key_bits = 512;
  opts.num_data_servers = 4;
  opts.rng_seed = 4242;
  return opts;
}

ClientOptions PipelinedOptions(std::size_t depth, std::size_t channels) {
  ClientOptions opts;
  opts.avg_chunk_size = 4096;
  opts.encryption_threads = 2;
  // Small batches force many pipeline iterations even on small test files.
  opts.upload_batch_bytes = 32 * 1024;
  opts.pipeline.depth = depth;
  opts.pipeline.channels_per_server = channels;
  opts.rng_seed = 77;
  return opts;
}

Bytes TestFile(std::size_t size, std::uint64_t seed) {
  DeterministicRng rng(seed);
  return rng.Generate(size);
}

// Object lookup straight on the servers, bypassing the client: find the
// one data server holding `name` and return the blob.
Bytes FindDataObject(ReedSystem& system, const std::string& name) {
  for (std::size_t i = 0; i < system.data_server_count(); ++i) {
    if (system.data_server(i).HasObject(server::StoreId::kData, name)) {
      return system.data_server(i).GetObject(server::StoreId::kData, name);
    }
  }
  throw Error("test: object not found on any data server: " + name);
}

TEST(PipelineEquivalenceTest, SerialAndPipelinedProduceIdenticalResults) {
  // Twin deployments from the same seed: everything key-material-dependent
  // (OPRF keys, hence MLE keys, hence trimmed packages and their
  // fingerprints) is identical, so any divergence below is the pipeline's
  // fault.
  ReedSystem serial_sys(TwinSystemOptions());
  ReedSystem pipelined_sys(TwinSystemOptions());
  serial_sys.RegisterUser("alice");
  pipelined_sys.RegisterUser("alice");
  auto serial = serial_sys.CreateClient("alice", PipelinedOptions(1, 1));
  auto pipelined = pipelined_sys.CreateClient("alice", PipelinedOptions(3, 2));

  // Half the second file repeats the first — intra- and inter-file dedup.
  Bytes f1 = TestFile(256 * 1024, 9001);
  Bytes f2 = f1;
  Bytes tail = TestFile(128 * 1024, 9002);
  f2.insert(f2.end(), tail.begin(), tail.end());

  for (const auto& [id, data] :
       {std::pair<std::string, const Bytes*>{"f1", &f1}, {"f2", &f2}}) {
    auto rs = serial->Upload(id, *data, {"alice"});
    auto rp = pipelined->Upload(id, *data, {"alice"});
    EXPECT_EQ(rs.logical_bytes, rp.logical_bytes) << id;
    EXPECT_EQ(rs.chunk_count, rp.chunk_count) << id;
    EXPECT_EQ(rs.duplicate_chunks, rp.duplicate_chunks) << id;
    EXPECT_EQ(rs.stored_chunks, rp.stored_chunks) << id;
    EXPECT_EQ(rs.stored_bytes, rp.stored_bytes) << id;
    EXPECT_EQ(rs.stub_bytes, rp.stub_bytes) << id;

    // The recipe records chunk order: byte-identical blobs mean identical
    // fingerprint sequence AND identical chunk-size sequence.
    EXPECT_EQ(FindDataObject(serial_sys, "recipe/" + id),
              FindDataObject(pipelined_sys, "recipe/" + id))
        << id;

    EXPECT_EQ(serial->Download(id), *data) << id;
    EXPECT_EQ(pipelined->Download(id), *data) << id;
  }

  auto ss = serial_sys.TotalStats();
  auto ps = pipelined_sys.TotalStats();
  EXPECT_EQ(ss.logical_bytes, ps.logical_bytes);
  EXPECT_EQ(ss.physical_bytes, ps.physical_bytes);
  EXPECT_EQ(ss.logical_chunks, ps.logical_chunks);
  EXPECT_EQ(ss.unique_chunks, ps.unique_chunks);
  EXPECT_EQ(ss.stub_bytes, ps.stub_bytes);
}

TEST(PipelineStressTest, ConcurrentIdenticalUploadsKeepDedupExact) {
  // Every client pushes the SAME content under its own file id, all at
  // once, through the deep pipeline. The ingest stripes must leave exactly
  // one stored copy of every chunk no matter how batches interleave.
  ReedSystem system(TwinSystemOptions());
  constexpr int kClients = 4;
  std::vector<std::unique_ptr<ReedClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    std::string user = "user-" + std::to_string(c);
    system.RegisterUser(user);
    clients.push_back(system.CreateClient(user, PipelinedOptions(3, 2)));
  }

  Bytes shared = TestFile(256 * 1024, 31337);
  std::vector<client::UploadResult> results(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      results[c] = clients[c]->Upload("shared-" + std::to_string(c), shared,
                                      {"user-" + std::to_string(c)});
    });
  }
  for (auto& th : threads) th.join();

  const std::size_t chunk_count = results[0].chunk_count;
  std::size_t stored = 0, duplicates = 0;
  for (const auto& r : results) {
    EXPECT_EQ(r.chunk_count, chunk_count);
    stored += r.stored_chunks;
    duplicates += r.duplicate_chunks;
  }
  // Same content => same chunks; across all racing uploads each chunk is
  // stored exactly once, every other arrival counted as a duplicate.
  EXPECT_EQ(stored, chunk_count);
  EXPECT_EQ(duplicates, chunk_count * (kClients - 1));
  EXPECT_EQ(system.TotalStats().unique_chunks, chunk_count);

  // And everyone can read their copy back.
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(clients[c]->Download("shared-" + std::to_string(c)), shared);
  }
}

TEST(PipelineStressTest, ConcurrentMixedUploadsAndDownloadsRoundTrip) {
  ReedSystem system(TwinSystemOptions());
  constexpr int kClients = 3;
  constexpr int kFilesPerClient = 3;
  std::vector<std::unique_ptr<ReedClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    std::string user = "user-" + std::to_string(c);
    system.RegisterUser(user);
    clients.push_back(system.CreateClient(user, PipelinedOptions(4, 2)));
  }

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        for (int f = 0; f < kFilesPerClient; ++f) {
          std::string id =
              "file-" + std::to_string(c) + "-" + std::to_string(f);
          Bytes data = TestFile(96 * 1024 + f * 8 * 1024, 1000 + c * 10 + f);
          auto up = clients[c]->Upload(id, data, {"user-" + std::to_string(c)});
          if (up.logical_bytes != data.size()) {
            throw Error("logical byte mismatch for " + id);
          }
          // Immediate read-back while the other clients keep writing.
          if (clients[c]->Download(id) != data) {
            throw Error("round-trip mismatch for " + id);
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }

  // All-distinct content: nothing should have deduplicated away.
  auto stats = system.TotalStats();
  EXPECT_EQ(stats.unique_chunks, stats.logical_chunks);
}

}  // namespace
}  // namespace reed
