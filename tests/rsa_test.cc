// RSA, blind-signature OPRF, and key-regression tests.
#include <gtest/gtest.h>

#include "crypto/random.h"
#include "crypto/sha256.h"
#include "rsa/blind_signature.h"
#include "rsa/key_regression.h"
#include "rsa/rsa.h"

namespace reed::rsa {
namespace {

using bigint::BigInt;
using crypto::DeterministicRng;

// 512-bit keys keep the test suite fast; key sizes are orthogonal to the
// logic under test (benches use the paper's 1024-bit keys).
RsaKeyPair TestKeyPair(std::uint64_t seed = 100) {
  DeterministicRng rng(seed);
  return GenerateKeyPair(512, rng);
}

TEST(RsaTest, KeyPairHasRequestedModulusLength) {
  RsaKeyPair kp = TestKeyPair();
  EXPECT_EQ(kp.pub.n.BitLength(), 512u);
  EXPECT_EQ(kp.pub.e.ToU64(), 65537u);
  EXPECT_EQ(kp.pub.n, kp.priv.p * kp.priv.q);
}

TEST(RsaTest, PublicPrivateRoundTrip) {
  RsaKeyPair kp = TestKeyPair();
  DeterministicRng rng(101);
  for (int i = 0; i < 5; ++i) {
    BigInt m = BigInt::Random(rng, kp.pub.n);
    EXPECT_EQ(PrivateApply(kp.priv, PublicApply(kp.pub, m)), m);
    EXPECT_EQ(PublicApply(kp.pub, PrivateApply(kp.priv, m)), m);
  }
}

TEST(RsaTest, CrtMatchesDirectExponentiation) {
  RsaKeyPair kp = TestKeyPair();
  DeterministicRng rng(102);
  BigInt m = BigInt::Random(rng, kp.pub.n);
  EXPECT_EQ(PrivateApply(kp.priv, m), BigInt::PowMod(m, kp.priv.d, kp.pub.n));
}

TEST(RsaTest, RejectsOutOfRangeMessages) {
  RsaKeyPair kp = TestKeyPair();
  EXPECT_THROW(PublicApply(kp.pub, kp.pub.n), Error);
  EXPECT_THROW(PrivateApply(kp.priv, kp.pub.n + BigInt(1)), Error);
}

TEST(RsaTest, RejectsBadKeySizes) {
  DeterministicRng rng(103);
  EXPECT_THROW(GenerateKeyPair(100, rng), Error);  // too small
  EXPECT_THROW(GenerateKeyPair(513, rng), Error);  // odd
}

TEST(RsaTest, FullDomainHashIsDeterministicAndInRange) {
  RsaKeyPair kp = TestKeyPair();
  BigInt h1 = FullDomainHash(ToBytes("chunk-fingerprint"), kp.pub.n);
  BigInt h2 = FullDomainHash(ToBytes("chunk-fingerprint"), kp.pub.n);
  BigInt h3 = FullDomainHash(ToBytes("other-fingerprint"), kp.pub.n);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_LT(h1, kp.pub.n);
}

TEST(RsaTest, KeyPairSerializationRoundTrip) {
  RsaKeyPair kp = TestKeyPair();
  Secret blob = SerializeKeyPair(kp);
  RsaKeyPair back = DeserializeKeyPair(blob);
  EXPECT_EQ(back.pub.n, kp.pub.n);
  EXPECT_EQ(back.priv.d, kp.priv.d);
  EXPECT_EQ(back.priv.qinv, kp.priv.qinv);
  // Restored key still decrypts.
  DeterministicRng rng(150);
  BigInt m = BigInt::Random(rng, kp.pub.n);
  EXPECT_EQ(PrivateApply(back.priv, PublicApply(back.pub, m)), m);
  // Truncation and inconsistent components are rejected.
  EXPECT_THROW(DeserializeKeyPair(blob.Slice(0, blob.size() - 5)), Error);
}

TEST(RsaTest, PublicKeySerializationRoundTrip) {
  RsaKeyPair kp = TestKeyPair();
  RsaPublicKey back = DeserializePublicKey(SerializePublicKey(kp.pub));
  EXPECT_EQ(back.n, kp.pub.n);
  EXPECT_EQ(back.e, kp.pub.e);
  EXPECT_THROW(DeserializePublicKey(Bytes(3, 0)), Error);
}

// --------------------------- blind signatures ---------------------------

TEST(BlindSignatureTest, OprfYieldsDeterministicMleKeys) {
  RsaKeyPair kp = TestKeyPair();
  BlindSignatureServer server(kp.priv);
  BlindSignatureClient client(kp.pub);
  DeterministicRng rng(104);

  Bytes fp = ToBytes("fingerprint-of-chunk-A");
  // Two runs with *different* blinding randomness must give the same key —
  // that determinism is what makes MLE keys dedupable.
  BlindedRequest r1 = client.Blind(fp, rng);
  BlindedRequest r2 = client.Blind(fp, rng);
  EXPECT_NE(r1.blinded, r2.blinded);  // blinding hides the fingerprint
  Secret k1 = client.Unblind(r1, server.Sign(r1.blinded));
  Secret k2 = client.Unblind(r2, server.Sign(r2.blinded));
  EXPECT_TRUE(k1.ConstantTimeEquals(k2));
  EXPECT_EQ(k1.size(), 32u);
}

TEST(BlindSignatureTest, DistinctFingerprintsGiveDistinctKeys) {
  RsaKeyPair kp = TestKeyPair();
  BlindSignatureServer server(kp.priv);
  BlindSignatureClient client(kp.pub);
  DeterministicRng rng(105);
  BlindedRequest ra = client.Blind(ToBytes("chunk-A"), rng);
  BlindedRequest rb = client.Blind(ToBytes("chunk-B"), rng);
  EXPECT_FALSE(client.Unblind(ra, server.Sign(ra.blinded))
                   .ConstantTimeEquals(client.Unblind(rb, server.Sign(rb.blinded))));
}

TEST(BlindSignatureTest, ForgedSignatureIsRejected) {
  RsaKeyPair kp = TestKeyPair();
  BlindSignatureClient client(kp.pub);
  DeterministicRng rng(106);
  BlindedRequest req = client.Blind(ToBytes("chunk"), rng);
  BigInt forged = BigInt::Random(rng, kp.pub.n);
  EXPECT_THROW(client.Unblind(req, forged), Error);
}

TEST(BlindSignatureTest, ServerRejectsOutOfRangeRequests) {
  RsaKeyPair kp = TestKeyPair();
  BlindSignatureServer server(kp.priv);
  EXPECT_THROW(server.Sign(BigInt(0)), Error);
  EXPECT_THROW(server.Sign(kp.pub.n), Error);
}

TEST(BlindSignatureTest, MatchesDirectFdhSignature) {
  // The unblinded value must equal h^d computed directly — i.e. blinding is
  // transparent to the resulting key.
  RsaKeyPair kp = TestKeyPair();
  BlindSignatureServer server(kp.priv);
  BlindSignatureClient client(kp.pub);
  DeterministicRng rng(107);
  Bytes fp = ToBytes("some-fp");
  BlindedRequest req = client.Blind(fp, rng);
  Secret via_oprf = client.Unblind(req, server.Sign(req.blinded));

  BigInt h = FullDomainHash(fp, kp.pub.n);
  BigInt direct = PrivateApply(kp.priv, h);
  Bytes via_direct =
      crypto::Sha256::HashToBytes(direct.ToBytesPadded(kp.pub.ByteLength()));
  EXPECT_TRUE(via_oprf.ConstantTimeEquals(via_direct));
}

// --------------------------- key regression ---------------------------

TEST(KeyRegressionTest, UnwindInvertsWind) {
  RsaKeyPair kp = TestKeyPair();
  KeyRegressionOwner owner(kp);
  KeyRegressionMember member(kp.pub);
  DeterministicRng rng(108);

  rsa::KeyState st0 = owner.GenesisState(rng);
  rsa::KeyState st1 = owner.Wind(st0);
  rsa::KeyState st2 = owner.Wind(st1);
  EXPECT_EQ(st2.version, 2u);

  rsa::KeyState back1 = member.Unwind(st2);
  EXPECT_EQ(back1.version, 1u);
  EXPECT_EQ(back1.value, st1.value);
  rsa::KeyState back0 = member.Unwind(back1);
  EXPECT_EQ(back0.value, st0.value);
}

TEST(KeyRegressionTest, UnwindToWalksMultipleVersions) {
  RsaKeyPair kp = TestKeyPair();
  KeyRegressionOwner owner(kp);
  KeyRegressionMember member(kp.pub);
  DeterministicRng rng(109);

  rsa::KeyState st = owner.GenesisState(rng);
  rsa::KeyState genesis = st;
  for (int i = 0; i < 5; ++i) st = owner.Wind(st);
  EXPECT_EQ(member.UnwindTo(st, 0).value, genesis.value);
  EXPECT_EQ(member.UnwindTo(st, 5).value, st.value);
  EXPECT_THROW(member.UnwindTo(st, 6), Error);
}

TEST(KeyRegressionTest, CannotUnwindBelowGenesis) {
  RsaKeyPair kp = TestKeyPair();
  KeyRegressionOwner owner(kp);
  KeyRegressionMember member(kp.pub);
  DeterministicRng rng(110);
  EXPECT_THROW(member.Unwind(owner.GenesisState(rng)), Error);
}

TEST(KeyRegressionTest, FileKeysDifferAcrossVersions) {
  RsaKeyPair kp = TestKeyPair();
  KeyRegressionOwner owner(kp);
  DeterministicRng rng(111);
  rsa::KeyState st0 = owner.GenesisState(rng);
  rsa::KeyState st1 = owner.Wind(st0);
  EXPECT_EQ(st0.DeriveFileKey().size(), 32u);
  EXPECT_FALSE(st0.DeriveFileKey().ConstantTimeEquals(st1.DeriveFileKey()));
  EXPECT_TRUE(st0.DeriveFileKey().ConstantTimeEquals(st0.DeriveFileKey()));
}

TEST(KeyRegressionTest, SerializationRoundTrip) {
  RsaKeyPair kp = TestKeyPair();
  KeyRegressionOwner owner(kp);
  DeterministicRng rng(112);
  rsa::KeyState st = owner.Wind(owner.GenesisState(rng));
  Secret blob = st.Serialize(kp.pub);
  rsa::KeyState back = rsa::KeyState::Deserialize(blob, kp.pub);
  EXPECT_EQ(back.version, st.version);
  EXPECT_EQ(back.value, st.value);
  EXPECT_THROW(
      rsa::KeyState::Deserialize(blob.Slice(0, blob.size() - 1), kp.pub),
      Error);
}

}  // namespace
}  // namespace reed::rsa
