// Unit tests for the reed::Secret type wall (util/secret.h): ownership,
// wiping semantics, constant-time equality, slicing, and the Declassify
// contract. The compile-time half of the wall (deleted Writer overloads,
// deleted operator<<) is covered by the WILL_FAIL fixtures under
// tools/lint/fixtures/secret_wall/.
#include <gtest/gtest.h>

#include <utility>

#include "util/secret.h"

namespace reed {
namespace {

Bytes Seq(std::size_t n, std::uint8_t start = 1) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(start + i);
  return b;
}

TEST(SecretTest, ConstructionTakesOwnership) {
  Bytes data = Seq(8);
  Secret s(std::move(data));
  EXPECT_EQ(s.size(), 8u);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(s.ConstantTimeEquals(Seq(8)));
}

TEST(SecretTest, DefaultIsEmpty) {
  Secret s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.ConstantTimeEquals(Secret()));
}

TEST(SecretTest, CopyOfCopiesOutOfLargerBuffer) {
  Bytes big = Seq(32);
  Secret s = Secret::CopyOf(ByteSpan(big.data() + 4, 8));
  EXPECT_TRUE(s.ConstantTimeEquals(Seq(8, 5)));
  // The source is untouched: CopyOf copies, it does not adopt.
  EXPECT_EQ(big, Seq(32));
}

TEST(SecretTest, ConstantTimeEqualsSemantics) {
  Secret a(Seq(16));
  Secret b(Seq(16));
  Secret c(Seq(16, 2));
  Secret shorter(Seq(15));
  EXPECT_TRUE(a.ConstantTimeEquals(b));
  EXPECT_FALSE(a.ConstantTimeEquals(c));
  EXPECT_FALSE(a.ConstantTimeEquals(shorter));  // length mismatch = false
  Bytes raw = Seq(16);
  EXPECT_TRUE(a.ConstantTimeEquals(ByteSpan(raw)));
}

TEST(SecretTest, MoveLeavesSourceEmpty) {
  Secret a(Seq(8));
  Secret b(std::move(a));
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): asserting wipe
  EXPECT_TRUE(b.ConstantTimeEquals(Seq(8)));

  Secret c;
  c = std::move(b);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): asserting wipe
  EXPECT_TRUE(c.ConstantTimeEquals(Seq(8)));
}

TEST(SecretTest, CopyAndAssignPreserveValue) {
  Secret a(Seq(8));
  Secret b(a);
  EXPECT_TRUE(a.ConstantTimeEquals(b));
  Secret c(Seq(4, 9));
  c = a;  // assignment wipes c's old bytes, then copies
  EXPECT_TRUE(c.ConstantTimeEquals(a));
  c = c;  // self-assignment is a no-op, not a wipe
  EXPECT_TRUE(c.ConstantTimeEquals(Seq(8)));
}

TEST(SecretTest, AppendConcatenates) {
  Secret stub_file;
  stub_file.Reserve(8);
  stub_file.Append(Secret(Seq(4)));
  stub_file.Append(Secret(Seq(4, 5)));
  EXPECT_TRUE(stub_file.ConstantTimeEquals(Seq(8)));
}

TEST(SecretTest, SliceCopiesSubrange) {
  Secret stub_file(Seq(64));
  Secret chunk_stub = stub_file.Slice(16, 8);
  EXPECT_TRUE(chunk_stub.ConstantTimeEquals(Seq(8, 17)));
  // Full-range and empty slices are fine.
  EXPECT_TRUE(stub_file.Slice(0, 64).ConstantTimeEquals(stub_file));
  EXPECT_TRUE(stub_file.Slice(64, 0).empty());
}

TEST(SecretTest, SliceOutOfRangeThrows) {
  Secret s(Seq(8));
  EXPECT_THROW((void)s.Slice(0, 9), Error);
  EXPECT_THROW((void)s.Slice(9, 0), Error);
  // Offset+len overflow must not wrap around to "in range".
  EXPECT_THROW((void)s.Slice(4, SIZE_MAX), Error);
}

TEST(SecretTest, DeclassifyReturnsBytesAndRequiresReason) {
  Secret s(Seq(8));
  Bytes out = Declassify(s, "test: auditing the declassify contract");
  EXPECT_EQ(out, Seq(8));
  EXPECT_THROW((void)Declassify(s, ""), Error);
  EXPECT_THROW((void)Declassify(s, nullptr), Error);
}

TEST(SecretTest, ExposeForCryptoViewsWithoutCopy) {
  Secret s(Seq(8));
  ByteSpan view = s.ExposeForCrypto();
  ASSERT_EQ(view.size(), 8u);
  EXPECT_EQ(view[0], 1);
  EXPECT_EQ(view[7], 8);
}

}  // namespace
}  // namespace reed
