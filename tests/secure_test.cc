// Tests for the secret-hygiene primitives in util/secure.h.
//
// Correctness here is subtle: SecureZero's whole point is to survive the
// optimizer, and SecureCompare's is to not leak the mismatch position
// through timing. The functional half is fully testable; the timing half is
// covered structurally (every byte participates in the verdict) rather than
// with flaky wall-clock assertions.

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/secure.h"

namespace reed {
namespace {

Bytes Pattern(std::size_t n, std::uint8_t seed) {
  Bytes out(n);
  std::uint8_t v = seed;
  for (auto& b : out) {
    b = v;
    v = static_cast<std::uint8_t>(v * 31u + 7u);
  }
  return out;
}

TEST(SecureCompareTest, EqualBuffers) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{16},
                        std::size_t{32}, std::size_t{1000}}) {
    Bytes a = Pattern(n, 3);
    Bytes b = a;
    EXPECT_TRUE(SecureCompare(a, b)) << "length " << n;
  }
}

TEST(SecureCompareTest, DetectsSingleBitFlipAtEveryPosition) {
  // A comparison that short-circuits or drops bytes would miss flips at
  // some positions; constant-time accumulation must catch all of them.
  Bytes a = Pattern(64, 9);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes b = a;
      b[i] = static_cast<std::uint8_t>(b[i] ^ (1u << bit));
      EXPECT_FALSE(SecureCompare(a, b)) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(SecureCompareTest, LengthMismatchIsUnequal) {
  Bytes a = Pattern(32, 1);
  Bytes b(a.begin(), a.begin() + 31);
  EXPECT_FALSE(SecureCompare(a, b));
  EXPECT_FALSE(SecureCompare(b, a));
  EXPECT_FALSE(SecureCompare(a, Bytes{}));
  EXPECT_TRUE(SecureCompare(Bytes{}, Bytes{}));
}

TEST(SecureZeroTest, SpanIsWiped) {
  Bytes buf = Pattern(257, 5);  // odd size: no word-alignment assumptions
  SecureZero(MutableByteSpan(buf));
  for (std::size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], 0) << "offset " << i;
  }
}

TEST(SecureZeroTest, VectorIsWipedAndCleared) {
  Bytes buf = Pattern(128, 11);
  const std::uint8_t* payload = buf.data();
  const std::size_t n = buf.size();
  SecureZero(buf);
  EXPECT_TRUE(buf.empty());
  // The vector keeps its allocation (clear() does not free), so the old
  // payload bytes are still inspectable — and must all be zero.
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < n; ++i) nonzero += (payload[i] != 0) ? 1 : 0;
  EXPECT_EQ(nonzero, 0u);
}

TEST(SecureZeroTest, SurvivesOptimizationOfDeadBuffer) {
  // A plain memset here is a classic dead-store-elimination victim: the
  // buffer is never read again through the vector. Snapshot the payload
  // pointer first so we can observe the memory independently.
  std::vector<std::uint8_t> key = Pattern(64, 17);
  const std::uint8_t* payload = key.data();
  SecureZero(MutableByteSpan(key));
  std::size_t sum = 0;
  for (std::size_t i = 0; i < 64; ++i) sum += payload[i];
  EXPECT_EQ(sum, 0u);
}

TEST(ScopedWipeTest, WipesVectorOnScopeExit) {
  Bytes key = Pattern(48, 23);
  const std::uint8_t* payload = key.data();
  {
    ScopedWipe wipe(key);
    EXPECT_NE(key[0], 0);  // untouched while in scope
  }
  EXPECT_TRUE(key.empty());
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < 48; ++i) nonzero += (payload[i] != 0) ? 1 : 0;
  EXPECT_EQ(nonzero, 0u);
}

TEST(ScopedWipeTest, WipesSpanOnException) {
  Bytes key = Pattern(32, 29);
  try {
    ScopedWipe wipe{MutableByteSpan(key)};
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  for (std::size_t i = 0; i < key.size(); ++i) {
    ASSERT_EQ(key[i], 0) << "offset " << i;
  }
}

TEST(SecureAliasesTest, BytesHelpersDelegate) {
  // util/bytes.h keeps the legacy names as aliases; both must behave
  // identically to the canonical secure.h entry points.
  Bytes a = Pattern(32, 2);
  Bytes b = a;
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(ConstantTimeEqual(a, b));
  SecureWipe(MutableByteSpan(a));
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 0);
}

}  // namespace
}  // namespace reed
