// StorageClient tests: the concurrent per-server fan-out, the striped
// channel pool, and the fetch-path integrity gate (DESIGN.md §10). Servers
// live in-process behind LocalChannels; the corrupting fake sits between
// client and server to model a tampering (or simply buggy) cloud.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/storage_client.h"
#include "crypto/random.h"
#include "net/rpc.h"
#include "server/storage_server.h"

namespace reed {
namespace {

using crypto::DeterministicRng;

std::shared_ptr<net::RpcChannel> ChannelTo(server::StorageServer* srv) {
  return std::make_shared<net::LocalChannel>(
      [srv](ByteSpan req) { return srv->HandleRequest(req); });
}

// Forwards to a real server but flips one byte near the end of every
// successful kGetChunks response — i.e. inside the last returned package's
// payload. Uploads and object traffic pass through untouched.
class CorruptingChannel : public net::RpcChannel {
 public:
  explicit CorruptingChannel(server::StorageServer* srv) : srv_(srv) {}

  [[nodiscard]] Bytes Call(ByteSpan request) override {
    Bytes response = srv_->HandleRequest(request);
    bool is_get_chunks =
        !request.empty() &&
        request[0] == static_cast<std::uint8_t>(server::Opcode::kGetChunks);
    bool ok = !response.empty() && response[0] == 0;
    if (is_get_chunks && ok && response.size() > 1) {
      response.back() ^= 0x01;
      ++corrupted_;
    }
    return response;
  }

  int corrupted() const { return corrupted_.load(); }

 private:
  server::StorageServer* srv_;
  std::atomic<int> corrupted_{0};
};

// Counts calls, then forwards; used to observe stripe round-robin.
class CountingChannel : public net::RpcChannel {
 public:
  CountingChannel(std::shared_ptr<net::RpcChannel> inner,
                  std::atomic<int>* calls)
      : inner_(std::move(inner)), calls_(calls) {}

  [[nodiscard]] Bytes Call(ByteSpan request) override {
    calls_->fetch_add(1);
    return inner_->Call(request);
  }

 private:
  std::shared_ptr<net::RpcChannel> inner_;
  std::atomic<int>* calls_;
};

std::vector<std::pair<chunk::Fingerprint, Bytes>> MakeChunks(int n,
                                                             std::uint64_t seed,
                                                             std::size_t size) {
  DeterministicRng rng(seed);
  std::vector<std::pair<chunk::Fingerprint, Bytes>> chunks;
  chunks.reserve(n);
  for (int i = 0; i < n; ++i) {
    Bytes data = rng.Generate(size);
    chunks.emplace_back(chunk::Fingerprint::Of(data), data);
  }
  return chunks;
}

TEST(StorageClientIntegrityTest, TamperedFetchThrows) {
  auto srv = std::make_unique<server::StorageServer>("honest-until-read");
  auto key = std::make_unique<server::StorageServer>("key");
  auto corrupting = std::make_shared<CorruptingChannel>(srv.get());
  client::StorageClient client({corrupting}, ChannelTo(key.get()));

  auto chunks = MakeChunks(8, 11, 256);
  std::vector<chunk::Fingerprint> fps;
  for (const auto& [fp, data] : chunks) fps.push_back(fp);
  auto stats = client.PutChunks(chunks);
  EXPECT_EQ(stats.stored, 8u);

  // The server stored the true bytes; the wire corrupts them on the way
  // back, so the client-side fingerprint check must refuse the batch.
  EXPECT_THROW((void)client.GetChunks(fps), Error);
  EXPECT_GT(corrupting->corrupted(), 0);
}

TEST(StorageClientIntegrityTest, HonestFetchPassesTheGate) {
  auto srv = std::make_unique<server::StorageServer>("honest");
  auto key = std::make_unique<server::StorageServer>("key");
  client::StorageClient client({ChannelTo(srv.get())}, ChannelTo(key.get()));

  auto chunks = MakeChunks(32, 12, 300);
  std::vector<chunk::Fingerprint> fps;
  for (const auto& [fp, data] : chunks) fps.push_back(fp);
  (void)client.PutChunks(chunks);
  std::vector<Bytes> fetched = client.GetChunks(fps);
  ASSERT_EQ(fetched.size(), chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(fetched[i], chunks[i].second);
  }
}

class StripedClientTest : public ::testing::Test {
 protected:
  static constexpr int kServers = 4;
  static constexpr int kStripes = 3;

  StripedClientTest() : stripe_calls_(kServers * kStripes) {
    key_server_ = std::make_unique<server::StorageServer>("key");
    std::vector<std::vector<std::shared_ptr<net::RpcChannel>>> striped;
    for (int s = 0; s < kServers; ++s) {
      servers_.push_back(
          std::make_unique<server::StorageServer>("s" + std::to_string(s)));
      std::vector<std::shared_ptr<net::RpcChannel>> stripes;
      for (int c = 0; c < kStripes; ++c) {
        stripes.push_back(std::make_shared<CountingChannel>(
            ChannelTo(servers_.back().get()),
            &stripe_calls_[s * kStripes + c]));
      }
      striped.push_back(std::move(stripes));
    }
    client_ = std::make_unique<client::StorageClient>(
        std::move(striped), ChannelTo(key_server_.get()));
  }

  std::vector<std::unique_ptr<server::StorageServer>> servers_;
  std::unique_ptr<server::StorageServer> key_server_;
  std::vector<std::atomic<int>> stripe_calls_;
  std::unique_ptr<client::StorageClient> client_;
};

TEST_F(StripedClientTest, RoundTripAndStripeRotation) {
  auto chunks = MakeChunks(64, 13, 200);
  std::vector<chunk::Fingerprint> fps;
  for (const auto& [fp, data] : chunks) fps.push_back(fp);

  // Several batches so the round-robin cursor sweeps the stripes.
  for (int rep = 0; rep < kStripes * 2; ++rep) {
    auto stats = client_->PutChunks(chunks);
    if (rep == 0) {
      EXPECT_EQ(stats.stored, 64u);
    } else {
      EXPECT_EQ(stats.duplicates, 64u);
    }
  }
  std::vector<Bytes> fetched = client_->GetChunks(fps);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(fetched[i], chunks[i].second);
  }

  // Every server was reached through more than one of its stripes.
  for (int s = 0; s < kServers; ++s) {
    int used = 0;
    for (int c = 0; c < kStripes; ++c) {
      if (stripe_calls_[s * kStripes + c].load() > 0) ++used;
    }
    EXPECT_GE(used, 2) << "server " << s;
  }
}

TEST_F(StripedClientTest, ConcurrentBatchesAggregateCorrectly) {
  // Distinct chunk sets per thread; totals must add up exactly regardless
  // of how the fan-out interleaves.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> stored{0}, dup{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto chunks = MakeChunks(kPerThread, 100 + t, 150);
      auto first = client_->PutChunks(chunks);
      auto second = client_->PutChunks(chunks);
      stored += first.stored + second.stored;
      dup += first.duplicates + second.duplicates;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(stored.load(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(dup.load(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(StorageClientCtorTest, RejectsBadConfigurations) {
  auto key = std::make_unique<server::StorageServer>("key");
  auto key_ch = ChannelTo(key.get());
  EXPECT_THROW(client::StorageClient(
                   std::vector<std::shared_ptr<net::RpcChannel>>{}, key_ch),
               Error);
  auto srv = std::make_unique<server::StorageServer>("s");
  EXPECT_THROW(client::StorageClient({ChannelTo(srv.get())}, nullptr), Error);
  // Striped form: a server with zero channels is a config bug.
  std::vector<std::vector<std::shared_ptr<net::RpcChannel>>> striped;
  striped.push_back({});
  EXPECT_THROW(client::StorageClient(std::move(striped), key_ch), Error);
}

}  // namespace
}  // namespace reed
